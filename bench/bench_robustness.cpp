// Robustness overhead benchmark: the fault-tolerance guards this library
// compiles in unconditionally — fault_injected() queries, deadline polls at
// op and GEMM-band boundaries, the finite-screen branch — must be free when
// nothing is armed. This bench serves ResNet-18 through an InferenceSession
// and compares, interleaved sample for sample:
//
//   disarmed   plain run(): every guard present, nothing armed (the
//              production steady state);
//   deadline   run() under a generous armed Deadline: every poll now also
//              reads the clock — strictly more work than disarmed;
//   allocguard run() with the DenyAllocGuard armed: every operator new now
//              takes the thread-local depth test, and the guard rides into
//              the pool workers with each region;
//   screened   run() with TDC_CHECK_FINITE screening on (informational:
//              screening scans every activation element, so it is opt-in
//              and priced separately, not part of the <1% budget).
//
// The enforced bars are deadline/disarmed < 1.01 and allocguard/disarmed
// < 1.01: if even the *armed* configurations stay under 1%, the disarmed
// fast paths (one relaxed atomic load, one thread-local test) are a
// fortiori inside the budget. Emits BENCH_robustness.json; CI runs this
// binary — once default and once with TDC_ALLOC_GUARD=1 — and fails on
// regression.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/alloc_guard.h"
#include "common/check.h"
#include "common/deadline.h"
#include "common/fault.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "exec/graph_plan.h"
#include "exec/microbench.h"
#include "nn/models.h"

namespace {

using Clock = std::chrono::steady_clock;

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

double min_of(const std::vector<double>& v) {
  return *std::min_element(v.begin(), v.end());
}

}  // namespace

int main() {
  using namespace tdc;
  const DeviceSpec device = make_a100();
  const ModelSpec model = make_resnet18();
  const auto weights = random_model_weights(model, 20230225);

  CodesignOptions cd_opts;
  cd_opts.budget = 0.65;
  const CodesignResult codesign =
      run_codesign(device, model.decomposable_conv_shapes(), cd_opts);

  host_calibration();  // once-per-process, outside every timer
  SessionOptions options;
  InferenceSession session = InferenceSession::compile(
      device, model, weights, codesign.layers, options);

  Rng rng(20230803);
  const OpShape& in = session.input_shape();
  const OpShape& out = session.output_shape();
  const Tensor x = Tensor::random_uniform({in.c, in.h, in.w}, rng);
  Tensor y({out.c, out.h, out.w});
  std::vector<float> ws(
      static_cast<std::size_t>(session.workspace_bytes() / sizeof(float)));

  fault_disarm_all();
  set_check_finite(false);
  const Deadline generous = Deadline::after(3600.0);

  // Warm-up: packed weights, page faults, frequency.
  for (int i = 0; i < 3; ++i) {
    session.run(x, &y, ws);
  }

  // Interleaved A/B/C sampling so drift (thermal, scheduler) hits every
  // variant equally; min-of-samples is the noise-robust statistic the bar
  // uses, medians are reported alongside.
  constexpr int kSamples = 40;
  std::vector<double> disarmed_s, deadline_s, allocguard_s, screened_s;
  disarmed_s.reserve(kSamples);
  deadline_s.reserve(kSamples);
  allocguard_s.reserve(kSamples);
  screened_s.reserve(kSamples);
  const bool alloc_guard_was_on = alloc_guard_enabled();
  for (int i = 0; i < kSamples; ++i) {
    set_alloc_guard(false);
    auto t0 = Clock::now();
    session.run(x, &y, ws);
    disarmed_s.push_back(
        std::chrono::duration<double>(Clock::now() - t0).count());

    t0 = Clock::now();
    session.run(x, &y, ws, generous);
    deadline_s.push_back(
        std::chrono::duration<double>(Clock::now() - t0).count());

    set_alloc_guard(true);
    t0 = Clock::now();
    session.run(x, &y, ws);
    allocguard_s.push_back(
        std::chrono::duration<double>(Clock::now() - t0).count());
    set_alloc_guard(false);

    set_check_finite(true);
    t0 = Clock::now();
    session.run(x, &y, ws);
    screened_s.push_back(
        std::chrono::duration<double>(Clock::now() - t0).count());
    set_check_finite(false);
  }
  set_alloc_guard(alloc_guard_was_on);

  const double disarmed_min = min_of(disarmed_s);
  const double deadline_min = min_of(deadline_s);
  const double allocguard_min = min_of(allocguard_s);
  const double screened_min = min_of(screened_s);
  const double guard_ratio = deadline_min / disarmed_min;
  const double alloc_ratio = allocguard_min / disarmed_min;
  const ParallelStats pstats = parallel_stats();

  bench::print_title(
      "Robustness guards — ResNet-18 session serving, guards disarmed vs "
      "armed (" + std::to_string(session.num_ops()) + " ops)");
  std::printf("disarmed   min %8sms   median %8sms   (production steady "
              "state)\n",
              bench::ms(disarmed_min).c_str(),
              bench::ms(median(disarmed_s)).c_str());
  std::printf("deadline   min %8sms   median %8sms   ratio %.4f   "
              "(armed generous budget; bar < 1.01)\n",
              bench::ms(deadline_min).c_str(),
              bench::ms(median(deadline_s)).c_str(), guard_ratio);
  std::printf("allocguard min %8sms   median %8sms   ratio %.4f   "
              "(DenyAllocGuard armed; bar < 1.01)\n",
              bench::ms(allocguard_min).c_str(),
              bench::ms(median(allocguard_s)).c_str(), alloc_ratio);
  std::printf("screened   min %8sms   median %8sms   ratio %.4f   "
              "(TDC_CHECK_FINITE on; informational, opt-in)\n",
              bench::ms(screened_min).c_str(),
              bench::ms(median(screened_s)).c_str(),
              screened_min / disarmed_min);
  std::printf("runtime    pool regions %lld, inline %lld, serial fallbacks "
              "%lld\n",
              static_cast<long long>(pstats.pool_regions),
              static_cast<long long>(pstats.inline_regions),
              static_cast<long long>(pstats.serial_fallbacks));
  std::printf("threads: %d (override with TDC_NUM_THREADS)\n", num_threads());

  FILE* json = std::fopen("BENCH_robustness.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot open BENCH_robustness.json for writing\n");
    return 1;
  }
  std::fprintf(
      json,
      "{\n  \"bench\": \"robustness\",\n  \"model\": \"resnet18\",\n"
      "  \"threads\": %d,\n  \"samples\": %d,\n"
      "  \"disarmed\": {\"min_ms\": %.4f, \"median_ms\": %.4f},\n"
      "  \"armed_deadline\": {\"min_ms\": %.4f, \"median_ms\": %.4f},\n"
      "  \"armed_alloc_guard\": {\"min_ms\": %.4f, \"median_ms\": %.4f},\n"
      "  \"finite_screen\": {\"min_ms\": %.4f, \"median_ms\": %.4f},\n"
      "  \"guard_overhead_ratio\": %.5f,\n"
      "  \"alloc_guard_overhead_ratio\": %.5f,\n"
      "  \"guard_overhead_bar\": 1.01,\n"
      "  \"parallel_stats\": {\"pool_regions\": %lld, "
      "\"inline_regions\": %lld, \"serial_fallbacks\": %lld}\n}\n",
      num_threads(), kSamples, disarmed_min * 1e3, median(disarmed_s) * 1e3,
      deadline_min * 1e3, median(deadline_s) * 1e3, allocguard_min * 1e3,
      median(allocguard_s) * 1e3, screened_min * 1e3,
      median(screened_s) * 1e3, guard_ratio, alloc_ratio, 1.01,
      static_cast<long long>(pstats.pool_regions),
      static_cast<long long>(pstats.inline_regions),
      static_cast<long long>(pstats.serial_fallbacks));
  std::fclose(json);
  std::printf("wrote BENCH_robustness.json\n");

  // Regression bars (CI runs this binary): an armed deadline and an armed
  // allocation guard — each strictly more guard work than the disarmed
  // steady state — must cost under 1% of the serving latency. A failure
  // means a poll landed on a hot inner loop or a fast path picked up a
  // lock, not machine noise: the min-of-40 interleaved statistic holds the
  // measured ratios near 1.000.
  if (guard_ratio >= 1.01) {
    std::fprintf(stderr,
                 "FAIL: armed-deadline serving %.4fx the disarmed latency "
                 "(bar: < 1.01)\n",
                 guard_ratio);
    return 1;
  }
  if (alloc_ratio >= 1.01) {
    std::fprintf(stderr,
                 "FAIL: alloc-guard-armed serving %.4fx the disarmed latency "
                 "(bar: < 1.01)\n",
                 alloc_ratio);
    return 1;
  }
  return 0;
}
