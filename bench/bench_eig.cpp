// Symmetric-eigensolver benchmark: the retained cyclic-Jacobi baseline
// against the tridiagonal-QL production solver and its top-D early-exit
// path on Gram-style SPD matrices at n ∈ {64, 128, 256, 512}, plus the
// end-to-end number the exec layer cares about — a cold full-width
// tucker_decompose of a 512-channel ResNet-18 kernel.
//
// Emits BENCH_eig.json. CI runs this binary: the n = 512 full solve must be
// at least 20× faster than Jacobi (typical margin is far larger), the bar
// from the ROADMAP's "full-width cold compiles" open item.
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "linalg/eig.h"
#include "linalg/gemm.h"
#include "tucker/tucker.h"

namespace {

using Clock = std::chrono::steady_clock;

template <class F>
double best_of(int reps, const F& f) {
  double best = 1e300;
  for (int i = 0; i < reps; ++i) {
    const auto t0 = Clock::now();
    f();
    const double s = std::chrono::duration<double>(Clock::now() - t0).count();
    best = std::min(best, s);
  }
  return best;
}

}  // namespace

int main() {
  using namespace tdc;

  struct Row {
    std::int64_t n;
    double jacobi_s;
    double ql_s;
    double topk_s;
  };
  std::vector<Row> rows;

  for (const std::int64_t n : {64, 128, 256, 512}) {
    Rng rng(0xE16ULL + static_cast<std::uint64_t>(n));
    const Tensor half = Tensor::random_uniform({n, 9 * n}, rng);
    Tensor a({n, n});  // Gram matrix, the solver's production diet
    gemm_bt(n, n, 9 * n, half.data(), half.data(), a.data());

    Row row{n, 0.0, 0.0, 0.0};
    // One rep for Jacobi: at n = 512 a single serial solve is the whole
    // point of this table.
    row.jacobi_s = best_of(1, [&] { (void)eig_symmetric_jacobi(a); });
    row.ql_s = best_of(3, [&] { (void)eig_symmetric_ql(a); });
    const std::int64_t k = n / 2;  // typical codesign rank: half the channels
    row.topk_s = best_of(3, [&] { (void)eig_symmetric_topk(a, k); });
    rows.push_back(row);
  }

  // End-to-end: cold factorization of a full-width conv5 ResNet-18 kernel,
  // the per-layer cost a cold InferenceSession compile pays.
  Rng krng(0x7DC);
  const Tensor kernel = Tensor::random_normal({512, 512, 3, 3}, krng);
  const double decompose_s =
      best_of(1, [&] { (void)tucker_decompose(kernel, {256, 256}); });

  bench::print_title(
      "Symmetric eigensolver — Jacobi baseline vs tridiagonal QL vs top-D "
      "(k = n/2), Gram matrices");
  std::printf("%6s %14s %14s %14s %12s %12s\n", "n", "jacobi(ms)", "ql(ms)",
              "topk(ms)", "ql-speedup", "topk-speedup");
  for (const Row& r : rows) {
    std::printf("%6lld %14s %14s %14s %12s %12s\n",
                static_cast<long long>(r.n), bench::ms(r.jacobi_s).c_str(),
                bench::ms(r.ql_s).c_str(), bench::ms(r.topk_s).c_str(),
                bench::ratio(r.jacobi_s / r.ql_s).c_str(),
                bench::ratio(r.jacobi_s / r.topk_s).c_str());
  }
  std::printf("cold tucker_decompose 512x512x3x3 @ ranks (256,256): %s ms\n",
              bench::ms(decompose_s).c_str());
  std::printf("threads: %d (override with TDC_NUM_THREADS)\n", num_threads());

  FILE* json = std::fopen("BENCH_eig.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot open BENCH_eig.json for writing\n");
    return 1;
  }
  std::fprintf(json,
               "{\n  \"bench\": \"eig\",\n  \"threads\": %d,\n"
               "  \"sizes\": [\n",
               num_threads());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(json,
                 "    {\"n\": %lld, \"jacobi_ms\": %.3f, \"ql_ms\": %.3f, "
                 "\"topk_ms\": %.3f, \"ql_speedup\": %.1f, "
                 "\"topk_speedup\": %.1f}%s\n",
                 static_cast<long long>(r.n), r.jacobi_s * 1e3, r.ql_s * 1e3,
                 r.topk_s * 1e3, r.jacobi_s / r.ql_s, r.jacobi_s / r.topk_s,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(json,
               "  ],\n  \"tucker_decompose_512_cold_ms\": %.3f\n}\n",
               decompose_s * 1e3);
  std::fclose(json);
  std::printf("wrote BENCH_eig.json\n");

  // Regression bar (CI runs this binary): the production solver must hold
  // the ≥20× floor over the retained Jacobi baseline at full width. The
  // typical margin is far above the bar, so a failure means the tridiagonal
  // path itself regressed, not machine noise.
  const Row& widest = rows.back();
  if (widest.jacobi_s / widest.ql_s < 20.0) {
    std::fprintf(stderr,
                 "FAIL: QL at n=%lld only %.1fx faster than Jacobi "
                 "(regression bar: 20x)\n",
                 static_cast<long long>(widest.n),
                 widest.jacobi_s / widest.ql_s);
    return 1;
  }
  return 0;
}
