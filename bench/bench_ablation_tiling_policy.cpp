// Tiling-selection-policy ablation (Section 5.5 design choice).
//
// The paper's analytical model is a *two-stage* filter: rank all tilings by
// the closed-form compute latency, keep the top fraction, then take the
// minimum modeled memory volume. This bench compares that policy against
// its two degenerate forms (compute-only, memory-only) and the oracle.
#include <vector>

#include "bench_util.h"
#include "core/tdc_model.h"
#include "nn/models.h"

namespace {

using namespace tdc;

TdcTiling select_compute_only(const DeviceSpec& device, const ConvShape& s) {
  TdcTiling best;
  double best_metric = -1.0;
  for (const TdcTiling& t : enumerate_tilings(device, s)) {
    const double metric = paper_comp_latency(device, s, t);
    if (best_metric < 0.0 || metric < best_metric) {
      best_metric = metric;
      best = t;
    }
  }
  return best;
}

TdcTiling select_memory_only(const DeviceSpec& device, const ConvShape& s) {
  TdcTiling best;
  double best_metric = -1.0;
  for (const TdcTiling& t : enumerate_tilings(device, s)) {
    const double metric = paper_mem_volume(s, t);
    if (best_metric < 0.0 || metric < best_metric) {
      best_metric = metric;
      best = t;
    }
  }
  return best;
}

}  // namespace

int main() {
  using namespace tdc::bench;
  const DeviceSpec device = make_a100();

  print_title("Tiling policy ablation on A100: two-stage (paper) vs "
              "compute-only vs memory-only vs oracle");
  std::printf("%-20s %12s %12s %12s %12s\n", "shape", "oracle(ms)",
              "two-stage", "comp-only", "mem-only");
  std::vector<double> two_stage, comp_only, mem_only;
  for (const ConvShape& s : figure6_core_shapes()) {
    const double oracle =
        tdc_core_cost(device, s, select_tiling_oracle(device, s)).total_s;
    const double two =
        tdc_core_cost(device, s, select_tiling_model(device, s)).total_s;
    const double comp =
        tdc_core_cost(device, s, select_compute_only(device, s)).total_s;
    const double mem =
        tdc_core_cost(device, s, select_memory_only(device, s)).total_s;
    two_stage.push_back(two / oracle);
    comp_only.push_back(comp / oracle);
    mem_only.push_back(mem / oracle);
    std::printf("%-20s %12s %12s %12s %12s\n", shape_label(s).c_str(),
                ms(oracle).c_str(), ms(two).c_str(), ms(comp).c_str(),
                ms(mem).c_str());
  }
  print_rule();
  std::printf("geomean over-oracle: two-stage %s, compute-only %s, "
              "memory-only %s\n",
              ratio(geomean(two_stage)).c_str(),
              ratio(geomean(comp_only)).c_str(),
              ratio(geomean(mem_only)).c_str());
  std::printf("The two-stage filter should dominate both single-criterion "
              "policies — the paper's design rationale.\n");
  return 0;
}
