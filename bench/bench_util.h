// Shared table-printing and experiment helpers for the benchmark harness.
//
// Every bench binary regenerates one table or figure from the paper and
// prints it in a fixed-width layout with the paper's row/series structure,
// so the output can be compared against the publication side by side
// (EXPERIMENTS.md records that comparison).
#pragma once

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "conv/conv_shape.h"

namespace tdc::bench {

inline void print_rule(int width = 118) {
  for (int i = 0; i < width; ++i) {
    std::putchar('-');
  }
  std::putchar('\n');
}

inline void print_title(const std::string& title) {
  std::printf("\n");
  print_rule();
  std::printf("%s\n", title.c_str());
  print_rule();
}

inline std::string shape_label(const ConvShape& s) {
  return "(" + std::to_string(s.c) + "," + std::to_string(s.n) + "," +
         std::to_string(s.h) + "," + std::to_string(s.w) + ")";
}

/// ms with 4 decimals, matching the paper's figure axes.
inline std::string ms(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4f", seconds * 1e3);
  return buf;
}

inline std::string ratio(double x) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2fx", x);
  return buf;
}

/// Geometric mean of a vector of positive ratios.
inline double geomean(const std::vector<double>& xs) {
  double log_sum = 0.0;
  for (const double x : xs) {
    log_sum += std::log(x);
  }
  return xs.empty() ? 0.0 : std::exp(log_sum / static_cast<double>(xs.size()));
}

}  // namespace tdc::bench
