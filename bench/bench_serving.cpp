// Serving-runtime benchmark: the InferenceServer replica fleet and the
// latency-SLO coalescer on full-width ResNet-18 (the paper's end-to-end
// subject), decomposed by a real codesign pass at the 65% budget.
//
// Three sections, emitted to BENCH_serving.json alongside the table:
//   * fleet cold-start — four replicas compiled from one model; with
//     single-flight PlanCache compilation the 2nd..4th replica must be pure
//     cache hits (misses == entries after a cleared cache);
//   * throughput scaling — the arena split in serving's throughput mode
//     (inter_op wide, intra_op = 1: every client's region runs on its own
//     lane) with 1, 2 and 4 closed-loop clients. CI enforces the scaling
//     floor: 4 clients must sustain >= 2x the single-caller QPS, with
//     4-client p99 within 8x the solo p50 (both gated on >= 4 hardware
//     threads — a 1-core container serializes everything);
//   * coalescer — one replica, max_batch = 4, a 10 ms SLO window, four
//     clients: single-image arrivals must ride batched fan-outs
//     (batches > 0, coalesced_images > 0), reported but not gated.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "exec/microbench.h"
#include "exec/plan_cache.h"
#include "nn/models.h"
#include "serving/inference_server.h"

namespace {

using Clock = std::chrono::steady_clock;

struct LoadResult {
  double qps = 0.0;
  double p50_s = 0.0;
  double p99_s = 0.0;
  std::int64_t requests = 0;
};

double percentile(std::vector<double> xs, double p) {
  std::sort(xs.begin(), xs.end());
  const std::size_t idx = std::min(
      xs.size() - 1, static_cast<std::size_t>(p * static_cast<double>(xs.size())));
  return xs[idx];
}

// Closed-loop load: `clients` threads each send `per_client` back-to-back
// single-image requests; QPS is total completions over the slowest client's
// wall clock, latency is measured per request at the client.
LoadResult run_load(tdc::InferenceServer& server,
                    const std::vector<tdc::Tensor>& inputs, int clients,
                    int per_client) {
  using tdc::Tensor;
  const tdc::OpShape& out = server.output_shape();
  std::vector<std::vector<double>> lat(static_cast<std::size_t>(clients));
  std::vector<std::thread> threads;
  const auto t0 = Clock::now();
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      Tensor y({out.c, out.h, out.w});
      const Tensor& x = inputs[static_cast<std::size_t>(c) % inputs.size()];
      for (int r = 0; r < per_client; ++r) {
        const auto q0 = Clock::now();
        server.infer(x, &y);
        lat[static_cast<std::size_t>(c)].push_back(
            std::chrono::duration<double>(Clock::now() - q0).count());
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  const double wall = std::chrono::duration<double>(Clock::now() - t0).count();

  LoadResult res;
  std::vector<double> all;
  for (const auto& v : lat) {
    all.insert(all.end(), v.begin(), v.end());
  }
  res.requests = static_cast<std::int64_t>(all.size());
  res.qps = static_cast<double>(res.requests) / wall;
  res.p50_s = percentile(all, 0.50);
  res.p99_s = percentile(all, 0.99);
  return res;
}

}  // namespace

int main() {
  using namespace tdc;
  const DeviceSpec device = make_a100();
  const ModelSpec model = make_resnet18();
  const auto weights = random_model_weights(model, 20230225);

  CodesignOptions cd_opts;
  cd_opts.budget = 0.65;
  const CodesignResult codesign =
      run_codesign(device, model.decomposable_conv_shapes(), cd_opts);
  host_calibration();

  constexpr int kClientsMax = 4;
  constexpr int kPerClient = 8;

  // --- fleet cold-start: single-flight sharing across replicas ------------
  PlanCache::instance().clear();
  ServerOptions fleet_opts;
  fleet_opts.replicas = kClientsMax;
  fleet_opts.coalescer.max_batch = 1;  // pure fleet mode, no batching
  const auto t_cold = Clock::now();
  InferenceServer server = InferenceServer::compile(device, model, weights,
                                                    codesign.layers, fleet_opts);
  const double fleet_cold_s =
      std::chrono::duration<double>(Clock::now() - t_cold).count();
  const PlanCache::Stats cache = PlanCache::instance().stats();

  // --- throughput scaling: inter-op lanes, one intra-op thread each -------
  const ArenaConfig saved_arenas = arena_config();
  set_arena_config(ArenaConfig{.inter_op = kMaxArenas, .intra_op = 1});

  Rng rng(20230226);
  const OpShape& in = server.input_shape();
  std::vector<Tensor> inputs;
  for (int c = 0; c < kClientsMax; ++c) {
    inputs.push_back(Tensor::random_uniform({in.c, in.h, in.w}, rng));
  }
  // Warm-up: touch every replica's workspace once before the timers start.
  (void)run_load(server, inputs, kClientsMax, 1);

  const ParallelStats par_before = parallel_stats();
  std::vector<LoadResult> scaling;
  for (const int clients : {1, 2, kClientsMax}) {
    scaling.push_back(run_load(server, inputs, clients, kPerClient));
  }
  const std::int64_t fallbacks =
      parallel_stats().serial_fallbacks - par_before.serial_fallbacks;
  set_arena_config(saved_arenas);

  // --- coalescer: one replica, four clients ride batched fan-outs ---------
  ServerOptions co_opts;
  co_opts.replicas = 1;
  co_opts.coalescer.max_batch = kClientsMax;
  co_opts.coalescer.max_delay_s = 0.010;
  InferenceServer coalesced = InferenceServer::compile(device, model, weights,
                                                       codesign.layers, co_opts);
  (void)run_load(coalesced, inputs, kClientsMax, 1);
  const ServerStats co_before = coalesced.stats();
  const LoadResult co = run_load(coalesced, inputs, kClientsMax, kPerClient);
  const ServerStats co_stats = coalesced.stats();
  const std::int64_t co_batches = co_stats.batches - co_before.batches;
  const std::int64_t co_images =
      co_stats.coalesced_images - co_before.coalesced_images;

  // ---- table --------------------------------------------------------------
  bench::print_title(
      "Serving — ResNet-18 InferenceServer fleet (" +
      std::to_string(fleet_opts.replicas) + " replicas, " +
      std::to_string(cache.entries) + " cached plans)");
  std::printf("fleet compile  %8sms cold   cache misses %lld  hits %lld  "
              "(single-flight: replicas 2..%d are pure hits)\n",
              bench::ms(fleet_cold_s).c_str(),
              static_cast<long long>(cache.misses),
              static_cast<long long>(cache.hits), fleet_opts.replicas);
  std::printf("%-10s %8s %10s %10s %10s\n", "clients", "QPS", "p50 ms",
              "p99 ms", "scaling");
  for (std::size_t i = 0; i < scaling.size(); ++i) {
    const int clients = (i == 0) ? 1 : (i == 1 ? 2 : kClientsMax);
    std::printf("%-10d %8.2f %10s %10s %10s\n", clients, scaling[i].qps,
                bench::ms(scaling[i].p50_s).c_str(),
                bench::ms(scaling[i].p99_s).c_str(),
                bench::ratio(scaling[i].qps / scaling[0].qps).c_str());
  }
  std::printf("coalescer  %8.2f QPS   p99 %sms   %lld batches, %lld coalesced "
              "images (1 replica, batch %d, %.0f ms SLO)\n",
              co.qps, bench::ms(co.p99_s).c_str(),
              static_cast<long long>(co_batches),
              static_cast<long long>(co_images), kClientsMax,
              co_opts.coalescer.max_delay_s * 1e3);
  std::printf("threads: %d, hardware: %u, arena fallbacks during scaling: "
              "%lld\n",
              num_threads(), std::thread::hardware_concurrency(),
              static_cast<long long>(fallbacks));

  // ---- JSON ---------------------------------------------------------------
  FILE* json = std::fopen("BENCH_serving.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot open BENCH_serving.json for writing\n");
    return 1;
  }
  std::fprintf(json,
               "{\n  \"bench\": \"serving\",\n  \"model\": \"resnet18\",\n"
               "  \"threads\": %d,\n  \"replicas\": %d,\n"
               "  \"fleet_cold_ms\": %.3f,\n"
               "  \"cache\": {\"entries\": %lld, \"misses\": %lld, "
               "\"hits\": %lld},\n  \"scaling\": [\n",
               num_threads(), fleet_opts.replicas, fleet_cold_s * 1e3,
               static_cast<long long>(cache.entries),
               static_cast<long long>(cache.misses),
               static_cast<long long>(cache.hits));
  for (std::size_t i = 0; i < scaling.size(); ++i) {
    const int clients = (i == 0) ? 1 : (i == 1 ? 2 : kClientsMax);
    std::fprintf(json,
                 "    {\"clients\": %d, \"qps\": %.3f, \"p50_ms\": %.3f, "
                 "\"p99_ms\": %.3f}%s\n",
                 clients, scaling[i].qps, scaling[i].p50_s * 1e3,
                 scaling[i].p99_s * 1e3,
                 i + 1 < scaling.size() ? "," : "");
  }
  std::fprintf(json,
               "  ],\n  \"serial_fallbacks\": %lld,\n"
               "  \"coalescer\": {\"qps\": %.3f, \"p99_ms\": %.3f, "
               "\"batches\": %lld, \"coalesced_images\": %lld}\n}\n",
               static_cast<long long>(fallbacks), co.qps, co.p99_s * 1e3,
               static_cast<long long>(co_batches),
               static_cast<long long>(co_images));
  std::fclose(json);
  std::printf("wrote BENCH_serving.json\n");

  // Regression bars (CI runs this binary). Cache sharing and coalescing are
  // machine-independent; the QPS floors need real cores, so they gate on
  // hardware_concurrency — a 1-core container serializes every client and
  // scaling is meaningless there.
  if (cache.misses != cache.entries || cache.hits < cache.entries) {
    std::fprintf(stderr,
                 "FAIL: fleet compile not single-flight (entries %lld, "
                 "misses %lld, hits %lld)\n",
                 static_cast<long long>(cache.entries),
                 static_cast<long long>(cache.misses),
                 static_cast<long long>(cache.hits));
    return 1;
  }
  if (co_batches <= 0 || co_images <= 0) {
    std::fprintf(stderr,
                 "FAIL: coalescer never batched (batches %lld, images %lld)\n",
                 static_cast<long long>(co_batches),
                 static_cast<long long>(co_images));
    return 1;
  }
  if (std::thread::hardware_concurrency() >= 4 && num_threads() >= 4) {
    const double scale4 = scaling.back().qps / scaling.front().qps;
    if (scale4 < 2.0) {
      std::fprintf(stderr,
                   "FAIL: 4 clients sustain only %.2fx single-caller QPS "
                   "(floor: 2.0x)\n",
                   scale4);
      return 1;
    }
    if (scaling.back().p99_s > 8.0 * scaling.front().p50_s) {
      std::fprintf(stderr,
                   "FAIL: 4-client p99 %.1fms exceeds 8x solo p50 %.1fms\n",
                   scaling.back().p99_s * 1e3,
                   scaling.front().p50_s * 1e3);
      return 1;
    }
  }
  return 0;
}
