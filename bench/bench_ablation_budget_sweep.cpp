// Section 7.2 budget sweep: ResNet-18 at budgets 65/70/75/80 %.
//
// The paper reports accuracies 69.70/67.86/66.59/64.81 and achieved
// reductions 66/70/76/80 % — aggressive budgets cost accuracy. This bench
// reproduces (a) the achieved-FLOPs side exactly via the co-design pass on
// the real ResNet-18 inventory, and (b) the accuracy trend on the synthetic
// task with the width-reduced ResNet-20-style trainable model (the offline
// substitution for ImageNet; DESIGN.md).
#include "bench_util.h"
#include "nn/model_cost.h"
#include "nn/models.h"
#include "train/admm.h"
#include "train/trainer.h"
#include "train/zoo.h"
#include "tucker/flops.h"

namespace {

using namespace tdc;

// Rank plan scaled to hit approximately the requested reduction.
std::vector<TuckerRanks> plan_for_budget(const TrainableModel& model,
                                         double budget) {
  std::vector<TuckerRanks> ranks;
  for (const auto& slot : model.spatial_convs) {
    const ConvShape& g = slot.conv->geometry();
    // Shrink both channel modes; the exponent over-weights the budget so
    // the 65→80 % sweep spans a capacity range wide enough for the small
    // proxy model to show the accuracy slope.
    const double keep = std::pow(1.0 - budget, 1.5);
    ranks.push_back(
        {std::max<std::int64_t>(2, static_cast<std::int64_t>(g.c * keep)),
         std::max<std::int64_t>(2, static_cast<std::int64_t>(g.n * keep))});
  }
  return ranks;
}

double accuracy_at_budget(const SyntheticData& data, double budget) {
  Rng rng(404);
  MiniResNetSpec spec;
  spec.input_hw = 16;
  spec.stage_widths = {8, 16, 32};
  TrainableModel model = make_mini_resnet(spec, rng);

  TrainOptions warm;
  warm.epochs = 2;
  warm.batch_size = 32;
  warm.sgd.lr = 0.08;
  train_model(model.net.get(), data, warm);

  const auto ranks = plan_for_budget(model, budget);
  std::vector<AdmmTarget> targets;
  for (std::size_t i = 0; i < model.spatial_convs.size(); ++i) {
    targets.push_back({model.spatial_convs[i].conv, ranks[i]});
  }
  AdmmState admm(targets, {/*rho=*/0.6});
  TrainOptions reg;
  reg.epochs = 3;
  reg.batch_size = 32;
  reg.sgd.lr = 0.04;
  train_model(model.net.get(), data, reg, &admm);

  tuckerize_model(&model, ranks);
  TrainOptions tune;
  tune.epochs = 1;
  tune.batch_size = 32;
  tune.sgd.lr = 0.02;
  train_model(model.net.get(), data, tune);
  return evaluate_accuracy(model.net.get(), data.test);
}

}  // namespace

int main() {
  using namespace tdc;
  using namespace tdc::bench;
  const DeviceSpec device = make_a100();
  const ModelSpec resnet18 = make_resnet18();

  SyntheticSpec dspec;
  dspec.classes = 10;
  dspec.channels = 3;
  dspec.hw = 16;
  dspec.train_size = 1024;
  dspec.test_size = 512;
  dspec.noise = 1.1;
  const SyntheticData data = make_synthetic_data(dspec);

  print_title("Section 7.2 budget sweep (ResNet-18 ranks on A100; accuracy "
              "trend on the synthetic proxy task)");
  std::printf("%-8s %14s %16s %18s\n", "B", "achieved dn", "e2e TDC (ms)",
              "proxy accuracy (%)");
  double prev_acc = 1.0;
  bool monotone = true;
  for (const double budget : {0.65, 0.70, 0.75, 0.80}) {
    CodesignOptions opts;
    opts.budget = budget;
    const CodesignResult r = compress_model(device, resnet18, opts);
    const double latency = model_latency_compressed(device, resnet18, r,
                                                    CoreBackend::kTdcModel);
    const double acc = accuracy_at_budget(data, budget);
    if (acc > prev_acc + 0.02) {
      monotone = false;
    }
    prev_acc = acc;
    std::printf("%5.0f%%  %13.1f%% %16s %18.2f\n", budget * 100.0,
                r.achieved_flops_reduction() * 100.0, ms(latency).c_str(),
                acc * 100.0);
  }
  print_rule();
  std::printf("Paper: 69.70 / 67.86 / 66.59 / 64.81 %% Top-1 at 66/70/76/80%% "
              "reduction — accuracy falls as the budget grows.\n");
  std::printf("Proxy accuracy trend is %s.\n",
              monotone ? "non-increasing (matches the paper)"
                       : "not strictly monotone at this scale");
  return 0;
}
