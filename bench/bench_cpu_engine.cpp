// CPU execution-engine benchmark: packed-SIMD GEMM vs. the legacy blocked
// GEMM, and the fused/batched Tucker pipeline vs. the staged one, on
// ResNet-18 layer shapes. Emits BENCH_cpu_engine.json alongside the table so
// CI and the paper-comparison notes can track the numbers.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "conv/tucker_conv.h"
#include "linalg/gemm.h"
#include "tucker/tucker.h"

namespace {

using Clock = std::chrono::steady_clock;

template <class F>
double best_of(int reps, const F& f) {
  double best = 1e300;
  for (int i = 0; i < reps; ++i) {
    const auto t0 = Clock::now();
    f();
    const double s = std::chrono::duration<double>(Clock::now() - t0).count();
    best = std::min(best, s);
  }
  return best;
}

struct GemmRow {
  std::int64_t size;
  double blocked_s;
  double packed_s;
};

struct TuckerRow {
  std::string layer;
  tdc::ConvShape shape;
  tdc::TuckerRanks ranks;
  double staged_s;
  double fused_s;
  double batched_staged_s;  // per image, batch kBatch
  double batched_fused_s;   // per image, batch kBatch
};

constexpr std::int64_t kBatch = 8;

}  // namespace

int main() {
  using namespace tdc;
  Rng rng(20230225);  // PPoPP'23

  // ---- packed vs. blocked GEMM ------------------------------------------
  std::vector<GemmRow> gemm_rows;
  for (const std::int64_t n : {std::int64_t{256}, std::int64_t{512}}) {
    std::vector<float> a(static_cast<std::size_t>(n * n));
    std::vector<float> b(static_cast<std::size_t>(n * n));
    std::vector<float> c(static_cast<std::size_t>(n * n));
    for (float& v : a) {
      v = static_cast<float>(rng.uniform(-1.0, 1.0));
    }
    for (float& v : b) {
      v = static_cast<float>(rng.uniform(-1.0, 1.0));
    }
    const int reps = n <= 256 ? 20 : 10;
    GemmRow row;
    row.size = n;
    row.blocked_s = best_of(reps, [&] { gemm_blocked(n, n, n, a, b, c); });
    row.packed_s = best_of(reps, [&] { gemm(n, n, n, a, b, c); });
    gemm_rows.push_back(row);
  }

  // ---- staged vs. fused Tucker on ResNet-18 layers ----------------------
  struct Layer {
    const char* name;
    ConvShape shape;
  };
  const Layer layers[] = {
      {"conv2_x", ConvShape::same(64, 64, 56, 3)},
      {"conv3_1", ConvShape::same(64, 128, 56, 3, 2)},
      {"conv3_x", ConvShape::same(128, 128, 28, 3)},
      {"conv4_x", ConvShape::same(256, 256, 14, 3)},
      {"conv5_x", ConvShape::same(512, 512, 7, 3)},
  };

  std::vector<TuckerRow> tucker_rows;
  for (const Layer& layer : layers) {
    const ConvShape& s = layer.shape;
    // Paper-style 4× channel compression on both modes.
    const TuckerRanks ranks{std::max<std::int64_t>(s.c / 4, 1),
                            std::max<std::int64_t>(s.n / 4, 1)};
    const Tensor k = Tensor::random_uniform({s.c, s.n, s.r, s.s}, rng);
    const TuckerFactors f = tucker_decompose(k, ranks);
    const Tensor x = Tensor::random_uniform({s.c, s.h, s.w}, rng);
    const Tensor xb = Tensor::random_uniform({kBatch, s.c, s.h, s.w}, rng);

    TuckerRow row;
    row.layer = layer.name;
    row.shape = s;
    row.ranks = ranks;
    row.staged_s = best_of(10, [&] { tucker_conv(x, f, s); });
    row.fused_s = best_of(10, [&] { tucker_conv_fused(x, f, s); });
    row.batched_staged_s =
        best_of(5, [&] { tucker_conv_batched(xb, f, s, /*fused=*/false); }) /
        kBatch;
    row.batched_fused_s =
        best_of(5, [&] { tucker_conv_batched(xb, f, s, /*fused=*/true); }) /
        kBatch;
    tucker_rows.push_back(row);
  }

  // ---- table ------------------------------------------------------------
  bench::print_title("CPU execution engine — packed GEMM vs. legacy blocked");
  std::printf("%-10s %12s %12s %12s %10s\n", "size", "blocked", "packed",
              "GFLOP/s", "speedup");
  for (const GemmRow& r : gemm_rows) {
    const double flops = 2.0 * static_cast<double>(r.size) *
                         static_cast<double>(r.size) *
                         static_cast<double>(r.size);
    std::printf("%-10lld %10sms %10sms %12.2f %10s\n",
                static_cast<long long>(r.size), bench::ms(r.blocked_s).c_str(),
                bench::ms(r.packed_s).c_str(), flops / r.packed_s * 1e-9,
                bench::ratio(r.blocked_s / r.packed_s).c_str());
  }

  bench::print_title(
      "Tucker pipeline (ResNet-18 layers, ranks C/4) — staged vs. fused");
  std::printf("%-10s %-22s %12s %12s %10s %14s %14s\n", "layer", "shape",
              "staged", "fused", "speedup", "batch-staged", "batch-fused");
  for (const TuckerRow& r : tucker_rows) {
    std::printf("%-10s %-22s %10sms %10sms %10s %12sms %12sms\n",
                r.layer.c_str(), bench::shape_label(r.shape).c_str(),
                bench::ms(r.staged_s).c_str(), bench::ms(r.fused_s).c_str(),
                bench::ratio(r.staged_s / r.fused_s).c_str(),
                bench::ms(r.batched_staged_s).c_str(),
                bench::ms(r.batched_fused_s).c_str());
  }
  std::printf("\nthreads: %d (override with TDC_NUM_THREADS)\n", num_threads());

  // ---- JSON -------------------------------------------------------------
  FILE* json = std::fopen("BENCH_cpu_engine.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot open BENCH_cpu_engine.json for writing\n");
    return 1;
  }
  std::fprintf(json, "{\n  \"bench\": \"cpu_engine\",\n  \"threads\": %d,\n",
               num_threads());
  std::fprintf(json, "  \"gemm\": [\n");
  for (std::size_t i = 0; i < gemm_rows.size(); ++i) {
    const GemmRow& r = gemm_rows[i];
    const double flops = 2.0 * static_cast<double>(r.size) *
                         static_cast<double>(r.size) *
                         static_cast<double>(r.size);
    std::fprintf(json,
                 "    {\"m\": %lld, \"n\": %lld, \"k\": %lld, "
                 "\"blocked_ms\": %.4f, \"packed_ms\": %.4f, "
                 "\"packed_gflops\": %.2f, \"speedup\": %.3f}%s\n",
                 static_cast<long long>(r.size), static_cast<long long>(r.size),
                 static_cast<long long>(r.size), r.blocked_s * 1e3,
                 r.packed_s * 1e3, flops / r.packed_s * 1e-9,
                 r.blocked_s / r.packed_s,
                 i + 1 < gemm_rows.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n  \"tucker\": [\n");
  for (std::size_t i = 0; i < tucker_rows.size(); ++i) {
    const TuckerRow& r = tucker_rows[i];
    std::fprintf(
        json,
        "    {\"layer\": \"%s\", \"c\": %lld, \"n\": %lld, \"hw\": %lld, "
        "\"stride\": %lld, \"d1\": %lld, \"d2\": %lld, "
        "\"staged_ms\": %.4f, \"fused_ms\": %.4f, \"speedup\": %.3f, "
        "\"batch\": %lld, \"batched_staged_ms_per_image\": %.4f, "
        "\"batched_fused_ms_per_image\": %.4f}%s\n",
        r.layer.c_str(), static_cast<long long>(r.shape.c),
        static_cast<long long>(r.shape.n), static_cast<long long>(r.shape.h),
        static_cast<long long>(r.shape.stride_h),
        static_cast<long long>(r.ranks.d1), static_cast<long long>(r.ranks.d2),
        r.staged_s * 1e3, r.fused_s * 1e3, r.staged_s / r.fused_s,
        static_cast<long long>(kBatch), r.batched_staged_s * 1e3,
        r.batched_fused_s * 1e3, i + 1 < tucker_rows.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("wrote BENCH_cpu_engine.json\n");
  return 0;
}
