// Figure 7: per-shape kernel comparison on the (simulated) 2080 Ti.
#include "kernel_figure.h"

int main() {
  const tdc::DeviceSpec device = tdc::make_rtx2080ti();
  const auto rows = tdc::bench::run_kernel_comparison(device);
  tdc::bench::print_kernel_comparison(device, rows, "Figure 7");
  return 0;
}
