// Shared implementation of the Figure 6/7 per-shape kernel comparison.
//
// For each of the 18 core-convolution shapes the paper plots, this prints
// the simulated latency of: cuDNN-FFT, cuDNN-WINOGRAD, cuDNN-GEMM, the
// TVM-style scheme (auto-tuned), TDC with oracle tiling, and TDC with the
// analytical tiling model — then the average speedups the paper quotes in
// Section 7.3.
#pragma once

#include <cmath>
#include <vector>

#include "bench_util.h"
#include "core/tdc_model.h"
#include "core/tvm_scheme.h"
#include "gpusim/library_cost.h"
#include "nn/models.h"

namespace tdc::bench {

struct KernelRow {
  ConvShape shape;
  double fft = 0.0;
  double winograd = 0.0;
  double gemm = 0.0;
  double tvm = 0.0;
  double tdc_oracle = 0.0;
  double tdc_model = 0.0;
};

inline std::vector<KernelRow> run_kernel_comparison(const DeviceSpec& device) {
  std::vector<KernelRow> rows;
  for (const ConvShape& s : figure6_core_shapes()) {
    KernelRow r;
    r.shape = s;
    r.fft = cudnn_fft_cost(device, s).total_s;
    r.winograd = cudnn_winograd_cost(device, s).total_s;
    r.gemm = cudnn_implicit_gemm_cost(device, s).total_s;
    r.tvm = tvm_best_cost(device, s).total_s;
    r.tdc_oracle = tdc_core_cost(device, s, select_tiling_oracle(device, s)).total_s;
    r.tdc_model = tdc_core_cost(device, s, select_tiling_model(device, s)).total_s;
    rows.push_back(r);
  }
  return rows;
}

inline void print_kernel_comparison(const DeviceSpec& device,
                                    const std::vector<KernelRow>& rows,
                                    const char* figure_name) {
  print_title(std::string(figure_name) +
              ": core-convolution kernel comparison on " + device.name +
              " (simulated latency, ms)");
  std::printf("%-20s %12s %12s %12s %12s %12s %12s\n", "shape (C,N,H,W)",
              "cuDNN-FFT", "cuDNN-WINO", "cuDNN-GEMM", "TVM", "TDC-ORACLE",
              "TDC-MODEL");
  std::vector<double> v_fft, v_wino, v_gemm, v_tvm, v_model_vs_oracle;
  for (const auto& r : rows) {
    std::printf("%-20s %12s %12s %12s %12s %12s %12s\n",
                shape_label(r.shape).c_str(), ms(r.fft).c_str(),
                ms(r.winograd).c_str(), ms(r.gemm).c_str(), ms(r.tvm).c_str(),
                ms(r.tdc_oracle).c_str(), ms(r.tdc_model).c_str());
    v_fft.push_back(r.fft / r.tdc_oracle);
    v_wino.push_back(r.winograd / r.tdc_oracle);
    v_gemm.push_back(r.gemm / r.tdc_oracle);
    v_tvm.push_back(r.tvm / r.tdc_oracle);
    v_model_vs_oracle.push_back(r.tdc_model / r.tdc_oracle);
  }
  print_rule();
  std::printf("TDC-ORACLE average speedup:  %s over cuDNN-FFT, %s over "
              "cuDNN-WINOGRAD, %s over cuDNN-GEMM, %s over TVM\n",
              ratio(geomean(v_fft)).c_str(), ratio(geomean(v_wino)).c_str(),
              ratio(geomean(v_gemm)).c_str(), ratio(geomean(v_tvm)).c_str());
  std::vector<double> v_fft_m, v_wino_m, v_gemm_m, v_tvm_m;
  for (const auto& r : rows) {
    v_fft_m.push_back(r.fft / r.tdc_model);
    v_wino_m.push_back(r.winograd / r.tdc_model);
    v_gemm_m.push_back(r.gemm / r.tdc_model);
    v_tvm_m.push_back(r.tvm / r.tdc_model);
  }
  std::printf("TDC-MODEL  average speedup:  %s over cuDNN-FFT, %s over "
              "cuDNN-WINOGRAD, %s over cuDNN-GEMM, %s over TVM\n",
              ratio(geomean(v_fft_m)).c_str(), ratio(geomean(v_wino_m)).c_str(),
              ratio(geomean(v_gemm_m)).c_str(), ratio(geomean(v_tvm_m)).c_str());
  std::printf("TDC-MODEL vs TDC-ORACLE overhead: %s (paper reports ~1.25x)\n",
              ratio(geomean(v_model_vs_oracle)).c_str());
}

}  // namespace tdc::bench
