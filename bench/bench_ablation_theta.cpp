// Section 6 ablation: the θ skip threshold.
//
// θ controls when a layer stays undecomposed because the Tucker pipeline's
// two extra 1×1 launches would eat the win. The paper fixes θ = 15 %; this
// ablation sweeps θ and reports how many layers decompose, the achieved
// FLOPs reduction, and the end-to-end latency on ResNet-18 / A100.
#include "bench_util.h"
#include "nn/model_cost.h"
#include "nn/models.h"

int main() {
  using namespace tdc;
  using namespace tdc::bench;
  const DeviceSpec device = make_a100();
  const ModelSpec model = make_resnet18();

  print_title("Theta ablation (ResNet-18, A100, budget 65%)");
  std::printf("%-8s %12s %12s %14s %12s\n", "theta", "decomposed", "FLOPs dn",
              "e2e TDC (ms)", "speedup");
  const double original = model_latency_original(device, model);
  for (const double theta : {0.0, 0.05, 0.15, 0.30, 0.50, 0.80}) {
    CodesignOptions opts;
    opts.budget = 0.65;
    opts.theta = theta;
    const CodesignResult r = compress_model(device, model, opts);
    std::int64_t decomposed = 0;
    for (const auto& dec : r.layers) {
      decomposed += dec.decomposed;
    }
    const double latency = model_latency_compressed(device, model, r,
                                                    CoreBackend::kTdcModel);
    std::printf("%-8.2f %12lld %11.1f%% %14s %12s\n", theta,
                static_cast<long long>(decomposed),
                r.achieved_flops_reduction() * 100.0, ms(latency).c_str(),
                ratio(original / latency).c_str());
  }
  print_rule();
  std::printf("Paper uses theta = 0.15; very large theta keeps every layer "
              "(no compression), theta = 0 decomposes even break-even "
              "layers.\n");
  return 0;
}
