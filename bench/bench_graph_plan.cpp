// Graph-level plan benchmark: the full ResNet-18 inventory (the Figure 8/9
// end-to-end subject) compiled into one InferenceSession.
//
// Three comparisons, emitted to BENCH_graph_plan.json alongside the table:
//   * compile, cold vs cached — the descriptor-keyed PlanCache must make
//     recompiling a repeated model shape ≥10× cheaper than the first build;
//   * serving, per-op vs session — every op run with privately allocated
//     activations/workspaces per request, versus one arena-planned
//     allocation-free graph walk;
//   * batched session serving throughput.
//
// Decomposition decisions come from a real codesign pass at the paper's 65%
// ResNet-18 budget, taken at full width: the tridiagonal eigensolver
// (linalg/eig.h) factorizes the 256/512-channel stages in well under a
// second each, so the cold column now includes every factorization the
// codesign asked for.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "exec/graph_plan.h"
#include "exec/microbench.h"
#include "exec/plan_cache.h"
#include "nn/models.h"

namespace {

using Clock = std::chrono::steady_clock;

template <class F>
double best_of(int reps, const F& f) {
  double best = 1e300;
  for (int i = 0; i < reps; ++i) {
    const auto t0 = Clock::now();
    f();
    const double s = std::chrono::duration<double>(Clock::now() - t0).count();
    best = std::min(best, s);
  }
  return best;
}

}  // namespace

int main() {
  using namespace tdc;
  const DeviceSpec device = make_a100();
  const ModelSpec model = make_resnet18();
  const auto weights = random_model_weights(model, 20230225);

  CodesignOptions cd_opts;
  cd_opts.budget = 0.65;
  const CodesignResult codesign =
      run_codesign(device, model.decomposable_conv_shapes(), cd_opts);
  const std::vector<LayerDecision>& decisions = codesign.layers;
  std::int64_t decomposed = 0;
  for (const LayerDecision& d : decisions) {
    decomposed += d.decomposed ? 1 : 0;
  }

  // dense_algo stays at its kAuto default: sessions resolve it with the
  // host cost provider now, so the historical kIm2col pin is no longer
  // needed for CPU serving (the option remains for explicit overrides).
  SessionOptions options;

  // Calibrate the host cost model before the timers start — it is a
  // once-per-process cost, not part of any compile.
  host_calibration();

  // --- compile: cold (empty cache) vs cached (recompile) ------------------
  PlanCache::instance().clear();
  const auto t_cold = Clock::now();
  InferenceSession session =
      InferenceSession::compile(device, model, weights, decisions, options);
  const double cold_s =
      std::chrono::duration<double>(Clock::now() - t_cold).count();
  const PlanCache::Stats cold_stats = PlanCache::instance().stats();

  const double cached_s = best_of(3, [&] {
    session =
        InferenceSession::compile(device, model, weights, decisions, options);
  });
  const PlanCache::Stats cached_stats = PlanCache::instance().stats();

  // --- serving: per-op private buffers vs arena-planned session -----------
  Rng rng(20230226);
  const OpShape& in = session.input_shape();
  const OpShape& out = session.output_shape();
  const Tensor x = Tensor::random_uniform({in.c, in.h, in.w}, rng);

  std::int64_t sum_act = 0;
  for (std::int64_t i = 0; i + 1 < session.num_ops(); ++i) {
    sum_act += session.op(i).output_shape().floats();
  }

  const double per_op_s = best_of(5, [&] {
    // The unplanned composition: every op allocates its output and scratch
    // per request (what chaining single-shot runs looks like).
    std::vector<Tensor> outs;
    for (std::int64_t i = 0; i < session.num_ops(); ++i) {
      const OpPlan& op = session.op(i);
      std::vector<const float*> inputs;
      for (const std::int64_t j : session.op_inputs(i)) {
        inputs.push_back(j == InferenceSession::kModelInput
                             ? x.raw()
                             : outs[static_cast<std::size_t>(j)].raw());
      }
      Tensor y({op.output_shape().c, op.output_shape().h,
                op.output_shape().w});
      std::vector<float> ws(
          static_cast<std::size_t>(op.workspace_bytes() / sizeof(float)));
      op.run_inputs(
          std::span<const float* const>(inputs.data(), inputs.size()),
          y.raw(), ws);
      outs.push_back(std::move(y));
    }
  });

  Tensor y({out.c, out.h, out.w});
  std::vector<float> ws(
      static_cast<std::size_t>(session.workspace_bytes() / sizeof(float)));
  const double session_s = best_of(5, [&] { session.run(x, &y, ws); });

  // --- batched serving -----------------------------------------------------
  constexpr std::int64_t kBatch = 8;
  const Tensor xb = Tensor::random_uniform({kBatch, in.c, in.h, in.w}, rng);
  Tensor yb({kBatch, out.c, out.h, out.w});
  std::vector<float> wsb(static_cast<std::size_t>(
      session.batched_workspace_bytes(kBatch) / sizeof(float)));
  const double batched_s =
      best_of(3, [&] { session.run_batched(xb, &yb, wsb); });

  // ---- table --------------------------------------------------------------
  bench::print_title(
      "Graph plan — ResNet-18 ModelSpec as one InferenceSession (" +
      std::to_string(session.num_ops()) + " ops, " +
      std::to_string(decomposed) + " decomposed convs)");
  std::printf("compile   cold %8sms   cached %8sms   speedup %s   "
              "(cache: %lld entries, %lld hits after recompiles)\n",
              bench::ms(cold_s).c_str(), bench::ms(cached_s).c_str(),
              bench::ratio(cold_s / cached_s).c_str(),
              static_cast<long long>(cached_stats.entries),
              static_cast<long long>(cached_stats.hits));
  std::printf("serve     per-op %6sms   session %6sms   speedup %s   "
              "(arena %.1f MiB vs %.1f MiB private activations)\n",
              bench::ms(per_op_s).c_str(), bench::ms(session_s).c_str(),
              bench::ratio(per_op_s / session_s).c_str(),
              session.arena_floats() * 4.0 / (1024.0 * 1024.0),
              sum_act * 4.0 / (1024.0 * 1024.0));
  std::printf("batched   batch %lld: %sms/batch, %.1f images/s\n",
              static_cast<long long>(kBatch), bench::ms(batched_s).c_str(),
              static_cast<double>(kBatch) / batched_s);
  std::printf("threads: %d (override with TDC_NUM_THREADS)\n", num_threads());

  // ---- JSON ---------------------------------------------------------------
  FILE* json = std::fopen("BENCH_graph_plan.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot open BENCH_graph_plan.json for writing\n");
    return 1;
  }
  std::fprintf(
      json,
      "{\n  \"bench\": \"graph_plan\",\n  \"model\": \"resnet18\",\n"
      "  \"threads\": %d,\n  \"ops\": %lld,\n  \"decomposed_convs\": %lld,\n"
      "  \"arena_floats\": %lld,\n  \"private_activation_floats\": %lld,\n"
      "  \"workspace_mib\": %.2f,\n"
      "  \"compile\": {\"cold_ms\": %.3f, \"cached_ms\": %.3f, "
      "\"speedup\": %.1f, \"cache_entries\": %lld, \"cache_hits\": %lld},\n"
      "  \"serve\": {\"per_op_ms\": %.3f, \"session_ms\": %.3f, "
      "\"speedup\": %.3f},\n"
      "  \"batched\": {\"batch\": %lld, \"ms\": %.3f, "
      "\"images_per_s\": %.1f}\n}\n",
      num_threads(), static_cast<long long>(session.num_ops()),
      static_cast<long long>(decomposed),
      static_cast<long long>(session.arena_floats()),
      static_cast<long long>(sum_act),
      session.workspace_bytes() / (1024.0 * 1024.0), cold_s * 1e3,
      cached_s * 1e3, cold_s / cached_s,
      static_cast<long long>(cached_stats.entries),
      static_cast<long long>(cached_stats.hits), per_op_s * 1e3,
      session_s * 1e3, per_op_s / session_s,
      static_cast<long long>(kBatch), batched_s * 1e3,
      static_cast<double>(kBatch) / batched_s);
  std::fclose(json);
  std::printf("wrote BENCH_graph_plan.json\n");

  // Regression bar (CI runs this binary): the descriptor-keyed cache must
  // keep recompiling a repeated model shape at least 10× cheaper than the
  // cold build. Typical margin is ~80×, so a failure here means the cache
  // key or the hit path broke, not machine noise.
  if (cold_s / cached_s < 10.0) {
    std::fprintf(stderr,
                 "FAIL: cached compile only %.1fx faster than cold "
                 "(regression bar: 10x)\n",
                 cold_s / cached_s);
    return 1;
  }
  return 0;
}
