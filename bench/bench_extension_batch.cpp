// Batch-size sensitivity extension.
//
// The paper's motivation is batch-1 inference ("it is hard to translate the
// FLOPS reduction to real performance increment especially for small batch
// size such as one"). This bench quantifies the flip side: as the batch
// grows, cuDNN's big GEMM tiles fill up, its under-utilization vanishes,
// and the TDC kernel's edge narrows — the regime where the paper's design
// matters is precisely small batch.
#include <vector>

#include "bench_util.h"
#include "core/tdc_model.h"
#include "gpusim/library_cost.h"

int main() {
  using namespace tdc;
  using namespace tdc::bench;
  const DeviceSpec device = make_a100();
  const ConvShape base = ConvShape::same(64, 64, 28, 3);

  print_title("Extension: batch-size sensitivity of the cuDNN-GEMM vs TDC "
              "gap on A100, core shape (64,64,28,28)");
  std::printf("%-8s %14s %14s %14s %12s\n", "batch", "cuDNN (ms)", "TDC (ms)",
              "per-img TDC", "cuDNN/TDC");
  std::vector<double> ratios;
  for (const std::int64_t b : {1, 2, 4, 8, 16, 32, 64}) {
    const ConvShape s = base.with_batch(b);
    const double cudnn = cudnn_implicit_gemm_cost(device, s).total_s;
    const double tdc =
        tdc_core_cost(device, s, select_tiling_oracle(device, s)).total_s;
    ratios.push_back(cudnn / tdc);
    std::printf("%-8lld %14s %14s %14s %12s\n", static_cast<long long>(b),
                ms(cudnn).c_str(), ms(tdc).c_str(),
                ms(tdc / static_cast<double>(b)).c_str(),
                ratio(cudnn / tdc).c_str());
  }
  print_rule();
  std::printf("Gap at batch 1: %s; at batch 64: %s — the library catches up "
              "as its tiles fill (the paper's batch-1 motivation).\n",
              ratio(ratios.front()).c_str(), ratio(ratios.back()).c_str());
  return 0;
}
