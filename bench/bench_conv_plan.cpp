// Plan/execute benchmark: per-call vs. planned execution on ResNet-18 layer
// shapes, batch kBatch. The per-call path is the historical free-function
// API (every call re-derives the weight reshape, re-packs GEMM panels, and
// allocates output + scratch); the planned path compiles the layer once and
// replays it through run_batched with a preallocated workspace. Emits
// BENCH_conv_plan.json alongside the table.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "conv/tucker_conv.h"
#include "exec/compiled_model.h"
#include "tucker/tucker.h"

namespace {

using Clock = std::chrono::steady_clock;

template <class F>
double best_of(int reps, const F& f) {
  double best = 1e300;
  for (int i = 0; i < reps; ++i) {
    const auto t0 = Clock::now();
    f();
    const double s = std::chrono::duration<double>(Clock::now() - t0).count();
    best = std::min(best, s);
  }
  return best;
}

constexpr std::int64_t kBatch = 8;

struct LayerRow {
  std::string layer;
  tdc::ConvShape shape;
  tdc::TuckerRanks ranks;
  double dense_percall_s;    // whole batch, conv2d_im2col per image
  double dense_planned_s;    // whole batch, plan.run_batched
  double tucker_percall_s;   // whole batch, tucker_conv_fused per image
  double tucker_planned_s;   // whole batch, fused plan.run_batched
};

}  // namespace

int main() {
  using namespace tdc;
  Rng rng(20230225);  // PPoPP'23

  // The chainable ResNet-18 residual trunk: per-layer rows and the
  // end-to-end compiled-model comparison share these shapes.
  struct Layer {
    const char* name;
    ConvShape shape;
  };
  const Layer layers[] = {
      {"conv2_x", ConvShape::same(64, 64, 56, 3)},
      {"conv3_1", ConvShape::same(64, 128, 56, 3, 2)},
      {"conv3_x", ConvShape::same(128, 128, 28, 3)},
      {"conv4_1", ConvShape::same(128, 256, 28, 3, 2)},
      {"conv4_x", ConvShape::same(256, 256, 14, 3)},
      {"conv5_1", ConvShape::same(256, 512, 14, 3, 2)},
      {"conv5_x", ConvShape::same(512, 512, 7, 3)},
  };

  std::vector<LayerRow> rows;
  std::vector<Tensor> kernels;
  std::vector<LayerDecision> decisions;
  for (const Layer& layer : layers) {
    const ConvShape& s = layer.shape;
    // Paper-style 4× channel compression on both modes.
    const TuckerRanks ranks{std::max<std::int64_t>(s.c / 4, 1),
                            std::max<std::int64_t>(s.n / 4, 1)};
    const Tensor k = Tensor::random_uniform({s.c, s.n, s.r, s.s}, rng);
    const TuckerFactors f = tucker_decompose(k, ranks);
    const Tensor xb = Tensor::random_uniform({kBatch, s.c, s.h, s.w}, rng);
    kernels.push_back(k);
    LayerDecision dec;
    dec.shape = s;
    dec.decomposed = true;
    dec.ranks = ranks;
    decisions.push_back(dec);

    auto slice = [&](std::int64_t b) {
      Tensor x({s.c, s.h, s.w});
      const std::int64_t stride = x.numel();
      std::copy(xb.raw() + b * stride, xb.raw() + (b + 1) * stride, x.raw());
      return x;
    };

    LayerRow row;
    row.layer = layer.name;
    row.shape = s;
    row.ranks = ranks;

    // --- dense im2col: per-call vs planned --------------------------------
    row.dense_percall_s = best_of(5, [&] {
      for (std::int64_t b = 0; b < kBatch; ++b) {
        conv2d_im2col(slice(b), k, s);
      }
    });
    {
      ConvDescriptor desc;
      desc.shape = s;
      desc.algo = ConvAlgo::kIm2col;
      const auto plan = compile_conv_plan(desc, k);
      Tensor y({kBatch, s.n, s.out_h(), s.out_w()});
      std::vector<float> ws(static_cast<std::size_t>(
          plan->batched_workspace_bytes(kBatch) / sizeof(float)));
      row.dense_planned_s =
          best_of(5, [&] { plan->run_batched(xb, &y, ws); });
    }

    // --- fused Tucker pipeline: per-call vs planned -----------------------
    row.tucker_percall_s = best_of(5, [&] {
      for (std::int64_t b = 0; b < kBatch; ++b) {
        tucker_conv_fused(slice(b), f, s);
      }
    });
    {
      TuckerDescriptor desc;
      desc.shape = s;
      const auto plan = compile_tucker_plan(desc, f);
      Tensor y({kBatch, s.n, s.out_h(), s.out_w()});
      std::vector<float> ws(static_cast<std::size_t>(
          plan->batched_workspace_bytes(kBatch) / sizeof(float)));
      row.tucker_planned_s =
          best_of(5, [&] { plan->run_batched(xb, &y, ws); });
    }
    rows.push_back(row);
  }

  // --- end-to-end: per-call chain vs CompiledModel -------------------------
  const CompiledModel model =
      CompiledModel::compile(make_a100(), decisions, kernels);
  const ConvShape& in = model.input_shape();
  const ConvShape& out = model.output_shape();
  const Tensor xb = Tensor::random_uniform({kBatch, in.c, in.h, in.w}, rng);
  std::vector<TuckerFactors> factors;
  for (std::size_t i = 0; i < kernels.size(); ++i) {
    factors.push_back(tucker_decompose(kernels[i], decisions[i].ranks));
  }

  const double model_percall_s = best_of(3, [&] {
    for (std::int64_t b = 0; b < kBatch; ++b) {
      Tensor act({in.c, in.h, in.w});
      std::copy(xb.raw() + b * act.numel(), xb.raw() + (b + 1) * act.numel(),
                act.raw());
      for (std::size_t i = 0; i < factors.size(); ++i) {
        act = tucker_conv_fused(act, factors[i], decisions[i].shape);
      }
    }
  });
  Tensor ym({kBatch, out.n, out.out_h(), out.out_w()});
  std::vector<float> model_ws(static_cast<std::size_t>(
      model.batched_workspace_bytes(kBatch) / sizeof(float)));
  const double model_planned_s =
      best_of(3, [&] { model.run_batched(xb, &ym, model_ws); });

  // ---- table ------------------------------------------------------------
  bench::print_title(
      "Plan/execute — per-call vs planned, ResNet-18 layers, batch " +
      std::to_string(kBatch));
  std::printf("%-10s %-22s %12s %12s %9s %12s %12s %9s\n", "layer", "shape",
              "im2col/call", "im2col/plan", "speedup", "tucker/call",
              "tucker/plan", "speedup");
  for (const LayerRow& r : rows) {
    std::printf("%-10s %-22s %10sms %10sms %9s %10sms %10sms %9s\n",
                r.layer.c_str(), bench::shape_label(r.shape).c_str(),
                bench::ms(r.dense_percall_s).c_str(),
                bench::ms(r.dense_planned_s).c_str(),
                bench::ratio(r.dense_percall_s / r.dense_planned_s).c_str(),
                bench::ms(r.tucker_percall_s).c_str(),
                bench::ms(r.tucker_planned_s).c_str(),
                bench::ratio(r.tucker_percall_s / r.tucker_planned_s).c_str());
  }
  std::printf("\ncompiled trunk (%d layers): per-call %sms, planned %sms "
              "(%s)\n",
              static_cast<int>(kernels.size()),
              bench::ms(model_percall_s).c_str(),
              bench::ms(model_planned_s).c_str(),
              bench::ratio(model_percall_s / model_planned_s).c_str());
  std::printf("threads: %d (override with TDC_NUM_THREADS)\n", num_threads());

  // ---- JSON -------------------------------------------------------------
  FILE* json = std::fopen("BENCH_conv_plan.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot open BENCH_conv_plan.json for writing\n");
    return 1;
  }
  std::fprintf(json,
               "{\n  \"bench\": \"conv_plan\",\n  \"threads\": %d,\n"
               "  \"batch\": %lld,\n  \"layers\": [\n",
               num_threads(), static_cast<long long>(kBatch));
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const LayerRow& r = rows[i];
    std::fprintf(
        json,
        "    {\"layer\": \"%s\", \"c\": %lld, \"n\": %lld, \"hw\": %lld, "
        "\"stride\": %lld, \"d1\": %lld, \"d2\": %lld, "
        "\"dense_percall_ms\": %.4f, \"dense_planned_ms\": %.4f, "
        "\"dense_speedup\": %.3f, \"tucker_percall_ms\": %.4f, "
        "\"tucker_planned_ms\": %.4f, \"tucker_speedup\": %.3f}%s\n",
        r.layer.c_str(), static_cast<long long>(r.shape.c),
        static_cast<long long>(r.shape.n), static_cast<long long>(r.shape.h),
        static_cast<long long>(r.shape.stride_h),
        static_cast<long long>(r.ranks.d1), static_cast<long long>(r.ranks.d2),
        r.dense_percall_s * 1e3, r.dense_planned_s * 1e3,
        r.dense_percall_s / r.dense_planned_s, r.tucker_percall_s * 1e3,
        r.tucker_planned_s * 1e3, r.tucker_percall_s / r.tucker_planned_s,
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(json,
               "  ],\n  \"compiled_model\": {\"layers\": %d, "
               "\"percall_ms\": %.4f, \"planned_ms\": %.4f, "
               "\"speedup\": %.3f}\n}\n",
               static_cast<int>(kernels.size()), model_percall_s * 1e3,
               model_planned_s * 1e3, model_percall_s / model_planned_s);
  std::fclose(json);
  std::printf("wrote BENCH_conv_plan.json\n");
  return 0;
}
