// Table 3: compression bookkeeping of TDC on the five CNNs.
//
// The accuracy column of the paper's Table 3 is an ImageNet quantity that
// cannot be reproduced offline (see DESIGN.md; the accuracy *mechanism* —
// ADMM vs direct — is reproduced on the synthetic task by
// bench_table2_admm). What this harness reproduces exactly is the
// compression side: for each model and the paper's budget, the hardware-
// aware rank selection and the resulting FLOPs / parameter reductions
// (Eqs. 5–6), plus the per-layer decomposition decisions.
#include <map>

#include "bench_util.h"
#include "nn/model_cost.h"
#include "nn/models.h"

int main() {
  using namespace tdc;
  using namespace tdc::bench;
  const DeviceSpec device = make_a100();

  const std::map<std::string, double> budgets = {
      {"resnet18", 0.65}, {"resnet50", 0.60}, {"vgg16", 0.80},
      {"densenet121", 0.10}, {"densenet201", 0.10}};
  // Paper Table 3 rows for TDC (Top-1 drop / FLOPs reduction).
  const std::map<std::string, std::string> paper_rows = {
      {"resnet18", "Top-1 69.70 (-0.05), FLOPs dn 63%"},
      {"resnet50", "Top-1 76.42 (+0.29), FLOPs dn 60%"},
      {"vgg16", "Top-1 71.62 (+0.03), FLOPs dn 80%"},
      {"densenet121", "Top-1 76.33 (+1.90), FLOPs dn 10%"},
      {"densenet201", "Top-1 76.92 (+0.04), FLOPs dn 10%"}};

  print_title("Table 3 (compression columns): hardware-aware rank selection "
              "at the paper's budgets (A100 latency tables)");
  std::printf("%-13s %6s %12s %12s %10s %10s   %s\n", "model", "B",
              "conv GFLOPs", "after", "FLOPs dn", "params dn",
              "decomposed layers");
  for (const ModelSpec& model : paper_models()) {
    CodesignOptions opts;
    opts.budget = budgets.at(model.name);
    const CodesignResult r = compress_model(device, model, opts);

    double orig_params = 0.0;
    double new_params = 0.0;
    std::int64_t decomposed = 0;
    std::int64_t decomposable = 0;
    for (const auto& dec : r.layers) {
      orig_params += dec.shape.params();
      if (dec.decomposed) {
        new_params += tucker_params(dec.shape, dec.ranks);
        ++decomposed;
      } else {
        new_params += dec.shape.params();
      }
      decomposable += (dec.shape.r > 1 || dec.shape.s > 1);
    }
    std::printf(
        "%-13s %5.0f%% %12.2f %12.2f %9.1f%% %9.1f%%   %lld of %lld spatial\n",
        model.name.c_str(), opts.budget * 100.0,
        r.total_original_flops / 1e9, r.total_chosen_flops / 1e9,
        r.achieved_flops_reduction() * 100.0,
        (1.0 - new_params / orig_params) * 100.0,
        static_cast<long long>(decomposed),
        static_cast<long long>(decomposable));
  }
  print_rule();
  std::printf("Paper Table 3 (TDC rows, ImageNet accuracy not reproducible "
              "offline):\n");
  for (const auto& [name, row] : paper_rows) {
    std::printf("  %-13s %s\n", name.c_str(), row.c_str());
  }
  std::printf("\nAccuracy mechanism (ADMM >= direct at equal budget) is "
              "reproduced by bench_table2_admm on the synthetic task.\n");
  return 0;
}
