// Weight-layout ablation: CRSN (the paper's coalesced design) vs CNRS.
//
// Section 5.2: "by using the CRSN format, the kernel tensor loading will be
// fully coalesced". This bench quantifies that choice in the simulator —
// same tiling, both layouts, per Figure-6 shape.
#include <vector>

#include "bench_util.h"
#include "core/tdc_model.h"
#include "nn/models.h"

int main() {
  using namespace tdc;
  using namespace tdc::bench;

  for (const DeviceSpec& device : {make_a100(), make_rtx2080ti()}) {
    print_title("CRSN vs CNRS weight layout for the TDC kernel on " +
                device.name);
    std::printf("%-20s %12s %12s %10s\n", "shape", "CRSN (ms)", "CNRS (ms)",
                "CNRS/CRSN");
    std::vector<double> ratios;
    for (const ConvShape& s : figure6_core_shapes()) {
      const TdcTiling t = select_tiling_oracle(device, s);
      const double crsn =
          tdc_core_cost(device, s, t, TdcWeightLayout::kCRSN).total_s;
      const double cnrs =
          tdc_core_cost(device, s, t, TdcWeightLayout::kCNRS).total_s;
      ratios.push_back(cnrs / crsn);
      std::printf("%-20s %12s %12s %10s\n", shape_label(s).c_str(),
                  ms(crsn).c_str(), ms(cnrs).c_str(),
                  ratio(cnrs / crsn).c_str());
    }
    print_rule();
    std::printf("geomean CNRS-over-CRSN: %s — the offline layout conversion "
                "pays for itself.\n",
                ratio(geomean(ratios)).c_str());
  }
  return 0;
}
