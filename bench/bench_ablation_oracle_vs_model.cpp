// Section 5.5 ablation: analytical-model tiling vs exhaustive oracle.
//
// The paper reports the model-selected code costs ~25 % over the oracle on
// both devices while remaining ~1.5× faster than TVM on average. This bench
// prints the per-shape ratios on both devices.
#include <vector>

#include "bench_util.h"
#include "core/tdc_model.h"
#include "core/tvm_scheme.h"
#include "nn/models.h"

int main() {
  using namespace tdc;
  using namespace tdc::bench;

  for (const DeviceSpec& device : {make_a100(), make_rtx2080ti()}) {
    print_title("Oracle vs analytical-model tiling on " + device.name +
                " (paper §5.5: model ~= oracle +25%, still faster than TVM)");
    std::printf("%-20s %12s %12s %12s %10s %10s\n", "shape", "oracle(ms)",
                "model(ms)", "tvm(ms)", "mod/ora", "tvm/mod");
    std::vector<double> gap, tvm_vs_model;
    for (const ConvShape& s : figure6_core_shapes()) {
      const double oracle =
          tdc_core_cost(device, s, select_tiling_oracle(device, s)).total_s;
      const double model =
          tdc_core_cost(device, s, select_tiling_model(device, s)).total_s;
      const double tvm = tvm_best_cost(device, s).total_s;
      gap.push_back(model / oracle);
      tvm_vs_model.push_back(tvm / model);
      std::printf("%-20s %12s %12s %12s %10s %10s\n", shape_label(s).c_str(),
                  ms(oracle).c_str(), ms(model).c_str(), ms(tvm).c_str(),
                  ratio(model / oracle).c_str(), ratio(tvm / model).c_str());
    }
    print_rule();
    std::printf("geomean model-over-oracle: %s (paper ~1.25x); geomean "
                "TVM-over-model: %s (paper ~1.5x)\n",
                ratio(geomean(gap)).c_str(),
                ratio(geomean(tvm_vs_model)).c_str());
  }
  return 0;
}
