// Host-aware algorithm selection — simulated-GPU vs host-model vs autotuned
// kAuto on the ResNet-18 inventory, against the historical pinned-im2col
// serving configuration.
//
// Two views, emitted to BENCH_algo_select.json alongside the tables:
//   * per-layer — for every distinct dense convolution shape, the algorithm
//     each provider resolves kAuto to, and the measured CPU runtime of that
//     choice. This is the pathology the provider seam removes: the
//     simulated-GPU policy prices the TDC core kernel for an A100 and hands
//     CPU layers to its functional emulator, orders of magnitude slower
//     than im2col.
//   * end-to-end — the full ResNet-18 InferenceSession compiled with
//     dense_algo = kAuto under the host and autotune providers, batched
//     latency vs the pinned-im2col baseline. Regression bar (CI runs this
//     binary): both must stay within 5% of the pin (they should beat it —
//     the host model picks Winograd where it genuinely wins on CPU).
//
// TDC_AUTOTUNE_CACHE is honored as everywhere else; the CI smoke step sets
// it so the run demonstrates the persisted-winners path.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "exec/autotune.h"
#include "exec/cost_provider.h"
#include "exec/graph_plan.h"
#include "exec/host_cost.h"
#include "exec/microbench.h"
#include "exec/plan_cache.h"
#include "nn/models.h"

namespace {

using Clock = std::chrono::steady_clock;
using namespace tdc;

template <class F>
double best_of(int reps, const F& f) {
  double best = 1e300;
  for (int i = 0; i < reps; ++i) {
    const auto t0 = Clock::now();
    f();
    const double s = std::chrono::duration<double>(Clock::now() - t0).count();
    best = std::min(best, s);
  }
  return best;
}

// "64x128 3x3/2 @56x56" — compact row label (the JSON keeps to_string()).
std::string layer_label(const ConvShape& s) {
  char buf[64];
  std::snprintf(buf, sizeof(buf),
                "%lldx%lld %lldx%lld/%lld @%lldx%lld",
                static_cast<long long>(s.c), static_cast<long long>(s.n),
                static_cast<long long>(s.r), static_cast<long long>(s.s),
                static_cast<long long>(s.stride_h),
                static_cast<long long>(s.h), static_cast<long long>(s.w));
  return buf;
}

// Measured single-image runtime of `algo` on `shape`, memoized — the
// simulated provider picks the TDC emulator for most stages, and one
// ~700 ms interpretation per distinct shape is plenty.
double measured_ms(const ConvShape& shape, ConvAlgo algo) {
  static std::map<std::string, double> memo;
  const std::string key =
      shape.to_string() + "|" + std::to_string(static_cast<int>(algo));
  if (const auto it = memo.find(key); it != memo.end()) {
    return it->second;
  }
  Rng rng(20230301);
  const Tensor x = Tensor::random_uniform({shape.c, shape.h, shape.w}, rng);
  const Tensor k =
      Tensor::random_uniform({shape.c, shape.n, shape.r, shape.s}, rng);
  ConvDescriptor desc;
  desc.shape = shape;
  desc.algo = algo;
  const auto plan = compile_conv_plan(desc, k);
  std::vector<float> ws(
      static_cast<std::size_t>(plan->workspace_bytes() / sizeof(float)));
  Tensor y({shape.n, shape.out_h(), shape.out_w()});
  double s = 0.0;
  if (algo == ConvAlgo::kTdcCore || algo == ConvAlgo::kFft) {
    const auto t0 = Clock::now();  // no warm-up: one run tells the story
    plan->run(x, &y, ws);
    s = std::chrono::duration<double>(Clock::now() - t0).count();
  } else {
    plan->run(x, &y, ws);
    s = best_of(3, [&] { plan->run(x, &y, ws); });
  }
  memo.emplace(key, s * 1e3);
  return s * 1e3;
}

}  // namespace

int main() {
  const DeviceSpec device = make_a100();
  const ModelSpec model = make_resnet18();
  const HostCalibration cal = host_calibration();

  // --- per-layer: provider decisions on the distinct dense shapes ---------
  std::vector<ConvShape> shapes;
  for (const LayerSpec& layer : model.layers) {
    if (layer.kind == LayerKind::kConv &&
        std::find(shapes.begin(), shapes.end(), layer.conv) == shapes.end()) {
      shapes.push_back(layer.conv);
    }
  }

  struct ProviderCol {
    const char* id;
    const CostProvider* provider;
  };
  const ProviderCol cols[] = {
      {"simgpu", &simulated_gpu_cost_provider()},
      {"host", &host_cost_provider()},
      {"autotune", &autotune_cost_provider()},
  };

  bench::print_title(
      "Algorithm selection — kAuto per provider, ResNet-18 dense shapes "
      "(measured ms per image on this host)");
  std::printf("%-26s", "shape");
  for (const ProviderCol& col : cols) {
    std::printf("  %-12s %9s", col.id, "ms");
  }
  std::printf("\n");

  struct LayerRow {
    ConvShape shape;
    ConvAlgo algo[3];
    double ms[3];
  };
  std::vector<LayerRow> rows;
  for (const ConvShape& shape : shapes) {
    LayerRow row{shape, {}, {}};
    std::printf("%-26s", layer_label(shape).c_str());
    for (int c = 0; c < 3; ++c) {
      row.algo[c] = cols[c].provider->resolve(device, shape);
      row.ms[c] = measured_ms(shape, row.algo[c]);
      std::printf("  %-12s %9.3f", conv_algo_name(row.algo[c]), row.ms[c]);
    }
    std::printf("\n");
    rows.push_back(row);
  }

  // --- end-to-end: kAuto sessions vs the pinned-im2col baseline -----------
  const auto weights = random_model_weights(model, 20230302);
  struct E2eRow {
    const char* id;
    SessionOptions options;
    double ms = 0.0;
  };
  std::vector<E2eRow> e2e;
  {
    SessionOptions pinned;
    pinned.dense_algo = ConvAlgo::kIm2col;
    e2e.push_back({"pinned-im2col", pinned});
    SessionOptions host;  // dense_algo = kAuto, null provider → host
    e2e.push_back({"host", host});
    SessionOptions autotuned;
    autotuned.cost_provider = &autotune_cost_provider();
    e2e.push_back({"autotune", autotuned});
  }

  constexpr std::int64_t kBatch = 4;
  Rng rng(20230303);
  for (E2eRow& row : e2e) {
    PlanCache::instance().clear();  // each configuration compiles cold
    const InferenceSession session = InferenceSession::compile(
        device, model, weights, /*decisions=*/{}, row.options);
    const OpShape& in = session.input_shape();
    const OpShape& out = session.output_shape();
    const Tensor x = Tensor::random_uniform({kBatch, in.c, in.h, in.w}, rng);
    Tensor y({kBatch, out.c, out.h, out.w});
    std::vector<float> ws(static_cast<std::size_t>(
        session.batched_workspace_bytes(kBatch) / sizeof(float)));
    session.run_batched(x, &y, ws);  // warm-up
    row.ms = best_of(3, [&] { session.run_batched(x, &y, ws); }) * 1e3;
  }

  const double pinned_ms = e2e[0].ms;
  bench::print_title(
      "End-to-end — ResNet-18 session (all-dense), batch " +
      std::to_string(kBatch));
  for (const E2eRow& row : e2e) {
    std::printf("%-14s %9.3f ms/batch   vs pinned %s\n", row.id, row.ms,
                bench::ratio(pinned_ms / row.ms).c_str());
  }
  const AutotuneStats at = autotune_stats();
  std::printf("calibration: %.1f GFLOP/s, %.1f GB/s%s; autotune: %lld "
              "entries, %lld candidates timed\n",
              cal.gflops, cal.gbs,
              cal.gflops_from_env || cal.gbs_from_env ? " (env-pinned)" : "",
              static_cast<long long>(at.entries),
              static_cast<long long>(at.timed_candidates));
  std::printf("threads: %d (override with TDC_NUM_THREADS)\n", num_threads());

  // ---- JSON ---------------------------------------------------------------
  FILE* json = std::fopen("BENCH_algo_select.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot open BENCH_algo_select.json for writing\n");
    return 1;
  }
  std::fprintf(json,
               "{\n  \"bench\": \"algo_select\",\n  \"model\": \"resnet18\",\n"
               "  \"threads\": %d,\n"
               "  \"calibration\": {\"gflops\": %.3f, \"gbs\": %.3f},\n"
               "  \"layers\": [\n",
               num_threads(), cal.gflops, cal.gbs);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const LayerRow& row = rows[i];
    std::fprintf(json, "    {\"shape\": \"%s\"",
                 row.shape.to_string().c_str());
    for (int c = 0; c < 3; ++c) {
      std::fprintf(json, ", \"algo_%s\": \"%s\", \"ms_%s\": %.4f",
                   cols[c].id, conv_algo_name(row.algo[c]), cols[c].id,
                   row.ms[c]);
    }
    std::fprintf(json, "}%s\n", i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(json,
               "  ],\n  \"e2e\": {\"batch\": %lld, \"pinned_im2col_ms\": "
               "%.3f, \"host_ms\": %.3f, \"autotune_ms\": %.3f},\n"
               "  \"autotune\": {\"entries\": %lld, \"timed_candidates\": "
               "%lld, \"table_hits\": %lld}\n}\n",
               static_cast<long long>(kBatch), pinned_ms, e2e[1].ms,
               e2e[2].ms, static_cast<long long>(at.entries),
               static_cast<long long>(at.timed_candidates),
               static_cast<long long>(at.table_hits));
  std::fclose(json);
  std::printf("wrote BENCH_algo_select.json\n");

  // Regression bar: host-aware kAuto must serve at least as fast as the
  // historical hand-pin, within 5% measurement slack. A failure means the
  // host model (or the autotuner's shortlist) let a slow algorithm through.
  bool ok = true;
  for (std::size_t i = 1; i < e2e.size(); ++i) {
    if (e2e[i].ms > pinned_ms * 1.05) {
      std::fprintf(stderr,
                   "FAIL: %s session %.3f ms/batch exceeds pinned-im2col "
                   "%.3f ms by more than 5%%\n",
                   e2e[i].id, e2e[i].ms, pinned_ms);
      ok = false;
    }
  }
  return ok ? 0 : 1;
}
