// Int8 serving-path benchmark: the AVX2 prepacked s8·u8 GEMM against the
// fp32 prepacked GEMM at real ResNet-18 im2col shapes, plus the end-to-end
// mixed-precision full-width ResNet-18 (TDC_INT8=2) against its fp32 twin.
//
// Emitted to BENCH_int8.json alongside the table:
//   * per-shape GEMM duel — M = output channels, K = C·R·S, N = OH·OW of
//     four serving layers; int8 time includes the activation requantization
//     epilogue (dequantize_f32), fp32 time is gemm_prepacked on the same
//     operands. CI enforces the throughput floor on AVX2 builds: the
//     geomean int8 speedup must be >= 2.0x (the maddubs/madd pipeline does
//     4 MACs per 32-bit lane against fp32 FMA's 1, and B-panel traffic
//     drops 4x). Generic builds report the scalar-fallback ratio ungated —
//     the fallback exists for correctness, not speed;
//   * e2e latency — calibrated mixed-precision ResNet-18 through an
//     InferenceSession vs the fp32 session, reported but not gated (layer
//     mix and codesign decisions dominate the ratio).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <vector>

#include "bench_util.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "core/codesign.h"
#include "exec/graph_plan.h"
#include "exec/quantize.h"
#include "linalg/gemm.h"
#include "linalg/gemm_s8.h"
#include "nn/models.h"

namespace {

using Clock = std::chrono::steady_clock;

double best_of(int reps, const std::function<void()>& fn) {
  double best = 1e30;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = Clock::now();
    fn();
    best = std::min(best,
                    std::chrono::duration<double>(Clock::now() - t0).count());
  }
  return best;
}

struct GemmShape {
  const char* layer;
  std::int64_t m, k, n;
};

struct GemmResult {
  GemmShape shape;
  double fp32_s = 0.0;
  double s8_s = 0.0;
  double fp32_gflops = 0.0;
  double s8_gops = 0.0;
};

GemmResult duel(const GemmShape& shape) {
  using namespace tdc;
  Rng rng(515);
  const std::int64_t m = shape.m, k = shape.k, n = shape.n;
  std::vector<float> a(static_cast<std::size_t>(m * k));
  std::vector<float> b(static_cast<std::size_t>(k * n));
  for (auto& v : a) {
    v = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  for (auto& v : b) {
    v = static_cast<float>(rng.uniform(-1.0, 1.0));
  }

  const PackedGemmA af = pack_gemm_a(m, k, a.data(), k, 1);
  std::vector<float> cf(static_cast<std::size_t>(m * n));
  const auto fp32_run = [&] {
    gemm_prepacked(af, n, b.data(), n, 1, cf.data(), n);
  };

  const QuantizedRows qa = quantize_rows_s8(m, k, a.data(), k, 1);
  const PackedGemmAS8 a8 = pack_gemm_a_s8(m, k, qa.values.data(), k, 1);
  const QuantParams qb = choose_quant_params(-1.0f, 1.0f);
  std::vector<std::uint8_t> b8(static_cast<std::size_t>(k * n));
  quantize_u8(b.data(), k * n, qb, b8.data());
  std::vector<std::int32_t> acc(static_cast<std::size_t>(m * n));
  std::vector<float> c8(static_cast<std::size_t>(m * n));
  std::vector<float> mult(static_cast<std::size_t>(m));
  for (std::int64_t i = 0; i < m; ++i) {
    mult[static_cast<std::size_t>(i)] =
        qa.scales[static_cast<std::size_t>(i)] * qb.scale;
  }
  // The int8 side is charged for the full serving epilogue: integer GEMM
  // plus the per-channel dequantization back to fp32 activations.
  const auto s8_run = [&] {
    gemm_prepacked_s8u8(a8, n, b8.data(), n, qb.zero_point, acc.data(), n);
    dequantize_f32(acc.data(), m, n, n, mult.data(), c8.data(), n);
  };

  fp32_run();  // warm (thread pool, pack-buffer growth, page faults)
  s8_run();

  GemmResult res;
  res.shape = shape;
  res.fp32_s = best_of(5, fp32_run);
  res.s8_s = best_of(5, s8_run);
  const double ops = 2.0 * static_cast<double>(m) * static_cast<double>(k) *
                     static_cast<double>(n);
  res.fp32_gflops = ops / res.fp32_s / 1e9;
  res.s8_gops = ops / res.s8_s / 1e9;
  return res;
}

}  // namespace

int main() {
  using namespace tdc;

  // im2col geometries of four full-width ResNet-18 layers: the stride-2
  // stage entries, a mid-network 3x3, a deep 3x3 and a pointwise projection.
  const GemmShape shapes[] = {
      {"conv2_x 3x3", 64, 576, 3136},
      {"conv3_x 3x3", 128, 1152, 784},
      {"conv5_x 3x3", 512, 4608, 49},
      {"proj 1x1", 256, 256, 784},
  };
#if defined(__AVX2__)
  const bool avx2 = true;
#else
  const bool avx2 = false;
#endif
#if defined(__AVX512VNNI__) && defined(__AVX512VL__)
  const char* tier = "avx512-vnni";
#elif defined(__AVX2__)
  const char* tier = "avx2";
#else
  const char* tier = "scalar";
#endif

  std::vector<GemmResult> results;
  std::vector<double> speedups;
  for (const GemmShape& s : shapes) {
    results.push_back(duel(s));
    speedups.push_back(results.back().fp32_s / results.back().s8_s);
  }
  const double geo = bench::geomean(speedups);

  // ---- e2e: mixed-precision ResNet-18 vs fp32 -----------------------------
  const DeviceSpec device = make_a100();
  const ModelSpec model = make_resnet18();
  const auto weights = random_model_weights(model, 515);
  CodesignOptions cd_opts;
  cd_opts.budget = 0.65;
  const CodesignResult codesign =
      run_codesign(device, model.decomposable_conv_shapes(), cd_opts);

  SessionOptions fp32_opts;
  fp32_opts.dense_algo = ConvAlgo::kIm2col;
  fp32_opts.use_plan_cache = false;
  const InferenceSession fp32_session = InferenceSession::compile(
      device, model, weights, codesign.layers, fp32_opts);

  CalibrationOptions calib;
  calib.samples = 2;
  const QuantTable table =
      calibrate_quant(device, model, weights, codesign.layers, calib);
  ::setenv("TDC_INT8", "2", 1);
  SessionOptions s8_opts = fp32_opts;
  s8_opts.quant = &table;
  const InferenceSession s8_session = InferenceSession::compile(
      device, model, weights, codesign.layers, s8_opts);
  ::unsetenv("TDC_INT8");

  Rng rng(516);
  const Tensor x = Tensor::random_uniform({3, 224, 224}, rng);
  std::vector<float> ws(static_cast<std::size_t>(
      (std::max(fp32_session.workspace_bytes(),
                s8_session.workspace_bytes()) +
       3) /
      4));
  Tensor y({1000, 1, 1});
  fp32_session.run(x, &y, ws);
  s8_session.run(x, &y, ws);
  const double e2e_fp32_s =
      best_of(3, [&] { fp32_session.run(x, &y, ws); });
  const double e2e_s8_s = best_of(3, [&] { s8_session.run(x, &y, ws); });

  // ---- table --------------------------------------------------------------
  bench::print_title(std::string("Int8 serving path — prepacked s8-u8 GEMM "
                                 "vs fp32 (") +
                     tier + " kernel, " + std::to_string(num_threads()) +
                     " threads)");
  std::printf("%-14s %6s %6s %6s %12s %12s %10s\n", "layer", "M", "K", "N",
              "fp32 GFLOP/s", "int8 GOP/s", "speedup");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const GemmResult& r = results[i];
    std::printf("%-14s %6lld %6lld %6lld %12.1f %12.1f %10s\n", r.shape.layer,
                static_cast<long long>(r.shape.m),
                static_cast<long long>(r.shape.k),
                static_cast<long long>(r.shape.n), r.fp32_gflops, r.s8_gops,
                bench::ratio(speedups[i]).c_str());
  }
  std::printf("geomean GEMM speedup: %s  (CI floor on AVX2: 2.00x)\n",
              bench::ratio(geo).c_str());
  std::printf("e2e resnet18   fp32 %sms   mixed-precision %sms   (%s)\n",
              bench::ms(e2e_fp32_s).c_str(), bench::ms(e2e_s8_s).c_str(),
              bench::ratio(e2e_fp32_s / e2e_s8_s).c_str());

  // ---- JSON ---------------------------------------------------------------
  FILE* json = std::fopen("BENCH_int8.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot open BENCH_int8.json for writing\n");
    return 1;
  }
  std::fprintf(json,
               "{\n  \"bench\": \"int8\",\n  \"avx2\": %s,\n"
               "  \"kernel_tier\": \"%s\",\n"
               "  \"threads\": %d,\n  \"gemms\": [\n",
               avx2 ? "true" : "false", tier, num_threads());
  for (std::size_t i = 0; i < results.size(); ++i) {
    const GemmResult& r = results[i];
    std::fprintf(json,
                 "    {\"layer\": \"%s\", \"m\": %lld, \"k\": %lld, "
                 "\"n\": %lld, \"fp32_gflops\": %.2f, \"int8_gops\": %.2f, "
                 "\"speedup\": %.3f}%s\n",
                 r.shape.layer, static_cast<long long>(r.shape.m),
                 static_cast<long long>(r.shape.k),
                 static_cast<long long>(r.shape.n), r.fp32_gflops, r.s8_gops,
                 speedups[i], i + 1 < results.size() ? "," : "");
  }
  std::fprintf(json,
               "  ],\n  \"geomean_speedup\": %.3f,\n"
               "  \"e2e_resnet18\": {\"fp32_ms\": %.3f, "
               "\"mixed_precision_ms\": %.3f, \"speedup\": %.3f}\n}\n",
               geo, e2e_fp32_s * 1e3, e2e_s8_s * 1e3,
               e2e_fp32_s / e2e_s8_s);
  std::fclose(json);
  std::printf("wrote BENCH_int8.json\n");

  // Regression bar (CI runs this binary): the int8 GEMM must beat fp32 by
  // 2x geomean wherever the AVX2 kernel compiled in. The scalar fallback is
  // a correctness artifact and stays ungated.
  if (avx2 && geo < 2.0) {
    std::fprintf(stderr,
                 "FAIL: int8 GEMM geomean speedup %.2fx below the 2.0x "
                 "floor\n",
                 geo);
    return 1;
  }
  return 0;
}
