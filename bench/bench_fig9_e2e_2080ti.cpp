// Figure 9: end-to-end inference time of the five CNNs on the (simulated)
// 2080 Ti, original vs TK-compressed with cuDNN / TVM / TDC core kernels.
#include "e2e_figure.h"

int main() {
  tdc::bench::run_e2e_figure(tdc::make_rtx2080ti(), "Figure 9");
  return 0;
}
