// Table 2: accuracy of direct compression vs ADMM-based compression at an
// equal FLOPs budget (the paper uses ResNet-20 / CIFAR-10 at 60 % FLOPs
// reduction; this reproduction trains a width-reduced ResNet-20-style model
// on the synthetic dataset — substitution documented in DESIGN.md).
//
// Three rows, as in the paper:
//   Baseline            — uncompressed training
//   Direct Compression  — truncated-HOSVD of the trained baseline + a short
//                         fine-tune (the paper's "decompose a pre-trained
//                         model, and then retrain")
//   ADMM-based          — ADMM-regularized training, then truncation + the
//                         same fine-tuning budget
#include <cstdio>

#include "bench_util.h"
#include "train/admm.h"
#include "train/trainer.h"
#include "train/zoo.h"
#include "tucker/flops.h"

namespace {

using namespace tdc;

constexpr std::uint64_t kSeed = 2023;

SyntheticSpec data_spec() {
  SyntheticSpec spec;
  spec.classes = 12;
  spec.channels = 3;
  spec.hw = 16;
  spec.train_size = 768;
  spec.test_size = 512;
  spec.noise = 1.8;  // hard enough that lost capacity costs accuracy
  spec.seed = 17;
  return spec;
}

TrainableModel fresh_model(Rng& rng) {
  MiniResNetSpec spec;
  spec.input_hw = 16;
  spec.classes = data_spec().classes;
  spec.stage_widths = {8, 16, 32};
  spec.blocks_per_stage = 1;
  return make_mini_resnet(spec, rng);
}

// Rank plan at roughly the paper's 60 % FLOPs reduction over the
// decomposable convolutions.
std::vector<TuckerRanks> rank_plan(const TrainableModel& model) {
  std::vector<TuckerRanks> ranks;
  for (const auto& slot : model.spatial_convs) {
    const ConvShape& g = slot.conv->geometry();
    ranks.push_back({std::max<std::int64_t>(2, g.c / 3),
                     std::max<std::int64_t>(2, g.n / 3)});
  }
  return ranks;
}

double plan_flops_reduction(const TrainableModel& model,
                            const std::vector<TuckerRanks>& ranks) {
  double orig = 0.0;
  double compressed = 0.0;
  for (std::size_t i = 0; i < model.spatial_convs.size(); ++i) {
    const ConvShape& g = model.spatial_convs[i].conv->geometry();
    orig += g.flops();
    compressed += tucker_flops(g, ranks[i]);
  }
  return 1.0 - compressed / orig;
}

TrainOptions main_schedule() {
  TrainOptions opts;
  opts.epochs = 4;
  opts.batch_size = 32;
  opts.sgd.lr = 0.08;
  opts.lr_decay = 0.85;
  return opts;
}

TrainOptions finetune_schedule() {
  TrainOptions opts;
  opts.epochs = 2;
  opts.batch_size = 32;
  opts.sgd.lr = 0.02;
  opts.lr_decay = 0.8;
  return opts;
}

}  // namespace

int main() {
  using namespace tdc;
  using namespace tdc::bench;
  const SyntheticData data = make_synthetic_data(data_spec());

  print_title(
      "Table 2: direct training vs ADMM-based compression "
      "(ResNet-20-style model on the synthetic 12-class task)");

  // --- Baseline; its trained weights also seed the Direct row ---
  Rng rng_base(kSeed);
  TrainableModel baseline = fresh_model(rng_base);
  train_model(baseline.net.get(), data, main_schedule());
  const double acc_baseline = evaluate_accuracy(baseline.net.get(), data.test);

  // --- Direct compression: truncate the trained baseline, fine-tune ---
  const std::vector<TuckerRanks> ranks = rank_plan(baseline);
  const double flops_reduction = plan_flops_reduction(baseline, ranks);
  tuckerize_model(&baseline, ranks);  // baseline becomes the Direct model
  const double acc_direct_trunc =
      evaluate_accuracy(baseline.net.get(), data.test);
  train_model(baseline.net.get(), data, finetune_schedule());
  const double acc_direct = evaluate_accuracy(baseline.net.get(), data.test);

  // --- ADMM-based: regularized training, then truncate + fine-tune ---
  Rng rng_admm(kSeed);
  TrainableModel admm_model = fresh_model(rng_admm);
  {
    TrainOptions warm = main_schedule();
    warm.epochs = 2;
    train_model(admm_model.net.get(), data, warm);

    std::vector<AdmmTarget> targets;
    const std::vector<TuckerRanks> admm_ranks = rank_plan(admm_model);
    for (std::size_t i = 0; i < admm_model.spatial_convs.size(); ++i) {
      targets.push_back({admm_model.spatial_convs[i].conv, admm_ranks[i]});
    }
    AdmmState admm(targets, {/*rho=*/0.6});
    TrainOptions reg = main_schedule();
    reg.epochs = 4;
    reg.sgd.lr = 0.04;
    const auto stats = train_model(admm_model.net.get(), data, reg, &admm);
    std::printf("ADMM primal residual: %.4f (epoch 1) -> %.4f (final)\n",
                stats.front().admm_residual, stats.back().admm_residual);
  }
  tuckerize_model(&admm_model, ranks);
  const double acc_admm_trunc =
      evaluate_accuracy(admm_model.net.get(), data.test);
  train_model(admm_model.net.get(), data, finetune_schedule());
  const double acc_admm = evaluate_accuracy(admm_model.net.get(), data.test);

  print_rule();
  std::printf("%-22s %14s %14s %10s\n", "Method", "at truncation",
              "after tune", "FLOPs dn");
  std::printf("%-22s %14s %14.2f %10s\n", "Baseline", "-",
              acc_baseline * 100.0, "N/A");
  std::printf("%-22s %14.2f %14.2f %9.0f%%\n", "Direct Compression",
              acc_direct_trunc * 100.0, acc_direct * 100.0,
              flops_reduction * 100.0);
  std::printf("%-22s %14.2f %14.2f %9.0f%%\n", "ADMM-based",
              acc_admm_trunc * 100.0, acc_admm * 100.0,
              flops_reduction * 100.0);
  print_rule();
  std::printf(
      "Paper (ResNet-20/CIFAR-10): baseline 91.25, direct 87.41, ADMM 91.02 "
      "at 60%% FLOPs reduction.\n");
  std::printf("Reproduced ordering: ADMM %s direct (gap %.2f pts), ADMM "
              "within %.2f pts of baseline.\n",
              acc_admm >= acc_direct ? ">=" : "<",
              (acc_admm - acc_direct) * 100.0,
              (acc_baseline - acc_admm) * 100.0);
  return 0;
}
