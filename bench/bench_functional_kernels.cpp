// Wall-clock microbenchmarks of the *functional* kernels (google-benchmark).
//
// Everything else in bench/ reports simulated GPU latencies; this binary
// measures the real CPU implementations that back them — the correctness
// substrate whose outputs every simulated scheme is checked against. It is
// also the place to see the algorithmic FLOP ratios (Winograd's 2.25×
// multiply reduction, FFT's plane-size sensitivity) in actual silicon time.
#include <benchmark/benchmark.h>

#include "conv/conv.h"
#include "conv/tucker_conv.h"
#include "core/tdc_kernel.h"
#include "core/tvm_scheme.h"
#include "tensor/layout.h"
#include "tucker/tucker.h"

namespace {

using namespace tdc;

struct Operands {
  ConvShape shape;
  Tensor x;
  Tensor k_cnrs;
};

Operands make_operands(std::int64_t c, std::int64_t n, std::int64_t hw) {
  Rng rng(1234);
  Operands op;
  op.shape = ConvShape::same(c, n, hw, 3);
  op.x = Tensor::random_uniform({c, hw, hw}, rng);
  op.k_cnrs = Tensor::random_uniform({c, n, 3, 3}, rng);
  return op;
}

void BM_ConvReference(benchmark::State& state) {
  const Operands op = make_operands(state.range(0), state.range(1), state.range(2));
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv2d_reference(op.x, op.k_cnrs, op.shape));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(op.shape.flops()));
}

void BM_ConvIm2col(benchmark::State& state) {
  const Operands op = make_operands(state.range(0), state.range(1), state.range(2));
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv2d_im2col(op.x, op.k_cnrs, op.shape));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(op.shape.flops()));
}

void BM_ConvWinograd(benchmark::State& state) {
  const Operands op = make_operands(state.range(0), state.range(1), state.range(2));
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv2d_winograd(op.x, op.k_cnrs, op.shape));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(op.shape.flops()));
}

void BM_ConvFft(benchmark::State& state) {
  const Operands op = make_operands(state.range(0), state.range(1), state.range(2));
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv2d_fft(op.x, op.k_cnrs, op.shape));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(op.shape.flops()));
}

void BM_TdcCoreKernel(benchmark::State& state) {
  const Operands op = make_operands(state.range(0), state.range(1), state.range(2));
  const Tensor k_crsn = cnrs_to_crsn(op.k_cnrs);
  const TdcTiling tiling{4, 4, std::min<std::int64_t>(op.shape.c, 8)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(tdc_core_conv(op.x, k_crsn, op.shape, tiling));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(op.shape.flops()));
}

void BM_TvmSchemeKernel(benchmark::State& state) {
  const Operands op = make_operands(state.range(0), state.range(1), state.range(2));
  const TvmTiling tiling{4, 4, std::min<std::int64_t>(op.shape.n, 4)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(tvm_scheme_conv(op.x, op.k_cnrs, op.shape, tiling));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(op.shape.flops()));
}

void BM_TuckerPipeline(benchmark::State& state) {
  const Operands op = make_operands(state.range(0), state.range(1), state.range(2));
  const TuckerFactors f =
      tucker_decompose(op.k_cnrs, {std::max<std::int64_t>(1, op.shape.c / 2),
                                   std::max<std::int64_t>(1, op.shape.n / 2)});
  for (auto _ : state) {
    benchmark::DoNotOptimize(tucker_conv(op.x, f, op.shape));
  }
}

void BM_TuckerDecompose(benchmark::State& state) {
  Rng rng(99);
  const Tensor k = Tensor::random_uniform(
      {state.range(0), state.range(1), 3, 3}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tucker_decompose(k, {state.range(0) / 2, state.range(1) / 2}));
  }
}

}  // namespace

BENCHMARK(BM_ConvReference)->Args({32, 32, 28})->Args({64, 32, 14});
BENCHMARK(BM_ConvIm2col)->Args({32, 32, 28})->Args({64, 32, 14})->Args({64, 64, 56});
BENCHMARK(BM_ConvWinograd)->Args({32, 32, 28})->Args({64, 64, 56});
BENCHMARK(BM_ConvFft)->Args({32, 32, 28})->Args({64, 32, 14});
BENCHMARK(BM_TdcCoreKernel)->Args({32, 32, 28})->Args({64, 32, 14})->Args({64, 64, 56});
BENCHMARK(BM_TvmSchemeKernel)->Args({32, 32, 28})->Args({64, 32, 14});
BENCHMARK(BM_TuckerPipeline)->Args({32, 32, 28})->Args({64, 64, 56});
BENCHMARK(BM_TuckerDecompose)
    ->Args({64, 64})
    ->Args({128, 128})
    ->Args({256, 256})
    ->Args({512, 512});

BENCHMARK_MAIN();
