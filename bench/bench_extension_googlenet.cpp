// Future-work extension (paper Section 8): wide CNNs.
//
// The paper defers GoogLeNet/NasNet because their stages run several
// convolutions concurrently and the ranks must be chosen for the concurrent
// set. This bench exercises the repository's implementation of exactly
// that: per-module branch planning + a multi-stream concurrency model, on
// the Inception-v1 inventory.
#include "bench_util.h"
#include "nn/inception.h"

int main() {
  using namespace tdc;
  using namespace tdc::bench;
  const DeviceSpec device = make_a100();
  CodesignOptions opts;
  opts.budget = 0.4;

  print_title("Extension: GoogLeNet (wide CNN) on A100 — concurrent-branch "
              "scheduling + Tucker compression (paper future work)");
  std::printf("%-8s %16s %16s %16s %16s\n", "module", "seq orig (ms)",
              "conc orig (ms)", "seq TDC (ms)", "conc TDC (ms)");

  const WideModelSpec g = make_googlenet();
  InceptionModuleCost total;
  for (const auto& [module, pool_after] : g.modules) {
    const InceptionModulePlan plan =
        plan_inception_module(device, module, opts);
    const InceptionModuleCost cost =
        price_inception_module(device, module, plan);
    total.sequential_original_s += cost.sequential_original_s;
    total.concurrent_original_s += cost.concurrent_original_s;
    total.sequential_tdc_s += cost.sequential_tdc_s;
    total.concurrent_tdc_s += cost.concurrent_tdc_s;
    std::printf("%-8s %16s %16s %16s %16s\n", module.name.c_str(),
                ms(cost.sequential_original_s).c_str(),
                ms(cost.concurrent_original_s).c_str(),
                ms(cost.sequential_tdc_s).c_str(),
                ms(cost.concurrent_tdc_s).c_str());
  }
  print_rule();
  std::printf("%-8s %16s %16s %16s %16s\n", "total",
              ms(total.sequential_original_s).c_str(),
              ms(total.concurrent_original_s).c_str(),
              ms(total.sequential_tdc_s).c_str(),
              ms(total.concurrent_tdc_s).c_str());

  const GoogleNetE2e e2e = evaluate_googlenet(device, opts);
  std::printf("\nEnd-to-end (incl. stem/head/pools): sequential-original "
              "%s ms, concurrent-original %s ms, concurrent-TDC %s ms\n",
              ms(e2e.original_sequential_s).c_str(),
              ms(e2e.original_concurrent_s).c_str(),
              ms(e2e.tdc_concurrent_s).c_str());
  std::printf("Speedup from streams alone: %s; streams + TDC compression: "
              "%s\n",
              ratio(e2e.original_sequential_s / e2e.original_concurrent_s)
                  .c_str(),
              ratio(e2e.original_sequential_s / e2e.tdc_concurrent_s).c_str());
  return 0;
}
