// Figure 8: end-to-end inference time of the five CNNs on the (simulated)
// A100, original vs TK-compressed with cuDNN / TVM / TDC core kernels.
#include "e2e_figure.h"

int main() {
  tdc::bench::run_e2e_figure(tdc::make_a100(), "Figure 8");
  return 0;
}
