// Figure 6: per-shape kernel comparison on the (simulated) A100.
#include "kernel_figure.h"

int main() {
  const tdc::DeviceSpec device = tdc::make_a100();
  const auto rows = tdc::bench::run_kernel_comparison(device);
  tdc::bench::print_kernel_comparison(device, rows, "Figure 6");
  return 0;
}
