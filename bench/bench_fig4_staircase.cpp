// Figure 4: staircase behaviour of core-convolution latency as the output
// channel count grows (N = 32..256, C = 64 fixed), on the 2080 Ti, for the
// 28×28 and 14×14 planes. The paper's point: latency is a monotonic
// staircase in N — FLOPs change while latency plateaus, so rank reduction
// below a plateau edge buys nothing ("over rank reduction").
#include <vector>

#include "bench_util.h"
#include "core/tdc_model.h"

int main() {
  using namespace tdc;
  using namespace tdc::bench;
  const DeviceSpec device = make_rtx2080ti();

  print_title(
      "Figure 4: runtime vs output channels (C = 64, 2080Ti, optimized "
      "tiling per point)");
  std::printf("%-10s %14s %14s\n", "N", "28x28 (ms)", "14x14 (ms)");
  std::vector<double> row28;
  std::vector<double> row14;
  for (std::int64_t n = 32; n <= 256; n += 32) {
    const ConvShape s28 = ConvShape::same(64, n, 28, 3);
    const ConvShape s14 = ConvShape::same(64, n, 14, 3);
    const double t28 =
        tdc_core_cost(device, s28, select_tiling_oracle(device, s28)).total_s;
    const double t14 =
        tdc_core_cost(device, s14, select_tiling_oracle(device, s14)).total_s;
    row28.push_back(t28);
    row14.push_back(t14);
    std::printf("%-10lld %14s %14s\n", static_cast<long long>(n),
                ms(t28).c_str(), ms(t14).c_str());
  }
  print_rule();

  // The paper's qualitative claims: latency is monotone in N but grows far
  // slower than FLOPs (8× the channels cost ≪ 8× the time), which is what
  // makes "over rank reduction" pointless. The simulator's continuous
  // latency-hiding model renders the paper's hard plateaus as smooth
  // sub-linear growth; the conclusion (FLOPs ↓ ≠ proportional latency ↓)
  // is unchanged. See EXPERIMENTS.md.
  auto check = [](const std::vector<double>& series, const char* label) {
    bool monotonic = true;
    for (std::size_t i = 1; i < series.size(); ++i) {
      if (series[i] < series[i - 1] * 0.98) {
        monotonic = false;
      }
    }
    const double growth = series.back() / series.front();
    std::printf("%s: %s; 8x output channels -> %.2fx latency (paper: "
                "staircase, i.e. sub-proportional growth)\n",
                label,
                monotonic ? "monotonic (non-decreasing)" : "NOT monotonic",
                growth);
  };
  check(row28, "28x28");
  check(row14, "14x14");
  return 0;
}
