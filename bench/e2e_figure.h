// Shared implementation of the Figure 8/9 end-to-end inference comparison.
//
// Five bars per model, as in the paper: Original (cuDNN everywhere),
// TK-compressed cuDNN, TK-compressed TVM, TK-compressed TDC-ORACLE, and
// TK-compressed TDC-MODEL. Budgets follow Section 7.2: 65 % (ResNet-18),
// 60 % (ResNet-50), 80 % (VGG-16), 10 % (DenseNet-121/201).
#pragma once

#include <map>

#include "bench_util.h"
#include "nn/model_cost.h"
#include "nn/models.h"

namespace tdc::bench {

inline double model_budget(const std::string& name) {
  static const std::map<std::string, double> budgets = {
      {"densenet121", 0.10}, {"densenet201", 0.10}, {"resnet18", 0.65},
      {"resnet50", 0.60},    {"vgg16", 0.80},
  };
  return budgets.at(name);
}

inline void run_e2e_figure(const DeviceSpec& device, const char* figure_name) {
  print_title(std::string(figure_name) + ": end-to-end inference on " +
              device.name + " (simulated latency, ms; budgets per paper §7.2)");
  std::printf("%-13s %6s %10s %10s %10s %12s %12s   %s\n", "model", "B",
              "Original", "TK-cuDNN", "TK-TVM", "TK-TDC-ORA", "TK-TDC-MOD",
              "speedups (orig/tdc, cudnn/tdc, tvm/tdc)");
  for (const ModelSpec& model : paper_models()) {
    CodesignOptions opts;
    opts.budget = model_budget(model.name);
    const E2eRow row = evaluate_model_e2e(device, model, opts);
    std::printf(
        "%-13s %5.0f%% %10s %10s %10s %12s %12s   %s %s %s (flops -%4.1f%%)\n",
        row.model.c_str(), opts.budget * 100.0, ms(row.original_s).c_str(),
        ms(row.tk_cudnn_s).c_str(), ms(row.tk_tvm_s).c_str(),
        ms(row.tk_tdc_oracle_s).c_str(), ms(row.tk_tdc_model_s).c_str(),
        ratio(row.original_s / row.tk_tdc_oracle_s).c_str(),
        ratio(row.tk_cudnn_s / row.tk_tdc_oracle_s).c_str(),
        ratio(row.tk_tvm_s / row.tk_tdc_oracle_s).c_str(),
        row.flops_reduction * 100.0);
  }
  print_rule();
  std::printf(
      "Paper (%s): TDC vs original cuDNN up to %s; vs TK-cuDNN %s; vs TK-TVM %s.\n",
      device.name.c_str(),
      device.name == "A100" ? "3.27x (resnet18)" : "7.3x (resnet18)",
      device.name == "A100" ? "1.26-2.21x" : "1.38-3.71x",
      device.name == "A100" ? "1.02-1.12x" : "1.09-1.91x");
}

}  // namespace tdc::bench
