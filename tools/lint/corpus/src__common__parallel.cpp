// Corpus: registered singletons pass. This file simulates
// src/common/parallel.cpp, whose g_*/t_* names are in the
// REGISTERED_SINGLETONS table — no findings expected.
#include <atomic>
#include <mutex>

namespace tdc {
namespace {

thread_local bool t_in_parallel = false;
std::mutex g_pool_mutex;
std::atomic<int> g_num_threads{0};
std::atomic<long> g_pool_regions{0};

int snapshot() {
  (void)t_in_parallel;
  std::unique_lock<std::mutex> lock(g_pool_mutex);
  return g_num_threads.load() + static_cast<int>(g_pool_regions.load());
}

int g_registered_only = 0;                                 // expect-lint: file-scope-globals

}  // namespace
}  // namespace tdc
