// Corpus: run-path allocation rule. The rule's scope is the reachable
// function spans the analyzer commits to tools/analyze/run_path.json; the
// directive below pins this file's span so the case does not depend on the
// real artifact's line numbers. Growth inside the span needs a
// justification or it is a finding; growth outside the span is not checked.
// lint-test: run-path-span(11-17)
#include <vector>

namespace tdc {

void pack(std::vector<float>& buf, int n) {
  buf.resize(static_cast<std::size_t>(n));                 // expect-lint: run-path-alloc
  buf.push_back(1.0f);                                     // expect-lint: run-path-alloc
  // Warm-up growth of a thread_local scratch buffer, grow-only, under
  // AllowAllocScope — sanctioned, so the allow() silences the rule:
  buf.reserve(64);  // tdc-lint: allow(run-path-alloc)
}

// Outside the pinned reachable span: the compile path may allocate freely.
void plan_tiles(std::vector<float>& buf) { buf.push_back(0.0f); }

}  // namespace tdc
