// Corpus: run-path allocation rule. This file's simulated path is in
// RUN_PATH_FILES, so growth calls need a justification or they are findings.
#include <vector>

namespace tdc {

void pack(std::vector<float>& buf, int n) {
  buf.resize(static_cast<std::size_t>(n));                 // expect-lint: run-path-alloc
  buf.push_back(1.0f);                                     // expect-lint: run-path-alloc
  // Warm-up growth of a thread_local scratch buffer, grow-only, under
  // AllowAllocScope — sanctioned, so the allow() silences the rule:
  buf.reserve(64);  // tdc-lint: allow(run-path-alloc)
}

}  // namespace tdc
