// Corpus: determinism rule — every randomness source that breaks
// bit-replayability across runs is a finding, in tests too.
#include <cstdlib>
#include <ctime>
#include <random>

namespace {

int noise() {
  std::srand(static_cast<unsigned>(time(nullptr)));        // expect-lint: deterministic-rng
  std::mt19937 gen(std::random_device{}());                // expect-lint: deterministic-rng
  return std::rand() + static_cast<int>(gen());            // expect-lint: deterministic-rng
}

// Naming a type in prose is fine; only code positions count:
// std::mt19937 mentioned in a comment is not a finding.
int runtime_ms = noise();

}  // namespace
