// Corpus: a clean file — idiomatic repo code produces zero findings.
#include <cstdint>
#include <vector>

namespace tdc {
namespace {

constexpr std::int64_t kTile = 64;

std::int64_t round_up(std::int64_t n) {
  return (n + kTile - 1) / kTile * kTile;
}

std::vector<float> scratch(std::int64_t n) {
  // Growth calls are fine outside RUN_PATH_FILES.
  std::vector<float> v;
  v.resize(static_cast<std::size_t>(round_up(n)));
  return v;
}

}  // namespace
}  // namespace tdc
