// Corpus: the escape hatch. Same-line and line-above allow() comments
// silence exactly the named rule; nothing in this file is a finding.
#include <cstdlib>

namespace tdc {
namespace {

void planted_fault() {
  // A deliberate raw allocation (fault-injection plant):
  float* p = new float[16];  // tdc-lint: allow(raw-new-array)
  delete[] p;
  // tdc-lint: allow(raw-malloc)
  void* q = malloc(8);
  // tdc-lint: allow(raw-malloc)
  free(q);
}

// Multiple rules in one allow():
// tdc-lint: allow(raw-new-array, check-macros)
int* both() { return new int[4]; }

}  // namespace
}  // namespace tdc
