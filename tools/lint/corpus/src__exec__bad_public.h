// Corpus: public headers must not include internal *_impl.h seams.
#pragma once

#include "exec/plan_impl.h"                                // expect-lint: impl-header-in-public
#include "exec/op_plan.h"

namespace tdc {
int public_surface();
}  // namespace tdc
