// Corpus: raw allocation and error-handling violations in a library file.
// Each violating line declares the expected rule inline; --self-test checks
// the linter reports exactly these (rule, line) pairs and nothing else.
#include <cassert>
#include <cstdlib>
#include <stdexcept>

namespace tdc {
namespace {

float* make_buffer(int n) {
  float* p = new float[16];                                // expect-lint: raw-new-array
  void* q = malloc(static_cast<std::size_t>(n));           // expect-lint: raw-malloc
  free(q);                                                 // expect-lint: raw-malloc
  assert(n > 0);                                           // expect-lint: check-macros
  if (n < 0) {
    throw std::runtime_error("bad n");                     // expect-lint: check-macros
  }
  return p;
}

void loop(int n) {
#pragma omp parallel for                                   // expect-lint: no-openmp
  for (int i = 0; i < n; ++i) {
    make_buffer(i);
  }
}

// A new[] spelled inside a comment or string must NOT be reported:
// new float[16] is fine here.
const char* kDoc = "new float[16] in a string literal";

}  // namespace
}  // namespace tdc
