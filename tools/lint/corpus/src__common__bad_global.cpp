// Corpus: mutable file-scope state must be in the registered-singleton
// table. Unregistered g_*/t_* globals are findings; const/constexpr and
// function-local statics are exempt.
#include <atomic>
#include <mutex>

namespace tdc {
namespace {

std::atomic<int> g_rogue_counter{0};                       // expect-lint: file-scope-globals
thread_local bool t_rogue_flag = false;                    // expect-lint: file-scope-globals

constexpr int g_not_mutable = 7;       // const: exempt
const char* const g_name = "tdc";      // const: exempt

int helper() {
  static std::mutex g_local_mutex;     // function-local: exempt
  (void)g_local_mutex;
  return g_rogue_counter.load() + g_not_mutable + (t_rogue_flag ? 1 : 0) +
         static_cast<int>(g_name[0]);
}

int g_unused = helper();                                   // expect-lint: file-scope-globals

}  // namespace
}  // namespace tdc
