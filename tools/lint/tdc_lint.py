#!/usr/bin/env python3
"""tdc_lint: the repo-rule linter.

Enforces repo-specific invariants that generic tooling (clang-tidy, warnings)
cannot know about, over src/ tests/ bench/. AST-free by design: every rule is
a line-oriented pattern plus a little context (comment/string stripping and
brace-depth tracking), so a full-tree run is milliseconds and the checker has
no compiler or package dependencies.

Usage:
  tools/lint/tdc_lint.py                 # lint the repo (src/ tests/ bench/)
  tools/lint/tdc_lint.py path...         # lint specific files or directories
  tools/lint/tdc_lint.py --explain RULE  # what a rule means and how to fix it
  tools/lint/tdc_lint.py --explain       # list all rules
  tools/lint/tdc_lint.py --self-test     # run the corpus under tools/lint/corpus/

Escape hatch: append `// tdc-lint: allow(rule-id)` to the offending line (or
put it alone on the line above) with a short justification. Allowlists that
are structural — the allocation interposer may call malloc, the registered
process-wide singletons — live in the tables below and in rules.md, not in
scattered comments.

Exit status: 0 clean, 1 findings, 2 usage/internal error.
"""

from __future__ import annotations

import json
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
LINT_SCOPES = ("src", "tests", "bench")
CXX_SUFFIXES = {".cpp", ".h"}

# Run-path scope: computed, not hand-named. The semantic analyzer
# (tools/analyze/tdc_analyze.py) walks the call graph from the TDC_RUN_PATH
# roots and commits the reachable function spans to
# tools/analyze/run_path.json; the run-path-alloc rule checks exactly those
# spans, so the linter and the analyzer cannot drift. Regenerate with
#   tools/analyze/tdc_analyze.py --write-run-path
RUN_PATH_JSON = Path(__file__).resolve().parents[1] / "analyze" / "run_path.json"
_RUN_PATH_SPANS = None


def _run_path_spans():
    """{relpath: [(start_line, end_line), ...]} from the committed analyzer
    artifact. Missing artifact is a usage error (exit 2): the linter must
    never silently lint nothing."""
    global _RUN_PATH_SPANS
    if _RUN_PATH_SPANS is None:
        if not RUN_PATH_JSON.exists():
            print(f"tdc_lint: {RUN_PATH_JSON} missing; run "
                  "tools/analyze/tdc_analyze.py --write-run-path and commit "
                  "the result", file=sys.stderr)
            sys.exit(2)
        data = json.loads(RUN_PATH_JSON.read_text())
        spans = {}
        for fn in data.get("functions", []):
            spans.setdefault(fn["file"], []).append(
                (fn["line"], fn["end_line"]))
        _RUN_PATH_SPANS = spans
    return _RUN_PATH_SPANS


# Corpus/test hook: a file may pin its own run-path spans with
# `// lint-test: run-path-span(START-END)` so the corpus can exercise the
# rule without depending on the real artifact's line numbers.
SPAN_DIRECTIVE_RE = re.compile(
    r"//\s*lint-test:\s*run-path-span\((\d+)-(\d+)\)")

# The allocation interposition layer is the one translation unit that must
# call malloc/free directly (it IS operator new/delete).
RAW_MALLOC_EXEMPT_FILES = {
    "src/common/alloc_guard.cpp",
}

# Registered process-wide singletons: the only sanctioned mutable file-scope
# state, file -> names. Everything here is either an atomic with documented
# ordering, a mutex, state owned by one (mutex, thread) discipline, or
# thread-local state with a propagation story in the parallel runtime.
# Adding a name is a reviewed act: extend this table AND rules.md together.
REGISTERED_SINGLETONS = {
    "src/common/parallel.cpp": {
        "t_in_parallel", "g_pool_mutex", "g_pool",
        "g_num_threads", "g_inter_op", "g_intra_op",
        "g_pool_regions", "g_inline_regions",
        "g_serial_fallbacks", "g_arena_regions", "g_peak_regions",
        "g_fallback_noted",
    },
    "src/common/deadline.cpp": {"t_deadline"},
    "src/common/fault.cpp": {"g_armed_faults"},
    "src/common/fault.h": {"g_armed_faults"},
    "src/common/check.cpp": {"g_check_finite"},
    "src/common/alloc_guard.cpp": {
        "t_alloc_guard", "g_alloc_guard_enabled", "g_violations",
    },
    "src/common/alloc_guard.h": {"t_alloc_guard", "g_alloc_guard_enabled"},
    "src/exec/workspace_guard.cpp": {"g_ws_guard_enabled"},
}


class Rule:
    def __init__(self, rule_id, summary, explain, applies, check):
        self.rule_id = rule_id
        self.summary = summary
        self.explain = explain
        self.applies = applies  # (relpath: str) -> bool
        self.check = check      # (ctx) -> yields (line_no, message)


class FileContext:
    """One file, preprocessed for the rules: raw lines, code-only lines
    (comments and string/char literals blanked), and the brace depth at the
    start of every line."""

    def __init__(self, relpath: str, text: str):
        self.relpath = relpath
        self.lines = text.splitlines()
        self.code_lines = _strip_comments_and_strings(text).splitlines()
        self.depth_at_line = _brace_depths(self.code_lines)
        self.allows = _collect_allows(self.lines)


def _strip_comments_and_strings(text: str) -> str:
    """Blanks //, /* */ comments and "..."/'...' literals, preserving line
    structure so line numbers and brace counts stay aligned."""
    out = []
    i = 0
    n = len(text)
    state = "code"  # code | line_comment | block_comment | dquote | squote
    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if ch == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if ch == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if ch == '"':
                state = "dquote"
                out.append(" ")
                i += 1
                continue
            if ch == "'":
                state = "squote"
                out.append(" ")
                i += 1
                continue
            out.append(ch)
            i += 1
        elif state == "line_comment":
            if ch == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
            i += 1
        elif state == "block_comment":
            if ch == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if ch == "\n" else " ")
            i += 1
        else:  # dquote / squote
            quote = '"' if state == "dquote" else "'"
            if ch == "\\" and i + 1 < n:
                out.append("  ")
                i += 2
                continue
            if ch == quote:
                state = "code"
            out.append("\n" if ch == "\n" else " ")
            i += 1
    return "".join(out)


def _brace_depths(code_lines):
    """Brace depth at the START of each line (comments/strings already
    stripped)."""
    depths = []
    depth = 0
    for line in code_lines:
        depths.append(depth)
        depth += line.count("{") - line.count("}")
    return depths


ALLOW_RE = re.compile(r"//\s*tdc-lint:\s*allow\(([a-z0-9_,\- ]+)\)")


def _collect_allows(lines):
    """Maps line number (1-based) -> set of allowed rule ids. An allow on a
    line that holds only the comment applies to the next line."""
    allows = {}
    for idx, line in enumerate(lines, start=1):
        m = ALLOW_RE.search(line)
        if not m:
            continue
        rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
        target = idx
        if line.strip().startswith("//"):
            target = idx + 1
        allows.setdefault(target, set()).update(rules)
        allows.setdefault(idx, set()).update(rules)
    return allows


def _grep_rule(pattern, message):
    rx = re.compile(pattern)
    def check(ctx):
        for idx, line in enumerate(ctx.code_lines, start=1):
            if rx.search(line):
                yield idx, message
    return check


def _in_scope(*prefixes):
    def applies(relpath):
        return any(relpath.startswith(p) for p in prefixes)
    return applies


def _check_raw_malloc(ctx):
    if ctx.relpath in RAW_MALLOC_EXEMPT_FILES:
        return
    rx = re.compile(r"\b(malloc|calloc|realloc|free)\s*\(")
    for idx, line in enumerate(ctx.code_lines, start=1):
        if rx.search(line):
            yield idx, "raw malloc/calloc/realloc/free; use containers or Tensor"


def _check_run_path_alloc(ctx):
    spans = [(int(m.group(1)), int(m.group(2)))
             for line in ctx.lines
             for m in [SPAN_DIRECTIVE_RE.search(line)] if m]
    if not spans:
        spans = _run_path_spans().get(ctx.relpath, [])
    if not spans:
        return
    rx = re.compile(r"\.(push_back|emplace_back|resize|reserve)\s*\(|\bnew\b")
    for idx, line in enumerate(ctx.code_lines, start=1):
        if rx.search(line) and any(a <= idx <= b for a, b in spans):
            yield idx, ("container growth inside a run-path function "
                        "(reachable from a TDC_RUN_PATH root per "
                        "tools/analyze/run_path.json); run paths are "
                        "allocation-free after warm-up (DenyAllocGuard)")


def _check_file_scope_globals(ctx):
    if not ctx.relpath.startswith("src"):
        return
    decl = re.compile(
        r"^\s*(?:static\s+|thread_local\s+|inline\s+)*"
        r"[A-Za-z_][\w:<>,*&\s]*[\s&*]"
        r"(g_[a-z0-9_]+|t_[a-z0-9_]+)\s*[;={(]")
    registered = REGISTERED_SINGLETONS.get(ctx.relpath, set())
    for idx, line in enumerate(ctx.code_lines, start=1):
        if ctx.depth_at_line[idx - 1] > 2:
            continue  # inside a function or class body
        m = decl.match(line)
        if not m:
            continue
        stripped = line.strip()
        if stripped.startswith(("const ", "constexpr ", "inline constexpr")):
            continue
        name = m.group(1)
        if name in registered:
            continue
        yield idx, (f"mutable file-scope global '{name}' is not in the "
                    "registered-singleton list (tools/lint/tdc_lint.py)")


def _check_impl_header(ctx):
    if not (ctx.relpath.startswith("src") and ctx.relpath.endswith(".h")):
        return
    rx = re.compile(r'#\s*include\s+"[^"]*_impl\.h"')
    for idx, line in enumerate(ctx.lines, start=1):
        if rx.search(line):
            yield idx, "public header includes an internal *_impl.h header"


RULES = [
    Rule(
        "raw-new-array",
        "no naked new[] anywhere in the library",
        "Raw array new has no owner and no exception safety; buffers are\n"
        "std::vector, Tensor, or a workspace slice. A deliberate raw\n"
        "allocation (e.g. a fault-injection plant) carries an inline allow()\n"
        "with its justification.",
        _in_scope("src"),
        _grep_rule(r"\bnew\s+[A-Za-z_][\w:]*\s*\[",
                   "naked new[]; use std::vector, Tensor, or workspace"),
    ),
    Rule(
        "raw-malloc",
        "no malloc/calloc/realloc/free in the library",
        "C allocation bypasses operator new and therefore the\n"
        "DenyAllocGuard interposition; the only translation unit allowed to\n"
        "touch malloc/free is src/common/alloc_guard.cpp, which implements\n"
        "the interposed operators themselves (structural exemption, see\n"
        "RAW_MALLOC_EXEMPT_FILES).",
        _in_scope("src"),
        _check_raw_malloc,
    ),
    Rule(
        "run-path-alloc",
        "no container growth inside run-path functions",
        "Functions reachable from a TDC_RUN_PATH root promise zero heap\n"
        "allocation at steady state — the property DenyAllocGuard enforces\n"
        "at runtime. The scope is computed by the call-graph analyzer and\n"
        "committed as tools/analyze/run_path.json (regenerate with\n"
        "tdc_analyze.py --write-run-path); growth calls and raw new inside\n"
        "a reachable span must be warm-up-only (thread_local, grow-only,\n"
        "under AllowAllocScope) and say so in an inline allow().",
        _in_scope("src"),
        _check_run_path_alloc,
    ),
    Rule(
        "deterministic-rng",
        "no std::rand/time()/unseeded RNG in deterministic paths",
        "Results are bit-identical across runs and thread counts; the only\n"
        "randomness source is tdc::Rng with an explicit seed. std::rand,\n"
        "srand, time()-derived seeds, std::random_device and bare\n"
        "std::mt19937 all break replayability.",
        _in_scope("src", "tests", "bench"),
        _grep_rule(r"\bstd::rand\b|\bsrand\s*\(|\btime\s*\(\s*(NULL|nullptr|0)?\s*\)"
                   r"|\bstd::random_device\b|\bstd::mt19937\b",
                   "nondeterministic randomness; use tdc::Rng with an explicit seed"),
    ),
    Rule(
        "check-macros",
        "TDC_CHECK* instead of assert / throw std::runtime_error",
        "assert() vanishes under NDEBUG and aborts instead of throwing;\n"
        "bare std::runtime_error/logic_error lose the ErrorCode taxonomy the\n"
        "serving tier dispatches on. Use TDC_CHECK / TDC_CHECK_MSG /\n"
        "TDC_CHECK_INTERNAL or throw tdc::Error with an explicit code.",
        _in_scope("src", "tests", "bench"),
        _grep_rule(r"\bassert\s*\(|\bthrow\s+std::(runtime_error|logic_error)\b",
                   "use TDC_CHECK*/tdc::Error instead of assert or bare "
                   "std::runtime_error"),
    ),
    Rule(
        "no-openmp",
        "no OpenMP pragmas; use common/parallel.h",
        "Every multi-threaded loop funnels through the shared runtime\n"
        "(parallel_for) so thread count, nesting policy, deadline and\n"
        "alloc-guard propagation stay consistent. An OpenMP pragma would\n"
        "fork outside all of that.",
        _in_scope("src", "tests", "bench"),
        _grep_rule(r"#\s*pragma\s+omp\b",
                   "OpenMP pragma; use tdc::parallel_for (common/parallel.h)"),
    ),
    Rule(
        "file-scope-globals",
        "mutable file-scope globals must be registered singletons",
        "Process-wide mutable state is where the races live. Every mutable\n"
        "namespace-scope g_*/t_* variable must appear in the\n"
        "REGISTERED_SINGLETONS table (and rules.md) where its\n"
        "synchronization discipline is reviewed; anything else is a\n"
        "finding. Function-local statics and const/constexpr globals are\n"
        "exempt.",
        _in_scope("src"),
        _check_file_scope_globals,
    ),
    Rule(
        "impl-header-in-public",
        "public headers must not include *_impl.h",
        "Headers under src/ are the library's public surface; *_impl.h\n"
        "files are internal factory/detail seams. Including one from a\n"
        "public header leaks the internals into every consumer and defeats\n"
        "the one-algorithm-per-TU layout.",
        _in_scope("src"),
        _check_impl_header,
    ),
]

RULES_BY_ID = {r.rule_id: r for r in RULES}


def lint_text(relpath: str, text: str):
    """Lints one file's content; returns [(rule_id, line_no, message)]."""
    ctx = FileContext(relpath, text)
    findings = []
    for rule in RULES:
        if not rule.applies(relpath):
            continue
        for line_no, message in rule.check(ctx):
            if rule.rule_id in ctx.allows.get(line_no, set()):
                continue
            findings.append((rule.rule_id, line_no, message))
    findings.sort(key=lambda f: (f[1], f[0]))
    return findings


def iter_lint_files(paths):
    for p in paths:
        if p.is_dir():
            yield from sorted(
                f for f in p.rglob("*") if f.suffix in CXX_SUFFIXES)
        elif p.suffix in CXX_SUFFIXES:
            yield p


def run_lint(paths) -> int:
    total = 0
    for f in iter_lint_files(paths):
        try:
            rel = f.resolve().relative_to(REPO_ROOT).as_posix()
        except ValueError:
            rel = f.as_posix()
        findings = lint_text(rel, f.read_text(encoding="utf-8",
                                              errors="replace"))
        for rule_id, line_no, message in findings:
            print(f"{rel}:{line_no}: [{rule_id}] {message}")
            total += 1
    if total:
        print(f"\ntdc_lint: {total} finding(s). "
              "Run with --explain RULE for the rationale; a justified "
              "exception takes `// tdc-lint: allow(RULE)`.")
        return 1
    print("tdc_lint: clean")
    return 0


def explain(rule_id=None) -> int:
    if rule_id is None:
        width = max(len(r.rule_id) for r in RULES)
        for r in RULES:
            print(f"{r.rule_id:<{width}}  {r.summary}")
        return 0
    rule = RULES_BY_ID.get(rule_id)
    if rule is None:
        print(f"unknown rule '{rule_id}'; known rules:", file=sys.stderr)
        for r in RULES:
            print(f"  {r.rule_id}", file=sys.stderr)
        return 2
    print(f"{rule.rule_id}: {rule.summary}\n")
    print(rule.explain)
    print("\nEscape hatch: `// tdc-lint: allow(" + rule.rule_id + ")` on the "
          "line (or alone on the line above) with a justification.")
    return 0


EXPECT_RE = re.compile(r"//\s*expect-lint:\s*([a-z0-9\-]+(?:\s*,\s*[a-z0-9\-]+)*)")


def self_test() -> int:
    """Runs the corpus: each file under corpus/ declares its expected
    findings inline as `// expect-lint: rule-id[, rule-id]` on the violating
    line; the linter must produce exactly that set (pytest-style: every file
    is a case, failures report expected vs. actual)."""
    corpus = Path(__file__).resolve().parent / "corpus"
    cases = sorted(corpus.glob("*.*"))
    if not cases:
        print("self-test: no corpus files found", file=sys.stderr)
        return 2
    failures = 0
    for case in cases:
        # Corpus files simulate repo paths via their names:
        # src__exec__foo.cpp -> src/exec/foo.cpp
        rel = case.name.replace("__", "/")
        text = case.read_text(encoding="utf-8")
        expected = set()
        for idx, line in enumerate(text.splitlines(), start=1):
            m = EXPECT_RE.search(line)
            if m:
                for rid in m.group(1).split(","):
                    expected.add((rid.strip(), idx))
        actual = {(rule_id, line_no)
                  for rule_id, line_no, _ in lint_text(rel, text)}
        if actual == expected:
            print(f"PASS {case.name}")
        else:
            failures += 1
            print(f"FAIL {case.name}")
            for miss in sorted(expected - actual):
                print(f"  expected but not reported: {miss[0]} @ line {miss[1]}")
            for extra in sorted(actual - expected):
                print(f"  reported but not expected: {extra[0]} @ line {extra[1]}")
    print(f"self-test: {len(cases) - failures}/{len(cases)} cases passed")
    return 1 if failures else 0


def main(argv) -> int:
    if "--help" in argv or "-h" in argv:
        print(__doc__)
        return 0
    if "--self-test" in argv:
        return self_test()
    if "--explain" in argv:
        i = argv.index("--explain")
        rule_id = argv[i + 1] if i + 1 < len(argv) else None
        return explain(rule_id)
    paths = [Path(a) for a in argv if not a.startswith("-")]
    if not paths:
        paths = [REPO_ROOT / scope for scope in LINT_SCOPES]
    return run_lint(paths)


if __name__ == "__main__":
    try:
        sys.exit(main(sys.argv[1:]))
    except BrokenPipeError:  # e.g. `tdc_lint.py --explain | head`
        sys.exit(0)
