// Positive: fanning out into the thread pool while holding a lock — a worker
// chunk that touches the same lock deadlocks, and the hold time multiplies
// by the region length. Negative: release first, then fan out.
#include <mutex>

#include "common/parallel.h"

namespace tdc {

struct Tuner {
  std::mutex mu_;
  float best_ = 0.0f;

  void time_candidates_locked(float* out, std::int64_t n) {
    std::lock_guard<std::mutex> lock(mu_);
    parallel_for(0, n, [&](std::int64_t i) {  // expect-analyze: lock-across-pool
      out[i] = best_;
    });
  }

  void time_candidates_unlocked(float* out, std::int64_t n) {
    float best;
    {
      std::lock_guard<std::mutex> lock(mu_);
      best = best_;
    }
    parallel_for(0, n, [&, best](std::int64_t i) { out[i] = best; });
  }
};

}  // namespace tdc
