// Positive: a bare mutex.lock()/unlock() pair — an exception in between
// deadlocks the process. Negative: the RAII forms, including re-locking a
// named unique_lock, are fine.
#include <mutex>

namespace tdc {

std::int64_t g_hits_unsafe_counter = 0;  // expect-analyze: unregistered-singleton

void count_hit_bare(std::mutex& m) {
  m.lock();  // expect-analyze: non-raii-lock
  ++g_hits_unsafe_counter;
  m.unlock();
}

void count_hit_raii(std::mutex& m) {
  std::lock_guard<std::mutex> lock(m);
  ++g_hits_unsafe_counter;
}

void count_hit_relock(std::mutex& m) {
  std::unique_lock<std::mutex> lk(m, std::defer_lock);
  lk.lock();
  ++g_hits_unsafe_counter;
}

}  // namespace tdc
