// The escape hatch and the cold-path carve-outs, side by side with a
// violation that has no escape.
//
// Negatives: TDC_ANALYZE_ALLOW(run-path-lock) waives the rule for its
// enclosing function; TDC_CHECK* message arguments build only on the failure
// path; an `if (fault_injected(...))` block is a test-only fault plant;
// [[noreturn]] error sinks are cold. Positive: the same lock acquisition in
// a function with no waiver.
#include <mutex>
#include <stdexcept>
#include <string>

#include "common/annotations.h"
#include "common/check.h"
#include "common/fault.h"

namespace tdc {

[[noreturn]] void fail_request(std::int64_t id) {
  throw std::runtime_error("request failed: " + std::to_string(id));
}

std::mutex g_stats_lock_mutex;  // expect-analyze: unregistered-singleton

void record_stats_unsanctioned() {
  std::lock_guard<std::mutex> lock(g_stats_lock_mutex);  // expect-analyze: run-path-lock
}

void record_stats_sanctioned() {
  // One-time lazy initialization: bounded, never on the steady-state path.
  TDC_ANALYZE_ALLOW(run-path-lock);
  std::lock_guard<std::mutex> lock(g_stats_lock_mutex);
}

TDC_RUN_PATH float serve(std::int64_t id, float x) {
  TDC_CHECK_MSG(x >= 0.0f, "negative input for request " + std::to_string(id));
  if (fault_injected("corpus.serve_alloc")) {
    float* plant = new float[4];
    delete[] plant;
  }
  if (x > 1e30f) {
    fail_request(id);
  }
  record_stats_sanctioned();
  record_stats_unsanctioned();
  return x;
}

}  // namespace tdc
