// This file deliberately reuses the path of the real registered-singleton
// table entry: g_pool is registered for src/common/parallel.cpp (negative),
// g_rogue_state is not (positive). One table — tools/lint/tdc_lint.py —
// serves both the linter and the analyzer.
#include <atomic>
#include <memory>

namespace tdc {

struct PoolStub {};

std::unique_ptr<PoolStub> g_pool;

std::atomic<int> g_rogue_state{0};  // expect-analyze: unregistered-singleton

// Negative: constants are not mutable state.
constexpr int g_pool_default_threads = 4;

}  // namespace tdc
