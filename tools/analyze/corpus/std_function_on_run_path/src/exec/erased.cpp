// Positive: std::function construction on the run path type-erases through
// a possible heap allocation. Negative: FunctionRef is the non-owning,
// never-allocating replacement the pool hot path uses.
#include <functional>

#include "common/annotations.h"
#include "common/function_ref.h"

namespace tdc {

float apply_ref(FunctionRef<float(float)> op, float x) { return op(x); }

TDC_RUN_PATH float serve(float x) {
  std::function<float(float)> op = [](float v) { return v * 2.0f; };  // expect-analyze: run-path-function
  return op(x) + apply_ref([](float v) { return v + 1.0f; }, x);
}

}  // namespace tdc
