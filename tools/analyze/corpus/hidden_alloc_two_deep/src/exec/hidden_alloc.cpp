// Positive: a heap allocation hiding two calls below a run-path root must
// still be reported — the whole point of reachability over file lists.
#include <vector>

#include "common/alloc_guard.h"
#include "common/annotations.h"

namespace tdc {

struct Accumulator {
  std::vector<float> slots_;

  void grow_slots(float v) {
    slots_.push_back(v);  // expect-analyze: run-path-alloc
  }

  void record(float v) { grow_slots(v); }
};

// Negative: default construction of a vector does not allocate, and growth
// under an AllowAllocScope is the sanctioned warm-up pattern.
void warm_up(Accumulator& acc) {
  AllowAllocScope warmup;
  acc.slots_.reserve(64);
}

TDC_RUN_PATH void serve_request(Accumulator& acc, float v) {
  acc.record(v);
}

}  // namespace tdc
