// Negative: overloads are distinguished by arity. The run path calls the
// 3-argument scale(); the allocating 1-argument convenience overload must
// not be pulled into the reachable set by bare-name matching.
// Positive: a callback invoked under a lock — the callback can reenter the
// locking component (lock-across-callback fires on the call graph, not on
// reachability).
#include <mutex>
#include <vector>

#include "common/annotations.h"
#include "common/function_ref.h"

namespace tdc {

std::vector<float> scale(float v) {
  std::vector<float> out(4, v);
  return out;
}

void scale(const float* in, float* out, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) {
    out[i] = in[i] * 2.0f;
  }
}

TDC_RUN_PATH void serve(const float* in, float* out, std::int64_t n) {
  scale(in, out, n);
}

struct Notifier {
  std::mutex mu_;
  int seq_ = 0;

  void notify_locked(FunctionRef<void(int)> on_event) {
    std::lock_guard<std::mutex> lock(mu_);
    on_event(seq_);  // expect-analyze: lock-across-callback
  }

  void notify_unlocked(FunctionRef<void(int)> on_event) {
    int seq;
    {
      std::lock_guard<std::mutex> lock(mu_);
      seq = ++seq_;
    }
    on_event(seq);
  }
};

}  // namespace tdc
