// Negative: exec (tier 3) may include conv (tier 2) — downward edges and
// same-tier edges are the allowed directions.
#pragma once

#include "conv/conv_types.h"

namespace tdc {
inline constexpr int kPlanApiVersion = kConvTypesVersion + 1;
}  // namespace tdc
