#pragma once

namespace tdc {
inline constexpr int kConvTypesVersion = 1;
}  // namespace tdc
