// Positive: conv (tier 2) reaching up into exec (tier 3) inverts the
// layering DAG common -> linalg/fft/tensor -> conv/core -> exec -> nn.
#pragma once

#include "exec/plan_api.h"  // expect-analyze: layering

namespace tdc {
inline int conv_uses_exec() { return kPlanApiVersion; }
}  // namespace tdc
