// Positives: I/O and nondeterminism reachable from a run-path root. Results
// must be bit-identical across runs; diagnostics belong off the hot path.
// Negative: steady_clock is the sanctioned monotonic scheduling clock.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <random>

#include "common/annotations.h"

namespace tdc {

float jitter_scale() {
  std::random_device rd;  // expect-analyze: run-path-nondet
  return static_cast<float>(rd()) * 1e-9f;
}

void trace_request(std::int64_t id) {
  printf("serving %lld\n", static_cast<long long>(id));  // expect-analyze: run-path-io
}

std::int64_t monotonic_ticks() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

TDC_RUN_PATH float serve(std::int64_t id) {
  trace_request(id);
  const float noise = jitter_scale() + static_cast<float>(rand());  // expect-analyze: run-path-nondet
  return noise + static_cast<float>(monotonic_ticks() & 1);
}

}  // namespace tdc
