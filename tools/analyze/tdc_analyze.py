#!/usr/bin/env python3
"""tdc_analyze: semantic static analysis over the whole-project call graph.

Where tools/lint/tdc_lint.py enforces token-level conventions file by file,
this tool proves *reachability* properties on the AST and call graph:

  1. Run-path purity. Functions annotated TDC_RUN_PATH (src/common/
     annotations.h) are the serving roots — InferenceSession::run /
     run_batched, OpPlan::run*, the packed-GEMM block walk, the pool worker
     bodies. Everything reachable from a root must perform no heap
     allocation, construct no std::function, acquire no mutex, do no I/O and
     call nothing nondeterministic. AllowAllocScope regions (the structural
     warm-up escape DenyAllocGuard honors at runtime) and TDC_ANALYZE_ALLOW
     declarations are recognized structurally; cold regions (TDC_CHECK*
     failure arguments, fault_injected-guarded blocks, [[noreturn]] error
     sinks) are excluded because the runtime opens AllowAllocScope on those
     paths before they allocate.

  2. Layering. Includes must respect the tier DAG
         common -> linalg/fft/tensor -> conv/core/tucker/gpusim -> exec
                -> nn/serving/autograd/train
     so a lower tier can never grow an upward edge as the serving tier lands.

  3. Lock discipline. Every std::mutex acquisition must be RAII
     (lock_guard/scoped_lock/unique_lock/shared_lock); no lock may be held
     across a call into the thread pool (parallel_for / parallel_reduce /
     run_chunked) or across an invocation of a caller-provided callback; and
     every mutable file-scope global must be in the registered-singleton
     table shared with tdc_lint.py.

Frontends. With the libclang Python bindings available (pip `libclang`,
pinned in CI; point TDC_LIBCLANG at a specific shared object to override
discovery) the clang frontend parses every TU of the exported
compile_commands.json and takes function boundaries, qualified names and
annotate-attributes from the AST. Without them (the default dev container
ships no libclang) a fallback frontend recovers the same records from a
structural scan of the sources. Event detection inside function bodies —
allocations, locks, I/O, call edges — is ONE shared engine over the
comment-stripped body text, so the two frontends cannot disagree on
findings, only on how precisely functions are delimited; the corpus
self-test runs under whichever frontend is active and CI runs it under
both.

Usage:
  tools/analyze/tdc_analyze.py                     # analyze src/
  tools/analyze/tdc_analyze.py --compile-db build  # use build/compile_commands.json
  tools/analyze/tdc_analyze.py --emit-reachable F  # write reachable-set JSON to F
  tools/analyze/tdc_analyze.py --write-run-path    # refresh tools/analyze/run_path.json
  tools/analyze/tdc_analyze.py --check-run-path    # fail if run_path.json is stale
  tools/analyze/tdc_analyze.py --self-test         # run the corpus under tools/analyze/corpus/
  tools/analyze/tdc_analyze.py --explain [RULE]    # rule rationale (see also rules.md)
  tools/analyze/tdc_analyze.py --list-roots        # print the annotated run-path roots

Exit status: 0 clean, 1 findings, 2 usage/internal error.
"""

from __future__ import annotations

import json
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO_ROOT / "tools" / "lint"))
import tdc_lint  # registered-singleton table + comment stripper (one source of truth)

CXX_SUFFIXES = {".cpp", ".h"}
RUN_PATH_JSON = Path(__file__).resolve().parent / "run_path.json"

# ------------------------------------------------------------------ policy --

# Tier DAG of src/ subdirectories. An include from tier T may only name
# headers in tiers <= T; directories sharing a tier may include each other.
TIERS = {
    "common": 0,
    "linalg": 1, "fft": 1, "tensor": 1,
    "conv": 2, "core": 2, "tucker": 2, "gpusim": 2,
    "exec": 3,
    "nn": 4, "serving": 4, "autograd": 4, "train": 4,
}

# Container/string growth & allocating members (suffix match after . or ->).
GROWTH_METHODS = {
    "push_back", "emplace_back", "resize", "reserve", "insert", "emplace",
    "append", "push", "assign", "emplace_front", "push_front",
}
# Free functions whose call allocates.
ALLOC_CALLS = {"make_unique", "make_shared", "to_string", "malloc", "calloc",
               "realloc", "free", "strdup", "aligned_alloc"}
# Types whose by-value local construction (with initializer) allocates.
ALLOC_TYPES = ("Tensor", "std::vector", "std::string", "std::unordered_map",
               "std::map", "std::deque", "std::set", "std::unordered_set",
               "std::list")
IO_CALLS = {"printf", "fprintf", "sprintf", "snprintf", "puts", "fputs",
            "fwrite", "fread", "fopen", "fclose", "fflush", "getline",
            "system", "popen"}
IO_STREAMS = {"cout", "cerr", "clog", "ofstream", "ifstream", "fstream",
              "stringstream", "ostringstream", "istringstream"}
NONDET_CALLS = {"rand", "srand", "gettimeofday", "time", "clock"}
# std:: member spellings that never resolve to project functions; calling
# them must not create a call edge (g_num_threads.store() is not
# TilingCache::store()).
STD_MEMBERS = {"store", "load", "exchange", "fetch_add", "fetch_sub",
               "fetch_or", "fetch_and", "compare_exchange_weak",
               "compare_exchange_strong", "notify_one", "notify_all",
               "wait", "wait_for", "wait_until", "test_and_set", "count",
               "size", "empty", "begin", "end", "data", "get", "reset",
               "release", "c_str", "str", "find", "at", "front", "back",
               "swap", "join", "joinable", "detach", "native_handle",
               "substr", "compare", "length", "erase", "pop_back",
               "pop_front", "value_or", "has_value", "time_since_epoch"}
NONDET_TYPES = {"random_device", "system_clock"}  # steady_clock is fine: it
# is the monotonic scheduling clock Deadline polls; it never feeds results.
LOCK_RAII = {"lock_guard", "scoped_lock", "unique_lock", "shared_lock"}
POOL_CALLS = {"parallel_for", "parallel_reduce", "run_chunked"}
# Macros/operators whose argument expressions are cold or unevaluated: the
# TDC_CHECK* message builds only on the failure path (the runtime opens
# AllowAllocScope before constructing the error), sizeof/decltype/alignof
# never evaluate, static_assert is compile-time.
COLD_MACROS = {"TDC_CHECK", "TDC_CHECK_MSG", "TDC_CHECK_INTERNAL",
               "static_assert", "sizeof", "decltype", "alignof",
               "TDC_ANALYZE_ALLOW"}
# A call whose condition gates an `if` block marks that block cold: the fault
# registry fires only in armed test processes, never at steady state.
COLD_IF_CALLS = {"fault_injected"}

CXX_KEYWORDS = {
    "if", "for", "while", "switch", "catch", "return", "sizeof", "new",
    "delete", "throw", "else", "do", "case", "default", "break", "continue",
    "goto", "using", "typedef", "static_cast", "dynamic_cast", "const_cast",
    "reinterpret_cast", "co_await", "co_return", "co_yield", "alignof",
    "decltype", "noexcept", "typeid", "requires", "template", "operator",
    "int", "void", "bool", "float", "double", "char", "auto", "constexpr",
}

RULE_IDS = [
    "run-path-alloc", "run-path-function", "run-path-lock", "run-path-io",
    "run-path-nondet", "layering", "non-raii-lock", "lock-across-pool",
    "lock-across-callback", "unregistered-singleton",
]

RULE_EXPLAIN = {
    "run-path-alloc":
        "A function reachable from a TDC_RUN_PATH root performs heap\n"
        "allocation (new/delete, malloc family, container growth, an\n"
        "allocating local, make_unique/make_shared/to_string). Run paths\n"
        "are allocation-free at steady state — the invariant DenyAllocGuard\n"
        "enforces at runtime. Warm-up growth belongs inside an\n"
        "AllowAllocScope block (recognized structurally); anything else\n"
        "needs a TDC_ANALYZE_ALLOW(run-path-alloc) with a justification.",
    "run-path-function":
        "std::function construction on the run path type-erases through a\n"
        "possible heap allocation and an indirect call. Use\n"
        "tdc::FunctionRef (common/function_ref.h): non-owning, never\n"
        "allocates — the pool hot path moved to it in PR 7.",
    "run-path-lock":
        "A mutex acquisition is reachable from a run-path root. Serving\n"
        "latency must not depend on lock contention; the only sanctioned\n"
        "blocking points are the pool's fork/join handoff and one-time\n"
        "lazy initialization, each carrying TDC_ANALYZE_ALLOW(run-path-lock)\n"
        "next to its justification.",
    "run-path-io":
        "I/O (stdio, iostreams, file streams) reachable from a run-path\n"
        "root. Diagnostics belong off the hot path; the one escape is a\n"
        "one-shot note (see note_serial_fallback).",
    "run-path-nondet":
        "A nondeterministic call (rand, std::random_device, wall-clock\n"
        "time) is reachable from a run-path root. Results are bit-identical\n"
        "across runs and thread counts; the only sanctioned clock is\n"
        "steady_clock inside Deadline (monotonic scheduling, never data).",
    "layering":
        "An include climbs the tier DAG (common -> linalg/fft/tensor ->\n"
        "conv/core/tucker/gpusim -> exec -> nn/serving/autograd/train).\n"
        "Lower tiers must stay ignorant of upper tiers; move the shared\n"
        "type down a tier instead (cf. core/model_spec.h, which moved out\n"
        "of nn/ for exactly this reason).",
    "non-raii-lock":
        "A bare mutex.lock()/try_lock() outside a RAII wrapper. An\n"
        "exception between lock() and unlock() deadlocks the process; use\n"
        "std::lock_guard / scoped_lock / unique_lock. Re-locking a named\n"
        "unique_lock is fine — the wrapper still owns the release.",
    "lock-across-pool":
        "A lock is held across a call into the thread pool (parallel_for /\n"
        "parallel_reduce / run_chunked). A worker chunk that touches the\n"
        "same lock deadlocks; time under the pool multiplies lock hold\n"
        "time by the region length. Release before fanning out (the\n"
        "autotuner times candidates outside the tuner lock for this\n"
        "reason). The one sanctioned case is the pool's own region\n"
        "admission lock in run_chunked.",
    "lock-across-callback":
        "A lock is held across an invocation of a caller-provided callback\n"
        "(std::function / FunctionRef / template callable parameter). The\n"
        "callback can call back into the locking component and deadlock —\n"
        "the classic reentrancy bug. Copy what the callback needs, unlock,\n"
        "then call.",
    "unregistered-singleton":
        "A mutable file-scope global that is not in the registered-\n"
        "singleton table (tools/lint/tdc_lint.py REGISTERED_SINGLETONS —\n"
        "one table, shared with the linter). Process-wide mutable state is\n"
        "where the races live; registration is a reviewed act that\n"
        "documents the synchronization discipline.",
}

# --------------------------------------------------------------------- IR --


class Event:
    __slots__ = ("kind", "line", "detail")

    def __init__(self, kind, line, detail=""):
        self.kind = kind    # rule id for direct findings; "call" for edges
        self.line = line
        self.detail = detail


class Call:
    __slots__ = ("name", "arity", "line", "qualified")

    def __init__(self, name, arity, line, qualified):
        self.name = name          # last component
        self.arity = arity
        self.line = line
        self.qualified = qualified  # full spelled name (may equal name)


class FunctionRecord:
    def __init__(self, qname, name, relpath, line):
        self.qname = qname
        self.name = name
        self.relpath = relpath
        self.line = line
        self.end_line = line
        self.arity_min = 0
        self.arity_max = 0
        self.is_run_path = False
        self.is_noreturn = False
        self.internal = False    # internal linkage: static / anonymous ns
        self.allows = set()      # waived rule ids (TDC_ANALYZE_ALLOW)
        self.events = []         # purity/lock Events
        self.calls = []          # Call edges

    def __repr__(self):
        return f"<fn {self.qname} @ {self.relpath}:{self.line}>"


class FileRecord:
    def __init__(self, relpath, text=""):
        self.relpath = relpath
        self.text = text         # raw source (singleton check, diagnostics)
        self.includes = []       # (line, include_path)
        self.functions = []


# ------------------------------------------------------- shared body scan --

IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*(?:::[A-Za-z_~][A-Za-z0-9_]*)*")
TOKEN_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*(?:::[A-Za-z_~][A-Za-z0-9_]*)*"
                      r"|[{}().,]|->|\[\[|\]\]")
ALLOC_DECL_RE = re.compile(
    r"^(?:<[^;{}()]*>)?\s*(?:[A-Za-z_]\w*\s*[({=]|[({])")
ALLOW_MACRO_RE = re.compile(r"TDC_ANALYZE_ALLOW\s*\(\s*([A-Za-z0-9_\-]+)\s*\)")


def _line_of(offsets, pos):
    """1-based line for a char offset, via bisection over line-start offsets."""
    lo, hi = 0, len(offsets) - 1
    while lo < hi:
        mid = (lo + hi + 1) // 2
        if offsets[mid] <= pos:
            lo = mid
        else:
            hi = mid - 1
    return lo + 1


def _match_paren(code, open_pos):
    """Offset just past the ')' matching the '(' at open_pos (len(code) if
    unbalanced)."""
    depth = 0
    for i in range(open_pos, len(code)):
        c = code[i]
        if c == "(":
            depth += 1
        elif c == ")":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(code)


def _match_brace(code, open_pos):
    """Offset just past the '}' matching the '{' at open_pos."""
    depth = 0
    for i in range(open_pos, len(code)):
        c = code[i]
        if c == "{":
            depth += 1
        elif c == "}":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(code)


def _call_arity(code, open_pos):
    """Number of top-level comma-separated arguments of the paren group at
    open_pos; 0 for an empty argument list."""
    depth = 0
    angle = 0
    args = 0
    saw_any = False
    for i in range(open_pos, len(code)):
        c = code[i]
        if c in "([{":
            depth += 1
        elif c in ")]}":
            depth -= 1
            if depth == 0:
                return args + 1 if saw_any else 0
        elif c == "<":
            angle += 1
        elif c == ">":
            angle = max(0, angle - 1)
        elif c == "," and depth == 1 and angle == 0:
            args += 1
        elif not c.isspace() and depth >= 1:
            saw_any = True
    return args + 1 if saw_any else 0


def _prev_nonspace(code, pos):
    i = pos - 1
    while i >= 0 and code[i].isspace():
        i -= 1
    return code[i] if i >= 0 else ""


def _prev_token(code, pos):
    """The identifier immediately before pos (skipping whitespace), or ''."""
    i = pos - 1
    while i >= 0 and code[i].isspace():
        i -= 1
    end = i + 1
    while i >= 0 and (code[i].isalnum() or code[i] in "_:"):
        i -= 1
    return code[i + 1:end]


def _next_nonspace(code, pos):
    i = pos
    while i < len(code) and code[i].isspace():
        i += 1
    return code[i] if i < len(code) else "", i


def scan_body(func, code, body_start, body_end, offsets, callback_params):
    """The shared event engine: walks the comment-stripped body text of one
    function and appends purity/lock events and call edges to `func`.

    Used verbatim by both frontends — the clang frontend contributes precise
    function boundaries and annotations, but events come from here, so the
    frontends can never disagree on what constitutes a finding.
    """
    depth = 0
    allow_alloc_depths = []   # depths with a live AllowAllocScope
    lock_scopes = []          # [depth, name, line, raw(bool)]
    relockable = set()        # unique_lock/shared_lock variable names
    i = body_start
    while i < body_end:
        m = TOKEN_RE.search(code, i, body_end)
        if m is None:
            break
        tok = m.group(0)
        pos = m.start()
        i = m.end()
        if tok == "{":
            depth += 1
            continue
        if tok == "}":
            depth -= 1
            while allow_alloc_depths and allow_alloc_depths[-1] > depth:
                allow_alloc_depths.pop()
            while lock_scopes and lock_scopes[0 if False else -1][0] > depth:
                lock_scopes.pop()
            continue
        if tok in "().,»" or tok in ("->", "[[", "]]"):
            continue
        if not tok[0].isalpha() and tok[0] != "_":
            continue

        line = _line_of(offsets, pos)
        last = tok.rsplit("::", 1)[-1]
        prev = _prev_nonspace(code, pos)
        is_member = prev == "." or (prev == ">" and code[pos - 2:pos] == "->")
        nxt, nxt_pos = _next_nonspace(code, i)

        # Structural allow: waives the named rule for this function.
        if last == "TDC_ANALYZE_ALLOW" and nxt == "(":
            am = ALLOW_MACRO_RE.match(code, pos)
            if am:
                func.allows.add(am.group(1))
            i = _match_paren(code, nxt_pos)
            continue

        # Cold/unevaluated argument expressions.
        if last in COLD_MACROS and nxt == "(":
            i = _match_paren(code, nxt_pos)
            continue

        # `if (fault_injected(...)) { ... }`: the whole guarded block is a
        # test-only fault plant, cold at steady state.
        if tok == "if" and nxt == "(":
            cond_end = _match_paren(code, nxt_pos)
            cond = code[nxt_pos:cond_end]
            if any(c in cond for c in COLD_IF_CALLS):
                brace, brace_pos = _next_nonspace(code, cond_end)
                if brace == "{":
                    i = _match_brace(code, brace_pos)
                else:
                    i = cond_end
                continue
            # otherwise fall through: scan the condition normally
            continue

        if tok in CXX_KEYWORDS and tok not in ("new", "delete"):
            continue

        # --- purity events -------------------------------------------------
        if tok in ("new", "delete"):
            if not allow_alloc_depths:
                func.events.append(Event("run-path-alloc", line,
                                         f"'{tok}' expression"))
            continue

        if is_member and last in GROWTH_METHODS and nxt == "(":
            if not allow_alloc_depths:
                func.events.append(Event(
                    "run-path-alloc", line,
                    f".{last}() may grow its container"))
            i = _match_paren(code, nxt_pos)
            continue

        if last in ALLOC_CALLS and nxt == "(" and not is_member:
            if not allow_alloc_depths:
                func.events.append(Event("run-path-alloc", line,
                                         f"{last}() allocates"))
            # still record the call edge (malloc etc. have no defs here)
            func.calls.append(Call(last, _call_arity(code, nxt_pos), line, tok))
            i = _match_paren(code, nxt_pos)
            continue

        if last == "AllowAllocScope":
            # A declared AllowAllocScope suppresses allocation events for
            # the remainder of the enclosing block (mirrors its RAII scope).
            allow_alloc_depths.append(depth)
            continue

        if tok == "std::function" or (tok.endswith("::function") and
                                      tok.startswith("std")):
            func.events.append(Event("run-path-function", line,
                                     "std::function construction/use"))
            continue

        if (tok in ALLOC_TYPES or tok.rstrip(":") in ALLOC_TYPES) and \
                not is_member:
            # Local of an allocating type with an initializer.
            if ALLOC_DECL_RE.match(code[i:body_end]) and not allow_alloc_depths:
                func.events.append(Event("run-path-alloc", line,
                                         f"local {tok} construction"))
            continue

        if (last in IO_CALLS and nxt == "(" and not is_member) or \
                (last in IO_STREAMS and tok.startswith("std")):
            func.events.append(Event("run-path-io", line, f"I/O via {last}"))
            if nxt == "(":
                i = _match_paren(code, nxt_pos)
            continue

        if (last in NONDET_CALLS and nxt == "(" and not is_member and
                tok in (last, "std::" + last)) or last in NONDET_TYPES:
            func.events.append(Event("run-path-nondet", line,
                                     f"nondeterministic {last}"))
            if nxt == "(":
                i = _match_paren(code, nxt_pos)
            continue

        # --- lock discipline ----------------------------------------------
        if last in LOCK_RAII:
            func.events.append(Event("run-path-lock", line,
                                     f"{last} acquisition"))
            lock_scopes.append([depth, last, line, False])
            if last in ("unique_lock", "shared_lock"):
                dm = re.match(r"\s*(?:<[^;{}]*>)?\s*([A-Za-z_]\w*)\s*[({]",
                              code[i:body_end])
                if dm:
                    relockable.add(dm.group(1))
            continue

        if is_member and last in ("lock", "try_lock") and nxt == "(":
            recv = _prev_token(code, pos - (1 if prev == "." else 2))
            if recv in relockable:
                func.events.append(Event("run-path-lock", line,
                                         f"{recv}.{last}() (RAII re-lock)"))
            else:
                func.events.append(Event("run-path-lock", line,
                                         f"bare {recv}.{last}()"))
                func.events.append(Event(
                    "non-raii-lock", line,
                    f"bare {recv or 'mutex'}.{last}(); use lock_guard/"
                    "scoped_lock/unique_lock"))
                lock_scopes.append([depth, recv, line, True])
            i = _match_paren(code, nxt_pos)
            continue

        if is_member and last == "unlock" and nxt == "(":
            recv = _prev_token(code, pos - (1 if prev == "." else 2))
            for s in reversed(lock_scopes):
                if s[3] and s[1] == recv:
                    lock_scopes.remove(s)
                    break
            i = _match_paren(code, nxt_pos)
            continue

        # --- pool / callback calls under a lock ----------------------------
        pool_call = (last in POOL_CALLS and nxt == "(") or \
            (last == "run" and nxt == "(" and is_member and
             _prev_token(code, pos - 2).startswith("pool"))
        if pool_call:
            if lock_scopes:
                held = lock_scopes[-1]
                func.events.append(Event(
                    "lock-across-pool", line,
                    f"{last}() called with the lock from line {held[2]} "
                    "held"))
            func.calls.append(Call(last, _call_arity(code, nxt_pos), line,
                                   tok))
            continue

        if tok in callback_params and nxt == "(" and not is_member:
            if lock_scopes:
                held = lock_scopes[-1]
                func.events.append(Event(
                    "lock-across-callback", line,
                    f"callback '{tok}' invoked with the lock from line "
                    f"{held[2]} held"))
            continue

        # --- plain call edge -----------------------------------------------
        if is_member and last in STD_MEMBERS:
            continue
        if nxt == "(" and not tok.isupper():
            func.calls.append(Call(last, _call_arity(code, nxt_pos), line,
                                   tok))
            continue
    return func


# -------------------------------------------------------- fallback frontend --

QUALIFIER_TOKENS = {"const", "noexcept", "override", "final", "mutable",
                    "try", "volatile", "&", "&&"}
CLASS_HEAD_RE = re.compile(
    r"\b(class|struct|union|enum)\b(?:\s+class|\s+struct)?"
    r"\s*(?:\[\[[^\]]*\]\]\s*)?([A-Za-z_]\w*)?[^;(]*$")
NAMESPACE_HEAD_RE = re.compile(r"\bnamespace\s*([A-Za-z_][\w:]*)?\s*$")
TEMPLATE_PARAM_RE = re.compile(r"\b(?:class|typename)(?:\s*\.\.\.)?\s+"
                               r"([A-Za-z_]\w*)")
NORETURN_DECL_RE = re.compile(
    r"\[\[\s*noreturn\s*\]\][^;{(]*?\b([A-Za-z_]\w*)\s*\(")


def _param_info(params_text):
    """(arity_min, arity_max, callback_param_names, template_names_used)."""
    text = params_text.strip()
    if text in ("", "void"):
        return 0, 0, []
    parts = []
    depth = angle = 0
    start = 0
    for idx, c in enumerate(text):
        if c in "([{":
            depth += 1
        elif c in ")]}":
            depth -= 1
        elif c == "<":
            angle += 1
        elif c == ">":
            angle = max(0, angle - 1)
        elif c == "," and depth == 0 and angle == 0:
            parts.append(text[start:idx])
            start = idx + 1
    parts.append(text[start:])
    arity_max = len(parts)
    defaults = sum(1 for p in parts if re.search(r"=", p))
    if any("..." in p for p in parts):
        arity_max = 64
    callbacks = []
    for p in parts:
        nm = re.search(r"([A-Za-z_]\w*)\s*$", p.strip())
        if not nm:
            continue
        if ("std::function" in p or "FunctionRef" in p or
                re.match(r"^\s*(?:const\s+)?(?:[A-Z]\w*)\s*[&]{0,2}\s*"
                         + re.escape(nm.group(1)) + r"\s*$", p.strip())):
            # std::function/FunctionRef params, or a bare template-typed
            # callable (`const F& f`); refined against the template header
            # by the caller.
            callbacks.append((p.strip(), nm.group(1)))
    return len(parts) - defaults, arity_max, callbacks


def _extract_function_head(head):
    """(qname_suffix, params_text, template_names, run_path, noreturn) for a
    head that precedes a function body '{', else None."""
    h = head.strip()
    if not h or h.endswith("=") or h.startswith("#"):
        return None
    template_names = set(TEMPLATE_PARAM_RE.findall(h))
    # Find the parameter list: the first top-level '(' preceded by a
    # plausible (possibly qualified) function name.
    depth = angle = 0
    idx = 0
    while idx < len(h):
        c = h[idx]
        if c == "(":
            if depth == 0:
                name = _prev_token(h, idx)
                bare = name.rsplit("::", 1)[-1]
                if (name and bare not in CXX_KEYWORDS and
                        not bare.isupper() and
                        not name.endswith("::")):
                    close = _match_paren(h, idx)
                    params = h[idx + 1:close - 1]
                    return (name, params, template_names,
                            "TDC_RUN_PATH" in h, "[[noreturn]]" in h
                            or "__attribute__((noreturn))" in h)
                depth += 1
            else:
                depth += 1
        elif c == ")":
            depth -= 1
        idx += 1
    return None


class FallbackFrontend:
    """Structural C++ scan: no compiler, no dependencies. Overapproximates
    call edges (name + arity matching) which is exactly the conservative
    direction for a reachability proof."""

    name = "fallback"

    def __init__(self, root, paths):
        self.root = Path(root)
        self.paths = paths

    def parse(self):
        files = []
        for f in iter_cxx_files(self.paths):
            try:
                rel = f.resolve().relative_to(self.root).as_posix()
            except ValueError:
                rel = f.as_posix()
            text = f.read_text(encoding="utf-8", errors="replace")
            files.append(self.parse_text(rel, text))
        return files

    def parse_text(self, rel, text):
        fr = FileRecord(rel, text)
        for idx, line in enumerate(text.splitlines(), start=1):
            m = re.match(r'\s*#\s*include\s+"([^"]+)"', line)
            if m:
                fr.includes.append((idx, m.group(1)))
        code = tdc_lint._strip_comments_and_strings(text)
        offsets = [0]
        for idx, c in enumerate(code):
            if c == "\n":
                offsets.append(idx + 1)
        noreturn_names = set(NORETURN_DECL_RE.findall(code))

        scopes = []  # (kind, name)
        head_start = 0
        i = 0
        n = len(code)
        while i < n:
            c = code[i]
            if c == ";" and not _in_function(scopes):
                head_start = i + 1
                i += 1
                continue
            if c == "(" and not _in_function(scopes):
                # Skip paren groups in declarative context so `;`/braces
                # inside default arguments never confuse the segmentation.
                j = _match_paren(code, i)
                i = j
                continue
            if c == "{":
                if _in_function(scopes):
                    scopes.append(("block", ""))
                    i += 1
                    continue
                head = code[head_start:i]
                kind, name, info = self._classify(head)
                if kind == "init":  # braced initializer inside a head
                    i = _match_brace(code, i)
                    continue
                if kind == "function":
                    qname = "::".join([s[1] for s in scopes
                                      if s[0] in ("namespace", "class")
                                      and s[1]] + [info["name"]])
                    rec = FunctionRecord(qname, info["name"].rsplit("::", 1)[-1],
                                         rel, _line_of(offsets, i))
                    # Internal linkage limits call resolution to the same
                    # file — but only for FREE functions: a method of an
                    # anonymous-namespace class can still be reached from
                    # anywhere through a public virtual (the op-plan
                    # run_node overrides), so methods stay global.
                    in_class = any(s[0] == "class" for s in scopes)
                    in_anon_ns = any(s[0] == "namespace" and not s[1]
                                     for s in scopes)
                    rec.internal = not in_class and "::" not in info["name"] \
                        and (in_anon_ns or
                             re.search(r"(?:^|\s)static\s", head)
                             is not None)
                    amin, amax, cb = _param_info(info["params"])
                    rec.arity_min, rec.arity_max = amin, amax
                    rec.is_run_path = info["run_path"]
                    rec.is_noreturn = (info["noreturn"] or
                                       rec.name in noreturn_names)
                    callback_names = {nm for (ptxt, nm) in cb
                                      if "function" in ptxt
                                      or "FunctionRef" in ptxt
                                      or any(t in ptxt.split()
                                             for t in info["templates"])
                                      or re.match(r"^(const\s+)?[A-Z]\w*\s*&&?\s*"
                                                  + re.escape(nm) + r"$",
                                                  ptxt)}
                    body_end = _match_brace(code, i)
                    rec.end_line = _line_of(offsets, body_end - 1)
                    scan_body(rec, code, i + 1, body_end - 1, offsets,
                              callback_names)
                    fr.functions.append(rec)
                    i = body_end
                    head_start = i
                    continue
                scopes.append((kind, name))
                head_start = i + 1
                i += 1
                continue
            if c == "}":
                if scopes:
                    scopes.pop()
                head_start = i + 1
                i += 1
                continue
            i += 1
        return fr

    @staticmethod
    def _classify(head):
        h = head.strip()
        nm = NAMESPACE_HEAD_RE.search(h)
        if nm:
            return "namespace", nm.group(1) or "", None
        cm = CLASS_HEAD_RE.search(h)
        if cm and "(" not in h[cm.start():]:
            return "class", cm.group(2) or "", None
        fn = _extract_function_head(h)
        if fn is not None:
            name, params, templates, run_path, noreturn = fn
            # Distinguish a real body from a braced member initializer in a
            # ctor init list: a body's head ends with ')' or a qualifier.
            tail = h.rstrip()
            last_tok = _prev_token(tail + " ", len(tail) + 1)
            if not (tail.endswith(")") or tail.endswith(">")
                    or last_tok in QUALIFIER_TOKENS or tail.endswith("]]")):
                return "init", "", None
            return "function", name, {
                "name": name, "params": params, "templates": templates,
                "run_path": run_path, "noreturn": noreturn}
        if h.endswith("=") or (h and h[-1] not in ")>"
                               and _prev_token(h + " ", len(h) + 1)
                               not in QUALIFIER_TOKENS):
            return "init", "", None
        return "other", "", None


def _in_function(scopes):
    return any(s[0] in ("function", "block") for s in scopes)


# ---------------------------------------------------------- clang frontend --


class ClangFrontend:
    """libclang-driven symbol discovery over compile_commands.json. Function
    boundaries, qualified names and annotate-attributes come from the AST;
    body events go through the same shared scan_body engine as the fallback
    so findings are frontend-independent."""

    name = "clang"

    def __init__(self, root, paths, compile_db):
        import clang.cindex as ci
        self.ci = ci
        self.root = Path(root)
        self.paths = paths
        self.compile_db = compile_db
        self._configure(ci)

    @staticmethod
    def _configure(ci):
        import os
        override = os.environ.get("TDC_LIBCLANG")
        candidates = [override] if override else []
        try:
            import clang
            pkg = Path(clang.__file__).parent / "native" / "libclang.so"
            candidates.append(str(pkg))
        except Exception:
            pass
        candidates += [
            "/usr/lib/llvm-14/lib/libclang.so.1",
            "/usr/lib/x86_64-linux-gnu/libclang-14.so.1",
        ]
        for cand in candidates:
            if cand and Path(cand).exists():
                try:
                    ci.Config.set_library_file(cand)
                    break
                except Exception:
                    pass
        try:
            ci.Index.create()
        except Exception as exc:  # pragma: no cover
            raise RuntimeError(f"libclang unusable: {exc}")

    def _compile_args(self, path):
        if self.compile_db is None:
            return ["-std=c++20", f"-I{self.root}/src",
                    f"-I{REPO_ROOT}/src"]
        cmds = self.compile_db.getCompileCommands(str(path))
        if not cmds:
            return ["-std=c++20", f"-I{self.root}/src",
                    f"-I{REPO_ROOT}/src"]
        args = list(cmds[0].arguments)[1:]  # drop the compiler itself
        out = []
        skip = False
        for a in args:
            if skip:
                skip = False
                continue
            if a in ("-o", "-c"):
                skip = a == "-o"
                continue
            if a == str(path) or a.endswith(".cpp"):
                continue
            out.append(a)
        return out

    def parse(self):
        ci = self.ci
        index = ci.Index.create()
        files = []
        done_rels = set()  # cross-TU dedup: shared headers harvest once
        sources = [f for f in iter_cxx_files(self.paths)
                   if f.suffix == ".cpp"]
        headers = [f for f in iter_cxx_files(self.paths) if f.suffix == ".h"]
        for src in sources:
            try:
                tu = index.parse(
                    str(src), args=self._compile_args(src),
                    options=ci.TranslationUnit.PARSE_DETAILED_PROCESSING_RECORD)
            except ci.TranslationUnitLoadError as exc:
                raise RuntimeError(f"libclang failed to parse {src}: {exc}")
            files.extend(self._harvest(tu, done_rels))
        # Headers never pulled in by any TU still get scanned (fallback
        # engine only) so self-contained-but-unused headers don't go dark.
        fb = FallbackFrontend(self.root, [])
        for h in headers:
            rel = self._rel(h)
            if rel in done_rels:
                continue
            files.append(fb.parse_text(
                rel, h.read_text(encoding="utf-8", errors="replace")))
        return files

    def _rel(self, path):
        try:
            return Path(path).resolve().relative_to(self.root).as_posix()
        except ValueError:
            return Path(path).as_posix()

    def _harvest(self, tu, done_rels):
        ci = self.ci
        texts = {}      # rel -> (code, offsets)
        records = {}    # rel -> FileRecord

        def file_slot(rel, fname):
            if rel in done_rels:
                return None  # harvested by an earlier TU
            if rel not in records:
                text = Path(fname).read_text(encoding="utf-8",
                                             errors="replace")
                fr = FileRecord(rel, text)
                for idx, line in enumerate(text.splitlines(), start=1):
                    m = re.match(r'\s*#\s*include\s+"([^"]+)"', line)
                    if m:
                        fr.includes.append((idx, m.group(1)))
                code = tdc_lint._strip_comments_and_strings(text)
                offsets = [0]
                for idx2, ch in enumerate(code):
                    if ch == "\n":
                        offsets.append(idx2 + 1)
                texts[rel] = (code, offsets)
                records[rel] = fr
            return records[rel]

        fn_kinds = {ci.CursorKind.FUNCTION_DECL, ci.CursorKind.CXX_METHOD,
                    ci.CursorKind.CONSTRUCTOR, ci.CursorKind.DESTRUCTOR,
                    ci.CursorKind.FUNCTION_TEMPLATE}

        def qname(cur):
            parts = []
            p = cur.semantic_parent
            while p is not None and p.kind != ci.CursorKind.TRANSLATION_UNIT:
                if p.spelling:
                    parts.append(p.spelling)
                p = p.semantic_parent
            return "::".join(reversed(parts)) + ("::" if parts else "") \
                + cur.spelling

        def visit(cur):
            if cur.kind in fn_kinds and cur.is_definition():
                loc = cur.location
                if loc.file is None:
                    return
                fpath = Path(loc.file.name).resolve()
                try:
                    fpath.relative_to(self.root)
                except ValueError:
                    return
                rel = self._rel(fpath)
                fr = file_slot(rel, loc.file.name)
                if fr is None:
                    return  # file already harvested by an earlier TU
                rec = FunctionRecord(qname(cur), cur.spelling, rel, loc.line)
                rec.end_line = cur.extent.end.line
                try:
                    # Free functions only: anonymous-namespace class methods
                    # are reachable through public virtual dispatch.
                    rec.internal = (
                        cur.kind == ci.CursorKind.FUNCTION_DECL and
                        cur.linkage == ci.LinkageKind.INTERNAL)
                except Exception:
                    pass
                args = list(cur.get_arguments())
                defaults = 0
                callback_names = set()
                for a in args:
                    ts = a.type.spelling if a.type else ""
                    if "function" in ts or "FunctionRef" in ts:
                        callback_names.add(a.spelling)
                    for tok in list(a.get_tokens()):
                        if tok.spelling == "=":
                            defaults += 1
                            break
                if args or cur.kind != ci.CursorKind.FUNCTION_TEMPLATE:
                    rec.arity_max = len(args)
                    rec.arity_min = max(0, len(args) - defaults)
                else:
                    # Template with no argument info exposed: match any call.
                    rec.arity_min, rec.arity_max = 0, 64
                for child in cur.get_children():
                    if child.kind == ci.CursorKind.ANNOTATE_ATTR:
                        if child.spelling == "tdc-run-path":
                            rec.is_run_path = True
                        elif child.spelling.startswith("tdc-analyze-allow:"):
                            rec.allows.add(child.spelling.split(":", 1)[1])
                try:
                    toks = {t.spelling for t in cur.get_tokens()}
                    if "noreturn" in toks:
                        rec.is_noreturn = True
                except Exception:
                    pass
                code, offsets = texts[rel]
                start = offsets[min(rec.line, len(offsets)) - 1]
                # Body brace: first '{' at paren depth 0 (skips braced
                # default arguments and ctor-init-list braced members).
                open_pos = -1
                pdepth = 0
                for k in range(start, len(code)):
                    ch = code[k]
                    if ch == "(":
                        pdepth += 1
                    elif ch == ")":
                        pdepth = max(0, pdepth - 1)
                    elif ch == "{" and pdepth == 0:
                        open_pos = k
                        break
                    elif ch == ";" and pdepth == 0:
                        break
                if open_pos != -1:
                    body_end = _match_brace(code, open_pos)
                    # Template callables aren't in callback_names yet; the
                    # shared engine re-derives them from the head text.
                    head = code[max(0, start - 1):open_pos]
                    templates = set(TEMPLATE_PARAM_RE.findall(head))
                    _, _, cbs = _param_info(
                        code[code.find("(", start) + 1:
                             _match_paren(code, code.find("(", start)) - 1]
                        if code.find("(", start) != -1 else "")
                    for ptxt, nm in cbs:
                        if ("function" in ptxt or "FunctionRef" in ptxt or
                                any(t in ptxt.split() for t in templates)):
                            callback_names.add(nm)
                    if "TDC_RUN_PATH" in head:
                        rec.is_run_path = True
                    scan_body(rec, code, open_pos + 1, body_end - 1, offsets,
                              callback_names)
                fr.functions.append(rec)
                return  # children of a definition are covered by scan_body
            for child in cur.get_children():
                visit(child)

        for child in tu.cursor.get_children():
            visit(child)
        done_rels.update(records)
        return list(records.values())


# ------------------------------------------------------------------ policy --


def iter_cxx_files(paths):
    for p in paths:
        p = Path(p)
        if p.is_dir():
            yield from sorted(f for f in p.rglob("*")
                              if f.suffix in CXX_SUFFIXES)
        elif p.suffix in CXX_SUFFIXES:
            yield p


class Analysis:
    def __init__(self, files):
        self.files = files
        self.functions = [fn for fr in files for fn in fr.functions]
        self.by_name = {}
        for fn in self.functions:
            self.by_name.setdefault(fn.name, []).append(fn)
        self.reachable = {}   # FunctionRecord -> (parent, via_line)
        self.findings = []    # (relpath, line, rule, message)

    # -- call graph ---------------------------------------------------------

    def _callees(self, fn):
        out = []
        for call in fn.calls:
            cands = self.by_name.get(call.name, [])
            for cand in cands:
                if cand is fn:
                    continue
                if cand.internal and cand.relpath != fn.relpath:
                    continue  # static / anonymous-namespace: file-local
                if not (cand.arity_min <= call.arity <= cand.arity_max):
                    continue
                if "::" in call.qualified:
                    # qualified call: require the qualification to match a
                    # suffix of the definition's qname
                    want = call.qualified.replace(" ", "")
                    if not (cand.qname.endswith(want) or
                            want.endswith(cand.name)):
                        continue
                out.append((cand, call.line))
        return out

    def compute_reachability(self):
        roots = [fn for fn in self.functions if fn.is_run_path]
        work = list(roots)
        for r in roots:
            self.reachable[r] = (None, r.line)
        while work:
            fn = work.pop()
            if fn.is_noreturn:
                continue  # error sinks are cold; don't traverse further
            for callee, line in self._callees(fn):
                if callee.is_noreturn:
                    continue
                if callee not in self.reachable:
                    self.reachable[callee] = (fn, line)
                    work.append(callee)
        return roots

    def chain(self, fn):
        names = []
        cur = fn
        while cur is not None and len(names) < 8:
            names.append(cur.qname)
            cur = self.reachable.get(cur, (None, 0))[0]
        return " <- ".join(names)

    # -- rules ---------------------------------------------------------------

    def check_purity(self):
        purity_rules = {"run-path-alloc", "run-path-function",
                        "run-path-lock", "run-path-io", "run-path-nondet"}
        for fn in self.reachable:
            if fn.is_noreturn:
                continue
            for ev in fn.events:
                if ev.kind not in purity_rules:
                    continue
                if ev.kind in fn.allows:
                    continue
                self.findings.append((
                    fn.relpath, ev.line, ev.kind,
                    f"{ev.detail} in run-path function {fn.qname} "
                    f"[reachable: {self.chain(fn)}]"))

    def check_lock_discipline(self):
        for fn in self.functions:
            for ev in fn.events:
                if ev.kind in ("non-raii-lock", "lock-across-pool",
                               "lock-across-callback") and \
                        ev.kind not in fn.allows:
                    self.findings.append((fn.relpath, ev.line, ev.kind,
                                          f"{ev.detail} (in {fn.qname})"))

    def check_layering(self):
        for fr in self.files:
            parts = fr.relpath.split("/")
            if len(parts) < 3 or parts[0] != "src":
                continue
            tier = TIERS.get(parts[1])
            if tier is None:
                continue
            for line, inc in fr.includes:
                inc_dir = inc.split("/")[0]
                inc_tier = TIERS.get(inc_dir)
                if inc_tier is None:
                    continue
                if inc_tier > tier:
                    self.findings.append((
                        fr.relpath, line, "layering",
                        f"tier-{tier} '{parts[1]}' includes tier-{inc_tier} "
                        f"'{inc}' — upward edge in the layering DAG"))

    def check_singletons(self):
        for fr in self.files:
            if not fr.relpath.startswith("src"):
                continue
            ctx = tdc_lint.FileContext(fr.relpath, fr.text)
            for line_no, _msg in tdc_lint._check_file_scope_globals(ctx):
                name_m = re.search(r"(g_[a-z0-9_]+|t_[a-z0-9_]+)",
                                   ctx.code_lines[line_no - 1])
                name = name_m.group(1) if name_m else "?"
                self.findings.append((
                    fr.relpath, line_no, "unregistered-singleton",
                    f"mutable file-scope '{name}' is not in the registered-"
                    "singleton table (tools/lint/tdc_lint.py)"))

    def run_all(self):
        self.compute_reachability()
        self.check_purity()
        self.check_lock_discipline()
        self.check_layering()
        self.check_singletons()
        self.findings.sort(key=lambda f: (f[0], f[1], f[2]))
        return self.findings

    # -- artifacts -----------------------------------------------------------

    def reachable_manifest(self):
        funcs = sorted(
            ({"qname": fn.qname, "file": fn.relpath, "line": fn.line,
              "end_line": fn.end_line} for fn in self.reachable),
            key=lambda d: (d["file"], d["line"], d["qname"]))
        rfiles = sorted({fn.relpath for fn in self.reachable})
        roots = sorted(fn.qname for fn in self.functions if fn.is_run_path)
        return {
            "comment": "Run-path reachability computed by tools/analyze/"
                       "tdc_analyze.py. tdc_lint.py consumes the function "
                       "spans for its textual run-path rule; --check-run-path "
                       "compares the file set. Regenerate with "
                       "--write-run-path.",
            "roots": roots,
            "files": rfiles,
            "functions": funcs,
        }


# --------------------------------------------------------------- frontends --


def load_compile_db(arg):
    """A clang CompilationDatabase for a build dir / db file, or None."""
    if arg is None:
        return None
    p = Path(arg)
    if p.is_file():
        p = p.parent
    try:
        import clang.cindex as ci
        return ci.CompilationDatabase.fromDirectory(str(p))
    except Exception:
        return None


def make_frontend(kind, root, paths, compile_db_arg):
    if kind in ("auto", "clang"):
        try:
            return ClangFrontend(root, paths, load_compile_db(compile_db_arg))
        except Exception as exc:
            if kind == "clang":
                print(f"tdc_analyze: clang frontend unavailable: {exc}",
                      file=sys.stderr)
                sys.exit(2)
    return FallbackFrontend(root, paths)


def analyze(root, paths, frontend_kind, compile_db_arg):
    fe = make_frontend(frontend_kind, root, paths, compile_db_arg)
    files = fe.parse()
    an = Analysis(files)
    an.run_all()
    return fe, an


# ---------------------------------------------------------------- self-test --

EXPECT_RE = re.compile(
    r"//\s*expect-analyze:\s*([a-z0-9\-]+(?:\s*,\s*[a-z0-9\-]+)*)")


def self_test(frontend_kind, compile_db_arg) -> int:
    corpus = Path(__file__).resolve().parent / "corpus"
    cases = sorted(d for d in corpus.iterdir() if d.is_dir())
    if not cases:
        print("self-test: no corpus cases found", file=sys.stderr)
        return 2
    failures = 0
    for case in cases:
        expected = set()
        for f in iter_cxx_files([case]):
            rel = f.relative_to(case).as_posix()
            for idx, line in enumerate(f.read_text().splitlines(), start=1):
                m = EXPECT_RE.search(line)
                if m:
                    for rid in m.group(1).split(","):
                        expected.add((rel, idx, rid.strip()))
        fe, an = analyze(case, [case], frontend_kind, compile_db_arg)
        actual = {(rel, line, rule) for rel, line, rule, _ in an.findings}
        if actual == expected:
            print(f"PASS {case.name} [{fe.name}]")
        else:
            failures += 1
            print(f"FAIL {case.name} [{fe.name}]")
            for miss in sorted(expected - actual):
                print(f"  expected but not reported: {miss[2]} @ "
                      f"{miss[0]}:{miss[1]}")
            for extra in sorted(actual - expected):
                print(f"  reported but not expected: {extra[2]} @ "
                      f"{extra[0]}:{extra[1]}")
    print(f"self-test: {len(cases) - failures}/{len(cases)} cases passed")
    return 1 if failures else 0


# --------------------------------------------------------------------- CLI --


def explain(rule_id=None) -> int:
    if rule_id is None:
        width = max(len(r) for r in RULE_IDS)
        for r in RULE_IDS:
            first = RULE_EXPLAIN[r].splitlines()[0]
            print(f"{r:<{width}}  {first}")
        return 0
    if rule_id not in RULE_EXPLAIN:
        print(f"unknown rule '{rule_id}'; known rules:", file=sys.stderr)
        for r in RULE_IDS:
            print(f"  {r}", file=sys.stderr)
        return 2
    print(f"{rule_id}:\n{RULE_EXPLAIN[rule_id]}")
    print("\nEscape hatch: TDC_ANALYZE_ALLOW(" + rule_id + ") as a "
          "declaration inside the function, with a justifying comment "
          "(src/common/annotations.h; sanctioned uses listed in "
          "tools/analyze/rules.md).")
    return 0


def main(argv) -> int:
    if "--help" in argv or "-h" in argv:
        print(__doc__)
        return 0
    if "--explain" in argv:
        i = argv.index("--explain")
        return explain(argv[i + 1] if i + 1 < len(argv) else None)

    def opt(name, default=None):
        if name in argv:
            i = argv.index(name)
            if i + 1 < len(argv):
                return argv[i + 1]
        return default

    frontend_kind = opt("--frontend", "auto")
    compile_db_arg = opt("--compile-db")
    if "--self-test" in argv:
        return self_test(frontend_kind, compile_db_arg)

    skip_next = False
    paths = []
    for idx, a in enumerate(argv):
        if skip_next:
            skip_next = False
            continue
        if a in ("--frontend", "--compile-db", "--emit-reachable"):
            skip_next = True
            continue
        if a.startswith("-"):
            continue
        paths.append(Path(a))
    if not paths:
        paths = [REPO_ROOT / "src"]

    fe, an = analyze(REPO_ROOT, paths, frontend_kind, compile_db_arg)
    roots = sorted(fn.qname for fn in an.functions if fn.is_run_path)

    if "--list-roots" in argv:
        for r in roots:
            print(r)
        return 0

    manifest = an.reachable_manifest()
    emit = opt("--emit-reachable")
    if emit:
        Path(emit).write_text(json.dumps(manifest, indent=2) + "\n")
    if "--write-run-path" in argv:
        RUN_PATH_JSON.write_text(json.dumps(manifest, indent=2) + "\n")
        print(f"tdc_analyze: wrote {RUN_PATH_JSON.relative_to(REPO_ROOT)} "
              f"({len(manifest['files'])} files, "
              f"{len(manifest['functions'])} functions)")
    if "--check-run-path" in argv:
        if not RUN_PATH_JSON.exists():
            print("tdc_analyze: run_path.json missing; run --write-run-path",
                  file=sys.stderr)
            return 1
        committed = json.loads(RUN_PATH_JSON.read_text())
        # Frontends may delimit functions slightly differently; the contract
        # the linter consumes is the FILE set, which must match exactly.
        if sorted(committed.get("files", [])) != manifest["files"]:
            print("tdc_analyze: run_path.json is stale (file set changed); "
                  "run tools/analyze/tdc_analyze.py --write-run-path and "
                  "commit the result", file=sys.stderr)
            for f in sorted(set(manifest["files"]) -
                            set(committed.get("files", []))):
                print(f"  new run-path file: {f}", file=sys.stderr)
            for f in sorted(set(committed.get("files", [])) -
                            set(manifest["files"])):
                print(f"  no longer reachable: {f}", file=sys.stderr)
            return 1

    if not roots:
        print("tdc_analyze: no TDC_RUN_PATH roots found — annotations "
              "missing?", file=sys.stderr)
        return 2

    for rel, line, rule, message in an.findings:
        print(f"{rel}:{line}: [{rule}] {message}")
    if an.findings:
        print(f"\ntdc_analyze [{fe.name} frontend]: {len(an.findings)} "
              f"finding(s) over {len(an.functions)} functions "
              f"({len(an.reachable)} reachable from {len(roots)} roots). "
              "--explain RULE for rationale; escapes are "
              "TDC_ANALYZE_ALLOW(RULE) declarations with a justification.")
        return 1
    print(f"tdc_analyze [{fe.name} frontend]: clean — "
          f"{len(an.functions)} functions, {len(an.reachable)} reachable "
          f"from {len(roots)} run-path roots, "
          f"{sum(len(fr.includes) for fr in an.files)} includes checked")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main(sys.argv[1:]))
    except BrokenPipeError:
        sys.exit(0)
