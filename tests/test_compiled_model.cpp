// Tests for CompiledModel (exec/compiled_model.h): the compiled plan chain
// against a manually staged oracle, chain validation, workspace exactness,
// and batched serving parity.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "common/check.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "conv/tucker_conv.h"
#include "exec/compiled_model.h"
#include "tucker/tucker.h"

namespace tdc {
namespace {

// A chainable three-layer net with a decomposed middle layer: the decision
// list is hand-built (the structs are plain data), exactly what a codesign
// pass emits.
struct SmallNet {
  std::vector<LayerDecision> decisions;
  std::vector<Tensor> kernels;
};

SmallNet make_small_net(Rng& rng) {
  SmallNet net;
  const ConvShape l0 = ConvShape::same(4, 8, 12, 3);       // kept dense
  const ConvShape l1 = ConvShape::same(8, 8, 12, 3, 2);    // decomposed
  const ConvShape l2 = ConvShape::same(8, 6, 6, 3);        // kept dense

  LayerDecision d0;
  d0.shape = l0;
  LayerDecision d1;
  d1.shape = l1;
  d1.decomposed = true;
  d1.ranks = {4, 4};
  LayerDecision d2;
  d2.shape = l2;
  net.decisions = {d0, d1, d2};
  for (const ConvShape& s : {l0, l1, l2}) {
    net.kernels.push_back(Tensor::random_uniform({s.c, s.n, s.r, s.s}, rng));
  }
  return net;
}

TEST(CompiledModel, MatchesManuallyStagedChainBitwise) {
  Rng rng(601);
  SmallNet net = make_small_net(rng);

  CompiledModelOptions options;
  options.dense_algo = ConvAlgo::kIm2col;  // pin so the oracle can match it
  const CompiledModel model = CompiledModel::compile(
      make_a100(), net.decisions, net.kernels, options);
  ASSERT_EQ(model.num_layers(), 3);
  EXPECT_FALSE(model.decomposed(0));
  EXPECT_TRUE(model.decomposed(1));

  const ConvShape& in = model.input_shape();
  const Tensor x = Tensor::random_uniform({in.c, in.h, in.w}, rng);

  // Oracle: the same chain through the free functions. The fused Tucker
  // plan is bit-identical to the staged im2col pipeline, and the dense
  // layers are im2col, so the whole chain must match bitwise.
  const Tensor a0 = conv2d_im2col(x, net.kernels[0], net.decisions[0].shape);
  const TuckerFactors f =
      tucker_decompose(net.kernels[1], net.decisions[1].ranks);
  const Tensor a1 = tucker_conv(a0, f, net.decisions[1].shape,
                                ConvAlgo::kIm2col);
  const Tensor expected =
      conv2d_im2col(a1, net.kernels[2], net.decisions[2].shape);

  const Tensor y = model.run(x);
  ASSERT_EQ(y.dims(), expected.dims());
  EXPECT_EQ(Tensor::max_abs_diff(y, expected), 0.0);
}

TEST(CompiledModel, WorkspaceIsExactUnderPoisonAndGuards) {
  Rng rng(602);
  SmallNet net = make_small_net(rng);
  const CompiledModel model =
      CompiledModel::compile(make_a100(), net.decisions, net.kernels);

  const ConvShape& in = model.input_shape();
  const ConvShape& out = model.output_shape();
  const Tensor x = Tensor::random_uniform({in.c, in.h, in.w}, rng);

  const std::int64_t floats =
      model.workspace_bytes() / static_cast<std::int64_t>(sizeof(float));
  constexpr std::int64_t kGuardFloats = 64;
  constexpr float kGuard = 9876.5f;
  std::vector<float> buf(static_cast<std::size_t>(floats + 2 * kGuardFloats),
                         kGuard);
  std::fill(buf.begin() + kGuardFloats, buf.begin() + kGuardFloats + floats,
            std::numeric_limits<float>::quiet_NaN());

  Tensor y({out.n, out.out_h(), out.out_w()});
  model.run(x, &y,
            std::span<float>(buf).subspan(kGuardFloats,
                                          static_cast<std::size_t>(floats)));
  for (std::int64_t i = 0; i < kGuardFloats; ++i) {
    ASSERT_EQ(buf[static_cast<std::size_t>(i)], kGuard);
    ASSERT_EQ(buf[buf.size() - 1 - static_cast<std::size_t>(i)], kGuard);
  }
  for (std::int64_t i = 0; i < y.numel(); ++i) {
    ASSERT_TRUE(std::isfinite(y[i]));
  }

  std::vector<float> small(static_cast<std::size_t>(floats - 1));
  EXPECT_THROW(model.run(x, &y, small), Error);
}

TEST(CompiledModel, BatchedRunMatchesPerImageAcrossThreadCounts) {
  const int saved = num_threads();
  Rng rng(603);
  SmallNet net = make_small_net(rng);
  const CompiledModel model =
      CompiledModel::compile(make_a100(), net.decisions, net.kernels);

  const ConvShape& in = model.input_shape();
  const ConvShape& out = model.output_shape();
  const std::int64_t batch = 6;
  const Tensor x = Tensor::random_uniform({batch, in.c, in.h, in.w}, rng);

  Tensor y({batch, out.n, out.out_h(), out.out_w()});
  std::vector<float> ws(static_cast<std::size_t>(
      model.batched_workspace_bytes(batch) / sizeof(float)));
  model.run_batched(x, &y, ws);

  const std::int64_t x_stride = in.c * in.h * in.w;
  const std::int64_t y_stride = out.n * out.out_h() * out.out_w();
  for (std::int64_t b = 0; b < batch; ++b) {
    Tensor xb({in.c, in.h, in.w});
    std::copy(x.raw() + b * x_stride, x.raw() + (b + 1) * x_stride, xb.raw());
    const Tensor yb = model.run(xb);
    for (std::int64_t i = 0; i < y_stride; ++i) {
      ASSERT_EQ(y[b * y_stride + i], yb[i]) << "image " << b;
    }
  }

  for (const int nt : {1, 4}) {
    set_num_threads(nt);
    Tensor again({batch, out.n, out.out_h(), out.out_w()});
    model.run_batched(x, &again, ws);
    EXPECT_EQ(Tensor::max_abs_diff(y, again), 0.0) << "threads=" << nt;
  }
  set_num_threads(saved);
}

TEST(CompiledModel, NonChainingLayersThrow) {
  Rng rng(604);
  LayerDecision d0;
  d0.shape = ConvShape::same(4, 8, 12, 3);
  LayerDecision d1;
  d1.shape = ConvShape::same(16, 8, 12, 3);  // C != previous N
  std::vector<Tensor> kernels;
  for (const ConvShape& s : {d0.shape, d1.shape}) {
    kernels.push_back(Tensor::random_uniform({s.c, s.n, s.r, s.s}, rng));
  }
  EXPECT_THROW(
      CompiledModel::compile(make_a100(), {d0, d1}, kernels), Error);
}

TEST(CompiledModel, KernelCountMismatchThrows) {
  LayerDecision d0;
  d0.shape = ConvShape::same(4, 8, 12, 3);
  EXPECT_THROW(CompiledModel::compile(make_a100(), {d0}, {}), Error);
}

}  // namespace
}  // namespace tdc
