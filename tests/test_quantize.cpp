// Tests for the int8 serving path (linalg/gemm_s8.h, exec/quantize.h):
// quantizer round-trip and saturation; round-to-nearest-even requantization
// against a double-precision oracle; the int8 prepacked GEMM against an
// exact naive integer reference (the AVX2 and scalar kernels must both match
// it bit for bit); per-channel BN folding; quantized conv and Tucker plans
// against their fp32 twins within the documented quantization-error bound on
// NaN-poisoned guard-banded workspaces; calibration determinism; and the
// acceptance walk — a calibrated mixed-precision full-width ResNet-18 served
// through the replica fleet bitwise-identically to a plain session.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <vector>

#include "common/alloc_guard.h"
#include "common/check.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "conv/conv.h"
#include "core/codesign.h"
#include "exec/graph_plan.h"
#include "exec/op_plans.h"
#include "exec/plan_cache.h"
#include "exec/quantize.h"
#include "exec/workspace_guard.h"
#include "linalg/gemm.h"
#include "linalg/gemm_s8.h"
#include "nn/models.h"
#include "serving/inference_server.h"
#include "tucker/flops.h"
#include "tucker/tucker.h"

namespace tdc {
namespace {

constexpr float kGuard = 12345.678f;
constexpr std::int64_t kGuardFloats = 64;

// Workspace of exactly plan->workspace_bytes(), bracketed by guard bands and
// poisoned with NaN (see test_conv_plan.cpp): stale-scratch reads propagate
// NaN, out-of-bounds writes trip a guard.
struct PoisonedWorkspace {
  explicit PoisonedWorkspace(std::int64_t bytes)
      : floats(bytes / static_cast<std::int64_t>(sizeof(float))),
        buf(static_cast<std::size_t>(floats + 2 * kGuardFloats), kGuard) {
    poison();
  }

  void poison() {
    std::fill(buf.begin() + kGuardFloats, buf.begin() + kGuardFloats + floats,
              std::numeric_limits<float>::quiet_NaN());
  }

  std::span<float> span() {
    return std::span<float>(buf).subspan(kGuardFloats,
                                         static_cast<std::size_t>(floats));
  }

  bool guards_intact() const {
    for (std::int64_t i = 0; i < kGuardFloats; ++i) {
      if (buf[static_cast<std::size_t>(i)] != kGuard ||
          buf[buf.size() - 1 - static_cast<std::size_t>(i)] != kGuard) {
        return false;
      }
    }
    return true;
  }

  std::int64_t floats;
  std::vector<float> buf;
};

bool all_finite(const Tensor& t) {
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    if (!std::isfinite(t[i])) {
      return false;
    }
  }
  return true;
}

QuantParams observe_params(const float* x, std::int64_t count) {
  MinMaxObserver obs;
  obs.observe(x, count);
  return obs.params();
}

TEST(Quantize, ChooseParamsCoversRangeAndMapsZeroExactly) {
  const QuantParams qp = choose_quant_params(-2.0f, 6.0f);
  EXPECT_NEAR(qp.scale, 8.0f / 127.0f, 1e-6f);
  EXPECT_GE(qp.zero_point, 0);
  EXPECT_LE(qp.zero_point, 127);
  // fp32 zero must quantize to the zero point and dequantize back exactly.
  const float zero = 0.0f;
  std::uint8_t q = 0;
  quantize_u8(&zero, 1, qp, &q);
  EXPECT_EQ(static_cast<std::int32_t>(q), qp.zero_point);
  float back = -1.0f;
  dequantize_u8(&q, 1, qp, &back);
  EXPECT_EQ(back, 0.0f);

  // Degenerate ranges (all-zero tensors, never-observed layers) fall back to
  // unit scale instead of dividing by zero.
  const QuantParams flat = choose_quant_params(0.0f, 0.0f);
  EXPECT_EQ(flat.scale, 1.0f);
  EXPECT_EQ(flat.zero_point, 0);
}

TEST(Quantize, RoundTripWithinHalfScaleAndSaturates) {
  Rng rng(7001);
  const Tensor x = Tensor::random_uniform({512}, rng, -1.5f, 3.0f);
  const QuantParams qp = observe_params(x.raw(), x.numel());
  std::vector<std::uint8_t> q(static_cast<std::size_t>(x.numel()));
  std::vector<float> back(static_cast<std::size_t>(x.numel()));
  quantize_u8(x.raw(), x.numel(), qp, q.data());
  dequantize_u8(q.data(), x.numel(), qp, back.data());
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    EXPECT_LE(std::fabs(back[static_cast<std::size_t>(i)] - x[i]),
              qp.scale * 0.5f * 1.05f + 1e-5f)
        << "i=" << i;
  }
  // Out-of-range values clamp to the 7-bit domain instead of wrapping.
  const float wild[2] = {1e6f, -1e6f};
  std::uint8_t qw[2] = {0, 0};
  quantize_u8(wild, 2, qp, qw);
  EXPECT_EQ(static_cast<std::int32_t>(qw[0]), 127);
  EXPECT_EQ(static_cast<std::int32_t>(qw[1]), 0);
}

TEST(Quantize, RequantizeIsRoundToNearestEven) {
  // multiplier 0.5 is exact in float, so acc·m lands exactly on .5
  // boundaries: ties must go to even on both the AVX2 and scalar epilogues.
  const std::int32_t acc[8] = {1, 3, 5, 7, -1, -3, 300, -300};
  const float mult = 0.5f;
  std::int8_t s8[8] = {};
  requantize_s8(acc, 1, 8, 8, &mult, 0, s8, 8);
  EXPECT_EQ(s8[0], 0);   // 0.5 → 0
  EXPECT_EQ(s8[1], 2);   // 1.5 → 2
  EXPECT_EQ(s8[2], 2);   // 2.5 → 2
  EXPECT_EQ(s8[3], 4);   // 3.5 → 4
  EXPECT_EQ(s8[4], 0);   // -0.5 → 0
  EXPECT_EQ(s8[5], -2);  // -1.5 → -2
  EXPECT_EQ(s8[6], 127);   // saturate high
  EXPECT_EQ(s8[7], -128);  // saturate low

  std::uint8_t u8[8] = {};
  requantize_u8(acc, 1, 8, 8, &mult, 0, u8, 8);
  EXPECT_EQ(static_cast<std::int32_t>(u8[6]), 127);  // clamps to 7-bit
  EXPECT_EQ(static_cast<std::int32_t>(u8[7]), 0);    // negatives floor at 0

  // Against a double oracle on random accumulators and multipliers.
  Rng rng(7002);
  std::vector<std::int32_t> a(256);
  for (auto& v : a) {
    v = static_cast<std::int32_t>(
        std::lround((rng.uniform() - 0.5) * 200000.0));
  }
  const float m = 0.000775f;
  std::vector<std::int8_t> got(a.size());
  requantize_s8(a.data(), 1, static_cast<std::int64_t>(a.size()),
                static_cast<std::int64_t>(a.size()), &m, 3, got.data(),
                static_cast<std::int64_t>(a.size()));
  for (std::size_t i = 0; i < a.size(); ++i) {
    // The kernel rounds the *float* product; reproduce it exactly.
    const float prod = static_cast<float>(a[i]) * m;
    const double want =
        std::clamp(std::nearbyint(static_cast<double>(prod)) + 3.0, -128.0,
                   127.0);
    EXPECT_EQ(static_cast<double>(got[i]), want) << "i=" << i;
  }
}

TEST(Quantize, Int8GemmMatchesNaiveIntegerReferenceExactly) {
  const int saved = num_threads();
  Rng rng(7003);
  struct Case {
    std::int64_t m, k, n;
    std::int32_t zp;
  };
  // Ragged edges in every dimension, a k beyond one cache band, and both
  // zero and nonzero activation zero points.
  const Case cases[] = {
      {6, 4, 16, 0}, {7, 9, 17, 11}, {13, 300, 33, 127}, {1, 1, 1, 64}};
  for (const Case& c : cases) {
    std::vector<std::int8_t> a(static_cast<std::size_t>(c.m * c.k));
    std::vector<std::uint8_t> b(static_cast<std::size_t>(c.k * c.n));
    for (auto& v : a) {
      v = static_cast<std::int8_t>(
          std::lround((rng.uniform() - 0.5) * 254.0));
    }
    for (auto& v : b) {
      v = static_cast<std::uint8_t>(std::lround(rng.uniform() * 127.0));
    }
    const PackedGemmAS8 packed = pack_gemm_a_s8(c.m, c.k, a.data(), c.k, 1);
    EXPECT_EQ(packed.rows(), c.m);
    EXPECT_EQ(packed.depth(), c.k);

    std::vector<std::int32_t> want(static_cast<std::size_t>(c.m * c.n));
    for (std::int64_t i = 0; i < c.m; ++i) {
      for (std::int64_t j = 0; j < c.n; ++j) {
        std::int64_t sum = 0;
        for (std::int64_t kk = 0; kk < c.k; ++kk) {
          sum += static_cast<std::int64_t>(a[static_cast<std::size_t>(
                     i * c.k + kk)]) *
                 (static_cast<std::int64_t>(
                      b[static_cast<std::size_t>(kk * c.n + j)]) -
                  c.zp);
        }
        want[static_cast<std::size_t>(i * c.n + j)] =
            static_cast<std::int32_t>(sum);
      }
    }

    for (const int nt : {1, 3}) {
      set_num_threads(nt);
      std::vector<std::int32_t> got(static_cast<std::size_t>(c.m * c.n),
                                    -777);
      gemm_prepacked_s8u8(packed, c.n, b.data(), c.n, c.zp, got.data(), c.n);
      EXPECT_EQ(got, want) << "m=" << c.m << " k=" << c.k << " n=" << c.n
                           << " zp=" << c.zp << " threads=" << nt;
    }
  }
  set_num_threads(saved);
}

TEST(Quantize, QuantizeRowsUsesPerChannelSymmetricScales) {
  // Row 0 spans ±4, row 1 is tiny, row 2 is all zeros.
  const float a[3][4] = {{4.0f, -2.0f, 1.0f, -4.0f},
                         {0.01f, -0.005f, 0.002f, 0.01f},
                         {0.0f, 0.0f, 0.0f, 0.0f}};
  const QuantizedRows q = quantize_rows_s8(3, 4, &a[0][0], 4, 1);
  EXPECT_NEAR(q.scales[0], 4.0f / 127.0f, 1e-7f);
  EXPECT_NEAR(q.scales[1], 0.01f / 127.0f, 1e-9f);
  EXPECT_EQ(q.scales[2], 1.0f);  // all-zero row: unit scale, zero values
  EXPECT_EQ(q.values[0], 127);   // the row max hits full scale
  EXPECT_EQ(q.values[3], -127);
  for (int kk = 0; kk < 4; ++kk) {
    EXPECT_EQ(q.values[static_cast<std::size_t>(8 + kk)], 0);
  }
  // Per-row reconstruction stays within half a step.
  for (int i = 0; i < 2; ++i) {
    for (int kk = 0; kk < 4; ++kk) {
      const float back =
          static_cast<float>(q.values[static_cast<std::size_t>(i * 4 + kk)]) *
          q.scales[static_cast<std::size_t>(i)];
      EXPECT_LE(std::fabs(back - a[i][kk]),
                q.scales[static_cast<std::size_t>(i)] * 0.5f + 1e-9f);
    }
  }
}

TEST(Quantize, FoldBatchnormIntoKernelMatchesChannelwiseScale) {
  Rng rng(7004);
  const ConvShape shape = ConvShape::same(3, 5, 8, 3);
  const Tensor kernel =
      Tensor::random_uniform({shape.c, shape.n, shape.r, shape.s}, rng);
  const Tensor gamma = Tensor::random_uniform({shape.n}, rng, 0.5f, 1.5f);
  const Tensor beta = Tensor::random_uniform({shape.n}, rng, -0.2f, 0.2f);
  const Tensor mean = Tensor::random_uniform({shape.n}, rng, -0.3f, 0.3f);
  const Tensor var = Tensor::random_uniform({shape.n}, rng, 0.5f, 2.0f);
  const FoldedBatchNorm bn = fold_batchnorm(gamma, beta, mean, var);
  const Tensor folded = fold_batchnorm_into_kernel(kernel, bn);

  for (std::int64_t c = 0; c < shape.c; ++c) {
    for (std::int64_t n = 0; n < shape.n; ++n) {
      for (std::int64_t r = 0; r < shape.r; ++r) {
        for (std::int64_t s = 0; s < shape.s; ++s) {
          EXPECT_EQ(folded(c, n, r, s), kernel(c, n, r, s) * bn.scale[n]);
        }
      }
    }
  }
  // Semantics: conv with the folded kernel equals BN-scale applied to the
  // conv output (the shift stays in the elementwise op).
  const Tensor x = Tensor::random_uniform({shape.c, shape.h, shape.w}, rng);
  const Tensor y = conv2d_reference(x, kernel, shape);
  const Tensor yf = conv2d_reference(x, folded, shape);
  const std::int64_t ohw = shape.out_h() * shape.out_w();
  for (std::int64_t n = 0; n < shape.n; ++n) {
    for (std::int64_t i = 0; i < ohw; ++i) {
      EXPECT_NEAR(yf[n * ohw + i], y[n * ohw + i] * bn.scale[n], 2e-4f);
    }
  }
}

TEST(Quantize, PercentileObserverShrugsOffOutliersDeterministically) {
  Rng rng(7005);
  std::vector<float> vals(20000);
  for (auto& v : vals) {
    v = rng.uniform();  // [0, 1)
  }
  vals[777] = 1000.0f;  // a single wild outlier

  MinMaxObserver mm;
  mm.observe(vals.data(), static_cast<std::int64_t>(vals.size()));
  PercentileObserver pct(0.999);
  pct.observe(vals.data(), static_cast<std::int64_t>(vals.size()));
  // kMinMax stretches the scale across the outlier; the percentile range
  // stays near the bulk of the distribution.
  EXPECT_GT(mm.params().scale, 1.0f);
  EXPECT_LT(pct.params().scale, 0.05f);

  // Identical observations → identical parameters (no RNG in the subsample).
  PercentileObserver again(0.999);
  again.observe(vals.data(), static_cast<std::int64_t>(vals.size()));
  EXPECT_EQ(pct.params().scale, again.params().scale);
  EXPECT_EQ(pct.params().zero_point, again.params().zero_point);
}

// The documented single-GEMM error bound, per output channel i:
//   |ŷ − y| ≤ (s_x/2)·Σ_k|w(i,k)| + (s_w_i/2)·max_j Σ_k|x(k,j)| + K·s_x·s_w_i/4
// evaluated on the true fp32 weight matrix and patch matrix.
std::vector<float> conv_quant_bounds(const ConvShape& shape, const Tensor& x,
                                     const Tensor& kernel, float s_x) {
  const Tensor wmat = conv_weight_matrix(kernel, shape);
  const Tensor cols = im2col(x, shape);
  const std::int64_t kdim = shape.c * shape.r * shape.s;
  const std::int64_t ohw = shape.out_h() * shape.out_w();
  const QuantizedRows qw =
      quantize_rows_s8(shape.n, kdim, wmat.raw(), kdim, 1);
  float col_sum_max = 0.0f;
  for (std::int64_t j = 0; j < ohw; ++j) {
    float s = 0.0f;
    for (std::int64_t kk = 0; kk < kdim; ++kk) {
      s += std::fabs(cols[kk * ohw + j]);
    }
    col_sum_max = std::max(col_sum_max, s);
  }
  std::vector<float> bounds(static_cast<std::size_t>(shape.n));
  for (std::int64_t i = 0; i < shape.n; ++i) {
    float w_sum = 0.0f;
    for (std::int64_t kk = 0; kk < kdim; ++kk) {
      w_sum += std::fabs(wmat[i * kdim + kk]);
    }
    const float s_w = qw.scales[static_cast<std::size_t>(i)];
    bounds[static_cast<std::size_t>(i)] =
        0.5f * s_x * w_sum + 0.5f * s_w * col_sum_max +
        0.25f * static_cast<float>(kdim) * s_x * s_w;
  }
  return bounds;
}

TEST(QuantizedConvPlan, MatchesFp32WithinQuantBoundOnPoisonedWorkspace) {
  Rng rng(7006);
  ConvShape strided = ConvShape::same(4, 6, 11, 3, 2);
  const ConvShape shapes[] = {
      ConvShape::same(5, 7, 12, 3),          // padded 3×3
      ConvShape::valid_conv(8, 6, 10, 10, 1, 1),  // pointwise, patch-free
      strided,                               // strided stage transition
      ConvShape::same(3, 4, 9, 5),           // 5×5, pad 2
  };
  for (const ConvShape& shape : shapes) {
    const Tensor x = Tensor::random_uniform({shape.c, shape.h, shape.w}, rng);
    const Tensor kernel =
        Tensor::random_uniform({shape.c, shape.n, shape.r, shape.s}, rng);
    const Tensor ref = conv2d_reference(x, kernel, shape);

    LayerQuant quant;
    quant.quantize = true;
    quant.input = observe_params(x.raw(), x.numel());
    const auto plan = compile_quantized_conv_plan(shape, kernel, quant);
    EXPECT_TRUE(plan->quantized());
    EXPECT_FALSE(plan->decomposed());

    PoisonedWorkspace ws(plan->workspace_bytes());
    Tensor y({shape.n, shape.out_h(), shape.out_w()});
    plan->run(x, &y, ws.span());
    EXPECT_TRUE(ws.guards_intact()) << shape.to_string();
    EXPECT_TRUE(all_finite(y)) << shape.to_string();

    const std::vector<float> bounds =
        conv_quant_bounds(shape, x, kernel, quant.input.scale);
    const std::int64_t ohw = shape.out_h() * shape.out_w();
    for (std::int64_t i = 0; i < shape.n; ++i) {
      for (std::int64_t j = 0; j < ohw; ++j) {
        EXPECT_LE(std::fabs(y[i * ohw + j] - ref[i * ohw + j]),
                  1.05f * bounds[static_cast<std::size_t>(i)] + 1e-3f)
            << shape.to_string() << " at (" << i << "," << j << ")";
      }
    }

    // Bit-identical across thread counts (integer arithmetic is exact, the
    // epilogue multiplies are elementwise).
    const int saved = num_threads();
    for (const int nt : {1, 4}) {
      set_num_threads(nt);
      ws.poison();
      Tensor again({shape.n, shape.out_h(), shape.out_w()});
      plan->run(x, &again, ws.span());
      EXPECT_EQ(Tensor::max_abs_diff(y, again), 0.0)
          << shape.to_string() << " threads=" << nt;
    }
    set_num_threads(saved);
  }
}

TEST(QuantizedTuckerPlan, TracksFp32PipelineOnPoisonedWorkspace) {
  Rng rng(7007);
  const ConvShape shape = ConvShape::same(8, 10, 10, 3);
  const TuckerRanks ranks{5, 6};
  const Tensor kernel =
      Tensor::random_uniform({shape.c, shape.n, shape.r, shape.s}, rng);
  const Tensor x = Tensor::random_uniform({shape.c, shape.h, shape.w}, rng);
  const TuckerFactors factors = tucker_decompose(kernel, ranks);

  // The fp32 twin of the same factors is the accuracy baseline — the
  // quantized pipeline approximates the decomposed computation, not the
  // original kernel.
  TuckerDescriptor fdesc;
  fdesc.shape = shape;
  fdesc.exec = TuckerExec::kStaged;
  fdesc.core_algo = ConvAlgo::kIm2col;
  const auto fp32_plan = compile_tucker_plan(fdesc, factors);
  const Tensor want = fp32_plan->run(x);

  // Calibrate z1/z2 exactly as calibrate_quant does: fp32 intermediates of
  // this input.
  const ConvShape core = core_conv_shape(shape, ranks);
  const std::int64_t hw = shape.h * shape.w;
  std::vector<float> z1(static_cast<std::size_t>(ranks.d1 * hw));
  gemm_at(ranks.d1, hw, shape.c,
          std::span<const float>(factors.u1.raw(),
                                 static_cast<std::size_t>(shape.c * ranks.d1)),
          std::span<const float>(x.raw(), static_cast<std::size_t>(x.numel())),
          std::span<float>(z1));
  ConvDescriptor cdesc;
  cdesc.shape = core;
  cdesc.algo = ConvAlgo::kIm2col;
  const auto core_plan = compile_conv_plan(cdesc, factors.core);
  Tensor z1t({core.c, core.h, core.w});
  std::copy(z1.begin(), z1.end(), z1t.raw());
  const Tensor z2 = core_plan->run(z1t);

  LayerQuant quant;
  quant.quantize = true;
  quant.input = observe_params(x.raw(), x.numel());
  quant.z1 = observe_params(z1.data(), static_cast<std::int64_t>(z1.size()));
  quant.z2 = observe_params(z2.raw(), z2.numel());

  const auto plan = compile_quantized_tucker_plan(shape, factors, quant);
  EXPECT_TRUE(plan->quantized());
  EXPECT_TRUE(plan->decomposed());
  EXPECT_EQ(plan->shape(), shape);

  PoisonedWorkspace ws(plan->workspace_bytes());
  Tensor y({shape.n, shape.out_h(), shape.out_w()});
  plan->run(x, &y, ws.span());
  EXPECT_TRUE(ws.guards_intact());
  EXPECT_TRUE(all_finite(y));
  // Three chained 7-bit stages compound error; the pipeline must still track
  // its fp32 twin closely in relative terms.
  EXPECT_LT(Tensor::rel_error(y, want), 0.15);

  const int saved = num_threads();
  for (const int nt : {1, 4}) {
    set_num_threads(nt);
    ws.poison();
    Tensor again({shape.n, shape.out_h(), shape.out_w()});
    plan->run(x, &again, ws.span());
    EXPECT_EQ(Tensor::max_abs_diff(y, again), 0.0) << "threads=" << nt;
  }
  set_num_threads(saved);
}

TEST(Quantize, CalibrationCoversEveryConvAndIsDeterministic) {
  ModelSpec model;
  model.name = "calib-tiny";
  model.layers.push_back(
      LayerSpec::make_conv("conv0", ConvShape::same(3, 6, 12, 3)));
  model.layers.push_back(
      LayerSpec::make_conv("conv1", ConvShape::same(6, 6, 12, 3)));
  model.layers.push_back(LayerSpec::make_elementwise("relu", 6.0 * 12 * 12));
  model.layers.push_back(
      LayerSpec::make_conv("conv2", ConvShape::same(6, 4, 12, 3)));
  const auto weights = random_model_weights(model, 7008);

  CalibrationOptions opts;
  opts.samples = 2;
  const QuantTable table =
      calibrate_quant(make_a100(), model, weights, {}, opts);
  ASSERT_EQ(table.layers.size(), model.layers.size());
  for (std::size_t i = 0; i < model.layers.size(); ++i) {
    if (model.layers[i].kind == LayerKind::kConv) {
      EXPECT_TRUE(table.layers[i].quantize) << i;
      EXPECT_GT(table.layers[i].input.scale, 0.0f) << i;
    } else {
      EXPECT_FALSE(table.layers[i].quantize) << i;
    }
  }

  const QuantTable again =
      calibrate_quant(make_a100(), model, weights, {}, opts);
  for (std::size_t i = 0; i < table.layers.size(); ++i) {
    EXPECT_EQ(quant_fingerprint(table.layers[i]),
              quant_fingerprint(again.layers[i]))
        << i;
  }
  // Different calibrations must not alias in cache keys.
  CalibrationOptions other = opts;
  other.seed = 99;
  const QuantTable shifted =
      calibrate_quant(make_a100(), model, weights, {}, other);
  EXPECT_NE(quant_fingerprint(table.layers[0]),
            quant_fingerprint(shifted.layers[0]));
}

// The acceptance walk: calibrated mixed-precision full-width ResNet-18 —
// codesign decisions, int8 forced onto every calibrated layer — served
// through the replica fleet with allocation and workspace guards armed,
// bitwise-identical to a plain session and across thread counts.
TEST(QuantizedServing, MixedPrecisionResnet18ThroughServer) {
  const DeviceSpec device = make_a100();
  const ModelSpec model = make_resnet18();
  const auto weights = random_model_weights(model, 7010);

  CodesignOptions cd_opts;
  cd_opts.budget = 0.65;
  const CodesignResult codesign =
      run_codesign(device, model.decomposable_conv_shapes(), cd_opts);
  const std::vector<LayerDecision>& decisions = codesign.layers;

  CalibrationOptions calib;
  calib.samples = 1;
  const QuantTable table =
      calibrate_quant(device, model, weights, decisions, calib);

  ::setenv("TDC_INT8", "2", 1);  // force int8 for every calibrated layer
  const bool saved_ws_guard = workspace_guard_enabled();
  const bool saved_alloc_guard = alloc_guard_enabled();
  set_workspace_guard(true);
  set_alloc_guard(true);
  const std::int64_t violations_before = alloc_guard_violations();

  SessionOptions session_options;
  session_options.dense_algo = ConvAlgo::kIm2col;
  session_options.quant = &table;

  const InferenceSession session = InferenceSession::compile(
      device, model, weights, decisions, session_options);
  std::int64_t quantized_ops = 0;
  std::int64_t decomposed_quantized = 0;
  for (std::int64_t i = 0; i < session.num_ops(); ++i) {
    const auto* conv = dynamic_cast<const ConvPlan*>(&session.op(i));
    if (conv != nullptr && conv->quantized()) {
      ++quantized_ops;
      decomposed_quantized += conv->decomposed() ? 1 : 0;
    }
  }
  EXPECT_GT(quantized_ops, 0);
  EXPECT_GT(decomposed_quantized, 0);  // the Tucker stages quantize too

  Rng rng(7011);
  const Tensor x = Tensor::random_uniform({3, 224, 224}, rng);
  PoisonedWorkspace ws(session.workspace_bytes());
  Tensor y({1000, 1, 1});
  session.run(x, &y, ws.span());
  EXPECT_TRUE(ws.guards_intact());
  EXPECT_TRUE(all_finite(y));

  const int saved_threads = num_threads();
  for (const int nt : {1, 4}) {
    set_num_threads(nt);
    ws.poison();
    Tensor again({1000, 1, 1});
    session.run(x, &again, ws.span());
    EXPECT_EQ(Tensor::max_abs_diff(y, again), 0.0) << "threads=" << nt;
  }
  set_num_threads(saved_threads);

  // Through the fleet: replicas share the session's cached plans, so the
  // server answer is bitwise the session answer.
  ServerOptions server_options;
  server_options.replicas = 2;
  server_options.session = session_options;
  InferenceServer server = InferenceServer::compile(device, model, weights,
                                                    decisions, server_options);
  const Tensor served = server.infer(x);
  EXPECT_EQ(Tensor::max_abs_diff(served, y), 0.0);

  EXPECT_EQ(alloc_guard_violations(), violations_before);
  set_alloc_guard(saved_alloc_guard);
  set_workspace_guard(saved_ws_guard);
  ::unsetenv("TDC_INT8");
}

}  // namespace
}  // namespace tdc
