// Integration tests on the paper's own evaluation shapes: the functional
// kernels (TDC scheme, TVM scheme, all baselines) executed at the exact
// small core-convolution geometries of Figures 6–7, each at its
// production-selected tiling, all checked against the reference oracle.
#include <gtest/gtest.h>

#include "conv/conv.h"
#include "core/tdc_kernel.h"
#include "core/tdc_model.h"
#include "core/tvm_scheme.h"
#include "tensor/layout.h"

namespace tdc {
namespace {

// The 7×7 and 14×14 members of the Figure-6 shape list (the larger planes
// are covered by the parameterized sweeps at reduced size; running them
// here would dominate the suite's runtime for no extra coverage).
std::vector<ConvShape> small_paper_shapes() {
  return {ConvShape::same(32, 32, 7, 3),  ConvShape::same(64, 32, 7, 3),
          ConvShape::same(96, 64, 7, 3),  ConvShape::same(192, 160, 7, 3),
          ConvShape::same(32, 32, 14, 3), ConvShape::same(64, 32, 14, 3),
          ConvShape::same(128, 96, 14, 3)};
}

class PaperShapeKernels : public ::testing::TestWithParam<ConvShape> {
 protected:
  void SetUp() override {
    const ConvShape& s = GetParam();
    Rng rng(4242);
    x_ = Tensor::random_uniform({s.c, s.h, s.w}, rng);
    k_ = Tensor::random_uniform({s.c, s.n, s.r, s.s}, rng);
    reference_ = conv2d_reference(x_, k_, s);
  }
  Tensor x_, k_, reference_;
};

TEST_P(PaperShapeKernels, TdcKernelAtModelTiling) {
  const ConvShape& s = GetParam();
  const TdcTiling t = select_tiling_model(make_a100(), s);
  const Tensor out = tdc_core_conv(x_, cnrs_to_crsn(k_), s, t);
  EXPECT_LT(Tensor::rel_error(out, reference_), 1e-4) << t.to_string();
}

TEST_P(PaperShapeKernels, TdcKernelAtOracleTiling) {
  const ConvShape& s = GetParam();
  const TdcTiling t = select_tiling_oracle(make_rtx2080ti(), s);
  const Tensor out = tdc_core_conv(x_, cnrs_to_crsn(k_), s, t);
  EXPECT_LT(Tensor::rel_error(out, reference_), 1e-4) << t.to_string();
}

TEST_P(PaperShapeKernels, TvmSchemeAtTunedTiling) {
  const ConvShape& s = GetParam();
  const TvmTiling t = select_tvm_tiling(make_a100(), s);
  const Tensor out = tvm_scheme_conv(x_, k_, s, t);
  EXPECT_LT(Tensor::rel_error(out, reference_), 1e-4) << t.to_string();
}

TEST_P(PaperShapeKernels, LibraryBaselines) {
  const ConvShape& s = GetParam();
  EXPECT_LT(Tensor::rel_error(conv2d_im2col(x_, k_, s), reference_), 1e-4);
  EXPECT_LT(Tensor::rel_error(conv2d_winograd(x_, k_, s), reference_), 1e-3);
  EXPECT_LT(Tensor::rel_error(conv2d_fft(x_, k_, s), reference_), 1e-4);
}

INSTANTIATE_TEST_SUITE_P(Figure6Small, PaperShapeKernels,
                         ::testing::ValuesIn(small_paper_shapes()),
                         [](const auto& info) {
                           const ConvShape& s = info.param;
                           return "c" + std::to_string(s.c) + "n" +
                                  std::to_string(s.n) + "hw" +
                                  std::to_string(s.h);
                         });

}  // namespace
}  // namespace tdc
