// Regression anchors for the paper's headline claims.
//
// These tests pin the calibrated simulator to the qualitative results of the
// paper — orderings, crossovers, and rough factors — so that future changes
// to the cost models cannot silently break the reproduction. Bands are
// deliberately generous: the *shape* of each result is the invariant, not
// the third digit.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/tdc_model.h"
#include "core/tvm_scheme.h"
#include "gpusim/library_cost.h"
#include "nn/models.h"

namespace tdc {
namespace {

double geomean(const std::vector<double>& xs) {
  double s = 0.0;
  for (const double x : xs) {
    s += std::log(x);
  }
  return std::exp(s / static_cast<double>(xs.size()));
}

struct FigureAverages {
  double fft, wino, gemm, tvm, model_gap;
};

FigureAverages figure_averages(const DeviceSpec& device) {
  std::vector<double> fft, wino, gemm, tvm, gap;
  for (const ConvShape& s : figure6_core_shapes()) {
    const double oracle =
        tdc_core_cost(device, s, select_tiling_oracle(device, s)).total_s;
    const double model =
        tdc_core_cost(device, s, select_tiling_model(device, s)).total_s;
    fft.push_back(cudnn_fft_cost(device, s).total_s / oracle);
    wino.push_back(cudnn_winograd_cost(device, s).total_s / oracle);
    gemm.push_back(cudnn_implicit_gemm_cost(device, s).total_s / oracle);
    tvm.push_back(tvm_best_cost(device, s).total_s / oracle);
    gap.push_back(model / oracle);
  }
  return {geomean(fft), geomean(wino), geomean(gemm), geomean(tvm),
          geomean(gap)};
}

const FigureAverages& a100_averages() {
  static const FigureAverages a = figure_averages(make_a100());
  return a;
}

const FigureAverages& ti_averages() {
  static const FigureAverages a = figure_averages(make_rtx2080ti());
  return a;
}

// --- Figure 6 (A100): paper averages 5.38 / 3.12 / 8.95 / 1.81 ---

TEST(Figure6Claims, TdcBeatsEveryBaselineOnAverage) {
  const FigureAverages& a = a100_averages();
  EXPECT_GT(a.fft, 1.5);
  EXPECT_GT(a.wino, 1.5);
  EXPECT_GT(a.gemm, 1.5);
  EXPECT_GT(a.tvm, 1.2);
}

TEST(Figure6Claims, FactorsInPaperBand) {
  const FigureAverages& a = a100_averages();
  EXPECT_GT(a.gemm, 4.0);
  EXPECT_LT(a.gemm, 14.0);  // paper 8.95
  EXPECT_GT(a.fft, 3.0);
  EXPECT_LT(a.fft, 14.0);   // paper 5.38
  EXPECT_GT(a.wino, 1.5);
  EXPECT_LT(a.wino, 5.0);   // paper 3.12
  EXPECT_GT(a.tvm, 1.2);
  EXPECT_LT(a.tvm, 3.0);    // paper 1.81
}

TEST(Figure6Claims, TvmIsTheClosestBaseline) {
  const FigureAverages& a = a100_averages();
  EXPECT_LT(a.tvm, a.wino);
  EXPECT_LT(a.wino, a.gemm);
}

// --- Figure 7 (2080 Ti): paper averages 8.17 / 2.75 / 5.84 / 2.35 ---

TEST(Figure7Claims, OrderingHoldsOn2080Ti) {
  const FigureAverages& a = ti_averages();
  EXPECT_GT(a.fft, a.wino);
  EXPECT_GT(a.gemm, a.wino);
  EXPECT_GT(a.wino, a.tvm);
  EXPECT_GT(a.tvm, 1.0);
}

// --- Section 5.5: model within ~25 % of oracle, still beats TVM ---

TEST(Section55Claims, ModelOracleGapNearPaper) {
  EXPECT_GT(a100_averages().model_gap, 1.0);
  EXPECT_LT(a100_averages().model_gap, 1.6);  // paper ~1.25
  EXPECT_GT(ti_averages().model_gap, 1.0);
  EXPECT_LT(ti_averages().model_gap, 1.7);
}

TEST(Section55Claims, ModelTilingStillBeatsTvmOnAverage) {
  std::vector<double> ratios;
  const DeviceSpec d = make_a100();
  for (const ConvShape& s : figure6_core_shapes()) {
    const double model =
        tdc_core_cost(d, s, select_tiling_model(d, s)).total_s;
    ratios.push_back(tvm_best_cost(d, s).total_s / model);
  }
  EXPECT_GT(geomean(ratios), 1.1);  // paper: ~1.5x
}

// --- Section 7.3: the VGG-stem crossover ---

TEST(Section73Claims, TvmWinsTheLargePlaneShape) {
  // (64, 32, 224, 224) is the one shape where the H/W-split scheme beats
  // the C-split TDC kernel — the paper's own caveat.
  const DeviceSpec d = make_a100();
  const ConvShape stem = ConvShape::same(64, 32, 224, 3);
  const double tdc = tdc_core_cost(d, stem, select_tiling_oracle(d, stem)).total_s;
  const double tvm = tvm_best_cost(d, stem).total_s;
  EXPECT_LT(tvm, tdc);
}

TEST(Section73Claims, TdcWinsEveryMediumAndSmallShape) {
  // In this reproduction the TDC/TVM crossover sits one plane size lower
  // than the paper's (56² is a near-tie here, a TDC win there) — see
  // EXPERIMENTS.md. Below 56² TDC must win outright; at 56² it must be
  // within a 25 % band; cuDNN-GEMM must lose everywhere.
  const DeviceSpec d = make_a100();
  for (const ConvShape& s : figure6_core_shapes()) {
    if (s.h >= 112) {
      continue;  // the acknowledged large-plane shapes
    }
    const double tdc = tdc_core_cost(d, s, select_tiling_oracle(d, s)).total_s;
    const double tvm = tvm_best_cost(d, s).total_s;
    if (s.h >= 56) {
      EXPECT_LT(tdc, tvm * 1.25) << s.to_string();
    } else {
      EXPECT_LT(tdc, tvm * 1.0001) << s.to_string();
    }
    EXPECT_LT(tdc, cudnn_implicit_gemm_cost(d, s).total_s) << s.to_string();
  }
}

// --- Figure 4: latency grows sub-proportionally with N ---

TEST(Figure4Claims, SubProportionalGrowthInOutputChannels) {
  const DeviceSpec d = make_rtx2080ti();
  const ConvShape n32 = ConvShape::same(64, 32, 28, 3);
  const ConvShape n256 = ConvShape::same(64, 256, 28, 3);
  const double t32 =
      tdc_core_cost(d, n32, select_tiling_oracle(d, n32)).total_s;
  const double t256 =
      tdc_core_cost(d, n256, select_tiling_oracle(d, n256)).total_s;
  // 8x the FLOPs should cost far less than 8x the time (the staircase
  // argument behind "over rank reduction is pointless").
  EXPECT_LT(t256 / t32, 6.0);
  EXPECT_GE(t256, t32);
}

// --- Intro claim: TK-on-cuDNN leaves performance on the table ---

TEST(IntroClaims, CudnnCoreSlowerThanTdcCoreAtPaperRanks) {
  // "TKD-compressed ResNet18 using cuDNN only achieves 1.47x" — the core
  // kernels are the reason. Check a representative decomposed core.
  const DeviceSpec d = make_a100();
  const ConvShape core = ConvShape::same(32, 32, 28, 3);
  const double cudnn = cudnn_implicit_gemm_cost(d, core).total_s;
  const double tdc =
      tdc_core_cost(d, core, select_tiling_oracle(d, core)).total_s;
  EXPECT_GT(cudnn / tdc, 2.0);
}

}  // namespace
}  // namespace tdc
