// Invariant-enforcement layer tests (common/alloc_guard.h,
// exec/workspace_guard.h): the allocation-interposition guard and the
// workspace canary bands must (1) catch planted violations as typed errors
// naming the site/op, (2) recover to bitwise-identical reruns in the same
// process, (3) be provable no-ops when disarmed, and (4) prove the
// acceptance property — InferenceSession::run / run_batched on full-width
// ResNet-18 performs zero heap allocations end to end once warmed. The
// 8-thread stress test at the bottom is the TSan regression for the
// process-wide singletons (stat counters, calibration memo, fault registry,
// plan cache, guard enablement flags).
#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "common/alloc_guard.h"
#include "common/check.h"
#include "common/deadline.h"
#include "common/fault.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "exec/conv_plan.h"
#include "exec/graph_plan.h"
#include "exec/microbench.h"
#include "exec/plan_cache.h"
#include "exec/workspace_guard.h"
#include "gpusim/device.h"
#include "nn/models.h"

namespace tdc {
namespace {

// Every test leaves the process as it found it: guards disarmed, no armed
// faults, no finite screening.
class InvariantTest : public ::testing::Test {
 protected:
  void TearDown() override {
    fault_disarm_all();
    set_alloc_guard(false);
    set_workspace_guard(false);
    set_check_finite(false);
  }
};

bool bitwise_equal(const Tensor& a, const Tensor& b) {
  return a.numel() == b.numel() &&
         std::memcmp(a.raw(), b.raw(), static_cast<std::size_t>(a.numel()) *
                                           sizeof(float)) == 0;
}

// Compiled serving inventory: ResNet-20/CIFAR, dense, pinned im2col so
// compiles are fast and bit-deterministic.
struct Serving {
  explicit Serving(unsigned seed = 2026) {
    SessionOptions options;
    options.dense_algo = ConvAlgo::kIm2col;
    model = make_resnet20_cifar();
    weights = random_model_weights(model, seed);
    session = InferenceSession::compile(make_a100(), model, weights, {},
                                        options);
    Rng rng(7);
    x = Tensor::random_uniform({session.input_shape().c,
                                session.input_shape().h,
                                session.input_shape().w},
                               rng, -1.0f, 1.0f);
    y = Tensor({session.output_shape().c, session.output_shape().h,
                session.output_shape().w});
    workspace.resize(
        static_cast<std::size_t>(session.workspace_bytes() / sizeof(float)));
  }

  Tensor run_once() {
    session.run(x, &y, workspace);
    return y;
  }

  ModelSpec model;
  std::vector<LayerWeights> weights;
  InferenceSession session;
  Tensor x;
  Tensor y;
  std::vector<float> workspace;
};

// ---------------------------------------------------------------------------
// DenyAllocGuard semantics.

TEST_F(InvariantTest, ArmedGuardDeniesAllocationNamingTheSite) {
  set_alloc_guard(true);
  const std::int64_t before = alloc_guard_violations();
  // The guard lives inside the try so stack unwinding pops it before the
  // handler runs — the handler itself is free to allocate.
  try {
    DenyAllocGuard guard("test.site");
    std::vector<int> v(1024);
    FAIL() << "allocation inside an armed guard must throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInternal);
    EXPECT_NE(std::string(e.what()).find("test.site"), std::string::npos)
        << e.what();
  }
  EXPECT_EQ(alloc_guard_violations(), before + 1);
}

TEST_F(InvariantTest, DisarmedGuardIsANoop) {
  set_alloc_guard(false);
  const std::int64_t before = alloc_guard_violations();
  DenyAllocGuard guard("test.site");
  std::vector<int> v(1024);  // must not throw
  v[0] = 1;
  EXPECT_EQ(alloc_guard_violations(), before);
}

TEST_F(InvariantTest, AllowAllocScopeSuspendsTheGuard) {
  set_alloc_guard(true);
  const std::int64_t before = alloc_guard_violations();
  DenyAllocGuard guard("test.site");
  {
    AllowAllocScope allow;
    std::vector<int> v(1024);  // sanctioned cold-path allocation
    v[0] = 1;
  }
  EXPECT_EQ(alloc_guard_violations(), before);
}

TEST_F(InvariantTest, NestedGuardsReportTheInnermostSite) {
  set_alloc_guard(true);
  try {
    DenyAllocGuard outer("outer.site");
    DenyAllocGuard inner("inner.site");
    std::vector<int> v(16);
    FAIL() << "expected a violation";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("inner.site"), std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// Planted faults: catch, then recover bitwise-identically.

TEST_F(InvariantTest, HiddenAllocationInRunIsCaughtAndSessionRecovers) {
  Serving serving;
  const Tensor clean = serving.run_once();  // warm-up (thread-local buffers)

  set_alloc_guard(true);
  fault_arm("exec.run_hidden_alloc", FaultSpec{.count = 1});
  try {
    serving.run_once();
    FAIL() << "planted hidden allocation must be denied";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInternal);
    EXPECT_NE(std::string(e.what()).find("InferenceSession::run"),
              std::string::npos)
        << e.what();
  }
  EXPECT_EQ(fault_fire_count("exec.run_hidden_alloc"), 1);

  // Same process, same session: the next run is bitwise identical.
  EXPECT_TRUE(bitwise_equal(serving.run_once(), clean));
}

TEST_F(InvariantTest, HiddenAllocationIsHarmlessWhenDisarmed) {
  Serving serving;
  const Tensor clean = serving.run_once();
  set_alloc_guard(false);
  const std::int64_t before = alloc_guard_violations();
  fault_arm("exec.run_hidden_alloc", FaultSpec{.count = 1});
  EXPECT_TRUE(bitwise_equal(serving.run_once(), clean));
  EXPECT_EQ(alloc_guard_violations(), before);
}

TEST_F(InvariantTest, WorkspaceOverrunIsCaughtNamingTheOpAndRecovers) {
  set_workspace_guard(true);
  Serving serving;  // compiled with canary bands frozen in
  set_workspace_guard(false);  // the session keeps its compiled layout
  const Tensor clean = serving.run_once();  // bands intact on a clean run

  fault_arm("exec.op_overrun", FaultSpec{.count = 1});
  try {
    serving.run_once();
    FAIL() << "planted overrun must trip the canary band";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kDataCorruption);
    EXPECT_NE(std::string(e.what()).find("trailing arena band"),
              std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("op '"), std::string::npos);
  }
  EXPECT_EQ(fault_fire_count("exec.op_overrun"), 1);

  EXPECT_TRUE(bitwise_equal(serving.run_once(), clean));
}

TEST_F(InvariantTest, GuardedAndUnguardedSessionsAgreeBitwise) {
  set_workspace_guard(false);
  Serving plain;
  set_workspace_guard(true);
  Serving banded;
  set_workspace_guard(false);
  // Bands cost workspace but never touch results.
  EXPECT_GT(banded.session.workspace_bytes(),
            plain.session.workspace_bytes());
  EXPECT_TRUE(bitwise_equal(plain.run_once(), banded.run_once()));
}

TEST_F(InvariantTest, OverrunFaultIsInertOnAnUnguardedBandlessRun) {
  // Without bands the planted overrun is never requested: the fault point
  // sits behind the band check in run_graph only when it can be observed —
  // a disarmed-guard session must run exactly as before.
  set_workspace_guard(false);
  Serving serving;
  const Tensor clean = serving.run_once();
  EXPECT_TRUE(bitwise_equal(serving.run_once(), clean));
}

// ---------------------------------------------------------------------------
// Acceptance: full-width ResNet-18 serves with zero heap allocations.

TEST_F(InvariantTest, FullWidthResnet18ServesAllocationFree) {
  const ModelSpec model = make_resnet18();
  const auto weights = random_model_weights(model, 813);
  // Default options: host-provider algorithm selection, the deployable
  // configuration (PR 5's acceptance walk).
  InferenceSession session =
      InferenceSession::compile(make_a100(), model, weights, {}, {});

  Rng rng(11);
  Tensor x = Tensor::random_uniform({session.input_shape().c,
                                     session.input_shape().h,
                                     session.input_shape().w},
                                    rng, -1.0f, 1.0f);
  Tensor y({session.output_shape().c, session.output_shape().h,
            session.output_shape().w});
  std::vector<float> ws(
      static_cast<std::size_t>(session.workspace_bytes() / sizeof(float)));
  session.run(x, &y, ws);  // warm-up: thread-local pack buffers grow here

  const std::int64_t before = alloc_guard_violations();
  set_alloc_guard(true);
  Tensor y2({session.output_shape().c, session.output_shape().h,
             session.output_shape().w});
  session.run(x, &y2, ws);  // armed: any hidden allocation throws
  EXPECT_TRUE(bitwise_equal(y, y2));
  EXPECT_EQ(alloc_guard_violations(), before);

  // Batched serving under the armed guard, workers included.
  const std::int64_t batch = 4;
  Tensor xb({batch, session.input_shape().c, session.input_shape().h,
             session.input_shape().w});
  for (std::int64_t b = 0; b < batch; ++b) {
    std::memcpy(xb.raw() + b * x.numel(), x.raw(),
                static_cast<std::size_t>(x.numel()) * sizeof(float));
  }
  Tensor yb({batch, session.output_shape().c, session.output_shape().h,
             session.output_shape().w});
  std::vector<float> wsb(static_cast<std::size_t>(
      session.batched_workspace_bytes(batch) / sizeof(float)));
  set_alloc_guard(false);
  session.run_batched(xb, &yb, wsb);  // warm-up per worker slot
  set_alloc_guard(true);
  session.run_batched(xb, &yb, wsb);
  EXPECT_EQ(alloc_guard_violations(), before);
  for (std::int64_t b = 0; b < batch; ++b) {
    EXPECT_EQ(std::memcmp(yb.raw() + b * y.numel(), y.raw(),
                          static_cast<std::size_t>(y.numel()) *
                              sizeof(float)),
              0)
        << "batched image " << b << " diverged under the armed guard";
  }
}

// ---------------------------------------------------------------------------
// TSan regression: 8 threads hammer every process-wide singleton at once.

TEST_F(InvariantTest, ConcurrentSingletonStress) {
  // Warm the lazy singletons once so the stress exercises steady-state
  // reads against occasional writes, not just first-init.
  (void)num_threads();
  (void)parallel_stats();
  (void)host_calibration();
  (void)alloc_guard_enabled();
  (void)workspace_guard_enabled();
  (void)PlanCache::instance().stats();

  // Force a real pool even on a single-core host so the stress exercises
  // the fork/join handoff, the worker-propagated thread-local state, and
  // the serial-fallback path rather than degenerating to inline loops.
  const int restore_threads = num_threads();
  set_num_threads(4);

  constexpr int kThreads = 8;
  constexpr int kIters = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      const ConvShape shape{.c = 8, .n = 8, .h = 8, .w = 8, .r = 3, .s = 3};
      for (int i = 0; i < kIters; ++i) {
        (void)parallel_stats();
        (void)num_threads();
        (void)host_calibration();
        (void)alloc_guard_enabled();
        (void)workspace_guard_enabled();
        (void)fault_armed("stress.point");
        (void)fault_injected("stress.nothing");
        (void)PlanCache::instance().stats();
        if (t == 0 && i % 50 == 0) {
          // A writer among the readers: arm/disarm churns the registry
          // and the fast-path armed count.
          fault_arm("stress.point", FaultSpec{.count = 1});
          (void)fault_injected("stress.point");
          fault_disarm("stress.point");
        }
        // Concurrent top-level parallel regions: one wins the pool, the
        // rest take the counted inline fallback — all of it must be clean
        // under TSan.
        std::int64_t acc = 0;
        parallel_for(0, 64, 1, [&](std::int64_t b, std::int64_t e) {
          for (std::int64_t j = b; j < e; ++j) {
            acc += j;
          }
        });
        EXPECT_EQ(acc, 64 * 63 / 2);
        if (i % 20 == t % 20) {
          // Shared-cache compiles of one shape: every thread hits the same
          // PlanCache entry.
          ConvDescriptor d;
          d.device = make_a100();
          d.shape = shape;
          d.algo = ConvAlgo::kIm2col;
          Rng rng(13);
          const Tensor kernel = Tensor::random_uniform(
              {shape.c, shape.n, shape.r, shape.s}, rng, -1.0f, 1.0f);
          (void)compile_conv_plan(d, kernel);
        }
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  set_num_threads(restore_threads);
  const ParallelStats stats = parallel_stats();
  EXPECT_GT(stats.pool_regions + stats.inline_regions +
                stats.serial_fallbacks,
            0);
}

}  // namespace
}  // namespace tdc
