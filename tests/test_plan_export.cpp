// Tests for the deployment-plan export.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/check.h"
#include "core/plan_export.h"

namespace tdc {
namespace {

CodesignResult sample_plan(const DeviceSpec& d) {
  CodesignOptions opts;
  opts.budget = 0.6;
  return run_codesign(
      d, {ConvShape::same(64, 64, 28, 3), ConvShape::same(64, 64, 28, 1),
          ConvShape::same(128, 128, 14, 3)},
      opts);
}

TEST(PlanCsv, HeaderAndRowCount) {
  const DeviceSpec d = make_a100();
  const CodesignResult r = sample_plan(d);
  const std::string csv = plan_to_csv(r);
  std::istringstream is(csv);
  std::string line;
  std::getline(is, line);
  EXPECT_NE(line.find("layer,C,N"), std::string::npos);
  std::size_t rows = 0;
  while (std::getline(is, line)) {
    rows += !line.empty();
  }
  EXPECT_EQ(rows, r.layers.size());
}

TEST(PlanCsv, DecomposedRowsCarryRanksAndTiling) {
  const DeviceSpec d = make_a100();
  const CodesignResult r = sample_plan(d);
  const std::string csv = plan_to_csv(r);
  std::istringstream is(csv);
  std::string line;
  std::getline(is, line);  // header
  for (const auto& dec : r.layers) {
    ASSERT_TRUE(static_cast<bool>(std::getline(is, line)));
    if (dec.decomposed) {
      EXPECT_NE(line.find(",1," + std::to_string(dec.ranks.d1) + ","),
                std::string::npos)
          << line;
    } else {
      EXPECT_NE(line.find(",0,,,,,"), std::string::npos) << line;
    }
  }
}

TEST(PlanSummary, ContainsTotals) {
  const DeviceSpec d = make_a100();
  const std::string s = plan_summary(sample_plan(d));
  EXPECT_NE(s.find("decomposed"), std::string::npos);
  EXPECT_NE(s.find("% reduction"), std::string::npos);
  EXPECT_NE(s.find("x)"), std::string::npos);
}

TEST(PlanKernels, OnePerDistinctCoreShape) {
  const DeviceSpec d = make_a100();
  CodesignOptions opts;
  opts.budget = 0.6;
  // Two identical layers must share one kernel file.
  const CodesignResult r = run_codesign(
      d, {ConvShape::same(128, 128, 28, 3), ConvShape::same(128, 128, 28, 3)},
      opts);
  ASSERT_TRUE(r.layers[0].decomposed);
  ASSERT_TRUE(r.layers[1].decomposed);
  const auto files = plan_kernels(d, r);
  EXPECT_EQ(files.size(), 1u);
  EXPECT_NE(files.begin()->second.find("__global__"), std::string::npos);
}

TEST(PlanExport, WritesAllFiles) {
  const DeviceSpec d = make_a100();
  const CodesignResult r = sample_plan(d);
  const std::string dir =
      (std::filesystem::temp_directory_path() / "tdc_plan_test").string();
  std::filesystem::remove_all(dir);
  const int written = export_plan(dir, d, r);
  EXPECT_GE(written, 3);  // csv + summary + >=1 kernel
  EXPECT_TRUE(std::filesystem::exists(std::filesystem::path(dir) / "plan.csv"));
  EXPECT_TRUE(
      std::filesystem::exists(std::filesystem::path(dir) / "SUMMARY.txt"));
  std::size_t cu_files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    cu_files += entry.path().extension() == ".cu";
  }
  EXPECT_EQ(static_cast<int>(cu_files) + 2, written);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace tdc
