#include <gtest/gtest.h>

#include "common/check.h"
#include "conv/conv.h"
#include "core/tvm_scheme.h"

namespace tdc {
namespace {

TEST(TvmTiling, Feasibility) {
  const DeviceSpec d = make_a100();
  const ConvShape s = ConvShape::same(64, 32, 28, 3);
  EXPECT_TRUE(tvm_tiling_feasible(d, s, {8, 8, 8}));
  EXPECT_FALSE(tvm_tiling_feasible(d, s, {64, 8, 8}));  // th > OH
  EXPECT_FALSE(tvm_tiling_feasible(d, s, {8, 8, 64}));  // n_grid > N
  EXPECT_FALSE(tvm_tiling_feasible(d, s, {0, 8, 8}));
}

TEST(TvmTiling, ChannelChunking) {
  const ConvShape s = ConvShape::same(64, 48, 28, 3);
  EXPECT_EQ(tvm_n_chunk(s, {4, 4, 1}), 48);
  EXPECT_EQ(tvm_n_chunk(s, {4, 4, 8}), 6);
  EXPECT_EQ(tvm_n_chunk(s, {4, 4, 48}), 1);
}

TEST(TvmLaunch, GridCoversHwAndN) {
  const DeviceSpec d = make_a100();
  const ConvShape s = ConvShape::same(64, 32, 28, 3);
  const KernelLaunch l = tvm_scheme_launch(d, s, {7, 7, 8});
  EXPECT_EQ(l.num_blocks, 4 * 4 * 8);
  EXPECT_EQ(l.block.threads, 49);
}

TEST(TvmLaunch, NoInputChannelSplit) {
  // The defining limitation (paper §5.1): the grid never grows with C; the
  // whole C extent is a serial in-block loop guarded by barriers.
  const DeviceSpec d = make_a100();
  const TvmTiling t{7, 7, 4};
  const KernelLaunch small_c =
      tvm_scheme_launch(d, ConvShape::same(32, 32, 28, 3), t);
  const KernelLaunch big_c =
      tvm_scheme_launch(d, ConvShape::same(256, 32, 28, 3), t);
  EXPECT_EQ(small_c.num_blocks, big_c.num_blocks);
  EXPECT_GT(big_c.sync_count, small_c.sync_count);
}

TEST(TvmLaunch, TwoBarriersPerChannelIteration) {
  const DeviceSpec d = make_a100();
  const ConvShape s = ConvShape::same(64, 32, 28, 3);
  const KernelLaunch l = tvm_scheme_launch(d, s, {7, 7, 8});
  EXPECT_EQ(l.sync_count, 2 * 64);  // Listing 1 lines 1–2
}

TEST(TvmFunctional, MatchesReference) {
  Rng rng(141);
  for (const ConvShape& s :
       {ConvShape::same(8, 8, 12, 3), ConvShape::valid_conv(6, 4, 10, 10, 3, 3),
        ConvShape::same(8, 16, 14, 3, 2), ConvShape::same(5, 7, 9, 5)}) {
    const Tensor x = Tensor::random_uniform({s.c, s.h, s.w}, rng);
    const Tensor k = Tensor::random_uniform({s.c, s.n, s.r, s.s}, rng);
    const Tensor ref = conv2d_reference(x, k, s);
    const Tensor out = tvm_scheme_conv(x, k, s, {4, 4, 4});
    EXPECT_LT(Tensor::rel_error(out, ref), 1e-4) << s.to_string();
  }
}

TEST(TvmFunctional, RaggedTiles) {
  Rng rng(143);
  const ConvShape s = ConvShape::same(4, 4, 11, 3);
  const Tensor x = Tensor::random_uniform({4, 11, 11}, rng);
  const Tensor k = Tensor::random_uniform({4, 4, 3, 3}, rng);
  const Tensor ref = conv2d_reference(x, k, s);
  EXPECT_LT(Tensor::rel_error(tvm_scheme_conv(x, k, s, {4, 3, 2}), ref), 1e-4);
}

TEST(TvmTuning, SelectedTilingIsFeasibleAndBest) {
  const DeviceSpec d = make_rtx2080ti();
  const ConvShape s = ConvShape::same(32, 32, 28, 3);
  const TvmTiling best = select_tvm_tiling(d, s);
  EXPECT_TRUE(tvm_tiling_feasible(d, s, best));
  const double best_latency = tvm_scheme_cost(d, s, best).total_s;
  // Probe a few other tilings — none may beat the tuner's pick.
  for (const TvmTiling& probe :
       {TvmTiling{1, 1, 1}, {4, 4, 4}, {8, 8, 8}, {14, 14, 16}}) {
    if (tvm_tiling_feasible(d, s, probe)) {
      EXPECT_GE(tvm_scheme_cost(d, s, probe).total_s, best_latency * 0.999);
    }
  }
}

TEST(TvmCost, MoreSyncsSlowerWithMoreChannels) {
  const DeviceSpec d = make_a100();
  const TvmTiling t{7, 7, 8};
  const double c64 =
      tvm_scheme_cost(d, ConvShape::same(64, 32, 28, 3), t).total_s;
  const double c256 =
      tvm_scheme_cost(d, ConvShape::same(256, 32, 28, 3), t).total_s;
  EXPECT_GT(c256, c64);
}

TEST(TvmCost, BestCostMatchesSelectedTiling) {
  const DeviceSpec d = make_a100();
  const ConvShape s = ConvShape::same(96, 64, 28, 3);
  EXPECT_DOUBLE_EQ(tvm_best_cost(d, s).total_s,
                   tvm_scheme_cost(d, s, select_tvm_tiling(d, s)).total_s);
}

}  // namespace
}  // namespace tdc
