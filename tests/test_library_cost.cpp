#include <gtest/gtest.h>

#include "common/check.h"
#include "gpusim/library_cost.h"
#include "nn/models.h"

namespace tdc {
namespace {

TEST(ImplicitGemm, PositiveAndFinite) {
  const DeviceSpec d = make_a100();
  const LatencyBreakdown b =
      cudnn_implicit_gemm_cost(d, ConvShape::same(64, 64, 56, 3));
  EXPECT_GT(b.total_s, 0.0);
  EXPECT_LT(b.total_s, 0.1);
}

TEST(ImplicitGemm, MoreWorkTakesLonger) {
  const DeviceSpec d = make_a100();
  const double small =
      cudnn_implicit_gemm_cost(d, ConvShape::same(32, 32, 14, 3)).total_s;
  const double big =
      cudnn_implicit_gemm_cost(d, ConvShape::same(256, 256, 56, 3)).total_s;
  EXPECT_GT(big, small * 5);
}

TEST(ImplicitGemm, SmallProblemsUnderutilize) {
  // Latency per FLOP should be far worse for a tiny Tucker-core shape than
  // for a large dense layer — the paper's central observation.
  const DeviceSpec d = make_a100();
  const ConvShape tiny = ConvShape::same(32, 32, 14, 3);
  const ConvShape large = ConvShape::same(512, 512, 28, 3);
  const double tiny_eff =
      tiny.flops() / cudnn_implicit_gemm_cost(d, tiny).total_s;
  const double large_eff =
      large.flops() / cudnn_implicit_gemm_cost(d, large).total_s;
  EXPECT_GT(large_eff, tiny_eff * 10);
}

TEST(ImplicitGemm, SupportsStrideAndOneByOne) {
  const DeviceSpec d = make_a100();
  EXPECT_NO_THROW(cudnn_implicit_gemm_cost(d, ConvShape::same(64, 128, 56, 1)));
  EXPECT_NO_THROW(
      cudnn_implicit_gemm_cost(d, ConvShape::same(64, 128, 56, 3, 2)));
  EXPECT_NO_THROW(
      cudnn_implicit_gemm_cost(d, ConvShape::same(3, 64, 224, 7, 2)));
}

TEST(Winograd, RequiresThreeByThreeStrideOne) {
  const DeviceSpec d = make_a100();
  EXPECT_THROW(cudnn_winograd_cost(d, ConvShape::same(8, 8, 14, 5)), Error);
  EXPECT_THROW(cudnn_winograd_cost(d, ConvShape::same(8, 8, 14, 3, 2)), Error);
  EXPECT_NO_THROW(cudnn_winograd_cost(d, ConvShape::same(8, 8, 14, 3)));
}

TEST(Winograd, FourKernelSequence) {
  const DeviceSpec d = make_a100();
  const LatencyBreakdown b = cudnn_winograd_cost(d, ConvShape::same(64, 64, 28, 3));
  EXPECT_NEAR(b.launch_s, 4.0 * d.launch_overhead_s, 1e-12);
}

TEST(Fft, RequiresStrideOne) {
  const DeviceSpec d = make_a100();
  EXPECT_THROW(cudnn_fft_cost(d, ConvShape::same(8, 8, 14, 3, 2)), Error);
  EXPECT_NO_THROW(cudnn_fft_cost(d, ConvShape::same(8, 8, 14, 5)));
}

TEST(Fft, SlowestOnSmallTuckerShapes) {
  // On the paper's small core shapes, FFT must lose to implicit GEMM and
  // Winograd (Figures 6–7 ordering).
  const DeviceSpec d = make_a100();
  for (const ConvShape& s :
       {ConvShape::same(32, 32, 28, 3), ConvShape::same(64, 32, 14, 3)}) {
    const double fft = cudnn_fft_cost(d, s).total_s;
    const double wino = cudnn_winograd_cost(d, s).total_s;
    EXPECT_GT(fft, wino) << s.to_string();
  }
}

TEST(LibraryDispatch, MatchesUnderlying) {
  const DeviceSpec d = make_rtx2080ti();
  const ConvShape s = ConvShape::same(32, 32, 28, 3);
  EXPECT_DOUBLE_EQ(library_conv_cost(ConvAlgo::kWinograd, d, s).total_s,
                   cudnn_winograd_cost(d, s).total_s);
  EXPECT_DOUBLE_EQ(library_conv_cost(ConvAlgo::kFft, d, s).total_s,
                   cudnn_fft_cost(d, s).total_s);
  EXPECT_DOUBLE_EQ(library_conv_cost(ConvAlgo::kIm2col, d, s).total_s,
                   cudnn_implicit_gemm_cost(d, s).total_s);
}

TEST(Elementwise, BandwidthScaling) {
  const DeviceSpec d = make_a100();
  const double small = elementwise_cost(d, 1e4, 1e4).total_s;
  const double big = elementwise_cost(d, 1e8, 1e8).total_s;
  EXPECT_GT(big, small * 10);
  EXPECT_GE(small, d.launch_overhead_s);
}

TEST(FullyConnected, WeightBandwidthBound) {
  // With the grid large enough to fill the device, doubling the weight
  // matrix roughly doubles the (bandwidth-bound) cost.
  const DeviceSpec d = make_a100();
  const double t1 = fully_connected_cost(d, 4096, 4096).total_s;
  const double t2 = fully_connected_cost(d, 4096, 8192).total_s;
  EXPECT_GT(t2, t1 * 1.6);
  EXPECT_LT(t2, t1 * 2.4);
}

TEST(DeviceComparison, A100FasterThan2080TiWhenSaturated) {
  // On device-filling work the A100 wins on both FLOPs and bandwidth. (On
  // tiny grids the 2080 Ti's higher per-SM clock can locally win — which is
  // physical, so only the saturated case is asserted.)
  const DeviceSpec a = make_a100();
  const DeviceSpec t = make_rtx2080ti();
  const ConvShape s = ConvShape::same(512, 512, 56, 3);
  EXPECT_LT(cudnn_implicit_gemm_cost(a, s).total_s,
            cudnn_implicit_gemm_cost(t, s).total_s);
  EXPECT_LT(elementwise_cost(a, 1e8, 1e8).total_s,
            elementwise_cost(t, 1e8, 1e8).total_s);
}

TEST(PaperShapes, AllCostModelsRunOnFigure6Shapes) {
  const DeviceSpec a100 = make_a100();
  const DeviceSpec ti = make_rtx2080ti();
  for (const ConvShape& s : figure6_core_shapes()) {
    for (const DeviceSpec& d : {a100, ti}) {
      EXPECT_GT(cudnn_implicit_gemm_cost(d, s).total_s, 0.0) << s.to_string();
      EXPECT_GT(cudnn_winograd_cost(d, s).total_s, 0.0) << s.to_string();
      EXPECT_GT(cudnn_fft_cost(d, s).total_s, 0.0) << s.to_string();
    }
  }
}

}  // namespace
}  // namespace tdc
