#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "core/tdc_model.h"

namespace tdc {
namespace {

TEST(PaperModel, BlockLatencyFormula) {
  // comp_latency_blk = 2·(TH+R−1)(TW+S−1)·TC·R·S·GPU_ths / GPU_peak.
  const DeviceSpec d = make_a100();
  const ConvShape s = ConvShape::same(64, 32, 28, 3);
  const TdcTiling t{4, 5, 16};
  const double expected = 2.0 * 6 * 7 * 16 * 9 *
                          static_cast<double>(d.total_threads()) / d.peak_flops;
  EXPECT_DOUBLE_EQ(paper_comp_latency_block(d, s, t), expected);
}

TEST(PaperModel, BlockLatencyIndependentOfN) {
  // N cancels in the paper's per-block latency (blk_peak scales with N).
  const DeviceSpec d = make_a100();
  const ConvShape s32 = ConvShape::same(64, 32, 28, 3);
  const ConvShape s128 = ConvShape::same(64, 128, 28, 3);
  const TdcTiling t{4, 4, 16};
  EXPECT_DOUBLE_EQ(paper_comp_latency_block(d, s32, t),
                   paper_comp_latency_block(d, s128, t));
}

TEST(PaperModel, WavesCeilBehaviour) {
  const DeviceSpec d = make_a100();
  const ConvShape s = ConvShape::same(64, 32, 28, 3);
  const TdcTiling t{4, 4, 16};
  const double waves = paper_comp_waves(d, s, t);
  EXPECT_GE(waves, 1.0);
  EXPECT_DOUBLE_EQ(waves, std::ceil(waves));
}

TEST(PaperModel, MemVolumeDecomposition) {
  // Eq. 19 = Eq. 16 + Eq. 17 + Eq. 18 with our R·S restoration on Eq. 16.
  const ConvShape s = ConvShape::valid_conv(16, 8, 12, 12, 3, 3);
  const TdcTiling t{5, 5, 4};
  const double blocks_hw = 2.0 * 2.0;  // ceil(10/5)^2
  const double vol_x = blocks_hw * 16 * 7 * 7;
  const double vol_k = blocks_hw * 16.0 * 8 * 9;
  const double vol_y = 10.0 * 10 * 8 * 4;  // ceil(16/4) C partitions
  EXPECT_DOUBLE_EQ(paper_mem_volume(s, t), vol_x + vol_k + vol_y);
}

TEST(PaperModel, SmallerTcMeansMoreOutputTraffic) {
  const ConvShape s = ConvShape::same(64, 32, 28, 3);
  EXPECT_GT(paper_mem_volume(s, {4, 4, 1}), paper_mem_volume(s, {4, 4, 64}));
}

TEST(PaperModel, MemLatencyScalesWithBandwidth) {
  const ConvShape s = ConvShape::same(64, 32, 28, 3);
  const TdcTiling t{4, 4, 16};
  const DeviceSpec a = make_a100();
  const DeviceSpec ti = make_rtx2080ti();
  EXPECT_LT(paper_mem_latency(a, s, t), paper_mem_latency(ti, s, t));
}

TEST(Enumerate, AllFeasible) {
  const DeviceSpec d = make_a100();
  const ConvShape s = ConvShape::same(32, 32, 14, 3);
  const auto tilings = enumerate_tilings(d, s);
  EXPECT_GT(tilings.size(), 100u);
  for (const auto& t : tilings) {
    EXPECT_TRUE(tdc_tiling_feasible(d, s, t)) << t.to_string();
  }
}

TEST(Enumerate, RespectsShapeBounds) {
  const DeviceSpec d = make_a100();
  const ConvShape s = ConvShape::same(8, 16, 7, 3);
  for (const auto& t : enumerate_tilings(d, s)) {
    EXPECT_LE(t.th, 7);
    EXPECT_LE(t.tw, 7);
    EXPECT_LE(t.tc, 8);
  }
}

TEST(Selection, ModelAndOracleAreFeasible) {
  const DeviceSpec d = make_a100();
  for (const ConvShape& s :
       {ConvShape::same(32, 32, 28, 3), ConvShape::same(64, 32, 14, 3)}) {
    const TdcTiling m = select_tiling_model(d, s);
    const TdcTiling o = select_tiling_oracle(d, s);
    EXPECT_TRUE(tdc_tiling_feasible(d, s, m)) << s.to_string();
    EXPECT_TRUE(tdc_tiling_feasible(d, s, o)) << s.to_string();
  }
}

TEST(Selection, OracleNeverWorseThanModelUnderSimulatedLatency) {
  // The oracle minimizes the simulated latency directly, so by construction
  // it must be at least as fast as the analytically chosen tiling.
  const DeviceSpec d = make_rtx2080ti();
  for (const ConvShape& s :
       {ConvShape::same(32, 32, 28, 3), ConvShape::same(96, 64, 28, 3),
        ConvShape::same(64, 32, 14, 3), ConvShape::same(192, 160, 7, 3)}) {
    const double model =
        tdc_core_cost(d, s, select_tiling_model(d, s)).total_s;
    const double oracle =
        tdc_core_cost(d, s, select_tiling_oracle(d, s)).total_s;
    EXPECT_LE(oracle, model * (1.0 + 1e-9)) << s.to_string();
  }
}

TEST(Selection, ModelWithinFactorTwoOfOracle) {
  // Paper §5.5: the analytical model costs ~25 % over the oracle; assert a
  // generous envelope so the property survives recalibration.
  const DeviceSpec d = make_a100();
  for (const ConvShape& s :
       {ConvShape::same(32, 32, 28, 3), ConvShape::same(64, 64, 56, 3),
        ConvShape::same(96, 64, 7, 3)}) {
    const double model =
        tdc_core_cost(d, s, select_tiling_model(d, s)).total_s;
    const double oracle =
        tdc_core_cost(d, s, select_tiling_oracle(d, s)).total_s;
    EXPECT_LE(model, oracle * 2.0) << s.to_string();
  }
}

TEST(Selection, DispatchEnum) {
  const DeviceSpec d = make_a100();
  const ConvShape s = ConvShape::same(32, 32, 14, 3);
  EXPECT_EQ(select_tiling(TilingSelector::kModel, d, s),
            select_tiling_model(d, s));
  EXPECT_EQ(select_tiling(TilingSelector::kOracle, d, s),
            select_tiling_oracle(d, s));
}

TEST(Selection, CacheReturnsSameTiling) {
  const DeviceSpec d = make_a100();
  const ConvShape s = ConvShape::same(48, 32, 14, 3);
  const TdcTiling first = select_tiling_oracle(d, s);
  const TdcTiling second = select_tiling_oracle(d, s);
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace tdc
