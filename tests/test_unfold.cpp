#include <gtest/gtest.h>

#include "common/check.h"
#include "linalg/gemm.h"
#include "tensor/unfold.h"

namespace tdc {
namespace {

TEST(Unfold, ShapesAreModeByRest) {
  Tensor t({3, 4, 5, 6});
  for (int mode = 0; mode < 4; ++mode) {
    const Tensor m = unfold_mode(t, mode);
    EXPECT_EQ(m.dim(0), t.dim(mode));
    EXPECT_EQ(m.dim(1), t.numel() / t.dim(mode));
  }
}

TEST(Unfold, FoldInvertsUnfoldAllModes) {
  Rng rng(21);
  const Tensor t = Tensor::random_uniform({3, 4, 2, 5}, rng);
  for (int mode = 0; mode < 4; ++mode) {
    const Tensor back = fold_mode(unfold_mode(t, mode), mode, t.dims());
    EXPECT_EQ(Tensor::max_abs_diff(t, back), 0.0) << "mode " << mode;
  }
}

TEST(Unfold, Mode0RowsAreContiguousSlices) {
  // For mode 0 of a row-major tensor, row i must equal the i-th slab.
  Rng rng(23);
  const Tensor t = Tensor::random_uniform({3, 4, 5}, rng);
  const Tensor m = unfold_mode(t, 0);
  for (std::int64_t i = 0; i < 3; ++i) {
    for (std::int64_t j = 0; j < 20; ++j) {
      EXPECT_EQ(m(i, j), t[i * 20 + j]);
    }
  }
}

TEST(Unfold, InvalidModeThrows) {
  Tensor t({2, 2});
  EXPECT_THROW(unfold_mode(t, 2), Error);
  EXPECT_THROW(unfold_mode(t, -1), Error);
}

TEST(Unfold, FoldValidatesShapes) {
  Tensor m({3, 8});
  EXPECT_THROW(fold_mode(m, 0, {4, 6}), Error);   // row mismatch
  EXPECT_THROW(fold_mode(m, 0, {3, 9}), Error);   // count mismatch
}

TEST(ModeProduct, MatchesUnfoldGemmFold) {
  Rng rng(25);
  const Tensor t = Tensor::random_uniform({3, 4, 5}, rng);
  const Tensor a = Tensor::random_uniform({4, 7}, rng);
  const Tensor direct = mode_product(t, a, 1);

  // Reference: unfold along mode 1, multiply A^T · M, fold back.
  const Tensor m = unfold_mode(t, 1);          // [4, 15]
  const Tensor prod = matmul(transpose2d(a), m);  // [7, 15]
  const Tensor expected = fold_mode(prod, 1, {3, 7, 5});
  EXPECT_LT(Tensor::max_abs_diff(direct, expected), 1e-5);
}

TEST(ModeProduct, IdentityMatrixIsNoop) {
  Rng rng(27);
  const Tensor t = Tensor::random_uniform({2, 3, 4}, rng);
  Tensor eye({3, 3});
  for (std::int64_t i = 0; i < 3; ++i) {
    eye(i, i) = 1.0f;
  }
  const Tensor out = mode_product(t, eye, 1);
  EXPECT_LT(Tensor::max_abs_diff(t, out), 1e-6);
}

TEST(ModeProduct, ChangesOnlyTargetMode) {
  Rng rng(29);
  const Tensor t = Tensor::random_uniform({2, 3, 4}, rng);
  const Tensor a = Tensor::random_uniform({4, 9}, rng);
  const Tensor out = mode_product(t, a, 2);
  EXPECT_EQ(out.dim(0), 2);
  EXPECT_EQ(out.dim(1), 3);
  EXPECT_EQ(out.dim(2), 9);
}

TEST(ModeProduct, CommutesAcrossDistinctModes) {
  // (T ×_0 A) ×_1 B == (T ×_1 B) ×_0 A — the property HOSVD relies on.
  Rng rng(31);
  const Tensor t = Tensor::random_uniform({3, 4, 2, 2}, rng);
  const Tensor a = Tensor::random_uniform({3, 5}, rng);
  const Tensor b = Tensor::random_uniform({4, 6}, rng);
  const Tensor ab = mode_product(mode_product(t, a, 0), b, 1);
  const Tensor ba = mode_product(mode_product(t, b, 1), a, 0);
  EXPECT_LT(Tensor::max_abs_diff(ab, ba), 1e-5);
}

TEST(ModeProduct, InnerDimMismatchThrows) {
  Tensor t({2, 3});
  Tensor a({4, 2});
  EXPECT_THROW(mode_product(t, a, 1), Error);
}

}  // namespace
}  // namespace tdc
