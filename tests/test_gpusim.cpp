#include <gtest/gtest.h>

#include "common/check.h"
#include "gpusim/device.h"
#include "gpusim/launch.h"
#include "gpusim/occupancy.h"

namespace tdc {
namespace {

TEST(Device, PaperSmCounts) {
  EXPECT_EQ(make_a100().sms, 108);        // paper §7.1
  EXPECT_EQ(make_rtx2080ti().sms, 68);    // paper §7.1
}

TEST(Device, LookupByName) {
  EXPECT_EQ(device_by_name("a100").name, "A100");
  EXPECT_EQ(device_by_name("2080ti").name, "2080Ti");
  EXPECT_THROW(device_by_name("h100"), Error);
}

TEST(Device, TotalThreads) {
  EXPECT_EQ(make_a100().total_threads(), 108LL * 2048);
  EXPECT_EQ(make_rtx2080ti().total_threads(), 68LL * 1024);
}

TEST(Device, ModelTopFractionMatchesPaper) {
  EXPECT_DOUBLE_EQ(make_a100().model_top_fraction, 0.05);
  EXPECT_DOUBLE_EQ(make_rtx2080ti().model_top_fraction, 0.15);
}

TEST(Occupancy, ThreadLimited) {
  const DeviceSpec d = make_a100();
  const OccupancyResult r = compute_occupancy(d, {256, 0, 32});
  EXPECT_TRUE(r.launchable);
  EXPECT_EQ(r.blocks_per_sm, 2048 / 256);
  EXPECT_DOUBLE_EQ(r.occupancy, 1.0);
  EXPECT_STREQ(r.limiter, "threads");
}

TEST(Occupancy, SharedMemoryLimited) {
  const DeviceSpec d = make_a100();
  // 40 KB/block: 164 KB/SM -> 4 blocks.
  const OccupancyResult r = compute_occupancy(d, {64, 40 * 1024, 32});
  EXPECT_TRUE(r.launchable);
  EXPECT_EQ(r.blocks_per_sm, 4);
  EXPECT_STREQ(r.limiter, "smem");
}

TEST(Occupancy, RegisterLimited) {
  const DeviceSpec d = make_a100();
  // 255 regs × 256 threads = 65280 per block -> 1 block/SM on 64K regs.
  const OccupancyResult r = compute_occupancy(d, {256, 0, 255});
  EXPECT_TRUE(r.launchable);
  EXPECT_EQ(r.blocks_per_sm, 1);
  EXPECT_STREQ(r.limiter, "regs");
}

TEST(Occupancy, WarpRounding) {
  const DeviceSpec d = make_a100();
  // 33 threads occupy 2 warps of resources.
  const OccupancyResult r33 = compute_occupancy(d, {33, 0, 32});
  const OccupancyResult r64 = compute_occupancy(d, {64, 0, 32});
  EXPECT_EQ(r33.blocks_per_sm, r64.blocks_per_sm);
}

TEST(Occupancy, UnlaunchableBlocks) {
  const DeviceSpec d = make_rtx2080ti();
  EXPECT_FALSE(compute_occupancy(d, {2048, 0, 32}).launchable);   // threads
  EXPECT_FALSE(compute_occupancy(d, {64, 100 * 1024, 32}).launchable);  // smem
  EXPECT_FALSE(compute_occupancy(d, {64, 0, 300}).launchable);    // regs
}

TEST(Occupancy, BlockCountCap) {
  const DeviceSpec d = make_a100();
  // Tiny blocks hit the max-blocks-per-SM limit before the thread limit.
  const OccupancyResult r = compute_occupancy(d, {32, 0, 16});
  EXPECT_EQ(r.blocks_per_sm, d.max_blocks_per_sm);
  EXPECT_STREQ(r.limiter, "blocks");
}

TEST(Coalescing, WasteFactor) {
  EXPECT_DOUBLE_EQ(coalescing_waste_factor(32.0), 1.0);
  EXPECT_DOUBLE_EQ(coalescing_waste_factor(64.0), 1.0);
  EXPECT_DOUBLE_EQ(coalescing_waste_factor(4.0), 8.0);   // one float per sector
  EXPECT_DOUBLE_EQ(coalescing_waste_factor(48.0), 64.0 / 48.0);
}

KernelLaunch basic_launch(std::int64_t blocks, int threads) {
  KernelLaunch l;
  l.label = "test";
  l.num_blocks = blocks;
  l.block.threads = threads;
  l.block.regs_per_thread = 32;
  l.flops_per_block = 1e6;
  l.bytes_read = 1e5;
  l.bytes_written = 1e4;
  l.ilp = 8.0;
  return l;
}

TEST(Latency, MoreBlocksTakeLonger) {
  const DeviceSpec d = make_a100();
  const double t1 = simulate_latency(d, basic_launch(108, 256)).total_s;
  const double t2 = simulate_latency(d, basic_launch(108 * 16, 256)).total_s;
  EXPECT_GT(t2, t1 * 4);
}

TEST(Latency, LaunchOverheadFloorsTinyKernels) {
  const DeviceSpec d = make_a100();
  KernelLaunch l = basic_launch(1, 32);
  l.flops_per_block = 100.0;
  l.bytes_read = 100.0;
  l.bytes_written = 0.0;
  const LatencyBreakdown b = simulate_latency(d, l);
  EXPECT_GE(b.total_s, d.launch_overhead_s);
  EXPECT_LT(b.total_s, d.launch_overhead_s * 2.0);
}

TEST(Latency, UnderUtilizationPenalizesFewWarps) {
  // Same total FLOPs spread over 1 big-work block vs many small blocks:
  // the single block cannot fill the device.
  const DeviceSpec d = make_a100();
  KernelLaunch one = basic_launch(1, 64);
  one.flops_per_block = 1e9;
  KernelLaunch many = basic_launch(1024, 64);
  many.flops_per_block = 1e9 / 1024;
  EXPECT_GT(simulate_latency(d, one).compute_s,
            simulate_latency(d, many).compute_s * 20);
}

TEST(Latency, WavesReported) {
  const DeviceSpec d = make_a100();
  const KernelLaunch l = basic_launch(108 * 8 * 3, 256);  // 8 blocks/SM
  const LatencyBreakdown b = simulate_latency(d, l);
  EXPECT_NEAR(b.waves, 3.0, 1e-9);
}

TEST(Latency, PartialTailWaveCostsLikeAWave) {
  const DeviceSpec d = make_a100();
  const double full = simulate_latency(d, basic_launch(108 * 8, 256)).compute_s;
  const double tail =
      simulate_latency(d, basic_launch(108 * 8 + 1, 256)).compute_s;
  // One extra block should cost roughly one more block's serial time, not
  // round up to double.
  EXPECT_GT(tail, full);
  EXPECT_LT(tail, full * 1.6);
}

TEST(Latency, MemoryBoundKernelScalesWithBytes) {
  const DeviceSpec d = make_a100();
  KernelLaunch l = basic_launch(10000, 256);
  l.flops_per_block = 1.0;
  l.bytes_read = 1e9;
  const double t1 = simulate_latency(d, l).total_s;
  l.bytes_read = 2e9;
  const double t2 = simulate_latency(d, l).total_s;
  EXPECT_NEAR(t2 / t1, 2.0, 0.2);
}

TEST(Latency, AtomicTrafficCostsMore) {
  const DeviceSpec d = make_a100();
  KernelLaunch plain = basic_launch(10000, 256);
  plain.flops_per_block = 1.0;
  plain.bytes_written = 1e9;
  KernelLaunch atomic = plain;
  atomic.atomic_bytes = 1e9;
  EXPECT_GT(simulate_latency(d, atomic).memory_s,
            simulate_latency(d, plain).memory_s * 1.5);
}

TEST(Latency, BarriersAddToComputePath) {
  const DeviceSpec d = make_a100();
  KernelLaunch quiet = basic_launch(108, 256);
  KernelLaunch noisy = quiet;
  noisy.sync_count = 1000;
  EXPECT_GT(simulate_latency(d, noisy).compute_s,
            simulate_latency(d, quiet).compute_s);
}

TEST(Latency, SequenceSumsLaunchOverheads) {
  const DeviceSpec d = make_a100();
  const KernelLaunch l = basic_launch(108, 256);
  const LatencyBreakdown one = simulate_latency(d, l);
  const LatencyBreakdown three = simulate_sequence(d, {l, l, l});
  EXPECT_NEAR(three.total_s, 3.0 * one.total_s, 1e-12);
  EXPECT_NEAR(three.launch_s, 3.0 * d.launch_overhead_s, 1e-12);
}

TEST(Latency, UnlaunchableThrows) {
  const DeviceSpec d = make_rtx2080ti();
  KernelLaunch l = basic_launch(10, 2048);
  EXPECT_THROW(simulate_latency(d, l), Error);
}

TEST(Latency, HigherIlpNeverSlower) {
  const DeviceSpec d = make_rtx2080ti();
  KernelLaunch low = basic_launch(68, 32);
  low.ilp = 1.0;
  KernelLaunch high = low;
  high.ilp = 8.0;
  EXPECT_LE(simulate_latency(d, high).compute_s,
            simulate_latency(d, low).compute_s);
}

}  // namespace
}  // namespace tdc
