#include <gtest/gtest.h>

#include "common/check.h"
#include "train/admm.h"
#include "train/synthetic.h"
#include "train/trainer.h"
#include "train/zoo.h"
#include "tucker/flops.h"

namespace tdc {
namespace {

SyntheticSpec tiny_spec() {
  SyntheticSpec spec;
  spec.classes = 4;
  spec.channels = 2;
  spec.hw = 8;
  spec.train_size = 192;
  spec.test_size = 96;
  spec.noise = 0.25;
  return spec;
}

TEST(Synthetic, DeterministicPerSeed) {
  const SyntheticData a = make_synthetic_data(tiny_spec());
  const SyntheticData b = make_synthetic_data(tiny_spec());
  EXPECT_EQ(Tensor::max_abs_diff(a.train.images, b.train.images), 0.0);
  EXPECT_EQ(a.train.labels, b.train.labels);
}

TEST(Synthetic, LabelsInRangeAndAllClassesPresent) {
  const SyntheticData d = make_synthetic_data(tiny_spec());
  std::vector<int> counts(4, 0);
  for (const auto l : d.train.labels) {
    ASSERT_GE(l, 0);
    ASSERT_LT(l, 4);
    ++counts[static_cast<std::size_t>(l)];
  }
  for (const int c : counts) {
    EXPECT_GT(c, 10);
  }
}

TEST(Synthetic, GatherBatch) {
  const SyntheticData d = make_synthetic_data(tiny_spec());
  const std::vector<std::size_t> idx = {5, 0, 17};
  const Dataset batch = gather_batch(d.train, idx);
  EXPECT_EQ(batch.size(), 3);
  EXPECT_EQ(batch.labels[1], d.train.labels[0]);
  const std::int64_t elems = 2 * 8 * 8;
  for (std::int64_t e = 0; e < elems; ++e) {
    EXPECT_EQ(batch.images[elems + e], d.train.images[e]);
  }
}

TEST(Zoo, MiniCnnShapes) {
  Rng rng(301);
  TrainableModel m = make_mini_cnn(8, 2, 4, 6, rng);
  const Tensor x = Tensor::random_uniform({3, 2, 8, 8}, rng);
  const Tensor y = m.net->forward(x, true);
  EXPECT_EQ(y.dim(0), 3);
  EXPECT_EQ(y.dim(1), 4);
  EXPECT_EQ(m.spatial_convs.size(), 3u);
}

TEST(Zoo, MiniResnetShapes) {
  Rng rng(303);
  MiniResNetSpec spec;
  spec.input_hw = 16;
  spec.stage_widths = {4, 8};
  TrainableModel m = make_mini_resnet(spec, rng);
  const Tensor x = Tensor::random_uniform({2, 3, 16, 16}, rng);
  const Tensor y = m.net->forward(x, true);
  EXPECT_EQ(y.dim(1), 10);
  // stem + 2 convs per block × 2 blocks.
  EXPECT_EQ(m.spatial_convs.size(), 5u);
}

TEST(Zoo, TuckerizePreservesFunctionAtFullRank) {
  Rng rng(305);
  TrainableModel m = make_mini_cnn(8, 2, 4, 6, rng);
  const Tensor x = Tensor::random_uniform({2, 2, 8, 8}, rng);
  const Tensor before = m.net->forward(x, false);

  std::vector<TuckerRanks> full_ranks;
  for (const auto& slot : m.spatial_convs) {
    full_ranks.push_back({slot.conv->geometry().c, slot.conv->geometry().n});
  }
  tuckerize_model(&m, full_ranks);
  const Tensor after = m.net->forward(x, false);
  EXPECT_LT(Tensor::rel_error(after, before), 1e-3);
}

TEST(Zoo, TuckerizeReducesFlops) {
  Rng rng(307);
  TrainableModel m = make_mini_cnn(8, 4, 4, 8, rng);
  const double before = model_forward_flops(m);
  std::vector<TuckerRanks> ranks(m.spatial_convs.size(), TuckerRanks{2, 2});
  ranks[0] = {2, 2};
  tuckerize_model(&m, ranks);
  const double after = model_forward_flops(m);
  EXPECT_LT(after, before * 0.8);
}

TEST(Zoo, TuckerizedModelStillTrains) {
  Rng rng(309);
  TrainableModel m = make_mini_cnn(8, 2, 4, 6, rng);
  std::vector<TuckerRanks> ranks;
  for (const auto& slot : m.spatial_convs) {
    ranks.push_back({std::min<std::int64_t>(3, slot.conv->geometry().c),
                     std::min<std::int64_t>(3, slot.conv->geometry().n)});
  }
  tuckerize_model(&m, ranks);
  const Tensor x = Tensor::random_uniform({2, 2, 8, 8}, rng);
  const Tensor y = m.net->forward(x, true);
  EXPECT_NO_THROW(m.net->backward(Tensor(y.dims())));
  EXPECT_FALSE(m.net->params().empty());
}

TEST(Zoo, RankValidationInSurgery) {
  Rng rng(311);
  TrainableModel m = make_mini_cnn(8, 2, 4, 6, rng);
  EXPECT_THROW(tuckerize_slot(m.spatial_convs[0], {99, 2}), Error);
}

TEST(Trainer, LossDecreasesOnTinyTask) {
  Rng rng(313);
  const SyntheticData data = make_synthetic_data(tiny_spec());
  TrainableModel m = make_mini_cnn(8, 2, 4, 8, rng);
  TrainOptions opts;
  opts.epochs = 3;
  opts.batch_size = 32;
  opts.sgd.lr = 0.05;
  const auto stats = train_model(m.net.get(), data, opts);
  ASSERT_EQ(stats.size(), 3u);
  EXPECT_LT(stats.back().loss, stats.front().loss);
}

TEST(Trainer, BeatsChanceAccuracy) {
  Rng rng(315);
  const SyntheticData data = make_synthetic_data(tiny_spec());
  TrainableModel m = make_mini_cnn(8, 2, 4, 8, rng);
  TrainOptions opts;
  opts.epochs = 4;
  opts.batch_size = 32;
  opts.sgd.lr = 0.05;
  const auto stats = train_model(m.net.get(), data, opts);
  EXPECT_GT(stats.back().test_accuracy, 0.45);  // chance = 0.25
}

TEST(Admm, PenaltyGradientPullsTowardProjection) {
  Rng rng(317);
  TrainableModel m = make_mini_cnn(8, 2, 4, 6, rng);
  Conv2d* conv = m.spatial_convs[1].conv;
  AdmmState admm({{conv, {2, 2}}}, {/*rho=*/1.0});

  conv->kernel().zero_grad();
  admm.dual_step();  // K̂ ← proj(K), M ← K − K̂
  admm.add_penalty_gradients();
  // Gradient should be nonzero (kernel is not exactly low rank) and equal to
  // ρ(K − K̂ + M) = 2ρ(K − K̂) after the first dual step.
  double norm = 0.0;
  for (std::int64_t i = 0; i < conv->kernel().grad.numel(); ++i) {
    norm += std::abs(conv->kernel().grad[i]);
  }
  EXPECT_GT(norm, 0.0);
}

TEST(Admm, ResidualDrivenDownByTraining) {
  Rng rng(319);
  const SyntheticData data = make_synthetic_data(tiny_spec());
  TrainableModel m = make_mini_cnn(8, 2, 4, 8, rng);
  std::vector<AdmmTarget> targets;
  for (const auto& slot : m.spatial_convs) {
    targets.push_back(
        {slot.conv,
         {std::max<std::int64_t>(2, slot.conv->geometry().c / 2),
          std::max<std::int64_t>(2, slot.conv->geometry().n / 2)}});
  }
  // ρ must be strong enough relative to the per-epoch step count for the
  // proximal pull to outpace the dual accumulation.
  AdmmState admm(targets, {/*rho=*/1.0});

  TrainOptions opts;
  opts.epochs = 8;
  opts.batch_size = 16;
  opts.sgd.lr = 0.05;
  const auto stats = train_model(m.net.get(), data, opts, &admm);
  EXPECT_LT(stats.back().admm_residual, stats.front().admm_residual);
  EXPECT_LT(stats.back().admm_residual, 0.35);
}

TEST(Admm, ProjectedModelLosesLittleAccuracyAfterAdmm) {
  // The end-to-end property behind Table 2: after ADMM training, hard
  // truncation to the target ranks barely changes the kernels.
  Rng rng(321);
  const SyntheticData data = make_synthetic_data(tiny_spec());
  TrainableModel m = make_mini_cnn(8, 2, 4, 8, rng);
  std::vector<AdmmTarget> targets;
  std::vector<TuckerRanks> ranks;
  for (const auto& slot : m.spatial_convs) {
    const TuckerRanks r{std::max<std::int64_t>(2, slot.conv->geometry().c / 2),
                        std::max<std::int64_t>(2, slot.conv->geometry().n / 2)};
    targets.push_back({slot.conv, r});
    ranks.push_back(r);
  }
  AdmmState admm(targets, {/*rho=*/1.0});
  TrainOptions opts;
  opts.epochs = 8;
  opts.batch_size = 16;
  opts.sgd.lr = 0.05;
  train_model(m.net.get(), data, opts, &admm);

  const double acc_before = evaluate_accuracy(m.net.get(), data.test);
  tuckerize_model(&m, ranks);
  const double acc_after = evaluate_accuracy(m.net.get(), data.test);
  EXPECT_GT(acc_after, acc_before - 0.12);
}

TEST(Admm, ValidatesTargets) {
  Rng rng(323);
  TrainableModel m = make_mini_cnn(8, 2, 4, 6, rng);
  EXPECT_THROW(AdmmState({}, {}), Error);
  EXPECT_THROW(AdmmState({{m.spatial_convs[0].conv, {0, 1}}}, {}), Error);
}

}  // namespace
}  // namespace tdc
