// Fault-injection and recovery tests (common/fault.h, common/deadline.h,
// the ErrorCode taxonomy of common/check.h, and the crash-safe autotune
// cache): every injected fault must surface as a typed tdc::Error without
// aborting the process, and after the fault the very same process must serve
// a run that is bitwise identical to one from a never-faulted session. The
// EnvDriven suite at the bottom is driven by the CI TDC_FAULT matrix.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/alloc_guard.h"
#include "common/check.h"
#include "common/deadline.h"
#include "common/fault.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "exec/autotune.h"
#include "exec/graph_plan.h"
#include "exec/workspace_guard.h"
#include "gpusim/device.h"
#include "linalg/gemm.h"
#include "nn/models.h"

namespace tdc {
namespace {

// Every test leaves the process exactly as it found it: no armed faults, no
// finite screening, no ambient deadline (DeadlineScope is RAII already).
class FaultTest : public ::testing::Test {
 protected:
  void TearDown() override {
    fault_disarm_all();
    set_check_finite(false);
  }
};

ErrorCode run_and_code(const std::function<void()>& f) {
  try {
    f();
  } catch (const Error& e) {
    return e.code();
  }
  ADD_FAILURE() << "expected a tdc::Error";
  return ErrorCode::kInternal;
}

// Small real inventory for the recovery tests: ResNet-20/CIFAR, dense,
// pinned im2col so compiles are fast and bit-deterministic.
struct Serving {
  Serving() {
    SessionOptions options;
    options.dense_algo = ConvAlgo::kIm2col;
    model = make_resnet20_cifar();
    weights = random_model_weights(model, 2026);
    session = InferenceSession::compile(make_a100(), model, weights, {},
                                        options);
    Rng rng(7);
    x = Tensor::random_uniform({session.input_shape().c,
                                session.input_shape().h,
                                session.input_shape().w},
                               rng, -1.0f, 1.0f);
    y = Tensor({session.output_shape().c, session.output_shape().h,
                session.output_shape().w});
    workspace.resize(
        static_cast<std::size_t>(session.workspace_bytes() / sizeof(float)));
  }

  Tensor run_clean() const {
    Tensor out({session.output_shape().c, session.output_shape().h,
                session.output_shape().w});
    std::vector<float> ws(workspace.size());
    session.run(x, &out, ws);
    return out;
  }

  ModelSpec model;
  std::vector<LayerWeights> weights;
  InferenceSession session;
  Tensor x;
  Tensor y;
  std::vector<float> workspace;
};

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void write_file(const std::string& path, const std::string& body) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << body;
}

bool file_exists(const std::string& path) {
  return std::ifstream(path).good();
}

// ---------------------------------------------------------------------------
// Fault registry semantics.

TEST_F(FaultTest, DisarmedPointNeverFires) {
  EXPECT_FALSE(fault_injected("test.nothing"));
  EXPECT_FALSE(fault_armed("test.nothing"));
  EXPECT_EQ(fault_fire_count("test.nothing"), 0);
}

TEST_F(FaultTest, CountedFiresThenAutoDisarms) {
  fault_arm("test.point", FaultSpec{.skip = 0, .count = 2, .param = 7.5});
  EXPECT_TRUE(fault_armed("test.point"));
  double param = 0.0;
  EXPECT_TRUE(fault_injected("test.point", &param));
  EXPECT_EQ(param, 7.5);
  EXPECT_TRUE(fault_injected("test.point"));
  EXPECT_FALSE(fault_injected("test.point")) << "count exhausted";
  EXPECT_FALSE(fault_armed("test.point"));
  EXPECT_EQ(fault_fire_count("test.point"), 2);
}

TEST_F(FaultTest, SkipDelaysTheFirstFire) {
  fault_arm("test.skip", FaultSpec{.skip = 2, .count = 1});
  EXPECT_FALSE(fault_injected("test.skip"));
  EXPECT_FALSE(fault_injected("test.skip"));
  EXPECT_TRUE(fault_injected("test.skip"));
  EXPECT_FALSE(fault_injected("test.skip"));
  EXPECT_EQ(fault_fire_count("test.skip"), 1);
}

TEST_F(FaultTest, UnlimitedCountStaysArmed) {
  fault_arm("test.forever");  // default count = -1
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(fault_injected("test.forever"));
  }
  EXPECT_TRUE(fault_armed("test.forever"));
  EXPECT_EQ(fault_fire_count("test.forever"), 100);
  fault_disarm("test.forever");
  EXPECT_FALSE(fault_injected("test.forever"));
  EXPECT_EQ(fault_fire_count("test.forever"), 100)
      << "disarm keeps statistics";
}

TEST_F(FaultTest, EnvGrammarParsesParamSkipCountAndLists) {
  ::setenv("TDC_FAULT", "test.a=12.5:1:2;test.b", 1);
  fault_disarm_all();  // forget the old parse; next query re-reads the env
  EXPECT_TRUE(fault_armed("test.a"));
  EXPECT_TRUE(fault_armed("test.b"));
  double param = 0.0;
  EXPECT_FALSE(fault_injected("test.a", &param)) << "skip=1";
  EXPECT_TRUE(fault_injected("test.a", &param));
  EXPECT_EQ(param, 12.5);
  EXPECT_TRUE(fault_injected("test.a"));
  EXPECT_FALSE(fault_injected("test.a")) << "count=2 exhausted";
  EXPECT_TRUE(fault_injected("test.b"));
  EXPECT_FALSE(fault_injected("test.b")) << "env points default to count=1";
  ::unsetenv("TDC_FAULT");
  fault_disarm_all();
}

// ---------------------------------------------------------------------------
// Error taxonomy.

TEST_F(FaultTest, ErrorCodesAndNames) {
  EXPECT_EQ(Error("plain").code(), ErrorCode::kInternal);
  EXPECT_EQ(run_and_code([] { TDC_CHECK(1 == 2); }),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(run_and_code([] { TDC_CHECK_INTERNAL(false, "bug"); }),
            ErrorCode::kInternal);
  EXPECT_STREQ(error_code_name(ErrorCode::kInvalidArgument),
               "invalid_argument");
  EXPECT_STREQ(error_code_name(ErrorCode::kResourceExhausted),
               "resource_exhausted");
  EXPECT_STREQ(error_code_name(ErrorCode::kDeadlineExceeded),
               "deadline_exceeded");
  EXPECT_STREQ(error_code_name(ErrorCode::kDataCorruption),
               "data_corruption");
  EXPECT_STREQ(error_code_name(ErrorCode::kInternal), "internal");
}

TEST_F(FaultTest, MapResourceFailureTranslatesBadAlloc) {
  EXPECT_EQ(run_and_code([] {
              map_resource_failure("unit test",
                                   [] { throw std::bad_alloc(); });
            }),
            ErrorCode::kResourceExhausted);
}

// ---------------------------------------------------------------------------
// Recovery invariants: typed error, then bitwise-identical rerun.

TEST_F(FaultTest, CompileAllocFailureRecoversBitIdentical) {
  Serving ref;  // never-faulted reference
  const Tensor y_ref = ref.run_clean();

  fault_arm("exec.compile_alloc", FaultSpec{.count = 1});
  EXPECT_EQ(run_and_code([&] { Serving faulted; }),
            ErrorCode::kResourceExhausted);
  EXPECT_EQ(fault_fire_count("exec.compile_alloc"), 1);

  Serving recovered;  // fault exhausted: same process compiles clean
  EXPECT_EQ(Tensor::max_abs_diff(recovered.run_clean(), y_ref), 0.0);
}

TEST_F(FaultTest, RunAllocFailureLeavesSessionReusable) {
  Serving s;
  const Tensor y_ref = s.run_clean();
  fault_arm("exec.run_alloc", FaultSpec{.count = 1});
  EXPECT_EQ(run_and_code([&] { s.session.run(s.x); }),
            ErrorCode::kResourceExhausted);
  EXPECT_EQ(Tensor::max_abs_diff(s.session.run(s.x), y_ref), 0.0);
}

TEST_F(FaultTest, NanPoisonedOpSurfacesAsDataCorruption) {
  Serving s;
  const Tensor y_ref = s.run_clean();
  set_check_finite(true);
  fault_arm("exec.op_nan", FaultSpec{.count = 1});
  try {
    s.session.run(s.x, &s.y, s.workspace);
    FAIL() << "expected kDataCorruption";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kDataCorruption);
    EXPECT_NE(std::string(e.what()).find("non-finite"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("op '"), std::string::npos)
        << "the error must name the poisoned op: " << e.what();
  }
  // Fault exhausted; the same session and workspace serve a clean run.
  s.session.run(s.x, &s.y, s.workspace);
  EXPECT_EQ(Tensor::max_abs_diff(s.y, y_ref), 0.0);
}

TEST_F(FaultTest, NonFiniteInputRejectedAsInvalidArgument) {
  Serving s;
  const Tensor y_ref = s.run_clean();
  set_check_finite(true);
  Tensor bad = s.x;
  bad[0] = std::numeric_limits<float>::quiet_NaN();
  EXPECT_EQ(run_and_code([&] { s.session.run(bad, &s.y, s.workspace); }),
            ErrorCode::kInvalidArgument);
  s.session.run(s.x, &s.y, s.workspace);
  EXPECT_EQ(Tensor::max_abs_diff(s.y, y_ref), 0.0);
}

TEST_F(FaultTest, FiniteScreeningOffByDefaultLetsNanThrough) {
  Serving s;
  fault_arm("exec.op_nan", FaultSpec{.count = 1});
  // Screening disabled: the poison propagates instead of throwing — the
  // screen must never tax runs that did not opt in.
  EXPECT_NO_THROW(s.session.run(s.x, &s.y, s.workspace));
  EXPECT_EQ(fault_fire_count("exec.op_nan"), 1);
}

// ---------------------------------------------------------------------------
// Deadlines.

TEST_F(FaultTest, UnarmedDeadlineNeverExpires) {
  const Deadline none;
  EXPECT_FALSE(none.armed());
  EXPECT_FALSE(none.expired());
  EXPECT_EQ(none.remaining_s(), std::numeric_limits<double>::infinity());
  Serving s;
  EXPECT_NO_THROW(s.session.run(s.x, &s.y, s.workspace, none));
}

TEST_F(FaultTest, ExpiredDeadlineCancelsRunThenRecovers) {
  Serving s;
  const Tensor y_ref = s.run_clean();
  EXPECT_EQ(run_and_code([&] {
              s.session.run(s.x, &s.y, s.workspace, Deadline::after(0.0));
            }),
            ErrorCode::kDeadlineExceeded);
  // The scope is gone with the throw: the next plain run is clean and
  // bitwise identical to the never-faulted reference.
  s.session.run(s.x, &s.y, s.workspace);
  EXPECT_EQ(Tensor::max_abs_diff(s.y, y_ref), 0.0);
}

TEST_F(FaultTest, ExpiredDeadlineCancelsCompile) {
  SessionOptions options;
  options.dense_algo = ConvAlgo::kIm2col;
  const ModelSpec model = make_resnet20_cifar();
  const auto weights = random_model_weights(model, 2026);
  DeadlineScope scope(Deadline::after(0.0));
  EXPECT_EQ(run_and_code([&] {
              InferenceSession::compile(make_a100(), model, weights, {},
                                        options);
            }),
            ErrorCode::kDeadlineExceeded);
}

TEST_F(FaultTest, GemmPollsBetweenCacheBlockBands) {
  const std::int64_t n = 256;
  std::vector<float> a(static_cast<std::size_t>(n * n), 1.0f);
  std::vector<float> b(a), c(a);
  DeadlineScope scope(Deadline::after(0.0));
  EXPECT_EQ(run_and_code([&] { gemm(n, n, n, a, b, c); }),
            ErrorCode::kDeadlineExceeded);
}

TEST_F(FaultTest, DeadlineRidesIntoPoolWorkersOfBatchedRun) {
  const int prev_threads = num_threads();
  set_num_threads(4);
  Serving s;
  const std::int64_t batch = 4;
  Rng rng(11);
  const Tensor xb = Tensor::random_uniform(
      {batch, s.session.input_shape().c, s.session.input_shape().h,
       s.session.input_shape().w},
      rng, -1.0f, 1.0f);
  Tensor yb({batch, s.session.output_shape().c, s.session.output_shape().h,
             s.session.output_shape().w});
  std::vector<float> ws(static_cast<std::size_t>(
      s.session.batched_workspace_bytes(batch) / sizeof(float)));
  EXPECT_EQ(run_and_code([&] {
              s.session.run_batched(xb, &yb, ws, Deadline::after(0.0));
            }),
            ErrorCode::kDeadlineExceeded)
      << "expiry must be observed by graph walks running on pool workers";
  // Pool and session stay reusable: the clean batched rerun matches four
  // independent single-image runs bitwise.
  s.session.run_batched(xb, &yb, ws);
  const std::int64_t x_stride = s.session.input_shape().floats();
  const std::int64_t y_stride = s.session.output_shape().floats();
  for (std::int64_t i = 0; i < batch; ++i) {
    Tensor xi({s.session.input_shape().c, s.session.input_shape().h,
               s.session.input_shape().w});
    for (std::int64_t j = 0; j < x_stride; ++j) {
      xi[j] = xb[i * x_stride + j];
    }
    Tensor yi({s.session.output_shape().c, s.session.output_shape().h,
               s.session.output_shape().w});
    std::vector<float> wsi(s.workspace.size());
    s.session.run(xi, &yi, wsi);
    for (std::int64_t j = 0; j < y_stride; ++j) {
      EXPECT_EQ(yi[j], yb[i * y_stride + j]) << "image " << i;
    }
  }
  set_num_threads(prev_threads);
}

TEST_F(FaultTest, NestedScopesKeepTheEarlierDeadline) {
  DeadlineScope outer(Deadline::after(100.0));
  {
    DeadlineScope later(Deadline::after(1e6));
    // The inner, later deadline must not extend the outer budget.
    EXPECT_LE(detail::active_deadline()->remaining_s(), 100.0);
  }
  {
    DeadlineScope earlier(Deadline::after(0.0));
    EXPECT_EQ(run_and_code([] { deadline_poll("nested test"); }),
              ErrorCode::kDeadlineExceeded);
  }
  EXPECT_NO_THROW(deadline_poll("outer budget still generous"));
}

TEST_F(FaultTest, InjectedOpDelayBlowsOnlyTightBudgets) {
  Serving s;
  const Tensor y_ref = s.run_clean();
  // 50 ms stall on the first op, 5 ms budget: the next op boundary poll
  // must cancel the run.
  fault_arm("exec.op_delay", FaultSpec{.count = 1, .param = 50.0});
  EXPECT_EQ(run_and_code([&] {
              s.session.run(s.x, &s.y, s.workspace, Deadline::after(0.005));
            }),
            ErrorCode::kDeadlineExceeded);
  // Same stall under a generous budget: slow but correct.
  fault_arm("exec.op_delay", FaultSpec{.count = 1, .param = 50.0});
  s.session.run(s.x, &s.y, s.workspace, Deadline::after(60.0));
  EXPECT_EQ(Tensor::max_abs_diff(s.y, y_ref), 0.0);
}

// ---------------------------------------------------------------------------
// Crash-safe autotune cache.

TEST_F(FaultTest, TruncatedCacheFileIsQuarantinedWithTypedError) {
  ::unsetenv("TDC_AUTOTUNE_CACHE");
  autotune_clear();
  // Pointwise shape: resolves without timing, so populating is instant.
  autotune_cost_provider().resolve(make_a100(), ConvShape::same(8, 8, 10, 1));
  const std::string path =
      ::testing::TempDir() + "tdc_fault_truncated.json";
  const std::string quarantine = path + ".corrupt";
  std::remove(path.c_str());
  std::remove(quarantine.c_str());
  ASSERT_TRUE(autotune_save(path));

  const std::string body = read_file(path);
  ASSERT_FALSE(body.empty());
  write_file(path, body.substr(0, body.size() / 2));  // torn write
  autotune_clear();
  EXPECT_EQ(run_and_code([&] { autotune_load(path); }),
            ErrorCode::kDataCorruption);
  EXPECT_FALSE(file_exists(path)) << "corrupt file must be moved aside";
  EXPECT_TRUE(file_exists(quarantine));

  // The path is clean again: a fresh save/load round-trips.
  autotune_cost_provider().resolve(make_a100(), ConvShape::same(8, 8, 10, 1));
  ASSERT_TRUE(autotune_save(path));
  autotune_clear();
  EXPECT_TRUE(autotune_load(path));
  EXPECT_EQ(autotune_table().size(), 1u);
  autotune_clear();
  std::remove(path.c_str());
  std::remove(quarantine.c_str());
}

TEST_F(FaultTest, WrongVersionCacheFileIsQuarantined) {
  const std::string path = ::testing::TempDir() + "tdc_fault_version.json";
  const std::string quarantine = path + ".corrupt";
  std::remove(quarantine.c_str());
  write_file(path, "{\n  \"version\": 1,\n  \"entries\": [\n  ]\n}\n");
  autotune_clear();
  EXPECT_EQ(run_and_code([&] { autotune_load(path); }),
            ErrorCode::kDataCorruption);
  EXPECT_FALSE(file_exists(path));
  EXPECT_TRUE(file_exists(quarantine));
  autotune_clear();
  std::remove(quarantine.c_str());
}

TEST_F(FaultTest, BadChecksumCacheFileIsQuarantined) {
  ::unsetenv("TDC_AUTOTUNE_CACHE");
  autotune_clear();
  autotune_cost_provider().resolve(make_a100(), ConvShape::same(8, 8, 10, 1));
  const std::string path = ::testing::TempDir() + "tdc_fault_checksum.json";
  const std::string quarantine = path + ".corrupt";
  std::remove(quarantine.c_str());
  ASSERT_TRUE(autotune_save(path));
  std::string body = read_file(path);
  const std::size_t at = body.find("\"checksum\": \"");
  ASSERT_NE(at, std::string::npos);
  // Flip one checksum digit (valid hex, wrong value).
  const std::size_t digit = at + std::string("\"checksum\": \"").size();
  body[digit] = body[digit] == '0' ? '1' : '0';
  write_file(path, body);
  autotune_clear();
  EXPECT_EQ(run_and_code([&] { autotune_load(path); }),
            ErrorCode::kDataCorruption);
  EXPECT_FALSE(file_exists(path));
  EXPECT_TRUE(file_exists(quarantine));
  autotune_clear();
  std::remove(quarantine.c_str());
}

TEST_F(FaultTest, CorruptSaveFaultProducesLoadRejectedFile) {
  ::unsetenv("TDC_AUTOTUNE_CACHE");
  autotune_clear();
  autotune_cost_provider().resolve(make_a100(), ConvShape::same(8, 8, 10, 1));
  const std::string path = ::testing::TempDir() + "tdc_fault_torn_save.json";
  const std::string quarantine = path + ".corrupt";
  std::remove(quarantine.c_str());
  fault_arm("autotune.corrupt_save", FaultSpec{.count = 1});
  ASSERT_TRUE(autotune_save(path)) << "the torn write itself succeeds";
  autotune_clear();
  EXPECT_EQ(run_and_code([&] { autotune_load(path); }),
            ErrorCode::kDataCorruption)
      << "integrity checking must catch the torn file";
  // Fault exhausted: the next save is intact.
  autotune_cost_provider().resolve(make_a100(), ConvShape::same(8, 8, 10, 1));
  ASSERT_TRUE(autotune_save(path));
  autotune_clear();
  EXPECT_TRUE(autotune_load(path));
  autotune_clear();
  std::remove(path.c_str());
  std::remove(quarantine.c_str());
}

TEST_F(FaultTest, ImplicitEnvLoadDegradesToRetuningOnCorruption) {
  const std::string path = ::testing::TempDir() + "tdc_fault_env_load.json";
  const std::string quarantine = path + ".corrupt";
  std::remove(quarantine.c_str());
  write_file(path, "definitely not json");
  ::setenv("TDC_AUTOTUNE_CACHE", path.c_str(), 1);
  autotune_clear();  // forgets the env decision → file re-read on next use
  // Serving must not throw on a corrupt cache it merely *could* have used:
  // the file is quarantined and the shape re-tuned.
  ConvAlgo resolved = ConvAlgo::kAuto;
  EXPECT_NO_THROW(resolved = autotune_cost_provider().resolve(
                      make_a100(), ConvShape::same(8, 8, 10, 1)));
  EXPECT_NE(resolved, ConvAlgo::kAuto);
  EXPECT_FALSE(file_exists(path) && read_file(path) == "definitely not json")
      << "the corrupt file must not survive at the cache path";
  EXPECT_TRUE(file_exists(quarantine));
  ::unsetenv("TDC_AUTOTUNE_CACHE");
  autotune_clear();
  std::remove(path.c_str());
  std::remove(quarantine.c_str());
}

// ---------------------------------------------------------------------------
// Parallel runtime observability (satellite a).

TEST_F(FaultTest, ConcurrentTopLevelCallerIsCountedAsSerialFallback) {
  const int prev_threads = num_threads();
  const ArenaConfig prev_arenas = arena_config();
  set_num_threads(4);
  // Concurrent top-level callers are normally admitted as separate arena
  // regions now; pinning inter_op = 1 recreates the exhausted-arena case so
  // the counted degradation path stays deterministic to exercise.
  set_arena_config(ArenaConfig{.inter_op = 1, .intra_op = 0});
  // Prime the pool so its creation races nothing below.
  parallel_for(0, 8, 1, [](std::int64_t, std::int64_t) {});
  const ParallelStats before = parallel_stats();

  std::atomic<bool> hold{true};
  std::atomic<bool> started{false};
  std::thread occupant([&] {
    parallel_for(0, 4, 1, [&](std::int64_t, std::int64_t) {
      started.store(true);
      while (hold.load()) {
        std::this_thread::yield();
      }
    });
  });
  while (!started.load()) {
    std::this_thread::yield();
  }
  // The occupant holds the only arena slot: this top-level region must fall
  // back to inline serial execution — correct, and counted.
  std::atomic<std::int64_t> sum{0};
  parallel_for(0, 4, 1, [&](std::int64_t b, std::int64_t e) {
    sum.fetch_add(e - b);
  });
  EXPECT_EQ(sum.load(), 4) << "the fallback still runs the whole range";
  const ParallelStats during = parallel_stats();
  EXPECT_GE(during.serial_fallbacks, before.serial_fallbacks + 1);
  hold.store(false);
  occupant.join();

  // With the slot free again, regions fan out normally.
  parallel_for(0, 8, 1, [](std::int64_t, std::int64_t) {});
  EXPECT_GT(parallel_stats().pool_regions, before.pool_regions);
  set_arena_config(prev_arenas);
  set_num_threads(prev_threads);
}

// ---------------------------------------------------------------------------
// EnvDriven: the CI TDC_FAULT matrix entry point. Each matrix job runs
//   TDC_FAULT=<point...> test_fault_injection --gtest_filter='EnvDriven*'
// and this test proves the ambient fault surfaces as a typed error with full
// recovery. Without TDC_FAULT it skips.

TEST(EnvDriven, AmbientFaultSurfacesTypedAndRecovers) {
  const char* env = std::getenv("TDC_FAULT");
  if (env == nullptr || *env == '\0') {
    GTEST_SKIP() << "TDC_FAULT not set";
  }
  const std::string spec(env);
  const std::string point = spec.substr(0, spec.find_first_of("=:;"));
  fault_disarm_all();  // fresh parse of the ambient TDC_FAULT
  ASSERT_TRUE(fault_armed(point)) << "TDC_FAULT=" << spec;

  if (point == "exec.compile_alloc") {
    bool threw = false;
    try {
      Serving faulted;
    } catch (const Error& e) {
      threw = true;
      EXPECT_EQ(e.code(), ErrorCode::kResourceExhausted);
    }
    EXPECT_TRUE(threw);
    Serving recovered;
    EXPECT_EQ(Tensor::max_abs_diff(recovered.run_clean(),
                                   recovered.run_clean()),
              0.0);
  } else if (point == "exec.run_alloc") {
    Serving s;
    bool threw = false;
    try {
      s.session.run(s.x);
    } catch (const Error& e) {
      threw = true;
      EXPECT_EQ(e.code(), ErrorCode::kResourceExhausted);
    }
    EXPECT_TRUE(threw);
    EXPECT_EQ(Tensor::max_abs_diff(s.session.run(s.x), s.run_clean()), 0.0);
  } else if (point == "exec.op_nan") {
    set_check_finite(true);
    Serving s;
    bool threw = false;
    try {
      s.session.run(s.x, &s.y, s.workspace);
    } catch (const Error& e) {
      threw = true;
      EXPECT_EQ(e.code(), ErrorCode::kDataCorruption);
    }
    EXPECT_TRUE(threw);
    s.session.run(s.x, &s.y, s.workspace);
    EXPECT_EQ(Tensor::max_abs_diff(s.y, s.run_clean()), 0.0);
    set_check_finite(false);
  } else if (point == "exec.op_delay") {
    Serving s;
    bool threw = false;
    try {
      s.session.run(s.x, &s.y, s.workspace, Deadline::after(0.005));
    } catch (const Error& e) {
      threw = true;
      EXPECT_EQ(e.code(), ErrorCode::kDeadlineExceeded);
    }
    EXPECT_TRUE(threw);
    s.session.run(s.x, &s.y, s.workspace);
    EXPECT_EQ(Tensor::max_abs_diff(s.y, s.run_clean()), 0.0);
  } else if (point == "exec.run_hidden_alloc") {
    // Inert unless the allocation guard is armed: arm it so the planted
    // hidden allocation trips the run's DenyAllocGuard.
    Serving s;
    set_alloc_guard(true);
    bool threw = false;
    try {
      s.session.run(s.x, &s.y, s.workspace);
    } catch (const Error& e) {
      threw = true;
      EXPECT_EQ(e.code(), ErrorCode::kInternal);
    }
    set_alloc_guard(false);
    EXPECT_TRUE(threw);
    s.session.run(s.x, &s.y, s.workspace);
    EXPECT_EQ(Tensor::max_abs_diff(s.y, s.run_clean()), 0.0);
  } else if (point == "exec.op_overrun") {
    // Inert unless canary bands were compiled into the session: freeze
    // them on for this session so the planted overrun lands on a band.
    const bool ws_prev = workspace_guard_enabled();
    set_workspace_guard(true);
    Serving s;
    bool threw = false;
    try {
      s.session.run(s.x, &s.y, s.workspace);
    } catch (const Error& e) {
      threw = true;
      EXPECT_EQ(e.code(), ErrorCode::kDataCorruption);
    }
    EXPECT_TRUE(threw);
    s.session.run(s.x, &s.y, s.workspace);
    EXPECT_EQ(Tensor::max_abs_diff(s.y, s.run_clean()), 0.0);
    set_workspace_guard(ws_prev);
  } else if (point == "autotune.corrupt_save") {
    ::unsetenv("TDC_AUTOTUNE_CACHE");
    autotune_clear();
    autotune_cost_provider().resolve(make_a100(),
                                     ConvShape::same(8, 8, 10, 1));
    const std::string path =
        ::testing::TempDir() + "tdc_envdriven_torn.json";
    ASSERT_TRUE(autotune_save(path));
    autotune_clear();
    bool threw = false;
    try {
      autotune_load(path);
    } catch (const Error& e) {
      threw = true;
      EXPECT_EQ(e.code(), ErrorCode::kDataCorruption);
    }
    EXPECT_TRUE(threw);
    autotune_cost_provider().resolve(make_a100(),
                                     ConvShape::same(8, 8, 10, 1));
    ASSERT_TRUE(autotune_save(path));
    autotune_clear();
    EXPECT_TRUE(autotune_load(path));
    autotune_clear();
    std::remove(path.c_str());
    std::remove((path + ".corrupt").c_str());
  } else {
    FAIL() << "TDC_FAULT names an unknown point: " << point;
  }

  EXPECT_GE(fault_fire_count(point), 1) << "the ambient fault never fired";
  fault_disarm_all();
}

}  // namespace
}  // namespace tdc
