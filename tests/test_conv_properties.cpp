// Property-based tests on the convolution substrate: algebraic identities
// that must hold for every implementation, checked across a parameterized
// sweep of shapes and algorithms.
#include <gtest/gtest.h>

#include <tuple>

#include "common/check.h"
#include "conv/conv.h"
#include "conv/tucker_conv.h"

namespace tdc {
namespace {

// ---------- Algorithm × shape agreement sweep ----------

using AlgoShape = std::tuple<ConvAlgo, int, int, int, int, int>;
// (algo, C, N, HW, filter, stride)

class ConvAlgebra : public ::testing::TestWithParam<AlgoShape> {
 protected:
  ConvShape shape() const {
    const auto& [algo, c, n, hw, k, stride] = GetParam();
    (void)algo;
    return ConvShape::same(c, n, hw, k, stride);
  }
  ConvAlgo algo() const { return std::get<0>(GetParam()); }
  bool supported() const { return conv_algo_supports(algo(), shape()); }
};

TEST_P(ConvAlgebra, MatchesReference) {
  if (!supported()) {
    GTEST_SKIP();
  }
  const ConvShape s = shape();
  Rng rng(601);
  const Tensor x = Tensor::random_uniform({s.c, s.h, s.w}, rng);
  const Tensor k = Tensor::random_uniform({s.c, s.n, s.r, s.s}, rng);
  const Tensor ref = conv2d_reference(x, k, s);
  const Tensor out = conv2d(algo(), x, k, s);
  EXPECT_LT(Tensor::rel_error(out, ref), 1e-3);
}

TEST_P(ConvAlgebra, LinearInInput) {
  // conv(a·x1 + b·x2) == a·conv(x1) + b·conv(x2)
  if (!supported()) {
    GTEST_SKIP();
  }
  const ConvShape s = shape();
  Rng rng(603);
  const Tensor x1 = Tensor::random_uniform({s.c, s.h, s.w}, rng);
  const Tensor x2 = Tensor::random_uniform({s.c, s.h, s.w}, rng);
  const Tensor k = Tensor::random_uniform({s.c, s.n, s.r, s.s}, rng);
  Tensor mix({s.c, s.h, s.w});
  for (std::int64_t i = 0; i < mix.numel(); ++i) {
    mix[i] = 2.0f * x1[i] - 0.5f * x2[i];
  }
  const Tensor lhs = conv2d(algo(), mix, k, s);
  const Tensor y1 = conv2d(algo(), x1, k, s);
  const Tensor y2 = conv2d(algo(), x2, k, s);
  Tensor rhs(lhs.dims());
  for (std::int64_t i = 0; i < rhs.numel(); ++i) {
    rhs[i] = 2.0f * y1[i] - 0.5f * y2[i];
  }
  EXPECT_LT(Tensor::rel_error(lhs, rhs), 1e-3);
}

TEST_P(ConvAlgebra, AdditiveInKernel) {
  // conv(x, k1 + k2) == conv(x, k1) + conv(x, k2)
  if (!supported()) {
    GTEST_SKIP();
  }
  const ConvShape s = shape();
  Rng rng(605);
  const Tensor x = Tensor::random_uniform({s.c, s.h, s.w}, rng);
  const Tensor k1 = Tensor::random_uniform({s.c, s.n, s.r, s.s}, rng);
  const Tensor k2 = Tensor::random_uniform({s.c, s.n, s.r, s.s}, rng);
  Tensor ksum({s.c, s.n, s.r, s.s});
  for (std::int64_t i = 0; i < ksum.numel(); ++i) {
    ksum[i] = k1[i] + k2[i];
  }
  const Tensor lhs = conv2d(algo(), x, ksum, s);
  const Tensor y1 = conv2d(algo(), x, k1, s);
  const Tensor y2 = conv2d(algo(), x, k2, s);
  Tensor rhs(lhs.dims());
  for (std::int64_t i = 0; i < rhs.numel(); ++i) {
    rhs[i] = y1[i] + y2[i];
  }
  EXPECT_LT(Tensor::rel_error(lhs, rhs), 1e-3);
}

TEST_P(ConvAlgebra, ZeroKernelGivesZeroOutput) {
  if (!supported()) {
    GTEST_SKIP();
  }
  const ConvShape s = shape();
  Rng rng(607);
  const Tensor x = Tensor::random_uniform({s.c, s.h, s.w}, rng);
  const Tensor k({s.c, s.n, s.r, s.s});
  const Tensor y = conv2d(algo(), x, k, s);
  EXPECT_LT(y.frobenius_norm(), 1e-5);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ConvAlgebra,
    ::testing::Combine(
        ::testing::Values(ConvAlgo::kIm2col, ConvAlgo::kWinograd,
                          ConvAlgo::kFft),
        ::testing::Values(3, 8),          // C
        ::testing::Values(4, 9),          // N
        ::testing::Values(8, 13),         // HW
        ::testing::Values(1, 3, 5),       // filter
        ::testing::Values(1, 2)),         // stride
    [](const auto& info) {
      const std::string algo =
          conv_algo_name(std::get<0>(info.param)) == std::string("im2col-gemm")
              ? "im2col"
              : conv_algo_name(std::get<0>(info.param));
      return algo + "_c" + std::to_string(std::get<1>(info.param)) + "n" +
             std::to_string(std::get<2>(info.param)) + "hw" +
             std::to_string(std::get<3>(info.param)) + "k" +
             std::to_string(std::get<4>(info.param)) + "s" +
             std::to_string(std::get<5>(info.param));
    });

// ---------- Structural identities (reference algorithm) ----------

TEST(ConvIdentities, DeltaKernelIsIdentity) {
  // A centered 1-hot 3×3 kernel with C=N=1 copies the (same-padded) input.
  const ConvShape s = ConvShape::same(1, 1, 9, 3);
  Rng rng(611);
  const Tensor x = Tensor::random_uniform({1, 9, 9}, rng);
  Tensor k({1, 1, 3, 3});
  k(0, 0, 1, 1) = 1.0f;
  const Tensor y = conv2d_reference(x, k, s);
  EXPECT_LT(Tensor::max_abs_diff(y, x), 1e-6);
}

TEST(ConvIdentities, ShiftEquivariance) {
  // Shifting the input by one pixel shifts the (valid) output by one pixel.
  const ConvShape s = ConvShape::valid_conv(2, 3, 10, 10, 3, 3);
  Rng rng(613);
  const Tensor x = Tensor::random_uniform({2, 10, 10}, rng);
  const Tensor k = Tensor::random_uniform({2, 3, 3, 3}, rng);
  Tensor shifted({2, 10, 10});
  for (std::int64_t c = 0; c < 2; ++c) {
    for (std::int64_t i = 0; i < 10; ++i) {
      for (std::int64_t j = 0; j + 1 < 10; ++j) {
        shifted(c, i, j) = x(c, i, j + 1);
      }
    }
  }
  const Tensor y = conv2d_reference(x, k, s);
  const Tensor ys = conv2d_reference(shifted, k, s);
  // ys(., i, j) == y(., i, j+1) wherever both are defined.
  for (std::int64_t n = 0; n < 3; ++n) {
    for (std::int64_t i = 0; i < s.out_h(); ++i) {
      for (std::int64_t j = 0; j + 1 < s.out_w(); ++j) {
        EXPECT_NEAR(ys(n, i, j), y(n, i, j + 1), 1e-4);
      }
    }
  }
}

TEST(ConvIdentities, ChannelDecomposition) {
  // Summing single-channel convolutions equals the multi-channel one.
  const ConvShape full = ConvShape::same(4, 2, 6, 3);
  Rng rng(617);
  const Tensor x = Tensor::random_uniform({4, 6, 6}, rng);
  const Tensor k = Tensor::random_uniform({4, 2, 3, 3}, rng);
  const Tensor y = conv2d_reference(x, k, full);

  Tensor acc({2, 6, 6});
  for (std::int64_t c = 0; c < 4; ++c) {
    Tensor xc({1, 6, 6});
    Tensor kc({1, 2, 3, 3});
    for (std::int64_t i = 0; i < 36; ++i) {
      xc[i] = x[c * 36 + i];
    }
    for (std::int64_t n = 0; n < 2; ++n) {
      for (std::int64_t e = 0; e < 9; ++e) {
        kc[n * 9 + e] = k[(c * 2 + n) * 9 + e];
      }
    }
    acc.add_(conv2d_reference(xc, kc, ConvShape::same(1, 2, 6, 3)));
  }
  EXPECT_LT(Tensor::rel_error(acc, y), 1e-4);
}

TEST(ConvIdentities, StrideSubsamplesStrideOneResult) {
  const ConvShape s1 = ConvShape::same(3, 4, 12, 3, 1);
  const ConvShape s2 = ConvShape::same(3, 4, 12, 3, 2);
  Rng rng(619);
  const Tensor x = Tensor::random_uniform({3, 12, 12}, rng);
  const Tensor k = Tensor::random_uniform({3, 4, 3, 3}, rng);
  const Tensor dense = conv2d_reference(x, k, s1);
  const Tensor strided = conv2d_reference(x, k, s2);
  for (std::int64_t n = 0; n < 4; ++n) {
    for (std::int64_t i = 0; i < s2.out_h(); ++i) {
      for (std::int64_t j = 0; j < s2.out_w(); ++j) {
        EXPECT_NEAR(strided(n, i, j), dense(n, 2 * i, 2 * j), 1e-4);
      }
    }
  }
}

// ---------- Tucker pipeline properties across ranks ----------

class TuckerPipelineRanks
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(TuckerPipelineRanks, PipelineEqualsReconstructedKernelConv) {
  const auto& [d1, d2] = GetParam();
  const ConvShape s = ConvShape::same(8, 6, 9, 3);
  Rng rng(701);
  const Tensor x = Tensor::random_uniform({8, 9, 9}, rng);
  const Tensor k = Tensor::random_uniform({8, 6, 3, 3}, rng);
  const TuckerFactors f = tucker_decompose(k, {d1, d2});
  const Tensor via_pipeline = tucker_conv(x, f, s);
  const Tensor via_kernel = conv2d_reference(x, tucker_reconstruct(f), s);
  EXPECT_LT(Tensor::rel_error(via_pipeline, via_kernel), 1e-3);
}

TEST_P(TuckerPipelineRanks, OutputErrorBoundedByKernelError) {
  // ||pipeline(x) − conv(x)||_F per unit input is controlled by the kernel
  // approximation error — higher ranks, lower output error.
  const auto& [d1, d2] = GetParam();
  const ConvShape s = ConvShape::same(8, 6, 9, 3);
  Rng rng(703);
  const Tensor x = Tensor::random_uniform({8, 9, 9}, rng);
  const Tensor k = Tensor::random_uniform({8, 6, 3, 3}, rng);
  const TuckerFactors f = tucker_decompose(k, {d1, d2});
  const Tensor exact = conv2d_reference(x, k, s);
  const Tensor approx = tucker_conv(x, f, s);
  const double out_err = Tensor::rel_error(approx, exact);
  const double kernel_err = tucker_projection_error(k, {d1, d2});
  if (kernel_err < 1e-6) {
    EXPECT_LT(out_err, 1e-3);
  } else {
    // Loose amplification bound: the conv operator norm over this input.
    EXPECT_LT(out_err, kernel_err * 25.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Ranks, TuckerPipelineRanks,
                         ::testing::Values(std::tuple<int, int>{1, 1},
                                           std::tuple<int, int>{2, 3},
                                           std::tuple<int, int>{4, 4},
                                           std::tuple<int, int>{6, 5},
                                           std::tuple<int, int>{8, 6}),
                         [](const auto& info) {
                           return "d" + std::to_string(std::get<0>(info.param)) +
                                  "_" + std::to_string(std::get<1>(info.param));
                         });

}  // namespace
}  // namespace tdc
