#include <gtest/gtest.h>

#include <cstdlib>
#include <limits>
#include <set>

#include "common/check.h"
#include "common/env.h"
#include "common/rng.h"
#include "exec/quantize.h"

namespace tdc {
namespace {

TEST(Check, ThrowsTdcErrorWithLocation) {
  try {
    TDC_CHECK_MSG(1 == 2, "impossible");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("impossible"), std::string::npos);
  }
}

TEST(Check, PassingCheckDoesNotThrow) {
  EXPECT_NO_THROW(TDC_CHECK(2 + 2 == 4));
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += a.next_u64() == b.next_u64();
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.0, 3.0);
    EXPECT_GE(u, -2.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(Rng, UniformMeanCloseToHalf) {
  Rng rng(11);
  double sum = 0.0;
  constexpr int kCount = 20000;
  for (int i = 0; i < kCount; ++i) {
    sum += rng.uniform();
  }
  EXPECT_NEAR(sum / kCount, 0.5, 0.01);
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng rng(13);
  double sum = 0.0, sq = 0.0;
  constexpr int kCount = 20000;
  for (int i = 0; i < kCount; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / kCount, 0.0, 0.03);
  EXPECT_NEAR(sq / kCount, 1.0, 0.05);
}

TEST(Rng, UniformIndexCoversAllValuesWithoutBias) {
  Rng rng(17);
  std::vector<int> counts(7, 0);
  constexpr int kCount = 14000;
  for (int i = 0; i < kCount; ++i) {
    ++counts[static_cast<std::size_t>(rng.uniform_index(7))];
  }
  for (const int c : counts) {
    EXPECT_NEAR(c, kCount / 7, kCount / 7 / 4);
  }
}

TEST(Rng, PermutationIsAPermutation) {
  Rng rng(19);
  const auto p = rng.permutation(257);
  std::set<std::size_t> seen(p.begin(), p.end());
  EXPECT_EQ(seen.size(), 257u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 256u);
}

TEST(Rng, PermutationDeterministicPerSeed) {
  Rng a(23), b(23);
  EXPECT_EQ(a.permutation(64), b.permutation(64));
}

TEST(Env, ParseIntStrictAcceptsPlainIntegers) {
  EXPECT_EQ(parse_int_strict("0"), 0);
  EXPECT_EQ(parse_int_strict("42"), 42);
  EXPECT_EQ(parse_int_strict("-7"), -7);
  EXPECT_EQ(parse_int_strict("+8"), 8);
  EXPECT_EQ(parse_int_strict("  16 "), 16);  // surrounding blanks are fine
  EXPECT_EQ(parse_int_strict("9223372036854775807"),
            std::numeric_limits<std::int64_t>::max());
}

TEST(Env, ParseIntStrictRejectsGarbage) {
  // The historical bug class: "8x" silently parsed as 8 under atoi/strtol.
  EXPECT_FALSE(parse_int_strict("8x").has_value());
  EXPECT_FALSE(parse_int_strict("x8").has_value());
  EXPECT_FALSE(parse_int_strict("4 threads").has_value());
  EXPECT_FALSE(parse_int_strict("3.5").has_value());
  EXPECT_FALSE(parse_int_strict("").has_value());
  EXPECT_FALSE(parse_int_strict("   ").has_value());
  EXPECT_FALSE(parse_int_strict("+-3").has_value());
  EXPECT_FALSE(parse_int_strict("0x10").has_value());
  EXPECT_FALSE(parse_int_strict("9223372036854775808").has_value());  // 2^63
}

TEST(Env, EnvIntReadsRangeCheckedValues) {
  ::setenv("TDC_TEST_ENV_INT", "12", 1);
  EXPECT_EQ(env_int("TDC_TEST_ENV_INT"), 12);
  EXPECT_EQ(env_int("TDC_TEST_ENV_INT", 1, 8), std::nullopt);  // out of range
  ::setenv("TDC_TEST_ENV_INT", "12noise", 1);
  EXPECT_EQ(env_int("TDC_TEST_ENV_INT"), std::nullopt);
  ::unsetenv("TDC_TEST_ENV_INT");
  EXPECT_EQ(env_int("TDC_TEST_ENV_INT"), std::nullopt);
}

TEST(Env, Int8ModeKnobClampsAndRejectsGarbage) {
  // TDC_INT8: 0 = never, 1 = cost provider decides, 2 = always. Unset,
  // malformed and out-of-range values all land on the default (1).
  ::setenv("TDC_INT8", "0", 1);
  EXPECT_EQ(int8_mode(), 0);
  ::setenv("TDC_INT8", "2", 1);
  EXPECT_EQ(int8_mode(), 2);
  ::setenv("TDC_INT8", "7", 1);  // out of range
  EXPECT_EQ(int8_mode(), 1);
  ::setenv("TDC_INT8", "2x", 1);  // trailing garbage must not parse as 2
  EXPECT_EQ(int8_mode(), 1);
  ::unsetenv("TDC_INT8");
  EXPECT_EQ(int8_mode(), 1);
}

TEST(Env, CalibrationSamplesKnobClampsAndRejectsGarbage) {
  ::setenv("TDC_CALIBRATION_SAMPLES", "16", 1);
  EXPECT_EQ(calibration_samples_default(), 16);
  ::setenv("TDC_CALIBRATION_SAMPLES", "0", 1);  // below the [1, 4096] range
  EXPECT_EQ(calibration_samples_default(), 4);
  ::setenv("TDC_CALIBRATION_SAMPLES", "4x", 1);
  EXPECT_EQ(calibration_samples_default(), 4);
  ::unsetenv("TDC_CALIBRATION_SAMPLES");
  EXPECT_EQ(calibration_samples_default(), 4);
}

}  // namespace
}  // namespace tdc
