// Tests for the graph-level plan API (exec/graph_plan.h): whole ModelSpecs
// compiled into one InferenceSession — per-op oracle parity (the liveness
// arena must behave exactly like private per-op buffers), residual and
// concat DAGs, the full ResNet-18 inventory end to end, thread-count
// determinism, batched serving, the descriptor-keyed plan cache, and
// decision-list validation.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <limits>
#include <vector>

#include "common/check.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "exec/graph_plan.h"
#include "exec/plan_cache.h"
#include "nn/models.h"

namespace tdc {
namespace {

constexpr float kGuard = 12345.678f;
constexpr std::int64_t kGuardFloats = 64;

struct PoisonedWorkspace {
  explicit PoisonedWorkspace(std::int64_t bytes)
      : floats(bytes / static_cast<std::int64_t>(sizeof(float))),
        buf(static_cast<std::size_t>(floats + 2 * kGuardFloats), kGuard) {
    poison();
  }

  void poison() {
    std::fill(buf.begin() + kGuardFloats, buf.begin() + kGuardFloats + floats,
              std::numeric_limits<float>::quiet_NaN());
  }

  std::span<float> span() {
    return std::span<float>(buf).subspan(kGuardFloats,
                                         static_cast<std::size_t>(floats));
  }

  bool guards_intact() const {
    for (std::int64_t i = 0; i < kGuardFloats; ++i) {
      if (buf[static_cast<std::size_t>(i)] != kGuard ||
          buf[buf.size() - 1 - static_cast<std::size_t>(i)] != kGuard) {
        return false;
      }
    }
    return true;
  }

  std::int64_t floats;
  std::vector<float> buf;
};

bool all_finite(const Tensor& t) {
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    if (!std::isfinite(t[i])) {
      return false;
    }
  }
  return true;
}

// Oracle: walk the session's DAG running every op against private,
// per-node output buffers (no arena sharing at all). Any liveness-planning
// bug — two live activations aliasing, a buffer freed too early — shows up
// as a bitwise divergence from this walk.
Tensor run_per_op_oracle(const InferenceSession& session, const Tensor& x) {
  std::vector<Tensor> outs;
  for (std::int64_t i = 0; i < session.num_ops(); ++i) {
    const OpPlan& op = session.op(i);
    std::vector<const float*> inputs;
    for (const std::int64_t j : session.op_inputs(i)) {
      inputs.push_back(j == InferenceSession::kModelInput
                           ? x.raw()
                           : outs[static_cast<std::size_t>(j)].raw());
    }
    Tensor y({op.output_shape().c, op.output_shape().h, op.output_shape().w});
    std::vector<float> ws(
        static_cast<std::size_t>(op.workspace_bytes() / sizeof(float)));
    op.run_inputs(std::span<const float* const>(inputs.data(), inputs.size()),
                  y.raw(), ws);
    outs.push_back(std::move(y));
  }
  return outs.back();
}

TEST(InferenceSession, Resnet20SessionMatchesPerOpOracleBitwise) {
  const ModelSpec model = make_resnet20_cifar();
  const auto weights = random_model_weights(model, 801);
  SessionOptions options;
  options.dense_algo = ConvAlgo::kIm2col;
  const InferenceSession session = InferenceSession::compile(
      make_a100(), model, weights, {}, options);
  ASSERT_EQ(session.num_ops(),
            static_cast<std::int64_t>(model.layers.size()));

  Rng rng(802);
  const OpShape& in = session.input_shape();
  const Tensor x = Tensor::random_uniform({in.c, in.h, in.w}, rng);

  PoisonedWorkspace ws(session.workspace_bytes());
  Tensor y({session.output_shape().c, session.output_shape().h,
            session.output_shape().w});
  session.run(x, &y, ws.span());
  EXPECT_TRUE(ws.guards_intact());
  EXPECT_TRUE(all_finite(y));

  const Tensor oracle = run_per_op_oracle(session, x);
  EXPECT_EQ(Tensor::max_abs_diff(y, oracle), 0.0);
}

TEST(InferenceSession, ResidualArenaIsSmallerThanPrivateBuffers) {
  const ModelSpec model = make_resnet20_cifar();
  const auto weights = random_model_weights(model, 803);
  SessionOptions options;
  options.dense_algo = ConvAlgo::kIm2col;
  const InferenceSession session = InferenceSession::compile(
      make_a100(), model, weights, {}, options);

  std::int64_t total = 0;
  std::int64_t largest = 0;
  for (std::int64_t i = 0; i + 1 < session.num_ops(); ++i) {
    total += session.op(i).output_shape().floats();
    largest = std::max(largest, session.op(i).output_shape().floats());
  }
  EXPECT_GE(session.arena_floats(), largest);
  // Liveness reuse must keep the arena a small multiple of one activation,
  // nowhere near the sum of all of them (ResNet-20 has ~60 intermediates).
  EXPECT_LT(session.arena_floats(), total / 10);
}

TEST(InferenceSession, LinearChainPlansPingPongAutomatically) {
  // A uniform dense chain needs exactly two live blocks at any moment, so
  // the liveness planner must rediscover the classic ping-pong layout.
  ModelSpec chain;
  chain.name = "chain";
  const ConvShape s = ConvShape::same(6, 6, 10, 3);
  for (int i = 0; i < 5; ++i) {
    chain.layers.push_back(
        LayerSpec::make_conv("conv" + std::to_string(i), s));
  }
  const auto weights = random_model_weights(chain, 804);
  SessionOptions options;
  options.dense_algo = ConvAlgo::kIm2col;
  const InferenceSession session = InferenceSession::compile(
      make_a100(), chain, weights, {}, options);
  const std::int64_t act = OpShape{s.n, s.out_h(), s.out_w()}.floats();
  EXPECT_EQ(session.arena_floats(), 2 * act);
}

TEST(InferenceSession, ConcatDagWithFanOutMatchesOracle) {
  // conv0 feeds two branches whose outputs concat — fan-out, channel-wise
  // join, then a ReLU tail. Exercises explicit DAG edges beyond residuals.
  ModelSpec model;
  model.name = "concat-dag";
  model.layers.push_back(
      LayerSpec::make_conv("conv0", ConvShape::same(3, 4, 8, 3)));
  LayerSpec branch_a =
      LayerSpec::make_conv("branch_a", ConvShape::same(4, 3, 8, 3));
  branch_a.inputs = {0};
  model.layers.push_back(branch_a);
  LayerSpec branch_b =
      LayerSpec::make_conv("branch_b", ConvShape::same(4, 2, 8, 1));
  branch_b.inputs = {0};
  model.layers.push_back(branch_b);
  model.layers.push_back(LayerSpec::make_elementwise(
      "concat", 5.0 * 8 * 8, EltOp::kConcat, {1, 2}));
  model.layers.push_back(LayerSpec::make_elementwise("relu", 5.0 * 8 * 8));

  const auto weights = random_model_weights(model, 805);
  SessionOptions options;
  options.dense_algo = ConvAlgo::kIm2col;
  const InferenceSession session = InferenceSession::compile(
      make_a100(), model, weights, {}, options);
  ASSERT_EQ(session.output_shape(), (OpShape{5, 8, 8}));

  Rng rng(806);
  const Tensor x = Tensor::random_uniform({3, 8, 8}, rng);
  const Tensor y = session.run(x);
  EXPECT_EQ(Tensor::max_abs_diff(y, run_per_op_oracle(session, x)), 0.0);
}

TEST(InferenceSession, BatchedRunMatchesPerImageAcrossThreadCounts) {
  const int saved = num_threads();
  const ModelSpec model = make_resnet20_cifar();
  const auto weights = random_model_weights(model, 807);
  SessionOptions options;
  options.dense_algo = ConvAlgo::kIm2col;
  const InferenceSession session = InferenceSession::compile(
      make_a100(), model, weights, {}, options);

  Rng rng(808);
  const std::int64_t batch = 3;
  const OpShape& in = session.input_shape();
  const OpShape& out = session.output_shape();
  const Tensor x = Tensor::random_uniform({batch, in.c, in.h, in.w}, rng);
  Tensor y({batch, out.c, out.h, out.w});
  std::vector<float> ws(static_cast<std::size_t>(
      session.batched_workspace_bytes(batch) / sizeof(float)));
  session.run_batched(x, &y, ws);

  const std::int64_t x_stride = in.floats();
  const std::int64_t y_stride = out.floats();
  for (std::int64_t b = 0; b < batch; ++b) {
    Tensor xb({in.c, in.h, in.w});
    std::copy(x.raw() + b * x_stride, x.raw() + (b + 1) * x_stride, xb.raw());
    const Tensor yb = session.run(xb);
    for (std::int64_t i = 0; i < y_stride; ++i) {
      ASSERT_EQ(y[b * y_stride + i], yb[i]) << "image " << b;
    }
  }

  for (const int nt : {1, 4}) {
    set_num_threads(nt);
    Tensor again({batch, out.c, out.h, out.w});
    session.run_batched(x, &again, ws);
    EXPECT_EQ(Tensor::max_abs_diff(y, again), 0.0) << "threads=" << nt;
  }
  set_num_threads(saved);
}

TEST(InferenceSession, CachedRecompileSharesPlansAndStaysBitIdentical) {
  const ModelSpec model = make_resnet20_cifar();
  const auto weights = random_model_weights(model, 809);
  SessionOptions options;
  options.dense_algo = ConvAlgo::kIm2col;

  PlanCache::instance().clear();
  const InferenceSession cold = InferenceSession::compile(
      make_a100(), model, weights, {}, options);
  const PlanCache::Stats after_cold = PlanCache::instance().stats();
  EXPECT_GT(after_cold.misses, 0);
  EXPECT_GT(after_cold.entries, 0);
  // Same-shape layers carry different weights, so the fingerprint must keep
  // every one of them a distinct entry — no intra-compile aliasing.
  EXPECT_EQ(after_cold.hits, 0);
  EXPECT_EQ(after_cold.entries, after_cold.misses);

  // Recompiling the identical model must hit on every single conv plan.
  const InferenceSession cached = InferenceSession::compile(
      make_a100(), model, weights, {}, options);
  const PlanCache::Stats after_cached = PlanCache::instance().stats();
  EXPECT_EQ(after_cached.misses, after_cold.misses);
  EXPECT_EQ(after_cached.entries, after_cold.entries);
  EXPECT_EQ(after_cached.hits, after_cold.misses);

  Rng rng(810);
  const OpShape& in = cold.input_shape();
  const Tensor x = Tensor::random_uniform({in.c, in.h, in.w}, rng);
  EXPECT_EQ(Tensor::max_abs_diff(cold.run(x), cached.run(x)), 0.0);

  // Same descriptor, different weights: the fingerprint must keep the
  // entries apart.
  const auto other = random_model_weights(model, 811);
  const InferenceSession different = InferenceSession::compile(
      make_a100(), model, other, {}, options);
  EXPECT_GT(PlanCache::instance().stats().entries, after_cached.entries);
  EXPECT_GT(Tensor::max_abs_diff(cold.run(x), different.run(x)), 0.0);
}

TEST(InferenceSession, DecisionListValidation) {
  const ModelSpec model = make_resnet20_cifar();
  const auto weights = random_model_weights(model, 812);

  // Wrong count: neither per-conv nor per-decomposable-conv.
  std::vector<LayerDecision> wrong_count(3);
  for (auto& d : wrong_count) {
    d.shape = ConvShape::same(16, 16, 32, 3);
  }
  EXPECT_THROW(InferenceSession::compile(make_a100(), model, weights,
                                         wrong_count),
               Error);

  // Right count, wrong shape at entry 0.
  std::vector<LayerDecision> wrong_shape(
      model.decomposable_conv_shapes().size());
  for (std::size_t i = 0; i < wrong_shape.size(); ++i) {
    wrong_shape[i].shape = model.decomposable_conv_shapes()[i];
  }
  wrong_shape[0].shape.c += 1;
  EXPECT_THROW(InferenceSession::compile(make_a100(), model, weights,
                                         wrong_shape),
               Error);

  // Missing BN weights throw with the layer's name in the message.
  auto incomplete = weights;
  for (auto& w : incomplete) {
    w.bn_scale = Tensor();
    w.bn_shift = Tensor();
  }
  EXPECT_THROW(InferenceSession::compile(make_a100(), model, incomplete),
               Error);
}

// The acceptance walk: the full ResNet-18 inventory — 7×7 stem with its
// maxpool, residual stages with downsample projections, global pool, FC —
// compiled with a real codesign decision list into one session, run end to
// end allocation-free under poison+guards, bit-identical across thread
// counts and across cached vs cold compiles. The decision list is taken as
// codesign produced it: the 256/512-channel stages factorize at full width
// (the tridiagonal eigensolver made that a sub-second affair; the old
// Jacobi path cost tens of seconds per wide stage, so these tests used to
// clamp decomposition to ≤128 channels), and the cold compile is
// time-bounded so an O(C³)-serial regression fails CI instead of hanging
// it.
TEST(InferenceSession, FullResnet18EndToEndAtFullWidth) {
  using Clock = std::chrono::steady_clock;
  const DeviceSpec device = make_a100();
  const ModelSpec model = make_resnet18();
  const auto weights = random_model_weights(model, 813);

  CodesignOptions cd_opts;
  cd_opts.budget = 0.65;  // paper §7.2 budget for ResNet-18
  const CodesignResult codesign =
      run_codesign(device, model.decomposable_conv_shapes(), cd_opts);
  ASSERT_EQ(codesign.layers.size(), model.decomposable_conv_shapes().size());
  const std::vector<LayerDecision>& decisions = codesign.layers;

  // The paper budget must reach into the wide stages — otherwise this test
  // silently stops covering full-width factorization.
  std::int64_t wide_decomposed = 0;
  for (const LayerDecision& d : decisions) {
    wide_decomposed +=
        d.decomposed && (d.shape.c >= 256 || d.shape.n >= 256) ? 1 : 0;
  }
  EXPECT_GT(wide_decomposed, 0);

  SessionOptions options;
  options.dense_algo = ConvAlgo::kIm2col;

  PlanCache::instance().clear();
  const auto t_cold = Clock::now();
  const InferenceSession session = InferenceSession::compile(
      device, model, weights, decisions, options);
  const double cold_s =
      std::chrono::duration<double>(Clock::now() - t_cold).count();
  // Generous CI budget (slow runners, single-thread matrices, sanitizer
  // builds): release-mode on one core measures a few seconds. The retained
  // Jacobi baseline needs minutes at these widths, so the bound still
  // catches any return of the serial path.
  EXPECT_LT(cold_s, 120.0);
  ASSERT_EQ(session.num_ops(),
            static_cast<std::int64_t>(model.layers.size()));
  EXPECT_EQ(session.input_shape(), (OpShape{3, 224, 224}));
  EXPECT_EQ(session.output_shape(), (OpShape{1000, 1, 1}));

  // At the paper's 65% budget the codesign pass must decompose something,
  // and the session must compile those layers as Tucker pipelines.
  std::int64_t decomposed = 0;
  for (std::int64_t i = 0; i < session.num_ops(); ++i) {
    const auto* conv = dynamic_cast<const ConvPlan*>(&session.op(i));
    decomposed += conv != nullptr && conv->decomposed() ? 1 : 0;
  }
  EXPECT_GT(decomposed, 0);

  Rng rng(814);
  const Tensor x = Tensor::random_uniform({3, 224, 224}, rng);
  PoisonedWorkspace ws(session.workspace_bytes());
  Tensor y({1000, 1, 1});
  session.run(x, &y, ws.span());
  EXPECT_TRUE(ws.guards_intact());
  EXPECT_TRUE(all_finite(y));

  // Bit-identical across thread counts.
  const int saved = num_threads();
  for (const int nt : {1, 4}) {
    set_num_threads(nt);
    ws.poison();
    Tensor again({1000, 1, 1});
    session.run(x, &again, ws.span());
    EXPECT_EQ(Tensor::max_abs_diff(y, again), 0.0) << "threads=" << nt;
  }
  set_num_threads(saved);

  // Bit-identical across a cached recompile.
  const InferenceSession cached = InferenceSession::compile(
      device, model, weights, decisions, options);
  ws.poison();
  Tensor y2({1000, 1, 1});
  cached.run(x, &y2, ws.span());
  EXPECT_EQ(Tensor::max_abs_diff(y, y2), 0.0);
}

}  // namespace
}  // namespace tdc
