#include <gtest/gtest.h>

#include "core/codegen.h"

namespace tdc {
namespace {

TEST(Codegen, EmitsKernelSignatureAndTileConstants) {
  const ConvShape s = ConvShape::same(64, 32, 28, 3);
  const TdcTiling t{4, 5, 16};
  const std::string src = generate_cuda_kernel(s, t);
  EXPECT_NE(src.find("__global__ void tdc_core_conv_kernel"), std::string::npos);
  EXPECT_NE(src.find("#define TH 4"), std::string::npos);
  EXPECT_NE(src.find("#define TW 5"), std::string::npos);
  EXPECT_NE(src.find("#define TC 16"), std::string::npos);
  EXPECT_NE(src.find("#define C 64"), std::string::npos);
  EXPECT_NE(src.find("#define N 32"), std::string::npos);
}

TEST(Codegen, SharedTileAndBarrier) {
  const std::string src =
      generate_cuda_kernel(ConvShape::same(32, 32, 14, 3), {4, 4, 8});
  EXPECT_NE(src.find("__shared__ float input_tile[TC]"), std::string::npos);
  // Exactly one barrier — the design point the paper contrasts with TVM.
  std::size_t count = 0;
  for (std::size_t pos = src.find("__syncthreads()"); pos != std::string::npos;
       pos = src.find("__syncthreads()", pos + 1)) {
    ++count;
  }
  EXPECT_EQ(count, 1u);
}

TEST(Codegen, AtomicCommitAndHwnLayout) {
  const std::string src =
      generate_cuda_kernel(ConvShape::same(32, 32, 14, 3), {4, 4, 8});
  EXPECT_NE(src.find("atomicAdd(&y[(gh * OW + gw) * N + n]"),
            std::string::npos);
}

TEST(Codegen, CrsnIndexingByDefault) {
  const std::string src =
      generate_cuda_kernel(ConvShape::same(32, 32, 14, 3), {4, 4, 8});
  EXPECT_NE(src.find("k[((c * R + r) * S + s) * N + n]"), std::string::npos);
}

TEST(Codegen, CnrsIndexingWhenRequested) {
  CodegenOptions opts;
  opts.layout = TdcWeightLayout::kCNRS;
  const std::string src =
      generate_cuda_kernel(ConvShape::same(32, 32, 14, 3), {4, 4, 8}, opts);
  EXPECT_NE(src.find("k[((c * N + n) * R + r) * S + s]"), std::string::npos);
}

TEST(Codegen, LauncherEmission) {
  CodegenOptions opts;
  opts.kernel_name = "my_kernel";
  const std::string with =
      generate_cuda_kernel(ConvShape::same(16, 16, 8, 3), {2, 2, 4}, opts);
  EXPECT_NE(with.find("launch_my_kernel"), std::string::npos);
  EXPECT_NE(with.find("<<<grid, block, 0, stream>>>"), std::string::npos);

  opts.emit_launcher = false;
  const std::string without =
      generate_cuda_kernel(ConvShape::same(16, 16, 8, 3), {2, 2, 4}, opts);
  EXPECT_EQ(without.find("launch_my_kernel"), std::string::npos);
}

TEST(Codegen, StridePadConstantsPropagate) {
  const ConvShape s = ConvShape::same(16, 16, 14, 3, 2);
  const std::string src = generate_cuda_kernel(s, {3, 3, 4});
  EXPECT_NE(src.find("#define STRIDE_H 2"), std::string::npos);
  EXPECT_NE(src.find("#define PAD_H 1"), std::string::npos);
  EXPECT_NE(src.find("#define OH 7"), std::string::npos);
}

TEST(Codegen, FullSourceIncludesDeviceHeader) {
  const DeviceSpec d = make_a100();
  const ConvShape s = ConvShape::same(32, 32, 14, 3);
  const std::string src = generate_cuda_source(d, s, {4, 4, 8});
  EXPECT_NE(src.find("Target device: A100"), std::string::npos);
  EXPECT_NE(src.find("Predicted latency"), std::string::npos);
  EXPECT_NE(src.find("__global__"), std::string::npos);
}

TEST(Codegen, GridCommentMatchesBlockCount) {
  const DeviceSpec d = make_a100();
  const ConvShape s = ConvShape::same(32, 32, 14, 3);
  const TdcTiling t{4, 4, 8};
  const std::string src = generate_cuda_source(d, s, t);
  EXPECT_NE(src.find("Grid: " + std::to_string(tdc_num_blocks(s, t))),
            std::string::npos);
}

}  // namespace
}  // namespace tdc
