// Tests for the pluggable algorithm-selection subsystem
// (exec/cost_provider.h, host_cost.h, autotune.h, microbench.h): the
// simulated-GPU provider must reproduce the historical resolver
// decision-for-decision; the host and autotune providers must never deploy
// the TDC-core emulator or an illegal/pointless transform algorithm; the
// PlanCache must keep plans resolved under different providers apart; and
// the autotuner must be deterministic within a process and across a
// TDC_AUTOTUNE_CACHE round trip.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "exec/autotune.h"
#include "exec/conv_plan.h"
#include "exec/cost_provider.h"
#include "exec/graph_plan.h"
#include "exec/host_cost.h"
#include "exec/microbench.h"
#include "exec/plan_cache.h"
#include "nn/models.h"

namespace tdc {
namespace {

// Pins the host calibration through the environment for the duration of a
// test, so host-provider decisions and cache keys are machine-independent.
class PinnedCalibration {
 public:
  PinnedCalibration(const char* gflops, const char* gbs) {
    ::setenv("TDC_HOST_GFLOPS", gflops, 1);
    ::setenv("TDC_HOST_GBS", gbs, 1);
    reset_host_calibration();
  }
  ~PinnedCalibration() {
    ::unsetenv("TDC_HOST_GFLOPS");
    ::unsetenv("TDC_HOST_GBS");
    reset_host_calibration();
  }
};

std::vector<ConvShape> resnet18_conv_shapes() {
  std::vector<ConvShape> shapes;
  for (const LayerSpec& layer : make_resnet18().layers) {
    if (layer.kind == LayerKind::kConv) {
      shapes.push_back(layer.conv);
    }
  }
  return shapes;
}

std::vector<ConvShape> awkward_shapes() {
  return {
      ConvShape::same(8, 8, 16, 5, 2),          // Winograd+FFT illegal
      ConvShape::same(16, 32, 20, 5),           // 5×5 stride 1 (FFT legal)
      ConvShape::same(64, 64, 56, 1),           // pointwise
      ConvShape::same(64, 128, 56, 1, 2),       // strided pointwise
      ConvShape::valid_conv(5, 7, 9, 11, 2, 4), // asymmetric filter
  };
}

TEST(SimulatedGpuProvider, MatchesLegacyResolverOnEveryPath) {
  // The provider is the historical resolve_conv_algo moved behind the seam;
  // the free function forwards to it. Sweep the paper-repro shapes on both
  // devices to pin the two entry points together decision-for-decision.
  for (const DeviceSpec& device : {make_a100(), make_rtx2080ti()}) {
    for (const ConvShape& shape : resnet18_conv_shapes()) {
      EXPECT_EQ(simulated_gpu_cost_provider().resolve(device, shape),
                resolve_conv_algo(device, shape))
          << device.name << " " << shape.to_string();
    }
    for (const ConvShape& shape : awkward_shapes()) {
      EXPECT_EQ(simulated_gpu_cost_provider().resolve(device, shape),
                resolve_conv_algo(device, shape))
          << device.name << " " << shape.to_string();
    }
  }
  EXPECT_STREQ(simulated_gpu_cost_provider().name(), "simgpu");
}

TEST(DenseAlgoCandidates, RespectLegalityAndPointwiseExclusion) {
  const auto has = [](const std::vector<ConvAlgo>& v, ConvAlgo a) {
    return std::find(v.begin(), v.end(), a) != v.end();
  };
  const auto full = dense_algo_candidates(ConvShape::same(64, 64, 56, 3));
  EXPECT_TRUE(has(full, ConvAlgo::kIm2col));
  EXPECT_TRUE(has(full, ConvAlgo::kWinograd));
  EXPECT_TRUE(has(full, ConvAlgo::kFft));
  EXPECT_TRUE(has(full, ConvAlgo::kTdcCore));
  EXPECT_FALSE(has(full, ConvAlgo::kReference));

  const auto pw = dense_algo_candidates(ConvShape::same(64, 256, 56, 1));
  EXPECT_FALSE(has(pw, ConvAlgo::kWinograd));
  EXPECT_FALSE(has(pw, ConvAlgo::kFft));

  const auto strided5 = dense_algo_candidates(ConvShape::same(8, 8, 16, 5, 2));
  EXPECT_FALSE(has(strided5, ConvAlgo::kWinograd));
  EXPECT_FALSE(has(strided5, ConvAlgo::kFft));
}

// The regression the refactor exists for: with the host model the TDC-core
// functional emulator never wins a dense selection on ResNet-18 shapes, and
// the pointwise / shape-legality exclusions extend to the new providers.
TEST(HostProvider, NeverSelectsEmulatorOrIllegalTransforms) {
  const DeviceSpec device = make_a100();
  // Two very different pinned machines: compute-rich and bandwidth-starved.
  for (const auto& [gflops, gbs] : std::vector<std::pair<const char*, const char*>>{
           {"50", "10"}, {"4", "1"}}) {
    PinnedCalibration pin(gflops, gbs);
    std::vector<ConvShape> shapes = resnet18_conv_shapes();
    const std::vector<ConvShape> extra = awkward_shapes();
    shapes.insert(shapes.end(), extra.begin(), extra.end());
    for (const ConvShape& shape : shapes) {
      const ConvAlgo resolved = host_cost_provider().resolve(device, shape);
      EXPECT_NE(resolved, ConvAlgo::kTdcCore) << shape.to_string();
      EXPECT_NE(resolved, ConvAlgo::kReference) << shape.to_string();
      EXPECT_NE(resolved, ConvAlgo::kAuto) << shape.to_string();
      EXPECT_TRUE(conv_algo_supports(resolved, shape)) << shape.to_string();
      if (shape.r == 1 && shape.s == 1) {
        EXPECT_EQ(resolved, ConvAlgo::kIm2col) << shape.to_string();
      }
    }
  }
}

TEST(HostProvider, CostModelOrdersCatastrophesOut) {
  PinnedCalibration pin("50", "10");
  const ConvShape shape = ConvShape::same(64, 64, 56, 3);
  const double im2col = host_conv_cost_s(ConvAlgo::kIm2col, shape);
  EXPECT_TRUE(std::isfinite(im2col));
  EXPECT_GT(im2col, 0.0);
  // The CPU FFT path (C·N spectra traffic) and the TDC emulator must be
  // priced at least an order of magnitude off im2col.
  EXPECT_GT(host_conv_cost_s(ConvAlgo::kFft, shape), 10.0 * im2col);
  EXPECT_GT(host_conv_cost_s(ConvAlgo::kTdcCore, shape), 10.0 * im2col);
  // Non-deployable requests price to +infinity.
  EXPECT_TRUE(std::isinf(host_conv_cost_s(ConvAlgo::kReference, shape)));
  EXPECT_TRUE(std::isinf(host_conv_cost_s(ConvAlgo::kAuto, shape)));
  EXPECT_TRUE(std::isinf(host_conv_cost_s(
      ConvAlgo::kWinograd, ConvShape::same(64, 64, 56, 1))));
}

TEST(HostCalibration, EnvOverridesAndMeasurementBothWork) {
  {
    PinnedCalibration pin("123.5", "45.25");
    const HostCalibration cal = host_calibration();
    EXPECT_EQ(cal.gflops, 123.5);
    EXPECT_EQ(cal.gbs, 45.25);
    EXPECT_TRUE(cal.gflops_from_env);
    EXPECT_TRUE(cal.gbs_from_env);
  }
  // Pin destroyed: the next read measures for real.
  const HostCalibration measured = host_calibration();
  EXPECT_FALSE(measured.gflops_from_env);
  EXPECT_FALSE(measured.gbs_from_env);
  EXPECT_TRUE(std::isfinite(measured.gflops));
  EXPECT_TRUE(std::isfinite(measured.gbs));
  EXPECT_GT(measured.gflops, 0.0);
  EXPECT_GT(measured.gbs, 0.0);
}

TEST(HostProvider, CacheKeyReflectsCalibration) {
  std::string key_a;
  {
    PinnedCalibration pin("50", "10");
    key_a = host_cost_provider().cache_key();
    EXPECT_NE(key_a, simulated_gpu_cost_provider().cache_key());
  }
  PinnedCalibration pin("25", "10");
  EXPECT_NE(host_cost_provider().cache_key(), key_a)
      << "re-calibration must change the resolution provenance";
}

// Satellite fix: a kAuto plan resolved by one provider must never be served
// to a compile of the same shape under another provider — the key carries
// the resolution provenance. Pinned algorithms share one entry.
TEST(PlanCacheProvenance, CrossProviderCompilesMiss) {
  PinnedCalibration pin("50", "10");
  Rng rng(601);
  const ConvShape shape = ConvShape::same(16, 16, 12, 3);
  const Tensor kernel =
      Tensor::random_uniform({shape.c, shape.n, shape.r, shape.s}, rng);

  PlanCache& cache = PlanCache::instance();
  cache.clear();

  ConvDescriptor desc;
  desc.shape = shape;
  desc.algo = ConvAlgo::kAuto;
  desc.cost = &host_cost_provider();
  cache.get_or_compile(desc, kernel);
  EXPECT_EQ(cache.stats().misses, 1);
  cache.get_or_compile(desc, kernel);  // same provider: hit
  EXPECT_EQ(cache.stats().hits, 1);

  desc.cost = &simulated_gpu_cost_provider();
  cache.get_or_compile(desc, kernel);  // cross-provider: miss, new entry
  EXPECT_EQ(cache.stats().misses, 2);
  EXPECT_EQ(cache.stats().entries, 2);

  desc.cost = nullptr;  // null = simulated: aliases the simulated entry
  cache.get_or_compile(desc, kernel);
  EXPECT_EQ(cache.stats().hits, 2);

  // Pinned requests compile identically under every provider → one entry.
  desc.algo = ConvAlgo::kIm2col;
  desc.cost = &host_cost_provider();
  cache.get_or_compile(desc, kernel);
  EXPECT_EQ(cache.stats().misses, 3);
  desc.cost = &simulated_gpu_cost_provider();
  cache.get_or_compile(desc, kernel);
  EXPECT_EQ(cache.stats().hits, 3);
  EXPECT_EQ(cache.stats().entries, 3);
  cache.clear();
}

TEST(Autotune, DeterministicWithinProcessAndNeverTimesTwice) {
  ::unsetenv("TDC_AUTOTUNE_CACHE");
  autotune_clear();
  const DeviceSpec device = make_a100();
  const std::vector<ConvShape> shapes = {
      ConvShape::same(8, 16, 12, 3),
      ConvShape::same(16, 8, 10, 3),
      ConvShape::same(8, 8, 10, 1),  // single-candidate: never timed
  };
  std::vector<ConvAlgo> first;
  for (const ConvShape& s : shapes) {
    first.push_back(autotune_cost_provider().resolve(device, s));
    EXPECT_TRUE(conv_algo_supports(first.back(), s)) << s.to_string();
    EXPECT_NE(first.back(), ConvAlgo::kTdcCore) << s.to_string();
  }
  const AutotuneStats after_first = autotune_stats();
  EXPECT_EQ(after_first.entries, 3);
  EXPECT_EQ(after_first.table_hits, 0);
  const auto table_first = autotune_table();

  for (std::size_t i = 0; i < shapes.size(); ++i) {
    EXPECT_EQ(autotune_cost_provider().resolve(device, shapes[i]), first[i])
        << shapes[i].to_string();
  }
  const AutotuneStats after_second = autotune_stats();
  EXPECT_EQ(after_second.table_hits, 3);
  EXPECT_EQ(after_second.timed_candidates, after_first.timed_candidates)
      << "a memoized shape must never be re-timed";
  EXPECT_EQ(autotune_table(), table_first);
  autotune_clear();
}

TEST(Autotune, PointwiseResolvesWithoutTiming) {
  ::unsetenv("TDC_AUTOTUNE_CACHE");
  autotune_clear();
  const ConvAlgo resolved = autotune_cost_provider().resolve(
      make_a100(), ConvShape::same(32, 64, 28, 1));
  EXPECT_EQ(resolved, ConvAlgo::kIm2col);
  EXPECT_EQ(autotune_stats().timed_candidates, 0)
      << "only im2col survives the estimate gate on 1×1 layers";
  autotune_clear();
}

TEST(Autotune, CacheFileRoundTripSkipsRetuning) {
  const std::string path =
      ::testing::TempDir() + "tdc_autotune_roundtrip.json";
  std::remove(path.c_str());
  ::setenv("TDC_AUTOTUNE_CACHE", path.c_str(), 1);
  autotune_clear();  // also forgets the env decision → re-read on next use

  const DeviceSpec device = make_a100();
  const std::vector<ConvShape> shapes = {ConvShape::same(8, 16, 12, 3),
                                         ConvShape::same(16, 8, 10, 3)};
  std::vector<ConvAlgo> first;
  for (const ConvShape& s : shapes) {
    first.push_back(autotune_cost_provider().resolve(device, s));
  }
  EXPECT_GT(autotune_stats().timed_candidates, 0);
  const auto table_first = autotune_table();

  // A "cold session": empty table, same env. The file must satisfy every
  // resolve with zero re-timing.
  autotune_clear();
  for (std::size_t i = 0; i < shapes.size(); ++i) {
    EXPECT_EQ(autotune_cost_provider().resolve(device, shapes[i]), first[i])
        << shapes[i].to_string();
  }
  EXPECT_EQ(autotune_stats().timed_candidates, 0)
      << "winners must come from " << path;
  EXPECT_EQ(autotune_table(), table_first);

  ::unsetenv("TDC_AUTOTUNE_CACHE");
  autotune_clear();
  std::remove(path.c_str());
}

TEST(Autotune, ExplicitSaveLoadMergeAndBadPaths) {
  ::unsetenv("TDC_AUTOTUNE_CACHE");
  autotune_clear();
  const DeviceSpec device = make_a100();
  const ConvShape shape = ConvShape::same(8, 16, 12, 3);
  const ConvAlgo winner = autotune_cost_provider().resolve(device, shape);
  const std::string path = ::testing::TempDir() + "tdc_autotune_explicit.json";
  EXPECT_TRUE(autotune_save(path));
  autotune_clear();
  EXPECT_TRUE(autotune_load(path));
  EXPECT_EQ(autotune_table().size(), 1u);
  EXPECT_EQ(autotune_cost_provider().resolve(device, shape), winner);
  EXPECT_EQ(autotune_stats().timed_candidates, 0);
  EXPECT_FALSE(autotune_load("/nonexistent/dir/autotune.json"));
  EXPECT_FALSE(autotune_save("/nonexistent/dir/autotune.json"));
  autotune_clear();
  std::remove(path.c_str());
}

// The staged Tucker core inherits the descriptor's provider: with the host
// provider a kAuto core must compile to a real CPU kernel, not the emulator.
TEST(TuckerStagedCore, AutoCoreUsesDescriptorProvider) {
  PinnedCalibration pin("50", "10");
  Rng rng(602);
  const ConvShape shape = ConvShape::same(16, 16, 14, 3);
  const Tensor k =
      Tensor::random_uniform({shape.c, shape.n, shape.r, shape.s}, rng);
  const TuckerFactors f = tucker_decompose(k, {8, 8});
  TuckerDescriptor desc;
  desc.shape = shape;
  desc.exec = TuckerExec::kStaged;
  desc.core_algo = ConvAlgo::kAuto;
  desc.cost = &host_cost_provider();
  const auto plan = compile_tucker_plan(desc, f);
  EXPECT_NE(plan->algo(), ConvAlgo::kTdcCore);
  EXPECT_NE(plan->algo(), ConvAlgo::kReference);
}

// The acceptance criterion as a test: with default options on the CPU
// engine (dense_algo = kAuto, no provider given → host provider), a
// full-width ResNet-18 session compiles no TDC-core dense plan.
TEST(SessionDefaults, ResnetKAutoNeverDeploysEmulator) {
  PinnedCalibration pin("50", "10");
  const ModelSpec model = make_resnet18();
  const auto weights = random_model_weights(model, 603);
  const InferenceSession session = InferenceSession::compile(
      make_a100(), model, weights, /*decisions=*/{}, SessionOptions{});
  std::int64_t convs = 0;
  for (std::int64_t i = 0; i < session.num_ops(); ++i) {
    const auto* conv = dynamic_cast<const ConvPlan*>(&session.op(i));
    if (conv == nullptr || conv->decomposed()) {
      continue;
    }
    ++convs;
    EXPECT_NE(conv->algo(), ConvAlgo::kTdcCore) << session.op_name(i);
    EXPECT_NE(conv->algo(), ConvAlgo::kReference) << session.op_name(i);
  }
  EXPECT_EQ(convs, 20);  // every ResNet-18 convolution stayed dense
}

}  // namespace
}  // namespace tdc
