#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "common/check.h"
#include "common/rng.h"
#include "fft/fft.h"

namespace tdc {
namespace {

using Cpx = std::complex<double>;

TEST(Fft, NextPow2) {
  EXPECT_EQ(next_pow2(1), 1);
  EXPECT_EQ(next_pow2(2), 2);
  EXPECT_EQ(next_pow2(3), 4);
  EXPECT_EQ(next_pow2(17), 32);
  EXPECT_EQ(next_pow2(1024), 1024);
}

TEST(Fft, RejectsNonPowerOfTwo) {
  std::vector<Cpx> x(6);
  EXPECT_THROW(fft_inplace(x, false), Error);
}

TEST(Fft, ForwardInverseRoundTrip) {
  Rng rng(61);
  std::vector<Cpx> x(64);
  for (auto& v : x) {
    v = Cpx(rng.uniform(-1, 1), rng.uniform(-1, 1));
  }
  std::vector<Cpx> y = x;
  fft_inplace(y, false);
  fft_inplace(y, true);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(std::abs(y[i] - x[i]), 0.0, 1e-10);
  }
}

TEST(Fft, DeltaTransformsToConstant) {
  std::vector<Cpx> x(16, Cpx{});
  x[0] = Cpx(1.0, 0.0);
  fft_inplace(x, false);
  for (const auto& v : x) {
    EXPECT_NEAR(v.real(), 1.0, 1e-12);
    EXPECT_NEAR(v.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, SingleToneHitsOneBin) {
  constexpr std::size_t n = 32;
  constexpr int bin = 5;
  std::vector<Cpx> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double phase = 2.0 * M_PI * bin * static_cast<double>(i) / n;
    x[i] = Cpx(std::cos(phase), std::sin(phase));
  }
  fft_inplace(x, false);
  for (std::size_t k = 0; k < n; ++k) {
    EXPECT_NEAR(std::abs(x[k]), k == bin ? static_cast<double>(n) : 0.0, 1e-9)
        << "bin " << k;
  }
}

TEST(Fft, ParsevalHolds) {
  Rng rng(63);
  std::vector<Cpx> x(128);
  double time_energy = 0.0;
  for (auto& v : x) {
    v = Cpx(rng.normal(), rng.normal());
    time_energy += std::norm(v);
  }
  fft_inplace(x, false);
  double freq_energy = 0.0;
  for (const auto& v : x) {
    freq_energy += std::norm(v);
  }
  EXPECT_NEAR(freq_energy / 128.0, time_energy, 1e-8 * time_energy);
}

TEST(Fft, LinearConvolutionViaFft) {
  // corr(x, k)[o] computed via FFT must equal the direct sliding dot.
  Rng rng(65);
  constexpr std::int64_t n = 16, klen = 4, pad = 32;
  std::vector<double> sig(n), ker(klen);
  for (auto& v : sig) v = rng.uniform(-1, 1);
  for (auto& v : ker) v = rng.uniform(-1, 1);

  std::vector<Cpx> fs(pad, Cpx{}), fk(pad, Cpx{});
  for (std::int64_t i = 0; i < n; ++i) fs[static_cast<std::size_t>(i)] = sig[static_cast<std::size_t>(i)];
  for (std::int64_t i = 0; i < klen; ++i) fk[static_cast<std::size_t>(i)] = ker[static_cast<std::size_t>(i)];
  fft_inplace(fs, false);
  fft_inplace(fk, false);
  for (std::int64_t i = 0; i < pad; ++i) {
    fs[static_cast<std::size_t>(i)] *= std::conj(fk[static_cast<std::size_t>(i)]);
  }
  fft_inplace(fs, true);

  for (std::int64_t o = 0; o <= n - klen; ++o) {
    double expected = 0.0;
    for (std::int64_t i = 0; i < klen; ++i) {
      expected += sig[static_cast<std::size_t>(o + i)] * ker[static_cast<std::size_t>(i)];
    }
    EXPECT_NEAR(fs[static_cast<std::size_t>(o)].real(), expected, 1e-9);
  }
}

TEST(Fft2d, RoundTrip) {
  Rng rng(67);
  constexpr std::int64_t rows = 8, cols = 16;
  std::vector<Cpx> x(rows * cols);
  for (auto& v : x) {
    v = Cpx(rng.uniform(-1, 1), 0.0);
  }
  std::vector<Cpx> y = x;
  fft2d_inplace(y, rows, cols, false);
  fft2d_inplace(y, rows, cols, true);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(std::abs(y[i] - x[i]), 0.0, 1e-10);
  }
}

TEST(Fft2d, SeparabilityMatchesRowColumnTransforms) {
  Rng rng(69);
  constexpr std::int64_t rows = 4, cols = 8;
  std::vector<Cpx> x(rows * cols);
  for (auto& v : x) {
    v = Cpx(rng.uniform(-1, 1), rng.uniform(-1, 1));
  }
  std::vector<Cpx> via2d = x;
  fft2d_inplace(via2d, rows, cols, false);

  // Manual: rows then columns.
  std::vector<Cpx> manual = x;
  for (std::int64_t r = 0; r < rows; ++r) {
    std::vector<Cpx> row(manual.begin() + r * cols, manual.begin() + (r + 1) * cols);
    fft_inplace(row, false);
    std::copy(row.begin(), row.end(), manual.begin() + r * cols);
  }
  for (std::int64_t c = 0; c < cols; ++c) {
    std::vector<Cpx> col(static_cast<std::size_t>(rows));
    for (std::int64_t r = 0; r < rows; ++r) {
      col[static_cast<std::size_t>(r)] = manual[static_cast<std::size_t>(r * cols + c)];
    }
    fft_inplace(col, false);
    for (std::int64_t r = 0; r < rows; ++r) {
      manual[static_cast<std::size_t>(r * cols + c)] = col[static_cast<std::size_t>(r)];
    }
  }
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(std::abs(via2d[i] - manual[i]), 0.0, 1e-10);
  }
}

TEST(Fft2d, FloatVariantTracksDoubleTransform) {
  Rng rng(71);
  constexpr std::int64_t rows = 16, cols = 16;
  std::vector<Cpx> xd(rows * cols);
  std::vector<std::complex<float>> xf(rows * cols);
  for (std::size_t i = 0; i < xd.size(); ++i) {
    const double v = rng.uniform(-1, 1);
    xd[i] = Cpx(v, 0.0);
    xf[i] = std::complex<float>(static_cast<float>(v), 0.0f);
  }
  fft2d_inplace(xd, rows, cols, false);
  fft2d_inplace(xf.data(), rows, cols, false);
  for (std::size_t i = 0; i < xd.size(); ++i) {
    EXPECT_NEAR(xf[i].real(), xd[i].real(), 1e-4);
    EXPECT_NEAR(xf[i].imag(), xd[i].imag(), 1e-4);
  }
}

TEST(Fft, FloatRoundTrip) {
  Rng rng(73);
  constexpr std::int64_t n = 64;
  std::vector<std::complex<float>> x(n);
  for (auto& v : x) {
    v = std::complex<float>(static_cast<float>(rng.uniform(-1, 1)),
                            static_cast<float>(rng.uniform(-1, 1)));
  }
  std::vector<std::complex<float>> y = x;
  fft_inplace(y.data(), n, false);
  fft_inplace(y.data(), n, true);
  for (std::int64_t i = 0; i < n; ++i) {
    EXPECT_NEAR(std::abs(y[static_cast<std::size_t>(i)] -
                         x[static_cast<std::size_t>(i)]),
                0.0, 1e-5);
  }
}

TEST(Fft2d, SizeValidation) {
  std::vector<Cpx> x(12);
  EXPECT_THROW(fft2d_inplace(x, 3, 4, false), Error);
  EXPECT_THROW(fft2d_inplace(x, 4, 4, false), Error);  // size mismatch
}

}  // namespace
}  // namespace tdc
