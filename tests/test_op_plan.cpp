// Tests for the memory-bound op plans (exec/op_plans.h): pooling, inference
// batch-norm, bias, residual add, concat and the fully-connected head,
// checked against the autograd reference implementations (src/autograd/) and
// naive inline oracles, under NaN-poisoned guard-banded workspaces, with
// bit-reproducibility across thread counts.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "autograd/batchnorm.h"
#include "autograd/layers.h"
#include "autograd/linear.h"
#include "common/check.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "exec/op_plans.h"

namespace tdc {
namespace {

constexpr float kGuard = 12345.678f;
constexpr std::int64_t kGuardFloats = 64;

// Workspace of exactly plan->workspace_bytes(), bracketed by guard bands and
// poisoned with NaN (see test_conv_plan.cpp). The memory-bound plans all
// declare zero workspace, so the guard bands sit back to back — any scratch
// write at all trips them.
struct PoisonedWorkspace {
  explicit PoisonedWorkspace(std::int64_t bytes)
      : floats(bytes / static_cast<std::int64_t>(sizeof(float))),
        buf(static_cast<std::size_t>(floats + 2 * kGuardFloats), kGuard) {
    poison();
  }

  void poison() {
    std::fill(buf.begin() + kGuardFloats, buf.begin() + kGuardFloats + floats,
              std::numeric_limits<float>::quiet_NaN());
  }

  std::span<float> span() {
    return std::span<float>(buf).subspan(kGuardFloats,
                                         static_cast<std::size_t>(floats));
  }

  bool guards_intact() const {
    for (std::int64_t i = 0; i < kGuardFloats; ++i) {
      if (buf[static_cast<std::size_t>(i)] != kGuard ||
          buf[buf.size() - 1 - static_cast<std::size_t>(i)] != kGuard) {
        return false;
      }
    }
    return true;
  }

  std::int64_t floats;
  std::vector<float> buf;
};

// Runs a single-input plan under poison+guards and verifies determinism
// across thread counts before handing the output back.
Tensor run_guarded(const OpPlan& plan, const Tensor& x) {
  PoisonedWorkspace ws(plan.workspace_bytes());
  Tensor y({plan.output_shape().c, plan.output_shape().h,
            plan.output_shape().w});
  plan.run(x, &y, ws.span());
  EXPECT_TRUE(ws.guards_intact());

  const int saved = num_threads();
  for (const int nt : {1, 3}) {
    set_num_threads(nt);
    ws.poison();
    Tensor again(y.dims());
    plan.run(x, &again, ws.span());
    EXPECT_EQ(Tensor::max_abs_diff(y, again), 0.0) << "threads=" << nt;
  }
  set_num_threads(saved);
  return y;
}

// [C, H, W] -> [1, C, H, W] for the batch-shaped autograd layers.
Tensor with_batch_dim(const Tensor& x) {
  return x.reshaped({1, x.dim(0), x.dim(1), x.dim(2)});
}

TEST(PoolPlan, MaxPool2x2MatchesAutogradBitwise) {
  Rng rng(701);
  const OpShape in{5, 12, 8};
  const Tensor x = Tensor::random_uniform({in.c, in.h, in.w}, rng);

  PoolDescriptor d;
  d.in = in;
  const auto plan = compile_pool_plan(d);
  const Tensor y = run_guarded(*plan, x);

  MaxPool2x2 ref;
  const Tensor expected = ref.forward(with_batch_dim(x), /*train=*/false);
  ASSERT_EQ(y.numel(), expected.numel());
  EXPECT_EQ(Tensor::max_abs_diff(y, expected.reshaped(y.dims())), 0.0);
}

TEST(PoolPlan, PaddedStridedMaxPoolMatchesNaiveOracle) {
  // The ResNet stem geometry: 3×3 window, stride 2, padding 1; padding taps
  // are ignored (identical to -inf padding).
  Rng rng(702);
  const OpShape in{3, 9, 11};
  const Tensor x = Tensor::random_uniform({in.c, in.h, in.w}, rng);
  PoolDescriptor d;
  d.in = in;
  d.window_h = d.window_w = 3;
  d.stride_h = d.stride_w = 2;
  d.pad_h = d.pad_w = 1;
  const auto plan = compile_pool_plan(d);
  const Tensor y = run_guarded(*plan, x);

  ASSERT_EQ(plan->output_shape(), (OpShape{3, 5, 6}));
  for (std::int64_t c = 0; c < in.c; ++c) {
    for (std::int64_t oh = 0; oh < 5; ++oh) {
      for (std::int64_t ow = 0; ow < 6; ++ow) {
        float best = -std::numeric_limits<float>::infinity();
        for (std::int64_t r = 0; r < 3; ++r) {
          for (std::int64_t s = 0; s < 3; ++s) {
            const std::int64_t ih = oh * 2 - 1 + r;
            const std::int64_t iw = ow * 2 - 1 + s;
            if (ih >= 0 && ih < in.h && iw >= 0 && iw < in.w) {
              best = std::max(best, x(c, ih, iw));
            }
          }
        }
        ASSERT_EQ(y(c, oh, ow), best) << c << "," << oh << "," << ow;
      }
    }
  }
}

TEST(PoolPlan, AvgPoolExcludesPaddingFromTheDivisor) {
  const OpShape in{1, 4, 4};
  Tensor x({in.c, in.h, in.w});
  x.fill(2.0f);
  PoolDescriptor d;
  d.in = in;
  d.window_h = d.window_w = 3;
  d.stride_h = d.stride_w = 3;
  d.pad_h = d.pad_w = 1;
  d.kind = PoolKind::kAvg;
  const auto plan = compile_pool_plan(d);
  const Tensor y = run_guarded(*plan, x);
  // Every window averages only its in-bounds taps, so a constant input must
  // reproduce the constant exactly regardless of window clipping.
  for (std::int64_t i = 0; i < y.numel(); ++i) {
    ASSERT_EQ(y[i], 2.0f);
  }
}

TEST(GlobalPoolPlan, AvgMatchesAutogradBitwise) {
  Rng rng(703);
  const OpShape in{7, 6, 9};
  const Tensor x = Tensor::random_uniform({in.c, in.h, in.w}, rng);
  const auto plan = compile_global_pool_plan(in);
  const Tensor y = run_guarded(*plan, x);

  GlobalAvgPool ref;
  const Tensor expected = ref.forward(with_batch_dim(x), /*train=*/false);
  ASSERT_EQ(y.numel(), expected.numel());
  for (std::int64_t c = 0; c < in.c; ++c) {
    ASSERT_EQ(y[c], expected[c]) << "channel " << c;
  }
}

TEST(EltwisePlan, ReluMatchesAutograd) {
  Rng rng(704);
  const OpShape shape{4, 5, 6};
  const Tensor x = Tensor::random_uniform({shape.c, shape.h, shape.w}, rng);
  const auto plan = compile_relu_plan(shape);
  const Tensor y = run_guarded(*plan, x);

  ReLU ref;
  const Tensor expected = ref.forward(x, /*train=*/false);
  EXPECT_EQ(Tensor::max_abs_diff(y, expected), 0.0);
}

TEST(EltwisePlan, BatchNormMatchesAutogradEvalForward) {
  Rng rng(705);
  const OpShape shape{6, 7, 5};
  const Tensor x = Tensor::random_uniform({shape.c, shape.h, shape.w}, rng);
  const Tensor gamma = Tensor::random_uniform({shape.c}, rng, 0.5f, 1.5f);
  const Tensor beta = Tensor::random_uniform({shape.c}, rng, -0.5f, 0.5f);

  // Fresh BatchNorm2d running stats are mean 0 / var 1; set γ and β through
  // the param interface and compare eval-mode forward against the folded
  // inference plan.
  BatchNorm2d ref("bn", shape.c);
  ref.params()[0]->value = gamma;
  ref.params()[1]->value = beta;
  const Tensor expected = ref.forward(with_batch_dim(x), /*train=*/false);

  const FoldedBatchNorm folded = fold_batchnorm(
      gamma, beta, Tensor({shape.c}), Tensor::full({shape.c}, 1.0f));
  const auto plan =
      compile_batchnorm_plan(shape, folded.scale, folded.shift);
  const Tensor y = run_guarded(*plan, x);
  EXPECT_LT(Tensor::rel_error(y, expected.reshaped(y.dims())), 1e-5);
}

TEST(EltwisePlan, FoldedBatchNormMatchesDefinitionWithRealStats) {
  Rng rng(706);
  const OpShape shape{5, 4, 4};
  const Tensor x = Tensor::random_uniform({shape.c, shape.h, shape.w}, rng);
  const Tensor gamma = Tensor::random_uniform({shape.c}, rng, 0.5f, 1.5f);
  const Tensor beta = Tensor::random_uniform({shape.c}, rng, -0.5f, 0.5f);
  const Tensor mean = Tensor::random_uniform({shape.c}, rng, -0.3f, 0.3f);
  const Tensor var = Tensor::random_uniform({shape.c}, rng, 0.2f, 2.0f);
  const double eps = 1e-5;

  const FoldedBatchNorm folded = fold_batchnorm(gamma, beta, mean, var, eps);
  const auto plan = compile_batchnorm_plan(shape, folded.scale, folded.shift);
  const Tensor y = run_guarded(*plan, x);

  const std::int64_t plane = shape.h * shape.w;
  for (std::int64_t c = 0; c < shape.c; ++c) {
    const double inv_std = 1.0 / std::sqrt(static_cast<double>(var[c]) + eps);
    for (std::int64_t i = 0; i < plane; ++i) {
      const double expected =
          static_cast<double>(gamma[c]) *
              (static_cast<double>(x[c * plane + i]) - mean[c]) * inv_std +
          beta[c];
      ASSERT_NEAR(y[c * plane + i], expected, 1e-4);
    }
  }
}

TEST(EltwisePlan, BatchNormFusedReluMatchesSeparatePlansBitwise) {
  Rng rng(707);
  const OpShape shape{4, 6, 6};
  const Tensor x = Tensor::random_uniform({shape.c, shape.h, shape.w}, rng);
  const Tensor scale = Tensor::random_uniform({shape.c}, rng, -1.5f, 1.5f);
  const Tensor shift = Tensor::random_uniform({shape.c}, rng, -0.5f, 0.5f);

  const auto fused = compile_batchnorm_plan(shape, scale, shift,
                                            /*fuse_relu=*/true);
  const auto bn = compile_batchnorm_plan(shape, scale, shift);
  const auto relu = compile_relu_plan(shape);
  EXPECT_EQ(Tensor::max_abs_diff(run_guarded(*fused, x),
                                 relu->run(bn->run(x))),
            0.0);
}

TEST(EltwisePlan, BiasAddsPerChannel) {
  Rng rng(708);
  const OpShape shape{3, 4, 5};
  const Tensor x = Tensor::random_uniform({shape.c, shape.h, shape.w}, rng);
  const Tensor bias = Tensor::random_uniform({shape.c}, rng);
  const auto plan = compile_bias_plan(shape, bias);
  const Tensor y = run_guarded(*plan, x);
  for (std::int64_t c = 0; c < shape.c; ++c) {
    for (std::int64_t i = 0; i < shape.h * shape.w; ++i) {
      ASSERT_EQ(y[c * shape.h * shape.w + i],
                x[c * shape.h * shape.w + i] + bias[c]);
    }
  }
}

TEST(EltwisePlan, ResidualAddAndAddReluJoinInputs) {
  Rng rng(709);
  const OpShape shape{4, 5, 5};
  const Tensor a = Tensor::random_uniform({shape.c, shape.h, shape.w}, rng);
  const Tensor b = Tensor::random_uniform({shape.c, shape.h, shape.w}, rng);
  const Tensor c3 = Tensor::random_uniform({shape.c, shape.h, shape.w}, rng);

  const auto add = compile_add_plan(shape);
  PoisonedWorkspace ws(add->workspace_bytes());
  Tensor y({shape.c, shape.h, shape.w});
  const float* two[] = {a.raw(), b.raw()};
  add->run_inputs(std::span<const float* const>(two, 2), y.raw(), ws.span());
  EXPECT_TRUE(ws.guards_intact());
  for (std::int64_t i = 0; i < y.numel(); ++i) {
    ASSERT_EQ(y[i], a[i] + b[i]);
  }

  // relu(main + skip) — the ResNet join.
  const auto add_relu = compile_add_plan(shape, 2, /*fuse_relu=*/true);
  Tensor yr({shape.c, shape.h, shape.w});
  add_relu->run_inputs(std::span<const float* const>(two, 2), yr.raw(),
                       ws.span());
  for (std::int64_t i = 0; i < y.numel(); ++i) {
    ASSERT_EQ(yr[i], std::max(a[i] + b[i], 0.0f));
  }

  // Three-way join.
  const auto add3 = compile_add_plan(shape, 3);
  const float* three[] = {a.raw(), b.raw(), c3.raw()};
  Tensor y3({shape.c, shape.h, shape.w});
  add3->run_inputs(std::span<const float* const>(three, 3), y3.raw(),
                   ws.span());
  for (std::int64_t i = 0; i < y.numel(); ++i) {
    ASSERT_EQ(y3[i], a[i] + b[i] + c3[i]);
  }
}

TEST(ConcatPlan, StacksChannelsInInputOrder) {
  Rng rng(710);
  const OpShape in1{2, 4, 5};
  const OpShape in2{3, 4, 5};
  const Tensor a = Tensor::random_uniform({in1.c, in1.h, in1.w}, rng);
  const Tensor b = Tensor::random_uniform({in2.c, in2.h, in2.w}, rng);
  const auto plan = compile_concat_plan({in1, in2});
  ASSERT_EQ(plan->output_shape(), (OpShape{5, 4, 5}));

  PoisonedWorkspace ws(plan->workspace_bytes());
  Tensor y({5, 4, 5});
  const float* ins[] = {a.raw(), b.raw()};
  plan->run_inputs(std::span<const float* const>(ins, 2), y.raw(), ws.span());
  EXPECT_TRUE(ws.guards_intact());
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    ASSERT_EQ(y[i], a[i]);
  }
  for (std::int64_t i = 0; i < b.numel(); ++i) {
    ASSERT_EQ(y[a.numel() + i], b[i]);
  }
  EXPECT_THROW(compile_concat_plan({in1, OpShape{2, 3, 5}}), Error);
}

TEST(FullyConnectedPlan, MatchesAutogradLinearForward) {
  Rng rng(711);
  const std::int64_t in = 37;
  const std::int64_t out = 11;
  Linear ref("fc", in, out, rng);
  ref.params()[1]->value = Tensor::random_uniform({out}, rng);  // bias

  const Tensor x = Tensor::random_uniform({in}, rng);
  const auto plan = compile_fc_plan(ref.params()[0]->value,
                                    ref.params()[1]->value);
  ASSERT_EQ(plan->input_shape(0), (OpShape{in, 1, 1}));
  ASSERT_EQ(plan->output_shape(), (OpShape{out, 1, 1}));
  const Tensor y = run_guarded(*plan, x.reshaped({in, 1, 1}));

  const Tensor expected = ref.forward(x.reshaped({1, in}), /*train=*/false);
  ASSERT_EQ(y.numel(), expected.numel());
  for (std::int64_t o = 0; o < out; ++o) {
    ASSERT_NEAR(y[o], expected[o], 1e-4) << "output " << o;
  }
}

TEST(FullyConnectedPlan, BiasIsOptional) {
  Rng rng(712);
  const Tensor w = Tensor::random_uniform({4, 6}, rng);
  const Tensor x = Tensor::random_uniform({6, 1, 1}, rng);
  const auto plan = compile_fc_plan(w);
  const Tensor y = run_guarded(*plan, x);
  for (std::int64_t o = 0; o < 4; ++o) {
    float acc = 0.0f;
    for (std::int64_t k = 0; k < 6; ++k) {
      acc += w(o, k) * x[k];
    }
    ASSERT_NEAR(y[o], acc, 1e-5);
  }
}

TEST(OpPlan, GeometryValidationThrows) {
  Rng rng(713);
  PoolDescriptor bad;
  bad.in = OpShape{2, 4, 4};
  bad.window_h = 5;  // taller than the padded input
  EXPECT_THROW(compile_pool_plan(bad), Error);
  EXPECT_THROW(compile_bias_plan(OpShape{3, 2, 2},
                                 Tensor::random_uniform({4}, rng)),
               Error);
  EXPECT_THROW(compile_add_plan(OpShape{2, 2, 2}, 1), Error);
  const auto plan = compile_relu_plan(OpShape{2, 3, 3});
  Tensor wrong({3, 3, 3});
  Tensor y({2, 3, 3});
  EXPECT_THROW(plan->run(wrong, &y, {}), Error);
}

}  // namespace
}  // namespace tdc
