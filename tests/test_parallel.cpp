#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/parallel.h"

namespace tdc {
namespace {

// Restores the ambient thread count and arena split after each test so
// suites don't leak configuration into each other.
class ParallelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_threads_ = num_threads();
    saved_arenas_ = arena_config();
  }
  void TearDown() override {
    set_num_threads(saved_threads_);
    set_arena_config(saved_arenas_);
  }
  int saved_threads_ = 1;
  ArenaConfig saved_arenas_;
};

TEST_F(ParallelTest, NumThreadsIsPositive) { EXPECT_GE(num_threads(), 1); }

TEST_F(ParallelTest, SetNumThreadsClampsToOne) {
  set_num_threads(0);
  EXPECT_EQ(num_threads(), 1);
  set_num_threads(-3);
  EXPECT_EQ(num_threads(), 1);
  set_num_threads(3);
  EXPECT_EQ(num_threads(), 3);
}

TEST_F(ParallelTest, CoversRangeExactlyOnce) {
  for (const int nt : {1, 2, 4, 7}) {
    set_num_threads(nt);
    constexpr std::int64_t kN = 10'007;  // prime, uneven chunking
    std::vector<std::atomic<int>> hits(kN);
    parallel_for(0, kN, 1, [&](std::int64_t b, std::int64_t e) {
      for (std::int64_t i = b; i < e; ++i) {
        hits[static_cast<std::size_t>(i)].fetch_add(1);
      }
    });
    for (std::int64_t i = 0; i < kN; ++i) {
      ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "index " << i;
    }
  }
}

TEST_F(ParallelTest, EmptyRangeDoesNothing) {
  bool called = false;
  parallel_for(5, 5, 1, [&](std::int64_t, std::int64_t) { called = true; });
  parallel_for(7, 3, 1, [&](std::int64_t, std::int64_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST_F(ParallelTest, GrainSizeKeepsSmallRangesInline) {
  set_num_threads(4);
  int calls = 0;  // safe only because the range must stay on one thread
  parallel_for(0, 100, 1000, [&](std::int64_t b, std::int64_t e) {
    ++calls;
    EXPECT_EQ(b, 0);
    EXPECT_EQ(e, 100);
  });
  EXPECT_EQ(calls, 1);
}

TEST_F(ParallelTest, DeterministicAcrossThreadCounts) {
  constexpr std::int64_t kN = 4'096;
  auto run = [&](int nt) {
    set_num_threads(nt);
    std::vector<float> out(kN);
    parallel_for(0, kN, 1, [&](std::int64_t b, std::int64_t e) {
      for (std::int64_t i = b; i < e; ++i) {
        out[static_cast<std::size_t>(i)] =
            static_cast<float>(i) * 0.25f + 1.0f;
      }
    });
    return out;
  };
  const std::vector<float> serial = run(1);
  const std::vector<float> threaded = run(8);
  EXPECT_EQ(serial, threaded);
}

TEST_F(ParallelTest, ReduceMatchesSerialSum) {
  constexpr std::int64_t kN = 123'457;
  const auto body = [](std::int64_t b, std::int64_t e, std::int64_t acc) {
    for (std::int64_t i = b; i < e; ++i) {
      acc += i;
    }
    return acc;
  };
  const auto combine = [](std::int64_t a, std::int64_t b) { return a + b; };
  set_num_threads(1);
  const std::int64_t serial =
      parallel_reduce(0, kN, 1, std::int64_t{0}, body, combine);
  set_num_threads(5);
  const std::int64_t threaded =
      parallel_reduce(0, kN, 1, std::int64_t{0}, body, combine);
  EXPECT_EQ(serial, kN * (kN - 1) / 2);
  EXPECT_EQ(threaded, serial);
}

TEST_F(ParallelTest, NestedCallsRunInline) {
  set_num_threads(4);
  std::atomic<int> inner_calls{0};
  parallel_for(0, 8, 1, [&](std::int64_t b, std::int64_t e) {
    EXPECT_TRUE(in_parallel_region());
    // A nested region must not fan out again; it runs inline on this thread.
    parallel_for(0, 100, 1, [&](std::int64_t ib, std::int64_t ie) {
      EXPECT_EQ(ib, 0);
      EXPECT_EQ(ie, 100);
      inner_calls.fetch_add(1);
    });
    (void)b;
    (void)e;
  });
  EXPECT_FALSE(in_parallel_region());
  EXPECT_GE(inner_calls.load(), 1);
}

TEST_F(ParallelTest, ConcurrentTopLevelCallersStayCorrect) {
  // Two application threads opening top-level regions at once: the arena
  // admission gives each its own region (workers shared chunk by chunk) —
  // both must cover their own range exactly.
  set_num_threads(4);
  constexpr std::int64_t kN = 50'000;
  auto fill = [&](std::vector<std::int64_t>& out) {
    parallel_for(0, kN, 1, [&](std::int64_t b, std::int64_t e) {
      for (std::int64_t i = b; i < e; ++i) {
        out[static_cast<std::size_t>(i)] = i * 3 + 1;
      }
    });
  };
  for (int round = 0; round < 20; ++round) {
    std::vector<std::int64_t> a(kN, -1);
    std::vector<std::int64_t> b(kN, -1);
    std::thread other([&] { fill(b); });
    fill(a);
    other.join();
    for (std::int64_t i = 0; i < kN; ++i) {
      ASSERT_EQ(a[static_cast<std::size_t>(i)], i * 3 + 1) << "a @" << i;
      ASSERT_EQ(b[static_cast<std::size_t>(i)], i * 3 + 1) << "b @" << i;
    }
  }
}

TEST_F(ParallelTest, ArenaConfigResolvesDefaults) {
  set_arena_config(ArenaConfig{});  // both fields default
  const ArenaConfig cfg = arena_config();
  EXPECT_EQ(cfg.inter_op, kMaxArenas);
  EXPECT_EQ(cfg.intra_op, num_threads());  // 0 tracks the thread count

  set_arena_config(ArenaConfig{.inter_op = 3, .intra_op = 2});
  EXPECT_EQ(arena_config().inter_op, 3);
  EXPECT_EQ(arena_config().intra_op, 2);

  set_arena_config(ArenaConfig{.inter_op = 100, .intra_op = 0});
  EXPECT_EQ(arena_config().inter_op, kMaxArenas);  // clamped to the slots
  EXPECT_EQ(arena_config().intra_op, num_threads());
}

TEST_F(ParallelTest, ConcurrentCallersWithinInterOpNeverFallBack) {
  // The regression this PR exists for: with arena slots free, N concurrent
  // top-level callers must all be served by the pool — zero of them may
  // degrade to inline serial execution.
  set_num_threads(4);
  set_arena_config(ArenaConfig{});  // inter_op = kMaxArenas
  constexpr int kCallers = 4;      // <= kMaxArenas
  constexpr std::int64_t kN = 200'000;

  const std::int64_t fallbacks_before = parallel_stats().serial_fallbacks;
  std::vector<std::vector<std::int64_t>> outs(
      kCallers, std::vector<std::int64_t>(kN, -1));
  {
    std::vector<std::thread> callers;
    for (int t = 0; t < kCallers; ++t) {
      callers.emplace_back([&outs, t] {
        for (int round = 0; round < 5; ++round) {
          parallel_for(0, kN, 1, [&](std::int64_t b, std::int64_t e) {
            for (std::int64_t i = b; i < e; ++i) {
              outs[static_cast<std::size_t>(t)][static_cast<std::size_t>(i)] =
                  i * 3 + t;
            }
          });
        }
      });
    }
    for (std::thread& th : callers) {
      th.join();
    }
  }
  EXPECT_EQ(parallel_stats().serial_fallbacks - fallbacks_before, 0);
  for (int t = 0; t < kCallers; ++t) {
    for (std::int64_t i = 0; i < kN; ++i) {
      ASSERT_EQ(outs[static_cast<std::size_t>(t)][static_cast<std::size_t>(i)],
                i * 3 + t)
          << "caller " << t << " @" << i;
    }
  }
}

TEST_F(ParallelTest, InterOpOneForcesCountedFallback) {
  // With the arena bound dropped to one region, a second concurrent caller
  // must degrade to inline execution — correct results, counted fallback.
  set_num_threads(4);
  set_arena_config(ArenaConfig{.inter_op = 1, .intra_op = 0});
  constexpr std::int64_t kN = 500'000;
  const std::int64_t fallbacks_before = parallel_stats().serial_fallbacks;

  std::int64_t fallbacks_after = fallbacks_before;
  // Colliding two regions is timing-dependent; retry a few rounds (each
  // round overlaps two large regions, so one collision is near-certain).
  for (int round = 0; round < 50 && fallbacks_after == fallbacks_before;
       ++round) {
    std::vector<std::int64_t> a(kN, -1);
    std::vector<std::int64_t> b(kN, -1);
    auto fill = [&](std::vector<std::int64_t>& out) {
      parallel_for(0, kN, 1, [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i) {
          out[static_cast<std::size_t>(i)] = i;
        }
      });
    };
    std::thread other([&] { fill(b); });
    fill(a);
    other.join();
    for (std::int64_t i = 0; i < kN; i += 997) {
      ASSERT_EQ(a[static_cast<std::size_t>(i)], i);
      ASSERT_EQ(b[static_cast<std::size_t>(i)], i);
    }
    fallbacks_after = parallel_stats().serial_fallbacks;
  }
  EXPECT_GT(fallbacks_after, fallbacks_before);
}

TEST_F(ParallelTest, StatsCountRegions) {
  set_num_threads(4);
  const ParallelStats before = parallel_stats();
  parallel_for(0, 10'000, 1, [](std::int64_t, std::int64_t) {});
  const ParallelStats after = parallel_stats();
  EXPECT_EQ(after.pool_regions, before.pool_regions + 1);
  // A solo region is not a fallback, and the high-water mark is at least 1.
  EXPECT_EQ(after.serial_fallbacks, before.serial_fallbacks);
  EXPECT_GE(after.peak_concurrent_regions, 1);
}

// A deliberately foreign exception type: the pool must rethrow anything the
// body throws, not just the tdc::Error taxonomy.
struct Boom {};

TEST_F(ParallelTest, ExceptionsPropagateToCaller) {
  for (const int nt : {1, 4}) {
    set_num_threads(nt);
    EXPECT_THROW(parallel_for(0, 64, 1,
                              [&](std::int64_t b, std::int64_t) {
                                if (b >= 0) {
                                  throw Boom{};
                                }
                              }),
                 Boom);
    // The pool must stay usable after an exception.
    std::atomic<std::int64_t> sum{0};
    parallel_for(0, 64, 1, [&](std::int64_t b, std::int64_t e) {
      sum.fetch_add(e - b);
    });
    EXPECT_EQ(sum.load(), 64);
  }
}

}  // namespace
}  // namespace tdc
