#include <gtest/gtest.h>

#include "common/check.h"
#include "linalg/gemm.h"
#include "tensor/unfold.h"
#include "tucker/flops.h"
#include "tucker/tucker.h"

namespace tdc {
namespace {

TEST(Tucker, FactorShapes) {
  Rng rng(71);
  const Tensor k = Tensor::random_uniform({8, 6, 3, 3}, rng);
  const TuckerFactors f = tucker_decompose(k, {4, 3});
  EXPECT_EQ(f.u1.dim(0), 8);
  EXPECT_EQ(f.u1.dim(1), 4);
  EXPECT_EQ(f.u2.dim(0), 6);
  EXPECT_EQ(f.u2.dim(1), 3);
  EXPECT_EQ(f.core.dim(0), 4);
  EXPECT_EQ(f.core.dim(1), 3);
  EXPECT_EQ(f.core.dim(2), 3);
  EXPECT_EQ(f.core.dim(3), 3);
  EXPECT_EQ(f.ranks(), (TuckerRanks{4, 3}));
}

TEST(Tucker, FullRankReconstructionIsExact) {
  Rng rng(73);
  const Tensor k = Tensor::random_uniform({6, 5, 3, 3}, rng);
  const Tensor recon = tucker_project(k, {6, 5});
  EXPECT_LT(Tensor::rel_error(recon, k), 1e-4);
}

TEST(Tucker, ExactlyRecoversLowRankTensor) {
  // Build a kernel that is exactly Tucker-rank (2, 3); projecting at those
  // ranks must be lossless.
  Rng rng(75);
  TuckerFactors f;
  f.core = Tensor::random_uniform({2, 3, 3, 3}, rng);
  f.u1 = Tensor::random_uniform({8, 2}, rng);
  f.u2 = Tensor::random_uniform({6, 3}, rng);
  const Tensor k = tucker_reconstruct(f);
  EXPECT_LT(tucker_projection_error(k, {2, 3}), 1e-4);
}

TEST(Tucker, ErrorDecreasesMonotonicallyWithRank) {
  Rng rng(77);
  const Tensor k = Tensor::random_uniform({12, 10, 3, 3}, rng);
  double prev = 1e9;
  for (std::int64_t r = 2; r <= 12; r += 2) {
    const double err =
        tucker_projection_error(k, {r, std::min<std::int64_t>(r, 10)});
    EXPECT_LE(err, prev + 1e-6) << "rank " << r;
    prev = err;
  }
}

TEST(Tucker, ProjectionIsIdempotent) {
  Rng rng(79);
  const Tensor k = Tensor::random_uniform({8, 8, 3, 3}, rng);
  const Tensor once = tucker_project(k, {3, 4});
  const Tensor twice = tucker_project(once, {3, 4});
  EXPECT_LT(Tensor::rel_error(twice, once), 1e-3);
}

TEST(Tucker, FactorsAreOrthonormal) {
  Rng rng(81);
  const Tensor k = Tensor::random_uniform({10, 8, 3, 3}, rng);
  const TuckerFactors f = tucker_decompose(k, {5, 4});
  const Tensor g1 = matmul(transpose2d(f.u1), f.u1);
  for (std::int64_t i = 0; i < 5; ++i) {
    for (std::int64_t j = 0; j < 5; ++j) {
      EXPECT_NEAR(g1(i, j), i == j ? 1.0f : 0.0f, 1e-4);
    }
  }
}

TEST(Tucker, LatentRanksOfSyntheticLowRank) {
  Rng rng(83);
  TuckerFactors f;
  f.core = Tensor::random_uniform({3, 4, 3, 3}, rng);
  f.u1 = Tensor::random_uniform({9, 3}, rng);
  f.u2 = Tensor::random_uniform({8, 4}, rng);
  const Tensor k = tucker_reconstruct(f);
  // Gram-route singular values carry O(sqrt(eps_f32)) relative noise; the
  // rank gap of this synthetic tensor is far above 1e-2.
  const TuckerRanks r = tucker_latent_ranks(k, 1e-2);
  EXPECT_EQ(r.d1, 3);
  EXPECT_EQ(r.d2, 4);
}

TEST(Tucker, LatentRanksOfDeadKernelsClampToOne) {
  // Regression: every singular value of an all-zero (or numerically dead)
  // kernel falls below tol·largest, which used to yield rank 0 and violate
  // tucker_decompose's d1/d2 >= 1 precondition.
  const Tensor zero({8, 6, 3, 3});
  const TuckerRanks rz = tucker_latent_ranks(zero);
  EXPECT_EQ(rz.d1, 1);
  EXPECT_EQ(rz.d2, 1);
  EXPECT_NO_THROW(tucker_decompose(zero, rz));

  // A denormal-scale kernel must also round-trip through decompose.
  const Tensor tiny = Tensor::full({8, 6, 3, 3}, 1e-38f);
  const TuckerRanks rt = tucker_latent_ranks(tiny);
  EXPECT_GE(rt.d1, 1);
  EXPECT_GE(rt.d2, 1);
  EXPECT_NO_THROW(tucker_decompose(tiny, rt));
}

TEST(Tucker, RankValidation) {
  Rng rng(85);
  const Tensor k = Tensor::random_uniform({4, 4, 3, 3}, rng);
  EXPECT_THROW(tucker_decompose(k, {0, 2}), Error);
  EXPECT_THROW(tucker_decompose(k, {5, 2}), Error);
  EXPECT_THROW(tucker_decompose(k, {2, 5}), Error);
}

TEST(Tucker, ReconstructMatchesEquationOne) {
  // Check Eq. (1) entrywise against mode products.
  Rng rng(87);
  TuckerFactors f;
  f.core = Tensor::random_uniform({2, 2, 2, 2}, rng);
  f.u1 = Tensor::random_uniform({3, 2}, rng);
  f.u2 = Tensor::random_uniform({4, 2}, rng);
  const Tensor k = tucker_reconstruct(f);
  for (std::int64_t c = 0; c < 3; ++c) {
    for (std::int64_t n = 0; n < 4; ++n) {
      for (std::int64_t r = 0; r < 2; ++r) {
        for (std::int64_t s = 0; s < 2; ++s) {
          double expected = 0.0;
          for (std::int64_t d1 = 0; d1 < 2; ++d1) {
            for (std::int64_t d2 = 0; d2 < 2; ++d2) {
              expected += static_cast<double>(f.core(d1, d2, r, s)) *
                          f.u1(c, d1) * f.u2(n, d2);
            }
          }
          EXPECT_NEAR(k(c, n, r, s), expected, 1e-5);
        }
      }
    }
  }
}

// --- Eqs. (5)/(6): parameter and FLOPs accounting ---

TEST(TuckerFlops, ParamsFormula) {
  const ConvShape shape = ConvShape::valid_conv(64, 128, 28, 28, 3, 3);
  const TuckerRanks ranks{16, 32};
  // C·D1 + R·S·D1·D2 + N·D2
  EXPECT_DOUBLE_EQ(tucker_params(shape, ranks),
                   64.0 * 16 + 9.0 * 16 * 32 + 128.0 * 32);
  EXPECT_DOUBLE_EQ(params_reduction_ratio(shape, ranks),
                   (64.0 * 128 * 9) / (64.0 * 16 + 9.0 * 16 * 32 + 128.0 * 32));
}

TEST(TuckerFlops, FlopsFormulaValidConv) {
  const ConvShape shape = ConvShape::valid_conv(64, 128, 28, 28, 3, 3);
  const TuckerRanks ranks{16, 32};
  const double oh = 26, ow = 26;
  const double expected = 2.0 * (28.0 * 28 * 64 * 16) +
                          2.0 * (oh * ow * 9 * 16 * 32) +
                          2.0 * (oh * ow * 128 * 32);
  EXPECT_DOUBLE_EQ(tucker_flops(shape, ranks), expected);
}

TEST(TuckerFlops, ReductionRatioAboveOneForSmallRanks) {
  const ConvShape shape = ConvShape::same(256, 256, 14, 3);
  EXPECT_GT(flops_reduction_ratio(shape, {64, 64}), 2.0);
  EXPECT_GT(params_reduction_ratio(shape, {64, 64}), 2.0);
}

TEST(TuckerFlops, FullRanksGiveRatioBelowOne) {
  // Decomposing at full ranks adds the two 1×1 stages: more FLOPs, γF < 1.
  const ConvShape shape = ConvShape::same(64, 64, 28, 3);
  EXPECT_LT(flops_reduction_ratio(shape, {64, 64}), 1.0);
}

TEST(TuckerFlops, StageShapes) {
  const ConvShape shape = ConvShape::same(64, 128, 28, 3, 2);
  const TuckerRanks ranks{16, 32};
  const ConvShape pw1 = first_pointwise_shape(shape, ranks);
  EXPECT_EQ(pw1.c, 64);
  EXPECT_EQ(pw1.n, 16);
  EXPECT_EQ(pw1.h, 28);
  EXPECT_EQ(pw1.stride_h, 1);
  const ConvShape core = core_conv_shape(shape, ranks);
  EXPECT_EQ(core.c, 16);
  EXPECT_EQ(core.n, 32);
  EXPECT_EQ(core.stride_h, 2);
  EXPECT_EQ(core.out_h(), shape.out_h());
  const ConvShape pw2 = last_pointwise_shape(shape, ranks);
  EXPECT_EQ(pw2.c, 32);
  EXPECT_EQ(pw2.n, 128);
  EXPECT_EQ(pw2.h, shape.out_h());
}

TEST(TuckerFlops, PipelineFlopsSplitAcrossStages) {
  const ConvShape shape = ConvShape::same(32, 32, 14, 3);
  const TuckerRanks ranks{8, 8};
  const double sum = first_pointwise_shape(shape, ranks).flops() +
                     core_conv_shape(shape, ranks).flops() +
                     last_pointwise_shape(shape, ranks).flops();
  EXPECT_DOUBLE_EQ(tucker_flops(shape, ranks), sum);
}

}  // namespace
}  // namespace tdc
