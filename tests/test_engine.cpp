// Tests for the CPU execution engine: the packed-panel GEMM against a naive
// triple-loop oracle, the fused Tucker pipeline against the staged one, and
// determinism of both across thread counts.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "conv/conv.h"
#include "conv/tucker_conv.h"
#include "exec/conv_plan.h"
#include "linalg/gemm.h"
#include "tucker/tucker.h"

namespace tdc {
namespace {

// Exact-order naive oracle: C = alpha·op(A)·op(B) + beta·C.
void gemm_naive(std::int64_t m, std::int64_t n, std::int64_t k,
                const std::vector<float>& a, bool trans_a,
                const std::vector<float>& b, bool trans_b,
                std::vector<float>* c, float alpha, float beta) {
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::int64_t kk = 0; kk < k; ++kk) {
        const float av = trans_a ? a[static_cast<std::size_t>(kk * m + i)]
                                 : a[static_cast<std::size_t>(i * k + kk)];
        const float bv = trans_b ? b[static_cast<std::size_t>(j * k + kk)]
                                 : b[static_cast<std::size_t>(kk * n + j)];
        acc += static_cast<double>(av) * static_cast<double>(bv);
      }
      float& slot = (*c)[static_cast<std::size_t>(i * n + j)];
      slot = static_cast<float>(alpha * acc + beta * slot);
    }
  }
}

std::vector<float> random_vec(std::size_t size, Rng& rng) {
  std::vector<float> v(size);
  for (float& x : v) {
    x = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  return v;
}

double max_abs_diff(const std::vector<float>& a, const std::vector<float>& b) {
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, static_cast<double>(std::abs(a[i] - b[i])));
  }
  return m;
}

struct GemmSize {
  std::int64_t m, n, k;
};

// Odd, prime, sub-tile and multi-panel sizes: every ragged-edge path of the
// packed kernel (MR=6, NR=16, MC=120, KC=256) gets exercised.
const GemmSize kSizes[] = {
    {1, 1, 1},   {2, 3, 4},    {5, 7, 3},     {6, 16, 8},  {7, 17, 19},
    {13, 1, 31}, {1, 37, 2},   {23, 29, 31},  {64, 64, 64}, {97, 101, 103},
    {6, 16, 256}, {12, 32, 257}, {121, 17, 5}, {130, 40, 300},
};

const float kAlphaBeta[][2] = {{1.0f, 0.0f}, {2.0f, 0.0f}, {0.5f, 1.0f},
                               {-1.5f, 0.75f}, {0.0f, 2.0f}};

TEST(PackedGemm, MatchesNaiveOracle) {
  Rng rng(1234);
  for (const GemmSize& sz : kSizes) {
    for (const auto& ab : kAlphaBeta) {
      const auto a = random_vec(static_cast<std::size_t>(sz.m * sz.k), rng);
      const auto b = random_vec(static_cast<std::size_t>(sz.k * sz.n), rng);
      auto c = random_vec(static_cast<std::size_t>(sz.m * sz.n), rng);
      auto expected = c;
      gemm_naive(sz.m, sz.n, sz.k, a, false, b, false, &expected, ab[0], ab[1]);
      gemm(sz.m, sz.n, sz.k, a, b, c, ab[0], ab[1]);
      EXPECT_LT(max_abs_diff(c, expected), 1e-3)
          << "m=" << sz.m << " n=" << sz.n << " k=" << sz.k
          << " alpha=" << ab[0] << " beta=" << ab[1];
    }
  }
}

TEST(PackedGemm, TransAMatchesNaiveOracle) {
  Rng rng(2345);
  for (const GemmSize& sz : kSizes) {
    for (const auto& ab : kAlphaBeta) {
      const auto a = random_vec(static_cast<std::size_t>(sz.k * sz.m), rng);
      const auto b = random_vec(static_cast<std::size_t>(sz.k * sz.n), rng);
      auto c = random_vec(static_cast<std::size_t>(sz.m * sz.n), rng);
      auto expected = c;
      gemm_naive(sz.m, sz.n, sz.k, a, true, b, false, &expected, ab[0], ab[1]);
      gemm_at(sz.m, sz.n, sz.k, a, b, c, ab[0], ab[1]);
      EXPECT_LT(max_abs_diff(c, expected), 1e-3)
          << "m=" << sz.m << " n=" << sz.n << " k=" << sz.k;
    }
  }
}

TEST(PackedGemm, TransBMatchesNaiveOracle) {
  Rng rng(3456);
  for (const GemmSize& sz : kSizes) {
    for (const auto& ab : kAlphaBeta) {
      const auto a = random_vec(static_cast<std::size_t>(sz.m * sz.k), rng);
      const auto b = random_vec(static_cast<std::size_t>(sz.n * sz.k), rng);
      auto c = random_vec(static_cast<std::size_t>(sz.m * sz.n), rng);
      auto expected = c;
      gemm_naive(sz.m, sz.n, sz.k, a, false, b, true, &expected, ab[0], ab[1]);
      gemm_bt(sz.m, sz.n, sz.k, a, b, c, ab[0], ab[1]);
      EXPECT_LT(max_abs_diff(c, expected), 1e-3)
          << "m=" << sz.m << " n=" << sz.n << " k=" << sz.k;
    }
  }
}

TEST(PackedGemm, AgreesWithLegacyBlockedGemm) {
  Rng rng(4567);
  const std::int64_t m = 130, n = 85, k = 300;
  const auto a = random_vec(static_cast<std::size_t>(m * k), rng);
  const auto b = random_vec(static_cast<std::size_t>(k * n), rng);
  std::vector<float> c_packed(static_cast<std::size_t>(m * n));
  std::vector<float> c_blocked(static_cast<std::size_t>(m * n));
  gemm(m, n, k, a, b, c_packed);
  gemm_blocked(m, n, k, a, b, c_blocked);
  EXPECT_LT(max_abs_diff(c_packed, c_blocked), 1e-3);
}

TEST(PackedGemm, DeterministicAcrossThreadCounts) {
  const int saved = num_threads();
  Rng rng(5678);
  const std::int64_t m = 250, n = 90, k = 300;
  const auto a = random_vec(static_cast<std::size_t>(m * k), rng);
  const auto b = random_vec(static_cast<std::size_t>(k * n), rng);
  auto run = [&](int nt) {
    set_num_threads(nt);
    std::vector<float> c(static_cast<std::size_t>(m * n));
    gemm(m, n, k, a, b, c);
    return c;
  };
  const auto serial = run(1);
  const auto threaded = run(6);
  set_num_threads(saved);
  EXPECT_EQ(serial, threaded);  // chunking is per row panel — bitwise equal
}

TEST(PackedGemm, PrepackedAIsBitIdenticalToPackOnTheFly) {
  Rng rng(6780);
  for (const GemmSize& sz : kSizes) {
    const auto a = random_vec(static_cast<std::size_t>(sz.m * sz.k), rng);
    const auto b = random_vec(static_cast<std::size_t>(sz.k * sz.n), rng);
    std::vector<float> c_ref(static_cast<std::size_t>(sz.m * sz.n));
    std::vector<float> c_pre(static_cast<std::size_t>(sz.m * sz.n));
    gemm(sz.m, sz.n, sz.k, a, b, c_ref);
    const PackedGemmA packed = pack_gemm_a(sz.m, sz.k, a.data(), sz.k, 1);
    gemm_prepacked(packed, sz.n, b.data(), sz.n, 1, c_pre.data(), sz.n);
    EXPECT_EQ(c_ref, c_pre) << "m=" << sz.m << " n=" << sz.n << " k=" << sz.k;
  }
}

TEST(PackedGemm, PrepackedTransposedAMatchesGemmAt) {
  Rng rng(6781);
  const std::int64_t m = 37, n = 53, k = 130;
  const auto a = random_vec(static_cast<std::size_t>(k * m), rng);  // [K, M]
  const auto b = random_vec(static_cast<std::size_t>(k * n), rng);
  std::vector<float> c_at(static_cast<std::size_t>(m * n));
  std::vector<float> c_pre(static_cast<std::size_t>(m * n));
  gemm_at(m, n, k, a, b, c_at);
  // Reading the [K, M] array as A^T is the (1, m) stride pair.
  const PackedGemmA packed = pack_gemm_a(m, k, a.data(), 1, m);
  gemm_prepacked(packed, n, b.data(), n, 1, c_pre.data(), n);
  EXPECT_EQ(c_at, c_pre);
}

TEST(Transpose2d, BlockedTransposeIsExact) {
  Rng rng(6789);
  const std::vector<std::pair<std::int64_t, std::int64_t>> sizes = {
      {1, 1}, {3, 5}, {31, 33}, {32, 32}, {64, 100}, {101, 67}};
  for (const auto& [rows, cols] : sizes) {
    const Tensor a = Tensor::random_uniform({rows, cols}, rng);
    const Tensor t = transpose2d(a);
    ASSERT_EQ(t.dim(0), cols);
    ASSERT_EQ(t.dim(1), rows);
    for (std::int64_t i = 0; i < rows; ++i) {
      for (std::int64_t j = 0; j < cols; ++j) {
        ASSERT_EQ(t(j, i), a(i, j)) << rows << "x" << cols;
      }
    }
  }
}

TEST(Im2colPlan, ReusedPlanMatchesSingleShotPath) {
  // The deprecated Im2colPlan alias is gone; the equivalent invariant on the
  // plan/execute API is that one compiled plan replayed over many inputs is
  // bit-identical to the single-shot free function (which compiles a fresh
  // plan per call).
  Rng rng(7890);
  const ConvShape shape = ConvShape::same(6, 8, 11, 3, 2);
  const Tensor k =
      Tensor::random_uniform({shape.c, shape.n, shape.r, shape.s}, rng);
  ConvDescriptor desc;
  desc.shape = shape;
  desc.algo = ConvAlgo::kIm2col;
  const auto plan = compile_conv_plan(desc, k);
  for (int i = 0; i < 3; ++i) {
    const Tensor x = Tensor::random_uniform({shape.c, shape.h, shape.w}, rng);
    EXPECT_EQ(
        Tensor::max_abs_diff(plan->run(x), conv2d_im2col(x, k, shape)), 0.0)
        << "input " << i;
  }
}

struct FusedCase {
  ConvShape shape;
  TuckerRanks ranks;
  const char* label;
};

class FusedTuckerConv : public ::testing::TestWithParam<FusedCase> {};

TEST_P(FusedTuckerConv, BitLevelParityWithStagedPipeline) {
  const auto& p = GetParam();
  Rng rng(1000);
  const Tensor x =
      Tensor::random_uniform({p.shape.c, p.shape.h, p.shape.w}, rng);
  const Tensor k = Tensor::random_uniform(
      {p.shape.c, p.shape.n, p.shape.r, p.shape.s}, rng);
  const TuckerFactors f = tucker_decompose(k, p.ranks);
  const Tensor staged = tucker_conv(x, f, p.shape, ConvAlgo::kIm2col);
  const Tensor fused = tucker_conv_fused(x, f, p.shape);
  // The fused pipeline reorders no accumulation relative to the staged
  // im2col path, so the match is bit-level, not just within tolerance.
  EXPECT_EQ(Tensor::max_abs_diff(fused, staged), 0.0) << p.label;
}

TEST_P(FusedTuckerConv, RowTileChoiceDoesNotChangeResults) {
  const auto& p = GetParam();
  Rng rng(2000);
  const Tensor x =
      Tensor::random_uniform({p.shape.c, p.shape.h, p.shape.w}, rng);
  const Tensor k = Tensor::random_uniform(
      {p.shape.c, p.shape.n, p.shape.r, p.shape.s}, rng);
  const TuckerFactors f = tucker_decompose(k, p.ranks);
  const Tensor whole = tucker_conv_fused(x, f, p.shape, p.shape.out_h());
  for (const std::int64_t tile : {std::int64_t{1}, std::int64_t{2},
                                  std::int64_t{3}}) {
    const Tensor tiled = tucker_conv_fused(x, f, p.shape, tile);
    EXPECT_EQ(Tensor::max_abs_diff(tiled, whole), 0.0)
        << p.label << " row_tile=" << tile;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, FusedTuckerConv,
    ::testing::Values(
        FusedCase{ConvShape::same(8, 6, 10, 3), {4, 3}, "same3x3"},
        FusedCase{ConvShape::same(8, 8, 12, 3, 2), {5, 5}, "strided3x3"},
        FusedCase{ConvShape::valid_conv(5, 7, 9, 11, 2, 4), {3, 4}, "asym"},
        FusedCase{ConvShape::same(16, 16, 14, 5), {6, 7}, "same5x5"},
        FusedCase{ConvShape::same(6, 4, 7, 1), {3, 2}, "pointwise_core"},
        FusedCase{ConvShape::same(12, 10, 16, 7, 2), {5, 4}, "strided7x7"}),
    [](const auto& info) { return info.param.label; });

TEST(BatchedTuckerConv, MatchesPerImageStagedPipeline) {
  Rng rng(3000);
  const ConvShape shape = ConvShape::same(8, 8, 12, 3);
  const std::int64_t batch = 5;
  const Tensor x =
      Tensor::random_uniform({batch, shape.c, shape.h, shape.w}, rng);
  const Tensor k =
      Tensor::random_uniform({shape.c, shape.n, shape.r, shape.s}, rng);
  const TuckerFactors f = tucker_decompose(k, {4, 4});

  const Tensor fused = tucker_conv_batched(x, f, shape, /*fused=*/true);
  const Tensor staged = tucker_conv_batched(x, f, shape, /*fused=*/false);
  ASSERT_EQ(fused.dims(), staged.dims());
  EXPECT_EQ(Tensor::max_abs_diff(fused, staged), 0.0);

  // Batched output must equal the single-image pipeline slice by slice.
  const std::int64_t x_stride = shape.c * shape.h * shape.w;
  for (std::int64_t b = 0; b < batch; ++b) {
    Tensor xb({shape.c, shape.h, shape.w});
    std::copy(x.raw() + b * x_stride, x.raw() + (b + 1) * x_stride, xb.raw());
    const Tensor yb = tucker_conv(xb, f, shape);
    const std::int64_t y_stride = yb.numel();
    for (std::int64_t i = 0; i < y_stride; ++i) {
      ASSERT_EQ(fused[b * y_stride + i], yb[i]) << "image " << b;
    }
  }
}

TEST(BatchedTuckerConv, DeterministicAcrossThreadCounts) {
  const int saved = num_threads();
  Rng rng(4000);
  const ConvShape shape = ConvShape::same(6, 6, 10, 3);
  const Tensor x = Tensor::random_uniform({4, shape.c, shape.h, shape.w}, rng);
  const Tensor k =
      Tensor::random_uniform({shape.c, shape.n, shape.r, shape.s}, rng);
  const TuckerFactors f = tucker_decompose(k, {3, 3});
  set_num_threads(1);
  const Tensor serial = tucker_conv_batched(x, f, shape);
  set_num_threads(4);
  const Tensor threaded = tucker_conv_batched(x, f, shape);
  set_num_threads(saved);
  EXPECT_EQ(Tensor::max_abs_diff(serial, threaded), 0.0);
}

}  // namespace
}  // namespace tdc
