// Cross-model end-to-end consistency: the full co-design + latency walk on
// every paper model and both devices, checking the paper's qualitative
// orderings hold everywhere (not only on the ResNet-18 spot checks of
// test_model_cost).
#include <gtest/gtest.h>

#include <map>

#include "common/check.h"
#include "nn/model_cost.h"
#include "nn/models.h"

namespace tdc {
namespace {

struct E2eCase {
  const char* model;
  const char* device;
  double budget;
};

class ModelDeviceE2e : public ::testing::TestWithParam<E2eCase> {};

// One shared (memoized) evaluation per (model, device) so the assertions
// below don't redo the codesign pass five times.
struct E2eEval {
  double original;
  double tk_cudnn;
  double tk_tvm;
  double tk_tdc_model;
  double flops_reduction;
  std::int64_t decomposed;
  std::size_t conv_count;
};

const E2eEval& evaluate(const E2eCase& c) {
  static std::map<std::string, E2eEval> cache;
  const std::string key = std::string(c.model) + "|" + c.device;
  auto it = cache.find(key);
  if (it != cache.end()) {
    return it->second;
  }
  const DeviceSpec device = device_by_name(c.device);
  const ModelSpec model = model_by_name(c.model);
  CodesignOptions opts;
  opts.budget = c.budget;
  const CodesignResult decisions = compress_model(device, model, opts);
  E2eEval e;
  e.original = model_latency_original(device, model);
  e.tk_cudnn =
      model_latency_compressed(device, model, decisions, CoreBackend::kCudnn);
  e.tk_tvm =
      model_latency_compressed(device, model, decisions, CoreBackend::kTvm);
  e.tk_tdc_model = model_latency_compressed(device, model, decisions,
                                            CoreBackend::kTdcModel);
  e.flops_reduction = decisions.achieved_flops_reduction();
  e.decomposed = 0;
  for (const auto& dec : decisions.layers) {
    e.decomposed += dec.decomposed;
  }
  e.conv_count = model.conv_shapes().size();
  return cache.emplace(key, e).first->second;
}

TEST_P(ModelDeviceE2e, CompressionHappens) {
  const E2eEval& e = evaluate(GetParam());
  EXPECT_GT(e.decomposed, 0);
  EXPECT_GT(e.flops_reduction, 0.05);
  EXPECT_LT(e.flops_reduction, 0.95);
}

TEST_P(ModelDeviceE2e, TdcFastestBackend) {
  // The paper's Figure 8/9 bar ordering: TDC <= TVM <= cuDNN on the
  // compressed model. VGG is the acknowledged near-tie (§7.3: the
  // 224²/112² stem shapes favour the H/W-split scheme), so the
  // analytical-tiling backend gets a 5 % band there.
  const E2eEval& e = evaluate(GetParam());
  EXPECT_LE(e.tk_tdc_model, e.tk_tvm * 1.05);
  EXPECT_LT(e.tk_tvm, e.tk_cudnn);
}

TEST_P(ModelDeviceE2e, CompressedBeatsOriginal) {
  const E2eEval& e = evaluate(GetParam());
  EXPECT_LT(e.tk_tdc_model, e.original);
  // Paper range: 1.5–7.3× end-to-end. Allow a generous envelope.
  EXPECT_GT(e.original / e.tk_tdc_model, 1.2);
  EXPECT_LT(e.original / e.tk_tdc_model, 10.0);
}

TEST_P(ModelDeviceE2e, FlopsReductionAloneDoesNotDeliver) {
  // The paper's motivating observation: TK-compressed-on-cuDNN captures
  // only part of the FLOPs win; TDC recovers more.
  const E2eEval& e = evaluate(GetParam());
  const double cudnn_speedup = e.original / e.tk_cudnn;
  const double tdc_speedup = e.original / e.tk_tdc_model;
  EXPECT_GT(tdc_speedup, cudnn_speedup);
}

TEST_P(ModelDeviceE2e, LatenciesPositiveAndFinite) {
  const E2eEval& e = evaluate(GetParam());
  for (const double v : {e.original, e.tk_cudnn, e.tk_tvm, e.tk_tdc_model}) {
    EXPECT_GT(v, 0.0);
    EXPECT_LT(v, 1.0);  // under a second for batch-1 inference
  }
}

INSTANTIATE_TEST_SUITE_P(
    PaperMatrix, ModelDeviceE2e,
    ::testing::Values(E2eCase{"resnet18", "a100", 0.65},
                      E2eCase{"resnet18", "2080ti", 0.65},
                      E2eCase{"resnet50", "a100", 0.60},
                      E2eCase{"resnet50", "2080ti", 0.60},
                      E2eCase{"vgg16", "a100", 0.80},
                      E2eCase{"vgg16", "2080ti", 0.80},
                      E2eCase{"densenet121", "a100", 0.10},
                      E2eCase{"densenet201", "a100", 0.10}),
    [](const auto& info) {
      return std::string(info.param.model) + "_" + info.param.device;
    });

}  // namespace
}  // namespace tdc
