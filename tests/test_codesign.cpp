#include <gtest/gtest.h>

#include "common/check.h"
#include "core/codesign.h"

namespace tdc {
namespace {

TEST(RankTable, GridCoversMultiplesOf32PlusFull) {
  const DeviceSpec d = make_a100();
  const ConvShape s = ConvShape::same(96, 64, 14, 3);
  const auto table = build_rank_table(d, s, TilingSelector::kModel);
  // D1 ∈ {32, 64, 96}, D2 ∈ {32, 64} -> 6 rows.
  EXPECT_EQ(table.size(), 6u);
  for (const auto& cand : table) {
    EXPECT_EQ(cand.ranks.d1 % 32, 0);
    EXPECT_EQ(cand.ranks.d2 % 32, 0);
    EXPECT_GT(cand.latency_s, 0.0);
    EXPECT_GT(cand.flops, 0.0);
  }
}

TEST(RankTable, NonMultipleExtentsIncludeFullRank) {
  const DeviceSpec d = make_a100();
  const ConvShape s = ConvShape::same(48, 40, 14, 3);
  const auto table = build_rank_table(d, s, TilingSelector::kModel);
  bool has_full = false;
  for (const auto& cand : table) {
    if (cand.ranks.d1 == 48 && cand.ranks.d2 == 40) {
      has_full = true;
    }
  }
  EXPECT_TRUE(has_full);
}

TEST(RankTable, FlopsMatchFormula) {
  const DeviceSpec d = make_a100();
  const ConvShape s = ConvShape::same(64, 64, 14, 3);
  for (const auto& cand : build_rank_table(d, s, TilingSelector::kModel)) {
    EXPECT_DOUBLE_EQ(cand.flops, tucker_flops(s, cand.ranks));
  }
}

TEST(ChooseRanks, RespectsBudget) {
  const DeviceSpec d = make_a100();
  const ConvShape s = ConvShape::same(128, 128, 28, 3);
  const auto table = build_rank_table(d, s, TilingSelector::kModel);
  const auto chosen = choose_ranks(table, s, 0.6, 0.05);
  ASSERT_TRUE(chosen.has_value());
  EXPECT_LE(chosen->flops, s.flops() * 0.4 * 1.05);
}

TEST(ChooseRanks, EmptyWhenBudgetImpossible) {
  const DeviceSpec d = make_a100();
  const ConvShape s = ConvShape::same(32, 32, 14, 3);
  const auto table = build_rank_table(d, s, TilingSelector::kModel);
  // 99.99 % reduction cannot be met even at the smallest grid point.
  const auto chosen = choose_ranks(table, s, 0.9999, 0.0);
  EXPECT_FALSE(chosen.has_value());
}

TEST(ChooseRanks, PrefersLargerRanksOnLatencyTies) {
  // Construct a synthetic table with equal latencies: the larger ranks win.
  std::vector<RankCandidate> table(2);
  table[0].ranks = {32, 32};
  table[0].latency_s = 1e-5;
  table[0].flops = 1e6;
  table[1].ranks = {64, 64};
  table[1].latency_s = 1e-5;
  table[1].flops = 2e6;
  const ConvShape s = ConvShape::same(128, 128, 28, 3);
  const auto chosen = choose_ranks(table, s, 0.5, 0.05);
  ASSERT_TRUE(chosen.has_value());
  EXPECT_EQ(chosen->ranks.d1, 64);
}

TEST(Codesign, BudgetRoughlyAchievedOnUniformStack) {
  const DeviceSpec d = make_a100();
  std::vector<ConvShape> layers(4, ConvShape::same(128, 128, 28, 3));
  CodesignOptions opts;
  opts.budget = 0.6;
  const CodesignResult r = run_codesign(d, layers, opts);
  EXPECT_EQ(r.layers.size(), 4u);
  EXPECT_GT(r.achieved_flops_reduction(), 0.45);
}

TEST(Codesign, PointwiseDecompositionIsOptional) {
  const DeviceSpec d = make_a100();
  const std::vector<ConvShape> layers = {ConvShape::same(128, 128, 28, 1),
                                         ConvShape::same(128, 128, 28, 3)};
  CodesignOptions opts;
  opts.budget = 0.5;
  opts.decompose_pointwise = false;
  const CodesignResult r = run_codesign(d, layers, opts);
  EXPECT_FALSE(r.layers[0].decomposed);
}

TEST(Codesign, NarrowPointwiseLayersAlwaysKept) {
  // Even with pointwise decomposition on, a 1×1 layer without room for a
  // meaningful rank grid is never decomposed.
  const DeviceSpec d = make_a100();
  const std::vector<ConvShape> layers = {ConvShape::same(32, 32, 28, 1),
                                         ConvShape::same(128, 128, 28, 3)};
  CodesignOptions opts;
  opts.budget = 0.5;
  opts.decompose_pointwise = true;
  const CodesignResult r = run_codesign(d, layers, opts);
  EXPECT_FALSE(r.layers[0].decomposed);
}

TEST(Codesign, ThetaOneKeepsEverything) {
  // θ = 1 demands an infinite win: no layer can qualify.
  const DeviceSpec d = make_a100();
  const std::vector<ConvShape> layers = {ConvShape::same(128, 128, 28, 3)};
  CodesignOptions opts;
  opts.budget = 0.6;
  opts.theta = 1.0;
  const CodesignResult r = run_codesign(d, layers, opts);
  EXPECT_FALSE(r.layers[0].decomposed);
  EXPECT_DOUBLE_EQ(r.total_chosen_latency_s, r.total_original_latency_s);
}

TEST(Codesign, DecomposedLayersBeatOriginalByTheta) {
  const DeviceSpec d = make_a100();
  const std::vector<ConvShape> layers = {ConvShape::same(256, 256, 28, 3),
                                         ConvShape::same(128, 128, 14, 3)};
  CodesignOptions opts;
  opts.budget = 0.6;
  const CodesignResult r = run_codesign(d, layers, opts);
  for (const auto& dec : r.layers) {
    if (dec.decomposed) {
      EXPECT_LT(dec.chosen_latency_s,
                (1.0 - opts.theta) * dec.original_latency_s);
    }
  }
}

TEST(Codesign, InvalidBudgetThrows) {
  const DeviceSpec d = make_a100();
  CodesignOptions opts;
  opts.budget = 0.0;
  EXPECT_THROW(run_codesign(d, {ConvShape::same(64, 64, 14, 3)}, opts), Error);
  opts.budget = 1.0;
  EXPECT_THROW(run_codesign(d, {ConvShape::same(64, 64, 14, 3)}, opts), Error);
}

TEST(Codesign, SpeedupAccountingConsistent) {
  const DeviceSpec d = make_a100();
  const std::vector<ConvShape> layers = {ConvShape::same(256, 256, 28, 3),
                                         ConvShape::same(256, 256, 28, 1)};
  CodesignOptions opts;
  opts.budget = 0.6;
  const CodesignResult r = run_codesign(d, layers, opts);
  double orig = 0.0, chosen = 0.0;
  for (const auto& dec : r.layers) {
    orig += dec.original_latency_s;
    chosen += dec.chosen_latency_s;
  }
  EXPECT_NEAR(r.total_original_latency_s, orig, 1e-12);
  EXPECT_NEAR(r.total_chosen_latency_s, chosen, 1e-12);
  EXPECT_NEAR(r.speedup(), orig / chosen, 1e-9);
}

TEST(PipelineLatency, SumsThreeStages) {
  const DeviceSpec d = make_a100();
  const ConvShape s = ConvShape::same(128, 128, 28, 3);
  const TuckerRanks ranks{32, 32};
  const double pipeline =
      tucker_pipeline_latency(d, s, ranks, TilingSelector::kModel);
  const double core_only =
      tdc_core_cost(d, core_conv_shape(s, ranks),
                    select_tiling_model(d, core_conv_shape(s, ranks)))
          .total_s;
  EXPECT_GT(pipeline, core_only);
}

}  // namespace
}  // namespace tdc
