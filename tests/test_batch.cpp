// Tests for the batch-size extension of the cost models.
#include <gtest/gtest.h>

#include "common/check.h"
#include "conv/conv.h"
#include "core/tdc_kernel.h"
#include "core/tdc_model.h"
#include "core/tvm_scheme.h"
#include "gpusim/library_cost.h"
#include "tensor/layout.h"

namespace tdc {
namespace {

TEST(BatchShape, DefaultsToOne) {
  const ConvShape s = ConvShape::same(32, 32, 14, 3);
  EXPECT_EQ(s.batch, 1);
  EXPECT_EQ(s.with_batch(8).batch, 8);
  EXPECT_EQ(s.with_batch(8).c, s.c);
}

TEST(BatchShape, FlopsScaleLinearly) {
  const ConvShape s = ConvShape::same(32, 32, 14, 3);
  EXPECT_DOUBLE_EQ(s.with_batch(8).flops(), 8.0 * s.flops());
}

TEST(BatchShape, ToStringShowsBatchOnlyWhenNotOne) {
  const ConvShape s = ConvShape::same(8, 8, 8, 3);
  EXPECT_EQ(s.to_string().find("batch"), std::string::npos);
  EXPECT_NE(s.with_batch(4).to_string().find("batch=4"), std::string::npos);
}

TEST(BatchCost, GemmLatencyMonotoneInBatch) {
  // Non-decreasing: a batch increase that still fits one wave of CTAs can
  // cost exactly the same (more SMs busy, same critical path).
  const DeviceSpec d = make_a100();
  const ConvShape s = ConvShape::same(64, 64, 28, 3);
  double prev = 0.0;
  for (const std::int64_t b : {1, 4, 16, 64}) {
    const double t = cudnn_implicit_gemm_cost(d, s.with_batch(b)).total_s;
    EXPECT_GE(t, prev);
    prev = t;
  }
  // And 64 images cannot be free.
  EXPECT_GT(prev, cudnn_implicit_gemm_cost(d, s).total_s * 2.0);
}

TEST(BatchCost, GemmPerImageCostDropsWithBatch) {
  // The library's whole point: batching amortizes its big tiles.
  const DeviceSpec d = make_a100();
  const ConvShape s = ConvShape::same(64, 64, 28, 3);
  const double b1 = cudnn_implicit_gemm_cost(d, s).total_s;
  const double b32 = cudnn_implicit_gemm_cost(d, s.with_batch(32)).total_s;
  EXPECT_LT(b32 / 32.0, b1 * 0.5);
}

TEST(BatchCost, TdcAdvantageShrinksWithBatch) {
  // The paper's motivating regime is batch 1; at large batch the gap to
  // cuDNN must narrow.
  const DeviceSpec d = make_a100();
  const ConvShape s = ConvShape::same(64, 64, 28, 3);
  const auto gap = [&](std::int64_t b) {
    const ConvShape sb = s.with_batch(b);
    const double cudnn = cudnn_implicit_gemm_cost(d, sb).total_s;
    const double tdc =
        tdc_core_cost(d, sb, select_tiling_oracle(d, sb)).total_s;
    return cudnn / tdc;
  };
  EXPECT_GT(gap(1), gap(64) * 1.5);
}

TEST(BatchCost, TdcBlocksScaleWithBatch) {
  const DeviceSpec d = make_a100();
  const ConvShape s = ConvShape::same(32, 32, 14, 3);
  const TdcTiling t{4, 4, 8};
  const KernelLaunch one = tdc_core_launch(d, s, t);
  const KernelLaunch eight = tdc_core_launch(d, s.with_batch(8), t);
  EXPECT_EQ(eight.num_blocks, one.num_blocks * 8);
}

TEST(BatchCost, TvmAndWinogradAndFftAcceptBatch) {
  const DeviceSpec d = make_a100();
  const ConvShape s = ConvShape::same(32, 32, 14, 3).with_batch(4);
  EXPECT_GT(tvm_best_cost(d, s).total_s, 0.0);
  EXPECT_GT(cudnn_winograd_cost(d, s).total_s, 0.0);
  EXPECT_GT(cudnn_fft_cost(d, s).total_s, 0.0);
}

TEST(BatchCost, PaperModelVolumeScalesLinearly) {
  const ConvShape s = ConvShape::same(32, 32, 14, 3);
  const TdcTiling t{4, 4, 8};
  EXPECT_DOUBLE_EQ(paper_mem_volume(s.with_batch(8), t),
                   8.0 * paper_mem_volume(s, t));
}

TEST(BatchFunctional, ExecutorsRejectBatchedShapes) {
  Rng rng(909);
  const ConvShape s = ConvShape::same(4, 4, 8, 3).with_batch(2);
  const Tensor x = Tensor::random_uniform({4, 8, 8}, rng);
  const Tensor k = Tensor::random_uniform({4, 4, 3, 3}, rng);
  EXPECT_THROW(conv2d_reference(x, k, s), Error);
  EXPECT_THROW(tdc_core_conv(x, cnrs_to_crsn(k), s, {2, 2, 2}), Error);
  EXPECT_THROW(tvm_scheme_conv(x, k, s, {2, 2, 2}), Error);
}

TEST(BatchCost, TilingSelectionWorksOnBatchedShapes) {
  const DeviceSpec d = make_rtx2080ti();
  const ConvShape s = ConvShape::same(32, 32, 14, 3).with_batch(16);
  const TdcTiling model = select_tiling_model(d, s);
  const TdcTiling oracle = select_tiling_oracle(d, s);
  EXPECT_TRUE(tdc_tiling_feasible(d, s, model));
  EXPECT_TRUE(tdc_tiling_feasible(d, s, oracle));
  EXPECT_LE(tdc_core_cost(d, s, oracle).total_s,
            tdc_core_cost(d, s, model).total_s * 1.0001);
}

}  // namespace
}  // namespace tdc
