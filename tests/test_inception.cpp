// Tests for the wide-CNN (GoogLeNet) extension: inventory correctness, the
// concurrency model's bounds, and module-level rank planning.
#include <gtest/gtest.h>

#include "common/check.h"
#include "nn/inception.h"

namespace tdc {
namespace {

TEST(GoogleNet, ModuleCountAndOrder) {
  const WideModelSpec g = make_googlenet();
  ASSERT_EQ(g.modules.size(), 9u);
  EXPECT_EQ(g.modules.front().first.name, "3a");
  EXPECT_EQ(g.modules.back().first.name, "5b");
}

TEST(GoogleNet, ChannelChainingAcrossModules) {
  // Each module's input channels equal the previous module's concatenated
  // output channels.
  const WideModelSpec g = make_googlenet();
  for (std::size_t i = 1; i < g.modules.size(); ++i) {
    EXPECT_EQ(g.modules[i].first.in_channels,
              g.modules[i - 1].first.out_channels)
        << g.modules[i].first.name;
  }
  EXPECT_EQ(g.modules.back().first.out_channels, 1024);
}

TEST(GoogleNet, BranchGeometry) {
  const WideModelSpec g = make_googlenet();
  const InceptionModule& m3a = g.modules.front().first;
  ASSERT_EQ(m3a.branches.size(), 4u);
  // 1×1 branch.
  EXPECT_EQ(m3a.branches[0].convs.size(), 1u);
  EXPECT_EQ(m3a.branches[0].convs[0].n, 64);
  // 3×3 branch: reduce then conv.
  ASSERT_EQ(m3a.branches[1].convs.size(), 2u);
  EXPECT_EQ(m3a.branches[1].convs[0].n, 96);
  EXPECT_EQ(m3a.branches[1].convs[1].r, 3);
  EXPECT_EQ(m3a.branches[1].convs[1].n, 128);
  // 5×5 branch.
  EXPECT_EQ(m3a.branches[2].convs[1].r, 5);
  // All branches see the same input channels and plane.
  for (const auto& b : m3a.branches) {
    EXPECT_EQ(b.convs.front().c, 192);
    EXPECT_EQ(b.convs.front().h, 28);
  }
}

TEST(GoogleNet, FlopsMatchPublished) {
  // GoogLeNet ≈ 1.5 GMACs => ~3.0 GFLOPs in our 2×MAC convention.
  EXPECT_NEAR(make_googlenet().total_flops() / 1e9, 3.0, 0.6);
}

TEST(Concurrency, BoundedBySumAndSlowest) {
  const DeviceSpec d = make_a100();
  std::vector<LatencyBreakdown> ks(3);
  for (int i = 0; i < 3; ++i) {
    ks[static_cast<std::size_t>(i)].total_s = 1e-5 * (i + 1);
    ks[static_cast<std::size_t>(i)].compute_s = 0.6e-5 * (i + 1);
    ks[static_cast<std::size_t>(i)].memory_s = 0.5e-5 * (i + 1);
    ks[static_cast<std::size_t>(i)].occ.occupancy = 0.25;
  }
  const double t = concurrent_latency(d, ks);
  EXPECT_GE(t, 3e-5);            // the slowest branch
  EXPECT_LE(t, 6e-5 + 1e-12);    // the serialized sum
}

TEST(Concurrency, SingleKernelIsItself) {
  const DeviceSpec d = make_a100();
  LatencyBreakdown k;
  k.total_s = 4e-5;
  k.compute_s = 2e-5;
  k.memory_s = 1e-5;
  k.occ.occupancy = 0.5;
  EXPECT_DOUBLE_EQ(concurrent_latency(d, {k}), 4e-5);
}

TEST(Concurrency, EmptyThrows) {
  const DeviceSpec d = make_a100();
  EXPECT_THROW(concurrent_latency(d, {}), Error);
}

TEST(ModulePlanning, EveryBranchGetsDecisions) {
  const DeviceSpec d = make_a100();
  const InceptionModule m = make_googlenet().modules.front().first;
  CodesignOptions opts;
  opts.budget = 0.4;
  const InceptionModulePlan plan = plan_inception_module(d, m, opts);
  ASSERT_EQ(plan.branches.size(), m.branches.size());
  for (std::size_t b = 0; b < plan.branches.size(); ++b) {
    EXPECT_EQ(plan.branches[b].decisions.size(), m.branches[b].convs.size());
  }
}

TEST(ModulePricing, ConcurrencyAndCompressionBothHelp) {
  const DeviceSpec d = make_a100();
  const InceptionModule m = make_googlenet().modules.front().first;
  CodesignOptions opts;
  opts.budget = 0.4;
  const InceptionModulePlan plan = plan_inception_module(d, m, opts);
  const InceptionModuleCost cost = price_inception_module(d, m, plan);
  // Streams beat one stream; compression beats original; all positive.
  EXPECT_GT(cost.sequential_original_s, 0.0);
  EXPECT_LE(cost.concurrent_original_s, cost.sequential_original_s + 1e-12);
  EXPECT_LE(cost.sequential_tdc_s, cost.sequential_original_s + 1e-12);
  EXPECT_LE(cost.concurrent_tdc_s, cost.sequential_tdc_s + 1e-12);
}

TEST(GoogleNetE2eEval, OrderingHolds) {
  const DeviceSpec d = make_a100();
  CodesignOptions opts;
  opts.budget = 0.4;
  const GoogleNetE2e e = evaluate_googlenet(d, opts);
  EXPECT_GT(e.original_sequential_s, 0.0);
  EXPECT_LE(e.original_concurrent_s, e.original_sequential_s + 1e-12);
  EXPECT_LT(e.tdc_concurrent_s, e.original_concurrent_s);
}

}  // namespace
}  // namespace tdc
