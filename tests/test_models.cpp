#include <gtest/gtest.h>

#include "common/check.h"
#include "nn/models.h"

namespace tdc {
namespace {

std::int64_t count_convs(const ModelSpec& m) {
  std::int64_t n = 0;
  for (const auto& l : m.layers) {
    n += l.kind == LayerKind::kConv;
  }
  return n;
}

// Published multiply–add counts (batch 1, 224², torchvision): our flops()
// uses 2×MACs, so targets are doubled GMACs.
TEST(Models, Vgg16FlopsMatchPublished) {
  // VGG-16 convs ≈ 15.35 GMACs.
  EXPECT_NEAR(make_vgg16().conv_flops() / 1e9, 2.0 * 15.35, 1.0);
}

TEST(Models, Resnet18FlopsMatchPublished) {
  // ResNet-18 ≈ 1.82 GMACs total.
  EXPECT_NEAR(make_resnet18().conv_flops() / 1e9, 2.0 * 1.81, 0.3);
}

TEST(Models, Resnet50FlopsMatchPublished) {
  // ResNet-50 ≈ 4.09 GMACs.
  EXPECT_NEAR(make_resnet50().conv_flops() / 1e9, 2.0 * 4.08, 0.5);
}

TEST(Models, Densenet121FlopsMatchPublished) {
  // DenseNet-121 ≈ 2.85 GMACs.
  EXPECT_NEAR(make_densenet121().conv_flops() / 1e9, 2.0 * 2.85, 0.4);
}

TEST(Models, Densenet201FlopsMatchPublished) {
  // DenseNet-201 ≈ 4.34 GMACs.
  EXPECT_NEAR(make_densenet201().conv_flops() / 1e9, 2.0 * 4.32, 0.5);
}

TEST(Models, ConvCounts) {
  EXPECT_EQ(count_convs(make_vgg16()), 13);
  EXPECT_EQ(count_convs(make_resnet18()), 20);     // 16 + stem + 3 downsample
  EXPECT_EQ(count_convs(make_resnet50()), 53);     // 48 + stem + 4 downsample
  EXPECT_EQ(count_convs(make_densenet121()), 120); // 2/layer ×58 + stem + 3 trans
  EXPECT_EQ(count_convs(make_densenet201()), 200);
}

TEST(Models, Resnet20CifarGeometry) {
  const ModelSpec m = make_resnet20_cifar();
  EXPECT_EQ(count_convs(m), 19 + 2);  // 19 convs + 2 projection shortcuts
  const auto shapes = m.conv_shapes();
  EXPECT_EQ(shapes.front().h, 32);
  // Last stage runs at 8×8 with 64 channels.
  bool found_final_stage = false;
  for (const auto& s : shapes) {
    if (s.c == 64 && s.n == 64 && s.h == 8) {
      found_final_stage = true;
    }
  }
  EXPECT_TRUE(found_final_stage);
}

TEST(Models, AllShapesValid) {
  for (const ModelSpec& m : paper_models()) {
    for (const ConvShape& s : m.conv_shapes()) {
      EXPECT_TRUE(s.valid()) << m.name << " " << s.to_string();
    }
  }
}

TEST(Models, SpatialDimsNeverBelowSeven) {
  // ImageNet CNNs bottom out at 7×7 (paper §7.3 discussion).
  for (const ModelSpec& m : paper_models()) {
    for (const ConvShape& s : m.conv_shapes()) {
      EXPECT_GE(s.out_h(), 7) << m.name;
    }
  }
}

TEST(Models, DecomposableSubsetExcludesPointwise) {
  const ModelSpec m = make_resnet50();
  for (const ConvShape& s : m.decomposable_conv_shapes()) {
    EXPECT_GT(s.r * s.s, 1);
  }
  // ResNet-50 has exactly 16 3×3 convs + the 7×7 stem.
  EXPECT_EQ(m.decomposable_conv_shapes().size(), 17u);
}

TEST(Models, ChannelChainingConsistent) {
  // Every conv's input channel count must match some producer; check the
  // simple sequential chaining of VGG.
  const auto shapes = make_vgg16().conv_shapes();
  for (std::size_t i = 1; i < shapes.size(); ++i) {
    EXPECT_EQ(shapes[i].c, shapes[i - 1].n);
  }
}

TEST(Models, ByNameLookup) {
  EXPECT_EQ(model_by_name("vgg16").name, "vgg16");
  EXPECT_EQ(model_by_name("densenet201").name, "densenet201");
  EXPECT_THROW(model_by_name("alexnet"), Error);
}

TEST(Models, Figure6ShapeList) {
  const auto shapes = figure6_core_shapes();
  EXPECT_EQ(shapes.size(), 18u);
  EXPECT_EQ(shapes.front().c, 64);
  EXPECT_EQ(shapes.front().h, 224);
  EXPECT_EQ(shapes.back().c, 192);
  EXPECT_EQ(shapes.back().n, 160);
  EXPECT_EQ(shapes.back().h, 7);
  for (const auto& s : shapes) {
    EXPECT_EQ(s.r, 3);
    EXPECT_EQ(s.stride_h, 1);
    EXPECT_TRUE(s.valid());
  }
}

TEST(Models, TotalFlopsIncludeFcAndAux) {
  const ModelSpec m = make_vgg16();
  EXPECT_GT(m.total_flops(), m.conv_flops());
}

}  // namespace
}  // namespace tdc
