#include <gtest/gtest.h>

#include "common/check.h"
#include "nn/model_cost.h"
#include "nn/models.h"

namespace tdc {
namespace {

// These walks exercise the whole pipeline (codesign + all backends) on the
// smallest paper model; the full five-model sweep lives in the benches.
class Resnet18E2e : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    device_ = new DeviceSpec(make_a100());
    model_ = new ModelSpec(make_resnet18());
    CodesignOptions opts;
    opts.budget = 0.63;  // paper's achieved reduction for ResNet-18
    decisions_ = new CodesignResult(compress_model(*device_, *model_, opts));
  }
  static void TearDownTestSuite() {
    delete device_;
    delete model_;
    delete decisions_;
  }
  static DeviceSpec* device_;
  static ModelSpec* model_;
  static CodesignResult* decisions_;
};

DeviceSpec* Resnet18E2e::device_ = nullptr;
ModelSpec* Resnet18E2e::model_ = nullptr;
CodesignResult* Resnet18E2e::decisions_ = nullptr;

TEST_F(Resnet18E2e, DecisionListCoversEveryConv) {
  EXPECT_EQ(decisions_->layers.size(), model_->conv_shapes().size());
}

TEST_F(Resnet18E2e, SomeLayersDecomposed) {
  std::int64_t decomposed = 0;
  for (const auto& d : decisions_->layers) {
    decomposed += d.decomposed;
  }
  EXPECT_GE(decomposed, 5);
}

TEST_F(Resnet18E2e, FlopsReductionNearBudget) {
  EXPECT_GT(decisions_->achieved_flops_reduction(), 0.4);
  EXPECT_LT(decisions_->achieved_flops_reduction(), 0.9);
}

TEST_F(Resnet18E2e, TdcBeatsOriginal) {
  const double orig = model_latency_original(*device_, *model_);
  const double tdc = model_latency_compressed(*device_, *model_, *decisions_,
                                              CoreBackend::kTdcOracle);
  EXPECT_LT(tdc, orig);
}

TEST_F(Resnet18E2e, TdcBeatsTkCudnn) {
  // The paper's central claim: FLOPs reduction alone (TK on cuDNN) leaves
  // performance on the table; the TDC kernel recovers it.
  const double tk_cudnn = model_latency_compressed(*device_, *model_,
                                                   *decisions_,
                                                   CoreBackend::kCudnn);
  const double tdc = model_latency_compressed(*device_, *model_, *decisions_,
                                              CoreBackend::kTdcOracle);
  EXPECT_LT(tdc, tk_cudnn);
}

TEST_F(Resnet18E2e, OracleAtLeastAsFastAsModel) {
  const double oracle = model_latency_compressed(*device_, *model_,
                                                 *decisions_,
                                                 CoreBackend::kTdcOracle);
  const double analytic = model_latency_compressed(*device_, *model_,
                                                   *decisions_,
                                                   CoreBackend::kTdcModel);
  EXPECT_LE(oracle, analytic * (1.0 + 1e-9));
}

TEST_F(Resnet18E2e, BackendMismatchDetected) {
  // Feeding ResNet-18 decisions to VGG must throw (sequence mismatch).
  const ModelSpec vgg = make_vgg16();
  EXPECT_THROW(model_latency_compressed(*device_, vgg, *decisions_,
                                        CoreBackend::kCudnn),
               Error);
}

TEST(LayerLatency, AllKindsPriced) {
  const DeviceSpec d = make_a100();
  EXPECT_GT(layer_latency(
                d, LayerSpec::make_conv("c", ConvShape::same(64, 64, 56, 3))),
            0.0);
  EXPECT_GT(layer_latency(d, LayerSpec::make_pool("p", 1e6, 2.5e5)), 0.0);
  EXPECT_GT(layer_latency(d, LayerSpec::make_elementwise("e", 1e6)), 0.0);
  EXPECT_GT(layer_latency(d, LayerSpec::make_global_pool("g", 1e5, 512)), 0.0);
  EXPECT_GT(layer_latency(d, LayerSpec::make_fc("f", 4096, 1000)), 0.0);
}

TEST(ModelLatency, OriginalSumsLayers) {
  const DeviceSpec d = make_a100();
  ModelSpec tiny;
  tiny.name = "tiny";
  tiny.layers.push_back(
      LayerSpec::make_conv("c1", ConvShape::same(16, 16, 14, 3)));
  tiny.layers.push_back(LayerSpec::make_elementwise("r1", 16 * 14 * 14));
  const double total = model_latency_original(d, tiny);
  const double sum = layer_latency(d, tiny.layers[0]) +
                     layer_latency(d, tiny.layers[1]);
  EXPECT_NEAR(total, sum, 1e-12);
}

TEST(BackendNames, Strings) {
  EXPECT_STREQ(core_backend_name(CoreBackend::kCudnn), "cudnn");
  EXPECT_STREQ(core_backend_name(CoreBackend::kTdcModel), "tdc-model");
}

}  // namespace
}  // namespace tdc
