// Property tests on the GPU execution-model simulator: the latency model
// must respond monotonically to each resource knob on both devices, or the
// tiling search and the co-design pass would optimize against noise.
#include <gtest/gtest.h>

#include "common/check.h"
#include "gpusim/launch.h"

namespace tdc {
namespace {

class SimProperties : public ::testing::TestWithParam<const char*> {
 protected:
  DeviceSpec device() const { return device_by_name(GetParam()); }

  static KernelLaunch base_launch() {
    KernelLaunch l;
    l.label = "prop";
    l.num_blocks = 256;
    l.block.threads = 128;
    l.block.regs_per_thread = 40;
    l.flops_per_block = 2e6;
    l.bytes_read = 2e6;
    l.bytes_written = 5e5;
    l.ilp = 4.0;
    return l;
  }
};

TEST_P(SimProperties, LatencyMonotoneInBlocks) {
  // Growing the grid at constant per-block work (so total work grows) can
  // never reduce latency.
  const DeviceSpec d = device();
  KernelLaunch l = base_launch();
  double prev = 0.0;
  for (const std::int64_t blocks : {1, 8, 64, 512, 4096, 32768}) {
    l.num_blocks = blocks;
    l.bytes_read = 2e4 * static_cast<double>(blocks);
    l.bytes_written = 5e3 * static_cast<double>(blocks);
    const double t = simulate_latency(d, l).total_s;
    EXPECT_GE(t, prev * 0.999) << blocks;
    prev = t;
  }
}

TEST_P(SimProperties, LatencyMonotoneInFlops) {
  const DeviceSpec d = device();
  KernelLaunch l = base_launch();
  double prev = 0.0;
  for (const double flops : {1e4, 1e5, 1e6, 1e7, 1e8}) {
    l.flops_per_block = flops;
    const double t = simulate_latency(d, l).compute_s;
    EXPECT_GE(t, prev) << flops;
    prev = t;
  }
}

TEST_P(SimProperties, LatencyMonotoneInBytes) {
  const DeviceSpec d = device();
  KernelLaunch l = base_launch();
  double prev = 0.0;
  for (const double bytes : {1e4, 1e6, 1e8, 1e9}) {
    l.bytes_read = bytes;
    const double t = simulate_latency(d, l).memory_s;
    EXPECT_GE(t, prev) << bytes;
    prev = t;
  }
}

TEST_P(SimProperties, LatencyMonotoneInSyncs) {
  const DeviceSpec d = device();
  KernelLaunch l = base_launch();
  double prev = 0.0;
  for (const std::int64_t syncs : {0, 2, 32, 512}) {
    l.sync_count = syncs;
    const double t = simulate_latency(d, l).compute_s;
    EXPECT_GE(t, prev) << syncs;
    prev = t;
  }
}

TEST_P(SimProperties, LatencyMonotoneInStalls) {
  const DeviceSpec d = device();
  KernelLaunch l = base_launch();
  double prev = 0.0;
  for (const std::int64_t stalls : {0, 1, 16, 256}) {
    l.dependent_stalls = stalls;
    const double t = simulate_latency(d, l).compute_s;
    EXPECT_GE(t, prev) << stalls;
    prev = t;
  }
}

TEST_P(SimProperties, AtomicsNeverCheaperThanPlainWrites) {
  const DeviceSpec d = device();
  KernelLaunch plain = base_launch();
  plain.bytes_written = 1e7;
  KernelLaunch atomic = plain;
  atomic.atomic_bytes = 1e7;
  EXPECT_GE(simulate_latency(d, atomic).memory_s,
            simulate_latency(d, plain).memory_s);
}

TEST_P(SimProperties, L2TrafficCheaperThanDram) {
  const DeviceSpec d = device();
  KernelLaunch dram = base_launch();
  dram.bytes_read = 1e8;
  KernelLaunch l2 = base_launch();
  l2.bytes_read = 0.0;
  l2.bytes_l2 = 1e8;
  EXPECT_LT(simulate_latency(d, l2).memory_s,
            simulate_latency(d, dram).memory_s);
}

TEST_P(SimProperties, PartialWarpWastesLanes) {
  const DeviceSpec d = device();
  KernelLaunch full = base_launch();
  full.block.threads = 32;
  KernelLaunch partial = base_launch();
  partial.block.threads = 8;  // same flops, quarter-full warp
  EXPECT_GT(simulate_latency(d, partial).compute_s,
            simulate_latency(d, full).compute_s * 2.0);
}

TEST_P(SimProperties, OccupancyMonotoneInSharedMemory) {
  const DeviceSpec d = device();
  int prev_blocks = 1 << 30;
  for (const std::int64_t smem : {0LL, 8LL * 1024, 24LL * 1024, 48LL * 1024}) {
    const OccupancyResult r = compute_occupancy(d, {128, smem, 32});
    ASSERT_TRUE(r.launchable);
    EXPECT_LE(r.blocks_per_sm, prev_blocks);
    prev_blocks = r.blocks_per_sm;
  }
}

TEST_P(SimProperties, OccupancyMonotoneInRegisters) {
  const DeviceSpec d = device();
  int prev_blocks = 1 << 30;
  for (const int regs : {16, 32, 64, 128, 255}) {
    const OccupancyResult r = compute_occupancy(d, {128, 0, regs});
    ASSERT_TRUE(r.launchable);
    EXPECT_LE(r.blocks_per_sm, prev_blocks);
    prev_blocks = r.blocks_per_sm;
  }
}

TEST_P(SimProperties, OccupancyMonotoneInThreads) {
  const DeviceSpec d = device();
  int prev_total = 0;
  for (const int threads : {32, 64, 128, 256, 512}) {
    const OccupancyResult r = compute_occupancy(d, {threads, 0, 32});
    ASSERT_TRUE(r.launchable);
    // Resident thread count should not fall as the block grows (until the
    // per-SM limit quantizes it away entirely).
    const int total = r.blocks_per_sm * threads;
    EXPECT_GE(total, prev_total / 2);
    prev_total = total;
  }
}

TEST_P(SimProperties, WavesScaleLinearlyBeyondSaturation) {
  const DeviceSpec d = device();
  KernelLaunch l = base_launch();
  l.num_blocks = 100000;
  const LatencyBreakdown one = simulate_latency(d, l);
  l.num_blocks = 200000;
  const LatencyBreakdown two = simulate_latency(d, l);
  EXPECT_NEAR(two.waves / one.waves, 2.0, 0.01);
  EXPECT_NEAR(two.compute_s / one.compute_s, 2.0, 0.05);
}

TEST_P(SimProperties, BreakdownConsistent) {
  const DeviceSpec d = device();
  const LatencyBreakdown b = simulate_latency(d, base_launch());
  EXPECT_GT(b.compute_s, 0.0);
  EXPECT_GT(b.memory_s, 0.0);
  EXPECT_DOUBLE_EQ(b.launch_s, d.launch_overhead_s);
  EXPECT_NEAR(b.total_s, b.launch_s + std::max(b.compute_s, b.memory_s),
              1e-15);
}

INSTANTIATE_TEST_SUITE_P(Devices, SimProperties,
                         ::testing::Values("a100", "2080ti"),
                         [](const auto& info) {
                           return std::string(info.param) == "a100"
                                      ? "A100"
                                      : "RTX2080Ti";
                         });

TEST(RereadTraffic, SplitsAtTheL2Boundary) {
  const DeviceSpec d = make_a100();
  KernelLaunch fits;
  add_reread_traffic(d, /*total=*/10e6, /*working_set=*/1e6, &fits);
  EXPECT_DOUBLE_EQ(fits.bytes_read, 1e6);
  EXPECT_DOUBLE_EQ(fits.bytes_l2, 9e6);

  KernelLaunch spills;
  add_reread_traffic(d, /*total=*/10e9, /*working_set=*/5e9, &spills);
  EXPECT_DOUBLE_EQ(spills.bytes_read, 10e9);
  EXPECT_DOUBLE_EQ(spills.bytes_l2, 0.0);
}

TEST(RereadTraffic, TotalSmallerThanWorkingSet) {
  const DeviceSpec d = make_a100();
  KernelLaunch l;
  add_reread_traffic(d, /*total=*/5e5, /*working_set=*/1e6, &l);
  EXPECT_DOUBLE_EQ(l.bytes_read, 5e5);
  EXPECT_DOUBLE_EQ(l.bytes_l2, 0.0);
}

}  // namespace
}  // namespace tdc
