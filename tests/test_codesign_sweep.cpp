// Sweep/property tests on the co-design framework: how the rank selection
// responds to its knobs (budget, θ, selector) across layer stacks.
#include <gtest/gtest.h>

#include "common/check.h"
#include "core/codesign.h"

namespace tdc {
namespace {

std::vector<ConvShape> mixed_stack() {
  return {ConvShape::same(64, 64, 56, 3),  ConvShape::same(64, 128, 56, 3, 2),
          ConvShape::same(128, 128, 28, 3), ConvShape::same(128, 128, 28, 1),
          ConvShape::same(128, 256, 28, 3, 2),
          ConvShape::same(256, 256, 14, 3)};
}

TEST(BudgetSweep, AchievedReductionNonDecreasingInBudget) {
  const DeviceSpec d = make_a100();
  const auto layers = mixed_stack();
  double prev = -1.0;
  for (const double budget : {0.2, 0.4, 0.6, 0.8}) {
    CodesignOptions opts;
    opts.budget = budget;
    const CodesignResult r = run_codesign(d, layers, opts);
    EXPECT_GE(r.achieved_flops_reduction(), prev - 0.02) << budget;
    prev = r.achieved_flops_reduction();
  }
}

TEST(BudgetSweep, CompressedLatencyNeverAboveOriginal) {
  // The θ rule guarantees each decomposed layer wins; kept layers tie.
  const DeviceSpec d = make_a100();
  const auto layers = mixed_stack();
  for (const double budget : {0.3, 0.6, 0.8}) {
    CodesignOptions opts;
    opts.budget = budget;
    const CodesignResult r = run_codesign(d, layers, opts);
    EXPECT_LE(r.total_chosen_latency_s, r.total_original_latency_s) << budget;
    for (const auto& dec : r.layers) {
      EXPECT_LE(dec.chosen_latency_s, dec.original_latency_s * 1.0001);
    }
  }
}

TEST(ThetaSweep, DecomposedCountNonIncreasingInTheta) {
  const DeviceSpec d = make_a100();
  const auto layers = mixed_stack();
  std::int64_t prev = 1 << 20;
  for (const double theta : {0.0, 0.3, 0.6, 0.9}) {
    CodesignOptions opts;
    opts.budget = 0.6;
    opts.theta = theta;
    const CodesignResult r = run_codesign(d, layers, opts);
    std::int64_t decomposed = 0;
    for (const auto& dec : r.layers) {
      decomposed += dec.decomposed;
    }
    EXPECT_LE(decomposed, prev) << theta;
    prev = decomposed;
  }
}

TEST(RankTableSweep, LatencyPositiveAndFlopsOrdered) {
  const DeviceSpec d = make_rtx2080ti();
  for (const ConvShape& shape :
       {ConvShape::same(64, 64, 28, 3), ConvShape::same(96, 96, 14, 3),
        ConvShape::same(128, 64, 14, 3)}) {
    const auto table = build_rank_table(d, shape, TilingSelector::kModel);
    ASSERT_FALSE(table.empty());
    for (const auto& cand : table) {
      EXPECT_GT(cand.latency_s, 0.0);
      EXPECT_DOUBLE_EQ(cand.flops, tucker_flops(shape, cand.ranks));
    }
    // FLOPs must be strictly increasing in each rank coordinate.
    for (const auto& a : table) {
      for (const auto& b : table) {
        if (a.ranks.d1 < b.ranks.d1 && a.ranks.d2 == b.ranks.d2) {
          EXPECT_LT(a.flops, b.flops);
        }
      }
    }
  }
}

TEST(RankTableSweep, OracleTablesNeverSlowerThanModelTables) {
  const DeviceSpec d = make_a100();
  const ConvShape shape = ConvShape::same(64, 64, 28, 3);
  const auto model_table = build_rank_table(d, shape, TilingSelector::kModel);
  const auto oracle_table = build_rank_table(d, shape, TilingSelector::kOracle);
  ASSERT_EQ(model_table.size(), oracle_table.size());
  for (std::size_t i = 0; i < model_table.size(); ++i) {
    ASSERT_EQ(model_table[i].ranks, oracle_table[i].ranks);
    // The oracle-tiled core can only improve the pipeline latency.
    EXPECT_LE(oracle_table[i].latency_s, model_table[i].latency_s * 1.0001);
  }
}

TEST(BudgetLedger, SkippedLayersPushBudgetDownstream) {
  // First layer is undecomposable at any budget (tiny C), so the second
  // layer must absorb a higher effective budget than with the first absent.
  const DeviceSpec d = make_a100();
  CodesignOptions opts;
  opts.budget = 0.5;
  const std::vector<ConvShape> with_stem = {ConvShape::same(3, 64, 224, 7, 2),
                                            ConvShape::same(256, 256, 14, 3)};
  const std::vector<ConvShape> alone = {ConvShape::same(256, 256, 14, 3)};
  const CodesignResult r_with = run_codesign(d, with_stem, opts);
  const CodesignResult r_alone = run_codesign(d, alone, opts);
  ASSERT_TRUE(r_with.layers[1].decomposed);
  ASSERT_TRUE(r_alone.layers[0].decomposed);
  // The redistributed budget can only push the second layer's chosen FLOPs
  // down (or keep them equal).
  EXPECT_LE(r_with.layers[1].chosen_flops,
            r_alone.layers[0].chosen_flops * 1.0001);
}

TEST(Pipeline, LatencyComposesAcrossSelectors) {
  const DeviceSpec d = make_rtx2080ti();
  const ConvShape shape = ConvShape::same(96, 96, 14, 3);
  const TuckerRanks ranks{32, 32};
  const double model =
      tucker_pipeline_latency(d, shape, ranks, TilingSelector::kModel);
  const double oracle =
      tucker_pipeline_latency(d, shape, ranks, TilingSelector::kOracle);
  EXPECT_LE(oracle, model * 1.0001);
  EXPECT_GT(oracle, 0.0);
}

TEST(EmptyStack, NoLayersNoWork) {
  const DeviceSpec d = make_a100();
  CodesignOptions opts;
  opts.budget = 0.5;
  const CodesignResult r = run_codesign(d, {}, opts);
  EXPECT_TRUE(r.layers.empty());
  EXPECT_DOUBLE_EQ(r.total_chosen_flops, 0.0);
}

TEST(SingleLayer, FullPipelineInvariants) {
  const DeviceSpec d = make_a100();
  CodesignOptions opts;
  opts.budget = 0.6;
  const CodesignResult r =
      run_codesign(d, {ConvShape::same(128, 128, 28, 3)}, opts);
  ASSERT_EQ(r.layers.size(), 1u);
  const LayerDecision& dec = r.layers.front();
  ASSERT_TRUE(dec.decomposed);
  EXPECT_GE(dec.ranks.d1, 32);
  EXPECT_GE(dec.ranks.d2, 32);
  EXPECT_LE(dec.ranks.d1, 128);
  EXPECT_LE(dec.ranks.d2, 128);
  EXPECT_LT(dec.chosen_flops, dec.original_flops);
  EXPECT_GT(r.speedup(), 1.0);
}

}  // namespace
}  // namespace tdc
