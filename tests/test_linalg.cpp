#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "linalg/eig.h"
#include "linalg/gemm.h"
#include "linalg/svd.h"

namespace tdc {
namespace {

Tensor naive_matmul(const Tensor& a, const Tensor& b) {
  Tensor c({a.dim(0), b.dim(1)});
  for (std::int64_t i = 0; i < a.dim(0); ++i) {
    for (std::int64_t j = 0; j < b.dim(1); ++j) {
      double acc = 0.0;
      for (std::int64_t k = 0; k < a.dim(1); ++k) {
        acc += static_cast<double>(a(i, k)) * b(k, j);
      }
      c(i, j) = static_cast<float>(acc);
    }
  }
  return c;
}

TEST(Gemm, MatchesNaiveOnOddSizes) {
  Rng rng(41);
  // Sizes straddle the blocking parameters.
  for (const auto& [m, n, k] :
       {std::tuple{3, 5, 7}, {64, 64, 256}, {65, 63, 257}, {1, 100, 1}}) {
    const Tensor a = Tensor::random_uniform({m, k}, rng);
    const Tensor b = Tensor::random_uniform({k, n}, rng);
    const Tensor fast = matmul(a, b);
    const Tensor slow = naive_matmul(a, b);
    EXPECT_LT(Tensor::rel_error(fast, slow), 1e-5)
        << m << "x" << n << "x" << k;
  }
}

TEST(Gemm, AlphaBetaSemantics) {
  Rng rng(43);
  const Tensor a = Tensor::random_uniform({4, 6}, rng);
  const Tensor b = Tensor::random_uniform({6, 5}, rng);
  Tensor c = Tensor::full({4, 5}, 1.0f);
  gemm(4, 5, 6, a.data(), b.data(), c.data(), 2.0f, 3.0f);
  const Tensor ab = naive_matmul(a, b);
  for (std::int64_t i = 0; i < c.numel(); ++i) {
    EXPECT_NEAR(c[i], 2.0f * ab[i] + 3.0f, 1e-4);
  }
}

TEST(Gemm, TransposedAVariant) {
  Rng rng(45);
  const Tensor at = Tensor::random_uniform({7, 4}, rng);  // stored [K, M]
  const Tensor b = Tensor::random_uniform({7, 5}, rng);
  Tensor c({4, 5});
  gemm_at(4, 5, 7, at.data(), b.data(), c.data());
  const Tensor expected = naive_matmul(transpose2d(at), b);
  EXPECT_LT(Tensor::rel_error(c, expected), 1e-5);
}

TEST(Gemm, TransposedBVariant) {
  Rng rng(47);
  const Tensor a = Tensor::random_uniform({4, 7}, rng);
  const Tensor bt = Tensor::random_uniform({5, 7}, rng);  // stored [N, K]
  Tensor c({4, 5});
  gemm_bt(4, 5, 7, a.data(), bt.data(), c.data());
  const Tensor expected = naive_matmul(a, transpose2d(bt));
  EXPECT_LT(Tensor::rel_error(c, expected), 1e-5);
}

TEST(Gemm, AccumulateWithTransposedVariants) {
  Rng rng(49);
  const Tensor a = Tensor::random_uniform({3, 4}, rng);
  const Tensor bt = Tensor::random_uniform({2, 4}, rng);
  Tensor c = Tensor::full({3, 2}, 10.0f);
  gemm_bt(3, 2, 4, a.data(), bt.data(), c.data(), 1.0f, 1.0f);
  const Tensor expected = naive_matmul(a, transpose2d(bt));
  for (std::int64_t i = 0; i < c.numel(); ++i) {
    EXPECT_NEAR(c[i], expected[i] + 10.0f, 1e-4);
  }
}

TEST(Matmul, ShapeChecks) {
  Tensor a({2, 3});
  Tensor b({4, 2});
  EXPECT_THROW(matmul(a, b), Error);
}

TEST(Eig, DiagonalMatrix) {
  Tensor a({3, 3});
  a(0, 0) = 1.0f;
  a(1, 1) = 5.0f;
  a(2, 2) = 3.0f;
  const EigResult r = eig_symmetric(a);
  EXPECT_NEAR(r.values[0], 5.0, 1e-9);
  EXPECT_NEAR(r.values[1], 3.0, 1e-9);
  EXPECT_NEAR(r.values[2], 1.0, 1e-9);
  // Leading eigenvector must be ±e1.
  EXPECT_NEAR(std::abs(r.vectors(1, 0)), 1.0, 1e-9);
}

TEST(Eig, Known2x2) {
  // [[2, 1], [1, 2]] has eigenvalues 3 and 1.
  Tensor a({2, 2});
  a(0, 0) = 2.0f;
  a(0, 1) = 1.0f;
  a(1, 0) = 1.0f;
  a(1, 1) = 2.0f;
  const EigResult r = eig_symmetric(a);
  EXPECT_NEAR(r.values[0], 3.0, 1e-9);
  EXPECT_NEAR(r.values[1], 1.0, 1e-9);
}

TEST(Eig, ReconstructsMatrix) {
  Rng rng(51);
  const std::int64_t n = 12;
  Tensor half = Tensor::random_uniform({n, n}, rng);
  const Tensor a = matmul(half, transpose2d(half));  // SPD
  const EigResult r = eig_symmetric(a);

  // A ≈ V diag(λ) V^T.
  Tensor lambda_vt({n, n});
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      lambda_vt(i, j) =
          static_cast<float>(r.values[static_cast<std::size_t>(i)]) *
          r.vectors(j, i);
    }
  }
  const Tensor recon = matmul(r.vectors, lambda_vt);
  EXPECT_LT(Tensor::rel_error(recon, a), 1e-4);
}

TEST(Eig, EigenvectorsOrthonormal) {
  Rng rng(53);
  Tensor half = Tensor::random_uniform({10, 10}, rng);
  const Tensor a = matmul(half, transpose2d(half));
  const EigResult r = eig_symmetric(a);
  const Tensor vtv = matmul(transpose2d(r.vectors), r.vectors);
  for (std::int64_t i = 0; i < 10; ++i) {
    for (std::int64_t j = 0; j < 10; ++j) {
      EXPECT_NEAR(vtv(i, j), i == j ? 1.0f : 0.0f, 1e-5);
    }
  }
}

TEST(Eig, RejectsNonSquare) {
  Tensor a({2, 3});
  EXPECT_THROW(eig_symmetric(a), Error);
}

TEST(Svd, SingularValuesOfOrthogonalScaledMatrix) {
  // diag(4, 2) has singular values {4, 2}.
  Tensor a({2, 4});
  a(0, 0) = 4.0f;
  a(1, 1) = 2.0f;
  const SvdLeft s = svd_left(a);
  ASSERT_EQ(s.singular_values.size(), 2u);
  EXPECT_NEAR(s.singular_values[0], 4.0, 1e-6);
  EXPECT_NEAR(s.singular_values[1], 2.0, 1e-6);
}

TEST(Svd, SingularValuesMatchFrobeniusNorm) {
  Rng rng(55);
  const Tensor a = Tensor::random_uniform({8, 20}, rng);
  const SvdLeft s = svd_left(a);
  double sq = 0.0;
  for (const double sv : s.singular_values) {
    sq += sv * sv;
  }
  EXPECT_NEAR(std::sqrt(sq), a.frobenius_norm(), 1e-3);
}

TEST(Svd, LeadingVectorsSpanBestSubspace) {
  // Build a rank-2 matrix; the top-2 left singular vectors must capture all
  // of its energy: ||U_2 U_2^T A - A|| ≈ 0.
  Rng rng(57);
  const Tensor u = Tensor::random_uniform({6, 2}, rng);
  const Tensor v = Tensor::random_uniform({2, 30}, rng);
  const Tensor a = matmul(u, v);
  const Tensor u2 = leading_left_singular_vectors(a, 2);
  const Tensor proj = matmul(u2, matmul(transpose2d(u2), a));
  EXPECT_LT(Tensor::rel_error(proj, a), 1e-4);
}

TEST(Svd, LeadingVectorCountValidated) {
  Tensor a({3, 5});
  EXPECT_THROW(leading_left_singular_vectors(a, 4), Error);
  EXPECT_THROW(leading_left_singular_vectors(a, 0), Error);
}

}  // namespace
}  // namespace tdc
