// Decomposition-accuracy suite for the symmetric eigensolvers (linalg/eig.h).
//
// The tridiagonal-QL production solver is checked three ways: against
// basis-independent invariants (orthogonality, residuals, reconstruction,
// descending order) on random SPD and indefinite matrices up to n = 512,
// against the retained cyclic-Jacobi kernel as an independent oracle at
// sizes where Jacobi is still cheap, and for the exec-layer determinism
// contract — bit-identical output for any TDC_NUM_THREADS. Eigenvector
// comparisons are deliberately subspace-based (residual ‖Av − λv‖ and
// cluster projectors), never column-by-column: any orthonormal basis of a
// repeated eigenvalue's eigenspace is a correct answer.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/check.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "linalg/eig.h"
#include "linalg/gemm.h"

namespace tdc {
namespace {

Tensor random_symmetric(std::int64_t n, std::uint64_t seed) {
  Rng rng(seed);
  const Tensor b = Tensor::random_uniform({n, n}, rng);
  Tensor a({n, n});
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      a(i, j) = 0.5f * (b(i, j) + b(j, i));
    }
  }
  return a;
}

Tensor random_spd(std::int64_t n, std::uint64_t seed) {
  Rng rng(seed);
  const Tensor half = Tensor::random_uniform({n, n}, rng);
  Tensor a({n, n});
  // Double-accumulated B·B^T keeps the test matrix exactly symmetric.
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j <= i; ++j) {
      double acc = 0.0;
      for (std::int64_t k = 0; k < n; ++k) {
        acc += static_cast<double>(half(i, k)) * half(j, k);
      }
      a(i, j) = static_cast<float>(acc);
      a(j, i) = static_cast<float>(acc);
    }
  }
  return a;
}

double matrix_inf_norm(const Tensor& a) {
  double best = 0.0;
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    best = std::max(best, static_cast<double>(std::abs(a[i])));
  }
  return std::max(best, 1e-30);
}

/// max_ij |(V^T V − I)_ij|, accumulated in double.
double orthogonality_error(const Tensor& v) {
  const std::int64_t n = v.dim(0);
  const std::int64_t k = v.dim(1);
  double worst = 0.0;
  for (std::int64_t i = 0; i < k; ++i) {
    for (std::int64_t j = 0; j <= i; ++j) {
      double dot = 0.0;
      for (std::int64_t r = 0; r < n; ++r) {
        dot += static_cast<double>(v(r, i)) * v(r, j);
      }
      worst = std::max(worst, std::abs(dot - (i == j ? 1.0 : 0.0)));
    }
  }
  return worst;
}

/// max over columns of ‖A·v − λ·v‖₂ / ‖A‖.
double worst_residual(const Tensor& a, const EigResult& r) {
  const std::int64_t n = a.dim(0);
  const std::int64_t k = r.vectors.dim(1);
  const double scale = matrix_inf_norm(a) * static_cast<double>(n);
  double worst = 0.0;
  for (std::int64_t col = 0; col < k; ++col) {
    double err2 = 0.0;
    for (std::int64_t i = 0; i < n; ++i) {
      double av = 0.0;
      for (std::int64_t j = 0; j < n; ++j) {
        av += static_cast<double>(a(i, j)) * r.vectors(j, col);
      }
      const double d = av - r.values[static_cast<std::size_t>(col)] *
                                r.vectors(i, col);
      err2 += d * d;
    }
    worst = std::max(worst, std::sqrt(err2) / scale);
  }
  return worst;
}

void expect_descending(const std::vector<double>& values) {
  for (std::size_t i = 1; i < values.size(); ++i) {
    EXPECT_GE(values[i - 1], values[i]) << "position " << i;
  }
}

TEST(EigQl, MatchesJacobiOracleAcrossSizesAndSignatures) {
  // Straddle the Jacobi fallback threshold on purpose: eig_symmetric_ql
  // always takes the tridiagonal pipeline, the oracle always Jacobi.
  for (const std::int64_t n : {2, 3, 5, 16, 33, 64, 96}) {
    for (const bool spd : {true, false}) {
      const Tensor a = spd ? random_spd(n, 900 + static_cast<std::uint64_t>(n))
                           : random_symmetric(
                                 n, 1900 + static_cast<std::uint64_t>(n));
      const EigResult ql = eig_symmetric_ql(a);
      const EigResult oracle = eig_symmetric_jacobi(a);
      ASSERT_EQ(ql.values.size(), static_cast<std::size_t>(n));
      const double scale = matrix_inf_norm(a) * static_cast<double>(n);
      for (std::int64_t i = 0; i < n; ++i) {
        EXPECT_NEAR(ql.values[static_cast<std::size_t>(i)],
                    oracle.values[static_cast<std::size_t>(i)], 1e-6 * scale)
            << "n=" << n << " spd=" << spd << " i=" << i;
      }
      EXPECT_LT(orthogonality_error(ql.vectors), 1e-5) << "n=" << n;
      EXPECT_LT(worst_residual(a, ql), 1e-6) << "n=" << n << " spd=" << spd;
    }
  }
}

TEST(EigQl, PropertySuiteUpToN512) {
  for (const std::int64_t n : {64, 128, 256, 512}) {
    for (const bool spd : {true, false}) {
      const Tensor a = spd ? random_spd(n, 300 + static_cast<std::uint64_t>(n))
                           : random_symmetric(
                                 n, 1300 + static_cast<std::uint64_t>(n));
      const EigResult r = eig_symmetric(a);
      expect_descending(r.values);
      EXPECT_LT(orthogonality_error(r.vectors), 1e-5)
          << "n=" << n << " spd=" << spd;
      EXPECT_LT(worst_residual(a, r), 1e-6) << "n=" << n << " spd=" << spd;
      if (spd) {
        EXPECT_GE(r.values.back(), -1e-6 * matrix_inf_norm(a)) << "n=" << n;
      }

      // Reconstruction ‖A − VΛV^T‖/‖A‖ through the engine GEMM.
      Tensor lambda_vt({n, n});
      for (std::int64_t i = 0; i < n; ++i) {
        for (std::int64_t j = 0; j < n; ++j) {
          lambda_vt(i, j) =
              static_cast<float>(r.values[static_cast<std::size_t>(i)]) *
              r.vectors(j, i);
        }
      }
      const Tensor recon = matmul(r.vectors, lambda_vt);
      EXPECT_LT(Tensor::rel_error(recon, a), 1e-4)
          << "n=" << n << " spd=" << spd;
    }
  }
}

TEST(EigTopk, AgreesWithFullSolverOnLeadingPairs) {
  const std::int64_t n = 160;
  const Tensor a = random_spd(n, 41);
  const EigResult full = eig_symmetric(a);
  for (const std::int64_t k : {1, 5, 40, 160}) {
    const EigResult top = eig_symmetric_topk(a, k);
    ASSERT_EQ(top.values.size(), static_cast<std::size_t>(k));
    ASSERT_EQ(top.vectors.dim(0), n);
    ASSERT_EQ(top.vectors.dim(1), k);
    expect_descending(top.values);
    const double scale = matrix_inf_norm(a) * static_cast<double>(n);
    for (std::int64_t i = 0; i < k; ++i) {
      EXPECT_NEAR(top.values[static_cast<std::size_t>(i)],
                  full.values[static_cast<std::size_t>(i)], 1e-6 * scale)
          << "k=" << k << " i=" << i;
    }
    EXPECT_LT(orthogonality_error(top.vectors), 1e-5) << "k=" << k;
    EXPECT_LT(worst_residual(a, top), 1e-6) << "k=" << k;
  }
}

TEST(EigTopk, ClusteredEigenvaluesSpanTheRightEigenspace) {
  // A = V·D·V^T with an orthogonal V and a spectrum holding two exactly
  // repeated groups; built at n = 48 so the Jacobi oracle (which produced V)
  // stays cheap while the matrix itself is solved above the fallback via
  // eig_symmetric_ql/topk.
  const std::int64_t n = 48;
  const Tensor v = eig_symmetric_jacobi(random_spd(n, 57)).vectors;
  std::vector<double> spectrum(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    spectrum[static_cast<std::size_t>(i)] =
        i < 3 ? 10.0 : (i < 8 ? 4.0 : 1.0 / static_cast<double>(i));
  }
  Tensor a({n, n});
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::int64_t c = 0; c < n; ++c) {
        acc += spectrum[static_cast<std::size_t>(c)] *
               static_cast<double>(v(i, c)) * v(j, c);
      }
      a(i, j) = static_cast<float>(acc);
    }
  }

  const EigResult full = eig_symmetric_ql(a);
  const EigResult top = eig_symmetric_topk(a, 8);
  for (std::int64_t i = 0; i < 8; ++i) {
    const double want = i < 3 ? 10.0 : 4.0;
    EXPECT_NEAR(full.values[static_cast<std::size_t>(i)], want, 1e-4) << i;
    EXPECT_NEAR(top.values[static_cast<std::size_t>(i)], want, 1e-4) << i;
  }
  EXPECT_LT(orthogonality_error(top.vectors), 1e-5);
  EXPECT_LT(worst_residual(a, top), 1e-5);

  // The λ=10 eigenspace projector must match the generator's V[:, 0:3]
  // regardless of which orthonormal basis either solver returned.
  for (const Tensor& vecs : {full.vectors, top.vectors}) {
    for (std::int64_t i = 0; i < n; ++i) {
      for (std::int64_t j = 0; j < n; ++j) {
        double got = 0.0;
        double want = 0.0;
        for (std::int64_t c = 0; c < 3; ++c) {
          got += static_cast<double>(vecs(i, c)) * vecs(j, c);
          want += static_cast<double>(v(i, c)) * v(j, c);
        }
        EXPECT_NEAR(got, want, 1e-4) << i << "," << j;
      }
    }
  }
}

TEST(Eig, DeterministicAcrossThreadCounts) {
  const int saved = num_threads();
  const std::int64_t n = 256;
  const Tensor a = random_spd(n, 77);

  set_num_threads(1);
  const EigResult full1 = eig_symmetric(a);
  const EigResult top1 = eig_symmetric_topk(a, 64);
  const std::vector<double> vals1 = eig_symmetric_values(a);
  for (const int nt : {2, 4, 8}) {
    set_num_threads(nt);
    const EigResult full = eig_symmetric(a);
    const EigResult top = eig_symmetric_topk(a, 64);
    const std::vector<double> vals = eig_symmetric_values(a);
    // Bitwise: the doubles must be equal, not just close.
    EXPECT_EQ(full.values, full1.values) << "threads=" << nt;
    EXPECT_EQ(Tensor::max_abs_diff(full.vectors, full1.vectors), 0.0)
        << "threads=" << nt;
    EXPECT_EQ(top.values, top1.values) << "threads=" << nt;
    EXPECT_EQ(Tensor::max_abs_diff(top.vectors, top1.vectors), 0.0)
        << "threads=" << nt;
    EXPECT_EQ(vals, vals1) << "threads=" << nt;
  }
  set_num_threads(saved);
}

TEST(Eig, ValuesOnlyPathMatchesFullSolver) {
  for (const std::int64_t n : {16, 64, 200}) {
    const Tensor a = random_symmetric(n, 500 + static_cast<std::uint64_t>(n));
    const std::vector<double> vals = eig_symmetric_values(a);
    const EigResult full = eig_symmetric(a);
    ASSERT_EQ(vals.size(), full.values.size());
    const double scale = matrix_inf_norm(a) * static_cast<double>(n);
    for (std::size_t i = 0; i < vals.size(); ++i) {
      EXPECT_NEAR(vals[i], full.values[i], 1e-8 * scale) << "n=" << n;
    }
  }
}

TEST(Eig, ZeroAndNearZeroMatrices) {
  const std::int64_t n = 64;
  const Tensor zero({n, n});
  const EigResult rz = eig_symmetric(zero);
  for (const double v : rz.values) {
    EXPECT_EQ(v, 0.0);
  }
  EXPECT_LT(orthogonality_error(rz.vectors), 1e-6);
  const EigResult topz = eig_symmetric_topk(zero, 5);
  EXPECT_LT(orthogonality_error(topz.vectors), 1e-6);

  Tensor tiny = Tensor::full({n, n}, 1e-30f);
  const EigResult rt = eig_symmetric(tiny);
  expect_descending(rt.values);
  EXPECT_LT(orthogonality_error(rt.vectors), 1e-5);
}

TEST(Eig, SmallNFallbackIsExactlyJacobi) {
  // At or below the threshold the dispatcher must hand back the Jacobi
  // result bit-for-bit (it is the documented fallback, not a lookalike).
  const Tensor a = random_symmetric(kEigJacobiFallbackDim, 91);
  const EigResult got = eig_symmetric(a);
  const EigResult oracle = eig_symmetric_jacobi(a);
  EXPECT_EQ(got.values, oracle.values);
  EXPECT_EQ(Tensor::max_abs_diff(got.vectors, oracle.vectors), 0.0);
}

TEST(Eig, InputValidation) {
  Tensor rect({3, 5});
  EXPECT_THROW(eig_symmetric(rect), Error);
  EXPECT_THROW(eig_symmetric_ql(rect), Error);
  EXPECT_THROW(eig_symmetric_values(rect), Error);
  EXPECT_THROW(eig_symmetric_topk(rect, 1), Error);
  Tensor sq({4, 4});
  EXPECT_THROW(eig_symmetric_topk(sq, 0), Error);
  EXPECT_THROW(eig_symmetric_topk(sq, 5), Error);
}

}  // namespace
}  // namespace tdc
