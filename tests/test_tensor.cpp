#include <gtest/gtest.h>

#include <array>

#include "common/check.h"
#include "tensor/layout.h"
#include "tensor/tensor.h"

namespace tdc {
namespace {

TEST(Tensor, ZeroInitialized) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.numel(), 24);
  EXPECT_EQ(t.rank(), 3);
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    EXPECT_EQ(t[i], 0.0f);
  }
}

TEST(Tensor, RowMajorIndexing) {
  Tensor t({2, 3, 4});
  t(1, 2, 3) = 5.0f;
  EXPECT_EQ(t[1 * 12 + 2 * 4 + 3], 5.0f);
  t(0, 0, 1) = 7.0f;
  EXPECT_EQ(t[1], 7.0f);
}

TEST(Tensor, FourDimIndexing) {
  Tensor t({2, 3, 4, 5});
  t(1, 2, 3, 4) = 9.0f;
  EXPECT_EQ(t[((1 * 3 + 2) * 4 + 3) * 5 + 4], 9.0f);
}

TEST(Tensor, AtBoundsChecked) {
  Tensor t({2, 2});
  const std::array<std::int64_t, 2> bad = {2, 0};
  EXPECT_THROW(t.at(bad), Error);
  const std::array<std::int64_t, 1> wrong_rank = {0};
  EXPECT_THROW(t.at(wrong_rank), Error);
}

TEST(Tensor, InvalidDimsThrow) {
  EXPECT_THROW(Tensor({2, 0}), Error);
  EXPECT_THROW(Tensor({-1}), Error);
}

TEST(Tensor, ReshapePreservesData) {
  Rng rng(1);
  const Tensor t = Tensor::random_uniform({3, 8}, rng);
  const Tensor r = t.reshaped({4, 6});
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    EXPECT_EQ(t[i], r[i]);
  }
  EXPECT_THROW(t.reshaped({5, 5}), Error);
}

TEST(Tensor, TransposeMatrix) {
  Tensor t({2, 3});
  for (std::int64_t i = 0; i < 6; ++i) {
    t[i] = static_cast<float>(i);
  }
  constexpr std::array<int, 2> perm = {1, 0};
  const Tensor tt = t.transposed(perm);
  EXPECT_EQ(tt.dim(0), 3);
  EXPECT_EQ(tt.dim(1), 2);
  for (std::int64_t i = 0; i < 2; ++i) {
    for (std::int64_t j = 0; j < 3; ++j) {
      EXPECT_EQ(t(i, j), tt(j, i));
    }
  }
}

TEST(Tensor, TransposeRoundTrip4d) {
  Rng rng(3);
  const Tensor t = Tensor::random_uniform({2, 3, 4, 5}, rng);
  constexpr std::array<int, 4> perm = {2, 0, 3, 1};
  constexpr std::array<int, 4> inverse = {1, 3, 0, 2};
  const Tensor back = t.transposed(perm).transposed(inverse);
  EXPECT_EQ(Tensor::max_abs_diff(t, back), 0.0);
}

TEST(Tensor, TransposeRejectsInvalidPermutation) {
  Tensor t({2, 3});
  constexpr std::array<int, 2> dup = {0, 0};
  EXPECT_THROW(t.transposed(dup), Error);
}

TEST(Tensor, AddAndScale) {
  Tensor a = Tensor::full({4}, 2.0f);
  Tensor b = Tensor::full({4}, 0.5f);
  a.add_(b);
  a.scale_(2.0f);
  for (std::int64_t i = 0; i < 4; ++i) {
    EXPECT_FLOAT_EQ(a[i], 5.0f);
  }
  Tensor c({5});
  EXPECT_THROW(a.add_(c), Error);
}

TEST(Tensor, FrobeniusNorm) {
  Tensor t({2, 2});
  t(0, 0) = 3.0f;
  t(1, 1) = 4.0f;
  EXPECT_DOUBLE_EQ(t.frobenius_norm(), 5.0);
}

TEST(Tensor, RelError) {
  Tensor a = Tensor::full({10}, 1.01f);
  Tensor b = Tensor::full({10}, 1.0f);
  EXPECT_NEAR(Tensor::rel_error(a, b), 0.01, 1e-6);
}

TEST(Tensor, RandomUniformRespectsBounds) {
  Rng rng(5);
  const Tensor t = Tensor::random_uniform({1000}, rng, -0.5f, 0.25f);
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    EXPECT_GE(t[i], -0.5f);
    EXPECT_LT(t[i], 0.25f);
  }
}

TEST(Tensor, ShapeString) {
  EXPECT_EQ(Tensor({2, 3}).shape_string(), "[2, 3]");
}

TEST(Layout, ChwHwcRoundTrip) {
  Rng rng(7);
  const Tensor x = Tensor::random_uniform({3, 4, 5}, rng);
  const Tensor back = hwc_to_chw(chw_to_hwc(x));
  EXPECT_EQ(Tensor::max_abs_diff(x, back), 0.0);
}

TEST(Layout, ChwToHwcElementMapping) {
  Tensor x({2, 3, 4});
  x(1, 2, 3) = 42.0f;
  const Tensor hwc = chw_to_hwc(x);
  EXPECT_EQ(hwc(2, 3, 1), 42.0f);
}

TEST(Layout, CnrsCrsnRoundTrip) {
  Rng rng(9);
  const Tensor k = Tensor::random_uniform({3, 4, 5, 6}, rng);
  const Tensor back = crsn_to_cnrs(cnrs_to_crsn(k));
  EXPECT_EQ(Tensor::max_abs_diff(k, back), 0.0);
}

TEST(Layout, CnrsToCrsnElementMapping) {
  Tensor k({2, 3, 4, 5});  // C N R S
  k(1, 2, 3, 4) = 8.0f;
  const Tensor crsn = cnrs_to_crsn(k);
  EXPECT_EQ(crsn(1, 3, 4, 2), 8.0f);  // C R S N
}

TEST(Layout, CnrsNcrsRoundTrip) {
  Rng rng(11);
  const Tensor k = Tensor::random_uniform({3, 4, 2, 2}, rng);
  const Tensor back = ncrs_to_cnrs(cnrs_to_ncrs(k));
  EXPECT_EQ(Tensor::max_abs_diff(k, back), 0.0);
}

TEST(Layout, RankChecks) {
  Tensor bad({2, 2});
  EXPECT_THROW(chw_to_hwc(bad), Error);
  EXPECT_THROW(cnrs_to_crsn(bad), Error);
}

}  // namespace
}  // namespace tdc
