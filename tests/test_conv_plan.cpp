// Tests for the plan/execute API (exec/conv_plan.h): workspace exactness
// under a poisoned, guard-banded workspace; bit-reproducibility across
// repeated calls and thread counts; kAuto resolution and its fallback on
// shapes Winograd/FFT reject; Tucker plan parity with the staged oracle;
// and batched execution against per-image runs.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "common/check.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "conv/tucker_conv.h"
#include "exec/conv_plan.h"
#include "tucker/tucker.h"

namespace tdc {
namespace {

constexpr float kGuard = 12345.678f;
constexpr std::int64_t kGuardFloats = 64;

// Workspace of exactly plan->workspace_bytes(), bracketed by guard bands and
// poisoned with NaN: a plan that reads scratch it never wrote propagates NaN
// into the output, and one that writes past its stated size trips a guard.
struct PoisonedWorkspace {
  explicit PoisonedWorkspace(std::int64_t bytes)
      : floats(bytes / static_cast<std::int64_t>(sizeof(float))),
        buf(static_cast<std::size_t>(floats + 2 * kGuardFloats), kGuard) {
    poison();
  }

  void poison() {
    std::fill(buf.begin() + kGuardFloats,
              buf.begin() + kGuardFloats + floats,
              std::numeric_limits<float>::quiet_NaN());
  }

  std::span<float> span() {
    return std::span<float>(buf).subspan(kGuardFloats,
                                         static_cast<std::size_t>(floats));
  }

  bool guards_intact() const {
    for (std::int64_t i = 0; i < kGuardFloats; ++i) {
      if (buf[static_cast<std::size_t>(i)] != kGuard ||
          buf[buf.size() - 1 - static_cast<std::size_t>(i)] != kGuard) {
        return false;
      }
    }
    return true;
  }

  std::int64_t floats;
  std::vector<float> buf;
};

bool all_finite(const Tensor& t) {
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    if (!std::isfinite(t[i])) {
      return false;
    }
  }
  return true;
}

struct AlgoCase {
  ConvAlgo algo;
  ConvShape shape;
  double tol;
  const char* label;
};

class ConvPlanAlgo : public ::testing::TestWithParam<AlgoCase> {};

TEST_P(ConvPlanAlgo, MatchesReferenceUnderPoisonedWorkspace) {
  const AlgoCase& p = GetParam();
  Rng rng(501);
  const Tensor x = Tensor::random_uniform({p.shape.c, p.shape.h, p.shape.w}, rng);
  const Tensor k =
      Tensor::random_uniform({p.shape.c, p.shape.n, p.shape.r, p.shape.s}, rng);
  const Tensor ref = conv2d_reference(x, k, p.shape);

  ConvDescriptor desc;
  desc.shape = p.shape;
  desc.algo = p.algo;
  const auto plan = compile_conv_plan(desc, k);
  EXPECT_EQ(plan->algo(), p.algo);
  EXPECT_FALSE(plan->decomposed());

  PoisonedWorkspace ws(plan->workspace_bytes());
  Tensor y({p.shape.n, p.shape.out_h(), p.shape.out_w()});
  plan->run(x, &y, ws.span());
  EXPECT_TRUE(ws.guards_intact()) << p.label;
  EXPECT_TRUE(all_finite(y)) << p.label;
  EXPECT_LT(Tensor::rel_error(y, ref), p.tol) << p.label;
}

TEST_P(ConvPlanAlgo, BitIdenticalAcrossRepeatedCallsAndThreadCounts) {
  const AlgoCase& p = GetParam();
  const int saved = num_threads();
  Rng rng(502);
  const Tensor x = Tensor::random_uniform({p.shape.c, p.shape.h, p.shape.w}, rng);
  const Tensor k =
      Tensor::random_uniform({p.shape.c, p.shape.n, p.shape.r, p.shape.s}, rng);

  ConvDescriptor desc;
  desc.shape = p.shape;
  desc.algo = p.algo;
  const auto plan = compile_conv_plan(desc, k);

  PoisonedWorkspace ws(plan->workspace_bytes());
  Tensor first({p.shape.n, p.shape.out_h(), p.shape.out_w()});
  plan->run(x, &first, ws.span());
  for (const int nt : {1, 3, 6}) {
    set_num_threads(nt);
    ws.poison();
    Tensor again({p.shape.n, p.shape.out_h(), p.shape.out_w()});
    plan->run(x, &again, ws.span());
    EXPECT_EQ(Tensor::max_abs_diff(first, again), 0.0)
        << p.label << " threads=" << nt;
  }
  set_num_threads(saved);
}

INSTANTIATE_TEST_SUITE_P(
    Algos, ConvPlanAlgo,
    ::testing::Values(
        AlgoCase{ConvAlgo::kReference, ConvShape::same(5, 7, 9, 3), 1e-6,
                 "reference"},
        AlgoCase{ConvAlgo::kIm2col, ConvShape::same(8, 6, 11, 3, 2), 1e-4,
                 "im2col_strided"},
        AlgoCase{ConvAlgo::kIm2col, ConvShape::valid_conv(5, 7, 9, 11, 2, 4),
                 1e-4, "im2col_asym"},
        AlgoCase{ConvAlgo::kWinograd, ConvShape::same(6, 8, 12, 3), 1e-3,
                 "winograd"},
        AlgoCase{ConvAlgo::kWinograd, ConvShape::same(4, 4, 9, 3), 1e-3,
                 "winograd_odd"},
        AlgoCase{ConvAlgo::kFft, ConvShape::same(6, 5, 10, 5), 1e-4, "fft"},
        AlgoCase{ConvAlgo::kFft, ConvShape::valid_conv(3, 4, 8, 12, 2, 3),
                 1e-4, "fft_asym"},
        AlgoCase{ConvAlgo::kTdcCore, ConvShape::same(6, 8, 10, 3), 1e-4,
                 "tdc_core"},
        AlgoCase{ConvAlgo::kTdcCore, ConvShape::same(8, 6, 12, 3, 2), 1e-4,
                 "tdc_core_strided"}),
    [](const auto& info) { return info.param.label; });

TEST(ConvPlan, WinogradFloatTileMathMatchesReferenceTight) {
  // Dedicated parity check of the float Winograd rewrite on a larger
  // problem: the transform-domain GEMM path must stay well inside the
  // historical 1e-3 tolerance.
  Rng rng(503);
  const ConvShape shape = ConvShape::same(16, 16, 28, 3);
  const Tensor x = Tensor::random_uniform({shape.c, shape.h, shape.w}, rng);
  const Tensor k =
      Tensor::random_uniform({shape.c, shape.n, shape.r, shape.s}, rng);
  ConvDescriptor desc;
  desc.shape = shape;
  desc.algo = ConvAlgo::kWinograd;
  const Tensor y = compile_conv_plan(desc, k)->run(x);
  EXPECT_LT(Tensor::rel_error(y, conv2d_reference(x, k, shape)), 2e-5);
}

TEST(ConvPlan, FftFloatMatchesReferenceTight) {
  Rng rng(504);
  const ConvShape shape = ConvShape::same(12, 10, 20, 5);
  const Tensor x = Tensor::random_uniform({shape.c, shape.h, shape.w}, rng);
  const Tensor k =
      Tensor::random_uniform({shape.c, shape.n, shape.r, shape.s}, rng);
  ConvDescriptor desc;
  desc.shape = shape;
  desc.algo = ConvAlgo::kFft;
  const Tensor y = compile_conv_plan(desc, k)->run(x);
  EXPECT_LT(Tensor::rel_error(y, conv2d_reference(x, k, shape)), 1e-5);
}

TEST(ConvPlan, AutoResolvesToSupportedAlgorithm) {
  const DeviceSpec device = make_a100();
  // Stride-2 5×5: Winograd (3×3 only) and FFT (stride 1 only) must be
  // rejected, so kAuto has to fall back to a supported algorithm.
  const ConvShape strided = ConvShape::same(8, 8, 16, 5, 2);
  const ConvAlgo resolved = resolve_conv_algo(device, strided);
  EXPECT_TRUE(conv_algo_supports(resolved, strided))
      << conv_algo_name(resolved);
  EXPECT_NE(resolved, ConvAlgo::kWinograd);
  EXPECT_NE(resolved, ConvAlgo::kFft);
  EXPECT_NE(resolved, ConvAlgo::kReference);
  EXPECT_NE(resolved, ConvAlgo::kAuto);

  Rng rng(505);
  const Tensor x = Tensor::random_uniform({strided.c, strided.h, strided.w}, rng);
  const Tensor k = Tensor::random_uniform(
      {strided.c, strided.n, strided.r, strided.s}, rng);
  ConvDescriptor desc;
  desc.shape = strided;
  const auto plan = compile_conv_plan(desc, k);  // algo defaults to kAuto
  EXPECT_EQ(plan->algo(), resolved);
  EXPECT_LT(Tensor::rel_error(plan->run(x), conv2d_reference(x, k, strided)),
            1e-4);
}

TEST(ConvPlan, AutoNeverSelectsTransformAlgosForPointwise) {
  // Regression: a 1×1 convolution is a bare channel-mix GEMM. Winograd is
  // shape-rejected anyway, but FFT functionally supports stride-1 1×1
  // layers, and trusting its padded-plane cost model there could hand a
  // pointwise layer to the transform path. The resolver must exclude both.
  const DeviceSpec device = make_a100();
  for (const ConvShape& shape :
       {ConvShape::same(64, 64, 56, 1), ConvShape::same(256, 64, 56, 1),
        ConvShape::same(64, 256, 7, 1), ConvShape::same(64, 128, 56, 1, 2),
        ConvShape::valid_conv(16, 32, 30, 30, 1, 1)}) {
    const ConvAlgo resolved = resolve_conv_algo(device, shape);
    EXPECT_NE(resolved, ConvAlgo::kWinograd) << shape.to_string();
    EXPECT_NE(resolved, ConvAlgo::kFft) << shape.to_string();
    EXPECT_TRUE(conv_algo_supports(resolved, shape)) << shape.to_string();
  }
}

TEST(ConvPlan, PointwiseIm2colPlanIsZeroWorkspaceAndExact) {
  // The 1×1 fast path: unit-stride unpadded pointwise plans skip the patch
  // copy and run the GEMM straight off the input (zero workspace).
  Rng rng(520);
  const ConvShape shape = ConvShape::same(6, 9, 11, 1);
  const Tensor x = Tensor::random_uniform({shape.c, shape.h, shape.w}, rng);
  const Tensor k =
      Tensor::random_uniform({shape.c, shape.n, shape.r, shape.s}, rng);
  ConvDescriptor desc;
  desc.shape = shape;
  desc.algo = ConvAlgo::kIm2col;
  const auto plan = compile_conv_plan(desc, k);
  EXPECT_EQ(plan->workspace_bytes(), 0);
  EXPECT_LT(Tensor::rel_error(plan->run(x), conv2d_reference(x, k, shape)),
            1e-4);

  // Strided 1×1 (a ResNet downsample) still needs the subsampling im2col.
  const ConvShape strided = ConvShape::same(6, 9, 11, 1, 2);
  const Tensor ks =
      Tensor::random_uniform({strided.c, strided.n, strided.r, strided.s},
                             rng);
  desc.shape = strided;
  const auto strided_plan = compile_conv_plan(desc, ks);
  EXPECT_GT(strided_plan->workspace_bytes(), 0);
  EXPECT_LT(Tensor::rel_error(strided_plan->run(x),
                              conv2d_reference(x, ks, strided)),
            1e-4);
}

TEST(ConvPlan, ExplicitUnsupportedAlgoThrows) {
  Rng rng(506);
  const ConvShape strided5 = ConvShape::same(2, 2, 8, 5, 2);
  const Tensor k = Tensor::random_uniform(
      {strided5.c, strided5.n, strided5.r, strided5.s}, rng);
  ConvDescriptor desc;
  desc.shape = strided5;
  desc.algo = ConvAlgo::kWinograd;
  EXPECT_THROW(compile_conv_plan(desc, k), Error);
  desc.algo = ConvAlgo::kFft;
  EXPECT_THROW(compile_conv_plan(desc, k), Error);
}

TEST(ConvPlan, UndersizedWorkspaceAndOutputThrow) {
  Rng rng(507);
  const ConvShape shape = ConvShape::same(4, 4, 10, 3);
  const Tensor x = Tensor::random_uniform({shape.c, shape.h, shape.w}, rng);
  const Tensor k =
      Tensor::random_uniform({shape.c, shape.n, shape.r, shape.s}, rng);
  ConvDescriptor desc;
  desc.shape = shape;
  desc.algo = ConvAlgo::kIm2col;
  const auto plan = compile_conv_plan(desc, k);
  ASSERT_GT(plan->workspace_bytes(), 0);

  std::vector<float> small(
      static_cast<std::size_t>(plan->workspace_bytes() / sizeof(float)) - 1);
  Tensor y({shape.n, shape.out_h(), shape.out_w()});
  EXPECT_THROW(plan->run(x, &y, small), Error);

  std::vector<float> ok(
      static_cast<std::size_t>(plan->workspace_bytes() / sizeof(float)));
  Tensor bad({shape.n + 1, shape.out_h(), shape.out_w()});
  EXPECT_THROW(plan->run(x, &bad, ok), Error);
}

TEST(ConvPlan, KernelLayoutVariantsAgree) {
  Rng rng(508);
  const ConvShape shape = ConvShape::same(5, 6, 9, 3);
  const Tensor k_cnrs =
      Tensor::random_uniform({shape.c, shape.n, shape.r, shape.s}, rng);
  ConvDescriptor desc;
  desc.shape = shape;
  desc.algo = ConvAlgo::kIm2col;
  const Tensor via_cnrs = compile_conv_plan(desc, k_cnrs)->run(
      Tensor::full({shape.c, shape.h, shape.w}, 0.5f));

  desc.weight_layout = KernelLayout::kCRSN;
  const Tensor via_crsn = compile_conv_plan(desc, cnrs_to_crsn(k_cnrs))->run(
      Tensor::full({shape.c, shape.h, shape.w}, 0.5f));
  EXPECT_EQ(Tensor::max_abs_diff(via_cnrs, via_crsn), 0.0);

  desc.weight_layout = KernelLayout::kNCRS;
  const Tensor via_ncrs = compile_conv_plan(desc, cnrs_to_ncrs(k_cnrs))->run(
      Tensor::full({shape.c, shape.h, shape.w}, 0.5f));
  EXPECT_EQ(Tensor::max_abs_diff(via_cnrs, via_ncrs), 0.0);
}

TEST(ConvPlan, BatchedRunMatchesPerImageRuns) {
  Rng rng(509);
  const ConvShape shape = ConvShape::same(6, 8, 12, 3);
  const std::int64_t batch = 5;
  const Tensor x =
      Tensor::random_uniform({batch, shape.c, shape.h, shape.w}, rng);
  const Tensor k =
      Tensor::random_uniform({shape.c, shape.n, shape.r, shape.s}, rng);

  ConvDescriptor desc;
  desc.shape = shape;
  desc.algo = ConvAlgo::kIm2col;
  const auto plan = compile_conv_plan(desc, k);

  PoisonedWorkspace ws(plan->batched_workspace_bytes(batch));
  Tensor y({batch, shape.n, shape.out_h(), shape.out_w()});
  plan->run_batched(x, &y, ws.span());
  EXPECT_TRUE(ws.guards_intact());

  const std::int64_t x_stride = shape.c * shape.h * shape.w;
  const std::int64_t y_stride = shape.n * shape.out_h() * shape.out_w();
  for (std::int64_t b = 0; b < batch; ++b) {
    Tensor xb({shape.c, shape.h, shape.w});
    std::copy(x.raw() + b * x_stride, x.raw() + (b + 1) * x_stride, xb.raw());
    const Tensor yb = plan->run(xb);
    for (std::int64_t i = 0; i < y_stride; ++i) {
      ASSERT_EQ(y[b * y_stride + i], yb[i]) << "image " << b;
    }
  }
}

// ---------------------------------------------------------------------------
// Tucker plans.

TEST(TuckerPlan, FusedPlanIsBitIdenticalToStagedOracle) {
  Rng rng(510);
  const ConvShape shape = ConvShape::same(8, 8, 12, 3, 2);
  const Tensor x = Tensor::random_uniform({shape.c, shape.h, shape.w}, rng);
  const Tensor k =
      Tensor::random_uniform({shape.c, shape.n, shape.r, shape.s}, rng);
  const TuckerFactors f = tucker_decompose(k, {5, 5});
  const Tensor staged = tucker_conv(x, f, shape, ConvAlgo::kIm2col);

  TuckerDescriptor desc;
  desc.shape = shape;
  desc.exec = TuckerExec::kFused;
  const auto plan = compile_tucker_plan(desc, f);
  EXPECT_TRUE(plan->decomposed());
  PoisonedWorkspace ws(plan->workspace_bytes());
  Tensor y({shape.n, shape.out_h(), shape.out_w()});
  plan->run(x, &y, ws.span());
  EXPECT_TRUE(ws.guards_intact());
  EXPECT_EQ(Tensor::max_abs_diff(y, staged), 0.0);
}

TEST(TuckerPlan, StagedPlanComposesWithEveryCoreAlgorithm) {
  Rng rng(511);
  const ConvShape shape = ConvShape::same(8, 6, 10, 3);
  const Tensor x = Tensor::random_uniform({shape.c, shape.h, shape.w}, rng);
  const Tensor k =
      Tensor::random_uniform({shape.c, shape.n, shape.r, shape.s}, rng);
  const TuckerFactors f = tucker_decompose(k, {4, 4});
  const Tensor oracle = tucker_conv(x, f, shape, ConvAlgo::kReference);

  for (const ConvAlgo core :
       {ConvAlgo::kReference, ConvAlgo::kIm2col, ConvAlgo::kWinograd,
        ConvAlgo::kFft, ConvAlgo::kTdcCore, ConvAlgo::kAuto}) {
    TuckerDescriptor desc;
    desc.shape = shape;
    desc.exec = TuckerExec::kStaged;
    desc.core_algo = core;
    const auto plan = compile_tucker_plan(desc, f);
    PoisonedWorkspace ws(plan->workspace_bytes());
    Tensor y({shape.n, shape.out_h(), shape.out_w()});
    plan->run(x, &y, ws.span());
    EXPECT_TRUE(ws.guards_intact()) << conv_algo_name(core);
    EXPECT_LT(Tensor::rel_error(y, oracle), 1e-3) << conv_algo_name(core);
  }
}

TEST(TuckerPlan, BatchedFusedMatchesPerImageBitwiseAcrossThreadCounts) {
  const int saved = num_threads();
  Rng rng(512);
  const ConvShape shape = ConvShape::same(6, 6, 10, 3);
  const std::int64_t batch = 7;
  const Tensor x =
      Tensor::random_uniform({batch, shape.c, shape.h, shape.w}, rng);
  const Tensor k =
      Tensor::random_uniform({shape.c, shape.n, shape.r, shape.s}, rng);
  const TuckerFactors f = tucker_decompose(k, {3, 3});

  TuckerDescriptor desc;
  desc.shape = shape;
  const auto plan = compile_tucker_plan(desc, f);
  PoisonedWorkspace ws(plan->batched_workspace_bytes(batch));
  Tensor first({batch, shape.n, shape.out_h(), shape.out_w()});
  plan->run_batched(x, &first, ws.span());
  EXPECT_TRUE(ws.guards_intact());

  for (const int nt : {1, 4}) {
    set_num_threads(nt);
    ws.poison();
    Tensor again({batch, shape.n, shape.out_h(), shape.out_w()});
    plan->run_batched(x, &again, ws.span());
    EXPECT_EQ(Tensor::max_abs_diff(first, again), 0.0) << "threads=" << nt;
  }
  set_num_threads(saved);
}

TEST(TuckerPlan, MismatchedFactorsThrow) {
  Rng rng(513);
  const ConvShape shape = ConvShape::same(6, 6, 10, 3);
  const Tensor k =
      Tensor::random_uniform({shape.c, shape.n, shape.r, shape.s}, rng);
  TuckerFactors f = tucker_decompose(k, {3, 3});
  TuckerDescriptor desc;
  desc.shape = ConvShape::same(8, 6, 10, 3);  // C mismatch vs U1
  EXPECT_THROW(compile_tucker_plan(desc, f), Error);
}

}  // namespace
}  // namespace tdc
