#include <gtest/gtest.h>

#include "common/check.h"
#include "conv/conv.h"
#include "core/tdc_kernel.h"
#include "tensor/layout.h"

namespace tdc {
namespace {

TEST(TdcTiling, TileExtents) {
  const ConvShape s = ConvShape::same(16, 8, 14, 3);
  const TdcTiling t{4, 5, 8};
  EXPECT_EQ(tdc_tile_in_h(s, t), 6);   // (4-1)*1 + 3
  EXPECT_EQ(tdc_tile_in_w(s, t), 7);
  EXPECT_EQ(tdc_num_blocks(s, t), 4 * 3 * 2);  // ceil(14/4)*ceil(14/5)*ceil(16/8)
}

TEST(TdcTiling, StridedTileExtents) {
  const ConvShape s = ConvShape::same(16, 8, 14, 3, 2);
  const TdcTiling t{3, 3, 16};
  EXPECT_EQ(tdc_tile_in_h(s, t), (3 - 1) * 2 + 3);
}

TEST(TdcTiling, Feasibility) {
  const DeviceSpec d = make_a100();
  const ConvShape s = ConvShape::same(64, 32, 28, 3);
  EXPECT_TRUE(tdc_tiling_feasible(d, s, {4, 4, 16}));
  EXPECT_FALSE(tdc_tiling_feasible(d, s, {40, 4, 16}));   // th > OH
  EXPECT_FALSE(tdc_tiling_feasible(d, s, {16, 16, 16}));  // register tile too big
  EXPECT_FALSE(tdc_tiling_feasible(d, s, {0, 4, 16}));
}

TEST(TdcTiling, SharedMemoryBound) {
  const DeviceSpec d = make_rtx2080ti();  // 64 KB/block
  const ConvShape s = ConvShape::same(512, 32, 56, 3);
  // 512 channels × 8×8 tile × 4 B = 131 KB > 64 KB.
  EXPECT_FALSE(tdc_tiling_feasible(d, s, {6, 6, 512}));
  EXPECT_TRUE(tdc_tiling_feasible(d, s, {6, 6, 64}));
}

TEST(TdcLaunch, DescriptorInvariants) {
  const DeviceSpec d = make_a100();
  const ConvShape s = ConvShape::same(64, 32, 28, 3);
  const TdcTiling t{4, 4, 16};
  const KernelLaunch l = tdc_core_launch(d, s, t);
  EXPECT_EQ(l.num_blocks, tdc_num_blocks(s, t));
  EXPECT_EQ(l.block.threads, 32);
  EXPECT_EQ(l.block.shared_bytes, 16 * 6 * 6 * 4);
  EXPECT_EQ(l.sync_count, 1);  // the single-barrier design point
  EXPECT_GT(l.flops_per_block, 0.0);
  // Every C partition commits atomically; the unique output plane is the
  // DRAM write footprint.
  EXPECT_DOUBLE_EQ(l.atomic_bytes,
                   static_cast<double>(l.num_blocks) * 4 * 4 * 32 * 4);
  EXPECT_DOUBLE_EQ(l.bytes_written, 28.0 * 28 * 32 * 4);
  EXPECT_GT(l.atomic_bytes, l.bytes_written);
}

TEST(TdcLaunch, CrsnReadsLessThanCnrs) {
  // The CRSN layout ablation: coalesced weight reads mean less DRAM traffic.
  const DeviceSpec d = make_a100();
  const ConvShape s = ConvShape::same(64, 32, 28, 3);
  const TdcTiling t{4, 4, 16};
  const KernelLaunch crsn = tdc_core_launch(d, s, t, TdcWeightLayout::kCRSN);
  const KernelLaunch cnrs = tdc_core_launch(d, s, t, TdcWeightLayout::kCNRS);
  EXPECT_LT(crsn.bytes_read, cnrs.bytes_read);
}

struct TdcCase {
  ConvShape shape;
  TdcTiling tiling;
  const char* label;
};

class TdcKernelCorrectness : public ::testing::TestWithParam<TdcCase> {};

TEST_P(TdcKernelCorrectness, MatchesReference) {
  const auto& p = GetParam();
  Rng rng(131);
  const Tensor x =
      Tensor::random_uniform({p.shape.c, p.shape.h, p.shape.w}, rng);
  const Tensor k_cnrs =
      Tensor::random_uniform({p.shape.c, p.shape.n, p.shape.r, p.shape.s}, rng);
  const Tensor ref = conv2d_reference(x, k_cnrs, p.shape);
  const Tensor out =
      tdc_core_conv(x, cnrs_to_crsn(k_cnrs), p.shape, p.tiling);
  EXPECT_LT(Tensor::rel_error(out, ref), 1e-4) << p.label;
}

TEST_P(TdcKernelCorrectness, SequentialInterpreterMatchesParallel) {
  const auto& p = GetParam();
  Rng rng(133);
  const Tensor x =
      Tensor::random_uniform({p.shape.c, p.shape.h, p.shape.w}, rng);
  const Tensor k =
      cnrs_to_crsn(Tensor::random_uniform(
          {p.shape.c, p.shape.n, p.shape.r, p.shape.s}, rng));
  const Tensor par = tdc_core_conv(x, k, p.shape, p.tiling, /*parallel=*/true);
  const Tensor seq = tdc_core_conv(x, k, p.shape, p.tiling, /*parallel=*/false);
  EXPECT_LT(Tensor::rel_error(par, seq), 1e-5) << p.label;
}

INSTANTIATE_TEST_SUITE_P(
    Tilings, TdcKernelCorrectness,
    ::testing::Values(
        TdcCase{ConvShape::same(8, 8, 12, 3), {4, 4, 8}, "even_tiles"},
        TdcCase{ConvShape::same(8, 8, 14, 3), {4, 5, 3}, "ragged_everything"},
        TdcCase{ConvShape::same(8, 8, 14, 3), {14, 14, 8}, "single_hw_block"},
        TdcCase{ConvShape::same(8, 8, 14, 3), {1, 1, 1}, "unit_tiles"},
        TdcCase{ConvShape::valid_conv(6, 4, 10, 10, 3, 3), {4, 4, 2},
                "valid_conv"},
        TdcCase{ConvShape::same(8, 16, 14, 3, 2), {4, 4, 8}, "stride2"},
        TdcCase{ConvShape::same(5, 7, 9, 5), {3, 3, 5}, "filter5_oddC"},
        TdcCase{ConvShape::same(4, 4, 8, 1), {4, 4, 4}, "pointwise_core"},
        TdcCase{ConvShape::valid_conv(3, 5, 8, 12, 2, 4), {3, 5, 2},
                "asym_filter"}),
    [](const auto& info) { return info.param.label; });

TEST(TdcKernel, CSplitPartitionsAccumulate) {
  // The same problem with 1 vs many C partitions must agree — this is the
  // atomicAdd accumulation path.
  Rng rng(135);
  const ConvShape s = ConvShape::same(12, 8, 10, 3);
  const Tensor x = Tensor::random_uniform({12, 10, 10}, rng);
  const Tensor k = cnrs_to_crsn(Tensor::random_uniform({12, 8, 3, 3}, rng));
  const Tensor full = tdc_core_conv(x, k, s, {5, 5, 12});
  const Tensor split = tdc_core_conv(x, k, s, {5, 5, 2});
  EXPECT_LT(Tensor::rel_error(split, full), 1e-4);
}

TEST(TdcKernel, InputValidation) {
  Rng rng(137);
  const ConvShape s = ConvShape::same(4, 4, 8, 3);
  const Tensor x = Tensor::random_uniform({4, 8, 8}, rng);
  const Tensor bad_kernel = Tensor::random_uniform({4, 4, 3, 3}, rng);  // CNRS!
  // CRSN expected: dims [4, 3, 3, 4]; the CNRS tensor has wrong extents.
  EXPECT_THROW(tdc_core_conv(x, Tensor({4, 4, 3, 3}), s, {2, 2, 2}), Error);
  EXPECT_NO_THROW(tdc_core_conv(x, Tensor({4, 3, 3, 4}), s, {2, 2, 2}));
  (void)bad_kernel;
}

TEST(TdcCost, FasterThanNaiveSingleBlock) {
  // A reasonable tiling must beat the degenerate whole-image block.
  const DeviceSpec d = make_a100();
  const ConvShape s = ConvShape::same(64, 32, 28, 3);
  const double good = tdc_core_cost(d, s, {4, 4, 8}).total_s;
  const double bad = tdc_core_cost(d, s, {14, 14, 64}).total_s;
  EXPECT_LT(good, bad);
}

TEST(TdcCost, InfeasibleTilingThrows) {
  const DeviceSpec d = make_a100();
  const ConvShape s = ConvShape::same(64, 32, 28, 3);
  EXPECT_THROW(tdc_core_cost(d, s, {28, 28, 64}), Error);
}

}  // namespace
}  // namespace tdc
