#include <gtest/gtest.h>

#include <tuple>

#include "common/check.h"
#include "conv/conv.h"
#include "conv/pointwise.h"
#include "conv/tucker_conv.h"
#include "linalg/gemm.h"

namespace tdc {
namespace {

TEST(ConvShape, OutputGeometry) {
  const ConvShape valid = ConvShape::valid_conv(3, 8, 10, 12, 3, 3);
  EXPECT_EQ(valid.out_h(), 8);
  EXPECT_EQ(valid.out_w(), 10);

  const ConvShape same = ConvShape::same(3, 8, 14, 3);
  EXPECT_EQ(same.out_h(), 14);
  EXPECT_EQ(same.out_w(), 14);

  const ConvShape strided = ConvShape::same(3, 8, 14, 3, 2);
  EXPECT_EQ(strided.out_h(), 7);
}

TEST(ConvShape, FlopsAndParams) {
  const ConvShape s = ConvShape::valid_conv(4, 8, 6, 6, 3, 3);
  EXPECT_DOUBLE_EQ(s.params(), 4.0 * 8 * 9);
  EXPECT_DOUBLE_EQ(s.flops(), 2.0 * 4 * 4 * 8 * 4 * 9);
}

TEST(ConvShape, Validity) {
  ConvShape s = ConvShape::valid_conv(1, 1, 2, 2, 3, 3);
  EXPECT_FALSE(s.valid());  // filter bigger than image
  s = ConvShape::same(1, 1, 4, 3);
  EXPECT_TRUE(s.valid());
}

TEST(ConvReference, HandComputed1d) {
  // 1×1×4 input, 1×1×1×2 kernel: sliding dot product.
  const ConvShape shape = ConvShape::valid_conv(1, 1, 1, 4, 1, 2);
  Tensor x({1, 1, 4});
  for (int i = 0; i < 4; ++i) {
    x[i] = static_cast<float>(i + 1);  // 1 2 3 4
  }
  Tensor k({1, 1, 1, 2});
  k[0] = 1.0f;
  k[1] = 10.0f;
  const Tensor y = conv2d_reference(x, k, shape);
  ASSERT_EQ(y.numel(), 3);
  EXPECT_FLOAT_EQ(y[0], 1 + 20);
  EXPECT_FLOAT_EQ(y[1], 2 + 30);
  EXPECT_FLOAT_EQ(y[2], 3 + 40);
}

TEST(ConvReference, PaddingZeroFills) {
  const ConvShape shape = ConvShape::same(1, 1, 3, 3);
  Tensor x = Tensor::full({1, 3, 3}, 1.0f);
  Tensor k = Tensor::full({1, 1, 3, 3}, 1.0f);
  const Tensor y = conv2d_reference(x, k, shape);
  EXPECT_FLOAT_EQ(y(0, 1, 1), 9.0f);  // full window
  EXPECT_FLOAT_EQ(y(0, 0, 0), 4.0f);  // corner sees 2×2
  EXPECT_FLOAT_EQ(y(0, 0, 1), 6.0f);  // edge sees 2×3
}

TEST(ConvReference, ShapeMismatchThrows) {
  const ConvShape shape = ConvShape::same(2, 3, 4, 3);
  Tensor x({3, 4, 4});  // wrong C
  Tensor k({2, 3, 3, 3});
  EXPECT_THROW(conv2d_reference(x, k, shape), Error);
}

TEST(PadChw, Geometry) {
  Rng rng(91);
  const Tensor x = Tensor::random_uniform({2, 3, 4}, rng);
  const Tensor p = pad_chw(x, 1, 2);
  EXPECT_EQ(p.dim(1), 5);
  EXPECT_EQ(p.dim(2), 8);
  EXPECT_EQ(p(0, 0, 0), 0.0f);
  EXPECT_EQ(p(1, 1, 2), x(1, 0, 0));
}

TEST(Im2col, PatchLayout) {
  const ConvShape shape = ConvShape::valid_conv(1, 1, 3, 3, 2, 2);
  Tensor x({1, 3, 3});
  for (int i = 0; i < 9; ++i) {
    x[i] = static_cast<float>(i);
  }
  const Tensor cols = im2col(x, shape);
  EXPECT_EQ(cols.dim(0), 4);   // C·R·S
  EXPECT_EQ(cols.dim(1), 4);   // OH·OW
  // Patch at output (0,0) is [0, 1, 3, 4] down the column.
  EXPECT_FLOAT_EQ(cols(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(cols(1, 0), 1.0f);
  EXPECT_FLOAT_EQ(cols(2, 0), 3.0f);
  EXPECT_FLOAT_EQ(cols(3, 0), 4.0f);
}

struct ConvCase {
  ConvShape shape;
  const char* label;
};

class ConvAgreement : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvAgreement, Im2colMatchesReference) {
  const ConvShape shape = GetParam().shape;
  Rng rng(101);
  const Tensor x = Tensor::random_uniform({shape.c, shape.h, shape.w}, rng);
  const Tensor k =
      Tensor::random_uniform({shape.c, shape.n, shape.r, shape.s}, rng);
  const Tensor ref = conv2d_reference(x, k, shape);
  const Tensor fast = conv2d_im2col(x, k, shape);
  EXPECT_LT(Tensor::rel_error(fast, ref), 1e-4) << GetParam().label;
}

TEST_P(ConvAgreement, WinogradMatchesReferenceWhenSupported) {
  const ConvShape shape = GetParam().shape;
  if (!conv_algo_supports(ConvAlgo::kWinograd, shape)) {
    GTEST_SKIP() << "unsupported shape for winograd";
  }
  Rng rng(103);
  const Tensor x = Tensor::random_uniform({shape.c, shape.h, shape.w}, rng);
  const Tensor k =
      Tensor::random_uniform({shape.c, shape.n, shape.r, shape.s}, rng);
  const Tensor ref = conv2d_reference(x, k, shape);
  const Tensor fast = conv2d_winograd(x, k, shape);
  EXPECT_LT(Tensor::rel_error(fast, ref), 1e-3) << GetParam().label;
}

TEST_P(ConvAgreement, FftMatchesReferenceWhenSupported) {
  const ConvShape shape = GetParam().shape;
  if (!conv_algo_supports(ConvAlgo::kFft, shape)) {
    GTEST_SKIP() << "unsupported shape for fft";
  }
  Rng rng(105);
  const Tensor x = Tensor::random_uniform({shape.c, shape.h, shape.w}, rng);
  const Tensor k =
      Tensor::random_uniform({shape.c, shape.n, shape.r, shape.s}, rng);
  const Tensor ref = conv2d_reference(x, k, shape);
  const Tensor fast = conv2d_fft(x, k, shape);
  EXPECT_LT(Tensor::rel_error(fast, ref), 1e-4) << GetParam().label;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConvAgreement,
    ::testing::Values(
        ConvCase{ConvShape::valid_conv(3, 4, 8, 8, 3, 3), "valid3x3"},
        ConvCase{ConvShape::same(4, 6, 9, 3), "same3x3_odd"},
        ConvCase{ConvShape::same(8, 8, 12, 3), "same3x3"},
        ConvCase{ConvShape::same(2, 3, 10, 5), "same5x5"},
        ConvCase{ConvShape::same(3, 5, 12, 1), "pointwise"},
        ConvCase{ConvShape::same(4, 4, 12, 3, 2), "strided3x3"},
        ConvCase{ConvShape::valid_conv(1, 1, 5, 7, 2, 4), "asym_filter"},
        ConvCase{ConvShape::same(5, 2, 16, 7), "same7x7"}),
    [](const auto& info) { return info.param.label; });

TEST(Pointwise, MatchesReference1x1Conv) {
  Rng rng(107);
  const ConvShape shape = ConvShape::same(6, 4, 5, 1);
  const Tensor x = Tensor::random_uniform({6, 5, 5}, rng);
  Tensor u({6, 4});
  Tensor k({6, 4, 1, 1});
  for (std::int64_t c = 0; c < 6; ++c) {
    for (std::int64_t n = 0; n < 4; ++n) {
      const float v = static_cast<float>(rng.uniform(-1, 1));
      u(c, n) = v;
      k(c, n, 0, 0) = v;
    }
  }
  const Tensor via_pw = pointwise_conv(x, u);
  const Tensor via_ref = conv2d_reference(x, k, shape);
  EXPECT_LT(Tensor::rel_error(via_pw, via_ref), 1e-5);
}

TEST(Pointwise, ShapeChecks) {
  Tensor x({3, 4, 4});
  Tensor u({4, 2});
  EXPECT_THROW(pointwise_conv(x, u), Error);
}

TEST(TuckerConv, FullRankMatchesOriginalConvolution) {
  Rng rng(109);
  const ConvShape shape = ConvShape::same(8, 6, 10, 3);
  const Tensor x = Tensor::random_uniform({8, 10, 10}, rng);
  const Tensor k = Tensor::random_uniform({8, 6, 3, 3}, rng);
  const TuckerFactors f = tucker_decompose(k, {8, 6});
  const Tensor ref = conv2d_reference(x, k, shape);
  const Tensor out = tucker_conv(x, f, shape);
  EXPECT_LT(Tensor::rel_error(out, ref), 1e-3);
}

TEST(TuckerConv, EquivalentToConvWithReconstructedKernel) {
  // At *any* rank the pipeline must equal convolution with the reconstructed
  // (approximate) kernel — Eqs. (2)–(4) vs Eq. (1).
  Rng rng(111);
  const ConvShape shape = ConvShape::same(8, 8, 9, 3);
  const Tensor x = Tensor::random_uniform({8, 9, 9}, rng);
  const Tensor k = Tensor::random_uniform({8, 8, 3, 3}, rng);
  const TuckerFactors f = tucker_decompose(k, {3, 4});
  const Tensor approx_kernel = tucker_reconstruct(f);
  const Tensor via_pipeline = tucker_conv(x, f, shape);
  const Tensor via_kernel = conv2d_reference(x, approx_kernel, shape);
  EXPECT_LT(Tensor::rel_error(via_pipeline, via_kernel), 1e-3);
}

TEST(TuckerConv, CoreAlgoChoicesAgree) {
  Rng rng(113);
  const ConvShape shape = ConvShape::same(6, 6, 8, 3);
  const Tensor x = Tensor::random_uniform({6, 8, 8}, rng);
  const Tensor k = Tensor::random_uniform({6, 6, 3, 3}, rng);
  const TuckerFactors f = tucker_decompose(k, {4, 4});
  const Tensor a = tucker_conv(x, f, shape, ConvAlgo::kReference);
  const Tensor b = tucker_conv(x, f, shape, ConvAlgo::kIm2col);
  const Tensor c = tucker_conv(x, f, shape, ConvAlgo::kWinograd);
  const Tensor d = tucker_conv(x, f, shape, ConvAlgo::kFft);
  EXPECT_LT(Tensor::rel_error(b, a), 1e-4);
  EXPECT_LT(Tensor::rel_error(c, a), 1e-3);
  EXPECT_LT(Tensor::rel_error(d, a), 1e-4);
}

TEST(TuckerConv, StridedCore) {
  Rng rng(115);
  const ConvShape shape = ConvShape::same(8, 8, 12, 3, 2);
  const Tensor x = Tensor::random_uniform({8, 12, 12}, rng);
  const Tensor k = Tensor::random_uniform({8, 8, 3, 3}, rng);
  const TuckerFactors f = tucker_decompose(k, {8, 8});
  const Tensor ref = conv2d_reference(x, k, shape);
  const Tensor out = tucker_conv(x, f, shape);
  EXPECT_LT(Tensor::rel_error(out, ref), 1e-3);
}

TEST(ConvDispatch, UnsupportedThrows) {
  const ConvShape strided5 = ConvShape::same(2, 2, 8, 5, 2);
  Rng rng(117);
  const Tensor x = Tensor::random_uniform({2, 8, 8}, rng);
  const Tensor k = Tensor::random_uniform({2, 2, 5, 5}, rng);
  EXPECT_THROW(conv2d(ConvAlgo::kWinograd, x, k, strided5), Error);
  EXPECT_THROW(conv2d(ConvAlgo::kFft, x, k, strided5), Error);
  EXPECT_NO_THROW(conv2d(ConvAlgo::kIm2col, x, k, strided5));
}

TEST(ConvDispatch, AlgoNames) {
  EXPECT_STREQ(conv_algo_name(ConvAlgo::kIm2col), "im2col-gemm");
  EXPECT_STREQ(conv_algo_name(ConvAlgo::kWinograd), "winograd");
}

}  // namespace
}  // namespace tdc
