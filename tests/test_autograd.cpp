#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "autograd/batchnorm.h"
#include "autograd/conv2d.h"
#include "autograd/layer.h"
#include "autograd/layers.h"
#include "autograd/linear.h"
#include "autograd/loss.h"
#include "autograd/residual.h"
#include "common/check.h"

namespace tdc {
namespace {

// Scalar objective for gradient checking: L = Σ w ⊙ f(x) with fixed random
// weights w, so dL/d(out) = w.
struct Probe {
  Tensor weights;
  double eval(const Tensor& out) const {
    double acc = 0.0;
    for (std::int64_t i = 0; i < out.numel(); ++i) {
      acc += static_cast<double>(weights[i]) * out[i];
    }
    return acc;
  }
};

Probe make_probe(const Tensor& out, Rng& rng) {
  return Probe{Tensor::random_uniform(out.dims(), rng)};
}

// Central-difference check of dL/dx against the layer's backward.
void check_input_gradient(Layer* layer, const Tensor& x, double tol,
                          bool train = true) {
  Rng rng(991);
  Tensor x0 = x;
  const Tensor out = layer->forward(x0, train);
  const Probe probe = make_probe(out, rng);
  const Tensor grad_analytic = layer->backward(probe.weights);

  Rng pick(993);
  const double eps = 1e-3;
  for (int trial = 0; trial < 8; ++trial) {
    const auto i = static_cast<std::int64_t>(
        pick.uniform_index(static_cast<std::uint64_t>(x0.numel())));
    Tensor xp = x0, xm = x0;
    xp[i] += static_cast<float>(eps);
    xm[i] -= static_cast<float>(eps);
    const double lp = probe.eval(layer->forward(xp, train));
    const double lm = probe.eval(layer->forward(xm, train));
    const double numeric = (lp - lm) / (2.0 * eps);
    EXPECT_NEAR(grad_analytic[i], numeric, tol)
        << "input index " << i;
  }
}

// Central-difference check of dL/dθ for every parameter of the layer.
void check_param_gradients(Layer* layer, const Tensor& x, double tol,
                           bool train = true) {
  Rng rng(995);
  const Tensor out = layer->forward(x, train);
  const Probe probe = make_probe(out, rng);
  for (Param* p : layer->params()) {
    p->zero_grad();
  }
  layer->backward(probe.weights);

  Rng pick(997);
  const double eps = 1e-3;
  for (Param* p : layer->params()) {
    for (int trial = 0; trial < 4; ++trial) {
      const auto i = static_cast<std::int64_t>(
          pick.uniform_index(static_cast<std::uint64_t>(p->value.numel())));
      const float saved = p->value[i];
      p->value[i] = saved + static_cast<float>(eps);
      const double lp = probe.eval(layer->forward(x, train));
      p->value[i] = saved - static_cast<float>(eps);
      const double lm = probe.eval(layer->forward(x, train));
      p->value[i] = saved;
      const double numeric = (lp - lm) / (2.0 * eps);
      EXPECT_NEAR(p->grad[i], numeric, tol) << p->name << "[" << i << "]";
    }
  }
}

TEST(Conv2dGrad, InputGradientNumerical) {
  Rng rng(201);
  const ConvShape g = ConvShape::same(3, 4, 6, 3);
  Conv2d conv("c", g, rng);
  const Tensor x = Tensor::random_uniform({2, 3, 6, 6}, rng);
  check_input_gradient(&conv, x, 2e-2);
}

TEST(Conv2dGrad, ParamGradientsNumerical) {
  Rng rng(203);
  const ConvShape g = ConvShape::same(3, 4, 5, 3);
  Conv2d conv("c", g, rng);
  const Tensor x = Tensor::random_uniform({2, 3, 5, 5}, rng);
  check_param_gradients(&conv, x, 2e-2);
}

TEST(Conv2dGrad, StridedAndValid) {
  Rng rng(205);
  const ConvShape g = ConvShape::same(2, 3, 8, 3, 2);
  Conv2d conv("c", g, rng);
  const Tensor x = Tensor::random_uniform({1, 2, 8, 8}, rng);
  check_input_gradient(&conv, x, 2e-2);
  check_param_gradients(&conv, x, 2e-2);
}

TEST(Conv2d, ShapeValidation) {
  Rng rng(207);
  Conv2d conv("c", ConvShape::same(3, 4, 6, 3), rng);
  const Tensor wrong = Tensor::random_uniform({2, 4, 6, 6}, rng);
  EXPECT_THROW(conv.forward(wrong, true), Error);
}

TEST(LinearGrad, Numerical) {
  Rng rng(209);
  Linear fc("fc", 10, 7, rng);
  const Tensor x = Tensor::random_uniform({3, 10}, rng);
  check_input_gradient(&fc, x, 1e-2);
  check_param_gradients(&fc, x, 1e-2);
}

TEST(ReluGrad, Numerical) {
  Rng rng(211);
  ReLU relu;
  // Keep values away from the kink for finite differences.
  Tensor x = Tensor::random_uniform({2, 3, 4, 4}, rng);
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    if (std::abs(x[i]) < 0.05f) {
      x[i] = 0.2f;
    }
  }
  check_input_gradient(&relu, x, 1e-3);
}

TEST(MaxPoolGrad, Numerical) {
  Rng rng(213);
  MaxPool2x2 pool;
  const Tensor x = Tensor::random_uniform({2, 3, 6, 6}, rng);
  check_input_gradient(&pool, x, 1e-3);
}

TEST(MaxPool, ForwardSelectsMaxima) {
  Tensor x({1, 1, 2, 2});
  x[0] = 1.0f;
  x[1] = 5.0f;
  x[2] = -2.0f;
  x[3] = 0.0f;
  MaxPool2x2 pool;
  const Tensor y = pool.forward(x, true);
  EXPECT_FLOAT_EQ(y[0], 5.0f);
}

TEST(GlobalAvgPoolGrad, Numerical) {
  Rng rng(215);
  GlobalAvgPool gap;
  const Tensor x = Tensor::random_uniform({2, 5, 4, 4}, rng);
  check_input_gradient(&gap, x, 1e-3);
}

TEST(FlattenGrad, RoundTrip) {
  Rng rng(217);
  Flatten flat;
  const Tensor x = Tensor::random_uniform({2, 3, 4, 4}, rng);
  const Tensor y = flat.forward(x, true);
  EXPECT_EQ(y.dim(1), 48);
  const Tensor g = flat.backward(y);
  EXPECT_EQ(g.dims(), x.dims());
}

TEST(BatchNormGrad, InputNumerical) {
  Rng rng(219);
  BatchNorm2d bn("bn", 3);
  const Tensor x = Tensor::random_uniform({4, 3, 5, 5}, rng, -2.0f, 2.0f);
  check_input_gradient(&bn, x, 3e-2);
}

TEST(BatchNormGrad, ParamNumerical) {
  Rng rng(221);
  BatchNorm2d bn("bn", 3);
  const Tensor x = Tensor::random_uniform({4, 3, 5, 5}, rng, -2.0f, 2.0f);
  check_param_gradients(&bn, x, 3e-2);
}

TEST(BatchNorm, TrainModeNormalizes) {
  Rng rng(223);
  BatchNorm2d bn("bn", 2);
  const Tensor x = Tensor::random_uniform({8, 2, 6, 6}, rng, 3.0f, 7.0f);
  const Tensor y = bn.forward(x, /*train=*/true);
  // Per-channel mean ≈ 0, var ≈ 1.
  for (std::int64_t c = 0; c < 2; ++c) {
    double sum = 0.0, sq = 0.0;
    std::int64_t n = 0;
    for (std::int64_t b = 0; b < 8; ++b) {
      for (std::int64_t i = 0; i < 36; ++i) {
        const float v = y[(b * 2 + c) * 36 + i];
        sum += v;
        sq += static_cast<double>(v) * v;
        ++n;
      }
    }
    EXPECT_NEAR(sum / n, 0.0, 1e-4);
    EXPECT_NEAR(sq / n, 1.0, 1e-2);
  }
}

TEST(BatchNorm, EvalModeUsesRunningStats) {
  Rng rng(225);
  BatchNorm2d bn("bn", 2);
  const Tensor x = Tensor::random_uniform({8, 2, 4, 4}, rng, 1.0f, 2.0f);
  for (int i = 0; i < 80; ++i) {
    bn.forward(x, /*train=*/true);
  }
  const Tensor y = bn.forward(x, /*train=*/false);
  // With momentum 0.1, 80 identical batches converge the running stats to
  // the batch stats within (0.9)^80 ≈ 2e-4; eval output is then normalized.
  double sum = 0.0;
  for (std::int64_t i = 0; i < y.numel(); ++i) {
    sum += y[i];
  }
  EXPECT_NEAR(sum / static_cast<double>(y.numel()), 0.0, 0.05);
}

TEST(ResidualGrad, IdentityShortcutNumerical) {
  Rng rng(227);
  auto main = std::make_unique<Sequential>("main");
  main->add(std::make_unique<Conv2d>("c1", ConvShape::same(3, 3, 5, 3), rng));
  ResidualBlock block("res", std::move(main), nullptr);
  const Tensor x = Tensor::random_uniform({2, 3, 5, 5}, rng);
  check_input_gradient(&block, x, 2e-2);
  check_param_gradients(&block, x, 2e-2);
}

TEST(ResidualGrad, ProjectionShortcutNumerical) {
  Rng rng(229);
  auto main = std::make_unique<Sequential>("main");
  main->add(std::make_unique<Conv2d>("c1", ConvShape::same(2, 4, 6, 3, 2), rng));
  auto shortcut = std::make_unique<Sequential>("sc");
  shortcut->add(
      std::make_unique<Conv2d>("p", ConvShape::same(2, 4, 6, 1, 2), rng));
  ResidualBlock block("res", std::move(main), std::move(shortcut));
  const Tensor x = Tensor::random_uniform({2, 2, 6, 6}, rng);
  check_input_gradient(&block, x, 2e-2);
}

TEST(Residual, MismatchedPathsThrow) {
  Rng rng(231);
  auto main = std::make_unique<Sequential>("main");
  main->add(std::make_unique<Conv2d>("c1", ConvShape::same(3, 5, 6, 3), rng));
  ResidualBlock block("res", std::move(main), nullptr);
  const Tensor x = Tensor::random_uniform({1, 3, 6, 6}, rng);
  EXPECT_THROW(block.forward(x, true), Error);  // 5 channels vs 3
}

TEST(SoftmaxCe, LossOfPerfectPrediction) {
  Tensor logits({2, 3});
  logits(0, 1) = 100.0f;
  logits(1, 2) = 100.0f;
  const LossResult r = softmax_cross_entropy(logits, {1, 2});
  EXPECT_NEAR(r.loss, 0.0, 1e-6);
  EXPECT_EQ(r.correct, 2);
}

TEST(SoftmaxCe, UniformLogitsGiveLogK) {
  Tensor logits({1, 10});
  const LossResult r = softmax_cross_entropy(logits, {3});
  EXPECT_NEAR(r.loss, std::log(10.0), 1e-6);
}

TEST(SoftmaxCe, GradientNumerical) {
  Rng rng(233);
  Tensor logits = Tensor::random_uniform({3, 5}, rng);
  const std::vector<std::int64_t> labels = {0, 2, 4};
  const LossResult r = softmax_cross_entropy(logits, labels);
  const double eps = 1e-3;
  for (std::int64_t i = 0; i < logits.numel(); ++i) {
    Tensor lp = logits, lm = logits;
    lp[i] += static_cast<float>(eps);
    lm[i] -= static_cast<float>(eps);
    const double numeric = (softmax_cross_entropy(lp, labels).loss -
                            softmax_cross_entropy(lm, labels).loss) /
                           (2.0 * eps);
    EXPECT_NEAR(r.grad[i], numeric, 1e-4);
  }
}

TEST(SoftmaxCe, LabelValidation) {
  Tensor logits({1, 3});
  EXPECT_THROW(softmax_cross_entropy(logits, {3}), Error);
  EXPECT_THROW(softmax_cross_entropy(logits, {0, 1}), Error);
}

TEST(Sequential, ComposesAndExposesParams) {
  Rng rng(235);
  Sequential seq("net");
  seq.add(std::make_unique<Conv2d>("c", ConvShape::same(2, 3, 4, 3), rng));
  seq.add(std::make_unique<ReLU>());
  seq.add(std::make_unique<GlobalAvgPool>());
  seq.add(std::make_unique<Linear>("fc", 3, 2, rng));
  const Tensor x = Tensor::random_uniform({2, 2, 4, 4}, rng);
  const Tensor y = seq.forward(x, true);
  EXPECT_EQ(y.dim(0), 2);
  EXPECT_EQ(y.dim(1), 2);
  EXPECT_EQ(seq.params().size(), 4u);  // conv kernel+bias, fc weight+bias
  check_input_gradient(&seq, x, 2e-2);
}

}  // namespace
}  // namespace tdc
