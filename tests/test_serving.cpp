// Tests for the serving layer (serving/inference_server.h): the replica
// fleet plus request coalescer against a serial one-session oracle —
// multi-client bitwise parity, zero pool degradation within the arena
// bound, typed overload rejection, deadline expiry (queued and mid-run)
// leaving replicas reusable, and the PlanCache single-flight compile the
// fleet cold-start depends on.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/check.h"
#include "common/fault.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "exec/plan_cache.h"
#include "nn/models.h"
#include "serving/inference_server.h"

namespace tdc {
namespace {

// Restores runtime knobs and disarms fault points between tests.
class ServingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_threads_ = num_threads();
    saved_arenas_ = arena_config();
    fault_disarm_all();
  }
  void TearDown() override {
    fault_disarm_all();
    set_num_threads(saved_threads_);
    set_arena_config(saved_arenas_);
  }
  int saved_threads_ = 1;
  ArenaConfig saved_arenas_;
};

// A small conv chain: fast enough for multi-client stress on one core,
// deep enough that deadline polls hit several op boundaries.
ModelSpec make_tiny_model() {
  ModelSpec model;
  model.name = "serving-tiny";
  model.layers.push_back(
      LayerSpec::make_conv("conv0", ConvShape::same(3, 6, 12, 3)));
  model.layers.push_back(
      LayerSpec::make_conv("conv1", ConvShape::same(6, 6, 12, 3)));
  model.layers.push_back(LayerSpec::make_elementwise("relu", 6.0 * 12 * 12));
  model.layers.push_back(
      LayerSpec::make_conv("conv2", ConvShape::same(6, 4, 12, 3)));
  return model;
}

SessionOptions deterministic_session() {
  SessionOptions s;
  s.dense_algo = ConvAlgo::kIm2col;  // pinned: no cost-provider variance
  return s;
}

TEST_F(ServingTest, SingleRequestMatchesSessionBitwise) {
  const ModelSpec model = make_tiny_model();
  const auto weights = random_model_weights(model, 901);
  ServerOptions options;
  options.replicas = 2;
  options.session = deterministic_session();
  InferenceServer server = InferenceServer::compile(make_a100(), model,
                                                    weights, {}, options);
  const InferenceSession oracle = InferenceSession::compile(
      make_a100(), model, weights, {}, options.session);

  Rng rng(902);
  const OpShape& in = server.input_shape();
  const Tensor x = Tensor::random_uniform({in.c, in.h, in.w}, rng);
  const Tensor got = server.infer(x);
  const Tensor want = oracle.run(x);
  EXPECT_EQ(Tensor::max_abs_diff(got, want), 0.0);

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.accepted, 1);
  EXPECT_EQ(stats.completed, 1);
  EXPECT_EQ(stats.rejected_overload, 0);
}

TEST_F(ServingTest, InvalidGeometryIsTypedAndNotCounted) {
  const ModelSpec model = make_tiny_model();
  const auto weights = random_model_weights(model, 903);
  ServerOptions options;
  options.replicas = 1;
  options.session = deterministic_session();
  InferenceServer server = InferenceServer::compile(make_a100(), model,
                                                    weights, {}, options);
  Tensor bad({2, 2, 2});
  Tensor y({server.output_shape().c, server.output_shape().h,
            server.output_shape().w});
  try {
    server.infer(bad, &y);
    FAIL() << "expected kInvalidArgument";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInvalidArgument);
  }
  EXPECT_EQ(server.stats().accepted, 0);
}

TEST_F(ServingTest, MultiClientStressMatchesSerialOracleBitwise) {
  set_num_threads(4);
  set_arena_config(ArenaConfig{});  // full arena width
  const ModelSpec model = make_tiny_model();
  const auto weights = random_model_weights(model, 904);
  ServerOptions options;
  options.replicas = 4;
  options.coalescer.max_batch = 4;
  options.coalescer.max_delay_s = 0.001;
  options.session = deterministic_session();
  InferenceServer server = InferenceServer::compile(make_a100(), model,
                                                    weights, {}, options);
  const InferenceSession oracle = InferenceSession::compile(
      make_a100(), model, weights, {}, options.session);

  constexpr int kClients = 4;
  constexpr int kRequests = 8;
  const OpShape& in = server.input_shape();
  const OpShape& out = server.output_shape();

  // Distinct inputs per (client, request), and the serial oracle answers
  // computed up front on this thread.
  std::vector<std::vector<Tensor>> xs(kClients);
  std::vector<std::vector<Tensor>> want(kClients);
  for (int c = 0; c < kClients; ++c) {
    for (int r = 0; r < kRequests; ++r) {
      Rng rng(static_cast<std::uint64_t>(1000 + c * 100 + r));
      xs[static_cast<std::size_t>(c)].push_back(
          Tensor::random_uniform({in.c, in.h, in.w}, rng));
      want[static_cast<std::size_t>(c)].push_back(
          oracle.run(xs[static_cast<std::size_t>(c)].back()));
    }
  }

  const std::int64_t fallbacks_before = parallel_stats().serial_fallbacks;
  std::vector<std::vector<Tensor>> got(kClients);
  for (int c = 0; c < kClients; ++c) {
    for (int r = 0; r < kRequests; ++r) {
      got[static_cast<std::size_t>(c)].emplace_back(
          std::vector<std::int64_t>{out.c, out.h, out.w});
    }
  }
  {
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        for (int r = 0; r < kRequests; ++r) {
          server.infer(xs[static_cast<std::size_t>(c)]
                         [static_cast<std::size_t>(r)],
                       &got[static_cast<std::size_t>(c)]
                           [static_cast<std::size_t>(r)]);
        }
      });
    }
    for (std::thread& t : clients) {
      t.join();
    }
  }

  for (int c = 0; c < kClients; ++c) {
    for (int r = 0; r < kRequests; ++r) {
      ASSERT_EQ(Tensor::max_abs_diff(
                    got[static_cast<std::size_t>(c)]
                       [static_cast<std::size_t>(r)],
                    want[static_cast<std::size_t>(c)]
                        [static_cast<std::size_t>(r)]),
                0.0)
          << "client " << c << " request " << r;
    }
  }

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.accepted, kClients * kRequests);
  EXPECT_EQ(stats.completed, kClients * kRequests);
  EXPECT_EQ(stats.failed, 0);
  EXPECT_EQ(stats.rejected_overload, 0);
  // Every dispatch is accounted as a solo run or a coalesced batch member.
  EXPECT_EQ(stats.solo_runs + stats.coalesced_images,
            kClients * kRequests);
  // The regression the task arenas fix: concurrent serving within the
  // arena bound must never degrade a region to inline execution.
  EXPECT_EQ(parallel_stats().serial_fallbacks - fallbacks_before, 0);
}

TEST_F(ServingTest, CoalescerBatchesConcurrentArrivals) {
  const ModelSpec model = make_tiny_model();
  const auto weights = random_model_weights(model, 905);
  ServerOptions options;
  options.replicas = 1;  // one replica forces arrivals to share it
  options.coalescer.max_batch = 4;
  options.coalescer.max_delay_s = 0.050;  // generous SLO window for CI
  options.session = deterministic_session();
  InferenceServer server = InferenceServer::compile(make_a100(), model,
                                                    weights, {}, options);
  const InferenceSession oracle = InferenceSession::compile(
      make_a100(), model, weights, {}, options.session);

  constexpr int kClients = 4;
  const OpShape& in = server.input_shape();
  const OpShape& out = server.output_shape();
  std::vector<Tensor> xs;
  std::vector<Tensor> want;
  std::vector<Tensor> got;
  for (int c = 0; c < kClients; ++c) {
    Rng rng(static_cast<std::uint64_t>(1100 + c));
    xs.push_back(Tensor::random_uniform({in.c, in.h, in.w}, rng));
    want.push_back(oracle.run(xs.back()));
    got.emplace_back(std::vector<std::int64_t>{out.c, out.h, out.w});
  }

  {
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        server.infer(xs[static_cast<std::size_t>(c)],
                     &got[static_cast<std::size_t>(c)]);
      });
    }
    for (std::thread& t : clients) {
      t.join();
    }
  }

  for (int c = 0; c < kClients; ++c) {
    ASSERT_EQ(Tensor::max_abs_diff(got[static_cast<std::size_t>(c)],
                                   want[static_cast<std::size_t>(c)]),
              0.0)
        << "client " << c;
  }
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.completed, kClients);
  // With one replica, a 50 ms window and four near-simultaneous arrivals,
  // at least one dispatch must have coalesced (the first may run solo).
  EXPECT_GE(stats.batches, 1);
  EXPECT_GE(stats.coalesced_images, 2);
}

TEST_F(ServingTest, DeadlineMidRunIsTypedAndReplicaStaysReusable) {
  const ModelSpec model = make_tiny_model();
  const auto weights = random_model_weights(model, 906);
  ServerOptions options;
  options.replicas = 1;
  options.coalescer.max_batch = 1;
  options.session = deterministic_session();
  InferenceServer server = InferenceServer::compile(make_a100(), model,
                                                    weights, {}, options);
  const InferenceSession oracle = InferenceSession::compile(
      make_a100(), model, weights, {}, options.session);

  Rng rng(907);
  const OpShape& in = server.input_shape();
  const Tensor x = Tensor::random_uniform({in.c, in.h, in.w}, rng);
  Tensor y({server.output_shape().c, server.output_shape().h,
            server.output_shape().w});

  // Every op boundary sleeps 20 ms; a 1 ms budget dies mid-run.
  fault_arm("exec.op_delay", FaultSpec{.count = -1, .param = 20.0});
  try {
    server.infer(x, &y, Deadline::after(0.001));
    FAIL() << "expected kDeadlineExceeded";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kDeadlineExceeded);
  }
  fault_disarm_all();

  // The failure left the replica reusable: the next request completes and
  // is bit-identical to a never-faulted session.
  server.infer(x, &y);
  EXPECT_EQ(Tensor::max_abs_diff(y, oracle.run(x)), 0.0);
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.failed, 1);
  EXPECT_EQ(stats.completed, 1);
}

TEST_F(ServingTest, QueueExpiryIsTypedAndReplicaStaysReusable) {
  const ModelSpec model = make_tiny_model();
  const auto weights = random_model_weights(model, 908);
  ServerOptions options;
  options.replicas = 1;
  options.coalescer.max_batch = 1;
  options.session = deterministic_session();
  InferenceServer server = InferenceServer::compile(make_a100(), model,
                                                    weights, {}, options);

  Rng rng(909);
  const OpShape& in = server.input_shape();
  const OpShape& out = server.output_shape();
  const Tensor x = Tensor::random_uniform({in.c, in.h, in.w}, rng);

  // Hold the replica busy: every op boundary sleeps 30 ms, so the holder
  // occupies the fleet for >= 120 ms once its first boundary fires.
  fault_arm("exec.op_delay", FaultSpec{.count = -1, .param = 30.0});
  std::thread holder([&] {
    Tensor y({out.c, out.h, out.w});
    server.infer(x, &y);  // unbounded budget: finishes despite the delays
  });
  // Handshake, not a sleep: the first fault firing proves the holder is
  // mid-run with the replica claimed.
  while (fault_fire_count("exec.op_delay") < 1) {
    std::this_thread::yield();
  }

  // A 5 ms budget dies in the queue long before the replica frees.
  Tensor y({out.c, out.h, out.w});
  try {
    server.infer(x, &y, Deadline::after(0.005));
    FAIL() << "expected kDeadlineExceeded";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kDeadlineExceeded);
  }

  holder.join();
  fault_disarm_all();
  EXPECT_EQ(server.stats().expired_in_queue, 1);

  // Expiry while queued never touched a replica; the fleet serves on.
  server.infer(x, &y);
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.completed, 2);  // holder + post-check
  EXPECT_EQ(stats.failed, 1);
}

TEST_F(ServingTest, OverloadRejectsWithResourceExhausted) {
  const ModelSpec model = make_tiny_model();
  const auto weights = random_model_weights(model, 913);
  ServerOptions options;
  options.replicas = 1;
  options.max_pending = 1;
  options.coalescer.max_batch = 1;
  options.session = deterministic_session();
  InferenceServer server = InferenceServer::compile(make_a100(), model,
                                                    weights, {}, options);

  Rng rng(914);
  const OpShape& in = server.input_shape();
  const OpShape& out = server.output_shape();
  const Tensor x = Tensor::random_uniform({in.c, in.h, in.w}, rng);

  fault_arm("exec.op_delay", FaultSpec{.count = -1, .param = 30.0});
  std::thread holder([&] {
    Tensor y({out.c, out.h, out.w});
    server.infer(x, &y);
  });
  while (fault_fire_count("exec.op_delay") < 1) {
    std::this_thread::yield();
  }
  // Fill the one pending slot; the waiter is admission #2 (the holder was
  // #1), so accepted reaching 2 proves it is queued before the probe fires.
  std::thread waiter([&] {
    Tensor y({out.c, out.h, out.w});
    server.infer(x, &y);
  });
  while (server.stats().accepted < 2) {
    std::this_thread::yield();
  }

  try {
    Tensor y({out.c, out.h, out.w});
    server.infer(x, &y);
    FAIL() << "expected kResourceExhausted";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kResourceExhausted);
  }

  holder.join();
  waiter.join();
  fault_disarm_all();

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.rejected_overload, 1);
  EXPECT_EQ(stats.completed, 2);  // holder and waiter both finished
  EXPECT_EQ(stats.failed, 0);
}

TEST_F(ServingTest, PlanCacheSingleFlightCompilesOnceUnderContention) {
  // The thundering-herd regression: N concurrent same-key callers must
  // produce exactly one compile (one miss) and share one artifact.
  PlanCache& cache = PlanCache::instance();
  cache.clear();

  Rng rng(910);
  const ConvShape shape = ConvShape::same(8, 8, 24, 3);
  const Tensor kernel =
      Tensor::random_uniform({shape.c, shape.n, shape.r, shape.s}, rng);
  ConvDescriptor desc;
  desc.shape = shape;
  desc.algo = ConvAlgo::kIm2col;

  constexpr int kCallers = 8;
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::shared_ptr<const ConvPlan>> plans(kCallers);
  {
    std::vector<std::thread> callers;
    for (int t = 0; t < kCallers; ++t) {
      callers.emplace_back([&, t] {
        ready.fetch_add(1);
        while (!go.load(std::memory_order_acquire)) {
        }
        plans[static_cast<std::size_t>(t)] =
            cache.get_or_compile(desc, kernel);
      });
    }
    while (ready.load() < kCallers) {
    }
    go.store(true, std::memory_order_release);
    for (std::thread& t : callers) {
      t.join();
    }
  }

  const PlanCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1) << "single-flight must compile once";
  EXPECT_EQ(stats.hits, kCallers - 1);
  EXPECT_EQ(stats.entries, 1);
  for (int t = 1; t < kCallers; ++t) {
    EXPECT_EQ(plans[static_cast<std::size_t>(t)], plans[0])
        << "caller " << t << " got a different artifact";
  }
  cache.clear();
}

TEST_F(ServingTest, BatchedFanOutTracksRuntimeThreadCount) {
  // The frozen fan-out regression: a session compiled under one thread must
  // fan a batched run out across the *caller's* concurrency, and its
  // batched workspace quote must grow with it.
  set_num_threads(1);
  const ModelSpec model = make_tiny_model();
  const auto weights = random_model_weights(model, 911);
  const InferenceSession session = InferenceSession::compile(
      make_a100(), model, weights, {}, deterministic_session());
  constexpr std::int64_t kBatch = 4;
  const std::int64_t narrow = session.batched_workspace_bytes(kBatch);
  EXPECT_EQ(narrow, session.workspace_bytes());  // one slot at one thread

  set_num_threads(4);
  const std::int64_t wide = session.batched_workspace_bytes(kBatch);
  EXPECT_EQ(wide, 4 * session.workspace_bytes());

  // Runs sized either way are correct: the narrow workspace clamps the
  // fan-out, the wide one uses it — both bit-identical to per-image runs.
  Rng rng(912);
  const OpShape& in = session.input_shape();
  const OpShape& out = session.output_shape();
  const Tensor x =
      Tensor::random_uniform({kBatch, in.c, in.h, in.w}, rng);
  Tensor y_wide({kBatch, out.c, out.h, out.w});
  std::vector<float> ws_wide(
      static_cast<std::size_t>(wide / sizeof(float)));
  session.run_batched(x, &y_wide, ws_wide);

  Tensor y_narrow({kBatch, out.c, out.h, out.w});
  std::vector<float> ws_narrow(
      static_cast<std::size_t>(narrow / sizeof(float)));
  session.run_batched(x, &y_narrow, ws_narrow);
  EXPECT_EQ(Tensor::max_abs_diff(y_wide, y_narrow), 0.0);

  const std::int64_t x_stride = in.floats();
  const std::int64_t y_stride = out.floats();
  for (std::int64_t b = 0; b < kBatch; ++b) {
    Tensor xb({in.c, in.h, in.w});
    std::copy(x.raw() + b * x_stride, x.raw() + (b + 1) * x_stride,
              xb.raw());
    const Tensor yb = session.run(xb);
    for (std::int64_t i = 0; i < y_stride; ++i) {
      ASSERT_EQ(y_wide[b * y_stride + i], yb[i]) << "image " << b;
    }
  }
}

}  // namespace
}  // namespace tdc
