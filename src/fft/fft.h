// Iterative radix-2 Cooley–Tukey FFT and 2-D helpers.
//
// This is the substrate behind the cuDNN-FFT baseline: convolution in the
// frequency domain (transform input channels and kernels once, multiply-
// accumulate per output channel, inverse-transform). Sizes are padded to the
// next power of two, mirroring what FFT convolution libraries do and which is
// exactly why the FFT path carries a large overhead on small images.
#pragma once

#include <complex>
#include <cstdint>
#include <vector>

namespace tdc {

/// In-place FFT of a power-of-two-length complex signal.
/// `inverse` applies the conjugate transform and the 1/n scaling.
void fft_inplace(std::vector<std::complex<double>>& x, bool inverse);

/// Next power of two >= n (n >= 1).
std::int64_t next_pow2(std::int64_t n);

/// 2-D FFT over a row-major [rows, cols] complex buffer; rows and cols must
/// be powers of two.
void fft2d_inplace(std::vector<std::complex<double>>& x, std::int64_t rows,
                   std::int64_t cols, bool inverse);

/// Single-precision variants over raw buffers, used by the FFT convolution
/// plan: they run on caller-provided workspace memory (a std::complex<float>
/// view of a float span) instead of allocating, and keep the whole conv
/// pipeline in the engine's FP32. Twiddle factors are still generated in
/// double so the float path loses no accuracy to twiddle drift.
void fft_inplace(std::complex<float>* x, std::int64_t n, bool inverse);
void fft2d_inplace(std::complex<float>* x, std::int64_t rows,
                   std::int64_t cols, bool inverse);

}  // namespace tdc
