#include "fft/fft.h"

#include <cmath>
#include <numbers>

#include "common/check.h"

namespace tdc {

namespace {

bool is_pow2(std::int64_t n) { return n >= 1 && (n & (n - 1)) == 0; }

}  // namespace

std::int64_t next_pow2(std::int64_t n) {
  TDC_CHECK(n >= 1);
  std::int64_t p = 1;
  while (p < n) {
    p <<= 1;
  }
  return p;
}

void fft_inplace(std::vector<std::complex<double>>& x, bool inverse) {
  const std::int64_t n = static_cast<std::int64_t>(x.size());
  TDC_CHECK_MSG(is_pow2(n), "fft length must be a power of two");
  if (n == 1) {
    return;
  }

  // Bit-reversal permutation.
  for (std::int64_t i = 1, j = 0; i < n; ++i) {
    std::int64_t bit = n >> 1;
    for (; j & bit; bit >>= 1) {
      j ^= bit;
    }
    j ^= bit;
    if (i < j) {
      std::swap(x[static_cast<std::size_t>(i)], x[static_cast<std::size_t>(j)]);
    }
  }

  for (std::int64_t len = 2; len <= n; len <<= 1) {
    const double angle =
        (inverse ? 2.0 : -2.0) * std::numbers::pi / static_cast<double>(len);
    const std::complex<double> wlen(std::cos(angle), std::sin(angle));
    for (std::int64_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (std::int64_t j = 0; j < len / 2; ++j) {
        const auto u = x[static_cast<std::size_t>(i + j)];
        const auto v = x[static_cast<std::size_t>(i + j + len / 2)] * w;
        x[static_cast<std::size_t>(i + j)] = u + v;
        x[static_cast<std::size_t>(i + j + len / 2)] = u - v;
        w *= wlen;
      }
    }
  }

  if (inverse) {
    const double inv_n = 1.0 / static_cast<double>(n);
    for (auto& v : x) {
      v *= inv_n;
    }
  }
}

void fft2d_inplace(std::vector<std::complex<double>>& x, std::int64_t rows,
                   std::int64_t cols, bool inverse) {
  TDC_CHECK(static_cast<std::int64_t>(x.size()) == rows * cols);
  TDC_CHECK_MSG(is_pow2(rows) && is_pow2(cols),
                "fft2d dims must be powers of two");

  // Transform rows.
  std::vector<std::complex<double>> buf(static_cast<std::size_t>(cols));
  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int64_t c = 0; c < cols; ++c) {
      buf[static_cast<std::size_t>(c)] = x[static_cast<std::size_t>(r * cols + c)];
    }
    fft_inplace(buf, inverse);
    for (std::int64_t c = 0; c < cols; ++c) {
      x[static_cast<std::size_t>(r * cols + c)] = buf[static_cast<std::size_t>(c)];
    }
  }

  // Transform columns.
  buf.assign(static_cast<std::size_t>(rows), {});
  for (std::int64_t c = 0; c < cols; ++c) {
    for (std::int64_t r = 0; r < rows; ++r) {
      buf[static_cast<std::size_t>(r)] = x[static_cast<std::size_t>(r * cols + c)];
    }
    fft_inplace(buf, inverse);
    for (std::int64_t r = 0; r < rows; ++r) {
      x[static_cast<std::size_t>(r * cols + c)] = buf[static_cast<std::size_t>(r)];
    }
  }
}

}  // namespace tdc
