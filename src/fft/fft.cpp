#include "fft/fft.h"

#include <cmath>
#include <numbers>

#include "common/alloc_guard.h"
#include "common/check.h"

namespace tdc {

namespace {

bool is_pow2(std::int64_t n) { return n >= 1 && (n & (n - 1)) == 0; }

// Shared radix-2 core over either precision. The twiddle recurrence runs in
// double regardless of T so the float transform only pays single precision
// in the butterflies, not in accumulated twiddle drift.
template <class T>
void fft_core(std::complex<T>* x, std::int64_t n, bool inverse) {
  TDC_CHECK_MSG(is_pow2(n), "fft length must be a power of two");
  if (n == 1) {
    return;
  }

  // Bit-reversal permutation.
  for (std::int64_t i = 1, j = 0; i < n; ++i) {
    std::int64_t bit = n >> 1;
    for (; j & bit; bit >>= 1) {
      j ^= bit;
    }
    j ^= bit;
    if (i < j) {
      std::swap(x[i], x[j]);
    }
  }

  for (std::int64_t len = 2; len <= n; len <<= 1) {
    const double angle =
        (inverse ? 2.0 : -2.0) * std::numbers::pi / static_cast<double>(len);
    const std::complex<double> wlen(std::cos(angle), std::sin(angle));
    for (std::int64_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (std::int64_t j = 0; j < len / 2; ++j) {
        const std::complex<T> wt(static_cast<T>(w.real()),
                                 static_cast<T>(w.imag()));
        const auto u = x[i + j];
        const auto v = x[i + j + len / 2] * wt;
        x[i + j] = u + v;
        x[i + j + len / 2] = u - v;
        w *= wlen;
      }
    }
  }

  if (inverse) {
    const T inv_n = static_cast<T>(1.0 / static_cast<double>(n));
    for (std::int64_t i = 0; i < n; ++i) {
      x[i] *= inv_n;
    }
  }
}

template <class T>
void fft2d_core(std::complex<T>* x, std::int64_t rows, std::int64_t cols,
                bool inverse) {
  TDC_CHECK_MSG(is_pow2(rows) && is_pow2(cols),
                "fft2d dims must be powers of two");

  // Transform rows (contiguous, in place).
  for (std::int64_t r = 0; r < rows; ++r) {
    fft_core(x + r * cols, cols, inverse);
  }

  // Transform columns through a gather/scatter buffer. Thread-local with
  // grow-only capacity: after first-touch warm-up the FFT plan's run path
  // performs no heap allocation (the run-path DenyAllocGuard invariant).
  thread_local std::vector<std::complex<T>> buf;
  {
    AllowAllocScope warmup;
    // Grow-only warm-up of the thread-local column buffer.
    buf.resize(static_cast<std::size_t>(rows));  // tdc-lint: allow(run-path-alloc)
  }
  for (std::int64_t c = 0; c < cols; ++c) {
    for (std::int64_t r = 0; r < rows; ++r) {
      buf[static_cast<std::size_t>(r)] = x[r * cols + c];
    }
    fft_core(buf.data(), rows, inverse);
    for (std::int64_t r = 0; r < rows; ++r) {
      x[r * cols + c] = buf[static_cast<std::size_t>(r)];
    }
  }
}

}  // namespace

std::int64_t next_pow2(std::int64_t n) {
  TDC_CHECK(n >= 1);
  std::int64_t p = 1;
  while (p < n) {
    p <<= 1;
  }
  return p;
}

void fft_inplace(std::vector<std::complex<double>>& x, bool inverse) {
  fft_core(x.data(), static_cast<std::int64_t>(x.size()), inverse);
}

void fft2d_inplace(std::vector<std::complex<double>>& x, std::int64_t rows,
                   std::int64_t cols, bool inverse) {
  TDC_CHECK(static_cast<std::int64_t>(x.size()) == rows * cols);
  fft2d_core(x.data(), rows, cols, inverse);
}

void fft_inplace(std::complex<float>* x, std::int64_t n, bool inverse) {
  fft_core(x, n, inverse);
}

void fft2d_inplace(std::complex<float>* x, std::int64_t rows,
                   std::int64_t cols, bool inverse) {
  fft2d_core(x, rows, cols, inverse);
}

}  // namespace tdc
