#include "exec/host_cost.h"

#include <cmath>
#include <cstdio>
#include <limits>

#include "common/check.h"
#include "exec/microbench.h"
#include "fft/fft.h"

namespace tdc {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Scalar-loop stages — the Winograd tile transforms, FFT butterflies and
// the frequency-domain multiply-accumulate — run far off the packed GEMM
// rate: they are gather/scatter loops the compiler cannot keep on the FMA
// pipes. Measured against this repo's functional kernels the gap is a few
// tens of ×; 48 keeps the model conservative about transform-heavy
// algorithms on layers with many tiles (large planes, few channels), which
// is exactly where the real Winograd path loses to im2col.
constexpr double kScalarStagePenalty = 48.0;

// The CPU executor of the TDC core kernel is a functional *emulator* of the
// GPU scheme — a per-thread interpreter over the shared-memory staging loop,
// measured ~150–250× slower per MAC than the packed GEMM on ResNet-18
// shapes. It validates codegen and tilings; it is not a deployment kernel,
// and this penalty keeps it priced out of every dense selection.
constexpr double kTdcEmulatorPenalty = 256.0;

double im2col_cost_s(const ConvShape& s, double gemm_rate, double byte_rate) {
  const double ohw = static_cast<double>(s.out_h()) * s.out_w();
  const double crs = static_cast<double>(s.c) * s.r * s.s;
  const double gemm_flops = 2.0 * s.n * crs * ohw;
  // Unit-stride unpadded 1×1 plans run the GEMM on the input in place
  // (pointwise_conv_prepacked) — no patch matrix at all.
  const bool in_place = s.r == 1 && s.s == 1 && s.stride_h == 1 &&
                        s.stride_w == 1 && s.pad_h == 0 && s.pad_w == 0;
  const double patch = in_place ? 0.0 : crs * ohw;
  const double bytes =
      4.0 * (2.0 * patch + static_cast<double>(s.c) * s.h * s.w + s.n * ohw);
  return gemm_flops / gemm_rate + bytes / byte_rate;
}

double winograd_cost_s(const ConvShape& s, double gemm_rate,
                       double byte_rate) {
  // F(2×2, 3×3): 4×4 input tiles, 16 transform-domain GEMMs of
  // [N, C] × [C, tiles], 2×2 output tiles (exec/plan_winograd.cpp).
  const double tiles = static_cast<double>((s.out_h() + 1) / 2) *
                       static_cast<double>((s.out_w() + 1) / 2);
  const double gemm_flops = 2.0 * 16.0 * s.n * s.c * tiles;
  // Per tile: ~64 adds for B^T d B per input channel, ~40 for A^T m A per
  // output channel — scalar loops, priced at the penalized rate.
  const double scalar_flops = tiles * (64.0 * s.c + 40.0 * s.n);
  const double bytes =
      4.0 * (static_cast<double>(s.c) * s.h * s.w +
             static_cast<double>(s.n) * s.out_h() * s.out_w() +
             2.0 * 16.0 * tiles * (static_cast<double>(s.c) + s.n));
  return gemm_flops / gemm_rate +
         scalar_flops * kScalarStagePenalty / gemm_rate + bytes / byte_rate;
}

double fft_cost_s(const ConvShape& s, double gemm_rate, double byte_rate) {
  // Padded-plane spectra (exec/plan_fft.cpp): C forward transforms, the
  // C·N frequency-domain multiply-accumulates against precomputed filter
  // spectra, N inverse transforms. The C·N spectra read is the killer term
  // on CPU: every image re-streams the whole transformed filter bank.
  const double fh = static_cast<double>(next_pow2(s.h + 2 * s.pad_h));
  const double fw = static_cast<double>(next_pow2(s.w + 2 * s.pad_w));
  const double plane = fh * fw;
  const double cn = static_cast<double>(s.c) * s.n;
  const double fft_flops =
      (static_cast<double>(s.c) + s.n) * 10.0 * plane * std::log2(plane);
  const double cmac_flops = 8.0 * cn * plane;
  const double bytes = 8.0 * plane * (cn + 2.0 * s.c + 2.0 * s.n) +
                       4.0 * (static_cast<double>(s.c) * s.h * s.w +
                              static_cast<double>(s.n) * s.out_h() * s.out_w());
  return (fft_flops + cmac_flops) * kScalarStagePenalty / gemm_rate +
         bytes / byte_rate;
}

}  // namespace

double host_conv_cost_s(ConvAlgo algo, const ConvShape& shape) {
  TDC_CHECK_MSG(shape.valid(), "invalid shape " + shape.to_string());
  if (algo == ConvAlgo::kReference || algo == ConvAlgo::kAuto ||
      !conv_algo_supports(algo, shape)) {
    return kInf;
  }
  const bool pointwise = shape.r == 1 && shape.s == 1;
  if (pointwise && (algo == ConvAlgo::kWinograd || algo == ConvAlgo::kFft)) {
    return kInf;
  }
  const HostCalibration cal = host_calibration();
  const double gemm_rate = cal.gflops * 1e9;
  const double byte_rate = cal.gbs * 1e9;
  double per_image = 0.0;
  switch (algo) {
    case ConvAlgo::kIm2col:
      per_image = im2col_cost_s(shape, gemm_rate, byte_rate);
      break;
    case ConvAlgo::kWinograd:
      per_image = winograd_cost_s(shape, gemm_rate, byte_rate);
      break;
    case ConvAlgo::kFft:
      per_image = fft_cost_s(shape, gemm_rate, byte_rate);
      break;
    case ConvAlgo::kTdcCore:
      per_image = shape.flops() / static_cast<double>(shape.batch) *
                  kTdcEmulatorPenalty / gemm_rate;
      break;
    case ConvAlgo::kReference:
    case ConvAlgo::kAuto:
      return kInf;  // excluded above
  }
  return per_image * static_cast<double>(shape.batch);
}

double host_conv_cost_s8_s(const ConvShape& shape) {
  TDC_CHECK_MSG(shape.valid(), "invalid shape " + shape.to_string());
  const HostCalibration cal = host_calibration();
  const double s8_rate = cal.s8_gops * 1e9;
  const double byte_rate = cal.gbs * 1e9;
  const double ohw = static_cast<double>(shape.out_h()) * shape.out_w();
  const double crs = static_cast<double>(shape.c) * shape.r * shape.s;
  const double chw = static_cast<double>(shape.c) * shape.h * shape.w;
  const double gemm_ops = 2.0 * shape.n * crs * ohw;
  const bool in_place = shape.r == 1 && shape.s == 1 && shape.stride_h == 1 &&
                        shape.stride_w == 1 && shape.pad_h == 0 &&
                        shape.pad_w == 0;
  // Traffic: fp32 read + u8 write of the quantize stage, the u8 patch
  // matrix both ways (skipped in place), the int32 accumulator write and
  // its fp32 dequantized read-back.
  const double patch = in_place ? 0.0 : crs * ohw;
  const double bytes =
      5.0 * chw + 2.0 * patch + 8.0 * static_cast<double>(shape.n) * ohw;
  const double per_image = gemm_ops / s8_rate + bytes / byte_rate;
  return per_image * static_cast<double>(shape.batch);
}

std::string HostCostProvider::cache_key() const {
  const HostCalibration cal = host_calibration();
  char buf[96];
  std::snprintf(buf, sizeof(buf), "host;g=%.6g;b=%.6g;q=%.6g", cal.gflops,
                cal.gbs, cal.s8_gops);
  return buf;
}

ConvAlgo HostCostProvider::resolve(const DeviceSpec& /*device*/,
                                   const ConvShape& shape) const {
  ConvAlgo best = ConvAlgo::kIm2col;
  double best_s = kInf;
  // Candidate order breaks exact-cost ties deterministically (im2col first).
  for (const ConvAlgo algo : dense_algo_candidates(shape)) {
    const double s = host_conv_cost_s(algo, shape);
    if (s < best_s) {
      best_s = s;
      best = algo;
    }
  }
  return best;
}

Precision HostCostProvider::resolve_precision(const DeviceSpec& device,
                                              const ConvShape& shape) const {
  const double fp32_s = host_conv_cost_s(resolve(device, shape), shape);
  return host_conv_cost_s8_s(shape) < fp32_s ? Precision::kInt8
                                             : Precision::kFp32;
}

const CostProvider& host_cost_provider() {
  static const HostCostProvider provider;
  return provider;
}

}  // namespace tdc
