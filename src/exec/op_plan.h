// Generic compiled-operator interface — the unit the graph executor runs.
//
// Whole-network serving needs more than convolutions: pooling, inference
// batch-norm, residual adds, concats and the classifier head sit between the
// layers the codesign pass optimizes. OpPlan is the shared lifecycle all of
// them compile into:
//
//   * fixed shape-in/shape-out geometry, decided at compile time;
//   * workspace_bytes() — the exact scratch one run touches (0 possible);
//   * an allocation-free run over caller-owned buffers, bit-reproducible
//     across calls and thread counts.
//
// ConvPlan (exec/conv_plan.h) is one implementation; the memory-bound plans
// live in exec/op_plans.h and the graph compiler that chains them through a
// liveness-planned activation arena in exec/graph_plan.h.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/alloc_guard.h"
#include "common/annotations.h"
#include "common/check.h"
#include "tensor/tensor.h"

namespace tdc {

/// Single-image activation geometry: one [C, H, W] block of floats. Vectors
/// (the FC head's input/output) are {len, 1, 1}.
struct OpShape {
  std::int64_t c = 1;
  std::int64_t h = 1;
  std::int64_t w = 1;

  std::int64_t floats() const { return c * h * w; }
  std::string to_string() const;
  bool operator==(const OpShape&) const = default;
};

/// Operand/geometry agreement used by the checked run entry points: rank-3
/// tensors must match the [C, H, W] dims exactly (a same-numel permutation
/// computing garbage is precisely the bug class this catches); other ranks —
/// the FC head's vectors, flattened views — match by element count.
bool operand_matches(const Tensor& t, const OpShape& shape);

/// A compiled operator: fixed geometry + an allocation-free run.
class OpPlan {
 public:
  virtual ~OpPlan() = default;

  std::int64_t num_inputs() const {
    return static_cast<std::int64_t>(input_shapes_.size());
  }
  const OpShape& input_shape(std::int64_t i) const {
    return input_shapes_[static_cast<std::size_t>(i)];
  }
  const OpShape& output_shape() const { return output_shape_; }

  /// Exact scratch bytes one run touches (0 is possible). The plan never
  /// reads or writes workspace memory past this size.
  virtual std::int64_t workspace_bytes() const = 0;

  /// Scratch bytes a run_batched() call over `batch` images touches: one
  /// single-image workspace per concurrency slot, sized from the runtime's
  /// thread count at call time (a cached plan serves the caller's current
  /// concurrency, not the thread count at first compile).
  std::int64_t batched_workspace_bytes(std::int64_t batch) const;

  /// Multi-input execution over flat buffers: inputs[i] holds
  /// input_shape(i).floats() floats, y holds output_shape().floats(), and
  /// `workspace` is at least workspace_bytes() bytes of float storage. Every
  /// output element is written; results are bit-identical across repeated
  /// calls and thread counts. This is the entry point the graph executor
  /// chains through its activation arena.
  void run_inputs(std::span<const float* const> inputs, float* y,
                  std::span<float> workspace) const;

  /// Checked single-input convenience (requires num_inputs() == 1): element
  /// counts of x and *y must match the plan geometry.
  void run(const Tensor& x, Tensor* y, std::span<float> workspace) const;

  /// Single-shot convenience: allocates output and workspace, runs once.
  Tensor run(const Tensor& x) const;

  /// Batched serving entry point (requires num_inputs() == 1):
  /// x [B, C, H, W] → y [B, C', H', W'], images fanned across the parallel
  /// runtime with per-slot workspace slices. `workspace` needs
  /// batched_workspace_bytes(B) for the full fan-out; any smaller buffer
  /// holding at least workspace_bytes() narrows the fan-out to the slots
  /// that fit (correct, just less concurrent).
  void run_batched(const Tensor& x, Tensor* y,
                   std::span<float> workspace) const;

  /// Expert entry point over validated flat buffers (single-input plans
  /// only — a multi-input plan would read past the one pointer): what run()
  /// calls after checking operands once.
  TDC_RUN_PATH void run_unchecked(const float* x, float* y,
                                  std::span<float> workspace) const {
    TDC_CHECK_MSG(num_inputs() == 1,
                  "run_unchecked is single-input; use run_inputs");
    const float* inputs[1] = {x};
    // Allocation-free invariant of the execute path, machine-checked when
    // the guard is armed (TDC_ALLOC_GUARD=1 or debug builds).
    DenyAllocGuard guard("OpPlan::run");
    run_node(std::span<const float* const>(inputs, 1), y, workspace);
  }

 protected:
  OpPlan(std::vector<OpShape> input_shapes, OpShape output_shape);

  /// The operator body. `inputs` has num_inputs() validated pointers and
  /// `workspace` exactly workspace_bytes() / 4 floats.
  virtual void run_node(std::span<const float* const> inputs, float* y,
                        std::span<float> workspace) const = 0;

  /// Concurrency slots a batched run fans out over, from the runtime's
  /// thread count *at call time* (run_batched additionally clamps to the
  /// caller's workspace capacity).
  std::int64_t batch_slots(std::int64_t batch) const;

  /// Slot count frozen from the thread count at plan construction. Plans
  /// whose *internal* scratch layout is slot-strided (plan_fft) size with
  /// this so workspace_bytes() never shifts under a live session when
  /// set_num_threads changes.
  std::int64_t compile_batch_slots(std::int64_t batch) const;

  std::vector<OpShape> input_shapes_;
  OpShape output_shape_;
  std::int64_t compile_slots_;
};

}  // namespace tdc
