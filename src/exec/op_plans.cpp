#include "exec/op_plans.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/parallel.h"
#include "conv/pointwise.h"
#include "linalg/gemm.h"

namespace tdc {

namespace {

// Every plan here parallelizes over channels (each channel's outputs are
// written by exactly one chunk), so results are bit-identical at any thread
// count and the loops stay trivially race-free.

// ---------------------------------------------------------------------------
// Window pooling.
class PoolPlanImpl final : public OpPlan {
 public:
  explicit PoolPlanImpl(const PoolDescriptor& d)
      : OpPlan({d.in}, OpShape{d.in.c, d.out_h(), d.out_w()}), d_(d) {}

  std::int64_t workspace_bytes() const override { return 0; }

 protected:
  void run_node(std::span<const float* const> inputs, float* y,
                std::span<float> /*workspace*/) const override {
    const float* x = inputs[0];
    const std::int64_t oh = output_shape().h;
    const std::int64_t ow = output_shape().w;
    parallel_for(0, d_.in.c, 1, [&](std::int64_t c0, std::int64_t c1) {
      for (std::int64_t c = c0; c < c1; ++c) {
        const float* plane = x + c * d_.in.h * d_.in.w;
        float* out = y + c * oh * ow;
        for (std::int64_t o_h = 0; o_h < oh; ++o_h) {
          for (std::int64_t o_w = 0; o_w < ow; ++o_w) {
            const std::int64_t h0 = o_h * d_.stride_h - d_.pad_h;
            const std::int64_t w0 = o_w * d_.stride_w - d_.pad_w;
            const std::int64_t hb = std::max<std::int64_t>(h0, 0);
            const std::int64_t he = std::min(h0 + d_.window_h, d_.in.h);
            const std::int64_t wb = std::max<std::int64_t>(w0, 0);
            const std::int64_t we = std::min(w0 + d_.window_w, d_.in.w);
            if (d_.kind == PoolKind::kMax) {
              float best = -std::numeric_limits<float>::infinity();
              for (std::int64_t ih = hb; ih < he; ++ih) {
                for (std::int64_t iw = wb; iw < we; ++iw) {
                  best = std::max(best, plane[ih * d_.in.w + iw]);
                }
              }
              out[o_h * ow + o_w] = best;
            } else {
              double acc = 0.0;
              for (std::int64_t ih = hb; ih < he; ++ih) {
                for (std::int64_t iw = wb; iw < we; ++iw) {
                  acc += plane[ih * d_.in.w + iw];
                }
              }
              const double count =
                  static_cast<double>((he - hb) * (we - wb));
              out[o_h * ow + o_w] = static_cast<float>(acc / count);
            }
          }
        }
      }
    });
  }

 private:
  PoolDescriptor d_;
};

// ---------------------------------------------------------------------------
// Elementwise family: ReLU / bias / folded BN / N-ary add, with an optional
// fused ReLU on the affine and add variants.
enum class EltKind { kRelu, kBias, kBatchNorm, kAdd };

class EltwisePlanImpl final : public OpPlan {
 public:
  EltwisePlanImpl(const OpShape& shape, std::int64_t num_inputs, EltKind kind,
                  Tensor scale, Tensor shift, bool fuse_relu)
      : OpPlan(std::vector<OpShape>(static_cast<std::size_t>(num_inputs),
                                    shape),
               shape),
        kind_(kind),
        scale_(std::move(scale)),
        shift_(std::move(shift)),
        fuse_relu_(fuse_relu) {}

  std::int64_t workspace_bytes() const override { return 0; }

 protected:
  void run_node(std::span<const float* const> inputs, float* y,
                std::span<float> /*workspace*/) const override {
    const OpShape& s = output_shape();
    const std::int64_t plane = s.h * s.w;
    parallel_for(0, s.c, 1, [&](std::int64_t c0, std::int64_t c1) {
      for (std::int64_t c = c0; c < c1; ++c) {
        float* out = y + c * plane;
        switch (kind_) {
          case EltKind::kRelu: {
            const float* x = inputs[0] + c * plane;
            for (std::int64_t i = 0; i < plane; ++i) {
              out[i] = x[i] > 0.0f ? x[i] : 0.0f;
            }
            break;
          }
          case EltKind::kBias: {
            const float* x = inputs[0] + c * plane;
            const float b = shift_[c];
            for (std::int64_t i = 0; i < plane; ++i) {
              out[i] = x[i] + b;
            }
            break;
          }
          case EltKind::kBatchNorm: {
            const float* x = inputs[0] + c * plane;
            const float a = scale_[c];
            const float b = shift_[c];
            if (fuse_relu_) {
              for (std::int64_t i = 0; i < plane; ++i) {
                const float v = a * x[i] + b;
                out[i] = v > 0.0f ? v : 0.0f;
              }
            } else {
              for (std::int64_t i = 0; i < plane; ++i) {
                out[i] = a * x[i] + b;
              }
            }
            break;
          }
          case EltKind::kAdd: {
            const float* x0 = inputs[0] + c * plane;
            const float* x1 = inputs[1] + c * plane;
            for (std::int64_t i = 0; i < plane; ++i) {
              out[i] = x0[i] + x1[i];
            }
            for (std::size_t k = 2; k < inputs.size(); ++k) {
              const float* xk = inputs[k] + c * plane;
              for (std::int64_t i = 0; i < plane; ++i) {
                out[i] += xk[i];
              }
            }
            if (fuse_relu_) {
              for (std::int64_t i = 0; i < plane; ++i) {
                out[i] = out[i] > 0.0f ? out[i] : 0.0f;
              }
            }
            break;
          }
        }
      }
    });
  }

 private:
  EltKind kind_;
  Tensor scale_;  ///< [C] (kBatchNorm)
  Tensor shift_;  ///< [C] (kBias, kBatchNorm)
  bool fuse_relu_;
};

// ---------------------------------------------------------------------------
// Channel concatenation.
class ConcatPlanImpl final : public OpPlan {
 public:
  explicit ConcatPlanImpl(const std::vector<OpShape>& inputs)
      : OpPlan(inputs, concat_shape(inputs)) {}

  std::int64_t workspace_bytes() const override { return 0; }

  static OpShape concat_shape(const std::vector<OpShape>& inputs) {
    OpShape out = inputs.front();
    for (std::size_t i = 1; i < inputs.size(); ++i) {
      out.c += inputs[i].c;
    }
    return out;
  }

 protected:
  void run_node(std::span<const float* const> inputs, float* y,
                std::span<float> /*workspace*/) const override {
    const std::int64_t plane = output_shape().h * output_shape().w;
    std::int64_t offset = 0;
    for (std::int64_t i = 0; i < num_inputs(); ++i) {
      const std::int64_t floats = input_shape(i).floats();
      const float* src = inputs[static_cast<std::size_t>(i)];
      float* dst = y + offset * plane;
      parallel_for(0, floats, 1 << 14, [&](std::int64_t b, std::int64_t e) {
        std::copy(src + b, src + e, dst + b);
      });
      offset += input_shape(i).c;
    }
  }
};

// ---------------------------------------------------------------------------
// Fully-connected head on the prepacked GEMM.
class FullyConnectedPlanImpl final : public OpPlan {
 public:
  FullyConnectedPlanImpl(const Tensor& weight, Tensor bias)
      : OpPlan({OpShape{weight.dim(1), 1, 1}}, OpShape{weight.dim(0), 1, 1}),
        packed_(pack_gemm_a(weight.dim(0), weight.dim(1), weight.raw(),
                            weight.dim(1), 1)),
        bias_(std::move(bias)) {}

  std::int64_t workspace_bytes() const override { return 0; }

 protected:
  void run_node(std::span<const float* const> inputs, float* y,
                std::span<float> /*workspace*/) const override {
    // y[out, 1] = W[out, in] · x[in, 1].
    pointwise_conv_prepacked(packed_, inputs[0], 1, y);
    if (!bias_.empty()) {
      const std::int64_t out = output_shape().c;
      for (std::int64_t o = 0; o < out; ++o) {
        y[o] += bias_[o];
      }
    }
  }

 private:
  PackedGemmA packed_;
  Tensor bias_;  ///< [out] or empty
};

void check_channel_vector(const Tensor& t, std::int64_t c, const char* what) {
  TDC_CHECK_MSG(t.rank() == 1 && t.dim(0) == c,
                std::string(what) + " must be a [C] vector matching the " +
                    "plan's channel count");
}

}  // namespace

std::unique_ptr<OpPlan> compile_pool_plan(const PoolDescriptor& desc) {
  TDC_CHECK_MSG(desc.valid(), "invalid pooling geometry");
  return std::make_unique<PoolPlanImpl>(desc);
}

std::unique_ptr<OpPlan> compile_global_pool_plan(const OpShape& in,
                                                 PoolKind kind) {
  PoolDescriptor d;
  d.in = in;
  d.window_h = in.h;
  d.window_w = in.w;
  d.stride_h = in.h;
  d.stride_w = in.w;
  d.kind = kind;
  TDC_CHECK_MSG(d.valid(), "invalid global-pool geometry");
  return std::make_unique<PoolPlanImpl>(d);
}

std::unique_ptr<OpPlan> compile_relu_plan(const OpShape& shape) {
  return std::make_unique<EltwisePlanImpl>(shape, 1, EltKind::kRelu, Tensor(),
                                           Tensor(), false);
}

std::unique_ptr<OpPlan> compile_bias_plan(const OpShape& shape,
                                          const Tensor& bias) {
  check_channel_vector(bias, shape.c, "bias");
  return std::make_unique<EltwisePlanImpl>(shape, 1, EltKind::kBias, Tensor(),
                                           bias, false);
}

std::unique_ptr<OpPlan> compile_batchnorm_plan(const OpShape& shape,
                                               const Tensor& scale,
                                               const Tensor& shift,
                                               bool fuse_relu) {
  check_channel_vector(scale, shape.c, "batchnorm scale");
  check_channel_vector(shift, shape.c, "batchnorm shift");
  return std::make_unique<EltwisePlanImpl>(shape, 1, EltKind::kBatchNorm,
                                           scale, shift, fuse_relu);
}

FoldedBatchNorm fold_batchnorm(const Tensor& gamma, const Tensor& beta,
                               const Tensor& mean, const Tensor& var,
                               double eps) {
  const std::int64_t c = gamma.dim(0);
  check_channel_vector(gamma, c, "gamma");
  check_channel_vector(beta, c, "beta");
  check_channel_vector(mean, c, "running mean");
  check_channel_vector(var, c, "running var");
  FoldedBatchNorm out{Tensor({c}), Tensor({c})};
  for (std::int64_t i = 0; i < c; ++i) {
    const double inv_std = 1.0 / std::sqrt(static_cast<double>(var[i]) + eps);
    const double scale = static_cast<double>(gamma[i]) * inv_std;
    out.scale[i] = static_cast<float>(scale);
    out.shift[i] = static_cast<float>(static_cast<double>(beta[i]) -
                                      static_cast<double>(mean[i]) * scale);
  }
  return out;
}

std::unique_ptr<OpPlan> compile_add_plan(const OpShape& shape,
                                         std::int64_t num_inputs,
                                         bool fuse_relu) {
  TDC_CHECK_MSG(num_inputs >= 2, "an add plan joins at least two inputs");
  return std::make_unique<EltwisePlanImpl>(shape, num_inputs, EltKind::kAdd,
                                           Tensor(), Tensor(), fuse_relu);
}

std::unique_ptr<OpPlan> compile_concat_plan(
    const std::vector<OpShape>& inputs) {
  TDC_CHECK_MSG(inputs.size() >= 2, "a concat plan joins at least two inputs");
  for (const OpShape& in : inputs) {
    TDC_CHECK_MSG(in.h == inputs.front().h && in.w == inputs.front().w,
                  "concat inputs must share the spatial plane");
  }
  return std::make_unique<ConcatPlanImpl>(inputs);
}

std::unique_ptr<OpPlan> compile_fc_plan(const Tensor& weight,
                                        const Tensor& bias) {
  TDC_CHECK_MSG(weight.rank() == 2, "fc weight must be [out, in]");
  if (!bias.empty()) {
    check_channel_vector(bias, weight.dim(0), "fc bias");
  }
  return std::make_unique<FullyConnectedPlanImpl>(weight, bias);
}

}  // namespace tdc
