#include "exec/op_plan.h"

#include <algorithm>

#include "common/alloc_guard.h"
#include "common/annotations.h"
#include "common/check.h"
#include "common/parallel.h"
#include "exec/plan_impl.h"

namespace tdc {

std::string OpShape::to_string() const {
  // Built by append rather than operator+ chaining: GCC 12's -Wrestrict
  // false-positives on the chained form under -O2 (GCC bug 105329).
  std::string s = "[";
  s += std::to_string(c);
  s += ", ";
  s += std::to_string(h);
  s += ", ";
  s += std::to_string(w);
  s += "]";
  return s;
}

OpPlan::OpPlan(std::vector<OpShape> input_shapes, OpShape output_shape)
    : input_shapes_(std::move(input_shapes)),
      output_shape_(output_shape),
      compile_slots_(std::max(num_threads(), 1)) {
  TDC_CHECK_MSG(!input_shapes_.empty(), "an op plan needs at least one input");
}

std::int64_t OpPlan::batch_slots(std::int64_t batch) const {
  return detail::batch_slots(batch, std::max(num_threads(), 1));
}

std::int64_t OpPlan::compile_batch_slots(std::int64_t batch) const {
  return detail::batch_slots(batch, compile_slots_);
}

std::int64_t OpPlan::batched_workspace_bytes(std::int64_t batch) const {
  TDC_CHECK(batch >= 1);
  return batch_slots(batch) * workspace_bytes();
}

TDC_RUN_PATH void OpPlan::run_inputs(std::span<const float* const> inputs,
                                     float* y,
                        std::span<float> workspace) const {
  TDC_CHECK_MSG(static_cast<std::int64_t>(inputs.size()) == num_inputs(),
                "op plan expects " + std::to_string(num_inputs()) +
                    " inputs, got " + std::to_string(inputs.size()));
  TDC_CHECK_MSG(y != nullptr, "op plan output must not be null");
  TDC_CHECK_MSG(static_cast<std::int64_t>(workspace.size()) *
                        static_cast<std::int64_t>(sizeof(float)) >=
                    workspace_bytes(),
                "op plan workspace too small: need " +
                    std::to_string(workspace_bytes()) + " bytes");
  DenyAllocGuard guard("OpPlan::run_inputs");
  run_node(inputs, y,
           workspace.first(
               static_cast<std::size_t>(workspace_bytes() / sizeof(float))));
}

bool operand_matches(const Tensor& t, const OpShape& shape) {
  if (t.rank() == 3) {
    return t.dim(0) == shape.c && t.dim(1) == shape.h && t.dim(2) == shape.w;
  }
  return t.numel() == shape.floats();
}

TDC_RUN_PATH void OpPlan::run(const Tensor& x, Tensor* y,
                              std::span<float> workspace) const {
  TDC_CHECK_MSG(num_inputs() == 1,
                "checked single-input run on a multi-input plan; use "
                "run_inputs");
  TDC_CHECK_MSG(operand_matches(x, input_shape(0)),
                "plan input does not match " + input_shape(0).to_string());
  TDC_CHECK_MSG(y != nullptr && operand_matches(*y, output_shape_),
                "plan output must be a preallocated " +
                    output_shape_.to_string() + " tensor");
  TDC_CHECK_MSG(static_cast<std::int64_t>(workspace.size()) *
                        static_cast<std::int64_t>(sizeof(float)) >=
                    workspace_bytes(),
                "plan workspace too small: need " +
                    std::to_string(workspace_bytes()) + " bytes");
  run_unchecked(x.raw(), y->raw(),
                workspace.first(static_cast<std::size_t>(workspace_bytes() /
                                                         sizeof(float))));
}

Tensor OpPlan::run(const Tensor& x) const {
  // The only allocating entry point of a compiled plan: a starved
  // convenience workspace surfaces as kResourceExhausted instead of a bare
  // bad_alloc, and the plan itself stays reusable.
  return map_resource_failure("OpPlan::run workspace", [&] {
    Tensor y({output_shape_.c, output_shape_.h, output_shape_.w});
    std::vector<float> workspace(
        static_cast<std::size_t>(workspace_bytes() / sizeof(float)));
    run(x, &y, workspace);
    return y;
  });
}

TDC_RUN_PATH void OpPlan::run_batched(const Tensor& x, Tensor* y,
                                      std::span<float> workspace) const {
  TDC_CHECK_MSG(num_inputs() == 1,
                "batched run is single-input; multi-input plans run inside a "
                "graph");
  const OpShape& in = input_shape(0);
  TDC_CHECK_MSG(x.rank() == 4 && x.dim(1) == in.c && x.dim(2) == in.h &&
                    x.dim(3) == in.w,
                "batched plan input must be [B, C, H, W]");
  const std::int64_t batch = x.dim(0);
  TDC_CHECK_MSG(y != nullptr && y->rank() == 4 && y->dim(0) == batch &&
                    y->dim(1) == output_shape_.c &&
                    y->dim(2) == output_shape_.h &&
                    y->dim(3) == output_shape_.w,
                "batched plan output must be a preallocated "
                "[B, C', H', W'] tensor");
  const std::int64_t ws_floats = static_cast<std::int64_t>(workspace.size());
  const std::int64_t per_slot = workspace_bytes() / sizeof(float);
  TDC_CHECK_MSG(ws_floats * static_cast<std::int64_t>(sizeof(float)) >=
                    workspace_bytes(),
                "batched plan workspace too small: need at least "
                "workspace_bytes() for one slot");

  const std::int64_t x_stride = in.floats();
  const std::int64_t y_stride = output_shape_.floats();
  DenyAllocGuard guard("OpPlan::run_batched");
  detail::run_slotted(
      batch, detail::clamped_batch_slots(batch, per_slot, ws_floats),
      workspace, per_slot, [&](std::int64_t b, std::span<float> slot_ws) {
        run_unchecked(x.raw() + b * x_stride, y->raw() + b * y_stride,
                      slot_ws);
      });
}

}  // namespace tdc
