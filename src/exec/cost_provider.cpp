#include "exec/cost_provider.h"

#include "common/check.h"
#include "core/tdc_kernel.h"
#include "core/tdc_model.h"
#include "gpusim/library_cost.h"

namespace tdc {

std::vector<ConvAlgo> dense_algo_candidates(const ConvShape& shape) {
  TDC_CHECK_MSG(shape.valid(), "invalid shape " + shape.to_string());
  std::vector<ConvAlgo> candidates{ConvAlgo::kIm2col};
  const bool pointwise = shape.r == 1 && shape.s == 1;
  for (const ConvAlgo algo : {ConvAlgo::kWinograd, ConvAlgo::kFft}) {
    if (!pointwise && conv_algo_supports(algo, shape)) {
      candidates.push_back(algo);
    }
  }
  candidates.push_back(ConvAlgo::kTdcCore);
  return candidates;
}

ConvAlgo SimulatedGpuCostProvider::resolve(const DeviceSpec& device,
                                           const ConvShape& shape) const {
  TDC_CHECK_MSG(shape.valid(), "invalid shape " + shape.to_string());
  ConvAlgo best = ConvAlgo::kIm2col;
  double best_s = library_conv_cost(ConvAlgo::kIm2col, device, shape).total_s;
  // A 1×1 layer is already a bare channel-mix GEMM: the transform-domain
  // algorithms only add forward/inverse transform launches around the same
  // GEMM, so they are excluded outright instead of trusting the FFT cost
  // model's padded-plane arithmetic on degenerate filters.
  const bool pointwise = shape.r == 1 && shape.s == 1;
  for (const ConvAlgo algo : {ConvAlgo::kWinograd, ConvAlgo::kFft}) {
    if (pointwise || !conv_algo_supports(algo, shape)) {
      continue;
    }
    const double s = library_conv_cost(algo, device, shape).total_s;
    if (s < best_s) {
      best_s = s;
      best = algo;
    }
  }
  // The TDC kernel competes only where the device can actually launch it.
  try {
    const TdcTiling t = select_tiling_model(device, shape);
    const double s = tdc_core_cost(device, shape, t).total_s;
    if (s < best_s) {
      best_s = s;
      best = ConvAlgo::kTdcCore;
    }
  } catch (const Error&) {
  }
  return best;
}

const CostProvider& simulated_gpu_cost_provider() {
  static const SimulatedGpuCostProvider provider;
  return provider;
}

}  // namespace tdc
