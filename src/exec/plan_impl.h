// Internal factories of the per-algorithm ConvPlan implementations.
//
// compile_conv_plan (conv_plan.cpp) normalizes the kernel layout to CNRS and
// resolves kAuto, then hands off here; each factory lives next to its
// algorithm's tile math (plan_winograd.cpp, plan_fft.cpp) so the exec layer
// stays one algorithm per translation unit.
#pragma once

#include <memory>

#include "common/function_ref.h"
#include "exec/conv_plan.h"

namespace tdc::detail {

std::unique_ptr<ConvPlan> make_winograd_plan(const ConvShape& shape,
                                             const Tensor& kernel_cnrs);

std::unique_ptr<ConvPlan> make_fft_plan(const ConvShape& shape,
                                        const Tensor& kernel_cnrs);

// Shared batching machinery of ConvPlan::run_batched and
// CompiledModel::run_batched, so the slot policy lives in one place.

/// Concurrency slots for fanning `batch` items over at most `max_slots`
/// workers (>= 1 always).
std::int64_t batch_slots(std::int64_t batch, std::int64_t max_slots);

/// Slots a batched entry point actually fans out over: the runtime's thread
/// count *at call time*, clamped by the batch and by how many `per_slot`
/// float workspaces fit in the caller's `ws_floats` buffer. A workspace
/// sized under an older, smaller thread count narrows the fan-out instead
/// of failing; one sized with the current batched_workspace_bytes() gets
/// the full width.
std::int64_t clamped_batch_slots(std::int64_t batch, std::int64_t per_slot,
                                 std::int64_t ws_floats);

/// Fans items [0, batch) across `slots` workspace slices of `ws_floats`
/// floats each: contiguous item ranges per slot, run_one(item, slot_ws).
/// Bit-identical at any thread count — each item runs the same single-item
/// code against its slot's slice. Takes a non-owning FunctionRef so a
/// batched run opens its fan-out without heap allocation (the run-path
/// DenyAllocGuard invariant).
void run_slotted(std::int64_t batch, std::int64_t slots,
                 std::span<float> workspace, std::int64_t ws_floats,
                 FunctionRef<void(std::int64_t, std::span<float>)> run_one);

}  // namespace tdc::detail
