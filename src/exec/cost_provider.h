// Pluggable algorithm-selection policies for ConvAlgo::kAuto.
//
// The paper's selection story is hardware-aware: candidates are priced
// against a device cost model and the cheapest deployable one wins. Which
// model is the right one depends on where the plan will *execute*:
//
//   * SimulatedGpuCostProvider (here) — the paper-repro policy. Prices the
//     cuDNN stand-ins through gpusim (library_conv_cost) and the TDC core
//     kernel at its model-selected tiling (tdc_core_cost). This is what the
//     codesign pass and every figure reproduction assume.
//   * HostCostProvider (exec/host_cost.h) — the CPU-engine deployment
//     policy: an analytical model of the engine's own kernels, calibrated by
//     microbenchmarks on this machine. The default for InferenceSession /
//     CompiledModel compiles.
//   * AutotuneCostProvider (exec/autotune.h) — times the cheapest candidate
//     plans on real buffers at compile time and memoizes the winners.
//
// A provider only decides *which* algorithm compiles; the compiled plan's
// execution is bit-reproducible regardless of who chose it, and the PlanCache
// keys kAuto plans on the provider's cache_key() so plans tuned under one
// policy are never served to another.
#pragma once

#include <string>
#include <vector>

#include "conv/conv.h"
#include "conv/conv_shape.h"
#include "gpusim/device.h"

namespace tdc {

/// Arithmetic precision of a compiled convolution plan. kInt8 selects the
/// quantized engine (exec/quantize.h): int8 weights/activations inside the
/// plan, fp32 at the plan boundary.
enum class Precision { kFp32, kInt8 };

class CostProvider {
 public:
  virtual ~CostProvider() = default;

  /// Short stable policy id ("simgpu", "host", "autotune").
  virtual const char* name() const = 0;

  /// Resolution provenance for cache keys: the id plus every constant the
  /// decision depends on (calibration numbers, thread count), so two
  /// providers — or one provider under two calibrations — that could
  /// disagree never alias in the PlanCache.
  virtual std::string cache_key() const = 0;

  /// Resolve ConvAlgo::kAuto for `shape` targeting `device`: returns a
  /// deployable algorithm that supports the shape (never kReference — the
  /// oracle is not a deployment path — and never kAuto), and never a
  /// transform-domain algorithm for a pointwise (1×1) filter.
  virtual ConvAlgo resolve(const DeviceSpec& device,
                           const ConvShape& shape) const = 0;

  /// Price fp32 against int8 for a calibrated layer: returns kInt8 when the
  /// quantized im2col plan is expected to beat the provider's resolved fp32
  /// algorithm on `shape`. Only consulted for layers that carry calibration
  /// (SessionOptions::quant) under TDC_INT8=1; TDC_INT8=2 overrides the
  /// answer. The base policy is conservative: fp32 always (the simulated-GPU
  /// provider keeps paper-repro selections untouched).
  virtual Precision resolve_precision(const DeviceSpec& /*device*/,
                                      const ConvShape& /*shape*/) const {
    return Precision::kFp32;
  }
};

/// The dense deployment candidates every provider prices for `shape`:
/// im2col always; Winograd/FFT when conv_algo_supports them and the filter
/// is not 1×1 (a pointwise layer is a bare channel-mix GEMM — transform
/// overhead can never pay for itself); the TDC core kernel last. kReference
/// is never a candidate.
std::vector<ConvAlgo> dense_algo_candidates(const ConvShape& shape);

/// The historical resolve_conv_algo policy as a provider: a thin adapter
/// over library_conv_cost / tdc_core_cost, decision-for-decision identical
/// to the pre-seam selector. Default for bare ConvDescriptors (paper-repro
/// and codesign paths).
class SimulatedGpuCostProvider final : public CostProvider {
 public:
  const char* name() const override { return "simgpu"; }
  /// The DeviceSpec is already a separate component of every plan-cache
  /// key, so the provenance is the policy id alone.
  std::string cache_key() const override { return "simgpu"; }
  ConvAlgo resolve(const DeviceSpec& device,
                   const ConvShape& shape) const override;
};

/// Process-wide instance (stateless; shared freely across threads).
const CostProvider& simulated_gpu_cost_provider();

}  // namespace tdc
