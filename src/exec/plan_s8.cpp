// Quantized convolution plans: int8 arithmetic inside the standard ConvPlan
// contract. The plan boundary stays fp32 — quantize on entry, int8 GEMM with
// int32 accumulation, dequantize (or requantize, between Tucker stages) on
// exit — so quantized plans drop into the session graph, the arena planner
// and the serving fleet without any interface change.
#include <algorithm>
#include <cstring>

#include "common/check.h"
#include "exec/quantize.h"
#include "tucker/flops.h"

namespace tdc {

namespace {

std::int64_t u8_floats(std::int64_t bytes) { return (bytes + 3) / 4; }

bool is_pointwise(const ConvShape& shape) {
  return shape.r == 1 && shape.s == 1 && shape.stride_h == 1 &&
         shape.stride_w == 1 && shape.pad_h == 0 && shape.pad_w == 0;
}

/// Per-channel dequantization multipliers of one int8 GEMM stage, composed
/// in double so the single float narrowing happens once, at compile time.
std::vector<float> stage_multipliers(const std::vector<float>& w_scales,
                                     double in_scale, double out_scale) {
  std::vector<float> m(w_scales.size());
  for (std::size_t i = 0; i < w_scales.size(); ++i) {
    m[i] = static_cast<float>(in_scale * static_cast<double>(w_scales[i]) /
                              out_scale);
  }
  return m;
}

// ---------------------------------------------------------------------------
// Dense quantized im2col: quantize X → (optional) u8 patch matrix → one int8
// GEMM against the prepacked per-channel-quantized weight matrix → fp32
// dequantize. Pointwise layers skip the patch copy like the fp32 plan, but
// still pay the input quantization, so workspace is never zero.
class QuantizedConvPlanImpl final : public ConvPlan {
 public:
  QuantizedConvPlanImpl(const ConvShape& shape, const Tensor& kernel_cnrs,
                        const LayerQuant& quant)
      : ConvPlan(shape, ConvAlgo::kIm2col),
        input_(quant.input),
        pointwise_(is_pointwise(shape)) {
    const std::int64_t crs = shape.c * shape.r * shape.s;
    const Tensor weights = conv_weight_matrix(kernel_cnrs, shape);
    const QuantizedRows qw =
        quantize_rows_s8(shape.n, crs, weights.raw(), crs, 1);
    packed_weights_ = pack_gemm_a_s8(shape.n, crs, qw.values.data(), crs, 1);
    multipliers_ = stage_multipliers(
        qw.scales, static_cast<double>(input_.scale), 1.0);
  }

  bool quantized() const override { return true; }

  std::int64_t workspace_bytes() const override {
    const std::int64_t ohw = shape_.out_h() * shape_.out_w();
    const std::int64_t chw = shape_.c * shape_.h * shape_.w;
    std::int64_t floats = shape_.n * ohw + u8_floats(chw);  // acc + xq
    if (!pointwise_) {
      floats += u8_floats(shape_.c * shape_.r * shape_.s * ohw);  // patches
    }
    return floats * static_cast<std::int64_t>(sizeof(float));
  }

 protected:
  void run_image(const float* x, float* y,
                 std::span<float> workspace) const override {
    const std::int64_t ohw = shape_.out_h() * shape_.out_w();
    const std::int64_t chw = shape_.c * shape_.h * shape_.w;
    auto* acc = reinterpret_cast<std::int32_t*>(workspace.data());
    auto* xq = reinterpret_cast<std::uint8_t*>(workspace.data() +
                                               shape_.n * ohw);
    quantize_u8(x, chw, input_, xq);
    const std::uint8_t* b = xq;
    if (!pointwise_) {
      std::uint8_t* cols = xq + chw;
      im2col_u8_into(xq, shape_, cols,
                     static_cast<std::uint8_t>(input_.zero_point));
      b = cols;
    }
    gemm_prepacked_s8u8(packed_weights_, ohw, b, ohw, input_.zero_point, acc,
                        ohw);
    dequantize_f32(acc, shape_.n, ohw, ohw, multipliers_.data(), y, ohw);
  }

 private:
  PackedGemmAS8 packed_weights_;
  std::vector<float> multipliers_;
  QuantParams input_;
  bool pointwise_;
};

// ---------------------------------------------------------------------------
// Quantized Tucker pipeline: three chained int8 GEMMs (U1ᵀ channel
// compression, the spatial core over a u8 patch matrix, U2 channel
// expansion) with u8 requantized intermediates at the calibrated z1/z2
// parameters and an fp32 final dequantize. One int32 accumulator sized for
// the largest stage is reused by all three.
class QuantizedTuckerPlanImpl final : public ConvPlan {
 public:
  QuantizedTuckerPlanImpl(const ConvShape& shape, const TuckerFactors& factors,
                          const LayerQuant& quant)
      : ConvPlan(shape, ConvAlgo::kIm2col),
        core_(core_conv_shape(shape, factors.ranks())),
        input_(quant.input),
        z1_(quant.z1),
        z2_(quant.z2),
        core_pointwise_(is_pointwise(core_)) {
    const TuckerRanks ranks = factors.ranks();
    // Stage 1: U1ᵀ [D1, C] — u1 is stored [C, D1], so strides swap.
    const QuantizedRows qu1 =
        quantize_rows_s8(ranks.d1, shape.c, factors.u1.raw(), 1, ranks.d1);
    packed_u1_ =
        pack_gemm_a_s8(ranks.d1, shape.c, qu1.values.data(), shape.c, 1);
    m1_ = stage_multipliers(qu1.scales, static_cast<double>(input_.scale),
                            static_cast<double>(z1_.scale));
    // Stage 2: the spatial core as its [D2, D1·R·S] weight matrix.
    const std::int64_t d1rs = ranks.d1 * shape.r * shape.s;
    const Tensor core_w = conv_weight_matrix(factors.core, core_);
    const QuantizedRows qcore =
        quantize_rows_s8(ranks.d2, d1rs, core_w.raw(), d1rs, 1);
    packed_core_ =
        pack_gemm_a_s8(ranks.d2, d1rs, qcore.values.data(), d1rs, 1);
    m2_ = stage_multipliers(qcore.scales, static_cast<double>(z1_.scale),
                            static_cast<double>(z2_.scale));
    // Stage 3: U2 [N, D2], row-major as stored.
    const QuantizedRows qu2 =
        quantize_rows_s8(shape.n, ranks.d2, factors.u2.raw(), ranks.d2, 1);
    packed_u2_ =
        pack_gemm_a_s8(shape.n, ranks.d2, qu2.values.data(), ranks.d2, 1);
    m3_ = stage_multipliers(qu2.scales, static_cast<double>(z2_.scale), 1.0);
  }

  bool quantized() const override { return true; }
  bool decomposed() const override { return true; }

  std::int64_t workspace_bytes() const override {
    return (acc_floats() + u8_floats(u8_bytes())) *
           static_cast<std::int64_t>(sizeof(float));
  }

 protected:
  void run_image(const float* x, float* y,
                 std::span<float> workspace) const override {
    const std::int64_t d1 = core_.c;
    const std::int64_t d2 = core_.n;
    const std::int64_t hw = shape_.h * shape_.w;
    const std::int64_t ohw = shape_.out_h() * shape_.out_w();
    const std::int64_t chw = shape_.c * hw;
    auto* acc = reinterpret_cast<std::int32_t*>(workspace.data());
    auto* xq = reinterpret_cast<std::uint8_t*>(workspace.data() +
                                               acc_floats());
    std::uint8_t* z1q = xq + chw;
    std::uint8_t* z2q = z1q + d1 * hw;
    std::uint8_t* colsq = z2q + d2 * ohw;  // unused when the core is 1×1

    quantize_u8(x, chw, input_, xq);
    gemm_prepacked_s8u8(packed_u1_, hw, xq, hw, input_.zero_point, acc, hw);
    requantize_u8(acc, d1, hw, hw, m1_.data(), z1_.zero_point, z1q, hw);

    const std::uint8_t* b2 = z1q;
    if (!core_pointwise_) {
      im2col_u8_into(z1q, core_, colsq,
                     static_cast<std::uint8_t>(z1_.zero_point));
      b2 = colsq;
    }
    gemm_prepacked_s8u8(packed_core_, ohw, b2, ohw, z1_.zero_point, acc, ohw);
    requantize_u8(acc, d2, ohw, ohw, m2_.data(), z2_.zero_point, z2q, ohw);

    gemm_prepacked_s8u8(packed_u2_, ohw, z2q, ohw, z2_.zero_point, acc, ohw);
    dequantize_f32(acc, shape_.n, ohw, ohw, m3_.data(), y, ohw);
  }

 private:
  std::int64_t acc_floats() const {
    const std::int64_t ohw = shape_.out_h() * shape_.out_w();
    return std::max({core_.c * shape_.h * shape_.w, core_.n * ohw,
                     shape_.n * ohw});
  }
  std::int64_t u8_bytes() const {
    const std::int64_t ohw = shape_.out_h() * shape_.out_w();
    std::int64_t bytes = shape_.c * shape_.h * shape_.w +  // xq
                         core_.c * shape_.h * shape_.w +   // z1q
                         core_.n * ohw;                    // z2q
    if (!core_pointwise_) {
      bytes += core_.c * core_.r * core_.s * ohw;  // core patch matrix
    }
    return bytes;
  }

  ConvShape core_;
  PackedGemmAS8 packed_u1_;
  PackedGemmAS8 packed_core_;
  PackedGemmAS8 packed_u2_;
  std::vector<float> m1_;
  std::vector<float> m2_;
  std::vector<float> m3_;
  QuantParams input_;
  QuantParams z1_;
  QuantParams z2_;
  bool core_pointwise_;
};

}  // namespace

std::unique_ptr<ConvPlan> compile_quantized_conv_plan(
    const ConvShape& shape, const Tensor& kernel_cnrs,
    const LayerQuant& quant) {
  TDC_CHECK_MSG(shape.valid(),
                "invalid convolution shape " + shape.to_string());
  TDC_CHECK_MSG(shape.batch == 1,
                "descriptors are single-image; batching happens in "
                "run_batched");
  TDC_CHECK_MSG(kernel_cnrs.rank() == 4 && kernel_cnrs.dim(0) == shape.c &&
                    kernel_cnrs.dim(1) == shape.n &&
                    kernel_cnrs.dim(2) == shape.r &&
                    kernel_cnrs.dim(3) == shape.s,
                "kernel tensor does not match shape descriptor");
  TDC_CHECK_MSG(quant.quantize && quant.input.scale > 0.0f,
                "quantized plan needs calibrated input parameters");
  return std::make_unique<QuantizedConvPlanImpl>(shape, kernel_cnrs, quant);
}

std::unique_ptr<ConvPlan> compile_quantized_tucker_plan(
    const ConvShape& shape, const TuckerFactors& factors,
    const LayerQuant& quant) {
  TDC_CHECK_MSG(shape.valid(),
                "invalid convolution shape " + shape.to_string());
  TDC_CHECK_MSG(shape.batch == 1,
                "descriptors are single-image; batching happens in "
                "run_batched");
  const TuckerRanks ranks = factors.ranks();
  TDC_CHECK_MSG(factors.u1.rank() == 2 && factors.u1.dim(0) == shape.c &&
                    factors.u2.rank() == 2 && factors.u2.dim(0) == shape.n &&
                    factors.core.rank() == 4 &&
                    factors.core.dim(0) == ranks.d1 &&
                    factors.core.dim(1) == ranks.d2 &&
                    factors.core.dim(2) == shape.r &&
                    factors.core.dim(3) == shape.s,
                "Tucker factors do not match the layer shape");
  TDC_CHECK_MSG(quant.quantize && quant.input.scale > 0.0f &&
                    quant.z1.scale > 0.0f && quant.z2.scale > 0.0f,
                "quantized Tucker plan needs calibrated input/z1/z2 "
                "parameters");
  return std::make_unique<QuantizedTuckerPlanImpl>(shape, factors, quant);
}

}  // namespace tdc
