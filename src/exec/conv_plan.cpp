#include "exec/conv_plan.h"

#include <algorithm>
#include <vector>

#include "common/check.h"
#include "common/parallel.h"
#include "core/tdc_model.h"
#include "exec/plan_impl.h"
#include "gpusim/library_cost.h"
#include "linalg/gemm.h"

namespace tdc {

namespace detail {

std::int64_t batch_slots(std::int64_t batch, std::int64_t max_slots) {
  return std::max<std::int64_t>(std::min(batch, max_slots), 1);
}

void run_slotted(std::int64_t batch, std::int64_t slots,
                 std::span<float> workspace, std::int64_t ws_floats,
                 const std::function<void(std::int64_t, std::span<float>)>&
                     run_one) {
  const std::int64_t per_slot = divup(batch, slots);
  parallel_for(0, slots, 1, [&](std::int64_t s0, std::int64_t s1) {
    for (std::int64_t slot = s0; slot < s1; ++slot) {
      std::span<float> slot_ws =
          workspace.subspan(static_cast<std::size_t>(slot * ws_floats),
                            static_cast<std::size_t>(ws_floats));
      const std::int64_t b_end = std::min(batch, (slot + 1) * per_slot);
      for (std::int64_t b = slot * per_slot; b < b_end; ++b) {
        run_one(b, slot_ws);
      }
    }
  });
}

}  // namespace detail

ConvPlan::ConvPlan(const ConvShape& shape, ConvAlgo algo)
    : shape_(shape), algo_(algo), max_slots_(std::max(num_threads(), 1)) {}

std::int64_t ConvPlan::batch_slots(std::int64_t batch) const {
  return detail::batch_slots(batch, max_slots_);
}

std::int64_t ConvPlan::batched_workspace_bytes(std::int64_t batch) const {
  TDC_CHECK(batch >= 1);
  return batch_slots(batch) * workspace_bytes();
}

void ConvPlan::run(const Tensor& x, Tensor* y,
                   std::span<float> workspace) const {
  TDC_CHECK_MSG(x.rank() == 3 && x.dim(0) == shape_.c &&
                    x.dim(1) == shape_.h && x.dim(2) == shape_.w,
                "plan input does not match " + shape_.to_string());
  TDC_CHECK_MSG(y != nullptr && y->rank() == 3 && y->dim(0) == shape_.n &&
                    y->dim(1) == shape_.out_h() && y->dim(2) == shape_.out_w(),
                "plan output must be a preallocated [N, OH, OW] tensor");
  TDC_CHECK_MSG(static_cast<std::int64_t>(workspace.size()) *
                        static_cast<std::int64_t>(sizeof(float)) >=
                    workspace_bytes(),
                "plan workspace too small: need " +
                    std::to_string(workspace_bytes()) + " bytes");
  run_image(x.raw(), y->raw(), workspace.first(
      static_cast<std::size_t>(workspace_bytes() / sizeof(float))));
}

Tensor ConvPlan::run(const Tensor& x) const {
  Tensor y({shape_.n, shape_.out_h(), shape_.out_w()});
  std::vector<float> workspace(
      static_cast<std::size_t>(workspace_bytes() / sizeof(float)));
  run(x, &y, workspace);
  return y;
}

void ConvPlan::run_batched(const Tensor& x, Tensor* y,
                           std::span<float> workspace) const {
  TDC_CHECK_MSG(x.rank() == 4 && x.dim(1) == shape_.c &&
                    x.dim(2) == shape_.h && x.dim(3) == shape_.w,
                "batched plan input must be [B, C, H, W]");
  const std::int64_t batch = x.dim(0);
  TDC_CHECK_MSG(y != nullptr && y->rank() == 4 && y->dim(0) == batch &&
                    y->dim(1) == shape_.n && y->dim(2) == shape_.out_h() &&
                    y->dim(3) == shape_.out_w(),
                "batched plan output must be a preallocated [B, N, OH, OW] "
                "tensor");
  TDC_CHECK_MSG(static_cast<std::int64_t>(workspace.size()) *
                        static_cast<std::int64_t>(sizeof(float)) >=
                    batched_workspace_bytes(batch),
                "batched plan workspace too small");

  const std::int64_t x_stride = shape_.c * shape_.h * shape_.w;
  const std::int64_t y_stride = shape_.n * shape_.out_h() * shape_.out_w();
  detail::run_slotted(
      batch, batch_slots(batch), workspace, workspace_bytes() / sizeof(float),
      [&](std::int64_t b, std::span<float> slot_ws) {
        run_image(x.raw() + b * x_stride, y->raw() + b * y_stride, slot_ws);
      });
}

namespace {

Tensor normalize_kernel_layout(const Tensor& kernel, KernelLayout layout) {
  switch (layout) {
    case KernelLayout::kCNRS:
      return kernel;
    case KernelLayout::kCRSN:
      return crsn_to_cnrs(kernel);
    case KernelLayout::kNCRS:
      return ncrs_to_cnrs(kernel);
  }
  TDC_CHECK_MSG(false, "unknown kernel layout");
}

// ---------------------------------------------------------------------------
// Reference: the oracle as a plan. No invariants beyond the kernel copy.
class ReferencePlanImpl final : public ConvPlan {
 public:
  ReferencePlanImpl(const ConvShape& shape, Tensor kernel_cnrs)
      : ConvPlan(shape, ConvAlgo::kReference),
        kernel_(std::move(kernel_cnrs)) {}

  std::int64_t workspace_bytes() const override { return 0; }

 protected:
  void run_image(const float* x, float* y,
                 std::span<float> /*workspace*/) const override {
    conv2d_reference_into(x, kernel_, shape_, y);
  }

 private:
  Tensor kernel_;
};

// ---------------------------------------------------------------------------
// im2col + GEMM with the [N, C·R·S] weight matrix packed into micro-kernel
// panels at compile time; the workspace holds the patch matrix.
class Im2colPlanImpl final : public ConvPlan {
 public:
  Im2colPlanImpl(const ConvShape& shape, const Tensor& kernel_cnrs)
      : ConvPlan(shape, ConvAlgo::kIm2col) {
    const Tensor weights = conv_weight_matrix(kernel_cnrs, shape);
    packed_weights_ = pack_gemm_a(shape.n, shape.c * shape.r * shape.s,
                                  weights.raw(),
                                  shape.c * shape.r * shape.s, 1);
  }

  std::int64_t workspace_bytes() const override {
    return shape_.c * shape_.r * shape_.s * shape_.out_h() * shape_.out_w() *
           static_cast<std::int64_t>(sizeof(float));
  }

 protected:
  void run_image(const float* x, float* y,
                 std::span<float> workspace) const override {
    const std::int64_t ohw = shape_.out_h() * shape_.out_w();
    im2col_into(x, shape_, workspace.data());
    gemm_prepacked(packed_weights_, ohw, workspace.data(), ohw, 1, y, ohw);
  }

 private:
  PackedGemmA packed_weights_;
};

// ---------------------------------------------------------------------------
// The TDC core kernel scheme at a fixed tiling; scratch is the interpreter's
// per-slot shared-memory stage + register tile.
class TdcCorePlanImpl final : public ConvPlan {
 public:
  TdcCorePlanImpl(const ConvShape& shape, const Tensor& kernel_cnrs,
                  const TdcTiling& tiling)
      : ConvPlan(shape, ConvAlgo::kTdcCore),
        kernel_crsn_(cnrs_to_crsn(kernel_cnrs)),
        tiling_(tiling) {}

  std::int64_t workspace_bytes() const override {
    return tdc_core_workspace_floats(shape_, tiling_) *
           static_cast<std::int64_t>(sizeof(float));
  }

  const TdcTiling& tiling() const { return tiling_; }

 protected:
  void run_image(const float* x, float* y,
                 std::span<float> workspace) const override {
    tdc_core_conv_into(x, kernel_crsn_, shape_, tiling_, y, workspace);
  }

 private:
  Tensor kernel_crsn_;
  TdcTiling tiling_;
};

TdcTiling resolve_tdc_tiling(const DeviceSpec& device, const ConvShape& shape,
                             const TdcTiling& requested) {
  if (requested.th >= 1 && requested.tw >= 1 && requested.tc >= 1) {
    return requested;
  }
  // The analytical-model tiling is the paper's deployment choice; shapes the
  // device cannot launch at all (e.g. N beyond the block-thread limit) still
  // execute functionally at the smallest tile.
  try {
    return select_tiling_model(device, shape);
  } catch (const Error&) {
    return TdcTiling{1, 1, 1};
  }
}

}  // namespace

ConvAlgo resolve_conv_algo(const DeviceSpec& device, const ConvShape& shape) {
  TDC_CHECK_MSG(shape.valid(), "invalid shape " + shape.to_string());
  ConvAlgo best = ConvAlgo::kIm2col;
  double best_s = library_conv_cost(ConvAlgo::kIm2col, device, shape).total_s;
  for (const ConvAlgo algo : {ConvAlgo::kWinograd, ConvAlgo::kFft}) {
    if (!conv_algo_supports(algo, shape)) {
      continue;
    }
    const double s = library_conv_cost(algo, device, shape).total_s;
    if (s < best_s) {
      best_s = s;
      best = algo;
    }
  }
  // The TDC kernel competes only where the device can actually launch it.
  try {
    const TdcTiling t = select_tiling_model(device, shape);
    const double s = tdc_core_cost(device, shape, t).total_s;
    if (s < best_s) {
      best_s = s;
      best = ConvAlgo::kTdcCore;
    }
  } catch (const Error&) {
  }
  return best;
}

std::unique_ptr<ConvPlan> compile_conv_plan(const ConvDescriptor& desc,
                                            const Tensor& kernel) {
  TDC_CHECK_MSG(desc.shape.valid(),
                "invalid convolution shape " + desc.shape.to_string());
  TDC_CHECK_MSG(desc.shape.batch == 1,
                "descriptors are single-image; batching happens in "
                "run_batched");
  TDC_CHECK_MSG(kernel.rank() == 4, "kernel must be a rank-4 tensor");
  const Tensor kernel_cnrs = normalize_kernel_layout(kernel, desc.weight_layout);
  TDC_CHECK_MSG(kernel_cnrs.dim(0) == desc.shape.c &&
                    kernel_cnrs.dim(1) == desc.shape.n &&
                    kernel_cnrs.dim(2) == desc.shape.r &&
                    kernel_cnrs.dim(3) == desc.shape.s,
                "kernel tensor does not match shape descriptor");

  const ConvAlgo algo = desc.algo == ConvAlgo::kAuto
                            ? resolve_conv_algo(desc.device, desc.shape)
                            : desc.algo;
  TDC_CHECK_MSG(conv_algo_supports(algo, desc.shape),
                std::string(conv_algo_name(algo)) + " does not support " +
                    desc.shape.to_string());

  switch (algo) {
    case ConvAlgo::kReference:
      return std::make_unique<ReferencePlanImpl>(desc.shape, kernel_cnrs);
    case ConvAlgo::kIm2col:
      return std::make_unique<Im2colPlanImpl>(desc.shape, kernel_cnrs);
    case ConvAlgo::kWinograd:
      return detail::make_winograd_plan(desc.shape, kernel_cnrs);
    case ConvAlgo::kFft:
      return detail::make_fft_plan(desc.shape, kernel_cnrs);
    case ConvAlgo::kTdcCore:
      return std::make_unique<TdcCorePlanImpl>(
          desc.shape, kernel_cnrs,
          resolve_tdc_tiling(desc.device, desc.shape, desc.tiling));
    case ConvAlgo::kAuto:
      break;  // resolved above
  }
  TDC_CHECK_MSG(false, "unreachable: unresolved algorithm");
}

}  // namespace tdc
