#include "exec/conv_plan.h"

#include <algorithm>
#include <vector>

#include "common/check.h"
#include "common/parallel.h"
#include "conv/pointwise.h"
#include "core/tdc_model.h"
#include "exec/cost_provider.h"
#include "exec/plan_impl.h"
#include "linalg/gemm.h"

namespace tdc {

namespace detail {

std::int64_t batch_slots(std::int64_t batch, std::int64_t max_slots) {
  return std::max<std::int64_t>(std::min(batch, max_slots), 1);
}

std::int64_t clamped_batch_slots(std::int64_t batch, std::int64_t per_slot,
                                 std::int64_t ws_floats) {
  std::int64_t slots = batch_slots(batch, std::max(num_threads(), 1));
  if (per_slot > 0) {
    slots = std::min(slots, ws_floats / per_slot);
  }
  return std::max<std::int64_t>(slots, 1);
}

void run_slotted(std::int64_t batch, std::int64_t slots,
                 std::span<float> workspace, std::int64_t ws_floats,
                 FunctionRef<void(std::int64_t, std::span<float>)> run_one) {
  const std::int64_t per_slot = divup(batch, slots);
  parallel_for(0, slots, 1, [&](std::int64_t s0, std::int64_t s1) {
    for (std::int64_t slot = s0; slot < s1; ++slot) {
      std::span<float> slot_ws =
          workspace.subspan(static_cast<std::size_t>(slot * ws_floats),
                            static_cast<std::size_t>(ws_floats));
      const std::int64_t b_end = std::min(batch, (slot + 1) * per_slot);
      for (std::int64_t b = slot * per_slot; b < b_end; ++b) {
        run_one(b, slot_ws);
      }
    }
  });
}

}  // namespace detail

ConvPlan::ConvPlan(const ConvShape& shape, ConvAlgo algo)
    : OpPlan({OpShape{shape.c, shape.h, shape.w}},
             OpShape{shape.n, shape.out_h(), shape.out_w()}),
      shape_(shape),
      algo_(algo) {}

namespace {

Tensor normalize_kernel_layout(const Tensor& kernel, KernelLayout layout) {
  switch (layout) {
    case KernelLayout::kCNRS:
      return kernel;
    case KernelLayout::kCRSN:
      return crsn_to_cnrs(kernel);
    case KernelLayout::kNCRS:
      return ncrs_to_cnrs(kernel);
  }
  TDC_CHECK_MSG(false, "unknown kernel layout");
}

// ---------------------------------------------------------------------------
// Reference: the oracle as a plan. No invariants beyond the kernel copy.
class ReferencePlanImpl final : public ConvPlan {
 public:
  ReferencePlanImpl(const ConvShape& shape, Tensor kernel_cnrs)
      : ConvPlan(shape, ConvAlgo::kReference),
        kernel_(std::move(kernel_cnrs)) {}

  std::int64_t workspace_bytes() const override { return 0; }

 protected:
  void run_image(const float* x, float* y,
                 std::span<float> /*workspace*/) const override {
    conv2d_reference_into(x, kernel_, shape_, y);
  }

 private:
  Tensor kernel_;
};

// ---------------------------------------------------------------------------
// im2col + GEMM with the [N, C·R·S] weight matrix packed into micro-kernel
// panels at compile time; the workspace holds the patch matrix. Unit-stride
// unpadded 1×1 layers (the pointwise convolutions of bottleneck and
// downsample paths) skip the patch copy entirely — their im2col buffer would
// be the input image verbatim, so the GEMM reads X in place and the
// workspace is zero.
class Im2colPlanImpl final : public ConvPlan {
 public:
  Im2colPlanImpl(const ConvShape& shape, const Tensor& kernel_cnrs)
      : ConvPlan(shape, ConvAlgo::kIm2col),
        pointwise_(shape.r == 1 && shape.s == 1 && shape.stride_h == 1 &&
                   shape.stride_w == 1 && shape.pad_h == 0 &&
                   shape.pad_w == 0) {
    const Tensor weights = conv_weight_matrix(kernel_cnrs, shape);
    packed_weights_ = pack_gemm_a(shape.n, shape.c * shape.r * shape.s,
                                  weights.raw(),
                                  shape.c * shape.r * shape.s, 1);
  }

  std::int64_t workspace_bytes() const override {
    if (pointwise_) {
      return 0;
    }
    return shape_.c * shape_.r * shape_.s * shape_.out_h() * shape_.out_w() *
           static_cast<std::int64_t>(sizeof(float));
  }

 protected:
  void run_image(const float* x, float* y,
                 std::span<float> workspace) const override {
    const std::int64_t ohw = shape_.out_h() * shape_.out_w();
    if (pointwise_) {
      pointwise_conv_prepacked(packed_weights_, x, ohw, y);
      return;
    }
    im2col_into(x, shape_, workspace.data());
    gemm_prepacked(packed_weights_, ohw, workspace.data(), ohw, 1, y, ohw);
  }

 private:
  PackedGemmA packed_weights_;
  bool pointwise_;
};

// ---------------------------------------------------------------------------
// The TDC core kernel scheme at a fixed tiling; scratch is the interpreter's
// per-slot shared-memory stage + register tile.
class TdcCorePlanImpl final : public ConvPlan {
 public:
  TdcCorePlanImpl(const ConvShape& shape, const Tensor& kernel_cnrs,
                  const TdcTiling& tiling)
      : ConvPlan(shape, ConvAlgo::kTdcCore),
        kernel_crsn_(cnrs_to_crsn(kernel_cnrs)),
        tiling_(tiling) {}

  std::int64_t workspace_bytes() const override {
    return tdc_core_workspace_floats(shape_, tiling_) *
           static_cast<std::int64_t>(sizeof(float));
  }

  const TdcTiling& tiling() const { return tiling_; }

 protected:
  void run_image(const float* x, float* y,
                 std::span<float> workspace) const override {
    tdc_core_conv_into(x, kernel_crsn_, shape_, tiling_, y, workspace);
  }

 private:
  Tensor kernel_crsn_;
  TdcTiling tiling_;
};

TdcTiling resolve_tdc_tiling(const DeviceSpec& device, const ConvShape& shape,
                             const TdcTiling& requested) {
  if (requested.th >= 1 && requested.tw >= 1 && requested.tc >= 1) {
    return requested;
  }
  // The analytical-model tiling is the paper's deployment choice; shapes the
  // device cannot launch at all (e.g. N beyond the block-thread limit) still
  // execute functionally at the smallest tile.
  try {
    return select_tiling_model(device, shape);
  } catch (const Error&) {
    return TdcTiling{1, 1, 1};
  }
}

}  // namespace

ConvAlgo resolve_conv_algo(const DeviceSpec& device, const ConvShape& shape) {
  return simulated_gpu_cost_provider().resolve(device, shape);
}

std::unique_ptr<ConvPlan> compile_conv_plan(const ConvDescriptor& desc,
                                            const Tensor& kernel) {
  TDC_CHECK_MSG(desc.shape.valid(),
                "invalid convolution shape " + desc.shape.to_string());
  TDC_CHECK_MSG(desc.shape.batch == 1,
                "descriptors are single-image; batching happens in "
                "run_batched");
  TDC_CHECK_MSG(kernel.rank() == 4, "kernel must be a rank-4 tensor");
  const Tensor kernel_cnrs = normalize_kernel_layout(kernel, desc.weight_layout);
  TDC_CHECK_MSG(kernel_cnrs.dim(0) == desc.shape.c &&
                    kernel_cnrs.dim(1) == desc.shape.n &&
                    kernel_cnrs.dim(2) == desc.shape.r &&
                    kernel_cnrs.dim(3) == desc.shape.s,
                "kernel tensor does not match shape descriptor");

  const CostProvider& cost =
      desc.cost != nullptr ? *desc.cost : simulated_gpu_cost_provider();
  const ConvAlgo algo = desc.algo == ConvAlgo::kAuto
                            ? cost.resolve(desc.device, desc.shape)
                            : desc.algo;
  TDC_CHECK_MSG(desc.algo != ConvAlgo::kAuto ||
                    (algo != ConvAlgo::kAuto && algo != ConvAlgo::kReference),
                std::string("cost provider '") + cost.name() +
                    "' resolved kAuto to a non-deployable algorithm");
  TDC_CHECK_MSG(conv_algo_supports(algo, desc.shape),
                std::string(conv_algo_name(algo)) + " does not support " +
                    desc.shape.to_string());

  switch (algo) {
    case ConvAlgo::kReference:
      return std::make_unique<ReferencePlanImpl>(desc.shape, kernel_cnrs);
    case ConvAlgo::kIm2col:
      return std::make_unique<Im2colPlanImpl>(desc.shape, kernel_cnrs);
    case ConvAlgo::kWinograd:
      return detail::make_winograd_plan(desc.shape, kernel_cnrs);
    case ConvAlgo::kFft:
      return detail::make_fft_plan(desc.shape, kernel_cnrs);
    case ConvAlgo::kTdcCore:
      return std::make_unique<TdcCorePlanImpl>(
          desc.shape, kernel_cnrs,
          resolve_tdc_tiling(desc.device, desc.shape, desc.tiling));
    case ConvAlgo::kAuto:
      break;  // resolved above
  }
  TDC_CHECK_MSG(false, "unreachable: unresolved algorithm");
}

}  // namespace tdc
