// Host machine calibration for the CPU cost model.
//
// The HostCostProvider prices candidates as GEMM-shaped flops over the
// machine's achieved GEMM rate plus packing/transform traffic over its
// streaming bandwidth. Those two constants are measured here, once per
// process, by microbenchmarks that run the engine's own kernels (the packed
// GEMM and a streaming copy through the shared parallel runtime) — so the
// numbers already include SIMD width, thread count, and whatever the
// container's CPU quota allows, with no datasheet guesswork.
//
// For deterministic tests and pinned deployments both constants can be
// forced through the environment:
//
//   TDC_HOST_GFLOPS=<achieved GEMM GFLOP/s>
//   TDC_HOST_GBS=<achieved streaming GB/s>
//   TDC_HOST_S8_GOPS=<achieved int8 GEMM GOP/s>
//
// When all are set no measurement runs at all.
#pragma once

namespace tdc {

struct HostCalibration {
  double gflops = 0.0;  ///< achieved packed-GEMM rate, GFLOP/s
  double gbs = 0.0;     ///< achieved streaming-copy bandwidth, GB/s
  double s8_gops = 0.0;  ///< achieved int8 packed-GEMM rate, GOP/s (MAC·2)
  bool gflops_from_env = false;
  bool gbs_from_env = false;
  bool s8_from_env = false;
};

/// The process-wide calibration: environment overrides where present,
/// measured (measure_* below) otherwise. Computed on first use, then
/// cached. Returned by value so a concurrent reset_host_calibration()
/// cannot invalidate what a caller is reading; thread-safe.
HostCalibration host_calibration();

/// Drops the cached calibration so the next host_calibration() call re-reads
/// the environment / re-measures. For tests and long-lived processes that
/// migrate between machines.
void reset_host_calibration();

/// Best-of-3 packed GEMM on L2-resident operands → achieved GFLOP/s.
double measure_gemm_gflops();

/// Best-of-3 out-of-cache streaming copy through the parallel runtime →
/// achieved GB/s (read + write traffic).
double measure_stream_gbs();

/// Best-of-3 prepacked int8 GEMM (linalg/gemm_s8.h) on L2-resident operands
/// → achieved GOP/s, counting one multiply-accumulate as 2 ops like the
/// fp32 measurement so the two rates are directly comparable.
double measure_gemm_s8_gops();

}  // namespace tdc
