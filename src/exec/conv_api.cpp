// Single-shot wrappers: the historical free functions of conv/conv.h and
// conv/tucker_conv.h, each implemented as compile-plan → run-once →
// discard. They keep the one-call API (and its exact numerics) while the
// plan layer owns all algorithm state; serving loops should hold the plan.
#include "common/check.h"
#include "conv/conv.h"
#include "conv/tucker_conv.h"
#include "exec/conv_plan.h"

namespace tdc {

namespace {

Tensor run_single_shot(const ConvDescriptor& desc, const Tensor& kernel,
                       const Tensor& x) {
  TDC_CHECK_MSG(x.rank() == 3, "input must be [C,H,W]");
  return compile_conv_plan(desc, kernel)->run(x);
}

}  // namespace

Tensor conv2d(ConvAlgo algo, const Tensor& x, const Tensor& kernel_cnrs,
              const ConvShape& shape) {
  ConvDescriptor desc;
  desc.shape = shape;
  desc.algo = algo;
  return run_single_shot(desc, kernel_cnrs, x);
}

Tensor conv2d_im2col(const Tensor& x, const Tensor& kernel_cnrs,
                     const ConvShape& shape) {
  ConvDescriptor desc;
  desc.shape = shape;
  desc.algo = ConvAlgo::kIm2col;
  return run_single_shot(desc, kernel_cnrs, x);
}

Tensor conv2d_winograd(const Tensor& x, const Tensor& kernel_cnrs,
                       const ConvShape& shape) {
  ConvDescriptor desc;
  desc.shape = shape;
  desc.algo = ConvAlgo::kWinograd;
  return run_single_shot(desc, kernel_cnrs, x);
}

Tensor conv2d_fft(const Tensor& x, const Tensor& kernel_cnrs,
                  const ConvShape& shape) {
  ConvDescriptor desc;
  desc.shape = shape;
  desc.algo = ConvAlgo::kFft;
  return run_single_shot(desc, kernel_cnrs, x);
}

Tensor tucker_conv_fused(const Tensor& x, const TuckerFactors& factors,
                         const ConvShape& shape, std::int64_t row_tile) {
  TDC_CHECK_MSG(x.rank() == 3, "tucker_conv_fused expects [C,H,W]");
  TuckerDescriptor desc;
  desc.shape = shape;
  desc.exec = TuckerExec::kFused;
  desc.row_tile = row_tile;
  return compile_tucker_plan(desc, factors)->run(x);
}

Tensor tucker_conv_batched(const Tensor& x, const TuckerFactors& factors,
                           const ConvShape& shape, bool fused) {
  TDC_CHECK_MSG(x.rank() == 4, "tucker_conv_batched expects [B,C,H,W]");
  TuckerDescriptor desc;
  desc.shape = shape;
  desc.exec = fused ? TuckerExec::kFused : TuckerExec::kStaged;
  const std::unique_ptr<ConvPlan> plan = compile_tucker_plan(desc, factors);

  const std::int64_t batch = x.dim(0);
  Tensor y({batch, shape.n, shape.out_h(), shape.out_w()});
  std::vector<float> workspace(static_cast<std::size_t>(
      plan->batched_workspace_bytes(batch) / sizeof(float)));
  plan->run_batched(x, &y, workspace);
  return y;
}

}  // namespace tdc
