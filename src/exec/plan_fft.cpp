// FFT convolution as a compiled plan — the cuDNN FFT structure in FP32.
//
// Cross-correlation via the correlation theorem: with the image and each
// filter zero-padded to a common power-of-two plane P_h×P_w,
//   corr(x, k)(o) = IFFT( FFT(x) · conj(FFT(k)) )(o)   for o ≤ P − R,
// so the valid outputs are wrap-free as long as P_h ≥ H and P_w ≥ W. Channel
// accumulation happens in the frequency domain. The per-layer invariant is
// the filter spectra: when the C·N planes fit the plan's memory budget they
// are transformed once at compile time (conjugated, ready to multiply);
// otherwise each run transforms filters into per-slot workspace, which keeps
// workspace_bytes exact either way.
#include <complex>
#include <cstring>
#include <memory>
#include <vector>

#include "common/check.h"
#include "common/parallel.h"
#include "exec/plan_impl.h"
#include "fft/fft.h"

namespace tdc::detail {

namespace {

using Cpx = std::complex<float>;

// Precomputed filter spectra are capped so conv5-sized layers (512×512
// filters on a padded plane) do not balloon the plan; past the cap the
// filters are transformed per run instead.
constexpr std::int64_t kFilterSpectraBudgetBytes = 64ll << 20;

class FftPlanImpl final : public ConvPlan {
 public:
  FftPlanImpl(const ConvShape& shape, const Tensor& kernel_cnrs)
      : ConvPlan(shape, ConvAlgo::kFft),
        fh_(next_pow2(shape.h + 2 * shape.pad_h)),
        fw_(next_pow2(shape.w + 2 * shape.pad_w)) {
    const std::int64_t plane = fh_ * fw_;
    const std::int64_t spectra_bytes =
        shape.c * shape.n * plane * static_cast<std::int64_t>(sizeof(Cpx));
    if (spectra_bytes <= kFilterSpectraBudgetBytes) {
      spectra_.resize(static_cast<std::size_t>(shape.c * shape.n * plane));
      parallel_for(0, shape.c * shape.n, 1,
                   [&](std::int64_t i0, std::int64_t i1) {
        for (std::int64_t i = i0; i < i1; ++i) {
          const std::int64_t c = i / shape.n;
          const std::int64_t n = i % shape.n;
          Cpx* fk = spectra_.data() + i * plane;
          std::fill(fk, fk + plane, Cpx{});
          for (std::int64_t r = 0; r < shape.r; ++r) {
            for (std::int64_t s = 0; s < shape.s; ++s) {
              fk[r * fw_ + s] = Cpx(kernel_cnrs(c, n, r, s), 0.0f);
            }
          }
          fft2d_inplace(fk, fh_, fw_, /*inverse=*/false);
          for (std::int64_t j = 0; j < plane; ++j) {
            fk[j] = std::conj(fk[j]);
          }
        }
      });
    } else {
      kernel_ = kernel_cnrs;
    }
  }

  std::int64_t workspace_bytes() const override {
    const std::int64_t plane = fh_ * fw_;
    // Input spectra [C, plane] + per-slot accumulator (+ per-slot filter
    // scratch when spectra are not precomputed); complex = 2 floats.
    const std::int64_t per_slot = plane * (spectra_.empty() ? 2 : 1);
    return (shape_.c * plane + n_slots() * per_slot) * 2 *
           static_cast<std::int64_t>(sizeof(float));
  }

 protected:
  void run_image(const float* x, float* y,
                 std::span<float> workspace) const override {
    const std::int64_t c = shape_.c;
    const std::int64_t n = shape_.n;
    const std::int64_t oh = shape_.out_h();
    const std::int64_t ow = shape_.out_w();
    const std::int64_t plane = fh_ * fw_;
    const bool precomputed = !spectra_.empty();

    // std::complex<float> is layout-compatible with float[2], so the float
    // workspace doubles as the complex scratch.
    Cpx* fx = reinterpret_cast<Cpx*>(workspace.data());
    Cpx* slot_base = fx + c * plane;

    // Forward transforms of all input channels; the conv padding is an
    // index offset into the zero-filled plane.
    parallel_for(0, c, 1, [&](std::int64_t c0, std::int64_t c1) {
      for (std::int64_t ci = c0; ci < c1; ++ci) {
        Cpx* buf = fx + ci * plane;
        std::fill(buf, buf + plane, Cpx{});
        const float* plane_in = x + ci * shape_.h * shape_.w;
        for (std::int64_t i = 0; i < shape_.h; ++i) {
          Cpx* row = buf + (i + shape_.pad_h) * fw_ + shape_.pad_w;
          for (std::int64_t j = 0; j < shape_.w; ++j) {
            row[j] = Cpx(plane_in[i * shape_.w + j], 0.0f);
          }
        }
        fft2d_inplace(buf, fh_, fw_, /*inverse=*/false);
      }
    });

    // Frequency-domain accumulate + inverse transform, one output channel at
    // a time; output channels are strided across the fixed workspace slots.
    const std::int64_t slots = n_slots();
    const std::int64_t slot_floats = plane * (precomputed ? 1 : 2);
    const std::int64_t per_slot = detail::divup(n, slots);
    parallel_for(0, slots, 1, [&](std::int64_t s0, std::int64_t s1) {
      for (std::int64_t slot = s0; slot < s1; ++slot) {
        Cpx* acc = slot_base + slot * slot_floats;
        Cpx* fk = precomputed ? nullptr : acc + plane;
        const std::int64_t n_end = std::min(n, (slot + 1) * per_slot);
        for (std::int64_t ni = slot * per_slot; ni < n_end; ++ni) {
          std::fill(acc, acc + plane, Cpx{});
          for (std::int64_t ci = 0; ci < c; ++ci) {
            const Cpx* fxc = fx + ci * plane;
            if (precomputed) {
              const Cpx* spec = spectra_.data() + (ci * n + ni) * plane;
              for (std::int64_t j = 0; j < plane; ++j) {
                acc[j] += fxc[j] * spec[j];
              }
            } else {
              std::fill(fk, fk + plane, Cpx{});
              for (std::int64_t r = 0; r < shape_.r; ++r) {
                for (std::int64_t s = 0; s < shape_.s; ++s) {
                  fk[r * fw_ + s] = Cpx(kernel_(ci, ni, r, s), 0.0f);
                }
              }
              fft2d_inplace(fk, fh_, fw_, /*inverse=*/false);
              for (std::int64_t j = 0; j < plane; ++j) {
                acc[j] += fxc[j] * std::conj(fk[j]);
              }
            }
          }
          fft2d_inplace(acc, fh_, fw_, /*inverse=*/true);
          for (std::int64_t o_h = 0; o_h < oh; ++o_h) {
            for (std::int64_t o_w = 0; o_w < ow; ++o_w) {
              y[(ni * oh + o_h) * ow + o_w] = acc[o_h * fw_ + o_w].real();
            }
          }
        }
      }
    });
  }

 private:
  // Internal scratch is slot-strided, so the count is frozen at compile
  // time — workspace_bytes() must not shift under a live session when
  // set_num_threads changes.
  std::int64_t n_slots() const { return compile_batch_slots(shape_.n); }

  std::int64_t fh_;
  std::int64_t fw_;
  std::vector<Cpx> spectra_;  ///< conj(FFT(K(c,n))) per (c, n), or empty
  Tensor kernel_;             ///< CNRS copy when spectra are per-run
};

}  // namespace

std::unique_ptr<ConvPlan> make_fft_plan(const ConvShape& shape,
                                        const Tensor& kernel_cnrs) {
  TDC_CHECK_MSG(conv_algo_supports(ConvAlgo::kFft, shape),
                "fft conv requires stride 1: " + shape.to_string());
  return std::make_unique<FftPlanImpl>(shape, kernel_cnrs);
}

}  // namespace tdc::detail
