// Int8 quantization for the serving path: parameter choosers, calibration
// observers, quantized plan compilation, and the env knobs that gate it.
//
// The quantized engine follows the fixed-point deployments of the
// hardware-aware Tucker literature: weights are symmetric signed int8 with
// per-output-channel scales, activations are asymmetric unsigned int8
// restricted to the 7-bit domain [0, 127] (the restriction that makes the
// AVX2 maddubs micro-kernel exact — linalg/gemm_s8.h). A calibration pass
// over synthetic activations picks per-tensor activation parameters, and
// the resulting QuantTable rides into InferenceSession via
// SessionOptions::quant; per layer, the cost provider then prices fp32
// against int8 and the PlanCache keys the two precisions apart.
//
// Accuracy contract: a quantized plan's output differs from its fp32 twin
// by the usual quantization error — bounded per output element by
// (s_x/2)·Σ_k|w| + (s_w/2)·Σ_k|x| + K·s_x·s_w/4 for a single GEMM stage
// (tests/test_quantize.cpp checks exactly this bound); chained Tucker
// stages compound it. Layers whose activations are badly captured by the
// calibration range (heavy outliers under kMinMax) degrade gracefully —
// values clamp, they do not wrap.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "exec/conv_plan.h"
#include "exec/graph_plan.h"
#include "exec/op_plans.h"
#include "linalg/gemm_s8.h"

namespace tdc {

/// Affine quantization of one activation tensor into the 7-bit domain:
/// q = clamp(rne(x / scale) + zero_point, 0, 127), x̂ = (q − zp) · scale.
struct QuantParams {
  float scale = 1.0f;
  std::int32_t zero_point = 0;  ///< in [0, 127]
};

/// Parameters covering the observed range [lo, hi] (widened to include 0 so
/// fp32 zero — padding, ReLU floors — quantizes exactly to the zero point).
QuantParams choose_quant_params(float lo, float hi);

/// Quantizes `count` floats into the 7-bit activation domain. Deterministic
/// and allocation-free (run-path safe); round-to-nearest-even.
void quantize_u8(const float* x, std::int64_t count, const QuantParams& qp,
                 std::uint8_t* out);

/// Inverse map (tests, diagnostics): x̂ = (q − zp) · scale.
void dequantize_u8(const std::uint8_t* q, std::int64_t count,
                   const QuantParams& qp, float* out);

/// Per-row symmetric int8 weight quantization: row i of the [m, k] matrix
/// A(i,kk) = a[i·a_rs + kk·a_cs] maps to q = rne(w / scales[i]) in
/// [-127, 127] with scales[i] = max_k|A(i,·)| / 127 (1.0 for all-zero
/// rows). `values` is the row-major [m, k] quantized matrix.
struct QuantizedRows {
  std::vector<std::int8_t> values;
  std::vector<float> scales;
};
QuantizedRows quantize_rows_s8(std::int64_t m, std::int64_t k, const float* a,
                               std::int64_t a_rs, std::int64_t a_cs);

/// Folds an inference BatchNorm's per-channel scale into a CNRS kernel:
/// W'(c, n, r, s) = W(c, n, r, s) · bn.scale(n). Weight quantization of a
/// BN-carrying layer happens on the folded kernel, so the per-channel int8
/// scales absorb the BN gain instead of leaving it to a lossy second
/// multiply; the BN shift stays in the (fp32) elementwise op.
Tensor fold_batchnorm_into_kernel(const Tensor& kernel_cnrs,
                                  const FoldedBatchNorm& bn);

// ---------------------------------------------------------------------------
// Calibration: range observers over synthetic activations.

/// Running min/max over every observed value.
class MinMaxObserver {
 public:
  void observe(const float* x, std::int64_t count);
  bool seen() const { return seen_; }
  float lo() const { return lo_; }
  float hi() const { return hi_; }
  QuantParams params() const { return choose_quant_params(lo_, hi_); }

 private:
  bool seen_ = false;
  float lo_ = 0.0f;
  float hi_ = 0.0f;
};

/// Percentile range over a deterministic stride-subsample: keeps at most
/// `cap` values (thinning by powers of two as observations accumulate) and
/// reads the [1−pct, pct] quantiles, so a handful of outliers cannot blow
/// up the scale the way kMinMax lets them.
class PercentileObserver {
 public:
  explicit PercentileObserver(double pct = 0.999,
                              std::int64_t cap = 1 << 16);
  void observe(const float* x, std::int64_t count);
  QuantParams params() const;

 private:
  double pct_;
  std::int64_t cap_;
  std::int64_t stride_ = 1;
  std::vector<float> vals_;
};

// ---------------------------------------------------------------------------
// The per-layer table that rides in SessionOptions.

/// Activation quantization of one convolution layer. `input` covers the
/// layer input; `z1`/`z2` cover the Tucker-pipeline intermediates (stage-1
/// output and core output) and are only read when the layer compiles as a
/// decomposed pipeline. Weight scales are not stored here — they derive
/// deterministically from the kernel tensor at plan-compile time.
struct LayerQuant {
  bool quantize = false;
  QuantParams input;
  QuantParams z1;
  QuantParams z2;
};

/// One entry per ModelSpec layer (non-conv layers keep quantize = false).
struct QuantTable {
  std::vector<LayerQuant> layers;
};

/// FNV-1a digest of one layer's quantization parameters — the component
/// PlanCache keys embed so two calibrations of one model never alias.
std::uint64_t quant_fingerprint(const LayerQuant& q);

enum class CalibMethod {
  kMinMax,
  kPercentile,
};

struct CalibrationOptions {
  CalibMethod method = CalibMethod::kMinMax;
  /// Synthetic calibration inputs; 0 selects calibration_samples_default().
  std::int64_t samples = 0;
  /// Quantile captured by kPercentile (per side).
  double percentile = 0.999;
  /// Seed of the synthetic activation stream.
  std::uint64_t seed = 4242;
};

/// Calibrates activation quantization for every convolution layer of
/// `model`: compiles a dense fp32 reference session, drives `samples`
/// synthetic inputs through it while observing each convolution's input
/// range, and — for layers `decisions` marks decomposed — additionally
/// decomposes the kernel at the decided ranks and observes the fp32 Z1/Z2
/// intermediates. Deterministic for fixed options; offline (allocates
/// freely). The returned table aligns with model.layers and marks every
/// convolution quantize = true.
QuantTable calibrate_quant(const DeviceSpec& device, const ModelSpec& model,
                           const std::vector<LayerWeights>& weights,
                           const std::vector<LayerDecision>& decisions = {},
                           const CalibrationOptions& options = {});

// ---------------------------------------------------------------------------
// Env knobs (strict-parsed via common/env.h, warn-once on malformed text).

/// TDC_INT8: 0 = int8 off everywhere, 1 = cost provider decides per layer
/// (default), 2 = force int8 for every calibrated layer. Re-read on each
/// call so tests and long-lived processes can flip it; malformed or
/// out-of-range text warns once and falls back to 1.
int int8_mode();

/// TDC_CALIBRATION_SAMPLES: synthetic inputs per calibration when
/// CalibrationOptions.samples is 0 (default 4; accepted range [1, 4096]).
std::int64_t calibration_samples_default();

// ---------------------------------------------------------------------------
// Quantized plan compilation (exec/plan_s8.cpp).

/// Compiles `shape` as a quantized im2col plan: weights per-channel int8
/// (quantize_rows_s8 over the [N, C·R·S] weight matrix), activations
/// quantized on entry with quant.input, int32 accumulation, fp32
/// dequantized output. Pointwise (1×1, unit-stride, unpadded) layers skip
/// the patch copy like the fp32 plan. The returned plan satisfies the full
/// OpPlan contract (allocation-free, deadline-polled, bit-identical across
/// thread counts) and reports quantized() = true.
std::unique_ptr<ConvPlan> compile_quantized_conv_plan(
    const ConvShape& shape, const Tensor& kernel_cnrs,
    const LayerQuant& quant);

/// Compiles the decomposed pipeline as a chain of three int8 GEMM stages
/// (stage-1 pointwise, im2col core, stage-3 pointwise) with u8 requantized
/// intermediates (quant.z1 / quant.z2) and an fp32 final stage.
std::unique_ptr<ConvPlan> compile_quantized_tucker_plan(
    const ConvShape& shape, const TuckerFactors& factors,
    const LayerQuant& quant);

}  // namespace tdc
