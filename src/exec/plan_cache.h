// Process-wide compiled-plan cache, keyed by canonicalized descriptors.
//
// CNN inventories repeat layer shapes heavily (every ResNet stage reuses one
// geometry, serving fleets recompile the same model on every replica
// process), and plan compilation is the expensive half of the lifecycle:
// GEMM weight packing, Winograd/FFT filter transforms, Tucker decomposition.
// The cache makes recompilation of an identical layer free — cuDNN-style —
// by keying plans on everything that determines the compiled artifact:
//
//   shape ⊕ algorithm request ⊕ tiling ⊕ device ⊕ resolution provenance
//        ⊕ weight fingerprint
//
// The weight fingerprint (FNV-1a over the kernel bytes and dims) keeps two
// same-shape layers with different weights from aliasing. kAuto requests are
// cacheable before resolution because the key carries the resolution
// provenance — the cost provider's cache_key(), i.e. its id plus calibration
// constants — alongside the (device, shape) the provider resolves against;
// a host-tuned plan is therefore never served to a simulated-GPU compile of
// the same shape. Pinned-algorithm requests compile identically under every
// provider and share one entry.
//
// Cached plans are shared as shared_ptr<const ConvPlan>: running a plan is
// const and touches only caller-owned output/workspace, so one compiled
// artifact can serve any number of sessions and threads concurrently.
// run_batched sizes its fan-out from the thread count at call time, so a
// cache hit serves the caller's current concurrency regardless of the
// setting at first compile. Same-key compiles are single-flight: concurrent
// callers of one key wait for the first caller's artifact instead of
// compiling duplicates (stats().misses counts exactly one compile). The
// cache never evicts; clear() exists for tests and cold-compile benchmarks.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "exec/conv_plan.h"

namespace tdc {

struct LayerQuant;  // exec/quantize.h

/// 64-bit FNV-1a over a tensor's dims and payload bytes — the weight
/// identity used in cache keys.
std::uint64_t tensor_fingerprint(const Tensor& t);

class PlanCache {
 public:
  /// The process-wide instance every compile funnels through.
  static PlanCache& instance();

  /// Dense-plan lookup: returns the cached plan for an identical descriptor
  /// and kernel, or compiles (compile_conv_plan) and inserts on miss.
  std::shared_ptr<const ConvPlan> get_or_compile(const ConvDescriptor& desc,
                                                 const Tensor& kernel);

  /// Decomposed-layer lookup, keyed on the *original* kernel and the decided
  /// ranks: a hit skips both the Tucker decomposition and plan compilation.
  /// On miss, decomposes kernel_cnrs at `ranks` and compiles a Tucker
  /// pipeline plan.
  std::shared_ptr<const ConvPlan> get_or_compile_tucker(
      const TuckerDescriptor& desc, const Tensor& kernel_cnrs,
      const TuckerRanks& ranks);

  /// Quantized dense-plan lookup (compile_quantized_conv_plan). The key
  /// embeds the precision tag plus quant_fingerprint(quant) alongside the
  /// usual shape ⊕ device ⊕ weight identity, so an int8 plan never aliases
  /// its fp32 twin and two calibrations of one model never alias each other.
  std::shared_ptr<const ConvPlan> get_or_compile_s8(const ConvDescriptor& desc,
                                                    const Tensor& kernel,
                                                    const LayerQuant& quant);

  /// Quantized decomposed-layer lookup (compile_quantized_tucker_plan),
  /// keyed on the original kernel, the decided ranks and the quant
  /// fingerprint; a hit skips the Tucker decomposition too.
  std::shared_ptr<const ConvPlan> get_or_compile_tucker_s8(
      const TuckerDescriptor& desc, const Tensor& kernel_cnrs,
      const TuckerRanks& ranks, const LayerQuant& quant);

  struct Stats {
    std::int64_t hits = 0;
    std::int64_t misses = 0;
    std::int64_t entries = 0;
  };
  Stats stats() const;

  /// Drops every entry and resets the counters (plans already handed out
  /// stay alive through their shared_ptrs).
  void clear();

 private:
  PlanCache() = default;

  std::shared_ptr<const ConvPlan> lookup_or_insert(
      const std::string& key,
      const std::function<std::unique_ptr<ConvPlan>()>& compile);

  /// A compile in progress; same-key callers wait on it instead of
  /// duplicating the work (single-flight).
  struct InFlight {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    std::shared_ptr<const ConvPlan> plan;
    std::exception_ptr error;
  };

  mutable std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<const ConvPlan>> plans_;
  std::unordered_map<std::string, std::shared_ptr<InFlight>> inflight_;
  std::int64_t hits_ = 0;
  std::int64_t misses_ = 0;
};

}  // namespace tdc
