// Compiled end-to-end inference over a co-design decision list.
//
// The co-design pass (core/codesign.h, paper Algorithm 1) decides per layer
// whether to decompose and at which ranks. CompiledModel turns that decision
// list plus the layers' weights into an executable chain of ConvPlans — the
// deployment artifact of the plan/execute API:
//
//   CodesignResult result = run_codesign(device, shapes, opts);
//   CompiledModel model = CompiledModel::compile(device, result.layers,
//                                                kernels);
//   std::vector<float> ws(model.workspace_bytes() / 4);
//   Tensor y({model.output_shape().n, ...});
//   for (const Tensor& x : requests) model.run(x, &y, ws);
//
// Decomposed layers are Tucker-decomposed at the decided ranks and compiled
// into fused-pipeline plans; kept layers become dense plans (kAuto by
// default). Intermediate activations ping-pong through the caller's
// workspace, so the steady-state serving loop performs no allocation at all.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/codesign.h"
#include "exec/conv_plan.h"

namespace tdc {

struct CompiledModelOptions {
  /// Execution of decomposed layers (fused is the deployment default).
  TuckerExec tucker_exec = TuckerExec::kFused;
  /// Algorithm for layers the θ rule kept dense.
  ConvAlgo dense_algo = ConvAlgo::kAuto;
  /// Core-stage algorithm of staged Tucker layers.
  ConvAlgo tucker_core_algo = ConvAlgo::kIm2col;
};

class CompiledModel {
 public:
  /// Build the plan chain. `kernels_cnrs[i]` is layer i's full CNRS weight
  /// tensor matching decisions[i].shape; decomposed layers are
  /// Tucker-decomposed here at the decided ranks. Layers must chain:
  /// layer i+1's (C, H, W) equals layer i's (N, OH, OW).
  static CompiledModel compile(const DeviceSpec& device,
                               const std::vector<LayerDecision>& decisions,
                               const std::vector<Tensor>& kernels_cnrs,
                               const CompiledModelOptions& options = {});

  std::int64_t num_layers() const {
    return static_cast<std::int64_t>(layers_.size());
  }
  const ConvPlan& plan(std::int64_t i) const { return *layers_[i]; }
  bool decomposed(std::int64_t i) const { return layers_[i]->decomposed(); }
  /// Geometry of the final layer (its [N, OH, OW] is the model output).
  const ConvShape& output_shape() const;
  const ConvShape& input_shape() const;

  /// Exact scratch bytes one run() touches: two ping-pong activation
  /// buffers plus the largest per-layer plan workspace.
  std::int64_t workspace_bytes() const;
  /// Scratch for run_batched over `batch` images.
  std::int64_t batched_workspace_bytes(std::int64_t batch) const;

  /// x [C, H, W] of the first layer → y preallocated [N, OH, OW] of the
  /// last. Allocation-free; bit-identical across calls and thread counts.
  void run(const Tensor& x, Tensor* y, std::span<float> workspace) const;

  /// Single-shot convenience: allocates output and workspace.
  Tensor run(const Tensor& x) const;

  /// Batched serving: x [B, C, H, W] → y preallocated [B, N, OH, OW];
  /// images fan out across the parallel runtime, one full plan chain per
  /// workspace slot.
  void run_batched(const Tensor& x, Tensor* y,
                   std::span<float> workspace) const;

 private:
  CompiledModel() = default;

  void run_chain(const float* x, float* y, std::span<float> workspace) const;
  std::int64_t batch_slots(std::int64_t batch) const;

  std::vector<std::unique_ptr<ConvPlan>> layers_;
  std::int64_t act_floats_ = 0;      ///< largest intermediate activation
  std::int64_t plan_ws_floats_ = 0;  ///< largest per-layer plan workspace
  std::int64_t max_slots_ = 1;
};

}  // namespace tdc
