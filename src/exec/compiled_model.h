// Compiled end-to-end inference over a co-design decision list.
//
// The co-design pass (core/codesign.h, paper Algorithm 1) decides per layer
// whether to decompose and at which ranks. CompiledModel turns that decision
// list plus the layers' weights into an executable chain of ConvPlans:
//
//   CodesignResult result = run_codesign(device, shapes, opts);
//   CompiledModel model = CompiledModel::compile(device, result.layers,
//                                                kernels);
//   std::vector<float> ws(model.workspace_bytes() / 4);
//   Tensor y({model.output_shape().n, ...});
//   for (const Tensor& x : requests) model.run(x, &y, ws);
//
// Since the graph-level API landed, CompiledModel is a thin wrapper: it
// synthesizes a convolution-only ModelSpec from the decision list and
// compiles it through InferenceSession (exec/graph_plan.h), which plans the
// activation arena and shares conv plans through the process-wide PlanCache.
// Whole inventories — pooling, BN, residual adds, the classifier head — go
// through InferenceSession directly; this class remains the convenient
// entry point for pure convolution trunks.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/codesign.h"
#include "exec/graph_plan.h"

namespace tdc {

struct CompiledModelOptions {
  /// Execution of decomposed layers (fused is the deployment default).
  TuckerExec tucker_exec = TuckerExec::kFused;
  /// Algorithm for layers the θ rule kept dense.
  ConvAlgo dense_algo = ConvAlgo::kAuto;
  /// Core-stage algorithm of staged Tucker layers.
  ConvAlgo tucker_core_algo = ConvAlgo::kIm2col;
  /// kAuto resolution policy; null = the host provider (CPU deployment
  /// default), like SessionOptions::cost_provider.
  const CostProvider* cost_provider = nullptr;
  /// Share plans through the process-wide PlanCache (exec/plan_cache.h).
  bool use_plan_cache = true;
};

class CompiledModel {
 public:
  /// Build the plan chain. `kernels_cnrs[i]` is layer i's full CNRS weight
  /// tensor matching decisions[i].shape; decomposed layers are
  /// Tucker-decomposed here at the decided ranks. Layers must chain:
  /// layer i+1's (C, H, W) equals layer i's (N, OH, OW).
  static CompiledModel compile(const DeviceSpec& device,
                               const std::vector<LayerDecision>& decisions,
                               const std::vector<Tensor>& kernels_cnrs,
                               const CompiledModelOptions& options = {});

  std::int64_t num_layers() const { return session_.num_ops(); }
  const ConvPlan& plan(std::int64_t i) const;
  bool decomposed(std::int64_t i) const { return plan(i).decomposed(); }
  /// Geometry of the final layer (its [N, OH, OW] is the model output).
  const ConvShape& output_shape() const;
  const ConvShape& input_shape() const;

  /// The underlying graph session (arena introspection, op access).
  const InferenceSession& session() const { return session_; }

  /// Exact scratch bytes one run() touches: the liveness-planned activation
  /// arena plus the largest per-layer plan workspace.
  std::int64_t workspace_bytes() const { return session_.workspace_bytes(); }
  /// Scratch for run_batched over `batch` images.
  std::int64_t batched_workspace_bytes(std::int64_t batch) const {
    return session_.batched_workspace_bytes(batch);
  }

  /// x [C, H, W] of the first layer → y preallocated [N, OH, OW] of the
  /// last. Allocation-free; bit-identical across calls and thread counts.
  void run(const Tensor& x, Tensor* y, std::span<float> workspace) const {
    session_.run(x, y, workspace);
  }

  /// Single-shot convenience: allocates output and workspace.
  Tensor run(const Tensor& x) const { return session_.run(x); }

  /// Batched serving: x [B, C, H, W] → y preallocated [B, N, OH, OW];
  /// images fan out across the parallel runtime, one full plan chain per
  /// workspace slot.
  void run_batched(const Tensor& x, Tensor* y,
                   std::span<float> workspace) const {
    session_.run_batched(x, y, workspace);
  }

 private:
  CompiledModel() = default;

  InferenceSession session_;
};

}  // namespace tdc
