#include "exec/quantize.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/env.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "linalg/gemm.h"
#include "tucker/flops.h"
#include "tucker/tucker.h"

namespace tdc {

namespace {

std::uint64_t fnv1a_bytes(const void* data, std::size_t bytes,
                          std::uint64_t h) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

QuantParams choose_quant_params(float lo, float hi) {
  // Widen to include 0 so fp32 zero (padding, ReLU floors) maps exactly to
  // the zero point; degenerate ranges fall back to unit scale.
  lo = std::min(lo, 0.0f);
  hi = std::max(hi, 0.0f);
  QuantParams qp;
  const double range = static_cast<double>(hi) - static_cast<double>(lo);
  if (!(range > 0.0) || !std::isfinite(range)) {
    return qp;  // all-zero (or unseen) tensor: scale 1, zero point 0
  }
  qp.scale = static_cast<float>(range / 127.0);
  const double zp = std::nearbyint(-static_cast<double>(lo) /
                                   static_cast<double>(qp.scale));
  qp.zero_point = static_cast<std::int32_t>(
      std::clamp(zp, 0.0, 127.0));
  return qp;
}

void quantize_u8(const float* x, std::int64_t count, const QuantParams& qp,
                 std::uint8_t* out) {
  const float inv = 1.0f / qp.scale;
  const std::int32_t zp = qp.zero_point;
  parallel_for(0, count, 4096, [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) {
      const std::int32_t q =
          static_cast<std::int32_t>(std::nearbyintf(x[i] * inv)) + zp;
      out[i] = static_cast<std::uint8_t>(std::clamp(q, 0, 127));
    }
  });
}

void dequantize_u8(const std::uint8_t* q, std::int64_t count,
                   const QuantParams& qp, float* out) {
  for (std::int64_t i = 0; i < count; ++i) {
    out[i] = static_cast<float>(static_cast<std::int32_t>(q[i]) -
                                qp.zero_point) *
             qp.scale;
  }
}

QuantizedRows quantize_rows_s8(std::int64_t m, std::int64_t k, const float* a,
                               std::int64_t a_rs, std::int64_t a_cs) {
  TDC_CHECK(m >= 1 && k >= 1);
  QuantizedRows out;
  out.values.resize(static_cast<std::size_t>(m * k));
  out.scales.resize(static_cast<std::size_t>(m));
  for (std::int64_t i = 0; i < m; ++i) {
    float max_abs = 0.0f;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      max_abs = std::max(max_abs, std::fabs(a[i * a_rs + kk * a_cs]));
    }
    const float scale = max_abs > 0.0f ? max_abs / 127.0f : 1.0f;
    const float inv = 1.0f / scale;
    out.scales[static_cast<std::size_t>(i)] = scale;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float q = std::nearbyintf(a[i * a_rs + kk * a_cs] * inv);
      out.values[static_cast<std::size_t>(i * k + kk)] =
          static_cast<std::int8_t>(std::clamp(q, -127.0f, 127.0f));
    }
  }
  return out;
}

Tensor fold_batchnorm_into_kernel(const Tensor& kernel_cnrs,
                                  const FoldedBatchNorm& bn) {
  TDC_CHECK_MSG(kernel_cnrs.rank() == 4,
                "fold_batchnorm_into_kernel expects a CNRS kernel");
  const std::int64_t n = kernel_cnrs.dim(1);
  TDC_CHECK_MSG(bn.scale.rank() == 1 && bn.scale.dim(0) == n,
                "bn scale must be [N] matching the kernel's output channels");
  Tensor folded = kernel_cnrs;
  const std::int64_t c = kernel_cnrs.dim(0);
  const std::int64_t rs = kernel_cnrs.dim(2) * kernel_cnrs.dim(3);
  float* w = folded.raw();
  for (std::int64_t cc = 0; cc < c; ++cc) {
    for (std::int64_t nn = 0; nn < n; ++nn) {
      const float g = bn.scale[nn];
      float* plane = w + (cc * n + nn) * rs;
      for (std::int64_t i = 0; i < rs; ++i) {
        plane[i] *= g;
      }
    }
  }
  return folded;
}

void MinMaxObserver::observe(const float* x, std::int64_t count) {
  for (std::int64_t i = 0; i < count; ++i) {
    if (!seen_) {
      lo_ = hi_ = x[i];
      seen_ = true;
    } else {
      lo_ = std::min(lo_, x[i]);
      hi_ = std::max(hi_, x[i]);
    }
  }
}

PercentileObserver::PercentileObserver(double pct, std::int64_t cap)
    : pct_(pct), cap_(cap) {
  TDC_CHECK(pct > 0.5 && pct <= 1.0 && cap >= 16);
  vals_.reserve(static_cast<std::size_t>(cap));
}

void PercentileObserver::observe(const float* x, std::int64_t count) {
  // Deterministic stride subsample: ~4k values per observation, thinned by
  // powers of two whenever the buffer would outgrow its cap. No RNG — two
  // identical calibration runs observe identical samples.
  const std::int64_t stride =
      std::max<std::int64_t>(std::int64_t{1}, count / 4096) * stride_;
  for (std::int64_t i = 0; i < count; i += stride) {
    vals_.push_back(x[i]);
  }
  while (static_cast<std::int64_t>(vals_.size()) > cap_) {
    std::vector<float> thin;
    thin.reserve(vals_.size() / 2 + 1);
    for (std::size_t i = 0; i < vals_.size(); i += 2) {
      thin.push_back(vals_[i]);
    }
    vals_.swap(thin);
    stride_ *= 2;
  }
}

QuantParams PercentileObserver::params() const {
  if (vals_.empty()) {
    return QuantParams{};
  }
  std::vector<float> sorted = vals_;
  std::sort(sorted.begin(), sorted.end());
  const double last = static_cast<double>(sorted.size() - 1);
  const auto at = [&](double q) {
    const std::size_t idx = static_cast<std::size_t>(
        std::clamp(std::nearbyint(q * last), 0.0, last));
    return sorted[idx];
  };
  return choose_quant_params(at(1.0 - pct_), at(pct_));
}

std::uint64_t quant_fingerprint(const LayerQuant& q) {
  std::uint64_t h = 14695981039346656037ULL;
  const std::int32_t flag = q.quantize ? 1 : 0;
  h = fnv1a_bytes(&flag, sizeof(flag), h);
  for (const QuantParams* p : {&q.input, &q.z1, &q.z2}) {
    h = fnv1a_bytes(&p->scale, sizeof(p->scale), h);
    h = fnv1a_bytes(&p->zero_point, sizeof(p->zero_point), h);
  }
  return h;
}

int int8_mode() {
  // Re-read per call (cheap getenv) so tests and long-lived processes can
  // flip the knob; env_int rejects malformed text with a one-shot warning.
  return static_cast<int>(env_int("TDC_INT8", 0, 2).value_or(1));
}

std::int64_t calibration_samples_default() {
  return env_int("TDC_CALIBRATION_SAMPLES", 1, 4096).value_or(4);
}

namespace {

/// The decision-list alignment rule of InferenceSession::compile, shared by
/// calibration so both agree on which layers decompose: one entry per
/// convolution, or one per decomposable (spatial-filter) convolution.
std::vector<const LayerDecision*> align_decisions(
    const ModelSpec& model, const std::vector<LayerDecision>& decisions) {
  std::vector<const LayerDecision*> dec_for(model.layers.size(), nullptr);
  if (decisions.empty()) {
    return dec_for;
  }
  std::vector<std::size_t> conv_idx;
  std::vector<std::size_t> decomposable_idx;
  for (std::size_t i = 0; i < model.layers.size(); ++i) {
    const LayerSpec& l = model.layers[i];
    if (l.kind != LayerKind::kConv) {
      continue;
    }
    conv_idx.push_back(i);
    if (l.conv.r > 1 || l.conv.s > 1) {
      decomposable_idx.push_back(i);
    }
  }
  const std::vector<std::size_t>* target = nullptr;
  if (decisions.size() == conv_idx.size()) {
    target = &conv_idx;
  } else if (decisions.size() == decomposable_idx.size()) {
    target = &decomposable_idx;
  }
  TDC_CHECK_MSG(target != nullptr,
                "calibration decision list must cover every convolution (" +
                    std::to_string(conv_idx.size()) +
                    ") or every decomposable convolution (" +
                    std::to_string(decomposable_idx.size()) + "); got " +
                    std::to_string(decisions.size()));
  for (std::size_t k = 0; k < decisions.size(); ++k) {
    dec_for[(*target)[k]] = &decisions[k];
  }
  return dec_for;
}

/// Method-dispatching range observer.
struct RangeObserver {
  explicit RangeObserver(const CalibrationOptions& options)
      : method(options.method), pct(options.percentile) {}
  void observe(const float* x, std::int64_t count) {
    if (method == CalibMethod::kMinMax) {
      mm.observe(x, count);
    } else {
      pct.observe(x, count);
    }
  }
  QuantParams params() const {
    return method == CalibMethod::kMinMax ? mm.params() : pct.params();
  }
  CalibMethod method;
  MinMaxObserver mm;
  PercentileObserver pct;
};

/// Per-decomposed-layer fp32 reference of the Tucker intermediates: the
/// factors plus an im2col core plan, so calibration can observe Z1/Z2 on
/// the same numbers the quantized pipeline will approximate.
struct TuckerRef {
  TuckerFactors factors;
  ConvShape core_shape;
  std::unique_ptr<ConvPlan> core_plan;
};

}  // namespace

QuantTable calibrate_quant(const DeviceSpec& device, const ModelSpec& model,
                           const std::vector<LayerWeights>& weights,
                           const std::vector<LayerDecision>& decisions,
                           const CalibrationOptions& options) {
  TDC_CHECK_MSG(weights.size() == model.layers.size(),
                "calibration needs one LayerWeights entry per layer");
  const std::int64_t samples = options.samples > 0
                                   ? options.samples
                                   : calibration_samples_default();
  TDC_CHECK_MSG(samples >= 1, "calibration needs at least one sample");

  // The fp32 reference: a dense session with the deterministic im2col plan
  // everywhere (calibration prices nothing — it only needs exact fp32
  // activations at every conv input).
  SessionOptions ref_options;
  ref_options.dense_algo = ConvAlgo::kIm2col;
  const InferenceSession ref =
      InferenceSession::compile(device, model, weights, {}, ref_options);

  const std::vector<const LayerDecision*> dec_for =
      align_decisions(model, decisions);

  // Tucker intermediates of decomposed layers come from the real factors at
  // the decided ranks (one extra decomposition per layer; the PlanCache
  // will reuse its own when the quantized session compiles).
  std::vector<TuckerRef> tucker_refs(model.layers.size());
  for (std::size_t i = 0; i < model.layers.size(); ++i) {
    const LayerDecision* dec = dec_for[i];
    if (dec == nullptr || !dec->decomposed) {
      continue;
    }
    TuckerRef& tr = tucker_refs[i];
    tr.factors = tucker_decompose(weights[i].conv_kernel, dec->ranks);
    tr.core_shape = core_conv_shape(model.layers[i].conv, dec->ranks);
    ConvDescriptor core_desc;
    core_desc.shape = tr.core_shape;
    core_desc.algo = ConvAlgo::kIm2col;
    core_desc.device = device;
    tr.core_plan = compile_conv_plan(core_desc, tr.factors.core);
  }

  // Private per-op activation buffers (calibration needs every conv input,
  // which the session's internal arena does not expose).
  const std::int64_t n_ops = ref.num_ops();
  std::vector<std::vector<float>> outputs(static_cast<std::size_t>(n_ops));
  std::int64_t ws_floats = 0;
  for (std::int64_t i = 0; i < n_ops; ++i) {
    outputs[static_cast<std::size_t>(i)].resize(
        static_cast<std::size_t>(ref.op(i).output_shape().floats()));
    ws_floats = std::max(ws_floats, (ref.op(i).workspace_bytes() + 3) / 4);
  }
  for (std::size_t i = 0; i < tucker_refs.size(); ++i) {
    if (tucker_refs[i].core_plan != nullptr) {
      const TuckerRef& tr = tucker_refs[i];
      ws_floats =
          std::max(ws_floats, (tr.core_plan->workspace_bytes() + 3) / 4);
    }
  }
  std::vector<float> workspace(static_cast<std::size_t>(ws_floats));
  std::vector<float> z_buf;  // grows to the largest Z1/Z2 of the model

  std::vector<RangeObserver> input_obs(static_cast<std::size_t>(n_ops),
                                       RangeObserver(options));
  std::vector<RangeObserver> z1_obs(static_cast<std::size_t>(n_ops),
                                    RangeObserver(options));
  std::vector<RangeObserver> z2_obs(static_cast<std::size_t>(n_ops),
                                    RangeObserver(options));

  Rng rng(options.seed);
  const OpShape& in = ref.input_shape();
  const float* ptrs[2] = {nullptr, nullptr};
  for (std::int64_t sample = 0; sample < samples; ++sample) {
    const Tensor x =
        Tensor::random_uniform({in.c, in.h, in.w}, rng, -1.0f, 1.0f);
    for (std::int64_t i = 0; i < n_ops; ++i) {
      const std::span<const std::int64_t> edges = ref.op_inputs(i);
      // The graph walk gathers producer pointers like run_graph does, but
      // into private buffers; fan-in beyond 2 (concat) gathers on the heap
      // — calibration is offline, allocation is fine.
      std::vector<const float*> wide;
      std::span<const float* const> inputs;
      if (edges.size() <= 2) {
        for (std::size_t k = 0; k < edges.size(); ++k) {
          ptrs[k] = edges[k] == InferenceSession::kModelInput
                        ? x.raw()
                        : outputs[static_cast<std::size_t>(edges[k])].data();
        }
        inputs = std::span<const float* const>(ptrs, edges.size());
      } else {
        for (const std::int64_t j : edges) {
          wide.push_back(j == InferenceSession::kModelInput
                             ? x.raw()
                             : outputs[static_cast<std::size_t>(j)].data());
        }
        inputs = std::span<const float* const>(wide.data(), wide.size());
      }
      const bool is_conv =
          model.layers[static_cast<std::size_t>(i)].kind == LayerKind::kConv;
      if (is_conv) {
        const ConvShape& cs = model.layers[static_cast<std::size_t>(i)].conv;
        input_obs[static_cast<std::size_t>(i)].observe(inputs[0],
                                                       cs.c * cs.h * cs.w);
        const TuckerRef& tr = tucker_refs[static_cast<std::size_t>(i)];
        if (tr.core_plan != nullptr) {
          const TuckerRanks ranks = tr.factors.ranks();
          const std::int64_t hw = cs.h * cs.w;
          const std::int64_t ohw = cs.out_h() * cs.out_w();
          z_buf.resize(static_cast<std::size_t>(
              std::max(ranks.d1 * hw + ranks.d2 * ohw, std::int64_t{1})));
          float* z1 = z_buf.data();
          float* z2 = z1 + ranks.d1 * hw;
          // Z1 = U1ᵀ · X (u1 is stored [C, D1]).
          gemm_at(ranks.d1, hw, cs.c,
                  std::span<const float>(tr.factors.u1.raw(),
                                         static_cast<std::size_t>(cs.c *
                                                                  ranks.d1)),
                  std::span<const float>(inputs[0],
                                         static_cast<std::size_t>(cs.c * hw)),
                  std::span<float>(z1, static_cast<std::size_t>(ranks.d1 *
                                                                hw)));
          z1_obs[static_cast<std::size_t>(i)].observe(z1, ranks.d1 * hw);
          tr.core_plan->run_unchecked(z1, z2, workspace);
          z2_obs[static_cast<std::size_t>(i)].observe(z2, ranks.d2 * ohw);
        }
      }
      ref.op(i).run_inputs(inputs,
                           outputs[static_cast<std::size_t>(i)].data(),
                           workspace);
    }
  }

  QuantTable table;
  table.layers.resize(model.layers.size());
  for (std::size_t i = 0; i < model.layers.size(); ++i) {
    if (model.layers[i].kind != LayerKind::kConv) {
      continue;
    }
    LayerQuant& q = table.layers[i];
    q.quantize = true;
    q.input = input_obs[i].params();
    q.z1 = z1_obs[i].params();
    q.z2 = z2_obs[i].params();
  }
  return table;
}

}  // namespace tdc
