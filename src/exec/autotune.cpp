#include "exec/autotune.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <vector>

#include "common/check.h"
#include "common/parallel.h"
#include "exec/conv_plan.h"
#include "exec/host_cost.h"
#include "exec/microbench.h"

namespace tdc {

namespace {

using Clock = std::chrono::steady_clock;

// Candidates the host model prices this far off its leader are not worth
// compiling and timing — on ResNet shapes this gates the CPU FFT path and
// the TDC emulator out before a single buffer is allocated.
constexpr double kEstimateGate = 4.0;
// At most this many candidates are timed per shape.
constexpr int kMaxTimedCandidates = 3;

struct TunerState {
  std::mutex mu;
  std::map<std::string, ConvAlgo> winners;  // ordered → stable snapshots
  AutotuneStats stats;
  bool env_checked = false;
  bool save_warned = false;
  std::string cache_path;  // empty: persistence off
  // Bumped by autotune_clear(), the only operation after which an
  // already-resolved shape may resolve to a different winner (loads merge
  // with in-memory priority and inserts never overwrite). Part of
  // cache_key(), so PlanCache entries from before a clear are never served
  // to compiles after it.
  std::int64_t generation = 0;
};

TunerState& state() {
  static TunerState s;
  return s;
}

void append_shape_token(std::string* out, const ConvShape& s) {
  for (const std::int64_t v : {s.c, s.n, s.h, s.w, s.r, s.s, s.pad_h, s.pad_w,
                               s.stride_h, s.stride_w, s.batch}) {
    *out += std::to_string(v);
    *out += ',';
  }
}

std::string entry_key(const ConvShape& shape,
                      const std::vector<ConvAlgo>& candidates, int threads) {
  std::string key;
  append_shape_token(&key, shape);
  key += '|';
  for (const ConvAlgo algo : candidates) {
    key += std::to_string(static_cast<int>(algo));
    key += ',';
  }
  key += "|t";
  key += std::to_string(threads);
  return key;
}

bool algo_from_name(const std::string& name, ConvAlgo* out) {
  for (const ConvAlgo algo :
       {ConvAlgo::kReference, ConvAlgo::kIm2col, ConvAlgo::kWinograd,
        ConvAlgo::kFft, ConvAlgo::kTdcCore}) {
    if (name == conv_algo_name(algo)) {
      *out = algo;
      return true;
    }
  }
  return false;
}

// Pulls the next {"key": "...", "algo": "..."} pair out of the cache file
// contents starting at *pos. Tolerant by construction: anything that does
// not parse is skipped, so a stale or truncated cache degrades to re-tuning
// instead of failing the compile.
bool next_entry(const std::string& text, std::size_t* pos, std::string* key,
                std::string* algo) {
  auto quoted_after = [&](const char* tag, std::size_t from,
                          std::string* out, std::size_t* end) {
    const std::size_t at = text.find(tag, from);
    if (at == std::string::npos) {
      return false;
    }
    const std::size_t open = text.find('"', at + std::char_traits<char>::length(tag));
    if (open == std::string::npos) {
      return false;
    }
    const std::size_t close = text.find('"', open + 1);
    if (close == std::string::npos) {
      return false;
    }
    *out = text.substr(open + 1, close - open - 1);
    *end = close + 1;
    return true;
  };
  std::size_t after_key = 0;
  if (!quoted_after("\"key\":", *pos, key, &after_key)) {
    return false;
  }
  std::size_t after_algo = 0;
  if (!quoted_after("\"algo\":", after_key, algo, &after_algo)) {
    return false;
  }
  *pos = after_algo;
  return true;
}

// Callers hold state().mu.
bool save_locked(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  std::fprintf(f, "{\n  \"version\": 1,\n  \"entries\": [");
  bool first = true;
  for (const auto& [key, algo] : state().winners) {
    std::fprintf(f, "%s\n    {\"key\": \"%s\", \"algo\": \"%s\"}",
                 first ? "" : ",", key.c_str(), conv_algo_name(algo));
    first = false;
  }
  std::fprintf(f, "\n  ]\n}\n");
  return std::fclose(f) == 0;
}

bool load_locked(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return false;
  }
  std::string text;
  char buf[4096];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, got);
  }
  std::fclose(f);
  std::size_t pos = 0;
  std::string key;
  std::string name;
  while (next_entry(text, &pos, &key, &name)) {
    ConvAlgo algo = ConvAlgo::kIm2col;
    if (algo_from_name(name, &algo)) {
      state().winners.emplace(key, algo);  // first (in-memory) entry wins
    }
  }
  return true;
}

// Reads TDC_AUTOTUNE_CACHE once and loads the file when present. Callers
// hold state().mu.
void ensure_cache_loaded_locked() {
  if (state().env_checked) {
    return;
  }
  state().env_checked = true;
  const char* path = std::getenv("TDC_AUTOTUNE_CACHE");
  state().cache_path = path != nullptr ? path : "";
  if (!state().cache_path.empty()) {
    load_locked(state().cache_path);  // missing file: first run, fine
  }
}

double time_candidate(ConvAlgo algo, const DeviceSpec& device,
                      const ConvShape& shape) {
  // Throwaway plan over zero-filled buffers: weights do not change the
  // instruction stream of any executor, and 0·0 products raise no denormal
  // stalls, so zeros time like production traffic without touching the
  // PlanCache or any caller state.
  ConvDescriptor desc;
  desc.shape = shape;
  desc.algo = algo;
  desc.device = device;
  const Tensor kernel({shape.c, shape.n, shape.r, shape.s});
  const auto plan = compile_conv_plan(desc, kernel);
  const Tensor x({shape.c, shape.h, shape.w});
  Tensor y({shape.n, shape.out_h(), shape.out_w()});
  std::vector<float> ws(
      static_cast<std::size_t>(plan->workspace_bytes() / sizeof(float)));
  plan->run(x, &y, ws);  // warm-up
  double best_s = 1e300;
  for (int rep = 0; rep < 2; ++rep) {
    const auto t0 = Clock::now();
    plan->run(x, &y, ws);
    best_s = std::min(
        best_s, std::chrono::duration<double>(Clock::now() - t0).count());
  }
  return best_s;
}

}  // namespace

std::string AutotuneCostProvider::cache_key() const {
  // Thread count keys the winner table directly; the host calibration
  // steers the shortlist ranking; the generation invalidates decisions made
  // before an autotune_clear(). All three enter the provenance so a
  // re-calibrated or re-tuned process never hits a PlanCache entry whose
  // plan was chosen under superseded state.
  std::int64_t generation = 0;
  {
    TunerState& s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    generation = s.generation;
  }
  const HostCalibration cal = host_calibration();
  char buf[112];
  std::snprintf(buf, sizeof(buf), "autotune;gen=%lld;t=%d;g=%.6g;b=%.6g",
                static_cast<long long>(generation), num_threads(),
                cal.gflops, cal.gbs);
  return buf;
}

ConvAlgo AutotuneCostProvider::resolve(const DeviceSpec& device,
                                       const ConvShape& shape) const {
  const std::vector<ConvAlgo> candidates = dense_algo_candidates(shape);
  TunerState& s = state();
  const std::string key = entry_key(shape, candidates, num_threads());
  {
    std::lock_guard<std::mutex> lock(s.mu);
    ensure_cache_loaded_locked();
    ++s.stats.resolves;
    if (const auto it = s.winners.find(key); it != s.winners.end()) {
      ++s.stats.table_hits;
      return it->second;
    }
  }

  // Rank by the host model's estimate and keep only the candidates close
  // enough to the leader to plausibly win a measurement. Timing runs
  // outside the lock: a concurrent resolve of a memoized shape must not
  // stall behind hundreds of milliseconds of candidate runs.
  std::vector<std::pair<double, ConvAlgo>> ranked;
  for (const ConvAlgo algo : candidates) {
    ranked.emplace_back(host_conv_cost_s(algo, shape), algo);
  }
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  const double leader_s = ranked.front().first;
  std::vector<ConvAlgo> shortlist;
  for (const auto& [est_s, algo] : ranked) {
    if (static_cast<int>(shortlist.size()) == kMaxTimedCandidates ||
        est_s > leader_s * kEstimateGate) {
      break;
    }
    shortlist.push_back(algo);
  }

  ConvAlgo winner = shortlist.front();
  std::int64_t timed = 0;
  if (shortlist.size() > 1) {
    double best_s = 1e300;
    for (const ConvAlgo algo : shortlist) {
      const double t = time_candidate(algo, device, shape);
      ++timed;
      if (t < best_s) {  // earlier (better-estimated) candidate wins ties
        best_s = t;
        winner = algo;
      }
    }
  }

  std::lock_guard<std::mutex> lock(s.mu);
  s.stats.timed_candidates += timed;
  // On a race the first insert wins and this measurement is discarded, so
  // every caller still sees one winner per key.
  const auto [it, inserted] = s.winners.emplace(key, winner);
  s.stats.entries = static_cast<std::int64_t>(s.winners.size());
  if (inserted && !s.cache_path.empty() && !save_locked(s.cache_path) &&
      !s.save_warned) {
    std::fprintf(stderr,
                 "tdc: cannot write TDC_AUTOTUNE_CACHE file '%s'; autotune "
                 "winners will not persist\n",
                 s.cache_path.c_str());
    s.save_warned = true;
  }
  return it->second;
}

const CostProvider& autotune_cost_provider() {
  static const AutotuneCostProvider provider;
  return provider;
}

AutotuneStats autotune_stats() {
  TunerState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.stats.entries = static_cast<std::int64_t>(s.winners.size());
  return s.stats;
}

void autotune_clear() {
  TunerState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.winners.clear();
  s.stats = AutotuneStats{};
  s.env_checked = false;
  s.save_warned = false;
  s.cache_path.clear();
  ++s.generation;
}

bool autotune_save(const std::string& path) {
  TunerState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  return save_locked(path);
}

bool autotune_load(const std::string& path) {
  TunerState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  return load_locked(path);
}

std::vector<std::pair<std::string, ConvAlgo>> autotune_table() {
  TunerState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  return {s.winners.begin(), s.winners.end()};
}

}  // namespace tdc
