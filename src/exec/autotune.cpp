#include "exec/autotune.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <vector>

#include "common/check.h"
#include "common/fault.h"
#include "common/parallel.h"
#include "exec/conv_plan.h"
#include "exec/host_cost.h"
#include "exec/microbench.h"
#include "exec/quantize.h"

namespace tdc {

namespace {

using Clock = std::chrono::steady_clock;

// Candidates the host model prices this far off its leader are not worth
// compiling and timing — on ResNet shapes this gates the CPU FFT path and
// the TDC emulator out before a single buffer is allocated.
constexpr double kEstimateGate = 4.0;
// At most this many candidates are timed per shape.
constexpr int kMaxTimedCandidates = 3;

struct TunerState {
  std::mutex mu;
  std::map<std::string, ConvAlgo> winners;  // ordered → stable snapshots
  // Measured fp32-vs-int8 duels (resolve_precision), keyed like `winners`
  // but never persisted: precision winners re-measure per process.
  std::map<std::string, Precision> precisions;
  AutotuneStats stats;
  bool env_checked = false;
  bool save_warned = false;
  std::string cache_path;  // empty: persistence off
  // Bumped by autotune_clear(), the only operation after which an
  // already-resolved shape may resolve to a different winner (loads merge
  // with in-memory priority and inserts never overwrite). Part of
  // cache_key(), so PlanCache entries from before a clear are never served
  // to compiles after it.
  std::int64_t generation = 0;
};

TunerState& state() {
  static TunerState s;
  return s;
}

void append_shape_token(std::string* out, const ConvShape& s) {
  for (const std::int64_t v : {s.c, s.n, s.h, s.w, s.r, s.s, s.pad_h, s.pad_w,
                               s.stride_h, s.stride_w, s.batch}) {
    *out += std::to_string(v);
    *out += ',';
  }
}

std::string entry_key(const ConvShape& shape,
                      const std::vector<ConvAlgo>& candidates, int threads) {
  std::string key;
  append_shape_token(&key, shape);
  key += '|';
  for (const ConvAlgo algo : candidates) {
    key += std::to_string(static_cast<int>(algo));
    key += ',';
  }
  key += "|t";
  key += std::to_string(threads);
  return key;
}

bool algo_from_name(const std::string& name, ConvAlgo* out) {
  for (const ConvAlgo algo :
       {ConvAlgo::kReference, ConvAlgo::kIm2col, ConvAlgo::kWinograd,
        ConvAlgo::kFft, ConvAlgo::kTdcCore}) {
    if (name == conv_algo_name(algo)) {
      *out = algo;
      return true;
    }
  }
  return false;
}

// Pulls the next {"key": "...", "algo": "..."} pair out of the cache file
// contents starting at *pos. Tolerant by construction: anything that does
// not parse is skipped, so a stale or truncated cache degrades to re-tuning
// instead of failing the compile.
bool next_entry(const std::string& text, std::size_t* pos, std::string* key,
                std::string* algo) {
  auto quoted_after = [&](const char* tag, std::size_t from,
                          std::string* out, std::size_t* end) {
    const std::size_t at = text.find(tag, from);
    if (at == std::string::npos) {
      return false;
    }
    const std::size_t open = text.find('"', at + std::char_traits<char>::length(tag));
    if (open == std::string::npos) {
      return false;
    }
    const std::size_t close = text.find('"', open + 1);
    if (close == std::string::npos) {
      return false;
    }
    *out = text.substr(open + 1, close - open - 1);
    *end = close + 1;
    return true;
  };
  std::size_t after_key = 0;
  if (!quoted_after("\"key\":", *pos, key, &after_key)) {
    return false;
  }
  std::size_t after_algo = 0;
  if (!quoted_after("\"algo\":", after_key, algo, &after_algo)) {
    return false;
  }
  *pos = after_algo;
  return true;
}

// Cache-file format (version 2): a version header plus a checksum over the
// entry content, so a torn write, a flipped byte or a file from a different
// format revision is *detected* instead of silently half-loaded:
//
//   {
//     "version": 2,
//     "checksum": "<16 hex digits: FNV-1a over every (key, algo) pair>",
//     "entries": [ {"key": "...", "algo": "..."}, ... ]
//   }
//
// Writes go through a temp file in the same directory followed by an atomic
// rename, so a crash mid-save (or a concurrent reader) can only ever observe
// the previous complete file — never a torn one.

constexpr long long kCacheFormatVersion = 2;

std::uint64_t entries_checksum(
    const std::map<std::string, ConvAlgo>& winners) {
  std::uint64_t h = 14695981039346656037ULL;
  const auto fold = [&h](const char* s) {
    for (; *s != '\0'; ++s) {
      h ^= static_cast<unsigned char>(*s);
      h *= 1099511628211ULL;
    }
    h ^= 0xffU;  // separator: ("ab","c") must not collide with ("a","bc")
    h *= 1099511628211ULL;
  };
  for (const auto& [key, algo] : winners) {
    fold(key.c_str());
    fold(conv_algo_name(algo));
  }
  return h;
}

// Pulls the integer after "tag": out of `text`; -1 when absent.
long long int_field(const std::string& text, const char* tag) {
  const std::size_t at = text.find(tag);
  if (at == std::string::npos) {
    return -1;
  }
  return std::strtoll(text.c_str() + at + std::char_traits<char>::length(tag),
                      nullptr, 10);
}

// Callers hold state().mu.
bool save_locked(const std::string& path) {
  // Serialize fully in memory first: the checksum covers exactly what is
  // written, and the write happens in one pass to the temp file.
  std::string body = "{\n  \"version\": " +
                     std::to_string(kCacheFormatVersion) + ",\n";
  {
    char sum[24];
    std::snprintf(sum, sizeof(sum), "%016llx",
                  static_cast<unsigned long long>(
                      entries_checksum(state().winners)));
    body += "  \"checksum\": \"";
    body += sum;
    body += "\",\n  \"entries\": [";
  }
  bool first = true;
  for (const auto& [key, algo] : state().winners) {
    body += first ? "\n" : ",\n";
    body += "    {\"key\": \"" + key + "\", \"algo\": \"" +
            conv_algo_name(algo) + "\"}";
    first = false;
  }
  body += "\n  ]\n}\n";

  if (fault_injected("autotune.corrupt_save")) {
    // Torn-write simulation: publish only the front half. The checksum on
    // the next load is what must catch this.
    body.resize(body.size() / 2);
  }

  // Same-directory temp file (rename is only atomic within one filesystem);
  // the pid keeps concurrent *processes* saving to the same cache apart.
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long long>(::getpid()));
  FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return false;
  }
  const bool wrote =
      std::fwrite(body.data(), 1, body.size(), f) == body.size();
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !closed || std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

enum class CacheLoad { kOk, kMissing, kWrongVersion, kCorrupt };

// Callers hold state().mu. Parses into a staging map and verifies the
// checksum before anything merges into the winner table, so a corrupt file
// contributes nothing at all.
CacheLoad load_locked(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return CacheLoad::kMissing;
  }
  std::string text;
  char buf[4096];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, got);
  }
  std::fclose(f);

  if (int_field(text, "\"version\":") != kCacheFormatVersion) {
    return CacheLoad::kWrongVersion;
  }
  std::uint64_t stated = 0;
  {
    const std::size_t at = text.find("\"checksum\":");
    const std::size_t open =
        at == std::string::npos ? std::string::npos : text.find('"', at + 11);
    if (open == std::string::npos) {
      return CacheLoad::kCorrupt;
    }
    stated = std::strtoull(text.c_str() + open + 1, nullptr, 16);
  }
  std::map<std::string, ConvAlgo> staged;
  std::size_t pos = 0;
  std::string key;
  std::string name;
  while (next_entry(text, &pos, &key, &name)) {
    ConvAlgo algo = ConvAlgo::kIm2col;
    if (!algo_from_name(name, &algo)) {
      return CacheLoad::kCorrupt;  // an entry names no known algorithm
    }
    staged.emplace(key, algo);
  }
  if (entries_checksum(staged) != stated) {
    return CacheLoad::kCorrupt;
  }
  for (const auto& [k, algo] : staged) {
    state().winners.emplace(k, algo);  // first (in-memory) entry wins
  }
  return CacheLoad::kOk;
}

// Moves a failed cache file out of the way (path + ".corrupt") so the next
// save starts clean and the evidence survives for inspection; the process
// degrades to re-tuning instead of crashing or re-reading bad data forever.
void quarantine_locked(const std::string& path, const char* why) {
  const std::string dest = path + ".corrupt";
  std::remove(dest.c_str());
  const bool moved = std::rename(path.c_str(), dest.c_str()) == 0;
  std::fprintf(stderr,
               "tdc: TDC_AUTOTUNE_CACHE file '%s' %s; %s — winners will be "
               "re-tuned\n",
               path.c_str(), why,
               moved ? "quarantined to *.corrupt" : "could not be moved");
}

const char* cache_load_problem(CacheLoad r) {
  return r == CacheLoad::kWrongVersion
             ? "has an unsupported format version"
             : "failed its integrity check (torn or corrupt)";
}

// Reads TDC_AUTOTUNE_CACHE once and loads the file when present. Callers
// hold state().mu.
void ensure_cache_loaded_locked() {
  if (state().env_checked) {
    return;
  }
  state().env_checked = true;
  const char* path = std::getenv("TDC_AUTOTUNE_CACHE");
  state().cache_path = path != nullptr ? path : "";
  if (!state().cache_path.empty()) {
    const CacheLoad r = load_locked(state().cache_path);
    if (r == CacheLoad::kWrongVersion || r == CacheLoad::kCorrupt) {
      // Serving must not fail because a cache file went bad: quarantine it
      // and fall through to re-tuning.
      quarantine_locked(state().cache_path, cache_load_problem(r));
    }
    // kMissing: first run, fine.
  }
}

double time_candidate(ConvAlgo algo, const DeviceSpec& device,
                      const ConvShape& shape) {
  // Throwaway plan over zero-filled buffers: weights do not change the
  // instruction stream of any executor, and 0·0 products raise no denormal
  // stalls, so zeros time like production traffic without touching the
  // PlanCache or any caller state.
  ConvDescriptor desc;
  desc.shape = shape;
  desc.algo = algo;
  desc.device = device;
  const Tensor kernel({shape.c, shape.n, shape.r, shape.s});
  const auto plan = compile_conv_plan(desc, kernel);
  const Tensor x({shape.c, shape.h, shape.w});
  Tensor y({shape.n, shape.out_h(), shape.out_w()});
  std::vector<float> ws(
      static_cast<std::size_t>(plan->workspace_bytes() / sizeof(float)));
  plan->run(x, &y, ws);  // warm-up
  double best_s = 1e300;
  for (int rep = 0; rep < 2; ++rep) {
    const auto t0 = Clock::now();
    plan->run(x, &y, ws);
    best_s = std::min(
        best_s, std::chrono::duration<double>(Clock::now() - t0).count());
  }
  return best_s;
}

double time_quantized(const ConvShape& shape) {
  // Synthetic unit-scale calibration: quantization parameters change only
  // the epilogue multipliers, never the instruction stream, so unit scales
  // time like calibrated ones.
  LayerQuant quant;
  quant.quantize = true;
  const Tensor kernel({shape.c, shape.n, shape.r, shape.s});
  const auto plan = compile_quantized_conv_plan(shape, kernel, quant);
  const Tensor x({shape.c, shape.h, shape.w});
  Tensor y({shape.n, shape.out_h(), shape.out_w()});
  std::vector<float> ws(
      static_cast<std::size_t>(plan->workspace_bytes() / sizeof(float)));
  plan->run(x, &y, ws);  // warm-up
  double best_s = 1e300;
  for (int rep = 0; rep < 2; ++rep) {
    const auto t0 = Clock::now();
    plan->run(x, &y, ws);
    best_s = std::min(
        best_s, std::chrono::duration<double>(Clock::now() - t0).count());
  }
  return best_s;
}

}  // namespace

std::string AutotuneCostProvider::cache_key() const {
  // Thread count keys the winner table directly; the host calibration
  // steers the shortlist ranking; the generation invalidates decisions made
  // before an autotune_clear(). All three enter the provenance so a
  // re-calibrated or re-tuned process never hits a PlanCache entry whose
  // plan was chosen under superseded state.
  std::int64_t generation = 0;
  {
    TunerState& s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    generation = s.generation;
  }
  const HostCalibration cal = host_calibration();
  char buf[112];
  std::snprintf(buf, sizeof(buf), "autotune;gen=%lld;t=%d;g=%.6g;b=%.6g",
                static_cast<long long>(generation), num_threads(),
                cal.gflops, cal.gbs);
  return buf;
}

ConvAlgo AutotuneCostProvider::resolve(const DeviceSpec& device,
                                       const ConvShape& shape) const {
  const std::vector<ConvAlgo> candidates = dense_algo_candidates(shape);
  TunerState& s = state();
  const std::string key = entry_key(shape, candidates, num_threads());
  {
    std::lock_guard<std::mutex> lock(s.mu);
    ensure_cache_loaded_locked();
    ++s.stats.resolves;
    if (const auto it = s.winners.find(key); it != s.winners.end()) {
      ++s.stats.table_hits;
      return it->second;
    }
  }

  // Rank by the host model's estimate and keep only the candidates close
  // enough to the leader to plausibly win a measurement. Timing runs
  // outside the lock: a concurrent resolve of a memoized shape must not
  // stall behind hundreds of milliseconds of candidate runs.
  std::vector<std::pair<double, ConvAlgo>> ranked;
  for (const ConvAlgo algo : candidates) {
    ranked.emplace_back(host_conv_cost_s(algo, shape), algo);
  }
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  const double leader_s = ranked.front().first;
  std::vector<ConvAlgo> shortlist;
  for (const auto& [est_s, algo] : ranked) {
    if (static_cast<int>(shortlist.size()) == kMaxTimedCandidates ||
        est_s > leader_s * kEstimateGate) {
      break;
    }
    shortlist.push_back(algo);
  }

  ConvAlgo winner = shortlist.front();
  std::int64_t timed = 0;
  if (shortlist.size() > 1) {
    double best_s = 1e300;
    for (const ConvAlgo algo : shortlist) {
      const double t = time_candidate(algo, device, shape);
      ++timed;
      if (t < best_s) {  // earlier (better-estimated) candidate wins ties
        best_s = t;
        winner = algo;
      }
    }
  }

  std::lock_guard<std::mutex> lock(s.mu);
  s.stats.timed_candidates += timed;
  // On a race the first insert wins and this measurement is discarded, so
  // every caller still sees one winner per key.
  const auto [it, inserted] = s.winners.emplace(key, winner);
  s.stats.entries = static_cast<std::int64_t>(s.winners.size());
  if (inserted && !s.cache_path.empty() && !save_locked(s.cache_path) &&
      !s.save_warned) {
    std::fprintf(stderr,
                 "tdc: cannot write TDC_AUTOTUNE_CACHE file '%s'; autotune "
                 "winners will not persist\n",
                 s.cache_path.c_str());
    s.save_warned = true;
  }
  return it->second;
}

Precision AutotuneCostProvider::resolve_precision(
    const DeviceSpec& device, const ConvShape& shape) const {
  if (shape.batch != 1) {
    // Candidate timing runs single-image plans; estimate instead.
    return host_conv_cost_s8_s(shape) <
                   host_conv_cost_s(resolve(device, shape), shape)
               ? Precision::kInt8
               : Precision::kFp32;
  }
  TunerState& s = state();
  const std::string key = "prec|" + entry_key(shape, {}, num_threads());
  {
    std::lock_guard<std::mutex> lock(s.mu);
    if (const auto it = s.precisions.find(key); it != s.precisions.end()) {
      return it->second;
    }
  }
  const ConvAlgo fp32_algo = resolve(device, shape);
  const double fp32_s = time_candidate(fp32_algo, device, shape);
  const double s8_s = time_quantized(shape);
  const Precision winner =
      s8_s < fp32_s ? Precision::kInt8 : Precision::kFp32;
  std::lock_guard<std::mutex> lock(s.mu);
  s.stats.timed_candidates += 2;
  // First insert wins on a race, like the algorithm table.
  return s.precisions.emplace(key, winner).first->second;
}

const CostProvider& autotune_cost_provider() {
  static const AutotuneCostProvider provider;
  return provider;
}

AutotuneStats autotune_stats() {
  TunerState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.stats.entries = static_cast<std::int64_t>(s.winners.size());
  return s.stats;
}

void autotune_clear() {
  TunerState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.winners.clear();
  s.precisions.clear();
  s.stats = AutotuneStats{};
  s.env_checked = false;
  s.save_warned = false;
  s.cache_path.clear();
  ++s.generation;
}

bool autotune_save(const std::string& path) {
  TunerState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  return save_locked(path);
}

bool autotune_load(const std::string& path) {
  TunerState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  const CacheLoad r = load_locked(path);
  if (r == CacheLoad::kWrongVersion || r == CacheLoad::kCorrupt) {
    // The explicit API reports integrity failures as a typed error (the
    // env-driven load instead quarantines and silently re-tunes, because
    // serving must survive a bad cache file). The file is quarantined
    // either way so the next save starts clean.
    quarantine_locked(path, cache_load_problem(r));
    throw Error("autotune cache '" + path + "' " + cache_load_problem(r),
                ErrorCode::kDataCorruption);
  }
  return r == CacheLoad::kOk;
}

std::vector<std::pair<std::string, ConvAlgo>> autotune_table() {
  TunerState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  return {s.winners.begin(), s.winners.end()};
}

}  // namespace tdc
