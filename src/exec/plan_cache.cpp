#include "exec/plan_cache.h"

#include <cstdio>
#include <utility>

#include "common/check.h"
#include "exec/cost_provider.h"
#include "exec/quantize.h"
#include "tucker/tucker.h"

namespace tdc {

namespace {

std::uint64_t fnv1a(const void* data, std::size_t bytes, std::uint64_t h) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

void append_shape(std::string* key, const ConvShape& s) {
  for (const std::int64_t v : {s.c, s.n, s.h, s.w, s.r, s.s, s.pad_h, s.pad_w,
                               s.stride_h, s.stride_w, s.batch}) {
    *key += std::to_string(v);
    *key += ',';
  }
}

void append_u64(std::string* key, std::uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  *key += buf;
}

// The device enters the key as its name plus a digest of every numeric
// field: kAuto resolution and the TDC tiling depend on the full DeviceSpec,
// so two same-named specs with different parameters must not alias.
void append_device(std::string* key, const DeviceSpec& d) {
  *key += d.name;
  *key += ',';
  std::uint64_t h = 14695981039346656037ULL;
  const double fields[] = {static_cast<double>(d.sms),
                           static_cast<double>(d.max_threads_per_sm),
                           static_cast<double>(d.max_threads_per_block),
                           static_cast<double>(d.max_blocks_per_sm),
                           static_cast<double>(d.shared_mem_per_sm),
                           static_cast<double>(d.shared_mem_per_block),
                           static_cast<double>(d.regs_per_sm),
                           static_cast<double>(d.max_regs_per_thread),
                           d.peak_flops,
                           d.mem_bandwidth,
                           d.l2_bandwidth,
                           static_cast<double>(d.l2_capacity_bytes),
                           static_cast<double>(d.warp_size),
                           d.launch_overhead_s,
                           d.saturation_streams,
                           d.warps_for_issue,
                           d.warps_to_saturate_bw,
                           d.sync_latency_s,
                           d.load_stall_s,
                           d.atomic_penalty,
                           d.model_top_fraction};
  h = fnv1a(fields, sizeof(fields), h);
  append_u64(key, h);
}

// kAuto plans embed their *resolution provenance* — which cost provider
// picked the algorithm, under which calibration constants — so a plan tuned
// for the CPU engine is never served to a simulated-GPU compile of the same
// shape (or vice versa, or across re-calibrations). A pinned algorithm
// compiles to the identical artifact under every provider, so those requests
// share one entry.
void append_provenance(std::string* key, const CostProvider* cost,
                       ConvAlgo algo) {
  if (algo == ConvAlgo::kAuto) {
    *key += (cost != nullptr ? *cost : simulated_gpu_cost_provider())
                .cache_key();
  } else {
    *key += "pinned";
  }
}

}  // namespace

std::uint64_t tensor_fingerprint(const Tensor& t) {
  std::uint64_t h = 14695981039346656037ULL;
  for (const std::int64_t d : t.dims()) {
    h = fnv1a(&d, sizeof(d), h);
  }
  // FNV-1a folded over 8-byte blocks (cached compiles fingerprint every
  // weight tensor of a model, so byte-at-a-time hashing would dominate the
  // cache-hit path); the ragged tail goes through the byte variant.
  const auto* p = reinterpret_cast<const unsigned char*>(t.raw());
  std::size_t bytes = static_cast<std::size_t>(t.numel()) * sizeof(float);
  while (bytes >= sizeof(std::uint64_t)) {
    std::uint64_t block;
    __builtin_memcpy(&block, p, sizeof(block));
    h ^= block;
    h *= 1099511628211ULL;
    p += sizeof(block);
    bytes -= sizeof(block);
  }
  return fnv1a(p, bytes, h);
}

PlanCache& PlanCache::instance() {
  static PlanCache cache;
  return cache;
}

std::shared_ptr<const ConvPlan> PlanCache::lookup_or_insert(
    const std::string& key,
    const std::function<std::unique_ptr<ConvPlan>()>& compile) {
  // Single-flight compilation: the first caller of a key becomes its
  // compiler; every concurrent same-key caller waits on the in-flight entry
  // and shares the one artifact. Without this, N replicas cold-starting the
  // same model ran N duplicate Tucker decompositions (last-insert-wins) —
  // the thundering herd a serving fleet hits on deploy.
  std::shared_ptr<InFlight> flight;
  {
    std::unique_lock<std::mutex> lock(mu_);
    const auto it = plans_.find(key);
    if (it != plans_.end()) {
      ++hits_;
      return it->second;
    }
    const auto in = inflight_.find(key);
    if (in != inflight_.end()) {
      // Join the in-flight compile. Counted as a hit once it lands: this
      // caller compiled nothing, it shared another caller's artifact.
      flight = in->second;
      lock.unlock();
      std::unique_lock<std::mutex> wait_lock(flight->mu);
      flight->cv.wait(wait_lock, [&] { return flight->done; });
      if (flight->error) {
        // The compiler faulted; surface its error here too. The in-flight
        // entry is already gone, so a retry starts a fresh compile.
        std::rethrow_exception(flight->error);
      }
      std::shared_ptr<const ConvPlan> plan = flight->plan;
      wait_lock.unlock();
      std::lock_guard<std::mutex> stats_lock(mu_);
      ++hits_;
      return plan;
    }
    ++misses_;
    flight = std::make_shared<InFlight>();
    inflight_.emplace(key, flight);
  }
  // Compile outside the lock so concurrent sessions compiling *different*
  // layers don't serialize. A throw here (including allocation failure,
  // surfaced as kResourceExhausted) inserts nothing — the cache only ever
  // holds fully-compiled plans, so a faulted compile can simply be retried.
  std::shared_ptr<const ConvPlan> plan;
  try {
    plan = map_resource_failure("plan compilation", [&] { return compile(); });
  } catch (...) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      inflight_.erase(key);
    }
    std::lock_guard<std::mutex> flight_lock(flight->mu);
    flight->error = std::current_exception();
    flight->done = true;
    flight->cv.notify_all();
    throw;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    plans_.emplace(key, plan);
    inflight_.erase(key);
  }
  std::lock_guard<std::mutex> flight_lock(flight->mu);
  flight->plan = plan;
  flight->done = true;
  flight->cv.notify_all();
  return plan;
}

std::shared_ptr<const ConvPlan> PlanCache::get_or_compile(
    const ConvDescriptor& desc, const Tensor& kernel) {
  std::string key = "conv|";
  append_shape(&key, desc.shape);
  key += '|';
  key += std::to_string(static_cast<int>(desc.algo));
  key += '|';
  key += std::to_string(static_cast<int>(desc.weight_layout));
  key += '|';
  for (const std::int64_t v : {desc.tiling.th, desc.tiling.tw,
                               desc.tiling.tc}) {
    key += std::to_string(v);
    key += ',';
  }
  key += '|';
  append_device(&key, desc.device);
  key += '|';
  append_provenance(&key, desc.cost, desc.algo);
  key += '|';
  append_u64(&key, tensor_fingerprint(kernel));
  return lookup_or_insert(key,
                          [&] { return compile_conv_plan(desc, kernel); });
}

std::shared_ptr<const ConvPlan> PlanCache::get_or_compile_tucker(
    const TuckerDescriptor& desc, const Tensor& kernel_cnrs,
    const TuckerRanks& ranks) {
  std::string key = "tucker|";
  append_shape(&key, desc.shape);
  key += '|';
  key += std::to_string(static_cast<int>(desc.exec));
  key += ',';
  key += std::to_string(static_cast<int>(desc.core_algo));
  key += ',';
  key += std::to_string(desc.row_tile);
  key += '|';
  key += std::to_string(ranks.d1);
  key += ',';
  key += std::to_string(ranks.d2);
  key += '|';
  append_device(&key, desc.device);
  key += '|';
  // Only the staged executor resolves its core algorithm; the fused
  // pipeline's core is fixed, so its provenance is always "pinned".
  append_provenance(&key, desc.cost,
                    desc.exec == TuckerExec::kStaged ? desc.core_algo
                                                     : ConvAlgo::kIm2col);
  key += '|';
  append_u64(&key, tensor_fingerprint(kernel_cnrs));
  return lookup_or_insert(key, [&] {
    const TuckerFactors factors = tucker_decompose(kernel_cnrs, ranks);
    return compile_tucker_plan(desc, factors);
  });
}

std::shared_ptr<const ConvPlan> PlanCache::get_or_compile_s8(
    const ConvDescriptor& desc, const Tensor& kernel,
    const LayerQuant& quant) {
  // Quantized plans are always the int8 im2col pipeline — no algorithm or
  // tiling component — but the quant-parameter fingerprint joins the key so
  // two calibrations of one model compile distinct artifacts.
  std::string key = "conv8|";
  append_shape(&key, desc.shape);
  key += '|';
  append_device(&key, desc.device);
  key += '|';
  append_u64(&key, quant_fingerprint(quant));
  key += '|';
  append_u64(&key, tensor_fingerprint(kernel));
  return lookup_or_insert(key, [&] {
    return compile_quantized_conv_plan(desc.shape, kernel, quant);
  });
}

std::shared_ptr<const ConvPlan> PlanCache::get_or_compile_tucker_s8(
    const TuckerDescriptor& desc, const Tensor& kernel_cnrs,
    const TuckerRanks& ranks, const LayerQuant& quant) {
  std::string key = "tucker8|";
  append_shape(&key, desc.shape);
  key += '|';
  key += std::to_string(ranks.d1);
  key += ',';
  key += std::to_string(ranks.d2);
  key += '|';
  append_device(&key, desc.device);
  key += '|';
  append_u64(&key, quant_fingerprint(quant));
  key += '|';
  append_u64(&key, tensor_fingerprint(kernel_cnrs));
  return lookup_or_insert(key, [&] {
    const TuckerFactors factors = tucker_decompose(kernel_cnrs, ranks);
    return compile_quantized_tucker_plan(desc.shape, factors, quant);
  });
}

PlanCache::Stats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return Stats{hits_, misses_,
               static_cast<std::int64_t>(plans_.size())};
}

void PlanCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  plans_.clear();
  hits_ = 0;
  misses_ = 0;
}

}  // namespace tdc
