#include "exec/graph_plan.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <limits>
#include <new>
#include <thread>

#include "common/alloc_guard.h"
#include "common/annotations.h"
#include "common/check.h"
#include "common/fault.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "exec/host_cost.h"
#include "exec/op_plans.h"
#include "exec/plan_cache.h"
#include "exec/plan_impl.h"
#include "exec/quantize.h"
#include "exec/workspace_guard.h"
#include "tucker/tucker.h"

namespace tdc {

namespace {

// Graph-walk pointer fan-in cap: input pointers are gathered on the stack so
// the steady state stays allocation-free. Far above any real concat arity.
constexpr std::int64_t kMaxNodeInputs = 64;

OpShape conv_input_shape(const ConvShape& s) {
  return OpShape{s.c, s.h, s.w};
}

PoolDescriptor pool_descriptor(const LayerSpec& layer, const OpShape& in) {
  TDC_CHECK_MSG(layer.pool.window >= 1,
                "pool layer '" + layer.name + "' needs a window size");
  PoolDescriptor d;
  d.in = in;
  d.window_h = layer.pool.window;
  d.window_w = layer.pool.window;
  d.stride_h = layer.pool.stride;
  d.stride_w = layer.pool.stride;
  d.pad_h = layer.pool.pad;
  d.pad_w = layer.pool.pad;
  d.kind = layer.pool.max_pool ? PoolKind::kMax : PoolKind::kAvg;
  return d;
}

/// Resolved producer edges of layer i (the linear default when the spec
/// lists none; kModelInput = -1 for layer 0).
std::vector<std::int64_t> resolve_edges(const ModelSpec& model,
                                        std::int64_t i) {
  const LayerSpec& layer = model.layers[static_cast<std::size_t>(i)];
  if (layer.inputs.empty()) {
    return {i - 1};  // -1 is the model input
  }
  for (const std::int64_t j : layer.inputs) {
    TDC_CHECK_MSG(j >= 0 && j < i,
                  "layer '" + layer.name +
                      "' must reference earlier layers; got input " +
                      std::to_string(j));
  }
  TDC_CHECK_MSG(static_cast<std::int64_t>(layer.inputs.size()) <=
                    kMaxNodeInputs,
                "layer '" + layer.name + "' exceeds the fan-in cap");
  return layer.inputs;
}

/// Graph-wide shape propagation and validation — the single source of truth
/// for every per-kind geometry rule (chaining, concat planes, add shape
/// agreement, FC feature counts, fan-in arity). Both random_model_weights
/// (which needs channel counts before any weights exist) and
/// InferenceSession::compile consume it; plan compilation re-derives nothing.
std::vector<OpShape> infer_output_shapes(const ModelSpec& model) {
  TDC_CHECK_MSG(!model.layers.empty(), "empty model");
  TDC_CHECK_MSG(model.layers.front().kind == LayerKind::kConv,
                "the first layer must be a convolution (it defines the model "
                "input shape)");
  const OpShape model_in = conv_input_shape(model.layers.front().conv);
  std::vector<OpShape> out;
  out.reserve(model.layers.size());
  for (std::size_t i = 0; i < model.layers.size(); ++i) {
    const LayerSpec& layer = model.layers[i];
    const std::vector<std::int64_t> edges =
        resolve_edges(model, static_cast<std::int64_t>(i));
    auto in_shape = [&](std::size_t k) -> const OpShape& {
      const std::int64_t j = edges[k];
      return j < 0 ? model_in : out[static_cast<std::size_t>(j)];
    };
    const bool multi_input =
        layer.kind == LayerKind::kElementwise &&
        (layer.elt == EltOp::kAdd || layer.elt == EltOp::kAddRelu ||
         layer.elt == EltOp::kConcat);
    TDC_CHECK_MSG(multi_input || edges.size() == 1,
                  "layer '" + layer.name + "' takes one input, got " +
                      std::to_string(edges.size()));
    switch (layer.kind) {
      case LayerKind::kConv:
        TDC_CHECK_MSG(in_shape(0) == conv_input_shape(layer.conv),
                      "layer '" + layer.name + "' does not chain: input " +
                          in_shape(0).to_string() + " vs " +
                          layer.conv.to_string());
        out.push_back(OpShape{layer.conv.n, layer.conv.out_h(),
                              layer.conv.out_w()});
        break;
      case LayerKind::kPool: {
        const PoolDescriptor d = pool_descriptor(layer, in_shape(0));
        TDC_CHECK_MSG(d.valid(), "layer '" + layer.name +
                                     "' has invalid pooling geometry");
        out.push_back(OpShape{d.in.c, d.out_h(), d.out_w()});
        break;
      }
      case LayerKind::kGlobalPool:
        out.push_back(OpShape{in_shape(0).c, 1, 1});
        break;
      case LayerKind::kElementwise:
        if (layer.elt == EltOp::kConcat) {
          TDC_CHECK_MSG(edges.size() >= 2, "layer '" + layer.name +
                                               "' concat needs >= 2 inputs");
          OpShape s = in_shape(0);
          for (std::size_t k = 1; k < edges.size(); ++k) {
            TDC_CHECK_MSG(in_shape(k).h == s.h && in_shape(k).w == s.w,
                          "layer '" + layer.name +
                              "' concat inputs must share the plane");
            s.c += in_shape(k).c;
          }
          out.push_back(s);
        } else if (layer.elt == EltOp::kAdd || layer.elt == EltOp::kAddRelu) {
          TDC_CHECK_MSG(edges.size() >= 2, "layer '" + layer.name +
                                               "' add needs >= 2 inputs");
          for (std::size_t k = 1; k < edges.size(); ++k) {
            TDC_CHECK_MSG(in_shape(k) == in_shape(0),
                          "layer '" + layer.name +
                              "' add inputs must share one shape");
          }
          out.push_back(in_shape(0));
        } else {
          out.push_back(in_shape(0));
        }
        break;
      case LayerKind::kFullyConnected:
        TDC_CHECK_MSG(in_shape(0).floats() == layer.fc_in,
                      "layer '" + layer.name + "' expects " +
                          std::to_string(layer.fc_in) + " input features, " +
                          "producer yields " +
                          std::to_string(in_shape(0).floats()));
        out.push_back(OpShape{layer.fc_out, 1, 1});
        break;
    }
  }
  return out;
}

}  // namespace

std::vector<LayerWeights> random_model_weights(const ModelSpec& model,
                                               std::uint64_t seed) {
  const std::vector<OpShape> shapes = infer_output_shapes(model);
  Rng rng(seed);
  std::vector<LayerWeights> weights(model.layers.size());
  for (std::size_t i = 0; i < model.layers.size(); ++i) {
    const LayerSpec& layer = model.layers[i];
    LayerWeights& w = weights[i];
    switch (layer.kind) {
      case LayerKind::kConv: {
        const ConvShape& s = layer.conv;
        const float a = static_cast<float>(
            std::sqrt(6.0 / static_cast<double>(s.c * s.r * s.s)));
        w.conv_kernel =
            Tensor::random_uniform({s.c, s.n, s.r, s.s}, rng, -a, a);
        break;
      }
      case LayerKind::kElementwise:
        if (layer.elt == EltOp::kBatchNorm) {
          const std::int64_t c = shapes[i].c;
          w.bn_scale = Tensor::random_uniform({c}, rng, 0.7f, 1.3f);
          w.bn_shift = Tensor::random_uniform({c}, rng, -0.1f, 0.1f);
        }
        break;
      case LayerKind::kFullyConnected: {
        const float a = static_cast<float>(
            std::sqrt(6.0 / static_cast<double>(layer.fc_in)));
        w.fc_weight =
            Tensor::random_uniform({layer.fc_out, layer.fc_in}, rng, -a, a);
        w.fc_bias = Tensor::random_uniform({layer.fc_out}, rng, -0.05f, 0.05f);
        break;
      }
      default:
        break;
    }
  }
  return weights;
}

InferenceSession InferenceSession::compile(
    const DeviceSpec& device, const ModelSpec& model,
    const std::vector<LayerWeights>& weights,
    const std::vector<LayerDecision>& decisions,
    const SessionOptions& options) {
  // Compilation allocates heavily (packed weights, Tucker factors, plan
  // tables); a failed allocation surfaces as kResourceExhausted, and a throw
  // anywhere in the body leaves the shared PlanCache consistent — entries
  // already inserted are complete plans, the in-flight one is discarded.
  return map_resource_failure("InferenceSession::compile",
                              [&] { return compile_impl(device, model, weights,
                                                        decisions, options); });
}

InferenceSession InferenceSession::compile_impl(
    const DeviceSpec& device, const ModelSpec& model,
    const std::vector<LayerWeights>& weights,
    const std::vector<LayerDecision>& decisions,
    const SessionOptions& options) {
  TDC_CHECK_MSG(!model.layers.empty(), "empty model");
  TDC_CHECK_MSG(weights.size() == model.layers.size(),
                "need one LayerWeights entry per model layer");
  TDC_CHECK_MSG(model.layers.front().kind == LayerKind::kConv,
                "the first layer must be a convolution (it defines the model "
                "input shape)");

  // Align the decision list: one entry per convolution, or one per
  // decomposable (spatial-filter) convolution — run_codesign's natural
  // output for model.decomposable_conv_shapes().
  std::vector<const LayerDecision*> dec_for(model.layers.size(), nullptr);
  if (!decisions.empty()) {
    std::vector<std::size_t> conv_idx;
    std::vector<std::size_t> decomposable_idx;
    for (std::size_t i = 0; i < model.layers.size(); ++i) {
      const LayerSpec& l = model.layers[i];
      if (l.kind != LayerKind::kConv) {
        continue;
      }
      conv_idx.push_back(i);
      if (l.conv.r > 1 || l.conv.s > 1) {
        decomposable_idx.push_back(i);
      }
    }
    const std::vector<std::size_t>* target = nullptr;
    if (decisions.size() == conv_idx.size()) {
      target = &conv_idx;
    } else if (decisions.size() == decomposable_idx.size()) {
      target = &decomposable_idx;
    }
    TDC_CHECK_MSG(target != nullptr,
                  "decision list must cover every convolution (" +
                      std::to_string(conv_idx.size()) +
                      ") or every decomposable convolution (" +
                      std::to_string(decomposable_idx.size()) + "); got " +
                      std::to_string(decisions.size()));
    for (std::size_t k = 0; k < decisions.size(); ++k) {
      const LayerSpec& l = model.layers[(*target)[k]];
      TDC_CHECK_MSG(decisions[k].shape == l.conv,
                    "decision " + std::to_string(k) +
                        " does not match layer '" + l.name + "': " +
                        decisions[k].shape.to_string() + " vs " +
                        l.conv.to_string());
      dec_for[(*target)[k]] = &decisions[k];
    }
  }

  // One validation pass over the whole graph (edges, arity, chaining,
  // concat/add/FC geometry); plan compilation below only adds the
  // weight-tensor checks.
  const std::vector<OpShape> shapes = infer_output_shapes(model);

  // Sessions execute on the CPU engine, so kAuto defaults to the host cost
  // provider rather than the simulated-GPU pricing of the bare descriptor
  // API — that is what makes kAuto deployable without the historical
  // dense_algo = kIm2col pin.
  const CostProvider* cost = options.cost_provider != nullptr
                                 ? options.cost_provider
                                 : &host_cost_provider();

  InferenceSession s;
  s.input_shape_ = conv_input_shape(model.layers.front().conv);

  for (std::size_t i = 0; i < model.layers.size(); ++i) {
    deadline_poll("session compile layer boundary");
    if (fault_injected("exec.compile_alloc")) {
      throw std::bad_alloc();  // a layer's plan allocation failed
    }
    const LayerSpec& layer = model.layers[i];
    Node node;
    node.name = layer.name;
    node.inputs = resolve_edges(model, static_cast<std::int64_t>(i));
    std::vector<OpShape> ins;
    ins.reserve(node.inputs.size());
    for (const std::int64_t j : node.inputs) {
      ins.push_back(j == kModelInput
                        ? s.input_shape_
                        : shapes[static_cast<std::size_t>(j)]);
    }

    switch (layer.kind) {
      case LayerKind::kConv: {
        const Tensor& kernel = weights[i].conv_kernel;
        TDC_CHECK_MSG(kernel.rank() == 4 && kernel.dim(0) == layer.conv.c &&
                          kernel.dim(1) == layer.conv.n &&
                          kernel.dim(2) == layer.conv.r &&
                          kernel.dim(3) == layer.conv.s,
                      "layer '" + layer.name +
                          "' needs a CNRS kernel matching " +
                          layer.conv.to_string());
        const LayerDecision* dec = dec_for[i];
        const bool decomposed = dec != nullptr && dec->decomposed;
        // Precision selection: a calibrated layer compiles int8 when
        // TDC_INT8 forces it, or when the cost provider prices the
        // quantized engine cheaper — but never over a pinned
        // transform-domain algorithm (the quantized engine is im2col-only).
        const LayerQuant* lq = nullptr;
        if (options.quant != nullptr &&
            i < options.quant->layers.size() &&
            options.quant->layers[i].quantize) {
          lq = &options.quant->layers[i];
        }
        const ConvAlgo requested =
            decomposed ? options.tucker_core_algo : options.dense_algo;
        bool use_int8 = false;
        if (lq != nullptr &&
            (requested == ConvAlgo::kAuto || requested == ConvAlgo::kIm2col)) {
          const int mode = int8_mode();
          use_int8 = mode == 2 ||
                     (mode == 1 && cost->resolve_precision(
                                       device, layer.conv) == Precision::kInt8);
        }
        if (decomposed) {
          TuckerDescriptor desc;
          desc.shape = layer.conv;
          desc.exec = options.tucker_exec;
          desc.core_algo = options.tucker_core_algo;
          desc.device = device;
          desc.cost = cost;
          if (use_int8) {
            node.plan = options.use_plan_cache
                            ? PlanCache::instance().get_or_compile_tucker_s8(
                                  desc, kernel, dec->ranks, *lq)
                            : compile_quantized_tucker_plan(
                                  layer.conv,
                                  tucker_decompose(kernel, dec->ranks), *lq);
          } else if (options.use_plan_cache) {
            node.plan = PlanCache::instance().get_or_compile_tucker(
                desc, kernel, dec->ranks);
          } else {
            node.plan = compile_tucker_plan(
                desc, tucker_decompose(kernel, dec->ranks));
          }
        } else {
          ConvDescriptor desc;
          desc.shape = layer.conv;
          desc.algo = options.dense_algo;
          desc.device = device;
          desc.cost = cost;
          if (use_int8) {
            node.plan = options.use_plan_cache
                            ? PlanCache::instance().get_or_compile_s8(
                                  desc, kernel, *lq)
                            : compile_quantized_conv_plan(layer.conv, kernel,
                                                          *lq);
          } else if (options.use_plan_cache) {
            node.plan = PlanCache::instance().get_or_compile(desc, kernel);
          } else {
            node.plan = compile_conv_plan(desc, kernel);
          }
        }
        break;
      }
      case LayerKind::kPool:
        node.plan = compile_pool_plan(pool_descriptor(layer, ins[0]));
        break;
      case LayerKind::kGlobalPool:
        node.plan = compile_global_pool_plan(
            ins[0], layer.pool.max_pool ? PoolKind::kMax : PoolKind::kAvg);
        break;
      case LayerKind::kElementwise:
        switch (layer.elt) {
          case EltOp::kRelu:
            node.plan = compile_relu_plan(ins[0]);
            break;
          case EltOp::kBatchNorm:
            TDC_CHECK_MSG(!weights[i].bn_scale.empty() &&
                              !weights[i].bn_shift.empty(),
                          "layer '" + layer.name +
                              "' needs folded bn_scale/bn_shift weights");
            node.plan = compile_batchnorm_plan(ins[0], weights[i].bn_scale,
                                               weights[i].bn_shift);
            break;
          case EltOp::kAdd:
          case EltOp::kAddRelu:
            node.plan = compile_add_plan(
                ins[0], static_cast<std::int64_t>(ins.size()),
                layer.elt == EltOp::kAddRelu);
            break;
          case EltOp::kConcat:
            node.plan = compile_concat_plan(ins);
            break;
        }
        break;
      case LayerKind::kFullyConnected: {
        const Tensor& w = weights[i].fc_weight;
        TDC_CHECK_MSG(w.rank() == 2 && w.dim(0) == layer.fc_out &&
                          w.dim(1) == layer.fc_in,
                      "layer '" + layer.name + "' needs an [out, in] weight");
        node.plan = compile_fc_plan(w, weights[i].fc_bias);
        break;
      }
    }

    TDC_CHECK_MSG(node.plan->output_shape() == shapes[i],
                  "layer '" + layer.name +
                      "' plan geometry diverged from shape propagation");
    s.plan_ws_floats_ = std::max(
        s.plan_ws_floats_,
        node.plan->workspace_bytes() /
            static_cast<std::int64_t>(sizeof(float)));
    s.nodes_.push_back(std::move(node));
  }
  s.output_shape_ = s.nodes_.back().plan->output_shape();

  // Liveness-planned activation arena: node i's output occupies a block of
  // the arena for exactly [i, last consumer]; first-fit placement over the
  // blocks still live keeps skips and branches resident without the arena
  // growing to the sum of all activations. The final node writes the
  // caller's output directly. With the workspace guard on (frozen here for
  // the session's lifetime), every block is padded with leading/trailing
  // canary bands that run_graph fills and checks around each op.
  s.guard_bands_ = workspace_guard_enabled();
  const std::int64_t band =
      s.guard_bands_ ? detail::kWsGuardBandFloats : 0;
  const std::int64_t n = s.num_ops();
  std::vector<std::int64_t> last_use(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    last_use[static_cast<std::size_t>(i)] = i;
    for (const std::int64_t j : s.nodes_[static_cast<std::size_t>(i)].inputs) {
      if (j != kModelInput) {
        last_use[static_cast<std::size_t>(j)] = i;
      }
    }
  }
  struct Block {
    std::int64_t offset;
    std::int64_t floats;
    std::int64_t last_use;
  };
  std::vector<Block> live;  // sorted by offset
  for (std::int64_t i = 0; i + 1 < n; ++i) {
    std::erase_if(live, [&](const Block& b) { return b.last_use < i; });
    const std::int64_t size =
        s.nodes_[static_cast<std::size_t>(i)].plan->output_shape().floats() +
        2 * band;
    std::int64_t offset = 0;
    for (const Block& b : live) {
      if (offset + size <= b.offset) {
        break;  // fits in the gap before this block
      }
      offset = std::max(offset, b.offset + b.floats);
    }
    const Block placed{offset, size, last_use[static_cast<std::size_t>(i)]};
    live.insert(std::upper_bound(live.begin(), live.end(), placed,
                                 [](const Block& a, const Block& b) {
                                   return a.offset < b.offset;
                                 }),
                placed);
    s.nodes_[static_cast<std::size_t>(i)].arena_offset = offset + band;
    s.arena_floats_ = std::max(s.arena_floats_, offset + size);
  }
  return s;
}

std::int64_t InferenceSession::workspace_bytes() const {
  const std::int64_t band =
      guard_bands_ ? detail::kWsGuardBandFloats : 0;
  return (arena_floats_ + plan_ws_floats_ + band) *
         static_cast<std::int64_t>(sizeof(float));
}

std::int64_t InferenceSession::batch_slots(std::int64_t batch) const {
  return detail::batch_slots(batch, std::max(num_threads(), 1));
}

std::int64_t InferenceSession::batched_workspace_bytes(
    std::int64_t batch) const {
  TDC_CHECK(batch >= 1);
  return batch_slots(batch) * workspace_bytes();
}

TDC_RUN_PATH void InferenceSession::run_graph(const float* x, float* y,
                                 std::span<float> workspace) const {
  const bool screen_finite = check_finite_enabled();
  float* arena = workspace.data();
  const std::span<float> plan_ws = workspace.subspan(
      static_cast<std::size_t>(arena_floats_),
      static_cast<std::size_t>(plan_ws_floats_));
  // Tail canary band of the shared plan-workspace slab (guarded sessions
  // only; workspace_bytes() reserved it).
  float* const ws_tail = arena + arena_floats_ + plan_ws_floats_;
  const std::int64_t band = guard_bands_ ? detail::kWsGuardBandFloats : 0;
  const float* ptrs[kMaxNodeInputs];
  const std::int64_t last = num_ops() - 1;
  // The whole graph walk is an allocation-free region: every plan's
  // run_node, the parallel fan-outs they open, and the GEMM bands inside
  // them must live off the preallocated workspace alone.
  DenyAllocGuard alloc_guard("InferenceSession::run");
  if (fault_injected("exec.run_hidden_alloc")) {
    // Planted hidden allocation (fault-injection tests): the armed guard
    // must convert this into a typed error; disarmed it is freed again
    // immediately. The atomic escape keeps the compiler from eliding the
    // paired new/delete.
    static std::atomic<float*> sink{nullptr};
    sink.store(new float[16],  // tdc-lint: allow(raw-new-array, run-path-alloc)
               std::memory_order_relaxed);
    delete[] sink.exchange(nullptr, std::memory_order_relaxed);
  }
  for (std::int64_t i = 0; i <= last; ++i) {
    const Node& node = nodes_[static_cast<std::size_t>(i)];
    // Cooperative cancellation between ops: an expired budget throws here
    // (and between GEMM bands inside the conv plans) rather than hanging the
    // caller; no op is left half-run, only caller scratch holds stale data.
    deadline_poll("session op boundary");
    {
      double delay_ms = 0.0;
      if (fault_injected("exec.op_delay", &delay_ms)) {
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(delay_ms));
      }
    }
    for (std::size_t k = 0; k < node.inputs.size(); ++k) {
      const std::int64_t j = node.inputs[k];
      ptrs[k] = j == kModelInput
                    ? x
                    : arena + nodes_[static_cast<std::size_t>(j)].arena_offset;
    }
    float* out = i == last ? y : arena + node.arena_offset;
    const std::int64_t out_floats = node.plan->output_shape().floats();
    if (band > 0) {
      // Re-fill the bands around the block this op is about to write (the
      // arena reuses space, so a band may hold a dead block's old data) and
      // the plan-workspace tail, then check them right after the op: an
      // overrun is reported at the op that committed it, before the
      // trampled bytes can become a later op's input.
      if (i != last) {
        detail::ws_guard_fill(out - band, band);
        detail::ws_guard_fill(out + out_floats, band);
      }
      detail::ws_guard_fill(ws_tail, band);
    }
    node.plan->run_inputs(
        std::span<const float* const>(ptrs, node.inputs.size()), out,
        plan_ws);
    if (i != last && fault_injected("exec.op_overrun")) {
      // Planted one-element overrun into the trailing band (tests).
      out[out_floats] = 0.0f;
    }
    if (band > 0) {
      if (i != last && !detail::ws_guard_intact(out + out_floats, band)) {
        detail::ws_guard_violation(node.name.c_str(), "trailing arena band");
      }
      if (i != last && !detail::ws_guard_intact(out - band, band)) {
        detail::ws_guard_violation(node.name.c_str(), "leading arena band");
      }
      if (!detail::ws_guard_intact(ws_tail, band)) {
        detail::ws_guard_violation(node.name.c_str(),
                                   "plan workspace tail band");
      }
    }
    if (fault_injected("exec.op_nan")) {
      out[0] = std::numeric_limits<float>::quiet_NaN();
    }
    if (screen_finite && !all_finite(out, out_floats)) {
      AllowAllocScope allow;  // cold path: the error message may allocate
      throw Error("op '" + node.name +
                      "' produced non-finite output (TDC_CHECK_FINITE)",
                  ErrorCode::kDataCorruption);
    }
  }
}

TDC_RUN_PATH void InferenceSession::run(const Tensor& x, Tensor* y,
                                        std::span<float> workspace) const {
  TDC_CHECK_MSG(operand_matches(x, input_shape_),
                "session input does not match " + input_shape_.to_string());
  TDC_CHECK_MSG(y != nullptr && operand_matches(*y, output_shape_),
                "session output must be a preallocated " +
                    output_shape_.to_string() + " tensor");
  TDC_CHECK_MSG(static_cast<std::int64_t>(workspace.size()) *
                        static_cast<std::int64_t>(sizeof(float)) >=
                    workspace_bytes(),
                "session workspace too small: need " +
                    std::to_string(workspace_bytes()) + " bytes");
  if (check_finite_enabled() && !all_finite(x.raw(), x.numel())) {
    throw Error("session input contains non-finite values "
                "(TDC_CHECK_FINITE)",
                ErrorCode::kInvalidArgument);
  }
  run_graph(x.raw(), y->raw(),
            workspace.first(static_cast<std::size_t>(workspace_bytes() /
                                                     sizeof(float))));
}

TDC_RUN_PATH void InferenceSession::run(const Tensor& x, Tensor* y,
                                        std::span<float> workspace,
                                        const Deadline& deadline) const {
  DeadlineScope scope(deadline);
  run(x, y, workspace);
}

Tensor InferenceSession::run(const Tensor& x) const {
  Tensor y({output_shape_.c, output_shape_.h, output_shape_.w});
  std::vector<float> workspace = map_resource_failure(
      "InferenceSession::run workspace", [&] {
        if (fault_injected("exec.run_alloc")) {
          throw std::bad_alloc();  // the convenience workspace failed
        }
        return std::vector<float>(
            static_cast<std::size_t>(workspace_bytes() / sizeof(float)));
      });
  run(x, &y, workspace);
  return y;
}

TDC_RUN_PATH void InferenceSession::run_batched(
    const Tensor& x, Tensor* y, std::span<float> workspace) const {
  TDC_CHECK_MSG(x.rank() == 4 && x.dim(1) == input_shape_.c &&
                    x.dim(2) == input_shape_.h && x.dim(3) == input_shape_.w,
                "batched session input must be [B, C, H, W]");
  const std::int64_t batch = x.dim(0);
  TDC_CHECK_MSG(y != nullptr && y->rank() == 4 && y->dim(0) == batch &&
                    y->dim(1) == output_shape_.c &&
                    y->dim(2) == output_shape_.h &&
                    y->dim(3) == output_shape_.w,
                "batched session output must be [B, C', H', W']");
  const std::int64_t ws_floats = static_cast<std::int64_t>(workspace.size());
  const std::int64_t per_slot =
      workspace_bytes() / static_cast<std::int64_t>(sizeof(float));
  TDC_CHECK_MSG(ws_floats * static_cast<std::int64_t>(sizeof(float)) >=
                    workspace_bytes(),
                "batched session workspace too small: need at least "
                "workspace_bytes() for one slot");
  if (check_finite_enabled() && !all_finite(x.raw(), x.numel())) {
    throw Error("batched session input contains non-finite values "
                "(TDC_CHECK_FINITE)",
                ErrorCode::kInvalidArgument);
  }

  const std::int64_t x_stride = input_shape_.floats();
  const std::int64_t y_stride = output_shape_.floats();
  // The fan-out itself must not allocate; the guard rides into the pool
  // workers, and each image's graph walk re-arms it with the session site.
  DenyAllocGuard alloc_guard("InferenceSession::run_batched");
  detail::run_slotted(
      batch, detail::clamped_batch_slots(batch, per_slot, ws_floats),
      workspace, per_slot, [&](std::int64_t b, std::span<float> slot_ws) {
        run_graph(x.raw() + b * x_stride, y->raw() + b * y_stride, slot_ws);
      });
}

TDC_RUN_PATH void InferenceSession::run_batched(
    const Tensor& x, Tensor* y, std::span<float> workspace,
    const Deadline& deadline) const {
  DeadlineScope scope(deadline);
  run_batched(x, y, workspace);
}

}  // namespace tdc
