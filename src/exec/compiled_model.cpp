#include "exec/compiled_model.h"

#include <algorithm>

#include "common/check.h"
#include "common/parallel.h"
#include "exec/plan_impl.h"
#include "tucker/tucker.h"

namespace tdc {

CompiledModel CompiledModel::compile(const DeviceSpec& device,
                                     const std::vector<LayerDecision>& decisions,
                                     const std::vector<Tensor>& kernels_cnrs,
                                     const CompiledModelOptions& options) {
  TDC_CHECK_MSG(!decisions.empty(), "empty decision list");
  TDC_CHECK_MSG(decisions.size() == kernels_cnrs.size(),
                "need one kernel tensor per layer decision");

  CompiledModel model;
  model.max_slots_ = std::max(num_threads(), 1);
  for (std::size_t i = 0; i < decisions.size(); ++i) {
    const LayerDecision& dec = decisions[i];
    TDC_CHECK_MSG(dec.shape.valid(),
                  "invalid layer shape " + dec.shape.to_string());
    if (i > 0) {
      const ConvShape& prev = decisions[i - 1].shape;
      TDC_CHECK_MSG(dec.shape.c == prev.n && dec.shape.h == prev.out_h() &&
                        dec.shape.w == prev.out_w(),
                    "layer " + std::to_string(i) + " does not chain: " +
                        dec.shape.to_string() + " after " + prev.to_string());
    }

    std::unique_ptr<ConvPlan> plan;
    if (dec.decomposed) {
      const TuckerFactors factors =
          tucker_decompose(kernels_cnrs[i], dec.ranks);
      TuckerDescriptor desc;
      desc.shape = dec.shape;
      desc.exec = options.tucker_exec;
      desc.core_algo = options.tucker_core_algo;
      desc.device = device;
      plan = compile_tucker_plan(desc, factors);
    } else {
      ConvDescriptor desc;
      desc.shape = dec.shape;
      desc.algo = options.dense_algo;
      desc.device = device;
      plan = compile_conv_plan(desc, kernels_cnrs[i]);
    }
    model.plan_ws_floats_ = std::max<std::int64_t>(
        model.plan_ws_floats_,
        plan->workspace_bytes() / static_cast<std::int64_t>(sizeof(float)));
    model.layers_.push_back(std::move(plan));

    // Intermediate activations only — the last layer writes the caller's y.
    if (i + 1 < decisions.size()) {
      const std::int64_t out_floats =
          dec.shape.n * dec.shape.out_h() * dec.shape.out_w();
      model.act_floats_ = std::max(model.act_floats_, out_floats);
    }
  }
  return model;
}

const ConvShape& CompiledModel::output_shape() const {
  return layers_.back()->shape();
}

const ConvShape& CompiledModel::input_shape() const {
  return layers_.front()->shape();
}

std::int64_t CompiledModel::workspace_bytes() const {
  return (2 * act_floats_ + plan_ws_floats_) *
         static_cast<std::int64_t>(sizeof(float));
}

std::int64_t CompiledModel::batch_slots(std::int64_t batch) const {
  return detail::batch_slots(batch, max_slots_);
}

std::int64_t CompiledModel::batched_workspace_bytes(std::int64_t batch) const {
  TDC_CHECK(batch >= 1);
  return batch_slots(batch) * workspace_bytes();
}

void CompiledModel::run_chain(const float* x, float* y,
                              std::span<float> workspace) const {
  float* act_a = workspace.data();
  float* act_b = act_a + act_floats_;
  std::span<float> plan_ws = workspace.subspan(
      static_cast<std::size_t>(2 * act_floats_),
      static_cast<std::size_t>(plan_ws_floats_));

  const float* cur = x;
  const std::int64_t last = num_layers() - 1;
  for (std::int64_t i = 0; i <= last; ++i) {
    float* out = i == last ? y : (i % 2 == 0 ? act_a : act_b);
    layers_[i]->run_unchecked(cur, out, plan_ws);
    cur = out;
  }
}

void CompiledModel::run(const Tensor& x, Tensor* y,
                        std::span<float> workspace) const {
  const ConvShape& in = input_shape();
  const ConvShape& out = output_shape();
  TDC_CHECK_MSG(x.rank() == 3 && x.dim(0) == in.c && x.dim(1) == in.h &&
                    x.dim(2) == in.w,
                "model input does not match " + in.to_string());
  TDC_CHECK_MSG(y != nullptr && y->rank() == 3 && y->dim(0) == out.n &&
                    y->dim(1) == out.out_h() && y->dim(2) == out.out_w(),
                "model output must be a preallocated [N, OH, OW] tensor");
  TDC_CHECK_MSG(static_cast<std::int64_t>(workspace.size()) *
                        static_cast<std::int64_t>(sizeof(float)) >=
                    workspace_bytes(),
                "model workspace too small");
  run_chain(x.raw(), y->raw(),
            workspace.first(static_cast<std::size_t>(
                workspace_bytes() / sizeof(float))));
}

Tensor CompiledModel::run(const Tensor& x) const {
  const ConvShape& out = output_shape();
  Tensor y({out.n, out.out_h(), out.out_w()});
  std::vector<float> workspace(
      static_cast<std::size_t>(workspace_bytes() / sizeof(float)));
  run(x, &y, workspace);
  return y;
}

void CompiledModel::run_batched(const Tensor& x, Tensor* y,
                                std::span<float> workspace) const {
  const ConvShape& in = input_shape();
  const ConvShape& out = output_shape();
  TDC_CHECK_MSG(x.rank() == 4 && x.dim(1) == in.c && x.dim(2) == in.h &&
                    x.dim(3) == in.w,
                "batched model input must be [B, C, H, W]");
  const std::int64_t batch = x.dim(0);
  TDC_CHECK_MSG(y != nullptr && y->rank() == 4 && y->dim(0) == batch &&
                    y->dim(1) == out.n && y->dim(2) == out.out_h() &&
                    y->dim(3) == out.out_w(),
                "batched model output must be [B, N, OH, OW]");
  TDC_CHECK_MSG(static_cast<std::int64_t>(workspace.size()) *
                        static_cast<std::int64_t>(sizeof(float)) >=
                    batched_workspace_bytes(batch),
                "batched model workspace too small");

  const std::int64_t x_stride = in.c * in.h * in.w;
  const std::int64_t y_stride = out.n * out.out_h() * out.out_w();
  detail::run_slotted(
      batch, batch_slots(batch), workspace,
      workspace_bytes() / static_cast<std::int64_t>(sizeof(float)),
      [&](std::int64_t b, std::span<float> slot_ws) {
        run_chain(x.raw() + b * x_stride, y->raw() + b * y_stride, slot_ws);
      });
}

}  // namespace tdc
