#include "exec/compiled_model.h"

#include "common/check.h"

namespace tdc {

CompiledModel CompiledModel::compile(const DeviceSpec& device,
                                     const std::vector<LayerDecision>& decisions,
                                     const std::vector<Tensor>& kernels_cnrs,
                                     const CompiledModelOptions& options) {
  TDC_CHECK_MSG(!decisions.empty(), "empty decision list");
  TDC_CHECK_MSG(decisions.size() == kernels_cnrs.size(),
                "need one kernel tensor per layer decision");

  // Synthesize the convolution-only inventory the decision list describes
  // and let the graph compiler do the rest (chaining checks, arena
  // planning, plan-cache sharing).
  ModelSpec spec;
  spec.name = "conv-chain";
  std::vector<LayerWeights> weights(decisions.size());
  for (std::size_t i = 0; i < decisions.size(); ++i) {
    TDC_CHECK_MSG(decisions[i].shape.valid(),
                  "invalid layer shape " + decisions[i].shape.to_string());
    spec.layers.push_back(LayerSpec::make_conv("layer" + std::to_string(i),
                                               decisions[i].shape));
    weights[i].conv_kernel = kernels_cnrs[i];
  }

  SessionOptions session_options;
  session_options.tucker_exec = options.tucker_exec;
  session_options.dense_algo = options.dense_algo;
  session_options.tucker_core_algo = options.tucker_core_algo;
  session_options.cost_provider = options.cost_provider;
  session_options.use_plan_cache = options.use_plan_cache;

  CompiledModel model;
  model.session_ =
      InferenceSession::compile(device, spec, weights, decisions,
                                session_options);
  return model;
}

const ConvPlan& CompiledModel::plan(std::int64_t i) const {
  return dynamic_cast<const ConvPlan&>(session_.op(i));
}

const ConvShape& CompiledModel::output_shape() const {
  return plan(num_layers() - 1).shape();
}

const ConvShape& CompiledModel::input_shape() const { return plan(0).shape(); }

}  // namespace tdc
