// Compiled plans for the memory-bound layers between the convolutions.
//
// The end-to-end networks of the paper's Figures 8–9 interleave their
// convolutions with pooling, inference batch-norm, activations, residual
// adds, concats and a fully-connected head. These layers carry almost no
// FLOPs but sit on the serving path, so whole-model execution needs them
// under the same OpPlan contract as the convolutions: compile once, then
// replay allocation-free over caller-owned buffers with bit-reproducible
// results at any thread count.
//
// All factories validate geometry at compile time and return plans whose
// workspace is zero — these operators read their inputs and write their
// output, nothing else.
#pragma once

#include <memory>
#include <vector>

#include "exec/op_plan.h"

namespace tdc {

enum class PoolKind {
  kMax,  ///< window maximum; out-of-bounds taps are ignored
  kAvg,  ///< window mean over the in-bounds taps (count excludes padding)
};

/// Window-pooling geometry over a [C, H, W] input.
struct PoolDescriptor {
  OpShape in;
  std::int64_t window_h = 2;
  std::int64_t window_w = 2;
  std::int64_t stride_h = 2;
  std::int64_t stride_w = 2;
  std::int64_t pad_h = 0;
  std::int64_t pad_w = 0;
  PoolKind kind = PoolKind::kMax;

  std::int64_t out_h() const {
    return (in.h + 2 * pad_h - window_h) / stride_h + 1;
  }
  std::int64_t out_w() const {
    return (in.w + 2 * pad_w - window_w) / stride_w + 1;
  }
  bool valid() const {
    return in.c >= 1 && in.h >= 1 && in.w >= 1 && window_h >= 1 &&
           window_w >= 1 && stride_h >= 1 && stride_w >= 1 && pad_h >= 0 &&
           pad_w >= 0 && pad_h < window_h && pad_w < window_w &&
           in.h + 2 * pad_h >= window_h && in.w + 2 * pad_w >= window_w;
  }
};

/// Max/avg window pooling: [C, H, W] → [C, OH, OW].
std::unique_ptr<OpPlan> compile_pool_plan(const PoolDescriptor& desc);

/// Global pooling over the full plane: [C, H, W] → [C, 1, 1]. Average
/// pooling accumulates each plane in double, matching the autograd
/// GlobalAvgPool reference bit for bit.
std::unique_ptr<OpPlan> compile_global_pool_plan(const OpShape& in,
                                                 PoolKind kind = PoolKind::kAvg);

/// y = max(x, 0), elementwise.
std::unique_ptr<OpPlan> compile_relu_plan(const OpShape& shape);

/// y(c, h, w) = x(c, h, w) + bias(c); `bias` is [C].
std::unique_ptr<OpPlan> compile_bias_plan(const OpShape& shape,
                                          const Tensor& bias);

/// Inference batch normalization folded to one affine map per channel:
/// y(c, ·) = scale(c) · x(c, ·) + shift(c), optionally clamped at zero when
/// `fuse_relu` (the BN+ReLU pair every conv in the inventories carries).
std::unique_ptr<OpPlan> compile_batchnorm_plan(const OpShape& shape,
                                               const Tensor& scale,
                                               const Tensor& shift,
                                               bool fuse_relu = false);

/// The (scale, shift) folding of trained BN statistics:
///   scale = γ / √(var + ε),  shift = β − mean · scale.
struct FoldedBatchNorm {
  Tensor scale;  ///< [C]
  Tensor shift;  ///< [C]
};
FoldedBatchNorm fold_batchnorm(const Tensor& gamma, const Tensor& beta,
                               const Tensor& mean, const Tensor& var,
                               double eps = 1e-5);

/// y = Σ_i x_i over `num_inputs` same-shape inputs (the residual join),
/// optionally through ReLU (`fuse_relu` — ResNet's add_relu).
std::unique_ptr<OpPlan> compile_add_plan(const OpShape& shape,
                                         std::int64_t num_inputs = 2,
                                         bool fuse_relu = false);

/// Channel concatenation of same-plane inputs: [C_i, H, W]… → [ΣC_i, H, W]
/// (Inception branch joins, DenseNet feature reuse).
std::unique_ptr<OpPlan> compile_concat_plan(const std::vector<OpShape>& inputs);

/// Fully-connected head on the prepacked GEMM: y = W·x (+ b). `weight` is
/// [out, in], packed once at compile time; `bias` is [out] or empty. The
/// plan's input shape is {in, 1, 1} and its output {out, 1, 1} — the
/// flattening from the preceding [C, 1, 1] global pool is the identity.
std::unique_ptr<OpPlan> compile_fc_plan(const Tensor& weight,
                                        const Tensor& bias = Tensor());

}  // namespace tdc
