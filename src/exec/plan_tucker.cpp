// Tucker-pipeline plans (paper Eqs. 2–4, Figure 3).
//
// Both executors own every per-layer invariant of the decomposed pipeline:
// U1ᵀ, the [D2, D1·R·S] core-weight reshape, and U2 are packed into GEMM
// panels once at compile time, so a batched run packs nothing per image or
// per band (the ROADMAP multi-image-fusion item: the per-band panel packs of
// the old fused path are gone entirely).
//
//  * kFused — the row-band streamer: per output-row band the stage-1
//    pointwise runs only over the input rows the core convolution touches,
//    the core R×S GEMM consumes the band's patch matrix, and the stage-3
//    pointwise commits straight into the output. All intermediates live in
//    band-sized workspace. Numerically identical to the staged pipeline
//    with the im2col core.
//  * kStaged — materializes Z1/Z2 in workspace and runs the middle
//    convolution through a nested ConvPlan, so every core algorithm
//    (reference, im2col, Winograd, FFT, TDC core, auto) composes with the
//    decomposition.
#include <algorithm>
#include <memory>

#include "common/check.h"
#include "exec/conv_plan.h"
#include "linalg/gemm.h"
#include "tucker/flops.h"

namespace tdc {

namespace {

// Output-row band height targeting a cache-resident patch matrix
// (the largest scratch buffer) of at most ~1 MiB.
std::int64_t auto_row_tile(const ConvShape& core, std::int64_t oh) {
  const std::int64_t patch_row_bytes = core.c * core.r * core.s * core.out_w() * 4;
  const std::int64_t budget = std::int64_t{1} << 20;
  return std::clamp<std::int64_t>(budget / std::max<std::int64_t>(patch_row_bytes, 1),
                                  1, oh);
}

class FusedTuckerPlanImpl final : public ConvPlan {
 public:
  FusedTuckerPlanImpl(const ConvShape& shape, const TuckerFactors& factors,
                      std::int64_t row_tile)
      : ConvPlan(shape, ConvAlgo::kIm2col),
        ranks_(factors.ranks()),
        core_(core_conv_shape(shape, ranks_)) {
    const std::int64_t crs = ranks_.d1 * core_.r * core_.s;
    const Tensor core_w = conv_weight_matrix(factors.core, core_);
    packed_core_ = pack_gemm_a(ranks_.d2, crs, core_w.raw(), crs, 1);
    // U1 is stored [C, D1]; stage 1 reads it as U1ᵀ (stride swap).
    packed_u1_ = pack_gemm_a(ranks_.d1, shape.c, factors.u1.raw(), 1,
                             ranks_.d1);
    packed_u2_ = pack_gemm_a(shape.n, ranks_.d2, factors.u2.raw(), ranks_.d2,
                             1);
    row_tile_ = row_tile > 0 ? std::min(row_tile, shape.out_h())
                             : auto_row_tile(core_, shape.out_h());
  }

  bool decomposed() const override { return true; }

  std::int64_t workspace_bytes() const override {
    const std::int64_t ow = shape_.out_w();
    const std::int64_t slab_h = (row_tile_ - 1) * core_.stride_h + core_.r;
    const std::int64_t crs = ranks_.d1 * core_.r * core_.s;
    const std::int64_t floats = ranks_.d1 * slab_h * shape_.w +  // Z1 slab
                                crs * row_tile_ * ow +           // patch matrix
                                ranks_.d2 * row_tile_ * ow;      // Z2 band
    return floats * static_cast<std::int64_t>(sizeof(float));
  }

 protected:
  void run_image(const float* x, float* y,
                 std::span<float> workspace) const override {
    const std::int64_t oh = shape_.out_h();
    const std::int64_t ow = shape_.out_w();
    const std::int64_t w = shape_.w;
    const std::int64_t crs = ranks_.d1 * core_.r * core_.s;
    const std::int64_t slab_h_max = (row_tile_ - 1) * core_.stride_h + core_.r;

    float* z1_slab = workspace.data();
    float* cols = z1_slab + ranks_.d1 * slab_h_max * w;
    float* z2_band = cols + crs * row_tile_ * ow;

    for (std::int64_t oh0 = 0; oh0 < oh; oh0 += row_tile_) {
      const std::int64_t band_oh = std::min(row_tile_, oh - oh0);
      const std::int64_t hw_band = band_oh * ow;
      // Input rows the core convolution touches for this band; rows outside
      // [0, H) are the zero padding of the core stage, and the stage-1
      // pointwise maps zero rows to zero rows.
      const std::int64_t ih0 = oh0 * core_.stride_h - core_.pad_h;
      const std::int64_t slab_h = (band_oh - 1) * core_.stride_h + core_.r;
      const std::int64_t slab_hw = slab_h * w;
      const std::int64_t valid_lo = std::max<std::int64_t>(ih0, 0);
      const std::int64_t valid_hi = std::min(ih0 + slab_h, shape_.h);
      const std::int64_t pad_lo = (valid_lo - ih0) * w;   // leading zero cols
      const std::int64_t pad_hi =
          (ih0 + slab_h - std::max(valid_hi, valid_lo)) * w;  // trailing

      // Stage 1 on the slab only: Z1[D1, slab] = U1ᵀ · X[C, slab]. The input
      // row slab is read in place through the channel stride H·W; only the
      // padding rows are filled by hand.
      for (std::int64_t d1 = 0; d1 < ranks_.d1; ++d1) {
        float* row = z1_slab + d1 * slab_hw;
        std::fill(row, row + pad_lo, 0.0f);
        std::fill(row + slab_hw - pad_hi, row + slab_hw, 0.0f);
      }
      if (valid_hi > valid_lo) {
        gemm_prepacked(packed_u1_, (valid_hi - valid_lo) * w,
                       /*b=*/x + valid_lo * w, /*b_rs=*/shape_.h * w,
                       /*b_cs=*/1, /*c=*/z1_slab + pad_lo, /*ldc=*/slab_hw);
      }

      // Patch matrix of the band (im2col over the slab; pad_h is already
      // folded into the slab's zero rows, pad_w is applied here).
      for (std::int64_t row = 0; row < crs; ++row) {
        const std::int64_t d1 = row / (core_.r * core_.s);
        const std::int64_t r = (row / core_.s) % core_.r;
        const std::int64_t s = row % core_.s;
        const float* plane = z1_slab + d1 * slab_hw;
        float* out_row = cols + row * hw_band;
        for (std::int64_t b_h = 0; b_h < band_oh; ++b_h) {
          const std::int64_t lh = b_h * core_.stride_h + r;
          const float* in_row = plane + lh * w;
          float* out = out_row + b_h * ow;
          for (std::int64_t o_w = 0; o_w < ow; ++o_w) {
            const std::int64_t iw = o_w * core_.stride_w - core_.pad_w + s;
            out[o_w] = (iw >= 0 && iw < w) ? in_row[iw] : 0.0f;
          }
        }
      }

      // Core stage: Z2[D2, band] = Wcore[D2, D1·R·S] · cols.
      gemm_prepacked(packed_core_, hw_band, cols, hw_band, 1, z2_band,
                     hw_band);

      // Stage 3: Y[N, band] = U2[N, D2] · Z2, committed straight into the
      // output's row band through the plane stride OH·OW.
      gemm_prepacked(packed_u2_, hw_band, z2_band, hw_band, 1,
                     /*c=*/y + oh0 * ow, /*ldc=*/oh * ow);
    }
  }

 private:
  TuckerRanks ranks_;
  ConvShape core_;
  PackedGemmA packed_core_;
  PackedGemmA packed_u1_;
  PackedGemmA packed_u2_;
  std::int64_t row_tile_ = 1;
};

class StagedTuckerPlanImpl final : public ConvPlan {
 public:
  StagedTuckerPlanImpl(const ConvShape& shape, const TuckerFactors& factors,
                       std::unique_ptr<ConvPlan> core_plan)
      : ConvPlan(shape, core_plan->algo()),
        ranks_(factors.ranks()),
        core_plan_(std::move(core_plan)) {
    packed_u1_ = pack_gemm_a(ranks_.d1, shape.c, factors.u1.raw(), 1,
                             ranks_.d1);
    packed_u2_ = pack_gemm_a(shape.n, ranks_.d2, factors.u2.raw(), ranks_.d2,
                             1);
  }

  bool decomposed() const override { return true; }

  std::int64_t workspace_bytes() const override {
    const std::int64_t z1 = ranks_.d1 * shape_.h * shape_.w;
    const std::int64_t z2 = ranks_.d2 * shape_.out_h() * shape_.out_w();
    return (z1 + z2) * static_cast<std::int64_t>(sizeof(float)) +
           core_plan_->workspace_bytes();
  }

 protected:
  void run_image(const float* x, float* y,
                 std::span<float> workspace) const override {
    const std::int64_t hw = shape_.h * shape_.w;
    const std::int64_t ohw = shape_.out_h() * shape_.out_w();
    float* z1 = workspace.data();
    float* z2 = z1 + ranks_.d1 * hw;
    std::span<float> core_ws = workspace.subspan(
        static_cast<std::size_t>(ranks_.d1 * hw + ranks_.d2 * ohw));

    // Stage 1 (Eq. 2): Z1[D1, HW] = U1ᵀ · X.
    gemm_prepacked(packed_u1_, hw, x, hw, 1, z1, hw);
    // Core stage through the nested plan.
    core_plan_->run_unchecked(z1, z2, core_ws);
    // Stage 3 (Eq. 4): Y[N, OHW] = U2 · Z2.
    gemm_prepacked(packed_u2_, ohw, z2, ohw, 1, y, ohw);
  }

 private:
  TuckerRanks ranks_;
  std::unique_ptr<ConvPlan> core_plan_;
  PackedGemmA packed_u1_;
  PackedGemmA packed_u2_;
};

}  // namespace

std::unique_ptr<ConvPlan> compile_tucker_plan(const TuckerDescriptor& desc,
                                              const TuckerFactors& factors) {
  TDC_CHECK_MSG(desc.shape.valid(),
                "invalid convolution shape " + desc.shape.to_string());
  TDC_CHECK_MSG(desc.shape.batch == 1,
                "descriptors are single-image; batching happens in "
                "run_batched");
  TDC_CHECK_MSG(factors.u1.rank() == 2 && factors.u1.dim(0) == desc.shape.c,
                "U1 row count != C");
  TDC_CHECK_MSG(factors.u2.rank() == 2 && factors.u2.dim(0) == desc.shape.n,
                "U2 row count != N");
  const TuckerRanks ranks = factors.ranks();
  TDC_CHECK_MSG(factors.core.rank() == 4 &&
                    factors.core.dim(0) == ranks.d1 &&
                    factors.core.dim(1) == ranks.d2 &&
                    factors.core.dim(2) == desc.shape.r &&
                    factors.core.dim(3) == desc.shape.s,
                "core tensor does not match factors/shape");

  if (desc.exec == TuckerExec::kFused) {
    return std::make_unique<FusedTuckerPlanImpl>(desc.shape, factors,
                                                 desc.row_tile);
  }
  ConvDescriptor core_desc;
  core_desc.shape = core_conv_shape(desc.shape, ranks);
  core_desc.algo = desc.core_algo;
  core_desc.device = desc.device;
  core_desc.cost = desc.cost;
  return std::make_unique<StagedTuckerPlanImpl>(
      desc.shape, factors, compile_conv_plan(core_desc, factors.core));
}

}  // namespace tdc
