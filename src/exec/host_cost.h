// Host-aware algorithm selection: the CPU-engine cost model.
//
// resolve_conv_algo prices candidates for the *simulated GPU*, which on the
// CPU engine can hand a layer to the TDC-core functional emulator (orders of
// magnitude slower than im2col) — the reason serving callers used to pin
// dense_algo = kIm2col. HostCostProvider replaces that hand-pin with a
// first-order model of the engine's own kernels:
//
//   t(algo) ≈ GEMM-shaped flops / measured GEMM rate
//           + scalar-stage flops / (rate / scalar penalty)
//           + packing + transform traffic / measured bandwidth
//
// The two machine constants come from exec/microbench.h (measured once per
// process, or pinned via TDC_HOST_GFLOPS / TDC_HOST_GBS). The model is a
// ranking heuristic, not a simulator: its job is to keep catastrophic
// choices (the TDC emulator, CPU FFT with its C·N-spectra traffic) out of
// deployment and to call the close im2col-vs-Winograd races sensibly. The
// AutotuneCostProvider (exec/autotune.h) uses the same estimates to decide
// which candidates are worth timing for real.
#pragma once

#include "exec/cost_provider.h"

namespace tdc {

/// Estimated seconds for one whole-batch run of `algo` on `shape` on this
/// host, under the current host_calibration(). Returns +infinity for
/// non-deployable combinations (unsupported shape, kReference/kAuto, and
/// transform-domain algorithms on 1×1 filters).
double host_conv_cost_s(ConvAlgo algo, const ConvShape& shape);

/// Estimated seconds for one whole-batch run of the quantized im2col plan
/// (exec/quantize.h) on `shape`: GEMM ops over the measured int8 rate plus
/// the quantize/patch/dequantize traffic (u8 patches move 4× fewer bytes
/// than fp32, which is where int8 wins on memory-bound layers).
double host_conv_cost_s8_s(const ConvShape& shape);

class HostCostProvider final : public CostProvider {
 public:
  const char* name() const override { return "host"; }
  /// "host;g=<gflops>;b=<gbs>;q=<s8 gops>" — re-calibration (or a different
  /// env pin) changes the key, so plans chosen under different machine
  /// constants never alias in the PlanCache.
  std::string cache_key() const override;
  /// Argmin of host_conv_cost_s over dense_algo_candidates. The DeviceSpec
  /// is ignored: this provider prices the CPU the process runs on, not the
  /// descriptor's simulated target.
  ConvAlgo resolve(const DeviceSpec& device,
                   const ConvShape& shape) const override;
  /// kInt8 when host_conv_cost_s8_s beats the resolved fp32 algorithm's
  /// host_conv_cost_s (ties keep fp32 — exact arithmetic wins a dead heat).
  Precision resolve_precision(const DeviceSpec& device,
                              const ConvShape& shape) const override;
};

/// Process-wide instance (stateless beyond the shared calibration).
const CostProvider& host_cost_provider();

}  // namespace tdc
