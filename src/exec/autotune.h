// Microbenchmark-calibrated auto-tuner for ConvAlgo::kAuto.
//
// Where the host cost model (exec/host_cost.h) estimates, the autotuner
// measures: at plan-compile time it takes the 2–3 candidates the host model
// ranks cheapest (anything estimated ≥4× off the leader is not worth
// timing), compiles each as a throwaway plan over zero-filled buffers, times
// a couple of runs, and keeps the measured winner. Winners are memoized in a
// process-wide table keyed like the PlanCache — shape ⊕ candidate set ⊕
// thread count — so every layer shape is tuned at most once per process and
// resolution is deterministic within a process for a fixed TDC_NUM_THREADS.
//
// Optional persistence: when TDC_AUTOTUNE_CACHE=<path> is set, the table is
// loaded from that JSON file on first use and rewritten whenever a new
// winner lands, so cold sessions (a second replica, a restarted service)
// skip re-tuning entirely. The file format is versioned and checksummed and
// every save goes through a same-directory temp file plus atomic rename, so
// a crash mid-save never publishes a torn file; a file that fails its
// integrity check (or carries a different format version) is quarantined to
// <path>.corrupt and the process re-tunes instead of crashing.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "exec/cost_provider.h"

namespace tdc {

class AutotuneCostProvider final : public CostProvider {
 public:
  const char* name() const override { return "autotune"; }
  /// "autotune;gen=<generation>;t=<threads>;g=<gflops>;b=<gbs>": winners
  /// are memoized per thread count and shortlisted under the host
  /// calibration, and the generation counter advances on autotune_clear()
  /// — the only operation after which an already-resolved shape may get a
  /// different winner. Within one generation the table makes resolution
  /// stable, so the key needs no timing-dependent component.
  std::string cache_key() const override;
  /// Measured winner for `shape` (the DeviceSpec is ignored — candidates run
  /// on this host). Table hit → no timing at all; single-candidate shapes
  /// (e.g. pointwise layers, where only im2col survives the estimate gate)
  /// are also never timed.
  ConvAlgo resolve(const DeviceSpec& device,
                   const ConvShape& shape) const override;
  /// Measured fp32-vs-int8 duel: times the resolved fp32 plan against a
  /// quantized im2col plan at the same shape and memoizes the winner per
  /// shape ⊕ thread count (in-memory only — precision winners are not
  /// persisted to TDC_AUTOTUNE_CACHE; they re-measure per process).
  /// autotune_clear() forgets them like everything else. Batched shapes
  /// fall back to the host model's estimate.
  Precision resolve_precision(const DeviceSpec& device,
                              const ConvShape& shape) const override;
};

/// Process-wide instance (all state lives in the shared winner table).
const CostProvider& autotune_cost_provider();

struct AutotuneStats {
  std::int64_t resolves = 0;         ///< resolve() calls
  std::int64_t table_hits = 0;       ///< resolved from the memo table
  std::int64_t timed_candidates = 0; ///< candidate plans actually timed
  std::int64_t entries = 0;          ///< winner-table size
};
AutotuneStats autotune_stats();

/// Drops the winner table, resets the stats, and forgets the cached
/// TDC_AUTOTUNE_CACHE decision (the env is re-read — and the file re-loaded —
/// on the next resolve). For tests and benches.
void autotune_clear();

/// Explicit persistence (the TDC_AUTOTUNE_CACHE path uses these internally).
/// Both return false on I/O failure (including a missing file on load);
/// load merges entries into the table, in-memory winners taking priority.
/// A load of a file that exists but fails its version or checksum
/// validation quarantines it to <path>.corrupt and throws
/// Error(kDataCorruption); the env-driven implicit load quarantines
/// silently instead, so serving degrades to re-tuning.
bool autotune_save(const std::string& path);
bool autotune_load(const std::string& path);

/// Deterministically ordered snapshot of the winner table
/// (key → winning algorithm), for determinism tests and diagnostics.
std::vector<std::pair<std::string, ConvAlgo>> autotune_table();

}  // namespace tdc
