#include "exec/microbench.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <optional>
#include <vector>

#include "common/parallel.h"
#include "linalg/gemm.h"
#include "linalg/gemm_s8.h"

namespace tdc {

namespace {

using Clock = std::chrono::steady_clock;

double env_positive(const char* name, bool* from_env) {
  const char* v = std::getenv(name);
  if (v != nullptr && *v != '\0') {
    const double x = std::atof(v);
    if (x > 0.0) {
      *from_env = true;
      return x;
    }
  }
  *from_env = false;
  return 0.0;
}

std::mutex& calibration_mutex() {
  static std::mutex mu;
  return mu;
}

std::optional<HostCalibration>& calibration_slot() {
  static std::optional<HostCalibration> slot;
  return slot;
}

}  // namespace

double measure_gemm_gflops() {
  // The engine's own packed kernel on operands small enough to stay cache
  // resident: what the im2col / transform-domain GEMMs actually sustain,
  // SIMD width and thread fan-out included. ~14 MFLOP per rep.
  constexpr std::int64_t kDim = 192;
  std::vector<float> a(static_cast<std::size_t>(kDim * kDim), 1.0f);
  std::vector<float> b(static_cast<std::size_t>(kDim * kDim), 0.5f);
  std::vector<float> c(static_cast<std::size_t>(kDim * kDim), 0.0f);
  const double flop = 2.0 * kDim * kDim * kDim;
  gemm(kDim, kDim, kDim, a, b, c);  // warm-up: pool spin-up, page faults
  double best_s = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    const auto t0 = Clock::now();
    gemm(kDim, kDim, kDim, a, b, c);
    best_s = std::min(
        best_s, std::chrono::duration<double>(Clock::now() - t0).count());
  }
  return flop / best_s / 1e9;
}

double measure_stream_gbs() {
  // Out-of-cache streaming copy, the traffic pattern of im2col packing and
  // the transform scatter/gather stages. 32 MiB source + 32 MiB destination
  // defeats any L2/L3 this class of host has.
  constexpr std::int64_t kFloats = 8ll << 20;
  std::vector<float> src(static_cast<std::size_t>(kFloats), 1.0f);
  std::vector<float> dst(static_cast<std::size_t>(kFloats), 0.0f);
  const double bytes = 2.0 * static_cast<double>(kFloats) * sizeof(float);
  auto copy = [&] {
    parallel_for(0, kFloats, 1 << 16, [&](std::int64_t i0, std::int64_t i1) {
      std::memcpy(dst.data() + i0, src.data() + i0,
                  static_cast<std::size_t>(i1 - i0) * sizeof(float));
    });
  };
  copy();  // warm-up
  double best_s = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    const auto t0 = Clock::now();
    copy();
    best_s = std::min(
        best_s, std::chrono::duration<double>(Clock::now() - t0).count());
  }
  return bytes / best_s / 1e9;
}

double measure_gemm_s8_gops() {
  // The quantized serving kernel at the same L2-resident square as the fp32
  // measurement, prepacked A excluded from the timed region exactly like
  // serving (plans pack once at compile).
  constexpr std::int64_t kDim = 192;
  std::vector<std::int8_t> a(static_cast<std::size_t>(kDim * kDim), 3);
  std::vector<std::uint8_t> b(static_cast<std::size_t>(kDim * kDim), 5);
  std::vector<std::int32_t> c(static_cast<std::size_t>(kDim * kDim), 0);
  const PackedGemmAS8 packed = pack_gemm_a_s8(kDim, kDim, a.data(), kDim, 1);
  const double ops = 2.0 * kDim * kDim * kDim;
  gemm_prepacked_s8u8(packed, kDim, b.data(), kDim, 0, c.data(), kDim);
  double best_s = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    const auto t0 = Clock::now();
    gemm_prepacked_s8u8(packed, kDim, b.data(), kDim, 0, c.data(), kDim);
    best_s = std::min(
        best_s, std::chrono::duration<double>(Clock::now() - t0).count());
  }
  return ops / best_s / 1e9;
}

HostCalibration host_calibration() {
  std::lock_guard<std::mutex> lock(calibration_mutex());
  std::optional<HostCalibration>& slot = calibration_slot();
  if (!slot.has_value()) {
    HostCalibration cal;
    cal.gflops = env_positive("TDC_HOST_GFLOPS", &cal.gflops_from_env);
    cal.gbs = env_positive("TDC_HOST_GBS", &cal.gbs_from_env);
    cal.s8_gops = env_positive("TDC_HOST_S8_GOPS", &cal.s8_from_env);
    if (!cal.gflops_from_env) {
      cal.gflops = measure_gemm_gflops();
    }
    if (!cal.gbs_from_env) {
      cal.gbs = measure_stream_gbs();
    }
    if (!cal.s8_from_env) {
      cal.s8_gops = measure_gemm_s8_gops();
    }
    slot = cal;
  }
  return *slot;
}

void reset_host_calibration() {
  std::lock_guard<std::mutex> lock(calibration_mutex());
  calibration_slot().reset();
}

}  // namespace tdc
