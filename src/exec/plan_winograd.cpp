// Winograd F(2×2, 3×3) as a compiled plan — the cuDNN non-fused WINOGRAD
// structure: input transform, 16 transform-domain GEMMs, output transform.
//
// Standard minimal-filtering formulation (Lavin & Gray, 2016):
//   Y_tile = A^T [ (G g G^T) ⊙ (B^T d B) ] A
// with 4×4 input tiles d, 3×3 filters g, 2×2 output tiles, and the classic
// constant matrices B, G, A. Channel accumulation happens per transform
// point as a [N, C] × [C, P] GEMM over the P = tiles_h·tiles_w tile columns,
// which is where the engine's packed micro-kernel (and the per-plan filter
// transform + weight packing) replaces the seed's per-tile double-precision
// scalar loops.
#include <array>
#include <memory>

#include "common/check.h"
#include "common/parallel.h"
#include "exec/plan_impl.h"
#include "linalg/gemm.h"

namespace tdc::detail {

namespace {

using Tile4 = std::array<std::array<float, 4>, 4>;

// B^T d B for a 4×4 data tile.
// B^T = [1  0 -1  0; 0  1  1  0; 0 -1  1  0; 0  1  0 -1]
Tile4 input_transform(const Tile4& d) {
  Tile4 t{};  // t = B^T d
  for (int j = 0; j < 4; ++j) {
    t[0][j] = d[0][j] - d[2][j];
    t[1][j] = d[1][j] + d[2][j];
    t[2][j] = d[2][j] - d[1][j];
    t[3][j] = d[1][j] - d[3][j];
  }
  Tile4 u{};  // u = t B
  for (int i = 0; i < 4; ++i) {
    u[i][0] = t[i][0] - t[i][2];
    u[i][1] = t[i][1] + t[i][2];
    u[i][2] = t[i][2] - t[i][1];
    u[i][3] = t[i][1] - t[i][3];
  }
  return u;
}

// G g G^T for a 3×3 filter.
// G = [1 0 0; 1/2 1/2 1/2; 1/2 -1/2 1/2; 0 0 1]
Tile4 filter_transform(const std::array<std::array<float, 3>, 3>& g) {
  std::array<std::array<float, 3>, 4> t{};  // t = G g
  for (int j = 0; j < 3; ++j) {
    t[0][j] = g[0][j];
    t[1][j] = 0.5f * (g[0][j] + g[1][j] + g[2][j]);
    t[2][j] = 0.5f * (g[0][j] - g[1][j] + g[2][j]);
    t[3][j] = g[2][j];
  }
  Tile4 u{};  // u = t G^T
  for (int i = 0; i < 4; ++i) {
    u[i][0] = t[i][0];
    u[i][1] = 0.5f * (t[i][0] + t[i][1] + t[i][2]);
    u[i][2] = 0.5f * (t[i][0] - t[i][1] + t[i][2]);
    u[i][3] = t[i][2];
  }
  return u;
}

// A^T m A for the accumulated 4×4 transform-domain tile → 2×2 output.
// A^T = [1 1 1 0; 0 1 -1 -1]
std::array<std::array<float, 2>, 2> output_transform(const float m[16]) {
  std::array<std::array<float, 4>, 2> t{};  // t = A^T m
  for (int j = 0; j < 4; ++j) {
    t[0][j] = m[0 * 4 + j] + m[1 * 4 + j] + m[2 * 4 + j];
    t[1][j] = m[1 * 4 + j] - m[2 * 4 + j] - m[3 * 4 + j];
  }
  std::array<std::array<float, 2>, 2> y{};
  for (int i = 0; i < 2; ++i) {
    y[i][0] = t[i][0] + t[i][1] + t[i][2];
    y[i][1] = t[i][1] - t[i][2] - t[i][3];
  }
  return y;
}

class WinogradPlanImpl final : public ConvPlan {
 public:
  WinogradPlanImpl(const ConvShape& shape, const Tensor& kernel_cnrs)
      : ConvPlan(shape, ConvAlgo::kWinograd),
        tiles_h_((shape.out_h() + 1) / 2),
        tiles_w_((shape.out_w() + 1) / 2) {
    // Per-layer invariant: the 16 transform-domain weight matrices
    // U_k ∈ [N, C], each prepacked into GEMM panels.
    const std::int64_t c = shape.c;
    const std::int64_t n = shape.n;
    Tensor uk({16, n, c});
    for (std::int64_t ci = 0; ci < c; ++ci) {
      for (std::int64_t ni = 0; ni < n; ++ni) {
        std::array<std::array<float, 3>, 3> g{};
        for (int r = 0; r < 3; ++r) {
          for (int s = 0; s < 3; ++s) {
            g[static_cast<std::size_t>(r)][static_cast<std::size_t>(s)] =
                kernel_cnrs(ci, ni, r, s);
          }
        }
        const Tile4 u = filter_transform(g);
        for (int k = 0; k < 16; ++k) {
          uk(k, ni, ci) = u[static_cast<std::size_t>(k / 4)]
                           [static_cast<std::size_t>(k % 4)];
        }
      }
    }
    for (int k = 0; k < 16; ++k) {
      packed_u_[static_cast<std::size_t>(k)] =
          pack_gemm_a(n, c, uk.raw() + k * n * c, c, 1);
    }
  }

  std::int64_t workspace_bytes() const override {
    const std::int64_t p = tiles_h_ * tiles_w_;
    // V [16, C, P] input transforms + M [16, N, P] transform-domain outputs.
    return 16 * (shape_.c + shape_.n) * p *
           static_cast<std::int64_t>(sizeof(float));
  }

 protected:
  void run_image(const float* x, float* y,
                 std::span<float> workspace) const override {
    const std::int64_t c = shape_.c;
    const std::int64_t n = shape_.n;
    const std::int64_t oh = shape_.out_h();
    const std::int64_t ow = shape_.out_w();
    const std::int64_t p = tiles_h_ * tiles_w_;
    float* v = workspace.data();           // [16, C, P]
    float* m = v + 16 * c * p;             // [16, N, P]

    // Input transform: each (c, tile) gathers its 4×4 patch (zero outside
    // the image; conv padding is an index offset) and scatters the 16
    // transform points down V's k-major layout.
    parallel_for(0, p, 1, [&](std::int64_t t0, std::int64_t t1) {
      for (std::int64_t tile_id = t0; tile_id < t1; ++tile_id) {
        const std::int64_t th = tile_id / tiles_w_;
        const std::int64_t tw = tile_id % tiles_w_;
        for (std::int64_t ci = 0; ci < c; ++ci) {
          const float* plane = x + ci * shape_.h * shape_.w;
          Tile4 d{};
          for (int i = 0; i < 4; ++i) {
            const std::int64_t ih = th * 2 + i - shape_.pad_h;
            for (int j = 0; j < 4; ++j) {
              const std::int64_t iw = tw * 2 + j - shape_.pad_w;
              d[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
                  (ih >= 0 && ih < shape_.h && iw >= 0 && iw < shape_.w)
                      ? plane[ih * shape_.w + iw]
                      : 0.0f;
            }
          }
          const Tile4 u = input_transform(d);
          for (int k = 0; k < 16; ++k) {
            v[(k * c + ci) * p + tile_id] =
                u[static_cast<std::size_t>(k / 4)]
                 [static_cast<std::size_t>(k % 4)];
          }
        }
      }
    });

    // 16 transform-domain GEMMs: M_k[N, P] = U_k[N, C] · V_k[C, P].
    for (int k = 0; k < 16; ++k) {
      gemm_prepacked(packed_u_[static_cast<std::size_t>(k)], p, v + k * c * p,
                     p, 1, m + k * n * p, p);
    }

    // Output transform: every tile owns a disjoint 2×2 output patch.
    parallel_for(0, p, 1, [&](std::int64_t t0, std::int64_t t1) {
      for (std::int64_t tile_id = t0; tile_id < t1; ++tile_id) {
        const std::int64_t th = tile_id / tiles_w_;
        const std::int64_t tw = tile_id % tiles_w_;
        for (std::int64_t ni = 0; ni < n; ++ni) {
          float acc[16];
          for (int k = 0; k < 16; ++k) {
            acc[k] = m[(k * n + ni) * p + tile_id];
          }
          const auto out = output_transform(acc);
          for (int i = 0; i < 2; ++i) {
            const std::int64_t o_h = th * 2 + i;
            if (o_h >= oh) {
              break;
            }
            for (int j = 0; j < 2; ++j) {
              const std::int64_t o_w = tw * 2 + j;
              if (o_w >= ow) {
                break;
              }
              y[(ni * oh + o_h) * ow + o_w] =
                  out[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
            }
          }
        }
      }
    });
  }

 private:
  std::int64_t tiles_h_;
  std::int64_t tiles_w_;
  std::array<PackedGemmA, 16> packed_u_;
};

}  // namespace

std::unique_ptr<ConvPlan> make_winograd_plan(const ConvShape& shape,
                                             const Tensor& kernel_cnrs) {
  TDC_CHECK_MSG(conv_algo_supports(ConvAlgo::kWinograd, shape),
                "winograd requires a 3x3 stride-1 problem: " +
                    shape.to_string());
  return std::make_unique<WinogradPlanImpl>(shape, kernel_cnrs);
}

}  // namespace tdc::detail
