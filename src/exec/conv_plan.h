// Plan/execute convolution API — the deployment-facing layer.
//
// The paper's serving story is cuDNN-style: pick an algorithm (and, for the
// TDC kernel, a tiling) per layer once, then replay that decision over a
// stream of inference requests. This header is that lifecycle:
//
//   ConvDescriptor desc{.shape = layer, .algo = ConvAlgo::kAuto};
//   auto plan = compile_conv_plan(desc, kernel);        // once per layer
//   std::vector<float> ws(plan->workspace_bytes() / 4);
//   Tensor y({layer.n, layer.out_h(), layer.out_w()});
//   for (const Tensor& x : requests) plan->run(x, &y, ws);   // steady state
//
// A plan owns every per-layer invariant: the resolved algorithm, reshaped
// and GEMM-prepacked weights, precomputed Winograd/FFT transforms, the
// chosen TDC tiling or Tucker row band. run() touches only the caller's
// output and workspace — no allocation, no hidden state — so the steady
// state is allocation-free and bit-reproducible across calls and thread
// counts. The free functions in conv/conv.h are single-shot wrappers over
// these plans.
#pragma once

#include <cstdint>
#include <memory>
#include <span>

#include "conv/conv.h"
#include "core/tdc_kernel.h"
#include "gpusim/device.h"
#include "tensor/layout.h"
#include "tucker/tucker.h"

namespace tdc {

/// Everything needed to compile a dense-convolution plan. `algo` may be
/// ConvAlgo::kAuto, resolved by resolve_conv_algo against `device`;
/// `weight_layout` names the storage order of the kernel tensor handed to
/// compile_conv_plan; `tiling` pins the TDC core tiling (any field < 1
/// selects the analytical-model tiling, falling back to the smallest tile
/// when the device has no feasible launch for the shape).
struct ConvDescriptor {
  ConvShape shape;
  ConvAlgo algo = ConvAlgo::kAuto;
  KernelLayout weight_layout = KernelLayout::kCNRS;
  DeviceSpec device = make_a100();
  TdcTiling tiling{0, 0, 0};
};

/// How a Tucker-pipeline plan executes the three stages.
enum class TuckerExec {
  kFused,   ///< row-band streaming, all three stages per band (fastest)
  kStaged,  ///< materialized Z1/Z2 with a selectable core-stage plan
};

/// Compile request for the decomposed pipeline. `core_algo` picks the plan
/// of the staged middle convolution (kAuto allowed); the fused executor
/// always uses the banded im2col core. `row_tile` is the fused band height
/// (0 picks the cache-sizing default).
struct TuckerDescriptor {
  ConvShape shape;
  TuckerExec exec = TuckerExec::kFused;
  ConvAlgo core_algo = ConvAlgo::kIm2col;
  std::int64_t row_tile = 0;
  DeviceSpec device = make_a100();
};

/// A compiled convolution: per-layer invariants + an allocation-free run.
class ConvPlan {
 public:
  virtual ~ConvPlan() = default;

  /// The original problem geometry (for Tucker plans, the full C → N layer).
  const ConvShape& shape() const { return shape_; }
  /// Resolved algorithm (never kAuto). For Tucker-pipeline plans this is the
  /// core-stage algorithm; check decomposed() to tell the pipelines apart.
  ConvAlgo algo() const { return algo_; }
  const char* algo_name() const { return conv_algo_name(algo_); }
  /// True for Tucker-pipeline plans (compile_tucker_plan).
  virtual bool decomposed() const { return false; }

  /// Exact scratch bytes one run() call touches (0 is possible). The plan
  /// never reads or writes workspace memory past this size.
  virtual std::int64_t workspace_bytes() const = 0;

  /// Scratch bytes a run_batched() call over `batch` images touches: one
  /// single-image workspace per concurrency slot.
  std::int64_t batched_workspace_bytes(std::int64_t batch) const;

  /// Y = conv(X) with X [C, H, W], Y a preallocated [N, OH, OW] tensor and
  /// `workspace` at least workspace_bytes() bytes of float storage. Every
  /// output element is written; results are bit-identical across repeated
  /// calls and thread counts.
  void run(const Tensor& x, Tensor* y, std::span<float> workspace) const;

  /// Single-shot convenience: allocates output and workspace, runs once.
  Tensor run(const Tensor& x) const;

  /// Batched serving entry point: x [B, C, H, W] → y [B, N, OH, OW], images
  /// fanned across the parallel runtime with per-slot workspace slices;
  /// `workspace` needs batched_workspace_bytes(B). Weights stay packed in
  /// the plan, so nothing is re-derived per image or per band.
  void run_batched(const Tensor& x, Tensor* y,
                   std::span<float> workspace) const;

  /// Expert entry point over flat buffers (x [C·H·W], y [N·OH·OW], operands
  /// already validated): what run() calls after checking shapes, and what
  /// CompiledModel uses to chain plans through workspace activations.
  void run_unchecked(const float* x, float* y,
                     std::span<float> workspace) const {
    run_image(x, y, workspace);
  }

 protected:
  ConvPlan(const ConvShape& shape, ConvAlgo algo);

  virtual void run_image(const float* x, float* y,
                         std::span<float> workspace) const = 0;

  /// Concurrency slots a batched run fans out over (frozen at compile time
  /// from the runtime's thread count, so later set_num_threads calls never
  /// outgrow a sized workspace).
  std::int64_t batch_slots(std::int64_t batch) const;

  ConvShape shape_;
  ConvAlgo algo_;
  std::int64_t max_slots_;
};

/// Algorithm selection for ConvAlgo::kAuto: among the algorithms that
/// support the shape (conv_algo_supports), pick the one with the cheapest
/// simulated latency on `device` — the library adapters price the cuDNN
/// stand-ins and tdc_core_cost prices the TDC kernel at its model-selected
/// tiling. Never returns kReference (the oracle is not a deployment path).
ConvAlgo resolve_conv_algo(const DeviceSpec& device, const ConvShape& shape);

/// Compile a dense plan. The kernel tensor is given in desc.weight_layout
/// order ([C,N,R,S] for kCNRS etc.) and is copied/reshaped into the plan.
std::unique_ptr<ConvPlan> compile_conv_plan(const ConvDescriptor& desc,
                                            const Tensor& kernel);

/// Compile a Tucker-pipeline plan from decomposed factors. plan->shape() is
/// the full layer; the plan owns prepacked U1ᵀ/core/U2 panels.
std::unique_ptr<ConvPlan> compile_tucker_plan(const TuckerDescriptor& desc,
                                              const TuckerFactors& factors);

}  // namespace tdc
