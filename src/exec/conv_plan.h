// Plan/execute convolution API — the deployment-facing layer.
//
// The paper's serving story is cuDNN-style: pick an algorithm (and, for the
// TDC kernel, a tiling) per layer once, then replay that decision over a
// stream of inference requests. This header is that lifecycle:
//
//   ConvDescriptor desc{.shape = layer, .algo = ConvAlgo::kAuto};
//   auto plan = compile_conv_plan(desc, kernel);        // once per layer
//   std::vector<float> ws(plan->workspace_bytes() / 4);
//   Tensor y({layer.n, layer.out_h(), layer.out_w()});
//   for (const Tensor& x : requests) plan->run(x, &y, ws);   // steady state
//
// A plan owns every per-layer invariant: the resolved algorithm, reshaped
// and GEMM-prepacked weights, precomputed Winograd/FFT transforms, the
// chosen TDC tiling or Tucker row band. run() touches only the caller's
// output and workspace — no allocation, no hidden state — so the steady
// state is allocation-free and bit-reproducible across calls and thread
// counts. The free functions in conv/conv.h are single-shot wrappers over
// these plans.
#pragma once

#include <cstdint>
#include <memory>
#include <span>

#include "conv/conv.h"
#include "core/tdc_kernel.h"
#include "exec/op_plan.h"
#include "gpusim/device.h"
#include "tensor/layout.h"
#include "tucker/tucker.h"

namespace tdc {

class CostProvider;  // exec/cost_provider.h

/// Everything needed to compile a dense-convolution plan. `algo` may be
/// ConvAlgo::kAuto, resolved by `cost` against `device` — null selects the
/// simulated-GPU provider (the historical resolve_conv_algo policy); CPU
/// serving paths pass &host_cost_provider() / &autotune_cost_provider().
/// `weight_layout` names the storage order of the kernel tensor handed to
/// compile_conv_plan; `tiling` pins the TDC core tiling (any field < 1
/// selects the analytical-model tiling, falling back to the smallest tile
/// when the device has no feasible launch for the shape).
struct ConvDescriptor {
  ConvShape shape;
  ConvAlgo algo = ConvAlgo::kAuto;
  KernelLayout weight_layout = KernelLayout::kCNRS;
  DeviceSpec device = make_a100();
  TdcTiling tiling{0, 0, 0};
  const CostProvider* cost = nullptr;
};

/// How a Tucker-pipeline plan executes the three stages.
enum class TuckerExec {
  kFused,   ///< row-band streaming, all three stages per band (fastest)
  kStaged,  ///< materialized Z1/Z2 with a selectable core-stage plan
};

/// Compile request for the decomposed pipeline. `core_algo` picks the plan
/// of the staged middle convolution (kAuto allowed, resolved by `cost` —
/// null selects the simulated-GPU provider); the fused executor always uses
/// the banded im2col core. `row_tile` is the fused band height (0 picks the
/// cache-sizing default).
struct TuckerDescriptor {
  ConvShape shape;
  TuckerExec exec = TuckerExec::kFused;
  ConvAlgo core_algo = ConvAlgo::kIm2col;
  std::int64_t row_tile = 0;
  DeviceSpec device = make_a100();
  const CostProvider* cost = nullptr;
};

/// A compiled convolution: per-layer invariants + an allocation-free run.
/// One OpPlan implementation among several (exec/op_plan.h): input is the
/// layer's [C, H, W], output its [N, OH, OW]; run/run_batched/workspace
/// semantics are the shared OpPlan contract.
class ConvPlan : public OpPlan {
 public:
  /// The original problem geometry (for Tucker plans, the full C → N layer).
  const ConvShape& shape() const { return shape_; }
  /// Resolved algorithm (never kAuto). For Tucker-pipeline plans this is the
  /// core-stage algorithm; check decomposed() to tell the pipelines apart.
  ConvAlgo algo() const { return algo_; }
  const char* algo_name() const { return conv_algo_name(algo_); }
  /// True for Tucker-pipeline plans (compile_tucker_plan).
  virtual bool decomposed() const { return false; }
  /// True for int8 plans (exec/quantize.h): int8 arithmetic inside, fp32
  /// activations at the plan boundary like every other ConvPlan.
  virtual bool quantized() const { return false; }

 protected:
  ConvPlan(const ConvShape& shape, ConvAlgo algo);

  virtual void run_image(const float* x, float* y,
                         std::span<float> workspace) const = 0;

  void run_node(std::span<const float* const> inputs, float* y,
                std::span<float> workspace) const final {
    run_image(inputs[0], y, workspace);
  }

  ConvShape shape_;
  ConvAlgo algo_;
};

/// Algorithm selection for ConvAlgo::kAuto under the *simulated-GPU* cost
/// model — simulated_gpu_cost_provider().resolve(), kept as a free function
/// for the paper-repro paths. Among the algorithms that support the shape
/// (conv_algo_supports), picks the one with the cheapest simulated latency
/// on `device` — the library adapters price the cuDNN stand-ins and
/// tdc_core_cost prices the TDC kernel at its model-selected tiling. Never
/// returns kReference (the oracle is not a deployment path).
/// Transform-domain algorithms are never selected for pointwise (1×1)
/// filters: a 1×1 convolution is a plain channel-mix GEMM, and the
/// transform overhead cannot pay for itself no matter what the padded-plane
/// cost model says. Host-aware selection lives in the CostProvider
/// implementations (exec/cost_provider.h, host_cost.h, autotune.h).
ConvAlgo resolve_conv_algo(const DeviceSpec& device, const ConvShape& shape);

/// Compile a dense plan. The kernel tensor is given in desc.weight_layout
/// order ([C,N,R,S] for kCNRS etc.) and is copied/reshaped into the plan.
std::unique_ptr<ConvPlan> compile_conv_plan(const ConvDescriptor& desc,
                                            const Tensor& kernel);

/// Compile a Tucker-pipeline plan from decomposed factors. plan->shape() is
/// the full layer; the plan owns prepacked U1ᵀ/core/U2 panels.
std::unique_ptr<ConvPlan> compile_tucker_plan(const TuckerDescriptor& desc,
                                              const TuckerFactors& factors);

}  // namespace tdc
