#include "exec/workspace_guard.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/alloc_guard.h"
#include "common/check.h"

namespace tdc {

namespace {

// Quiet NaN with a recognizable payload: poisons any computation that reads
// a band by accident, and is vanishingly unlikely to be produced by one.
constexpr std::uint32_t kCanaryBits = 0x7FC0DEADu;

std::atomic<int> g_ws_guard_enabled{-1};  // -1 = env not yet read

int resolve_enabled() {
  if (const char* env = std::getenv("TDC_WORKSPACE_GUARD"); env != nullptr) {
    return env[0] == '1' ? 1 : 0;
  }
#ifdef NDEBUG
  return 0;
#else
  // Debug builds guard by default so the suite exercises the bands.
  return 1;
#endif
}

}  // namespace

bool workspace_guard_enabled() {
  int v = g_ws_guard_enabled.load(std::memory_order_relaxed);
  if (v < 0) {
    v = resolve_enabled();
    g_ws_guard_enabled.store(v, std::memory_order_relaxed);
  }
  return v != 0;
}

void set_workspace_guard(bool on) {
  g_ws_guard_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
}

namespace detail {

void ws_guard_fill(float* band, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) {
    std::memcpy(band + i, &kCanaryBits, sizeof(float));
  }
}

bool ws_guard_intact(const float* band, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) {
    std::uint32_t bits;
    std::memcpy(&bits, band + i, sizeof(float));
    if (bits != kCanaryBits) {
      return false;
    }
  }
  return true;
}

void ws_guard_violation(const char* op_name, const char* band) {
  // Fired from inside the session's DenyAllocGuard region; the error
  // message is the sanctioned cold-path allocation.
  AllowAllocScope allow;
  throw Error("op '" + std::string(op_name) + "' overran its workspace: " +
                  band + " trampled (WorkspaceGuard)",
              ErrorCode::kDataCorruption);
}

}  // namespace detail

}  // namespace tdc
