// Workspace canaries: overrun detection for the liveness-planned arena.
//
// A session workspace is tightly packed — the activation arena reuses a
// block the moment its producer's last consumer has run, and every op shares
// one plan-workspace slab. An op that writes one element past its output
// block therefore corrupts a *later* op's input silently: the run completes,
// the numbers are wrong. The guard-band idiom that lived only in tests (NaN
// poison around the buffer, checked afterwards) is promoted here into the
// session itself: when the guard is enabled at session compile time, every
// arena block is padded with leading/trailing canary bands and the shared
// plan workspace gets a tail band; run_graph fills the bands of the block an
// op is about to write, runs the op, and re-checks them, throwing
// Error(kDataCorruption) naming the op on the first trampled word — the
// overrun is caught at the boundary of the op that committed it, not layers
// later.
//
// Enablement (read once, frozen into each session at compile): the
// TDC_WORKSPACE_GUARD environment variable, or set_workspace_guard(). The
// canary word is a quiet-NaN bit pattern, compared bitwise (a float compare
// would pass NaN through). Disabled sessions carry no padding and the run
// path pays one branch per op; enabled sessions trade workspace_bytes() for
// detection, which is why the flag is frozen at compile time — a session's
// layout and its reported workspace size can never disagree.
#pragma once

#include <cstdint>

namespace tdc {

/// True when sessions compiled now insert and check canary bands:
/// TDC_WORKSPACE_GUARD=1 (read once at first query) or
/// set_workspace_guard(true). Debug builds default to on.
bool workspace_guard_enabled();

/// Programmatic override of TDC_WORKSPACE_GUARD (tests, benches). Affects
/// sessions compiled after the call; existing sessions keep their layout.
void set_workspace_guard(bool on);

namespace detail {

/// Canary band width, in floats, on each side of a protected block.
inline constexpr std::int64_t kWsGuardBandFloats = 16;

/// Fills band[0, n) with the canary pattern.
void ws_guard_fill(float* band, std::int64_t n);

/// True when band[0, n) still holds the canary pattern (bitwise).
bool ws_guard_intact(const float* band, std::int64_t n);

/// Reports a trampled band as Error(kDataCorruption) naming the op and
/// which band (e.g. "trailing arena band") was hit.
[[noreturn]] void ws_guard_violation(const char* op_name, const char* band);

}  // namespace detail

}  // namespace tdc
