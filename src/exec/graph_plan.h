// Graph-level compilation: a whole ModelSpec as one serving artifact.
//
// The paper's end-to-end numbers (Figures 8–9) are measured over full
// networks, where pooling, inference BN/ReLU, residual adds, concats and the
// classifier head sit between the convolutions the codesign pass optimizes.
// InferenceSession compiles that entire inventory — a ModelSpec plus a
// codesign decision list plus the layer weights — into a DAG of OpPlans:
//
//   ModelSpec resnet = make_resnet18();
//   CodesignResult cd = run_codesign(device,
//                                    resnet.decomposable_conv_shapes(), opts);
//   auto weights = random_model_weights(resnet, seed);   // or trained ones
//   InferenceSession session = InferenceSession::compile(
//       device, resnet, weights, cd.layers);
//   std::vector<float> ws(session.workspace_bytes() / 4);
//   Tensor y({1000, 1, 1});
//   for (const Tensor& x : requests) session.run(x, &y, ws);
//
// Activations live in one arena planned by liveness analysis: every node
// output gets an offset for exactly the interval between its production and
// its last consumer, so residual skips and concat branches coexist without
// the arena growing to the sum of all activations, and the steady state
// performs no allocation at all. Convolution plans go through the
// process-wide PlanCache (exec/plan_cache.h), so recompiling a session for
// a repeated layer shape reuses packed weights, transforms and Tucker
// factorizations. Runs are bit-identical across thread counts and across
// cached vs cold compiles.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/deadline.h"
#include "core/codesign.h"
#include "exec/conv_plan.h"
#include "exec/op_plan.h"
#include "core/model_spec.h"

namespace tdc {

struct QuantTable;  // exec/quantize.h

/// Per-layer parameters, aligned with ModelSpec::layers. Only the fields the
/// layer kind needs are read; the rest stay empty.
struct LayerWeights {
  Tensor conv_kernel;  ///< kConv: CNRS [C, N, R, S]
  Tensor bn_scale;     ///< kElementwise/kBatchNorm: folded per-channel scale
  Tensor bn_shift;     ///< kElementwise/kBatchNorm: folded per-channel shift
  Tensor fc_weight;    ///< kFullyConnected: [out, in]
  Tensor fc_bias;      ///< kFullyConnected: [out], optional (may stay empty)
};

/// Deterministic synthetic weights for a model inventory (tests, benches,
/// serving smoke runs): He-scaled conv/FC weights and near-identity BN
/// affines, so activations stay O(1) through arbitrarily deep inventories.
std::vector<LayerWeights> random_model_weights(const ModelSpec& model,
                                               std::uint64_t seed);

struct SessionOptions {
  /// Execution of decomposed layers (fused is the deployment default).
  TuckerExec tucker_exec = TuckerExec::kFused;
  /// Algorithm for convolutions the θ rule kept dense.
  ConvAlgo dense_algo = ConvAlgo::kAuto;
  /// Core-stage algorithm of staged Tucker layers.
  ConvAlgo tucker_core_algo = ConvAlgo::kIm2col;
  /// Resolves ConvAlgo::kAuto for dense layers and staged Tucker cores.
  /// Null selects the deployment default for where sessions actually
  /// execute — the host provider (exec/host_cost.h), so kAuto picks
  /// CPU-fast plans. Paper-repro paths that want selection priced for the
  /// descriptor's simulated DeviceSpec pass &simulated_gpu_cost_provider();
  /// &autotune_cost_provider() measures candidates instead of modeling them.
  const CostProvider* cost_provider = nullptr;
  /// Compile convolution plans through the process-wide PlanCache. Off, every
  /// plan is compiled privately (no sharing, no cache pollution).
  bool use_plan_cache = true;
  /// Calibrated activation-quantization table (calibrate_quant in
  /// exec/quantize.h), aligned with model.layers; the caller keeps it alive
  /// through compile(). Null — the default — serves every layer in fp32.
  /// With a table present, each calibrated convolution compiles int8 when
  /// TDC_INT8 says so (2 = always; 1 = when the cost provider's
  /// resolve_precision prices int8 cheaper; 0 = never), provided the
  /// layer's algorithm options admit the quantized engine (dense_algo — or
  /// tucker_core_algo for decomposed layers — is kAuto or kIm2col; a pinned
  /// transform-domain algorithm is respected over quantization).
  const QuantTable* quant = nullptr;
};

class InferenceSession {
 public:
  /// An empty session (no ops); assign from compile() before use.
  InferenceSession() = default;

  /// Compile the model into an executable DAG. `weights[i]` carries layer
  /// i's parameters. `decisions` is the codesign output: one entry per
  /// decomposable convolution (run_codesign over
  /// model.decomposable_conv_shapes()), or one per convolution layer; each
  /// entry's shape must match its layer, decomposed entries are compiled as
  /// Tucker pipelines at the decided ranks. Empty keeps every convolution
  /// dense.
  static InferenceSession compile(const DeviceSpec& device,
                                  const ModelSpec& model,
                                  const std::vector<LayerWeights>& weights,
                                  const std::vector<LayerDecision>& decisions = {},
                                  const SessionOptions& options = {});

  /// Producer id meaning "the model input" in op_inputs().
  static constexpr std::int64_t kModelInput = -1;

  std::int64_t num_ops() const {
    return static_cast<std::int64_t>(nodes_.size());
  }
  const OpPlan& op(std::int64_t i) const {
    return *nodes_[static_cast<std::size_t>(i)].plan;
  }
  const std::string& op_name(std::int64_t i) const {
    return nodes_[static_cast<std::size_t>(i)].name;
  }
  /// Resolved producer edges of op i (kModelInput for the session input).
  std::span<const std::int64_t> op_inputs(std::int64_t i) const {
    return nodes_[static_cast<std::size_t>(i)].inputs;
  }

  const OpShape& input_shape() const { return input_shape_; }
  const OpShape& output_shape() const { return output_shape_; }

  /// Floats of the liveness-planned activation arena (diagnostics: compare
  /// against the sum of all intermediate activations to see the reuse).
  std::int64_t arena_floats() const { return arena_floats_; }

  /// Exact scratch bytes one run() touches: the activation arena plus the
  /// largest per-op plan workspace.
  std::int64_t workspace_bytes() const;
  /// Scratch for run_batched over `batch` images: one workspace_bytes()
  /// slot per fan-out lane, sized from the runtime's thread count at call
  /// time. A smaller buffer holding at least workspace_bytes() still runs,
  /// just with a narrower fan-out.
  std::int64_t batched_workspace_bytes(std::int64_t batch) const;

  /// x (input_shape() floats) → y preallocated (output_shape() floats).
  /// Allocation-free; every output element written; bit-identical across
  /// calls and thread counts.
  ///
  /// Failure contract (all entry points): a throw — invalid operands
  /// (kInvalidArgument), allocation failure (kResourceExhausted), deadline
  /// expiry (kDeadlineExceeded), non-finite op output under TDC_CHECK_FINITE
  /// (kDataCorruption) — leaves the session, the shared PlanCache and the
  /// thread pool fully reusable; only caller-owned scratch (workspace, *y)
  /// holds partial data, and the next successful run is bit-identical to a
  /// run of a never-faulted session.
  void run(const Tensor& x, Tensor* y, std::span<float> workspace) const;

  /// run() under a per-run latency budget: the graph walk polls the deadline
  /// at every op boundary (and the packed GEMM between cache-block bands)
  /// and throws Error(kDeadlineExceeded) when it expires. Equivalent to
  /// arming a DeadlineScope around run().
  void run(const Tensor& x, Tensor* y, std::span<float> workspace,
           const Deadline& deadline) const;

  /// Single-shot convenience: allocates output and workspace.
  Tensor run(const Tensor& x) const;

  /// Batched serving: x [B, C, H, W] → y preallocated [B, C', H', W'];
  /// images fan out across the parallel runtime, one full graph walk per
  /// workspace slot.
  void run_batched(const Tensor& x, Tensor* y,
                   std::span<float> workspace) const;

  /// run_batched() under a per-run latency budget (see the run overload);
  /// the deadline rides into the pool workers each image runs on.
  void run_batched(const Tensor& x, Tensor* y, std::span<float> workspace,
                   const Deadline& deadline) const;

 private:
  struct Node {
    std::shared_ptr<const OpPlan> plan;
    std::string name;
    std::vector<std::int64_t> inputs;  ///< producer node ids or kModelInput
    std::int64_t arena_offset = 0;     ///< output placement, in floats
  };

  static InferenceSession compile_impl(
      const DeviceSpec& device, const ModelSpec& model,
      const std::vector<LayerWeights>& weights,
      const std::vector<LayerDecision>& decisions,
      const SessionOptions& options);

  void run_graph(const float* x, float* y, std::span<float> workspace) const;
  std::int64_t batch_slots(std::int64_t batch) const;

  std::vector<Node> nodes_;
  OpShape input_shape_;
  OpShape output_shape_;
  std::int64_t arena_floats_ = 0;
  std::int64_t plan_ws_floats_ = 0;
  // Frozen at compile time from workspace_guard_enabled(): when set, arena
  // blocks carry canary bands and workspace_bytes() includes them, so the
  // layout and the reported size can never disagree for a live session.
  bool guard_bands_ = false;
};

}  // namespace tdc
