// Trainable model builders and Tucker model surgery.
//
// The Table-2 experiment trains a ResNet-20-style CIFAR network; at this
// repository's CPU budget that architecture is reproduced at reduced width
// and depth (documented substitution, DESIGN.md). Builders return both the
// network and the list of "slots" holding its spatial (R,S > 1)
// convolutions, so the ADMM loop can regularize them and the surgery pass
// can replace each by its three-stage Tucker pipeline.
#pragma once

#include <memory>

#include "autograd/conv2d.h"
#include "autograd/layer.h"
#include "tucker/tucker.h"

namespace tdc {

/// Location of a replaceable convolution inside the layer tree.
struct ConvSlot {
  Sequential* parent = nullptr;
  std::size_t index = 0;
  Conv2d* conv = nullptr;  ///< borrowed; owned by *parent
};

struct TrainableModel {
  std::unique_ptr<Sequential> net;
  std::vector<ConvSlot> spatial_convs;
  std::int64_t classes = 0;
};

struct MiniResNetSpec {
  std::int64_t input_hw = 16;
  std::int64_t input_channels = 3;
  std::int64_t classes = 10;
  std::vector<std::int64_t> stage_widths = {8, 16, 32};
  std::int64_t blocks_per_stage = 1;
  bool batch_norm = true;
};

/// ResNet-20-style residual network (3 stages, 3×3 convolutions, global
/// average pooling head).
TrainableModel make_mini_resnet(const MiniResNetSpec& spec, Rng& rng);

/// Small plain CNN (conv-relu ×2, pool, conv-relu, gap, fc) for fast tests.
TrainableModel make_mini_cnn(std::int64_t input_hw, std::int64_t input_channels,
                             std::int64_t classes, std::int64_t width, Rng& rng);

/// Decompose the slot's kernel at `ranks` (truncated HOSVD) and replace the
/// convolution with the 1×1 → core → 1×1 pipeline in place. The slot's
/// `conv` pointer is invalidated.
void tuckerize_slot(const ConvSlot& slot, TuckerRanks ranks);

/// Apply tuckerize_slot to every spatial conv of the model with per-slot
/// ranks; clears model.spatial_convs (the pointers die with the surgery).
void tuckerize_model(TrainableModel* model,
                     const std::vector<TuckerRanks>& ranks);

/// FLOPs of one forward pass (conv/fc only) before/after surgery are the
/// compression bookkeeping for Table 2; this measures the *current* model.
double model_forward_flops(const TrainableModel& model);

}  // namespace tdc
