#include "train/admm.h"

#include <algorithm>

#include "common/check.h"

namespace tdc {

AdmmState::AdmmState(std::vector<AdmmTarget> targets,
                     const AdmmOptions& options)
    : targets_(std::move(targets)), options_(options) {
  TDC_CHECK_MSG(!targets_.empty(), "ADMM needs at least one target kernel");
  for (const auto& t : targets_) {
    TDC_CHECK(t.conv != nullptr);
    const ConvShape& g = t.conv->geometry();
    TDC_CHECK_MSG(t.ranks.d1 >= 1 && t.ranks.d1 <= g.c && t.ranks.d2 >= 1 &&
                      t.ranks.d2 <= g.n,
                  "ADMM ranks out of range for " + g.to_string());
    // Algorithm 1 line 5 sets K̂ ← K; the first K̂-update then projects it.
    // We fold that first projection into construction so the primal residual
    // is meaningful from step 0 (identical trajectory otherwise).
    k_hat_.push_back(tucker_project(t.conv->kernel().value, t.ranks));
    dual_.push_back(Tensor(t.conv->kernel().value.dims()));
  }
}

void AdmmState::add_penalty_gradients() {
  const float rho = static_cast<float>(options_.rho);
  for (std::size_t i = 0; i < targets_.size(); ++i) {
    Param& kernel = targets_[i].conv->kernel();
    const Tensor& k_hat = k_hat_[i];
    const Tensor& m = dual_[i];
    for (std::int64_t e = 0; e < kernel.value.numel(); ++e) {
      kernel.grad[e] += rho * (kernel.value[e] - k_hat[e] + m[e]);
    }
  }
}

void AdmmState::dual_step() {
  for (std::size_t i = 0; i < targets_.size(); ++i) {
    const Tensor& k = targets_[i].conv->kernel().value;
    Tensor& m = dual_[i];
    // K̂ ← proj(K + M): truncated HOSVD at the target ranks.
    Tensor k_plus_m(k.dims());
    for (std::int64_t e = 0; e < k.numel(); ++e) {
      k_plus_m[e] = k[e] + m[e];
    }
    k_hat_[i] = tucker_project(k_plus_m, targets_[i].ranks);
    // M ← M + K − K̂.
    for (std::int64_t e = 0; e < k.numel(); ++e) {
      m[e] += k[e] - k_hat_[i][e];
    }
  }
}

double AdmmState::primal_residual() const {
  double worst = 0.0;
  for (std::size_t i = 0; i < targets_.size(); ++i) {
    const Tensor& k = targets_[i].conv->kernel().value;
    worst = std::max(worst, Tensor::rel_error(k_hat_[i], k));
  }
  return worst;
}

}  // namespace tdc
