#include "train/synthetic.h"

#include <cmath>

#include "common/check.h"

namespace tdc {

namespace {

// Smooth random pattern: sum of a few low-frequency sinusoids with
// class-specific phases and orientations.
Tensor make_prototype(const SyntheticSpec& spec, Rng& rng) {
  Tensor p({spec.channels, spec.hw, spec.hw});
  for (std::int64_t c = 0; c < spec.channels; ++c) {
    // Three waves per channel.
    for (int wave = 0; wave < 3; ++wave) {
      const double fx = rng.uniform(0.5, 2.5);
      const double fy = rng.uniform(0.5, 2.5);
      const double phase = rng.uniform(0.0, 6.283);
      const double amp = rng.uniform(0.4, 1.0);
      for (std::int64_t y = 0; y < spec.hw; ++y) {
        for (std::int64_t x = 0; x < spec.hw; ++x) {
          const double u = static_cast<double>(x) / spec.hw;
          const double v = static_cast<double>(y) / spec.hw;
          p(c, y, x) += static_cast<float>(
              amp * std::sin(6.283 * (fx * u + fy * v) + phase));
        }
      }
    }
  }
  return p;
}

void fill_split(Dataset* split, std::int64_t count, const SyntheticSpec& spec,
                const std::vector<Tensor>& prototypes, Rng& rng) {
  split->images = Tensor({count, spec.channels, spec.hw, spec.hw});
  split->labels.resize(static_cast<std::size_t>(count));
  const std::int64_t sample_elems =
      spec.channels * spec.hw * spec.hw;
  for (std::int64_t i = 0; i < count; ++i) {
    const auto label =
        static_cast<std::int64_t>(rng.uniform_index(
            static_cast<std::uint64_t>(spec.classes)));
    split->labels[static_cast<std::size_t>(i)] = label;
    const Tensor& proto = prototypes[static_cast<std::size_t>(label)];
    // A distractor prototype at low strength makes classes overlap a bit.
    const auto distractor = static_cast<std::int64_t>(
        rng.uniform_index(static_cast<std::uint64_t>(spec.classes)));
    const Tensor& dproto = prototypes[static_cast<std::size_t>(distractor)];
    const float strength = static_cast<float>(rng.uniform(0.7, 1.3));
    const float dstrength = static_cast<float>(rng.uniform(0.0, 0.25));
    float* dst = split->images.raw() + i * sample_elems;
    for (std::int64_t e = 0; e < sample_elems; ++e) {
      dst[e] = strength * proto[e] + dstrength * dproto[e] +
               static_cast<float>(rng.normal(0.0, spec.noise));
    }
  }
}

}  // namespace

SyntheticData make_synthetic_data(const SyntheticSpec& spec) {
  TDC_CHECK(spec.classes >= 2 && spec.hw >= 4);
  SyntheticData data;
  data.spec = spec;
  Rng rng(spec.seed);
  std::vector<Tensor> prototypes;
  prototypes.reserve(static_cast<std::size_t>(spec.classes));
  for (std::int64_t k = 0; k < spec.classes; ++k) {
    prototypes.push_back(make_prototype(spec, rng));
  }
  fill_split(&data.train, spec.train_size, spec, prototypes, rng);
  fill_split(&data.test, spec.test_size, spec, prototypes, rng);
  return data;
}

Dataset gather_batch(const Dataset& data,
                     std::span<const std::size_t> indices) {
  TDC_CHECK(!data.images.empty());
  const auto& dims = data.images.dims();
  const std::int64_t sample_elems = data.images.numel() / dims[0];
  Dataset out;
  out.images = Tensor({static_cast<std::int64_t>(indices.size()), dims[1],
                       dims[2], dims[3]});
  out.labels.resize(indices.size());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const auto src = static_cast<std::int64_t>(indices[i]);
    TDC_CHECK(src < dims[0]);
    std::copy(data.images.raw() + src * sample_elems,
              data.images.raw() + (src + 1) * sample_elems,
              out.images.raw() + static_cast<std::int64_t>(i) * sample_elems);
    out.labels[i] = data.labels[indices[i]];
  }
  return out;
}

}  // namespace tdc
