// ADMM regularization for Tucker-rank-constrained training
// (paper Section 4.1, Algorithm 1 lines 5–11).
//
// For each targeted convolution kernel K the state holds the auxiliary
// variable K̂ (the low-Tucker-rank projection) and the scaled dual M.
// During training:
//   K-update: the usual SGD step on ℓ(K) with the proximal gradient term
//             ρ·(K − K̂ + M) added (Eq. 10) — add_penalty_gradients().
//   K̂-update: K̂ ← proj_Q(K + M), truncated HOSVD at the target ranks
//             (Eq. 12) — part of dual_step().
//   M-update: M ← M + K − K̂ — the other half of dual_step().
#pragma once

#include <vector>

#include "autograd/conv2d.h"
#include "tucker/tucker.h"

namespace tdc {

struct AdmmTarget {
  Conv2d* conv = nullptr;
  TuckerRanks ranks;
};

struct AdmmOptions {
  double rho = 0.01;  ///< augmented-Lagrangian penalty coefficient
};

class AdmmState {
 public:
  AdmmState(std::vector<AdmmTarget> targets, const AdmmOptions& options);

  /// Add ρ·(K − K̂ + M) to each target kernel's gradient. Call after
  /// backward(), before the optimizer step.
  void add_penalty_gradients();

  /// K̂- and M-updates (call once per epoch or every few iterations).
  void dual_step();

  /// max over targets of ‖K − K̂‖_F / ‖K‖_F: how far the kernels are from
  /// the rank-constrained set. Driven toward 0 by the ADMM iterations.
  double primal_residual() const;

  const std::vector<AdmmTarget>& targets() const { return targets_; }

 private:
  std::vector<AdmmTarget> targets_;
  AdmmOptions options_;
  std::vector<Tensor> k_hat_;
  std::vector<Tensor> dual_;
};

}  // namespace tdc
