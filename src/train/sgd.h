// Mini-batch SGD with momentum and weight decay.
#pragma once

#include <vector>

#include "autograd/layer.h"

namespace tdc {

struct SgdOptions {
  double lr = 0.05;
  double momentum = 0.9;
  double weight_decay = 1e-4;
};

class Sgd {
 public:
  Sgd(std::vector<Param*> params, const SgdOptions& options);

  void zero_grad();
  /// v ← μ·v + (g + λ·w);  w ← w − lr·v
  void step();

  void set_lr(double lr) { options_.lr = lr; }
  double lr() const { return options_.lr; }

 private:
  std::vector<Param*> params_;
  SgdOptions options_;
};

}  // namespace tdc
