#include "train/zoo.h"

#include "autograd/batchnorm.h"
#include "autograd/layers.h"
#include "autograd/linear.h"
#include "autograd/residual.h"
#include "common/check.h"
#include "tucker/flops.h"

namespace tdc {

namespace {

// conv(3×3) [+ BN] + ReLU, recording the conv slot.
void push_conv_unit(Sequential* seq, std::vector<ConvSlot>* slots,
                    const std::string& name, const ConvShape& shape, Rng& rng,
                    bool batch_norm, bool relu) {
  auto conv = std::make_unique<Conv2d>(name, shape, rng, /*with_bias=*/!batch_norm);
  Conv2d* raw = conv.get();
  seq->add(std::move(conv));
  if (slots != nullptr && (shape.r > 1 || shape.s > 1)) {
    slots->push_back(ConvSlot{seq, seq->size() - 1, raw});
  }
  if (batch_norm) {
    seq->add(std::make_unique<BatchNorm2d>(name + ".bn", shape.n));
  }
  if (relu) {
    seq->add(std::make_unique<ReLU>(name + ".relu"));
  }
}

}  // namespace

TrainableModel make_mini_resnet(const MiniResNetSpec& spec, Rng& rng) {
  TDC_CHECK(!spec.stage_widths.empty());
  TrainableModel model;
  model.classes = spec.classes;
  model.net = std::make_unique<Sequential>("mini-resnet");

  std::int64_t hw = spec.input_hw;
  std::int64_t channels = spec.stage_widths.front();
  push_conv_unit(model.net.get(), &model.spatial_convs, "stem",
                 ConvShape::same(spec.input_channels, channels, hw, 3), rng,
                 spec.batch_norm, /*relu=*/true);

  for (std::size_t si = 0; si < spec.stage_widths.size(); ++si) {
    const std::int64_t width = spec.stage_widths[si];
    for (std::int64_t b = 0; b < spec.blocks_per_stage; ++b) {
      const std::int64_t stride = (si > 0 && b == 0) ? 2 : 1;
      const std::string bname =
          "stage" + std::to_string(si + 1) + ".block" + std::to_string(b + 1);

      auto main = std::make_unique<Sequential>(bname + ".main");
      push_conv_unit(main.get(), &model.spatial_convs, bname + ".conv1",
                     ConvShape::same(channels, width, hw, 3, stride), rng,
                     spec.batch_norm, /*relu=*/true);
      push_conv_unit(main.get(), &model.spatial_convs, bname + ".conv2",
                     ConvShape::same(width, width, hw / stride, 3), rng,
                     spec.batch_norm, /*relu=*/false);

      std::unique_ptr<Layer> shortcut;
      if (stride != 1 || channels != width) {
        auto sc = std::make_unique<Sequential>(bname + ".shortcut");
        push_conv_unit(sc.get(), nullptr, bname + ".proj",
                       ConvShape::same(channels, width, hw, 1, stride), rng,
                       spec.batch_norm, /*relu=*/false);
        shortcut = std::move(sc);
      }
      model.net->add(std::make_unique<ResidualBlock>(bname, std::move(main),
                                                     std::move(shortcut)));
      channels = width;
      hw /= stride;
    }
  }

  model.net->add(std::make_unique<GlobalAvgPool>());
  model.net->add(std::make_unique<Linear>("fc", channels, spec.classes, rng));
  return model;
}

TrainableModel make_mini_cnn(std::int64_t input_hw, std::int64_t input_channels,
                             std::int64_t classes, std::int64_t width,
                             Rng& rng) {
  TrainableModel model;
  model.classes = classes;
  model.net = std::make_unique<Sequential>("mini-cnn");
  push_conv_unit(model.net.get(), &model.spatial_convs, "conv1",
                 ConvShape::same(input_channels, width, input_hw, 3), rng,
                 /*batch_norm=*/false, /*relu=*/true);
  push_conv_unit(model.net.get(), &model.spatial_convs, "conv2",
                 ConvShape::same(width, width, input_hw, 3), rng,
                 /*batch_norm=*/false, /*relu=*/true);
  model.net->add(std::make_unique<MaxPool2x2>());
  push_conv_unit(model.net.get(), &model.spatial_convs, "conv3",
                 ConvShape::same(width, width * 2, input_hw / 2, 3), rng,
                 /*batch_norm=*/false, /*relu=*/true);
  model.net->add(std::make_unique<GlobalAvgPool>());
  model.net->add(std::make_unique<Linear>("fc", width * 2, classes, rng));
  return model;
}

void tuckerize_slot(const ConvSlot& slot, TuckerRanks ranks) {
  TDC_CHECK_MSG(slot.parent != nullptr && slot.conv != nullptr,
                "empty conv slot");
  TDC_CHECK_MSG(slot.parent->at(slot.index) == slot.conv,
                "slot does not point at its conv (already replaced?)");
  const ConvShape g = slot.conv->geometry();
  TDC_CHECK_MSG(ranks.d1 >= 1 && ranks.d1 <= g.c && ranks.d2 >= 1 &&
                    ranks.d2 <= g.n,
                "ranks out of range for " + g.to_string());

  const TuckerFactors f = tucker_decompose(slot.conv->kernel().value, ranks);

  // Stage kernels in CNRS order. U1: [C, D1] -> kernel [C, D1, 1, 1].
  Tensor k1 = f.u1.reshaped({g.c, ranks.d1, 1, 1});
  // Core: already [D1, D2, R, S].
  Tensor k2 = f.core;
  // U2 maps D2 -> N: kernel [D2, N, 1, 1] = U2^T reshaped.
  Tensor k3({ranks.d2, g.n, 1, 1});
  for (std::int64_t n = 0; n < g.n; ++n) {
    for (std::int64_t d = 0; d < ranks.d2; ++d) {
      k3(d, n, 0, 0) = f.u2(n, d);
    }
  }

  const std::string base = slot.conv->name();
  std::optional<Tensor> bias;
  for (Param* p : slot.conv->params()) {
    if (p->name == base + ".bias") {
      bias = p->value;
    }
  }

  auto pipeline = std::make_unique<Sequential>(base + ".tucker");
  pipeline->add(std::make_unique<Conv2d>(
      base + ".u1", first_pointwise_shape(g, ranks), std::move(k1),
      std::nullopt));
  pipeline->add(std::make_unique<Conv2d>(base + ".core",
                                         core_conv_shape(g, ranks),
                                         std::move(k2), std::nullopt));
  pipeline->add(std::make_unique<Conv2d>(
      base + ".u2", last_pointwise_shape(g, ranks), std::move(k3), bias));
  slot.parent->replace(slot.index, std::move(pipeline));
}

void tuckerize_model(TrainableModel* model,
                     const std::vector<TuckerRanks>& ranks) {
  TDC_CHECK_MSG(ranks.size() == model->spatial_convs.size(),
                "one rank pair per spatial conv required");
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    tuckerize_slot(model->spatial_convs[i], ranks[i]);
  }
  model->spatial_convs.clear();
}

namespace {

double layer_tree_flops(Layer* layer) {
  if (auto* conv = dynamic_cast<Conv2d*>(layer)) {
    return conv->geometry().flops();
  }
  if (auto* seq = dynamic_cast<Sequential*>(layer)) {
    double f = 0.0;
    for (std::size_t i = 0; i < seq->size(); ++i) {
      f += layer_tree_flops(seq->at(i));
    }
    return f;
  }
  if (auto* res = dynamic_cast<ResidualBlock*>(layer)) {
    double f = layer_tree_flops(res->main());
    if (res->shortcut() != nullptr) {
      f += layer_tree_flops(res->shortcut());
    }
    return f;
  }
  if (auto* fc = dynamic_cast<Linear*>(layer)) {
    std::vector<Param*> ps = fc->params();
    return 2.0 * static_cast<double>(ps.front()->value.numel());
  }
  return 0.0;
}

}  // namespace

double model_forward_flops(const TrainableModel& model) {
  return layer_tree_flops(model.net.get());
}

}  // namespace tdc
