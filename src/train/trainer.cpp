#include "train/trainer.h"

#include <cstdio>

#include "autograd/loss.h"
#include "common/check.h"

namespace tdc {

double evaluate_accuracy(Layer* model, const Dataset& data,
                         std::int64_t batch_size) {
  TDC_CHECK(data.size() > 0);
  std::int64_t correct = 0;
  for (std::int64_t start = 0; start < data.size(); start += batch_size) {
    const std::int64_t count = std::min(batch_size, data.size() - start);
    std::vector<std::size_t> idx(static_cast<std::size_t>(count));
    for (std::int64_t i = 0; i < count; ++i) {
      idx[static_cast<std::size_t>(i)] = static_cast<std::size_t>(start + i);
    }
    const Dataset batch = gather_batch(data, idx);
    const Tensor logits = model->forward(batch.images, /*train=*/false);
    const LossResult r = softmax_cross_entropy(logits, batch.labels);
    correct += r.correct;
  }
  return static_cast<double>(correct) / static_cast<double>(data.size());
}

std::vector<EpochStats> train_model(Layer* model, const SyntheticData& data,
                                    const TrainOptions& options,
                                    AdmmState* admm) {
  TDC_CHECK(data.train.size() > 0);
  Sgd opt(model->params(), options.sgd);
  Rng shuffle_rng(options.shuffle_seed);
  std::vector<EpochStats> stats;

  for (std::int64_t epoch = 0; epoch < options.epochs; ++epoch) {
    const std::vector<std::size_t> order =
        shuffle_rng.permutation(static_cast<std::size_t>(data.train.size()));
    double loss_sum = 0.0;
    std::int64_t correct = 0;
    std::int64_t steps = 0;

    for (std::int64_t start = 0; start < data.train.size();
         start += options.batch_size) {
      const std::int64_t count =
          std::min(options.batch_size, data.train.size() - start);
      const std::span<const std::size_t> idx(
          order.data() + start, static_cast<std::size_t>(count));
      const Dataset batch = gather_batch(data.train, idx);

      opt.zero_grad();
      const Tensor logits = model->forward(batch.images, /*train=*/true);
      const LossResult r = softmax_cross_entropy(logits, batch.labels);
      model->backward(r.grad);
      if (admm != nullptr) {
        admm->add_penalty_gradients();
      }
      opt.step();

      loss_sum += r.loss;
      correct += r.correct;
      ++steps;
    }

    if (admm != nullptr) {
      admm->dual_step();
    }

    EpochStats s;
    s.loss = loss_sum / static_cast<double>(std::max<std::int64_t>(1, steps));
    s.train_accuracy =
        static_cast<double>(correct) / static_cast<double>(data.train.size());
    s.test_accuracy = evaluate_accuracy(model, data.test);
    s.admm_residual = admm != nullptr ? admm->primal_residual() : 0.0;
    stats.push_back(s);

    if (options.verbose) {
      std::printf(
          "  epoch %2lld  loss %.4f  train %.3f  test %.3f%s\n",
          static_cast<long long>(epoch + 1), s.loss, s.train_accuracy,
          s.test_accuracy,
          admm != nullptr
              ? ("  admm-residual " + std::to_string(s.admm_residual)).c_str()
              : "");
    }
    opt.set_lr(opt.lr() * options.lr_decay);
  }
  return stats;
}

}  // namespace tdc
