// Mini-batch training loop with optional ADMM regularization.
#pragma once

#include "autograd/layer.h"
#include "train/admm.h"
#include "train/sgd.h"
#include "train/synthetic.h"

namespace tdc {

struct TrainOptions {
  std::int64_t epochs = 5;
  std::int64_t batch_size = 32;
  SgdOptions sgd;
  double lr_decay = 0.8;  ///< multiplicative per-epoch decay
  std::uint64_t shuffle_seed = 99;
  bool verbose = false;
};

struct EpochStats {
  double loss = 0.0;
  double train_accuracy = 0.0;
  double test_accuracy = 0.0;
  double admm_residual = 0.0;
};

/// Accuracy of `model` on a dataset (eval mode).
double evaluate_accuracy(Layer* model, const Dataset& data,
                         std::int64_t batch_size = 64);

/// Train `model` on `data`; when `admm` is non-null the proximal gradients
/// are added every step and the dual update runs once per epoch
/// (Algorithm 1 lines 7–11). Returns per-epoch statistics.
std::vector<EpochStats> train_model(Layer* model, const SyntheticData& data,
                                    const TrainOptions& options,
                                    AdmmState* admm = nullptr);

}  // namespace tdc
