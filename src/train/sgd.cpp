#include "train/sgd.h"

#include "common/check.h"

namespace tdc {

Sgd::Sgd(std::vector<Param*> params, const SgdOptions& options)
    : params_(std::move(params)), options_(options) {
  TDC_CHECK_MSG(!params_.empty(), "optimizer needs parameters");
}

void Sgd::zero_grad() {
  for (Param* p : params_) {
    p->zero_grad();
  }
}

void Sgd::step() {
  const float lr = static_cast<float>(options_.lr);
  const float mu = static_cast<float>(options_.momentum);
  const float wd = static_cast<float>(options_.weight_decay);
  for (Param* p : params_) {
    for (std::int64_t i = 0; i < p->value.numel(); ++i) {
      const float g = p->grad[i] + wd * p->value[i];
      p->momentum[i] = mu * p->momentum[i] + g;
      p->value[i] -= lr * p->momentum[i];
    }
  }
}

}  // namespace tdc
