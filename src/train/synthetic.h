// Synthetic image-classification dataset.
//
// The paper's accuracy experiments run on CIFAR-10/ImageNet, which are not
// available offline; this generator is the documented substitution
// (DESIGN.md). Each class is a fixed random smooth "prototype" pattern;
// samples are prototype × strength + structured distractor + Gaussian noise,
// so the task is solvable by a small CNN but not linearly trivial, and the
// *relative* ordering of training strategies (baseline vs direct compression
// vs ADMM) is meaningful.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "tensor/tensor.h"

namespace tdc {

struct SyntheticSpec {
  std::int64_t classes = 10;
  std::int64_t channels = 3;
  std::int64_t hw = 16;       ///< square image size
  std::int64_t train_size = 2048;
  std::int64_t test_size = 512;
  double noise = 0.35;
  std::uint64_t seed = 7;
};

struct Dataset {
  Tensor images;  ///< [count, C, H, W]
  std::vector<std::int64_t> labels;
  std::int64_t size() const { return images.empty() ? 0 : images.dim(0); }
};

struct SyntheticData {
  Dataset train;
  Dataset test;
  SyntheticSpec spec;
};

SyntheticData make_synthetic_data(const SyntheticSpec& spec);

/// Copy samples `indices` into a contiguous batch.
Dataset gather_batch(const Dataset& data, std::span<const std::size_t> indices);

}  // namespace tdc
