// Data-layout conversions used by the convolution kernels.
//
// Activation tensors are stored planar (CHW) by default. The paper's core
// kernel (Listing 2) reads the weight tensor in CRSN order so that the N
// threads of a block issue fully coalesced loads; the conversion is done
// offline, exactly as in the paper ("the kernel tensor format conversion can
// be completely done offline once").
//
// Kernel tensor index conventions in this codebase follow the paper:
//   K(c, n, r, s)  with  c = input channel, n = output channel,
//                        r/s = filter row/col  — i.e. CNRS storage.
#pragma once

#include "tensor/tensor.h"

namespace tdc {

/// Activation layout tags.
enum class ActLayout { kCHW, kHWC };

/// Kernel layout tags. CNRS is the library-native order; CRSN is the
/// coalesced order used by the TDC core kernel; NCRS matches cuDNN's default.
enum class KernelLayout { kCNRS, kCRSN, kNCRS };

/// CHW -> HWC copy. Input must be rank-3 [C, H, W].
Tensor chw_to_hwc(const Tensor& x);

/// HWC -> CHW copy. Input must be rank-3 [H, W, C].
Tensor hwc_to_chw(const Tensor& x);

/// CNRS -> CRSN copy. Input must be rank-4 [C, N, R, S]; output [C, R, S, N].
Tensor cnrs_to_crsn(const Tensor& k);

/// CRSN -> CNRS copy. Input must be rank-4 [C, R, S, N]; output [C, N, R, S].
Tensor crsn_to_cnrs(const Tensor& k);

/// CNRS -> NCRS copy. Input must be rank-4 [C, N, R, S]; output [N, C, R, S].
Tensor cnrs_to_ncrs(const Tensor& k);

/// NCRS -> CNRS copy. Input must be rank-4 [N, C, R, S]; output [C, N, R, S].
Tensor ncrs_to_cnrs(const Tensor& k);

}  // namespace tdc
