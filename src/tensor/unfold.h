// Mode-k matricization (unfolding) and its inverse.
//
// The truncated-HOSVD projection in the ADMM K̂-update (paper Eq. 12) works on
// the mode-1 and mode-2 unfoldings of the 4-D kernel tensor:
//   T ∈ R^{C×N×R×S}:  T_(1) ∈ R^{C×(N·R·S)},  T_(2) ∈ R^{N×(C·R·S)}.
// We use the standard Kolda–Bader convention: unfold_mode(T, k) places mode k
// as rows and the remaining modes, in increasing mode order, as columns.
#pragma once

#include "tensor/tensor.h"

namespace tdc {

/// Mode-k unfolding of an arbitrary-rank tensor. Returns a rank-2 tensor of
/// shape [dims[mode], numel / dims[mode]].
Tensor unfold_mode(const Tensor& t, int mode);

/// Inverse of unfold_mode: folds a [dims[mode], rest] matrix back into the
/// original shape `dims`.
Tensor fold_mode(const Tensor& m, int mode, std::vector<std::int64_t> dims);

/// Mode-k tensor-times-matrix product: (T ×_k A)(..., j, ...) =
/// Σ_i T(..., i, ...) · A(i, j), where i runs over dims[mode] and A is
/// [dims[mode], J]. The result has dims[mode] replaced by J.
Tensor mode_product(const Tensor& t, const Tensor& a, int mode);

}  // namespace tdc
