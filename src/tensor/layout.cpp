#include "tensor/layout.h"

#include <array>

#include "common/check.h"

namespace tdc {

Tensor chw_to_hwc(const Tensor& x) {
  TDC_CHECK_MSG(x.rank() == 3, "chw_to_hwc expects rank-3 [C,H,W]");
  constexpr std::array<int, 3> perm = {1, 2, 0};
  return x.transposed(perm);
}

Tensor hwc_to_chw(const Tensor& x) {
  TDC_CHECK_MSG(x.rank() == 3, "hwc_to_chw expects rank-3 [H,W,C]");
  constexpr std::array<int, 3> perm = {2, 0, 1};
  return x.transposed(perm);
}

Tensor cnrs_to_crsn(const Tensor& k) {
  TDC_CHECK_MSG(k.rank() == 4, "cnrs_to_crsn expects rank-4 [C,N,R,S]");
  constexpr std::array<int, 4> perm = {0, 2, 3, 1};
  return k.transposed(perm);
}

Tensor crsn_to_cnrs(const Tensor& k) {
  TDC_CHECK_MSG(k.rank() == 4, "crsn_to_cnrs expects rank-4 [C,R,S,N]");
  constexpr std::array<int, 4> perm = {0, 3, 1, 2};
  return k.transposed(perm);
}

Tensor cnrs_to_ncrs(const Tensor& k) {
  TDC_CHECK_MSG(k.rank() == 4, "cnrs_to_ncrs expects rank-4 [C,N,R,S]");
  constexpr std::array<int, 4> perm = {1, 0, 2, 3};
  return k.transposed(perm);
}

Tensor ncrs_to_cnrs(const Tensor& k) {
  TDC_CHECK_MSG(k.rank() == 4, "ncrs_to_cnrs expects rank-4 [N,C,R,S]");
  constexpr std::array<int, 4> perm = {1, 0, 2, 3};
  return k.transposed(perm);
}

}  // namespace tdc
