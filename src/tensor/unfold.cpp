#include "tensor/unfold.h"

#include "common/check.h"
#include "linalg/gemm.h"

namespace tdc {

namespace {

// Enumerate all multi-indices of `dims` in row-major order, invoking fn(idx).
template <typename Fn>
void for_each_index(const std::vector<std::int64_t>& dims, Fn&& fn) {
  std::vector<std::int64_t> idx(dims.size(), 0);
  std::int64_t total = 1;
  for (const auto d : dims) {
    total *= d;
  }
  for (std::int64_t flat = 0; flat < total; ++flat) {
    fn(idx);
    for (int i = static_cast<int>(dims.size()) - 1; i >= 0; --i) {
      if (++idx[static_cast<std::size_t>(i)] < dims[static_cast<std::size_t>(i)]) {
        break;
      }
      idx[static_cast<std::size_t>(i)] = 0;
    }
  }
}

// Column index of a multi-index in the Kolda–Bader mode-k unfolding: the
// non-mode dimensions are flattened with the *first* non-mode dimension
// varying slowest? Kolda–Bader uses column-major flattening of the remaining
// modes in increasing order; any fixed bijection works for our purposes
// (unfold/fold round-trip and SVD row spaces are invariant to column order).
// We use row-major over the remaining modes in increasing order.
std::int64_t column_of(const std::vector<std::int64_t>& idx,
                       const std::vector<std::int64_t>& dims, int mode) {
  std::int64_t col = 0;
  for (std::size_t i = 0; i < dims.size(); ++i) {
    if (static_cast<int>(i) == mode) {
      continue;
    }
    col = col * dims[i] + idx[i];
  }
  return col;
}

}  // namespace

Tensor unfold_mode(const Tensor& t, int mode) {
  TDC_CHECK_MSG(mode >= 0 && mode < t.rank(), "unfold mode out of range");
  const auto& dims = t.dims();
  const std::int64_t rows = dims[static_cast<std::size_t>(mode)];
  const std::int64_t cols = t.numel() / rows;
  Tensor out({rows, cols});
  std::int64_t flat = 0;
  for_each_index(dims, [&](const std::vector<std::int64_t>& idx) {
    const std::int64_t r = idx[static_cast<std::size_t>(mode)];
    const std::int64_t c = column_of(idx, dims, mode);
    out(r, c) = t[flat];
    ++flat;
  });
  return out;
}

Tensor fold_mode(const Tensor& m, int mode, std::vector<std::int64_t> dims) {
  TDC_CHECK_MSG(m.rank() == 2, "fold_mode expects a matrix");
  TDC_CHECK_MSG(mode >= 0 && mode < static_cast<int>(dims.size()),
                "fold mode out of range");
  std::int64_t total = 1;
  for (const auto d : dims) {
    total *= d;
  }
  TDC_CHECK_MSG(total == m.numel(), "fold_mode element count mismatch");
  TDC_CHECK_MSG(m.dim(0) == dims[static_cast<std::size_t>(mode)],
                "fold_mode row count mismatch");
  Tensor out(dims);
  std::int64_t flat = 0;
  for_each_index(dims, [&](const std::vector<std::int64_t>& idx) {
    const std::int64_t r = idx[static_cast<std::size_t>(mode)];
    const std::int64_t c = column_of(idx, dims, mode);
    out[flat] = m(r, c);
    ++flat;
  });
  return out;
}

Tensor mode_product(const Tensor& t, const Tensor& a, int mode) {
  TDC_CHECK_MSG(a.rank() == 2, "mode_product expects a matrix factor");
  TDC_CHECK_MSG(mode >= 0 && mode < t.rank(), "mode out of range");
  TDC_CHECK_MSG(a.dim(0) == t.dim(mode), "mode_product inner-dim mismatch");
  const std::int64_t in_extent = t.dim(mode);
  const std::int64_t out_extent = a.dim(1);

  std::vector<std::int64_t> out_dims = t.dims();
  out_dims[static_cast<std::size_t>(mode)] = out_extent;
  Tensor out(out_dims);

  // outer = product of dims before `mode`, inner = product after. With
  // row-major storage, T can be viewed as [outer, in_extent, inner].
  std::int64_t outer = 1;
  for (int i = 0; i < mode; ++i) {
    outer *= t.dim(i);
  }
  std::int64_t inner = 1;
  for (int i = mode + 1; i < t.rank(); ++i) {
    inner *= t.dim(i);
  }

  // Each outer slab is one GEMM: Out[o] = A^T · T[o] with T[o] the
  // [in_extent, inner] slice. The transpose and the slab views are stride
  // choices, so the packed engine kernel (parallel, bit-deterministic
  // across thread counts) does all the work — at full network width this
  // contraction sits on the cold-compile path of every Tucker plan.
  const float* src = t.raw();
  float* dst = out.raw();
  for (std::int64_t o = 0; o < outer; ++o) {
    gemm_strided(out_extent, inner, in_extent,
                 a.raw(), /*a_rs=*/1, /*a_cs=*/out_extent,
                 src + o * in_extent * inner, /*b_rs=*/inner, /*b_cs=*/1,
                 dst + o * out_extent * inner, /*ldc=*/inner);
  }
  return out;
}

}  // namespace tdc
