#include "tensor/tensor.h"

#include <cmath>
#include <numeric>
#include <sstream>

#include "common/check.h"

namespace tdc {

Tensor::Tensor(std::vector<std::int64_t> dims) : dims_(std::move(dims)) {
  std::int64_t n = 1;
  for (const auto d : dims_) {
    TDC_CHECK_MSG(d >= 1, "tensor dims must be >= 1");
    n *= d;
  }
  data_.assign(static_cast<std::size_t>(n), 0.0f);
  compute_strides();
}

Tensor::Tensor(std::initializer_list<std::int64_t> dims)
    : Tensor(std::vector<std::int64_t>(dims)) {}

void Tensor::compute_strides() {
  strides_.assign(dims_.size(), 1);
  for (int i = static_cast<int>(dims_.size()) - 2; i >= 0; --i) {
    strides_[static_cast<std::size_t>(i)] =
        strides_[static_cast<std::size_t>(i + 1)] * dims_[static_cast<std::size_t>(i + 1)];
  }
}

Tensor Tensor::zeros(std::vector<std::int64_t> dims) {
  return Tensor(std::move(dims));
}

Tensor Tensor::full(std::vector<std::int64_t> dims, float value) {
  Tensor t(std::move(dims));
  t.fill(value);
  return t;
}

Tensor Tensor::random_uniform(std::vector<std::int64_t> dims, Rng& rng, float lo,
                              float hi) {
  Tensor t(std::move(dims));
  for (auto& v : t.data_) {
    v = static_cast<float>(rng.uniform(lo, hi));
  }
  return t;
}

Tensor Tensor::random_normal(std::vector<std::int64_t> dims, Rng& rng, float mean,
                             float stddev) {
  Tensor t(std::move(dims));
  for (auto& v : t.data_) {
    v = static_cast<float>(rng.normal(mean, stddev));
  }
  return t;
}

std::int64_t Tensor::dim(int i) const {
  TDC_CHECK_MSG(i >= 0 && i < rank(), "dimension index out of range");
  return dims_[static_cast<std::size_t>(i)];
}

float& Tensor::operator()(std::int64_t i0) {
  return data_[static_cast<std::size_t>(i0)];
}

float& Tensor::operator()(std::int64_t i0, std::int64_t i1) {
  return data_[static_cast<std::size_t>(i0 * strides_[0] + i1)];
}

float& Tensor::operator()(std::int64_t i0, std::int64_t i1, std::int64_t i2) {
  return data_[static_cast<std::size_t>(i0 * strides_[0] + i1 * strides_[1] + i2)];
}

float& Tensor::operator()(std::int64_t i0, std::int64_t i1, std::int64_t i2,
                          std::int64_t i3) {
  return data_[static_cast<std::size_t>(i0 * strides_[0] + i1 * strides_[1] +
                                        i2 * strides_[2] + i3)];
}

float Tensor::operator()(std::int64_t i0) const {
  return data_[static_cast<std::size_t>(i0)];
}

float Tensor::operator()(std::int64_t i0, std::int64_t i1) const {
  return data_[static_cast<std::size_t>(i0 * strides_[0] + i1)];
}

float Tensor::operator()(std::int64_t i0, std::int64_t i1, std::int64_t i2) const {
  return data_[static_cast<std::size_t>(i0 * strides_[0] + i1 * strides_[1] + i2)];
}

float Tensor::operator()(std::int64_t i0, std::int64_t i1, std::int64_t i2,
                         std::int64_t i3) const {
  return data_[static_cast<std::size_t>(i0 * strides_[0] + i1 * strides_[1] +
                                        i2 * strides_[2] + i3)];
}

std::int64_t Tensor::offset(std::span<const std::int64_t> idx) const {
  TDC_CHECK_MSG(static_cast<int>(idx.size()) == rank(),
                "index rank does not match tensor rank");
  std::int64_t off = 0;
  for (std::size_t i = 0; i < idx.size(); ++i) {
    TDC_CHECK_MSG(idx[i] >= 0 && idx[i] < dims_[i], "index out of bounds");
    off += idx[i] * strides_[i];
  }
  return off;
}

float& Tensor::at(std::span<const std::int64_t> idx) {
  return data_[static_cast<std::size_t>(offset(idx))];
}

float Tensor::at(std::span<const std::int64_t> idx) const {
  return data_[static_cast<std::size_t>(offset(idx))];
}

Tensor Tensor::reshaped(std::vector<std::int64_t> new_dims) const {
  std::int64_t n = 1;
  for (const auto d : new_dims) {
    TDC_CHECK(d >= 1);
    n *= d;
  }
  TDC_CHECK_MSG(n == numel(), "reshape must preserve element count");
  Tensor out;
  out.dims_ = std::move(new_dims);
  out.data_ = data_;
  out.compute_strides();
  return out;
}

Tensor Tensor::transposed(std::span<const int> perm) const {
  TDC_CHECK_MSG(static_cast<int>(perm.size()) == rank(),
                "permutation rank mismatch");
  std::vector<bool> seen(perm.size(), false);
  std::vector<std::int64_t> new_dims(perm.size());
  for (std::size_t i = 0; i < perm.size(); ++i) {
    const int p = perm[i];
    TDC_CHECK_MSG(p >= 0 && p < rank() && !seen[static_cast<std::size_t>(p)],
                  "invalid permutation");
    seen[static_cast<std::size_t>(p)] = true;
    new_dims[i] = dims_[static_cast<std::size_t>(p)];
  }
  Tensor out(new_dims);
  // Walk the output in row-major order, translating each multi-index back to
  // a source offset. Rank is small (<= 4 in this library) so the generic loop
  // is fine.
  std::vector<std::int64_t> idx(perm.size(), 0);
  for (std::int64_t flat = 0; flat < out.numel(); ++flat) {
    std::int64_t src = 0;
    for (std::size_t i = 0; i < perm.size(); ++i) {
      src += idx[i] * strides_[static_cast<std::size_t>(perm[i])];
    }
    out.data_[static_cast<std::size_t>(flat)] = data_[static_cast<std::size_t>(src)];
    // Increment the output multi-index.
    for (int i = static_cast<int>(perm.size()) - 1; i >= 0; --i) {
      if (++idx[static_cast<std::size_t>(i)] < new_dims[static_cast<std::size_t>(i)]) {
        break;
      }
      idx[static_cast<std::size_t>(i)] = 0;
    }
  }
  return out;
}

void Tensor::fill(float value) {
  for (auto& v : data_) {
    v = value;
  }
}

void Tensor::add_(const Tensor& other) {
  TDC_CHECK_MSG(same_shape(other), "add_ shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] += other.data_[i];
  }
}

void Tensor::scale_(float s) {
  for (auto& v : data_) {
    v *= s;
  }
}

double Tensor::frobenius_norm() const {
  double sum = 0.0;
  for (const auto v : data_) {
    sum += static_cast<double>(v) * static_cast<double>(v);
  }
  return std::sqrt(sum);
}

double Tensor::max_abs_diff(const Tensor& a, const Tensor& b) {
  TDC_CHECK_MSG(a.same_shape(b), "max_abs_diff shape mismatch");
  double m = 0.0;
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    m = std::max(m, std::abs(static_cast<double>(a[i]) - static_cast<double>(b[i])));
  }
  return m;
}

double Tensor::rel_error(const Tensor& a, const Tensor& b) {
  TDC_CHECK_MSG(a.same_shape(b), "rel_error shape mismatch");
  double num = 0.0;
  double den = 0.0;
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    num += d * d;
    den += static_cast<double>(b[i]) * static_cast<double>(b[i]);
  }
  return std::sqrt(num) / std::max(std::sqrt(den), 1e-30);
}

std::string Tensor::shape_string() const {
  std::ostringstream os;
  os << "[";
  for (int i = 0; i < rank(); ++i) {
    if (i > 0) {
      os << ", ";
    }
    os << dims_[static_cast<std::size_t>(i)];
  }
  os << "]";
  return os.str();
}

}  // namespace tdc
