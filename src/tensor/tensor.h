// Dense row-major FP32 tensor.
//
// This is the single data container used throughout the library: network
// activations, convolution kernels, Tucker factors, im2col buffers and GEMM
// operands are all Tensors. It is intentionally simple — contiguous storage,
// row-major strides, explicit shapes — because the point of this codebase is
// the kernels and models built on top, not a tensor DSL.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "common/rng.h"

namespace tdc {

class Tensor {
 public:
  /// Empty 0-element tensor.
  Tensor() = default;

  /// Zero-initialized tensor of the given shape. Each dim must be >= 1.
  explicit Tensor(std::vector<std::int64_t> dims);
  Tensor(std::initializer_list<std::int64_t> dims);

  static Tensor zeros(std::vector<std::int64_t> dims);
  static Tensor full(std::vector<std::int64_t> dims, float value);
  /// I.i.d. uniform entries in [lo, hi) drawn from `rng`.
  static Tensor random_uniform(std::vector<std::int64_t> dims, Rng& rng,
                               float lo = -1.0f, float hi = 1.0f);
  /// I.i.d. normal entries.
  static Tensor random_normal(std::vector<std::int64_t> dims, Rng& rng,
                              float mean = 0.0f, float stddev = 1.0f);

  /// Number of dimensions (0 for the empty tensor).
  int rank() const { return static_cast<int>(dims_.size()); }
  /// Extent of dimension i (bounds-checked).
  std::int64_t dim(int i) const;
  const std::vector<std::int64_t>& dims() const { return dims_; }
  std::int64_t numel() const { return static_cast<std::int64_t>(data_.size()); }
  bool empty() const { return data_.empty(); }

  std::span<float> data() { return std::span<float>(data_); }
  std::span<const float> data() const { return std::span<const float>(data_); }
  float* raw() { return data_.data(); }
  const float* raw() const { return data_.data(); }

  /// Flat element access (bounds-checked in debug contracts only when
  /// accessed through at()).
  float& operator[](std::int64_t i) { return data_[static_cast<std::size_t>(i)]; }
  float operator[](std::int64_t i) const { return data_[static_cast<std::size_t>(i)]; }

  /// Multi-index access. The overloads cover the ranks used in the library.
  float& operator()(std::int64_t i0);
  float& operator()(std::int64_t i0, std::int64_t i1);
  float& operator()(std::int64_t i0, std::int64_t i1, std::int64_t i2);
  float& operator()(std::int64_t i0, std::int64_t i1, std::int64_t i2,
                    std::int64_t i3);
  float operator()(std::int64_t i0) const;
  float operator()(std::int64_t i0, std::int64_t i1) const;
  float operator()(std::int64_t i0, std::int64_t i1, std::int64_t i2) const;
  float operator()(std::int64_t i0, std::int64_t i1, std::int64_t i2,
                   std::int64_t i3) const;

  /// Bounds-checked element access (throws tdc::Error when out of range).
  float& at(std::span<const std::int64_t> idx);
  float at(std::span<const std::int64_t> idx) const;

  /// Row-major flat offset of a multi-index (bounds-checked).
  std::int64_t offset(std::span<const std::int64_t> idx) const;

  /// Returns a tensor with the same data viewed under a new shape;
  /// total element count must match.
  Tensor reshaped(std::vector<std::int64_t> new_dims) const;

  /// Returns a copy with dimensions permuted: out.dims[i] = dims[perm[i]].
  Tensor transposed(std::span<const int> perm) const;

  void fill(float value);
  /// this += other (same shape required).
  void add_(const Tensor& other);
  /// this *= scalar.
  void scale_(float s);

  /// Frobenius norm of the entries.
  double frobenius_norm() const;
  /// Max |a - b| over entries; shapes must match.
  static double max_abs_diff(const Tensor& a, const Tensor& b);
  /// Relative Frobenius error ||a-b||_F / max(||b||_F, eps).
  static double rel_error(const Tensor& a, const Tensor& b);

  /// "[2, 3, 4]"-style shape string for diagnostics.
  std::string shape_string() const;

  bool same_shape(const Tensor& other) const { return dims_ == other.dims_; }

 private:
  std::vector<std::int64_t> dims_;
  std::vector<std::int64_t> strides_;  // row-major, in elements
  std::vector<float> data_;

  void compute_strides();
};

}  // namespace tdc
