// The paper's analytical performance model and tiling selection
// (Sections 5.3–5.5).
//
// Two selection paths exist, exactly as in the paper:
//  * "model"  — rank all tilings by the closed-form compute latency
//    (Eqs. 14–15), keep the top fraction (5 % on A100, 15 % on 2080Ti), and
//    among those pick the minimum modeled global-memory volume (Eqs. 16–19).
//    No measurement is involved.
//  * "oracle" — exhaustive search by *measured* latency. In this
//    reproduction "measured" means the rich gpusim execution model
//    (tdc_core_cost), which includes effects the analytical model ignores
//    (partial waves, atomics, coalescing, barriers) — this is what creates
//    the oracle-vs-model gap the paper reports (~25 %).
#pragma once

#include <vector>

#include "core/tdc_kernel.h"

namespace tdc {

/// The paper's per-block compute latency (Section 5.3):
///   comp_latency_blk = 2·(TH+R−1)·(TW+S−1)·TC·R·S·GPU_ths / GPU_peak.
/// (Generalized tile extents are used so strided cores model consistently.)
double paper_comp_latency_block(const DeviceSpec& device,
                                const ConvShape& shape, const TdcTiling& t);

/// Eq. (14): comp_waves = ceil(num_blks·N / (GPU_ths · occupancy)).
double paper_comp_waves(const DeviceSpec& device, const ConvShape& shape,
                        const TdcTiling& t);

/// Eq. (15): comp_latency = comp_waves · comp_latency_blk.
double paper_comp_latency(const DeviceSpec& device, const ConvShape& shape,
                          const TdcTiling& t);

/// Eqs. (16)–(19): global-memory data-movement volume in *elements*
/// (kernel volume includes the R·S factor the paper's Eq. 16 elides as
/// constant across tilings).
double paper_mem_volume(const ConvShape& shape, const TdcTiling& t);

/// Memory latency proxy: volume · 4 bytes / device bandwidth.
double paper_mem_latency(const DeviceSpec& device, const ConvShape& shape,
                         const TdcTiling& t);

/// All device-feasible tilings for a shape. TH/TW are capped at 32 (the
/// TH·TW register accumulator binds long before that; see
/// tdc_tiling_feasible) and TC ranges over 1..C, giving the paper's
/// H×W×C-flavored search space.
std::vector<TdcTiling> enumerate_tilings(const DeviceSpec& device,
                                         const ConvShape& shape);

/// Section 5.5 analytical selection (top-k% compute, then min memory).
TdcTiling select_tiling_model(const DeviceSpec& device, const ConvShape& shape);

/// Exhaustive oracle selection by simulated-measured latency.
TdcTiling select_tiling_oracle(const DeviceSpec& device, const ConvShape& shape);

/// Which selector to use when building latency tables.
enum class TilingSelector { kModel, kOracle };

TdcTiling select_tiling(TilingSelector sel, const DeviceSpec& device,
                        const ConvShape& shape);

}  // namespace tdc
