// The TDC core-convolution kernel scheme (paper Section 5.2, Listing 2).
//
// Grid: the *output* plane and the input channels are tiled as
// ceil(OH/TH) × ceil(OW/TW) × ceil(C/TC) thread blocks. Each block stages a
// TC × ((TH−1)·stride+R) × ((TW−1)·stride+S) input cube in shared memory
// once (a single __syncthreads — versus 2·C in the TVM-style scheme), then
// each of the block's N threads owns one output channel: it walks the shared
// tile, scattering contributions into a TH×TW register accumulator, and
// finally commits with atomicAdd (blocks along the C split write the same
// outputs). Weights are read in CRSN order so the N threads load
// consecutively — fully coalesced.
//
// This file provides both the *functional* executor (run on the CPU, checked
// against conv2d_reference) and the *launch descriptor* consumed by the
// gpusim latency model.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "conv/conv_shape.h"
#include "gpusim/launch.h"
#include "tensor/tensor.h"

namespace tdc {

/// Tile sizes of the TDC kernel: TH×TW output positions per block,
/// TC input channels per block.
struct TdcTiling {
  std::int64_t th = 1;
  std::int64_t tw = 1;
  std::int64_t tc = 1;
  bool operator==(const TdcTiling&) const = default;
  std::string to_string() const;
};

/// Weight-layout choice for the core kernel. CRSN is the paper's design;
/// CNRS is kept for the layout ablation.
enum class TdcWeightLayout { kCRSN, kCNRS };

/// Shared-memory input tile extents for a tiling (halo included).
std::int64_t tdc_tile_in_h(const ConvShape& shape, const TdcTiling& t);
std::int64_t tdc_tile_in_w(const ConvShape& shape, const TdcTiling& t);

/// Grid size ceil(OH/TH)·ceil(OW/TW)·ceil(C/TC).
std::int64_t tdc_num_blocks(const ConvShape& shape, const TdcTiling& t);

/// True when the tiling is executable on the device (fits shared memory,
/// registers, thread limits, and the shape).
bool tdc_tiling_feasible(const DeviceSpec& device, const ConvShape& shape,
                         const TdcTiling& t);

/// Launch descriptor for the latency model.
KernelLaunch tdc_core_launch(const DeviceSpec& device, const ConvShape& shape,
                             const TdcTiling& t,
                             TdcWeightLayout layout = TdcWeightLayout::kCRSN);

/// Simulated latency of the core kernel at this tiling.
LatencyBreakdown tdc_core_cost(const DeviceSpec& device, const ConvShape& shape,
                               const TdcTiling& t,
                               TdcWeightLayout layout = TdcWeightLayout::kCRSN);

/// Functional execution of the kernel scheme. `kernel_crsn` is the weight
/// tensor in CRSN order ([C, R, S, N]); x is [C, H, W]; returns [N, OH, OW].
/// `parallel` runs blocks under OpenMP with atomic commits (the faithful
/// mode); false interprets blocks sequentially for bit-determinism.
Tensor tdc_core_conv(const Tensor& x, const Tensor& kernel_crsn,
                     const ConvShape& shape, const TdcTiling& t,
                     bool parallel = true);

/// Exact workspace (in floats) one tdc_core_conv_into call needs: the
/// interpreter stages each block's shared-memory input tile and register
/// accumulator in per-slot scratch instead of allocating.
std::int64_t tdc_core_workspace_floats(const ConvShape& shape,
                                       const TdcTiling& t);

/// Functional execution into a caller-provided flat [N, OH, OW] buffer
/// (zeroed by the call; blocks accumulate into it) using caller-provided
/// scratch of at least tdc_core_workspace_floats entries. Operands are not
/// shape-checked; the plan layer validates them once at compile time.
/// Results are bit-identical for any thread count and either `parallel`
/// mode: spatial tiles write disjoint outputs and the channel partitions of
/// a tile run serially in a fixed order.
void tdc_core_conv_into(const float* x, const Tensor& kernel_crsn,
                        const ConvShape& shape, const TdcTiling& t, float* y,
                        std::span<float> workspace, bool parallel = true);

}  // namespace tdc
