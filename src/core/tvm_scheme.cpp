#include "core/tvm_scheme.h"

#include <algorithm>
#include <mutex>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "common/check.h"
#include "common/parallel.h"

namespace tdc {

namespace {

std::mutex tvm_cache_mu;
std::unordered_map<std::string, TvmTiling>& tvm_cache() {
  static std::unordered_map<std::string, TvmTiling> cache;
  return cache;
}

std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

std::int64_t tvm_tile_in_h(const ConvShape& shape, const TvmTiling& t) {
  return (t.th - 1) * shape.stride_h + shape.r;
}

std::int64_t tvm_tile_in_w(const ConvShape& shape, const TvmTiling& t) {
  return (t.tw - 1) * shape.stride_w + shape.s;
}

// Shared buffers per Listing 1: one input channel's tile + one channel's
// weight slice for the block's output channels.
std::int64_t tvm_shared_bytes(const ConvShape& shape, const TvmTiling& t) {
  return (tvm_tile_in_h(shape, t) * tvm_tile_in_w(shape, t) +
          shape.r * shape.s * tvm_n_chunk(shape, t)) *
         4;
}

int tvm_regs_per_thread(const ConvShape& shape, const TvmTiling& t) {
  // Accumulators for the block's channel chunk live in registers, chunked
  // to at most 32 at a time (the scheme writes out per chunk).
  return static_cast<int>(
      24 + std::min<std::int64_t>(tvm_n_chunk(shape, t), 32));
}

}  // namespace

std::string TvmTiling::to_string() const {
  std::ostringstream os;
  os << "(TH=" << th << ", TW=" << tw << ", NGRID=" << n_grid << ")";
  return os.str();
}

std::int64_t tvm_n_chunk(const ConvShape& shape, const TvmTiling& t) {
  return ceil_div(shape.n, t.n_grid);
}

bool tvm_tiling_feasible(const DeviceSpec& device, const ConvShape& shape,
                         const TvmTiling& t) {
  if (t.th < 1 || t.tw < 1 || t.n_grid < 1) {
    return false;
  }
  if (t.th > shape.out_h() || t.tw > shape.out_w() || t.n_grid > shape.n) {
    return false;
  }
  const std::int64_t threads = t.th * t.tw;
  if (threads > device.max_threads_per_block) {
    return false;
  }
  if (tvm_shared_bytes(shape, t) > device.shared_mem_per_block) {
    return false;
  }
  if (tvm_regs_per_thread(shape, t) > device.max_regs_per_thread) {
    return false;
  }
  return compute_occupancy(device,
                           BlockResources{static_cast<int>(threads),
                                          tvm_shared_bytes(shape, t),
                                          tvm_regs_per_thread(shape, t)})
      .launchable;
}

KernelLaunch tvm_scheme_launch(const DeviceSpec& device, const ConvShape& shape,
                               const TvmTiling& t) {
  TDC_CHECK_MSG(tvm_tiling_feasible(device, shape, t),
                "infeasible TVM tiling " + t.to_string() + " for " +
                    shape.to_string());
  const std::int64_t blocks = ceil_div(shape.out_h(), t.th) *
                              ceil_div(shape.out_w(), t.tw) * t.n_grid *
                              shape.batch;
  const std::int64_t n_chunk = tvm_n_chunk(shape, t);
  const double tile =
      static_cast<double>(tvm_tile_in_h(shape, t) * tvm_tile_in_w(shape, t));

  KernelLaunch l;
  l.label = "tvm-scheme";
  l.num_blocks = blocks;
  l.block.threads = static_cast<int>(t.th * t.tw);
  l.block.shared_bytes = tvm_shared_bytes(shape, t);
  l.block.regs_per_thread = tvm_regs_per_thread(shape, t);

  // Gather arithmetic: every thread computes its position for the block's
  // channel chunk.
  l.flops_per_block = 2.0 * static_cast<double>(t.th * t.tw) *
                      static_cast<double>(n_chunk) *
                      static_cast<double>(shape.c) *
                      static_cast<double>(shape.r * shape.s);

  // Per C iteration: the channel's input tile (w-contiguous rows) and the
  // R·S×n_chunk weight slice (NCRS layout — rows of R·S floats). The input
  // tile is re-staged by every channel block covering the same plane — the
  // H/W-overlap redundancy the paper discusses.
  const double waste_in = coalescing_waste_factor(
      static_cast<double>(tvm_tile_in_w(shape, t)) * 4.0);
  const double waste_k =
      coalescing_waste_factor(static_cast<double>(shape.r * shape.s) * 4.0);
  const double total_in = static_cast<double>(blocks) *
                          static_cast<double>(shape.c) * tile * 4.0 * waste_in;
  const double unique_in = static_cast<double>(shape.batch) *
                           static_cast<double>(shape.c * shape.h * shape.w) *
                           4.0;
  add_reread_traffic(device, total_in, unique_in, &l);
  const double total_k =
      static_cast<double>(blocks) * static_cast<double>(shape.c) *
      static_cast<double>(shape.r * shape.s) * static_cast<double>(n_chunk) *
      4.0 * waste_k;
  const double unique_k = static_cast<double>(shape.c) *
                          static_cast<double>(shape.r * shape.s) *
                          static_cast<double>(shape.n) * 4.0 * waste_k;
  add_reread_traffic(device, total_k, unique_k, &l);

  // Plain (non-atomic) stores: blocks partition the output tensor.
  l.bytes_written = static_cast<double>(shape.batch) *
                    static_cast<double>(shape.out_h() * shape.out_w()) *
                    static_cast<double>(shape.n) * 4.0;

  // Listing 1 lines 1–2: two barriers per input-channel iteration, and the
  // block waits for the freshly staged tile every time (no double
  // buffering) — the synchronization cost the paper calls out.
  l.sync_count = 2 * shape.c;
  l.dependent_stalls = shape.c;
  l.ilp = static_cast<double>(std::min<std::int64_t>(n_chunk, 8));
  l.compute_efficiency = 0.9;
  return l;
}

LatencyBreakdown tvm_scheme_cost(const DeviceSpec& device,
                                 const ConvShape& shape, const TvmTiling& t) {
  return simulate_latency(device, tvm_scheme_launch(device, shape, t));
}

TvmTiling select_tvm_tiling(const DeviceSpec& device, const ConvShape& shape) {
  TDC_CHECK_MSG(shape.valid(), "invalid shape");
  const std::string key = device.name + "|" + shape.to_string();
  {
    std::lock_guard<std::mutex> lock(tvm_cache_mu);
    const auto it = tvm_cache().find(key);
    if (it != tvm_cache().end()) {
      return it->second;
    }
  }
  TvmTiling best;
  double best_latency = -1.0;
  const std::int64_t max_th = std::min<std::int64_t>(shape.out_h(), 32);
  const std::int64_t max_tw = std::min<std::int64_t>(shape.out_w(), 32);
  for (std::int64_t th = 1; th <= max_th; ++th) {
    for (std::int64_t tw = 1; tw <= max_tw; ++tw) {
      for (std::int64_t n_grid = 1; n_grid <= shape.n; n_grid *= 2) {
        const TvmTiling t{th, tw, n_grid};
        if (!tvm_tiling_feasible(device, shape, t)) {
          continue;
        }
        const double latency = tvm_scheme_cost(device, shape, t).total_s;
        if (best_latency < 0.0 || latency < best_latency) {
          best_latency = latency;
          best = t;
        }
      }
    }
  }
  TDC_CHECK_MSG(best_latency >= 0.0,
                "no feasible TVM tiling for " + shape.to_string());
  {
    std::lock_guard<std::mutex> lock(tvm_cache_mu);
    tvm_cache().emplace(key, best);
  }
  return best;
}

LatencyBreakdown tvm_best_cost(const DeviceSpec& device,
                               const ConvShape& shape) {
  return tvm_scheme_cost(device, shape, select_tvm_tiling(device, shape));
}

Tensor tvm_scheme_conv(const Tensor& x, const Tensor& kernel_cnrs,
                       const ConvShape& shape, const TvmTiling& t) {
  TDC_CHECK_MSG(x.rank() == 3 && kernel_cnrs.rank() == 4, "bad operand ranks");
  TDC_CHECK_MSG(x.dim(0) == shape.c && x.dim(1) == shape.h && x.dim(2) == shape.w,
                "input does not match shape");
  TDC_CHECK_MSG(kernel_cnrs.dim(0) == shape.c && kernel_cnrs.dim(1) == shape.n,
                "kernel does not match shape");
  TDC_CHECK_MSG(shape.batch == 1,
                "the functional executor is single-image; batched shapes are "
                "for the cost models");
  TDC_CHECK(t.th >= 1 && t.tw >= 1 && t.n_grid >= 1 && t.n_grid <= shape.n);
  const std::int64_t oh = shape.out_h();
  const std::int64_t ow = shape.out_w();
  const std::int64_t blocks_h = ceil_div(oh, t.th);
  const std::int64_t blocks_w = ceil_div(ow, t.tw);
  const std::int64_t n_chunk = tvm_n_chunk(shape, t);
  const std::int64_t tile_h = tvm_tile_in_h(shape, t);
  const std::int64_t tile_w = tvm_tile_in_w(shape, t);
  const std::int64_t num_blocks = blocks_h * blocks_w * t.n_grid;

  Tensor y({shape.n, oh, ow});

  // Every block owns a disjoint (n-chunk × spatial-tile) slab of y, so the
  // flattened block loop parallelizes without synchronization.
  parallel_for(0, num_blocks, 1, [&](std::int64_t blk0, std::int64_t blk1) {
  for (std::int64_t block_id = blk0; block_id < blk1; ++block_id) {
    const std::int64_t bn = block_id / (blocks_h * blocks_w);
    const std::int64_t rest = block_id % (blocks_h * blocks_w);
    const std::int64_t bh = rest / blocks_w;
    const std::int64_t bw = rest % blocks_w;
    const std::int64_t n0 = bn * n_chunk;
    const std::int64_t n1 = std::min(n0 + n_chunk, shape.n);

    const std::int64_t oh0 = bh * t.th;
    const std::int64_t ow0 = bw * t.tw;
    const std::int64_t ih0 = oh0 * shape.stride_h - shape.pad_h;
    const std::int64_t iw0 = ow0 * shape.stride_w - shape.pad_w;
    std::vector<float> tile(static_cast<std::size_t>(tile_h * tile_w));

    // The C loop with its per-iteration shared staging (Listing 1).
    for (std::int64_t c = 0; c < shape.c; ++c) {
      for (std::int64_t lh = 0; lh < tile_h; ++lh) {
        const std::int64_t ih = ih0 + lh;
        for (std::int64_t lw = 0; lw < tile_w; ++lw) {
          const std::int64_t iw = iw0 + lw;
          const bool inside = ih >= 0 && ih < shape.h && iw >= 0 && iw < shape.w;
          tile[static_cast<std::size_t>(lh * tile_w + lw)] =
              inside ? x(c, ih, iw) : 0.0f;
        }
      }
      // Threads: one output position each, looping over the channel chunk.
      for (std::int64_t lth = 0; lth < t.th && oh0 + lth < oh; ++lth) {
        for (std::int64_t ltw = 0; ltw < t.tw && ow0 + ltw < ow; ++ltw) {
          for (std::int64_t n = n0; n < n1; ++n) {
            float acc = 0.0f;
            for (std::int64_t r = 0; r < shape.r; ++r) {
              for (std::int64_t s = 0; s < shape.s; ++s) {
                acc += tile[static_cast<std::size_t>(
                           (lth * shape.stride_h + r) * tile_w +
                           ltw * shape.stride_w + s)] *
                       kernel_cnrs(c, n, r, s);
              }
            }
            y(n, oh0 + lth, ow0 + ltw) += acc;
          }
        }
      }
    }
  }
  });
  return y;
}

}  // namespace tdc
