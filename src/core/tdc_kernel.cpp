#include "core/tdc_kernel.h"

#include <algorithm>
#include <sstream>
#include <vector>

#include "common/check.h"
#include "common/parallel.h"

namespace tdc {

namespace {

std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

// Per-thread register estimate: TH×TW accumulators + an R×S weight slice +
// bookkeeping. Mirrors what NVCC reports for the generated kernel.
int tdc_regs_per_thread(const ConvShape& shape, const TdcTiling& t) {
  const std::int64_t regs = 28 + t.th * t.tw + shape.r * shape.s;
  return static_cast<int>(std::min<std::int64_t>(regs, 1 << 20));
}

}  // namespace

std::string TdcTiling::to_string() const {
  std::ostringstream os;
  os << "(TH=" << th << ", TW=" << tw << ", TC=" << tc << ")";
  return os.str();
}

std::int64_t tdc_tile_in_h(const ConvShape& shape, const TdcTiling& t) {
  return (t.th - 1) * shape.stride_h + shape.r;
}

std::int64_t tdc_tile_in_w(const ConvShape& shape, const TdcTiling& t) {
  return (t.tw - 1) * shape.stride_w + shape.s;
}

std::int64_t tdc_num_blocks(const ConvShape& shape, const TdcTiling& t) {
  return ceil_div(shape.out_h(), t.th) * ceil_div(shape.out_w(), t.tw) *
         ceil_div(shape.c, t.tc);
}

bool tdc_tiling_feasible(const DeviceSpec& device, const ConvShape& shape,
                         const TdcTiling& t) {
  if (t.th < 1 || t.tw < 1 || t.tc < 1) {
    return false;
  }
  if (t.th > shape.out_h() || t.tw > shape.out_w() || t.tc > shape.c) {
    return false;
  }
  if (shape.n > device.max_threads_per_block) {
    return false;
  }
  const std::int64_t shared =
      t.tc * tdc_tile_in_h(shape, t) * tdc_tile_in_w(shape, t) * 4;
  if (shared > device.shared_mem_per_block) {
    return false;
  }
  if (tdc_regs_per_thread(shape, t) > device.max_regs_per_thread) {
    return false;
  }
  return compute_occupancy(
             device, BlockResources{static_cast<int>(shape.n), shared,
                                    tdc_regs_per_thread(shape, t)})
      .launchable;
}

KernelLaunch tdc_core_launch(const DeviceSpec& device, const ConvShape& shape,
                             const TdcTiling& t, TdcWeightLayout layout) {
  TDC_CHECK_MSG(tdc_tiling_feasible(device, shape, t),
                "infeasible tiling " + t.to_string() + " for " +
                    shape.to_string());
  const std::int64_t tile_h = tdc_tile_in_h(shape, t);
  const std::int64_t tile_w = tdc_tile_in_w(shape, t);
  // The grid replicates over the batch (one image's tiling per slice).
  const std::int64_t blocks = tdc_num_blocks(shape, t) * shape.batch;
  const double n = static_cast<double>(shape.n);

  KernelLaunch l;
  l.label = "tdc-core";
  l.num_blocks = blocks;
  l.block.threads = static_cast<int>(shape.n);
  l.block.shared_bytes = t.tc * tile_h * tile_w * 4;
  l.block.regs_per_thread = tdc_regs_per_thread(shape, t);

  // Listing 2 arithmetic: each thread walks every shared-tile element and
  // every (r, s); out-of-tile contributions are predicated off but the warp
  // pays for them (divergence) — so the block FLOP count is the paper's
  // flops_blk = 2·(tile_h·tile_w)·TC·N·R·S.
  l.flops_per_block = 2.0 * static_cast<double>(tile_h * tile_w) *
                      static_cast<double>(t.tc) * n *
                      static_cast<double>(shape.r * shape.s);

  // Global reads: the staged input cube (w-contiguous rows) plus each
  // thread's weight slice. In CRSN order the N threads of the block read
  // consecutive floats (fully coalesced); in CNRS the per-thread stride is
  // R·S·N elements, so every load touches its own sector. The weight tensor
  // (and for small layers the input plane) is re-read by every H/W tile;
  // those re-reads hit the L2 when the working set fits it.
  const double waste_in =
      coalescing_waste_factor(static_cast<double>(tile_w) * 4.0);
  const double waste_k = layout == TdcWeightLayout::kCRSN
                             ? coalescing_waste_factor(n * 4.0)
                             : coalescing_waste_factor(4.0);
  const double total_in =
      static_cast<double>(blocks) *
      static_cast<double>(t.tc * tile_h * tile_w) * 4.0 * waste_in;
  const double unique_in = static_cast<double>(shape.batch) *
                           static_cast<double>(shape.c * shape.h * shape.w) *
                           4.0;
  add_reread_traffic(device, total_in, unique_in, &l);
  const double total_k = static_cast<double>(blocks) *
                         static_cast<double>(t.tc * shape.r * shape.s) * n *
                         4.0 * waste_k;
  const double unique_k =
      static_cast<double>(shape.c * shape.r * shape.s) * n * 4.0 * waste_k;
  add_reread_traffic(device, total_k, unique_k, &l);

  // Output commits: every block writes its TH×TW×N tile with atomicAdd
  // (HWN layout — the N threads hit consecutive addresses). The RMW traffic
  // of every C partition lands in the L2; the unique output plane is what
  // eventually spills to DRAM.
  const double out_bytes_per_block =
      static_cast<double>(t.th * t.tw) * n * 4.0 *
      coalescing_waste_factor(n * 4.0);
  l.atomic_bytes = static_cast<double>(blocks) * out_bytes_per_block;
  l.bytes_written = static_cast<double>(shape.batch) *
                    static_cast<double>(shape.out_h() * shape.out_w()) * n * 4.0;

  l.sync_count = 1;  // single barrier after the cooperative tile load
  l.dependent_stalls = 1;
  l.ilp = static_cast<double>(std::min<std::int64_t>(t.th * t.tw, 8));
  l.compute_efficiency = 0.8;  // scatter-loop predication overhead
  return l;
}

LatencyBreakdown tdc_core_cost(const DeviceSpec& device, const ConvShape& shape,
                               const TdcTiling& t, TdcWeightLayout layout) {
  return simulate_latency(device, tdc_core_launch(device, shape, t, layout));
}

namespace {

// Fixed fan-out of the block interpreter: spatial tiles are strided across
// this many workspace slots, so the scratch footprint (and therefore
// tdc_core_workspace_floats) is independent of the machine's thread count.
constexpr std::int64_t kTdcMaxSlots = 64;

std::int64_t tdc_slot_floats(const ConvShape& shape, const TdcTiling& t) {
  return t.tc * tdc_tile_in_h(shape, t) * tdc_tile_in_w(shape, t) +
         t.th * t.tw;
}

std::int64_t tdc_num_slots(const ConvShape& shape, const TdcTiling& t) {
  const std::int64_t spatial =
      ceil_div(shape.out_h(), t.th) * ceil_div(shape.out_w(), t.tw);
  return std::min<std::int64_t>(spatial, kTdcMaxSlots);
}

std::int64_t tdc_core_workspace_floats_impl(const ConvShape& shape,
                                            const TdcTiling& t) {
  return tdc_num_slots(shape, t) * tdc_slot_floats(shape, t);
}

}  // namespace

std::int64_t tdc_core_workspace_floats(const ConvShape& shape,
                                       const TdcTiling& t) {
  TDC_CHECK(t.th >= 1 && t.tw >= 1 && t.tc >= 1);
  return tdc_core_workspace_floats_impl(shape, t);
}

void tdc_core_conv_into(const float* xdata, const Tensor& kernel_crsn,
                        const ConvShape& shape, const TdcTiling& t,
                        float* ydata, std::span<float> workspace,
                        bool parallel) {
  TDC_CHECK(t.th >= 1 && t.tw >= 1 && t.tc >= 1);
  TDC_CHECK_MSG(static_cast<std::int64_t>(workspace.size()) >=
                    tdc_core_workspace_floats_impl(shape, t),
                "tdc_core_conv workspace too small");

  const std::int64_t oh = shape.out_h();
  const std::int64_t ow = shape.out_w();
  const std::int64_t blocks_h = ceil_div(oh, t.th);
  const std::int64_t blocks_w = ceil_div(ow, t.tw);
  const std::int64_t blocks_c = ceil_div(shape.c, t.tc);
  const std::int64_t tile_h = tdc_tile_in_h(shape, t);
  const std::int64_t tile_w = tdc_tile_in_w(shape, t);

  std::fill(ydata, ydata + shape.n * oh * ow, 0.0f);

  // One invocation of this lambda interprets one thread block of Listing 2;
  // `tile` is the block's shared-memory stage, `temp` the per-thread TH×TW
  // register accumulator.
  auto run_block = [&](std::int64_t block_id, float* tile, float* temp) {
    const std::int64_t bc = block_id / (blocks_h * blocks_w);
    const std::int64_t rest = block_id % (blocks_h * blocks_w);
    const std::int64_t bh = rest / blocks_w;
    const std::int64_t bw = rest % blocks_w;

    const std::int64_t c0 = bc * t.tc;
    const std::int64_t c1 = std::min(c0 + t.tc, shape.c);
    const std::int64_t oh0 = bh * t.th;
    const std::int64_t ow0 = bw * t.tw;
    // Input-space origin of the staged tile.
    const std::int64_t ih0 = oh0 * shape.stride_h - shape.pad_h;
    const std::int64_t iw0 = ow0 * shape.stride_w - shape.pad_w;

    // copy(input_tile, X): cooperative load with zero fill at the borders.
    for (std::int64_t lc = 0; lc < c1 - c0; ++lc) {
      for (std::int64_t lh = 0; lh < tile_h; ++lh) {
        const std::int64_t ih = ih0 + lh;
        for (std::int64_t lw = 0; lw < tile_w; ++lw) {
          const std::int64_t iw = iw0 + lw;
          const bool inside =
              ih >= 0 && ih < shape.h && iw >= 0 && iw < shape.w;
          tile[(lc * tile_h + lh) * tile_w + lw] =
              inside ? xdata[((c0 + lc) * shape.h + ih) * shape.w + iw] : 0.0f;
        }
      }
    }
    // __syncthreads() boundary is implicit here.

    // Each "thread" n owns one output channel.
    for (std::int64_t n = 0; n < shape.n; ++n) {
      std::fill(temp, temp + t.th * t.tw, 0.0f);
      for (std::int64_t lc = 0; lc < c1 - c0; ++lc) {
        const std::int64_t c = c0 + lc;
        // copy(kernel, K, n, c): the thread's R×S weight slice (CRSN reads).
        for (std::int64_t lh = 0; lh < tile_h; ++lh) {
          for (std::int64_t lw = 0; lw < tile_w; ++lw) {
            const float v = tile[static_cast<std::size_t>(
                (lc * tile_h + lh) * tile_w + lw)];
            for (std::int64_t r = 0; r < shape.r; ++r) {
              const std::int64_t num_h = lh - r;
              if (num_h < 0 || num_h % shape.stride_h != 0) {
                continue;
              }
              const std::int64_t y_out = num_h / shape.stride_h;
              if (y_out >= t.th || oh0 + y_out >= oh) {
                continue;
              }
              for (std::int64_t s = 0; s < shape.s; ++s) {
                const std::int64_t num_w = lw - s;
                if (num_w < 0 || num_w % shape.stride_w != 0) {
                  continue;
                }
                const std::int64_t x_out = num_w / shape.stride_w;
                if (x_out >= t.tw || ow0 + x_out >= ow) {
                  continue;
                }
                temp[static_cast<std::size_t>(y_out * t.tw + x_out)] +=
                    v * kernel_crsn(c, r, s, n);
              }
            }
          }
        }
      }
      // atomicAdd commit of the register tile.
      for (std::int64_t th = 0; th < t.th; ++th) {
        const std::int64_t gh = oh0 + th;
        if (gh >= oh) {
          break;
        }
        for (std::int64_t tw = 0; tw < t.tw; ++tw) {
          const std::int64_t gw = ow0 + tw;
          if (gw >= ow) {
            break;
          }
          ydata[(n * oh + gh) * ow + gw] +=
              temp[static_cast<std::size_t>(th * t.tw + tw)];
        }
      }
    }
  };

  // Channel partitions of one spatial tile accumulate into the same output
  // patch (the GPU kernel's atomicAdd); running them serially inside the
  // spatial-tile loop keeps the executor race-free and deterministic while
  // the disjoint spatial tiles fan out across workspace slots. Spatial tiles
  // are strided over the slots so the scratch footprint stays fixed at
  // tdc_core_workspace_floats no matter how many threads the runtime has.
  const std::int64_t spatial_blocks = blocks_h * blocks_w;
  const std::int64_t slots = tdc_num_slots(shape, t);
  const std::int64_t slot_floats = tdc_slot_floats(shape, t);
  auto run_slots = [&](std::int64_t slot0, std::int64_t slot1) {
    for (std::int64_t slot = slot0; slot < slot1; ++slot) {
      float* tile = workspace.data() + slot * slot_floats;
      float* temp = tile + t.tc * tile_h * tile_w;
      for (std::int64_t s = slot; s < spatial_blocks; s += slots) {
        for (std::int64_t bc = 0; bc < blocks_c; ++bc) {
          run_block(bc * spatial_blocks + s, tile, temp);
        }
      }
    }
  };
  if (parallel) {
    parallel_for(0, slots, 1, run_slots);
  } else {
    run_slots(0, slots);
  }
}

Tensor tdc_core_conv(const Tensor& x, const Tensor& kernel_crsn,
                     const ConvShape& shape, const TdcTiling& t,
                     bool parallel) {
  TDC_CHECK_MSG(x.rank() == 3, "input must be [C,H,W]");
  TDC_CHECK_MSG(kernel_crsn.rank() == 4, "kernel must be CRSN [C,R,S,N]");
  TDC_CHECK_MSG(x.dim(0) == shape.c && x.dim(1) == shape.h && x.dim(2) == shape.w,
                "input does not match shape");
  TDC_CHECK_MSG(kernel_crsn.dim(0) == shape.c && kernel_crsn.dim(1) == shape.r &&
                    kernel_crsn.dim(2) == shape.s && kernel_crsn.dim(3) == shape.n,
                "kernel does not match shape");
  TDC_CHECK_MSG(shape.batch == 1,
                "the functional executor is single-image; batched shapes are "
                "for the cost models");
  TDC_CHECK(t.th >= 1 && t.tw >= 1 && t.tc >= 1);

  Tensor y({shape.n, shape.out_h(), shape.out_w()});
  std::vector<float> workspace(
      static_cast<std::size_t>(tdc_core_workspace_floats_impl(shape, t)));
  tdc_core_conv_into(x.raw(), kernel_crsn, shape, t, y.raw(), workspace,
                     parallel);
  return y;
}

}  // namespace tdc
