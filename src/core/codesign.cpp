#include "core/codesign.h"

#include <algorithm>
#include <cstdlib>
#include <tuple>

#include "common/check.h"

namespace tdc {

namespace {

// Candidate rank grid: multiples of `step` plus the full extent (so a mode
// can also stay undecomposed within a decomposed layer). Very wide modes
// (ResNet-50's 2048-channel 1×1s) coarsen the grid so the table stays at
// most ~16 rows per mode.
std::vector<std::int64_t> rank_grid(std::int64_t extent, std::int64_t step) {
  const std::int64_t eff_step =
      std::max(step, (extent / 16 + step - 1) / step * step);
  std::vector<std::int64_t> out;
  for (std::int64_t v = eff_step; v < extent; v += eff_step) {
    out.push_back(v);
  }
  if (out.empty() || out.back() != extent) {
    out.push_back(extent);
  }
  return out;
}

}  // namespace

double tucker_pipeline_latency(const DeviceSpec& device, const ConvShape& shape,
                               TuckerRanks ranks, TilingSelector selector) {
  const ConvShape pw1 = first_pointwise_shape(shape, ranks);
  const ConvShape core = core_conv_shape(shape, ranks);
  const ConvShape pw2 = last_pointwise_shape(shape, ranks);
  const double t1 = cudnn_implicit_gemm_cost(device, pw1).total_s;
  const TdcTiling tiling = select_tiling(selector, device, core);
  const double t2 = tdc_core_cost(device, core, tiling).total_s;
  const double t3 = cudnn_implicit_gemm_cost(device, pw2).total_s;
  return t1 + t2 + t3;
}

std::vector<RankCandidate> build_rank_table(const DeviceSpec& device,
                                            const ConvShape& shape,
                                            TilingSelector selector,
                                            std::int64_t rank_step) {
  TDC_CHECK_MSG(shape.valid(), "invalid shape");
  TDC_CHECK(rank_step >= 1);
  std::vector<RankCandidate> table;
  for (const std::int64_t d1 : rank_grid(shape.c, rank_step)) {
    for (const std::int64_t d2 : rank_grid(shape.n, rank_step)) {
      const TuckerRanks ranks{d1, d2};
      const ConvShape core = core_conv_shape(shape, ranks);
      // The TDC kernel maps one thread per core output channel, so D2 is
      // bounded by the block-size limit (never binding for the paper's
      // shapes, only for very wide 1×1 candidates).
      if (core.n > device.max_threads_per_block) {
        continue;
      }
      RankCandidate cand;
      cand.ranks = ranks;
      cand.tiling = select_tiling(selector, device, core);
      const ConvShape pw1 = first_pointwise_shape(shape, ranks);
      const ConvShape pw2 = last_pointwise_shape(shape, ranks);
      cand.latency_s = cudnn_implicit_gemm_cost(device, pw1).total_s +
                       tdc_core_cost(device, core, cand.tiling).total_s +
                       cudnn_implicit_gemm_cost(device, pw2).total_s;
      cand.flops = tucker_flops(shape, ranks);
      table.push_back(cand);
    }
  }
  return table;
}

std::optional<RankCandidate> choose_ranks(
    const std::vector<RankCandidate>& table, const ConvShape& shape,
    double layer_budget, double slack) {
  const double flops_cap =
      shape.flops() * (1.0 - layer_budget) * (1.0 + slack);

  // Algorithm 1 line 3: max{argmin_{P(D1,D2)≤B} T(D1,D2)} — find the fastest
  // candidate under the budget, then take the largest ranks on its latency
  // plateau (Figure 4: latency is a staircase in the channel counts, so a
  // plateau of rank pairs shares the minimum). The band is anchored at the
  // global minimum so near-ties cannot ratchet toward degenerate pairs.
  constexpr double kPlateauBand = 1.10;
  double min_latency = -1.0;
  for (const auto& cand : table) {
    if (cand.flops > flops_cap) {
      continue;
    }
    if (min_latency < 0.0 || cand.latency_s < min_latency) {
      min_latency = cand.latency_s;
    }
  }
  if (min_latency < 0.0) {
    return std::nullopt;
  }

  // "Maximize ranks" with balanced semantics: a (64,64) kernel retains more
  // of both channel modes than a degenerate (512,32) pair of equal latency,
  // so rank pairs are ordered by their smaller mode first, then symmetry,
  // then total size.
  const auto rank_order_key = [](const TuckerRanks& r) {
    return std::tuple(std::min(r.d1, r.d2), -std::abs(r.d1 - r.d2),
                      r.d1 + r.d2);
  };
  std::optional<RankCandidate> best;
  for (const auto& cand : table) {
    if (cand.flops > flops_cap || cand.latency_s > min_latency * kPlateauBand) {
      continue;
    }
    if (!best.has_value() ||
        rank_order_key(cand.ranks) > rank_order_key(best->ranks)) {
      best = cand;
    }
  }
  return best;
}

CodesignResult run_codesign(const DeviceSpec& device,
                            const std::vector<ConvShape>& layers,
                            const CodesignOptions& options) {
  TDC_CHECK_MSG(options.budget > 0.0 && options.budget < 1.0,
                "budget must be a reduction ratio in (0, 1)");
  CodesignResult result;

  const auto is_decomposable = [&options](const ConvShape& shape) {
    if (shape.r > 1 || shape.s > 1) {
      return true;
    }
    // Pointwise layers need room for a meaningful rank grid on both modes.
    return options.decompose_pointwise && shape.c >= 2 * options.rank_step &&
           shape.n >= 2 * options.rank_step;
  };

  // Total FLOPs over the decomposable layers drives the budget ledger.
  double decomposable_flops = 0.0;
  for (const auto& shape : layers) {
    if (is_decomposable(shape)) {
      decomposable_flops += shape.flops();
    }
  }
  // FLOPs that must be removed model-wide to meet B.
  double reduction_needed = options.budget * decomposable_flops;
  double decomposable_remaining = decomposable_flops;

  for (const auto& shape : layers) {
    LayerDecision dec;
    dec.shape = shape;
    dec.original_flops = shape.flops();
    dec.original_latency_s = cudnn_implicit_gemm_cost(device, shape).total_s;
    dec.chosen_flops = dec.original_flops;
    dec.chosen_latency_s = dec.original_latency_s;

    if (is_decomposable(shape)) {
      // Per-layer budget: spread the outstanding reduction over the
      // decomposable FLOPs not yet visited. Skipped layers push their share
      // onto later ones — the paper's budget redistribution.
      const double layer_budget = std::clamp(
          reduction_needed / std::max(decomposable_remaining, 1.0), 0.0, 0.97);
      const auto table =
          build_rank_table(device, shape, options.selector, options.rank_step);
      auto chosen =
          choose_ranks(table, shape, layer_budget, options.budget_slack);
      if (!chosen.has_value()) {
        // The rank grid cannot hit this layer's (redistributed) budget —
        // the paper's "⪅" tolerance: take the most aggressive candidate
        // available and let the θ rule decide.
        for (const auto& cand : table) {
          if (!chosen || cand.flops < chosen->flops) {
            chosen = cand;
          }
        }
      }
      if (chosen.has_value()) {
        // θ rule: keep the original layer unless the pipeline wins by ≥ θ.
        const bool worthwhile =
            chosen->latency_s < (1.0 - options.theta) * dec.original_latency_s;
        if (worthwhile) {
          dec.decomposed = true;
          dec.ranks = chosen->ranks;
          dec.tiling = chosen->tiling;
          dec.chosen_flops = chosen->flops;
          dec.chosen_latency_s = chosen->latency_s;
          reduction_needed -= dec.original_flops - dec.chosen_flops;
        }
      }
      decomposable_remaining -= dec.original_flops;
    }

    result.total_original_flops += dec.original_flops;
    result.total_chosen_flops += dec.chosen_flops;
    result.total_original_latency_s += dec.original_latency_s;
    result.total_chosen_latency_s += dec.chosen_latency_s;
    result.layers.push_back(dec);
  }
  return result;
}

}  // namespace tdc
