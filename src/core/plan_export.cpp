#include "core/plan_export.h"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/check.h"
#include "tucker/flops.h"

namespace tdc {

std::string plan_to_csv(const CodesignResult& result) {
  std::ostringstream os;
  os << "layer,C,N,H,W,R,S,stride,decomposed,D1,D2,TH,TW,TC,orig_us,"
        "chosen_us\n";
  for (std::size_t i = 0; i < result.layers.size(); ++i) {
    const LayerDecision& d = result.layers[i];
    os << i << ',' << d.shape.c << ',' << d.shape.n << ',' << d.shape.h << ','
       << d.shape.w << ',' << d.shape.r << ',' << d.shape.s << ','
       << d.shape.stride_h << ',' << (d.decomposed ? 1 : 0) << ',';
    if (d.decomposed) {
      os << d.ranks.d1 << ',' << d.ranks.d2 << ',' << d.tiling.th << ','
         << d.tiling.tw << ',' << d.tiling.tc << ',';
    } else {
      os << ",,,,,";
    }
    os << d.original_latency_s * 1e6 << ',' << d.chosen_latency_s * 1e6
       << '\n';
  }
  return os.str();
}

std::string plan_summary(const CodesignResult& result) {
  std::int64_t decomposed = 0;
  std::int64_t kept = 0;
  for (const auto& d : result.layers) {
    (d.decomposed ? decomposed : kept) += 1;
  }
  std::ostringstream os;
  os << "TDC deployment plan\n"
     << "  layers: " << result.layers.size() << " (" << decomposed
     << " decomposed, " << kept << " kept)\n"
     << "  conv FLOPs: " << result.total_original_flops / 1e9 << " G -> "
     << result.total_chosen_flops / 1e9 << " G ("
     << result.achieved_flops_reduction() * 100.0 << "% reduction)\n"
     << "  conv latency: " << result.total_original_latency_s * 1e3
     << " ms -> " << result.total_chosen_latency_s * 1e3 << " ms ("
     << result.speedup() << "x)\n";
  return os.str();
}

namespace {

std::string kernel_file_name(const ConvShape& core) {
  std::ostringstream os;
  os << "tdc_core_c" << core.c << "_n" << core.n << "_hw" << core.h << "_k"
     << core.r << "_s" << core.stride_h << ".cu";
  return os.str();
}

}  // namespace

std::map<std::string, std::string> plan_kernels(const DeviceSpec& device,
                                                const CodesignResult& result) {
  std::map<std::string, std::string> files;
  for (const auto& d : result.layers) {
    if (!d.decomposed) {
      continue;
    }
    const ConvShape core = core_conv_shape(d.shape, d.ranks);
    const std::string name = kernel_file_name(core);
    if (files.count(name) != 0) {
      continue;  // identical core shapes share one kernel
    }
    files.emplace(name, generate_cuda_source(device, core, d.tiling));
  }
  return files;
}

int export_plan(const std::string& directory, const DeviceSpec& device,
                const CodesignResult& result) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(directory, ec);
  TDC_CHECK_MSG(!ec, "cannot create plan directory " + directory);

  int written = 0;
  const auto write_file = [&](const std::string& name,
                              const std::string& contents) {
    std::ofstream out(fs::path(directory) / name);
    TDC_CHECK_MSG(out.good(), "cannot open " + name + " for writing");
    out << contents;
    ++written;
  };
  write_file("plan.csv", plan_to_csv(result));
  write_file("SUMMARY.txt", plan_summary(result));
  for (const auto& [name, source] : plan_kernels(device, result)) {
    write_file(name, source);
  }
  return written;
}

}  // namespace tdc
