#include "core/tdc_model.h"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <unordered_map>

#include "common/check.h"

namespace tdc {

namespace {

std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

// Tiling selection is pure in (device, shape); rank tables and end-to-end
// walks re-ask for the same shapes constantly, so memoize.
class TilingCache {
 public:
  bool lookup(const std::string& key, TdcTiling* out) {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = map_.find(key);
    if (it == map_.end()) {
      return false;
    }
    *out = it->second;
    return true;
  }
  void store(const std::string& key, const TdcTiling& t) {
    std::lock_guard<std::mutex> lock(mu_);
    map_.emplace(key, t);
  }

 private:
  std::mutex mu_;
  std::unordered_map<std::string, TdcTiling> map_;
};

TilingCache& tiling_cache() {
  static TilingCache cache;
  return cache;
}

std::string cache_key(const char* kind, const DeviceSpec& device,
                      const ConvShape& shape) {
  return std::string(kind) + "|" + device.name + "|" + shape.to_string();
}

int tdc_regs_estimate(const ConvShape& shape, const TdcTiling& t) {
  return static_cast<int>(28 + t.th * t.tw + shape.r * shape.s);
}

BlockResources tdc_block_resources(const ConvShape& shape, const TdcTiling& t) {
  return BlockResources{
      static_cast<int>(shape.n),
      t.tc * tdc_tile_in_h(shape, t) * tdc_tile_in_w(shape, t) * 4,
      tdc_regs_estimate(shape, t)};
}

}  // namespace

double paper_comp_latency_block(const DeviceSpec& device,
                                const ConvShape& shape, const TdcTiling& t) {
  const double tile_h = static_cast<double>(tdc_tile_in_h(shape, t));
  const double tile_w = static_cast<double>(tdc_tile_in_w(shape, t));
  return 2.0 * tile_h * tile_w * static_cast<double>(t.tc) *
         static_cast<double>(shape.r * shape.s) *
         static_cast<double>(device.total_threads()) / device.peak_flops;
}

double paper_comp_waves(const DeviceSpec& device, const ConvShape& shape,
                        const TdcTiling& t) {
  const OccupancyResult occ =
      compute_occupancy(device, tdc_block_resources(shape, t));
  TDC_CHECK_MSG(occ.launchable, "waves of an unlaunchable tiling");
  const double total_threads = static_cast<double>(tdc_num_blocks(shape, t)) *
                               static_cast<double>(shape.batch) *
                               static_cast<double>(shape.n);
  return std::ceil(total_threads /
                   (static_cast<double>(device.total_threads()) * occ.occupancy));
}

double paper_comp_latency(const DeviceSpec& device, const ConvShape& shape,
                          const TdcTiling& t) {
  return paper_comp_waves(device, shape, t) *
         paper_comp_latency_block(device, shape, t);
}

double paper_mem_volume(const ConvShape& shape, const TdcTiling& t) {
  const double blocks_hw =
      static_cast<double>(ceil_div(shape.out_h(), t.th)) *
      static_cast<double>(ceil_div(shape.out_w(), t.tw));
  const double tile =
      static_cast<double>(tdc_tile_in_h(shape, t) * tdc_tile_in_w(shape, t));
  // Eq. 17: every (hw-tile, channel) pair is staged once.
  const double volume_x = blocks_hw * static_cast<double>(shape.c) * tile;
  // Eq. 16 (with the constant R·S factor restored): each hw-tile reloads the
  // whole weight tensor across its C partitions.
  const double volume_k = blocks_hw * static_cast<double>(shape.c) *
                          static_cast<double>(shape.n) *
                          static_cast<double>(shape.r * shape.s);
  // Eq. 18: the output plane is committed once per C partition.
  const double volume_y = static_cast<double>(shape.out_h() * shape.out_w()) *
                          static_cast<double>(shape.n) *
                          static_cast<double>(ceil_div(shape.c, t.tc));
  // Eq. 19; the batch replicates every per-image term.
  return static_cast<double>(shape.batch) * (volume_x + volume_k + volume_y);
}

double paper_mem_latency(const DeviceSpec& device, const ConvShape& shape,
                         const TdcTiling& t) {
  return paper_mem_volume(shape, t) * 4.0 / device.mem_bandwidth;
}

std::vector<TdcTiling> enumerate_tilings(const DeviceSpec& device,
                                         const ConvShape& shape) {
  TDC_CHECK_MSG(shape.valid(), "invalid shape");
  std::vector<TdcTiling> out;
  const std::int64_t max_th = std::min<std::int64_t>(shape.out_h(), 32);
  const std::int64_t max_tw = std::min<std::int64_t>(shape.out_w(), 32);
  // TC candidates: every value up to 64, then warp-sized steps — wide
  // channel extents (1×1 cores of bottleneck layers) would otherwise blow
  // the search space up without adding distinct behaviour.
  std::vector<std::int64_t> tc_options;
  for (std::int64_t tc = 1; tc <= std::min<std::int64_t>(shape.c, 64); ++tc) {
    tc_options.push_back(tc);
  }
  for (std::int64_t tc = 96; tc <= shape.c; tc += 32) {
    tc_options.push_back(tc);
  }
  if (tc_options.back() != shape.c && shape.c > 64) {
    tc_options.push_back(shape.c);
  }

  for (std::int64_t th = 1; th <= max_th; ++th) {
    for (std::int64_t tw = 1; tw <= max_tw; ++tw) {
      if (28 + th * tw + shape.r * shape.s > device.max_regs_per_thread) {
        continue;  // register-file bound, would spill
      }
      for (const std::int64_t tc : tc_options) {
        const TdcTiling t{th, tw, tc};
        if (tdc_tiling_feasible(device, shape, t)) {
          out.push_back(t);
        }
      }
    }
  }
  TDC_CHECK_MSG(!out.empty(),
                "no feasible tiling for " + shape.to_string() + " on " +
                    device.name);
  return out;
}

TdcTiling select_tiling_model(const DeviceSpec& device,
                              const ConvShape& shape) {
  const std::string key = cache_key("model", device, shape);
  TdcTiling cached;
  if (tiling_cache().lookup(key, &cached)) {
    return cached;
  }
  std::vector<TdcTiling> tilings = enumerate_tilings(device, shape);

  // Rank by the closed-form compute latency (Eq. 15).
  std::vector<std::pair<double, std::size_t>> by_comp(tilings.size());
  for (std::size_t i = 0; i < tilings.size(); ++i) {
    by_comp[i] = {paper_comp_latency(device, shape, tilings[i]), i};
  }
  std::sort(by_comp.begin(), by_comp.end());

  const std::size_t keep = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::ceil(
             device.model_top_fraction * static_cast<double>(tilings.size()))));

  // Among the retained candidates, minimize the data-movement volume.
  TdcTiling best = tilings[by_comp.front().second];
  double best_mem = paper_mem_volume(shape, best);
  for (std::size_t i = 1; i < keep; ++i) {
    const TdcTiling& t = tilings[by_comp[i].second];
    const double mem = paper_mem_volume(shape, t);
    if (mem < best_mem) {
      best_mem = mem;
      best = t;
    }
  }
  tiling_cache().store(key, best);
  return best;
}

TdcTiling select_tiling_oracle(const DeviceSpec& device,
                               const ConvShape& shape) {
  const std::string key = cache_key("oracle", device, shape);
  TdcTiling cached;
  if (tiling_cache().lookup(key, &cached)) {
    return cached;
  }
  std::vector<TdcTiling> tilings = enumerate_tilings(device, shape);
  TdcTiling best = tilings.front();
  double best_latency = tdc_core_cost(device, shape, best).total_s;
  for (std::size_t i = 1; i < tilings.size(); ++i) {
    const double latency = tdc_core_cost(device, shape, tilings[i]).total_s;
    if (latency < best_latency) {
      best_latency = latency;
      best = tilings[i];
    }
  }
  tiling_cache().store(key, best);
  return best;
}

TdcTiling select_tiling(TilingSelector sel, const DeviceSpec& device,
                        const ConvShape& shape) {
  return sel == TilingSelector::kModel ? select_tiling_model(device, shape)
                                       : select_tiling_oracle(device, shape);
}

}  // namespace tdc
