// CUDA source generation for the TDC core kernel.
//
// TDC is a code-generation framework: once the co-design pass fixes the
// ranks and the tiling model fixes (TH, TW, TC) per layer, the deployable
// artifact is specialized CUDA C++ with every tile extent a compile-time
// constant. This module emits that source. It cannot be compiled in this
// CUDA-less environment, but its structure is exercised by tests and it is
// what a user would ship to a real GPU.
#pragma once

#include <string>

#include "core/tdc_kernel.h"

namespace tdc {

struct CodegenOptions {
  std::string kernel_name = "tdc_core_conv_kernel";
  bool emit_launcher = true;       ///< also emit a host-side launch wrapper
  bool emit_header_comment = true;
  TdcWeightLayout layout = TdcWeightLayout::kCRSN;
};

/// Emit the specialized CUDA kernel (and optionally its host launcher) for a
/// core-convolution shape and tiling.
std::string generate_cuda_kernel(const ConvShape& shape, const TdcTiling& t,
                                 const CodegenOptions& options = {});

/// Emit a small self-contained .cu translation unit: kernel + launcher +
/// grid/block comment block for the given device.
std::string generate_cuda_source(const DeviceSpec& device,
                                 const ConvShape& shape, const TdcTiling& t,
                                 const CodegenOptions& options = {});

}  // namespace tdc
