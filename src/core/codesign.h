// The TDC co-design framework (paper Section 6, Algorithm 1).
//
// Given a model's convolution layers and a FLOPs-reduction budget B, this
// pass builds the per-layer latency table T over (D1, D2) candidates spaced
// in steps of 32 (a GPU warp), then chooses ranks that minimize the
// *measured* (simulated) pipeline latency while keeping the ranks as large
// as the budget allows. A layer is left undecomposed when decomposition
// would not beat the original layer by at least θ (the two extra 1×1 kernel
// launches can erase small wins) — its unused FLOPs-reduction is then
// redistributed across the remaining layers.
#pragma once

#include <optional>
#include <vector>

#include "core/tdc_model.h"
#include "gpusim/library_cost.h"
#include "tucker/flops.h"

namespace tdc {

/// One row of the per-layer performance table T (Figure 5).
struct RankCandidate {
  TuckerRanks ranks;
  double latency_s = 0.0;  ///< full pipeline: 1×1 + core + 1×1
  double flops = 0.0;      ///< decomposed-layer FLOPs
  TdcTiling tiling;        ///< core-kernel tiling chosen by the selector
};

/// Latency of the decomposed pipeline for one candidate: cuDNN 1×1 stages +
/// TDC core kernel at the selected tiling (the paper's deployment mix).
double tucker_pipeline_latency(const DeviceSpec& device, const ConvShape& shape,
                               TuckerRanks ranks, TilingSelector selector);

/// Build the performance table for a layer: all (D1, D2) with D1, D2
/// multiples of `rank_step` (paper: 32) up to (C, N), including the full
/// ranks themselves.
std::vector<RankCandidate> build_rank_table(const DeviceSpec& device,
                                            const ConvShape& shape,
                                            TilingSelector selector,
                                            std::int64_t rank_step = 32);

struct CodesignOptions {
  double budget = 0.6;          ///< target FLOPs-reduction ratio B
  double theta = 0.15;          ///< skip threshold θ (paper: 15 %)
  double budget_slack = 0.05;   ///< the "⪅" tolerance on P(D1,D2) ≤ B
  std::int64_t rank_step = 32;
  TilingSelector selector = TilingSelector::kModel;
  /// Also consider 1×1 convolutions for decomposition (their Tucker-2 form
  /// is a low-rank matrix chain); needed for the bottleneck-heavy models
  /// (ResNet-50) to reach the paper's budgets. The θ rule still gates every
  /// decision.
  bool decompose_pointwise = true;
};

/// Decision for one convolution layer.
struct LayerDecision {
  ConvShape shape;
  bool decomposed = false;
  TuckerRanks ranks;            ///< valid iff decomposed
  TdcTiling tiling;             ///< valid iff decomposed
  double original_latency_s = 0.0;  ///< cuDNN implicit-GEMM on the layer
  double chosen_latency_s = 0.0;    ///< pipeline latency (or original if kept)
  double original_flops = 0.0;
  double chosen_flops = 0.0;
};

struct CodesignResult {
  std::vector<LayerDecision> layers;
  double total_original_flops = 0.0;
  double total_chosen_flops = 0.0;
  double total_original_latency_s = 0.0;
  double total_chosen_latency_s = 0.0;

  double achieved_flops_reduction() const {
    return 1.0 - total_chosen_flops / total_original_flops;
  }
  double speedup() const {
    return total_original_latency_s / total_chosen_latency_s;
  }
};

/// Algorithm 1 over a sequence of decomposable convolution layers. Layers
/// with R = S = 1 are never decomposed (they are already the cheap stage).
CodesignResult run_codesign(const DeviceSpec& device,
                            const std::vector<ConvShape>& layers,
                            const CodesignOptions& options);

/// Rank choice for a single layer under a per-layer budget (Algorithm 1
/// line 3): minimize latency subject to P(D1,D2) ⪅ B, break ties toward the
/// largest ranks. Returns nullopt if no candidate meets the budget.
std::optional<RankCandidate> choose_ranks(
    const std::vector<RankCandidate>& table, const ConvShape& shape,
    double layer_budget, double slack);

}  // namespace tdc
