// The TVM-style direct-convolution scheme (paper Section 5.1, Listing 1).
//
// This is the comparison scheme the paper analyzes: thread blocks tile the
// output plane over H and W (plus the output-channel axis — "all threads in
// the same thread block require the same kernel weight elements"), threads
// own output positions, and each iteration of the input-channel loop stages
// one channel of input plus the weight slice into shared memory behind a
// pair of __syncthreads. Crucially there is *no input-channel split*:
// Tucker cores have few channels and small planes, so the grid stays small
// and the per-channel double barrier is paid C times — the under-utilization
// that motivates the TDC kernel. Tile sizes are chosen by exhaustive search
// over the scheme's own space, standing in for TVM's ML-based auto-tuner.
#pragma once

#include <cstdint>
#include <string>

#include "conv/conv_shape.h"
#include "gpusim/launch.h"
#include "tensor/tensor.h"

namespace tdc {

struct TvmTiling {
  std::int64_t th = 1;      ///< output rows per block
  std::int64_t tw = 1;      ///< output cols per block
  std::int64_t n_grid = 1;  ///< output-channel blocks (each owns N/n_grid)
  bool operator==(const TvmTiling&) const = default;
  std::string to_string() const;
};

/// Output channels each block computes: ceil(N / n_grid).
std::int64_t tvm_n_chunk(const ConvShape& shape, const TvmTiling& t);

bool tvm_tiling_feasible(const DeviceSpec& device, const ConvShape& shape,
                         const TvmTiling& t);

/// Launch descriptor of the scheme for the latency model.
KernelLaunch tvm_scheme_launch(const DeviceSpec& device, const ConvShape& shape,
                               const TvmTiling& t);

LatencyBreakdown tvm_scheme_cost(const DeviceSpec& device,
                                 const ConvShape& shape, const TvmTiling& t);

/// Auto-tuned tiling (exhaustive over the scheme's space — the stand-in for
/// TVM's tuner).
TvmTiling select_tvm_tiling(const DeviceSpec& device, const ConvShape& shape);

/// Cost at the auto-tuned tiling.
LatencyBreakdown tvm_best_cost(const DeviceSpec& device, const ConvShape& shape);

/// Functional execution of the scheme (CNRS weights, [C,H,W] input,
/// [N,OH,OW] output); numerically equivalent to conv2d_reference.
Tensor tvm_scheme_conv(const Tensor& x, const Tensor& kernel_cnrs,
                       const ConvShape& shape, const TvmTiling& t);

}  // namespace tdc
