// Deployment-plan export.
//
// The artifact a TDC user ships to a GPU box is (a) the per-layer
// compression plan — which layers are decomposed, at which ranks, with
// which tiling — and (b) one specialized CUDA kernel per distinct core
// shape. This module renders both: the plan as a machine-readable CSV plus
// a human-readable summary, and the kernels through the code generator.
#pragma once

#include <map>
#include <string>

#include "core/codegen.h"
#include "core/codesign.h"

namespace tdc {

/// CSV of the per-layer decisions:
/// layer_index,C,N,H,W,R,S,stride,decomposed,D1,D2,TH,TW,TC,orig_us,chosen_us
std::string plan_to_csv(const CodesignResult& result);

/// Human-readable plan summary (totals, reduction, speedup, skip counts).
std::string plan_summary(const CodesignResult& result);

/// One generated CUDA source per distinct decomposed core shape, keyed by a
/// filesystem-safe name ("tdc_core_c32_n32_hw28_s1.cu").
std::map<std::string, std::string> plan_kernels(const DeviceSpec& device,
                                                const CodesignResult& result);

/// Write the CSV, the summary, and every kernel under `directory`
/// (created if missing). Returns the number of files written.
int export_plan(const std::string& directory, const DeviceSpec& device,
                const CodesignResult& result);

}  // namespace tdc
