// Static layer/model descriptors.
//
// The end-to-end evaluation (paper Figures 8–9) does not need weights — it
// needs every layer's *shape*: convolution geometry for the compression and
// latency models, element counts for the memory-bound layers. ModelSpec is
// that inventory for the five CNNs of the paper plus the CIFAR ResNet-20 of
// Table 2.
//
// Lives in core/ (not nn/) because the execution layer compiles ModelSpecs:
// the layering DAG is common → linalg/fft/tensor → conv/core → exec → nn,
// so the descriptor types sit below exec while the concrete inventories
// (nn/models.h, nn/inception.h) stay above it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "conv/conv_shape.h"

namespace tdc {

enum class LayerKind {
  kConv,         ///< convolution (any R×S, incl. 1×1 and the 7×7 stem)
  kPool,         ///< max/avg pooling
  kGlobalPool,   ///< global average pooling
  kElementwise,  ///< BN (inference), ReLU, bias, residual add, concat
  kFullyConnected,
};

/// What a kElementwise layer computes (graph execution; the latency walks
/// price every variant identically as one pass over the elements).
enum class EltOp {
  kRelu,
  kBatchNorm,  ///< inference-mode per-channel affine
  kAdd,        ///< residual join
  kAddRelu,    ///< residual join + activation (ResNet's fused add_relu)
  kConcat,     ///< channel concatenation (Inception, DenseNet)
};

/// kPool/kGlobalPool window geometry. `window == 0` means global (the whole
/// plane); padding taps are excluded (max ignores them, avg divides by the
/// in-bounds count).
struct PoolGeom {
  std::int64_t window = 0;
  std::int64_t stride = 1;
  std::int64_t pad = 0;
  bool max_pool = true;
};

struct LayerSpec {
  LayerKind kind = LayerKind::kElementwise;
  std::string name;

  /// kConv: the convolution problem.
  ConvShape conv;

  /// kPool / kGlobalPool / kElementwise: element counts.
  double elems_in = 0.0;
  double elems_out = 0.0;

  /// kFullyConnected.
  std::int64_t fc_in = 0;
  std::int64_t fc_out = 0;

  /// Producer layers this layer reads, by index into ModelSpec::layers.
  /// Empty means "the previous layer" (the model input for layer 0) — the
  /// linear default every chain layer uses. Residual adds list
  /// {main, shortcut}, concats list the branches in channel order.
  std::vector<std::int64_t> inputs;

  /// kElementwise: the operator (graph execution only).
  EltOp elt = EltOp::kRelu;

  /// kPool / kGlobalPool: window geometry (graph execution only).
  PoolGeom pool;

  double flops() const {
    switch (kind) {
      case LayerKind::kConv:
        return conv.flops();
      case LayerKind::kFullyConnected:
        return 2.0 * static_cast<double>(fc_in) * static_cast<double>(fc_out);
      default:
        return elems_in;  // one pass over the input
    }
  }

  static LayerSpec make_conv(std::string name, const ConvShape& shape) {
    LayerSpec l;
    l.kind = LayerKind::kConv;
    l.name = std::move(name);
    l.conv = shape;
    return l;
  }
  static LayerSpec make_pool(std::string name, double in, double out,
                             PoolGeom geom = PoolGeom{2, 2, 0, true}) {
    LayerSpec l;
    l.kind = LayerKind::kPool;
    l.name = std::move(name);
    l.elems_in = in;
    l.elems_out = out;
    l.pool = geom;
    return l;
  }
  static LayerSpec make_elementwise(std::string name, double elems,
                                    EltOp op = EltOp::kRelu,
                                    std::vector<std::int64_t> inputs = {}) {
    LayerSpec l;
    l.kind = LayerKind::kElementwise;
    l.name = std::move(name);
    l.elems_in = elems;
    l.elems_out = elems;
    l.elt = op;
    l.inputs = std::move(inputs);
    return l;
  }
  static LayerSpec make_global_pool(std::string name, double in, double out) {
    LayerSpec l;
    l.kind = LayerKind::kGlobalPool;
    l.name = std::move(name);
    l.elems_in = in;
    l.elems_out = out;
    l.pool = PoolGeom{0, 1, 0, /*max_pool=*/false};
    return l;
  }
  static LayerSpec make_fc(std::string name, std::int64_t in, std::int64_t out) {
    LayerSpec l;
    l.kind = LayerKind::kFullyConnected;
    l.name = std::move(name);
    l.fc_in = in;
    l.fc_out = out;
    return l;
  }
};

struct ModelSpec {
  std::string name;
  std::vector<LayerSpec> layers;

  double total_flops() const {
    double f = 0.0;
    for (const auto& l : layers) {
      f += l.flops();
    }
    return f;
  }
  double conv_flops() const {
    double f = 0.0;
    for (const auto& l : layers) {
      if (l.kind == LayerKind::kConv) {
        f += l.flops();
      }
    }
    return f;
  }
  std::vector<ConvShape> conv_shapes() const {
    std::vector<ConvShape> out;
    for (const auto& l : layers) {
      if (l.kind == LayerKind::kConv) {
        out.push_back(l.conv);
      }
    }
    return out;
  }
  /// Convolutions eligible for Tucker decomposition (spatial filters).
  std::vector<ConvShape> decomposable_conv_shapes() const {
    std::vector<ConvShape> out;
    for (const auto& l : layers) {
      if (l.kind == LayerKind::kConv && (l.conv.r > 1 || l.conv.s > 1)) {
        out.push_back(l.conv);
      }
    }
    return out;
  }
};

}  // namespace tdc
