// Residual block: y = relu(main(x) + shortcut(x)).
//
// The shortcut is the identity when null; otherwise a projection path
// (1×1 conv + BN, as in ResNet downsampling blocks).
#pragma once

#include "autograd/layer.h"

namespace tdc {

class ResidualBlock : public Layer {
 public:
  ResidualBlock(std::string name, std::unique_ptr<Layer> main,
                std::unique_ptr<Layer> shortcut /* may be null */);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Param*> params() override;
  std::string name() const override { return name_; }

  Layer* main() { return main_.get(); }
  /// Null for identity shortcuts.
  Layer* shortcut() { return shortcut_.get(); }

 private:
  std::string name_;
  std::unique_ptr<Layer> main_;
  std::unique_ptr<Layer> shortcut_;
  Tensor relu_mask_;
};

}  // namespace tdc
