#include "autograd/layers.h"

#include <algorithm>

#include "common/check.h"

namespace tdc {

Tensor ReLU::forward(const Tensor& x, bool /*train*/) {
  mask_ = Tensor(x.dims());
  Tensor y(x.dims());
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    const bool pos = x[i] > 0.0f;
    mask_[i] = pos ? 1.0f : 0.0f;
    y[i] = pos ? x[i] : 0.0f;
  }
  return y;
}

Tensor ReLU::backward(const Tensor& grad_out) {
  TDC_CHECK_MSG(grad_out.same_shape(mask_), "ReLU backward shape mismatch");
  Tensor g(grad_out.dims());
  for (std::int64_t i = 0; i < g.numel(); ++i) {
    g[i] = grad_out[i] * mask_[i];
  }
  return g;
}

Tensor Flatten::forward(const Tensor& x, bool /*train*/) {
  cached_dims_ = x.dims();
  return x.reshaped({x.dim(0), x.numel() / x.dim(0)});
}

Tensor Flatten::backward(const Tensor& grad_out) {
  return grad_out.reshaped(cached_dims_);
}

Tensor MaxPool2x2::forward(const Tensor& x, bool /*train*/) {
  TDC_CHECK_MSG(x.rank() == 4, "MaxPool2x2 expects [B,C,H,W]");
  TDC_CHECK_MSG(x.dim(2) % 2 == 0 && x.dim(3) % 2 == 0,
                "MaxPool2x2 requires even spatial dims");
  cached_dims_ = x.dims();
  const std::int64_t b = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  Tensor y({b, c, h / 2, w / 2});
  argmax_ = Tensor({b, c, h / 2, w / 2});
  for (std::int64_t bi = 0; bi < b; ++bi) {
    for (std::int64_t ci = 0; ci < c; ++ci) {
      for (std::int64_t oh = 0; oh < h / 2; ++oh) {
        for (std::int64_t ow = 0; ow < w / 2; ++ow) {
          float best = x(bi, ci, oh * 2, ow * 2);
          std::int64_t best_idx = (oh * 2) * w + ow * 2;
          for (int dy = 0; dy < 2; ++dy) {
            for (int dx = 0; dx < 2; ++dx) {
              const float v = x(bi, ci, oh * 2 + dy, ow * 2 + dx);
              if (v > best) {
                best = v;
                best_idx = (oh * 2 + dy) * w + (ow * 2 + dx);
              }
            }
          }
          y(bi, ci, oh, ow) = best;
          argmax_(bi, ci, oh, ow) = static_cast<float>(best_idx);
        }
      }
    }
  }
  return y;
}

Tensor MaxPool2x2::backward(const Tensor& grad_out) {
  Tensor g(cached_dims_);
  const std::int64_t b = cached_dims_[0], c = cached_dims_[1],
                     h = cached_dims_[2], w = cached_dims_[3];
  for (std::int64_t bi = 0; bi < b; ++bi) {
    for (std::int64_t ci = 0; ci < c; ++ci) {
      for (std::int64_t oh = 0; oh < h / 2; ++oh) {
        for (std::int64_t ow = 0; ow < w / 2; ++ow) {
          const auto idx =
              static_cast<std::int64_t>(argmax_(bi, ci, oh, ow));
          g[((bi * c + ci) * h * w) + idx] += grad_out(bi, ci, oh, ow);
        }
      }
    }
  }
  return g;
}

Tensor GlobalAvgPool::forward(const Tensor& x, bool /*train*/) {
  TDC_CHECK_MSG(x.rank() == 4, "GlobalAvgPool expects [B,C,H,W]");
  cached_dims_ = x.dims();
  const std::int64_t b = x.dim(0), c = x.dim(1);
  const std::int64_t plane = x.dim(2) * x.dim(3);
  Tensor y({b, c});
  for (std::int64_t bi = 0; bi < b; ++bi) {
    for (std::int64_t ci = 0; ci < c; ++ci) {
      double acc = 0.0;
      const float* src = x.raw() + (bi * c + ci) * plane;
      for (std::int64_t i = 0; i < plane; ++i) {
        acc += src[i];
      }
      y(bi, ci) = static_cast<float>(acc / static_cast<double>(plane));
    }
  }
  return y;
}

Tensor GlobalAvgPool::backward(const Tensor& grad_out) {
  const std::int64_t b = cached_dims_[0], c = cached_dims_[1];
  const std::int64_t plane = cached_dims_[2] * cached_dims_[3];
  Tensor g(cached_dims_);
  for (std::int64_t bi = 0; bi < b; ++bi) {
    for (std::int64_t ci = 0; ci < c; ++ci) {
      const float v =
          grad_out(bi, ci) / static_cast<float>(plane);
      float* dst = g.raw() + (bi * c + ci) * plane;
      for (std::int64_t i = 0; i < plane; ++i) {
        dst[i] = v;
      }
    }
  }
  return g;
}

}  // namespace tdc
