// Trainable 2-D convolution (batched, NCHW activations, CNRS weights).
//
// Weights are stored in the paper's CNRS order so the ADMM loop can hand the
// kernel tensor straight to tucker_decompose / tucker_project without
// re-layouting. Forward/backward use im2col + GEMM.
#pragma once

#include <optional>

#include "autograd/layer.h"
#include "conv/conv_shape.h"

namespace tdc {

class Conv2d : public Layer {
 public:
  /// `geometry` describes a single-sample problem; the batch dimension comes
  /// from the input tensor. Bias is per output channel.
  Conv2d(std::string name, const ConvShape& geometry, Rng& rng,
         bool with_bias = true);

  /// Construct with explicit weights (e.g. Tucker factors turned into
  /// pointwise/core convolutions).
  Conv2d(std::string name, const ConvShape& geometry, Tensor kernel_cnrs,
         std::optional<Tensor> bias);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Param*> params() override;
  std::string name() const override { return name_; }

  const ConvShape& geometry() const { return geometry_; }
  /// The CNRS kernel parameter (the ADMM loop reads and regularizes this).
  Param& kernel() { return kernel_; }
  const Param& kernel() const { return kernel_; }

 private:
  std::string name_;
  ConvShape geometry_;
  Param kernel_;                 // [C, N, R, S]
  std::optional<Param> bias_;    // [N]
  Tensor cached_input_;          // [B, C, H, W] for backward
};

}  // namespace tdc
