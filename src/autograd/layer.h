// Minimal reverse-mode layer framework for the training substrate.
//
// The ADMM compression experiments (paper Section 4.1, Table 2) need full
// backpropagation through small CNNs. Layers own their parameters and cache
// whatever activations their backward pass needs; a model is a tree of
// layers rooted in a Sequential. This is deliberately a static-graph,
// layer-object design (not a tape) — the models involved are small and the
// ADMM loop needs direct access to convolution kernels as tensors.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace tdc {

/// A trainable tensor with its gradient and momentum buffers.
struct Param {
  std::string name;
  Tensor value;
  Tensor grad;
  Tensor momentum;

  explicit Param(std::string n, Tensor v)
      : name(std::move(n)),
        value(std::move(v)),
        grad(value.dims()),
        momentum(value.dims()) {}

  void zero_grad() { grad.fill(0.0f); }
};

class Layer {
 public:
  virtual ~Layer() = default;

  /// Forward pass; `train` toggles batch-stat collection (BatchNorm).
  virtual Tensor forward(const Tensor& x, bool train) = 0;

  /// Backward pass: consumes dL/d(output), accumulates parameter gradients,
  /// returns dL/d(input). Must be called after forward on the same input.
  virtual Tensor backward(const Tensor& grad_out) = 0;

  /// Parameters of this layer (and sub-layers), for the optimizer.
  virtual std::vector<Param*> params() { return {}; }

  virtual std::string name() const = 0;
};

/// Sequential container; owns its sub-layers.
class Sequential : public Layer {
 public:
  Sequential() = default;
  explicit Sequential(std::string name) : name_(std::move(name)) {}

  void add(std::unique_ptr<Layer> layer) { layers_.push_back(std::move(layer)); }

  Tensor forward(const Tensor& x, bool train) override {
    Tensor cur = x;
    for (auto& l : layers_) {
      cur = l->forward(cur, train);
    }
    return cur;
  }

  Tensor backward(const Tensor& grad_out) override {
    Tensor cur = grad_out;
    for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
      cur = (*it)->backward(cur);
    }
    return cur;
  }

  std::vector<Param*> params() override {
    std::vector<Param*> out;
    for (auto& l : layers_) {
      for (Param* p : l->params()) {
        out.push_back(p);
      }
    }
    return out;
  }

  std::string name() const override { return name_; }
  std::size_t size() const { return layers_.size(); }
  Layer* at(std::size_t i) { return layers_[i].get(); }
  /// Replace the i-th sub-layer (model surgery for Tucker compression).
  void replace(std::size_t i, std::unique_ptr<Layer> layer) {
    layers_[i] = std::move(layer);
  }

 private:
  std::string name_ = "sequential";
  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace tdc
