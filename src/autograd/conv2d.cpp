#include "autograd/conv2d.h"

#include <cmath>

#include "common/check.h"
#include "common/parallel.h"
#include "conv/conv.h"
#include "exec/conv_plan.h"
#include "linalg/gemm.h"

namespace tdc {

namespace {

// Scatter the [C·R·S, OH·OW] column-gradient matrix back onto an image.
void col2im_accumulate(const Tensor& cols, const ConvShape& g, Tensor* image) {
  const std::int64_t oh = g.out_h();
  const std::int64_t ow = g.out_w();
  for (std::int64_t c = 0; c < g.c; ++c) {
    for (std::int64_t r = 0; r < g.r; ++r) {
      for (std::int64_t s = 0; s < g.s; ++s) {
        const std::int64_t row = (c * g.r + r) * g.s + s;
        for (std::int64_t o_h = 0; o_h < oh; ++o_h) {
          const std::int64_t ih = o_h * g.stride_h - g.pad_h + r;
          if (ih < 0 || ih >= g.h) {
            continue;
          }
          for (std::int64_t o_w = 0; o_w < ow; ++o_w) {
            const std::int64_t iw = o_w * g.stride_w - g.pad_w + s;
            if (iw < 0 || iw >= g.w) {
              continue;
            }
            (*image)(c, ih, iw) += cols(row, o_h * ow + o_w);
          }
        }
      }
    }
  }
}

Tensor slice_sample(const Tensor& batch, std::int64_t b,
                    std::vector<std::int64_t> dims) {
  Tensor out(std::move(dims));
  const std::int64_t n = out.numel();
  const float* src = batch.raw() + b * n;
  std::copy(src, src + n, out.raw());
  return out;
}

}  // namespace

Conv2d::Conv2d(std::string name, const ConvShape& geometry, Rng& rng,
               bool with_bias)
    : name_(std::move(name)),
      geometry_(geometry),
      kernel_(name_ + ".kernel",
              Tensor::random_normal(
                  {geometry.c, geometry.n, geometry.r, geometry.s}, rng, 0.0f,
                  // He initialization for ReLU networks.
                  static_cast<float>(std::sqrt(
                      2.0 / (static_cast<double>(geometry.c) *
                             static_cast<double>(geometry.r * geometry.s)))))) {
  TDC_CHECK_MSG(geometry.valid(), "invalid conv geometry");
  if (with_bias) {
    bias_.emplace(name_ + ".bias", Tensor({geometry.n}));
  }
}

Conv2d::Conv2d(std::string name, const ConvShape& geometry, Tensor kernel_cnrs,
               std::optional<Tensor> bias)
    : name_(std::move(name)),
      geometry_(geometry),
      kernel_(name_ + ".kernel", std::move(kernel_cnrs)) {
  TDC_CHECK_MSG(kernel_.value.rank() == 4 &&
                    kernel_.value.dim(0) == geometry.c &&
                    kernel_.value.dim(1) == geometry.n &&
                    kernel_.value.dim(2) == geometry.r &&
                    kernel_.value.dim(3) == geometry.s,
                "kernel tensor does not match geometry");
  if (bias.has_value()) {
    TDC_CHECK(bias->rank() == 1 && bias->dim(0) == geometry.n);
    bias_.emplace(name_ + ".bias", std::move(*bias));
  }
}

Tensor Conv2d::forward(const Tensor& x, bool /*train*/) {
  TDC_CHECK_MSG(x.rank() == 4, "Conv2d expects [B,C,H,W]");
  TDC_CHECK_MSG(x.dim(1) == geometry_.c && x.dim(2) == geometry_.h &&
                    x.dim(3) == geometry_.w,
                "Conv2d input mismatch: got " + x.shape_string() +
                    " for " + geometry_.to_string());
  cached_input_ = x;
  const std::int64_t batch = x.dim(0);
  const std::int64_t oh = geometry_.out_h();
  const std::int64_t ow = geometry_.out_w();
  // One compiled plan per step: the weight reshape and GEMM panel pack are
  // shared by every image in the batch through the plan's run_batched.
  ConvDescriptor desc;
  desc.shape = geometry_;
  desc.algo = ConvAlgo::kIm2col;
  const auto plan = compile_conv_plan(desc, kernel_.value);
  Tensor y({batch, geometry_.n, oh, ow});
  std::vector<float> workspace(static_cast<std::size_t>(
      plan->batched_workspace_bytes(batch) / sizeof(float)));
  plan->run_batched(x, &y, workspace);

  if (bias_.has_value()) {
    parallel_for(0, batch * geometry_.n, 1,
                 [&](std::int64_t i0, std::int64_t i1) {
      for (std::int64_t i = i0; i < i1; ++i) {
        const float bv = bias_->value(i % geometry_.n);
        float* dst = y.raw() + i * oh * ow;
        for (std::int64_t j = 0; j < oh * ow; ++j) {
          dst[j] += bv;
        }
      }
    });
  }
  return y;
}

Tensor Conv2d::backward(const Tensor& grad_out) {
  TDC_CHECK_MSG(!cached_input_.empty(), "backward before forward");
  const std::int64_t batch = cached_input_.dim(0);
  const std::int64_t oh = geometry_.out_h();
  const std::int64_t ow = geometry_.out_w();
  const std::int64_t k = geometry_.c * geometry_.r * geometry_.s;
  TDC_CHECK_MSG(grad_out.rank() == 4 && grad_out.dim(0) == batch &&
                    grad_out.dim(1) == geometry_.n &&
                    grad_out.dim(2) == oh && grad_out.dim(3) == ow,
                "grad_out shape mismatch");

  const Tensor a = conv_weight_matrix(kernel_.value, geometry_);
  Tensor grad_a({geometry_.n, k});
  Tensor grad_in(cached_input_.dims());

  // Parallel over the batch with per-thread dA accumulation would need
  // reductions; the batch sizes here are small, so keep the dA accumulation
  // serial per sample and parallelize inside the GEMMs instead.
  for (std::int64_t b = 0; b < batch; ++b) {
    const Tensor xb = slice_sample(cached_input_, b,
                                   {geometry_.c, geometry_.h, geometry_.w});
    const Tensor cols = im2col(xb, geometry_);
    Tensor gyb = slice_sample(grad_out, b, {geometry_.n, oh * ow});

    // dA += dY · cols^T
    gemm_bt(geometry_.n, k, oh * ow, gyb.data(), cols.data(), grad_a.data(),
            1.0f, 1.0f);
    // dcols = A^T · dY
    Tensor dcols({k, oh * ow});
    gemm_at(k, oh * ow, geometry_.n, a.data(), gyb.data(), dcols.data());
    Tensor gxb({geometry_.c, geometry_.h, geometry_.w});
    col2im_accumulate(dcols, geometry_, &gxb);
    std::copy(gxb.raw(), gxb.raw() + gxb.numel(), grad_in.raw() + b * gxb.numel());

    if (bias_.has_value()) {
      for (std::int64_t n = 0; n < geometry_.n; ++n) {
        double acc = 0.0;
        for (std::int64_t i = 0; i < oh * ow; ++i) {
          acc += gyb[n * oh * ow + i];
        }
        bias_->grad(n) += static_cast<float>(acc);
      }
    }
  }

  // Fold dA back into the CNRS kernel gradient.
  for (std::int64_t c = 0; c < geometry_.c; ++c) {
    for (std::int64_t n = 0; n < geometry_.n; ++n) {
      for (std::int64_t r = 0; r < geometry_.r; ++r) {
        for (std::int64_t s = 0; s < geometry_.s; ++s) {
          kernel_.grad(c, n, r, s) +=
              grad_a(n, (c * geometry_.r + r) * geometry_.s + s);
        }
      }
    }
  }
  return grad_in;
}

std::vector<Param*> Conv2d::params() {
  std::vector<Param*> out = {&kernel_};
  if (bias_.has_value()) {
    out.push_back(&*bias_);
  }
  return out;
}

}  // namespace tdc
