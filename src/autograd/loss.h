// Softmax cross-entropy loss.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace tdc {

struct LossResult {
  double loss = 0.0;   ///< mean cross-entropy over the batch
  Tensor grad;         ///< dL/dlogits, [B, K]
  std::int64_t correct = 0;  ///< argmax hits (for accuracy bookkeeping)
};

/// logits: [B, K]; labels: B class indices in [0, K).
LossResult softmax_cross_entropy(const Tensor& logits,
                                 const std::vector<std::int64_t>& labels);

}  // namespace tdc
