#include "autograd/linear.h"

#include <cmath>

#include "common/check.h"
#include "linalg/gemm.h"

namespace tdc {

Linear::Linear(std::string name, std::int64_t in_features,
               std::int64_t out_features, Rng& rng)
    : name_(std::move(name)),
      in_(in_features),
      out_(out_features),
      weight_(name_ + ".weight",
              Tensor::random_normal(
                  {out_features, in_features}, rng, 0.0f,
                  static_cast<float>(std::sqrt(2.0 / in_features)))),
      bias_(name_ + ".bias", Tensor({out_features})) {}

Tensor Linear::forward(const Tensor& x, bool /*train*/) {
  TDC_CHECK_MSG(x.rank() == 2 && x.dim(1) == in_,
                "Linear expects [B, in]; got " + x.shape_string());
  cached_input_ = x;
  const std::int64_t batch = x.dim(0);
  Tensor y({batch, out_});
  // Y[B, out] = X[B, in] · W^T[in, out]
  gemm_bt(batch, out_, in_, x.data(), weight_.value.data(), y.data());
  for (std::int64_t b = 0; b < batch; ++b) {
    for (std::int64_t o = 0; o < out_; ++o) {
      y(b, o) += bias_.value(o);
    }
  }
  return y;
}

Tensor Linear::backward(const Tensor& grad_out) {
  TDC_CHECK_MSG(!cached_input_.empty(), "backward before forward");
  const std::int64_t batch = cached_input_.dim(0);
  TDC_CHECK(grad_out.rank() == 2 && grad_out.dim(0) == batch &&
            grad_out.dim(1) == out_);

  // dW += dY^T · X
  gemm_at(out_, in_, batch, grad_out.data(), cached_input_.data(),
          weight_.grad.data(), 1.0f, 1.0f);
  // db += column sums of dY
  for (std::int64_t b = 0; b < batch; ++b) {
    for (std::int64_t o = 0; o < out_; ++o) {
      bias_.grad(o) += grad_out(b, o);
    }
  }
  // dX = dY · W
  Tensor grad_in({batch, in_});
  gemm(batch, in_, out_, grad_out.data(), weight_.value.data(), grad_in.data());
  return grad_in;
}

std::vector<Param*> Linear::params() { return {&weight_, &bias_}; }

}  // namespace tdc
