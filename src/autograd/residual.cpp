#include "autograd/residual.h"

#include "common/check.h"

namespace tdc {

ResidualBlock::ResidualBlock(std::string name, std::unique_ptr<Layer> main,
                             std::unique_ptr<Layer> shortcut)
    : name_(std::move(name)),
      main_(std::move(main)),
      shortcut_(std::move(shortcut)) {
  TDC_CHECK_MSG(main_ != nullptr, "residual block needs a main path");
}

Tensor ResidualBlock::forward(const Tensor& x, bool train) {
  Tensor main_out = main_->forward(x, train);
  Tensor skip = shortcut_ ? shortcut_->forward(x, train) : x;
  TDC_CHECK_MSG(main_out.same_shape(skip),
                "residual paths disagree: " + main_out.shape_string() +
                    " vs " + skip.shape_string());
  Tensor y(main_out.dims());
  relu_mask_ = Tensor(main_out.dims());
  for (std::int64_t i = 0; i < y.numel(); ++i) {
    const float v = main_out[i] + skip[i];
    const bool pos = v > 0.0f;
    relu_mask_[i] = pos ? 1.0f : 0.0f;
    y[i] = pos ? v : 0.0f;
  }
  return y;
}

Tensor ResidualBlock::backward(const Tensor& grad_out) {
  TDC_CHECK_MSG(!relu_mask_.empty(), "backward before forward");
  Tensor g(grad_out.dims());
  for (std::int64_t i = 0; i < g.numel(); ++i) {
    g[i] = grad_out[i] * relu_mask_[i];
  }
  Tensor grad_in = main_->backward(g);
  if (shortcut_) {
    grad_in.add_(shortcut_->backward(g));
  } else {
    grad_in.add_(g);
  }
  return grad_in;
}

std::vector<Param*> ResidualBlock::params() {
  std::vector<Param*> out = main_->params();
  if (shortcut_) {
    for (Param* p : shortcut_->params()) {
      out.push_back(p);
    }
  }
  return out;
}

}  // namespace tdc
