// 2-D batch normalization (per-channel over B, H, W).
#pragma once

#include "autograd/layer.h"

namespace tdc {

class BatchNorm2d : public Layer {
 public:
  BatchNorm2d(std::string name, std::int64_t channels, double eps = 1e-5,
              double momentum = 0.1);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Param*> params() override;
  std::string name() const override { return name_; }

 private:
  std::string name_;
  std::int64_t channels_;
  double eps_;
  double momentum_;
  Param gamma_;  // [C]
  Param beta_;   // [C]
  Tensor running_mean_;  // [C]
  Tensor running_var_;   // [C]

  // Backward caches (training mode).
  Tensor cached_xhat_;
  std::vector<double> cached_inv_std_;
};

}  // namespace tdc
