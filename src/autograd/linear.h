// Trainable fully-connected layer.
#pragma once

#include "autograd/layer.h"

namespace tdc {

class Linear : public Layer {
 public:
  Linear(std::string name, std::int64_t in_features, std::int64_t out_features,
         Rng& rng);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Param*> params() override;
  std::string name() const override { return name_; }

 private:
  std::string name_;
  std::int64_t in_ = 0;
  std::int64_t out_ = 0;
  Param weight_;  // [out, in]
  Param bias_;    // [out]
  Tensor cached_input_;  // [B, in]
};

}  // namespace tdc
