#include "autograd/batchnorm.h"

#include <cmath>

#include "common/check.h"

namespace tdc {

BatchNorm2d::BatchNorm2d(std::string name, std::int64_t channels, double eps,
                         double momentum)
    : name_(std::move(name)),
      channels_(channels),
      eps_(eps),
      momentum_(momentum),
      gamma_(name_ + ".gamma", Tensor::full({channels}, 1.0f)),
      beta_(name_ + ".beta", Tensor({channels})),
      running_mean_({channels}),
      running_var_(Tensor::full({channels}, 1.0f)) {}

Tensor BatchNorm2d::forward(const Tensor& x, bool train) {
  TDC_CHECK_MSG(x.rank() == 4 && x.dim(1) == channels_,
                "BatchNorm2d input mismatch");
  const std::int64_t b = x.dim(0), c = x.dim(1);
  const std::int64_t plane = x.dim(2) * x.dim(3);
  const double count = static_cast<double>(b * plane);

  Tensor y(x.dims());
  cached_xhat_ = Tensor(x.dims());
  cached_inv_std_.assign(static_cast<std::size_t>(c), 0.0);

  for (std::int64_t ci = 0; ci < c; ++ci) {
    double mean;
    double var;
    if (train) {
      double sum = 0.0, sq = 0.0;
      for (std::int64_t bi = 0; bi < b; ++bi) {
        const float* src = x.raw() + (bi * c + ci) * plane;
        for (std::int64_t i = 0; i < plane; ++i) {
          sum += src[i];
          sq += static_cast<double>(src[i]) * src[i];
        }
      }
      mean = sum / count;
      var = std::max(0.0, sq / count - mean * mean);
      running_mean_(ci) = static_cast<float>(
          (1.0 - momentum_) * running_mean_(ci) + momentum_ * mean);
      running_var_(ci) = static_cast<float>(
          (1.0 - momentum_) * running_var_(ci) + momentum_ * var);
    } else {
      mean = running_mean_(ci);
      var = running_var_(ci);
    }
    const double inv_std = 1.0 / std::sqrt(var + eps_);
    cached_inv_std_[static_cast<std::size_t>(ci)] = inv_std;
    const float g = gamma_.value(ci);
    const float bt = beta_.value(ci);
    for (std::int64_t bi = 0; bi < b; ++bi) {
      const float* src = x.raw() + (bi * c + ci) * plane;
      float* xh = cached_xhat_.raw() + (bi * c + ci) * plane;
      float* dst = y.raw() + (bi * c + ci) * plane;
      for (std::int64_t i = 0; i < plane; ++i) {
        const float norm = static_cast<float>((src[i] - mean) * inv_std);
        xh[i] = norm;
        dst[i] = g * norm + bt;
      }
    }
  }
  return y;
}

Tensor BatchNorm2d::backward(const Tensor& grad_out) {
  TDC_CHECK_MSG(!cached_xhat_.empty(), "backward before forward");
  const std::int64_t b = grad_out.dim(0), c = grad_out.dim(1);
  const std::int64_t plane = grad_out.dim(2) * grad_out.dim(3);
  const double count = static_cast<double>(b * plane);

  Tensor grad_in(grad_out.dims());
  for (std::int64_t ci = 0; ci < c; ++ci) {
    // Standard BN backward: dL/dx = γ·inv_std/count ·
    //   (count·dY − Σ dY − x̂ · Σ (dY·x̂))
    double sum_dy = 0.0, sum_dy_xhat = 0.0;
    for (std::int64_t bi = 0; bi < b; ++bi) {
      const float* gy = grad_out.raw() + (bi * c + ci) * plane;
      const float* xh = cached_xhat_.raw() + (bi * c + ci) * plane;
      for (std::int64_t i = 0; i < plane; ++i) {
        sum_dy += gy[i];
        sum_dy_xhat += static_cast<double>(gy[i]) * xh[i];
      }
    }
    gamma_.grad(ci) += static_cast<float>(sum_dy_xhat);
    beta_.grad(ci) += static_cast<float>(sum_dy);

    const double g = gamma_.value(ci);
    const double inv_std = cached_inv_std_[static_cast<std::size_t>(ci)];
    const double scale = g * inv_std / count;
    for (std::int64_t bi = 0; bi < b; ++bi) {
      const float* gy = grad_out.raw() + (bi * c + ci) * plane;
      const float* xh = cached_xhat_.raw() + (bi * c + ci) * plane;
      float* gx = grad_in.raw() + (bi * c + ci) * plane;
      for (std::int64_t i = 0; i < plane; ++i) {
        gx[i] = static_cast<float>(
            scale * (count * gy[i] - sum_dy - xh[i] * sum_dy_xhat));
      }
    }
  }
  return grad_in;
}

std::vector<Param*> BatchNorm2d::params() { return {&gamma_, &beta_}; }

}  // namespace tdc
