#include "autograd/loss.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace tdc {

LossResult softmax_cross_entropy(const Tensor& logits,
                                 const std::vector<std::int64_t>& labels) {
  TDC_CHECK_MSG(logits.rank() == 2, "logits must be [B, K]");
  const std::int64_t b = logits.dim(0);
  const std::int64_t k = logits.dim(1);
  TDC_CHECK_MSG(static_cast<std::int64_t>(labels.size()) == b,
                "label count mismatch");

  LossResult out;
  out.grad = Tensor({b, k});
  double total = 0.0;
  for (std::int64_t bi = 0; bi < b; ++bi) {
    const std::int64_t label = labels[static_cast<std::size_t>(bi)];
    TDC_CHECK_MSG(label >= 0 && label < k, "label out of range");
    // Numerically stable log-softmax.
    double max_logit = logits(bi, 0);
    std::int64_t argmax = 0;
    for (std::int64_t ki = 1; ki < k; ++ki) {
      if (logits(bi, ki) > max_logit) {
        max_logit = logits(bi, ki);
        argmax = ki;
      }
    }
    double denom = 0.0;
    for (std::int64_t ki = 0; ki < k; ++ki) {
      denom += std::exp(static_cast<double>(logits(bi, ki)) - max_logit);
    }
    const double log_denom = std::log(denom);
    total -= (static_cast<double>(logits(bi, label)) - max_logit - log_denom);
    if (argmax == label) {
      ++out.correct;
    }
    const double inv_b = 1.0 / static_cast<double>(b);
    for (std::int64_t ki = 0; ki < k; ++ki) {
      const double p =
          std::exp(static_cast<double>(logits(bi, ki)) - max_logit - log_denom);
      out.grad(bi, ki) =
          static_cast<float>((p - (ki == label ? 1.0 : 0.0)) * inv_b);
    }
  }
  out.loss = total / static_cast<double>(b);
  return out;
}

}  // namespace tdc
