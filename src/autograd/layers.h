// Small stateless layers: ReLU, Flatten, pooling.
#pragma once

#include "autograd/layer.h"

namespace tdc {

class ReLU : public Layer {
 public:
  explicit ReLU(std::string name = "relu") : name_(std::move(name)) {}
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return name_; }

 private:
  std::string name_;
  Tensor mask_;
};

/// [B, C, H, W] -> [B, C·H·W].
class Flatten : public Layer {
 public:
  explicit Flatten(std::string name = "flatten") : name_(std::move(name)) {}
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return name_; }

 private:
  std::string name_;
  std::vector<std::int64_t> cached_dims_;
};

/// 2×2 max pooling, stride 2 (even spatial dims required).
class MaxPool2x2 : public Layer {
 public:
  explicit MaxPool2x2(std::string name = "maxpool") : name_(std::move(name)) {}
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return name_; }

 private:
  std::string name_;
  Tensor argmax_;  // flat input index of each pooled maximum
  std::vector<std::int64_t> cached_dims_;
};

/// Global average pooling: [B, C, H, W] -> [B, C].
class GlobalAvgPool : public Layer {
 public:
  explicit GlobalAvgPool(std::string name = "gap") : name_(std::move(name)) {}
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return name_; }

 private:
  std::string name_;
  std::vector<std::int64_t> cached_dims_;
};

}  // namespace tdc
