#include "serving/inference_server.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <exception>
#include <limits>
#include <string>
#include <utility>

#include "common/annotations.h"
#include "exec/op_plan.h"

namespace tdc {

namespace {

using Clock = std::chrono::steady_clock;

std::chrono::nanoseconds to_ns(double seconds) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
      std::chrono::duration<double>(std::max(seconds, 0.0)));
}

}  // namespace

/// One caller's synchronous request, living on its thread's stack for the
/// whole exchange: queued by address, completed (done + error) under the
/// fleet mutex by whichever thread led its batch.
struct InferenceServer::Request {
  const Tensor* x = nullptr;
  Tensor* y = nullptr;
  Deadline deadline;
  bool done = false;
  std::exception_ptr error;
};

struct InferenceServer::Replica {
  InferenceSession session;
  std::vector<float> workspace;
  /// Coalescer buffers, touched only by the leader that has this replica
  /// claimed. batch_x/batch_y are re-shaped when the drained batch size
  /// differs from the last dispatch (stable under sustained load).
  Tensor batch_x;
  Tensor batch_y;
  std::vector<Request*> pending;
};

struct InferenceServer::Fleet {
  ServerOptions options;
  std::vector<Replica> replicas;

  /// Guards everything below — and nothing else: no session run, pool call
  /// or buffer copy ever happens with this held.
  std::mutex mu;
  std::condition_variable cv;
  std::deque<Request*> queue;
  std::vector<int> free_replicas;
  ServerStats stats;

  /// The leader half of the leader-follower protocol: claims a free
  /// replica, coalesces a batch from the queue and runs it. Called with
  /// `lock` held (a free replica and a non-empty queue observed); returns
  /// with it held. The session run happens unlocked: only queue/fleet
  /// bookkeeping sits under the mutex.
  void lead_batch(std::unique_lock<std::mutex>& lock);
};

InferenceServer InferenceServer::compile(
    const DeviceSpec& device, const ModelSpec& model,
    const std::vector<LayerWeights>& weights,
    const std::vector<LayerDecision>& decisions,
    const ServerOptions& options) {
  TDC_CHECK_MSG(options.replicas >= 1, "a server needs at least one replica");
  TDC_CHECK_MSG(options.max_pending >= 1, "max_pending must be >= 1");
  TDC_CHECK_MSG(options.coalescer.max_batch >= 1,
                "coalescer max_batch must be >= 1");
  TDC_CHECK_MSG(options.coalescer.max_delay_s >= 0,
                "coalescer max_delay_s must be >= 0");

  InferenceServer server;
  server.fleet_ = std::make_shared<Fleet>();
  Fleet& f = *server.fleet_;
  f.options = options;
  f.replicas.resize(static_cast<std::size_t>(options.replicas));
  const std::int64_t max_batch = options.coalescer.max_batch;
  for (int r = 0; r < options.replicas; ++r) {
    Replica& rep = f.replicas[static_cast<std::size_t>(r)];
    // Every replica compiles through the shared PlanCache: single-flight
    // lookup means the fleet pays each layer's packing/decomposition once
    // and replica 2..N get the artifacts for the cost of a graph skeleton.
    rep.session = InferenceSession::compile(device, model, weights, decisions,
                                            options.session);
    rep.workspace.resize(static_cast<std::size_t>(
        std::max(rep.session.workspace_bytes(),
                 rep.session.batched_workspace_bytes(max_batch)) /
        static_cast<std::int64_t>(sizeof(float))));
    rep.pending.reserve(static_cast<std::size_t>(max_batch));
    if (max_batch > 1) {
      const OpShape& in = rep.session.input_shape();
      const OpShape& out = rep.session.output_shape();
      rep.batch_x = Tensor({max_batch, in.c, in.h, in.w});
      rep.batch_y = Tensor({max_batch, out.c, out.h, out.w});
    }
    f.free_replicas.push_back(r);
  }
  return server;
}

const OpShape& InferenceServer::input_shape() const {
  TDC_CHECK_MSG(fleet_ != nullptr, "server not compiled");
  return fleet_->replicas.front().session.input_shape();
}

const OpShape& InferenceServer::output_shape() const {
  TDC_CHECK_MSG(fleet_ != nullptr, "server not compiled");
  return fleet_->replicas.front().session.output_shape();
}

ServerStats InferenceServer::stats() const {
  TDC_CHECK_MSG(fleet_ != nullptr, "server not compiled");
  std::lock_guard<std::mutex> lock(fleet_->mu);
  return fleet_->stats;
}

int InferenceServer::replicas() const {
  TDC_CHECK_MSG(fleet_ != nullptr, "server not compiled");
  return static_cast<int>(fleet_->replicas.size());
}

const ServerOptions& InferenceServer::options() const {
  TDC_CHECK_MSG(fleet_ != nullptr, "server not compiled");
  return fleet_->options;
}

void InferenceServer::infer(const Tensor& x, Tensor* y) {
  infer(x, y, Deadline());
}

Tensor InferenceServer::infer(const Tensor& x) {
  const OpShape& out = output_shape();
  return map_resource_failure("server infer output", [&] {
    Tensor y({out.c, out.h, out.w});
    infer(x, &y, Deadline());
    return y;
  });
}

void InferenceServer::infer(const Tensor& x, Tensor* y,
                            const Deadline& deadline) {
  TDC_CHECK_MSG(fleet_ != nullptr, "server not compiled");
  Fleet& f = *fleet_;
  const InferenceSession& probe = f.replicas.front().session;
  if (!operand_matches(x, probe.input_shape())) {
    throw Error("server input does not match " +
                    probe.input_shape().to_string(),
                ErrorCode::kInvalidArgument);
  }
  if (y == nullptr || !operand_matches(*y, probe.output_shape())) {
    throw Error("server output must be a preallocated " +
                    probe.output_shape().to_string() + " tensor",
                ErrorCode::kInvalidArgument);
  }

  Request req;
  req.x = &x;
  req.y = y;
  req.deadline = deadline;
  if (!req.deadline.armed() && f.options.default_deadline_s > 0) {
    req.deadline = Deadline::after(f.options.default_deadline_s);
  }

  std::unique_lock<std::mutex> lock(f.mu);
  if (static_cast<std::int64_t>(f.queue.size()) >= f.options.max_pending) {
    ++f.stats.rejected_overload;
    throw Error("inference server overloaded: " +
                    std::to_string(f.queue.size()) +
                    " requests pending (max_pending = " +
                    std::to_string(f.options.max_pending) + ")",
                ErrorCode::kResourceExhausted);
  }
  ++f.stats.accepted;
  f.queue.push_back(&req);
  f.stats.peak_pending =
      std::max(f.stats.peak_pending,
               static_cast<std::int64_t>(f.queue.size()));
  // Wake a leader that is holding a replica open for followers.
  f.cv.notify_all();

  for (;;) {
    if (req.done) {
      if (req.error != nullptr) {
        std::rethrow_exception(req.error);
      }
      return;
    }
    if (!f.free_replicas.empty() && !f.queue.empty()) {
      // Become a leader: run one batch (not necessarily containing this
      // thread's own request — FIFO order decides), then re-check.
      f.lead_batch(lock);
      continue;
    }
    if (req.deadline.armed()) {
      const double remaining = req.deadline.remaining_s();
      const bool queued =
          std::find(f.queue.begin(), f.queue.end(), &req) != f.queue.end();
      if (remaining <= 0 && queued) {
        // Budget spent before any leader picked the request up; withdraw
        // it. (Once drained into a batch the input is in use — the run
        // itself carries the deadline and completes the request.)
        f.queue.erase(std::find(f.queue.begin(), f.queue.end(), &req));
        ++f.stats.expired_in_queue;
        ++f.stats.failed;
        throw Error("request deadline expired while queued",
                    ErrorCode::kDeadlineExceeded);
      }
      if (queued) {
        f.cv.wait_for(lock, to_ns(remaining));
        continue;
      }
    }
    f.cv.wait(lock);
  }
}

void InferenceServer::Fleet::lead_batch(
    std::unique_lock<std::mutex>& lock) {
  Fleet& f = *this;
  const int r = f.free_replicas.back();
  f.free_replicas.pop_back();
  Replica& rep = f.replicas[static_cast<std::size_t>(r)];
  const CoalescerOptions& co = f.options.coalescer;

  // SLO window: with the replica claimed and the batch not full, give
  // followers max_delay_s to arrive. Bounded and lock-released (condition
  // wait), so the worst case adds exactly the configured latency.
  if (co.max_batch > 1 && co.max_delay_s > 0 &&
      static_cast<std::int64_t>(f.queue.size()) < co.max_batch) {
    const Clock::time_point give_up = Clock::now() + to_ns(co.max_delay_s);
    while (!f.queue.empty() &&
           static_cast<std::int64_t>(f.queue.size()) < co.max_batch) {
      if (f.cv.wait_until(lock, give_up) == std::cv_status::timeout) {
        break;
      }
    }
  }

  // Drain FIFO up to max_batch, completing (not running) requests whose
  // budget died in the queue.
  rep.pending.clear();
  while (!f.queue.empty() &&
         static_cast<std::int64_t>(rep.pending.size()) < co.max_batch) {
    Request* q = f.queue.front();
    f.queue.pop_front();
    if (q->deadline.armed() && q->deadline.expired()) {
      ++f.stats.expired_in_queue;
      ++f.stats.failed;
      q->error = std::make_exception_ptr(
          Error("request deadline expired while queued",
                ErrorCode::kDeadlineExceeded));
      q->done = true;
      continue;
    }
    rep.pending.push_back(q);
  }
  const std::int64_t batch =
      static_cast<std::int64_t>(rep.pending.size());
  if (batch == 0) {
    // Everything expired (or another leader drained the queue during the
    // SLO wait); hand the replica back.
    f.free_replicas.push_back(r);
    f.cv.notify_all();
    return;
  }

  // The batch runs under the earliest member budget: coalescing shares one
  // fan-out, so it shares the tightest deadline too (documented SLO
  // semantics — budgets within one queue should be comparable).
  Deadline run_deadline;
  double tightest = std::numeric_limits<double>::infinity();
  for (const Request* q : rep.pending) {
    if (q->deadline.armed() && q->deadline.remaining_s() < tightest) {
      tightest = q->deadline.remaining_s();
      run_deadline = q->deadline;
    }
  }

  // Leader idiom: the fleet lock is dropped across the run (no lock is ever
  // held across a session run or pool call) and reacquired on the caller's
  // own unique_lock to publish results — the matched unlock()/lock() pair on
  // an owning unique_lock is the RAII-safe form of that handoff.
  TDC_ANALYZE_ALLOW(non-raii-lock);
  lock.unlock();
  std::exception_ptr failure;
  try {
    if (batch == 1) {
      // Solo dispatch runs on the caller's own tensors — no copies.
      Request& q = *rep.pending.front();
      rep.session.run(*q.x, q.y, rep.workspace, run_deadline);
    } else {
      const OpShape& in = rep.session.input_shape();
      const OpShape& out = rep.session.output_shape();
      if (rep.batch_x.dim(0) != batch) {
        rep.batch_x = Tensor({batch, in.c, in.h, in.w});
        rep.batch_y = Tensor({batch, out.c, out.h, out.w});
      }
      const std::int64_t x_stride = in.floats();
      const std::int64_t y_stride = out.floats();
      for (std::int64_t i = 0; i < batch; ++i) {
        std::memcpy(rep.batch_x.raw() + i * x_stride,
                    rep.pending[static_cast<std::size_t>(i)]->x->raw(),
                    static_cast<std::size_t>(x_stride) * sizeof(float));
      }
      rep.session.run_batched(rep.batch_x, &rep.batch_y, rep.workspace,
                              run_deadline);
      for (std::int64_t i = 0; i < batch; ++i) {
        std::memcpy(rep.pending[static_cast<std::size_t>(i)]->y->raw(),
                    rep.batch_y.raw() + i * y_stride,
                    static_cast<std::size_t>(y_stride) * sizeof(float));
      }
    }
  } catch (...) {
    // Typed failure (deadline mid-run, starved allocation, poisoned
    // input): every member gets the same exception; the session's failure
    // contract keeps the replica reusable.
    failure = std::current_exception();
  }

  lock.lock();
  for (Request* q : rep.pending) {
    q->error = failure;
    q->done = true;
  }
  if (failure != nullptr) {
    f.stats.failed += batch;
  } else {
    f.stats.completed += batch;
  }
  if (batch == 1) {
    ++f.stats.solo_runs;
  } else {
    ++f.stats.batches;
    f.stats.coalesced_images += batch;
  }
  rep.pending.clear();
  f.free_replicas.push_back(r);
  f.cv.notify_all();
}

}  // namespace tdc
