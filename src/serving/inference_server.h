// Multi-client serving: a replica fleet plus a latency-SLO request coalescer.
//
// One InferenceSession is a single-caller artifact: its run() is reentrant
// only across *distinct* workspaces, and a process serving many clients
// wants admission control, per-request latency budgets and batching — not N
// copies of that plumbing in every embedder. InferenceServer packages the
// serving idiom the paper's end-to-end figures assume:
//
//   * a fleet of `replicas` InferenceSessions compiled from one model.
//     Replicas share compiled artifacts through the process-wide PlanCache —
//     with single-flight compilation, a fleet cold-start runs each layer's
//     packing/decomposition exactly once, and the per-replica state is just
//     the graph skeleton plus a private workspace;
//   * synchronous dispatch to an idle replica, with a per-request Deadline
//     that bounds both queue wait and execution (kDeadlineExceeded), and
//     typed rejection when the pending queue is full (kResourceExhausted) —
//     callers branch on Error::code(), never on message text;
//   * a leader-follower request coalescer: single-image arrivals queue
//     briefly (up to CoalescerOptions::max_delay_s, the latency SLO knob)
//     and ride one run_batched() fan-out of up to max_batch images. The
//     caller thread that claims a replica becomes the batch's leader and
//     carries the work — there are no background threads, so an idle server
//     costs nothing and teardown is trivially safe.
//
// Results are bit-identical to running each request alone on one session:
// coalescing only changes *when* an image runs, never its arithmetic (the
// batched fan-out runs the same single-image code per workspace slot).
//
//   InferenceServer server = InferenceServer::compile(
//       device, model, weights, cd.layers, {.replicas = 4});
//   Tensor y({1000, 1, 1});
//   server.infer(x, &y, Deadline::after(0.050));   // throws typed Error
//
// Thread-safety: every public method may be called from any number of
// threads concurrently. Internally no lock is ever held across a session
// run or a pool call — the dispatch mutex guards only queue/fleet state.
#pragma once

#include <cstdint>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "common/check.h"
#include "common/deadline.h"
#include "exec/graph_plan.h"

namespace tdc {

/// Batching policy of the request coalescer. max_batch <= 1 disables
/// coalescing (every request runs solo). max_delay_s is the admission-to-
/// dispatch latency the SLO tolerates: a leader with a claimed replica and a
/// non-full batch waits at most this long for followers before running.
struct CoalescerOptions {
  std::int64_t max_batch = 4;
  double max_delay_s = 0.002;
};

struct ServerOptions {
  /// Replica sessions (>= 1). Concurrent requests beyond this number queue.
  int replicas = 2;
  /// Bound on requests waiting for a replica; an arrival past it is rejected
  /// with kResourceExhausted instead of growing the queue without bound.
  std::int64_t max_pending = 64;
  /// Budget armed for requests that arrive with an unarmed Deadline
  /// (seconds; 0 leaves them unbounded).
  double default_deadline_s = 0.0;
  CoalescerOptions coalescer;
  SessionOptions session;
};

/// Monotonic counters since construction; snapshot via stats().
struct ServerStats {
  std::int64_t accepted = 0;          ///< admitted past the pending bound
  std::int64_t completed = 0;         ///< finished successfully
  std::int64_t failed = 0;            ///< finished with an error (including
                                      ///  deadline expiry mid-run)
  std::int64_t rejected_overload = 0; ///< kResourceExhausted at admission
  std::int64_t expired_in_queue = 0;  ///< deadline passed before dispatch
  std::int64_t batches = 0;           ///< coalesced run_batched dispatches
  std::int64_t coalesced_images = 0;  ///< images that rode those batches
  std::int64_t solo_runs = 0;         ///< single-image dispatches
  std::int64_t peak_pending = 0;      ///< queue-depth high-water mark
};

class InferenceServer {
 public:
  /// Compile `replicas` sessions of the model (see InferenceSession::compile
  /// for the decision-list contract). Workspaces and coalescer batch buffers
  /// are preallocated here; the serving path performs no allocation beyond
  /// the dispatch bookkeeping.
  static InferenceServer compile(const DeviceSpec& device,
                                 const ModelSpec& model,
                                 const std::vector<LayerWeights>& weights,
                                 const std::vector<LayerDecision>& decisions = {},
                                 const ServerOptions& options = {});

  /// Serve one image: x holds input_shape().floats() floats, *y is a
  /// preallocated output_shape() tensor. Blocks until the result is in *y
  /// or throws: kResourceExhausted (queue full), kDeadlineExceeded (budget
  /// spent queued or mid-run), kInvalidArgument (geometry). The failure
  /// leaves the server fully reusable.
  void infer(const Tensor& x, Tensor* y);

  /// infer() under an explicit per-request budget (overrides the default).
  void infer(const Tensor& x, Tensor* y, const Deadline& deadline);

  /// Single-shot convenience: allocates the output tensor.
  Tensor infer(const Tensor& x);

  const OpShape& input_shape() const;
  const OpShape& output_shape() const;
  int replicas() const;
  const ServerOptions& options() const;

  ServerStats stats() const;

 private:
  struct Request;
  struct Replica;
  struct Fleet;

  InferenceServer() = default;

  // Shared (not unique) so a default-constructed-then-assigned server and
  // the value-semantics compile() factory compose; the fleet itself is
  // non-movable state (mutex, CV).
  std::shared_ptr<Fleet> fleet_;
};

}  // namespace tdc
