#include "nn/model_cost.h"

#include "common/check.h"
#include "core/tvm_scheme.h"

namespace tdc {

const char* core_backend_name(CoreBackend backend) {
  switch (backend) {
    case CoreBackend::kCudnn:
      return "cudnn";
    case CoreBackend::kTvm:
      return "tvm";
    case CoreBackend::kTdcOracle:
      return "tdc-oracle";
    case CoreBackend::kTdcModel:
      return "tdc-model";
  }
  return "unknown";
}

double layer_latency(const DeviceSpec& device, const LayerSpec& layer) {
  switch (layer.kind) {
    case LayerKind::kConv:
      return cudnn_implicit_gemm_cost(device, layer.conv).total_s;
    case LayerKind::kPool:
    case LayerKind::kGlobalPool:
    case LayerKind::kElementwise:
      return elementwise_cost(device, layer.elems_in, layer.elems_out).total_s;
    case LayerKind::kFullyConnected:
      return fully_connected_cost(device, layer.fc_in, layer.fc_out).total_s;
  }
  TDC_CHECK_MSG(false, "unknown layer kind");
}

CodesignResult compress_model(const DeviceSpec& device, const ModelSpec& model,
                              const CodesignOptions& options) {
  return run_codesign(device, model.conv_shapes(), options);
}

double model_latency_original(const DeviceSpec& device,
                              const ModelSpec& model) {
  double total = 0.0;
  for (const auto& layer : model.layers) {
    total += layer_latency(device, layer);
  }
  return total;
}

namespace {

// Latency of one decomposed layer's core stage under the given backend.
double core_stage_latency(const DeviceSpec& device, const ConvShape& core,
                          CoreBackend backend) {
  switch (backend) {
    case CoreBackend::kCudnn:
      return cudnn_implicit_gemm_cost(device, core).total_s;
    case CoreBackend::kTvm:
      return tvm_best_cost(device, core).total_s;
    case CoreBackend::kTdcOracle:
      return tdc_core_cost(device, core, select_tiling_oracle(device, core))
          .total_s;
    case CoreBackend::kTdcModel:
      return tdc_core_cost(device, core, select_tiling_model(device, core))
          .total_s;
  }
  TDC_CHECK_MSG(false, "unknown backend");
}

}  // namespace

double model_latency_compressed(const DeviceSpec& device,
                                const ModelSpec& model,
                                const CodesignResult& decisions,
                                CoreBackend backend) {
  double total = 0.0;
  std::size_t conv_idx = 0;
  for (const auto& layer : model.layers) {
    if (layer.kind != LayerKind::kConv) {
      total += layer_latency(device, layer);
      continue;
    }
    TDC_CHECK_MSG(conv_idx < decisions.layers.size(),
                  "decision list shorter than the model's conv list");
    const LayerDecision& dec = decisions.layers[conv_idx++];
    TDC_CHECK_MSG(dec.shape == layer.conv,
                  "decision/model conv sequence mismatch");
    if (!dec.decomposed) {
      total += layer_latency(device, layer);
      continue;
    }
    const ConvShape pw1 = first_pointwise_shape(layer.conv, dec.ranks);
    const ConvShape core = core_conv_shape(layer.conv, dec.ranks);
    const ConvShape pw2 = last_pointwise_shape(layer.conv, dec.ranks);
    total += cudnn_implicit_gemm_cost(device, pw1).total_s;
    total += core_stage_latency(device, core, backend);
    total += cudnn_implicit_gemm_cost(device, pw2).total_s;
  }
  TDC_CHECK_MSG(conv_idx == decisions.layers.size(),
                "decision list longer than the model's conv list");
  return total;
}

E2eRow evaluate_model_e2e(const DeviceSpec& device, const ModelSpec& model,
                          const CodesignOptions& options) {
  const CodesignResult decisions = compress_model(device, model, options);
  E2eRow row;
  row.model = model.name;
  row.original_s = model_latency_original(device, model);
  row.tk_cudnn_s =
      model_latency_compressed(device, model, decisions, CoreBackend::kCudnn);
  row.tk_tvm_s =
      model_latency_compressed(device, model, decisions, CoreBackend::kTvm);
  row.tk_tdc_oracle_s = model_latency_compressed(device, model, decisions,
                                                 CoreBackend::kTdcOracle);
  row.tk_tdc_model_s = model_latency_compressed(device, model, decisions,
                                                CoreBackend::kTdcModel);
  row.flops_reduction = decisions.achieved_flops_reduction();
  return row;
}

}  // namespace tdc
