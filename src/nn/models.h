// Layer inventories of the evaluated CNNs (ImageNet geometry, batch 1).
//
// The five models of the paper's evaluation (Section 7.1) plus the CIFAR-10
// ResNet-20 used in Table 2. Inventories follow the reference torchvision
// architectures; every convolution, pooling, normalization/activation and
// fully-connected layer is listed so the end-to-end latency walk sees the
// same kernel sequence the paper's C++/CUDA implementations execute.
#pragma once

#include "core/model_spec.h"

namespace tdc {

ModelSpec make_vgg16();
ModelSpec make_resnet18();
ModelSpec make_resnet50();
ModelSpec make_densenet121();
ModelSpec make_densenet201();

/// CIFAR-10 ResNet-20 (He et al.), 32×32 inputs — the Table 2 subject.
ModelSpec make_resnet20_cifar();

/// All five ImageNet models in the paper's order.
std::vector<ModelSpec> paper_models();

/// Lookup by name ("vgg16", "resnet18", "resnet50", "densenet121",
/// "densenet201", "resnet20"); throws on unknown names.
ModelSpec model_by_name(const std::string& name);

/// The 18 core-convolution shapes of Figures 6–7 (C, N, H, W with 3×3
/// filters, padding 1, stride 1) — the decomposed-core shapes occurring in
/// the tested CNNs.
std::vector<ConvShape> figure6_core_shapes();

}  // namespace tdc
