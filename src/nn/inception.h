// Wide-CNN extension: inception modules and concurrent-convolution costing.
//
// The paper's conclusion defers wide CNNs (GoogLeNet, NasNet) to future work
// because (1) multiple convolutions run *concurrently* per stage and
// (2) ranks must be chosen jointly for the concurrent branches. This module
// implements that extension on top of the reproduction: a GoogLeNet
// (Inception-v1) inventory, a concurrency model for kernels co-scheduled on
// one device (CUDA multi-stream semantics), and branch-wise rank selection
// evaluated at module granularity.
#pragma once

#include <string>
#include <vector>

#include "core/codesign.h"
#include "core/model_spec.h"

namespace tdc {

/// One inception branch: a short chain of convolutions executed back to
/// back (e.g. 1×1 reduce then 5×5).
struct InceptionBranch {
  std::string name;
  std::vector<ConvShape> convs;
};

/// One inception module: branches run concurrently, then concatenate.
struct InceptionModule {
  std::string name;
  std::vector<InceptionBranch> branches;
  std::int64_t in_channels = 0;
  std::int64_t out_channels = 0;
  std::int64_t hw = 0;

  double flops() const;
};

/// A wide model: a stem (sequential layers), inception modules with
/// interleaved pooling, and a classifier head.
struct WideModelSpec {
  std::string name;
  std::vector<LayerSpec> stem;
  /// (module, pool_after) pairs in network order; pool_after halves H/W.
  std::vector<std::pair<InceptionModule, bool>> modules;
  std::vector<LayerSpec> head;

  double total_flops() const;
};

/// GoogLeNet / Inception-v1 (Szegedy et al. 2015), ImageNet geometry.
WideModelSpec make_googlenet();

/// Latency of kernels co-scheduled on one device (one CUDA stream per
/// branch): bounded below by every kernel's standalone latency and by the
/// aggregate compute/memory throughput of the device, bounded above by the
/// serialized sum.
double concurrent_latency(const DeviceSpec& device,
                          const std::vector<LatencyBreakdown>& kernels);

/// Standalone (sequential-stream) latency of a branch under a backend-less
/// cuDNN pricing, or with TDC cores when `decisions` are provided.
struct InceptionBranchPlan {
  InceptionBranch branch;
  /// Per conv in the branch: decomposition decision (paired by index).
  std::vector<LayerDecision> decisions;
};

struct InceptionModulePlan {
  std::vector<InceptionBranchPlan> branches;
};

/// Rank selection for a whole module: each branch conv goes through the
/// standard per-layer co-design; the joint effect is evaluated by the
/// concurrency model (the "determine the ranks for the concurrent
/// convolutions" problem the paper poses).
InceptionModulePlan plan_inception_module(const DeviceSpec& device,
                                          const InceptionModule& module,
                                          const CodesignOptions& options);

struct InceptionModuleCost {
  double sequential_original_s = 0.0;  ///< one stream, cuDNN convs
  double concurrent_original_s = 0.0;  ///< one stream per branch, cuDNN
  double sequential_tdc_s = 0.0;       ///< one stream, compressed + TDC cores
  double concurrent_tdc_s = 0.0;       ///< streams + compressed + TDC cores
};

InceptionModuleCost price_inception_module(const DeviceSpec& device,
                                           const InceptionModule& module,
                                           const InceptionModulePlan& plan);

/// End-to-end wide-model latency (stem and head priced as usual; modules
/// priced with the chosen strategy).
struct GoogleNetE2e {
  double original_sequential_s = 0.0;
  double original_concurrent_s = 0.0;
  double tdc_concurrent_s = 0.0;
};

GoogleNetE2e evaluate_googlenet(const DeviceSpec& device,
                                const CodesignOptions& options);

}  // namespace tdc
