#include "nn/models.h"

#include "common/check.h"

namespace tdc {

namespace {

// Convolution with BN + ReLU bookkeeping layers appended, torchvision style.
// `conv_inputs` names the conv's producer layers when it branches off the
// linear chain (a downsample path); BN and ReLU always follow their conv.
void push_conv_bn_relu(ModelSpec& m, const std::string& name,
                       const ConvShape& shape, bool relu = true,
                       std::vector<std::int64_t> conv_inputs = {}) {
  LayerSpec conv = LayerSpec::make_conv(name, shape);
  conv.inputs = std::move(conv_inputs);
  m.layers.push_back(std::move(conv));
  const double out_elems = static_cast<double>(shape.out_h()) *
                           static_cast<double>(shape.out_w()) *
                           static_cast<double>(shape.n);
  m.layers.push_back(
      LayerSpec::make_elementwise(name + ".bn", out_elems, EltOp::kBatchNorm));
  if (relu) {
    m.layers.push_back(LayerSpec::make_elementwise(name + ".relu", out_elems));
  }
}

double plane(std::int64_t c, std::int64_t hw) {
  return static_cast<double>(c) * static_cast<double>(hw) *
         static_cast<double>(hw);
}

}  // namespace

ModelSpec make_vgg16() {
  ModelSpec m;
  m.name = "vgg16";
  struct Stage {
    std::int64_t convs, in, out, hw;
  };
  const Stage stages[] = {{2, 3, 64, 224},
                          {2, 64, 128, 112},
                          {3, 128, 256, 56},
                          {3, 256, 512, 28},
                          {3, 512, 512, 14}};
  int idx = 0;
  for (const auto& st : stages) {
    std::int64_t c = st.in;
    for (std::int64_t i = 0; i < st.convs; ++i) {
      const ConvShape shape = ConvShape::same(c, st.out, st.hw, 3);
      push_conv_bn_relu(m, "conv" + std::to_string(++idx), shape);
      c = st.out;
    }
    m.layers.push_back(LayerSpec::make_pool(
        "pool" + std::to_string(idx), plane(st.out, st.hw),
        plane(st.out, st.hw / 2)));
  }
  m.layers.push_back(LayerSpec::make_fc("fc1", 512 * 7 * 7, 4096));
  m.layers.push_back(LayerSpec::make_fc("fc2", 4096, 4096));
  m.layers.push_back(LayerSpec::make_fc("fc3", 4096, 1000));
  return m;
}

namespace {

// Basic residual block (two 3×3 convolutions) at spatial size `hw_out`.
// The add_relu joins the main path's BN output with the skip (the block's
// input, or the projection BN when the block downsamples).
void push_basic_block(ModelSpec& m, const std::string& name, std::int64_t in,
                      std::int64_t out, std::int64_t hw_in, std::int64_t stride) {
  const std::int64_t block_in = static_cast<std::int64_t>(m.layers.size()) - 1;
  const std::int64_t hw_out = hw_in / stride;
  push_conv_bn_relu(m, name + ".conv1",
                    ConvShape::same(in, out, hw_in, 3, stride));
  push_conv_bn_relu(m, name + ".conv2", ConvShape::same(out, out, hw_out, 3),
                    /*relu=*/false);
  const std::int64_t main_out = static_cast<std::int64_t>(m.layers.size()) - 1;
  std::int64_t skip = block_in;
  if (stride != 1 || in != out) {
    push_conv_bn_relu(m, name + ".downsample",
                      ConvShape::same(in, out, hw_in, 1, stride),
                      /*relu=*/false, {block_in});
    skip = static_cast<std::int64_t>(m.layers.size()) - 1;
  }
  m.layers.push_back(LayerSpec::make_elementwise(name + ".add_relu",
                                                 plane(out, hw_out),
                                                 EltOp::kAddRelu,
                                                 {main_out, skip}));
}

// Bottleneck block (1×1 reduce, 3×3, 1×1 expand ×4).
void push_bottleneck(ModelSpec& m, const std::string& name, std::int64_t in,
                     std::int64_t mid, std::int64_t hw_in, std::int64_t stride) {
  const std::int64_t block_in = static_cast<std::int64_t>(m.layers.size()) - 1;
  const std::int64_t out = mid * 4;
  const std::int64_t hw_out = hw_in / stride;
  push_conv_bn_relu(m, name + ".conv1", ConvShape::same(in, mid, hw_in, 1));
  push_conv_bn_relu(m, name + ".conv2",
                    ConvShape::same(mid, mid, hw_in, 3, stride));
  push_conv_bn_relu(m, name + ".conv3", ConvShape::same(mid, out, hw_out, 1),
                    /*relu=*/false);
  const std::int64_t main_out = static_cast<std::int64_t>(m.layers.size()) - 1;
  std::int64_t skip = block_in;
  if (stride != 1 || in != out) {
    push_conv_bn_relu(m, name + ".downsample",
                      ConvShape::same(in, out, hw_in, 1, stride),
                      /*relu=*/false, {block_in});
    skip = static_cast<std::int64_t>(m.layers.size()) - 1;
  }
  m.layers.push_back(LayerSpec::make_elementwise(name + ".add_relu",
                                                 plane(out, hw_out),
                                                 EltOp::kAddRelu,
                                                 {main_out, skip}));
}

}  // namespace

ModelSpec make_resnet18() {
  ModelSpec m;
  m.name = "resnet18";
  push_conv_bn_relu(m, "conv1", ConvShape::same(3, 64, 224, 7, 2));
  m.layers.push_back(LayerSpec::make_pool("maxpool", plane(64, 112),
                                          plane(64, 56), PoolGeom{3, 2, 1}));
  const struct {
    std::int64_t in, out, hw, stride;
  } stages[] = {{64, 64, 56, 1}, {64, 128, 56, 2}, {128, 256, 28, 2},
                {256, 512, 14, 2}};
  int idx = 0;
  for (const auto& st : stages) {
    ++idx;
    push_basic_block(m, "layer" + std::to_string(idx) + ".0", st.in, st.out,
                     st.hw, st.stride);
    push_basic_block(m, "layer" + std::to_string(idx) + ".1", st.out, st.out,
                     st.hw / st.stride, 1);
  }
  m.layers.push_back(LayerSpec::make_global_pool("avgpool", plane(512, 7), 512));
  m.layers.push_back(LayerSpec::make_fc("fc", 512, 1000));
  return m;
}

ModelSpec make_resnet50() {
  ModelSpec m;
  m.name = "resnet50";
  push_conv_bn_relu(m, "conv1", ConvShape::same(3, 64, 224, 7, 2));
  m.layers.push_back(LayerSpec::make_pool("maxpool", plane(64, 112),
                                          plane(64, 56), PoolGeom{3, 2, 1}));
  const struct {
    std::int64_t blocks, mid, hw, stride;
  } stages[] = {{3, 64, 56, 1}, {4, 128, 56, 2}, {6, 256, 28, 2},
                {3, 512, 14, 2}};
  std::int64_t in = 64;
  int idx = 0;
  for (const auto& st : stages) {
    ++idx;
    for (std::int64_t b = 0; b < st.blocks; ++b) {
      const std::int64_t stride = (b == 0) ? st.stride : 1;
      const std::int64_t hw_in = (b == 0) ? st.hw : st.hw / st.stride;
      push_bottleneck(m,
                      "layer" + std::to_string(idx) + "." + std::to_string(b),
                      in, st.mid, hw_in, stride);
      in = st.mid * 4;
    }
  }
  m.layers.push_back(
      LayerSpec::make_global_pool("avgpool", plane(2048, 7), 2048));
  m.layers.push_back(LayerSpec::make_fc("fc", 2048, 1000));
  return m;
}

namespace {

ModelSpec make_densenet(const std::string& name,
                        const std::vector<std::int64_t>& block_config) {
  constexpr std::int64_t kGrowth = 32;
  constexpr std::int64_t kBnSize = 4;  // 1×1 bottleneck width = 4 × growth
  ModelSpec m;
  m.name = name;
  push_conv_bn_relu(m, "conv0", ConvShape::same(3, 64, 224, 7, 2));
  m.layers.push_back(LayerSpec::make_pool("pool0", plane(64, 112),
                                          plane(64, 56), PoolGeom{3, 2, 1}));

  std::int64_t channels = 64;
  std::int64_t hw = 56;
  for (std::size_t bi = 0; bi < block_config.size(); ++bi) {
    for (std::int64_t li = 0; li < block_config[bi]; ++li) {
      const std::string lname = "denseblock" + std::to_string(bi + 1) +
                                ".layer" + std::to_string(li + 1);
      const std::int64_t block_in =
          static_cast<std::int64_t>(m.layers.size()) - 1;
      push_conv_bn_relu(m, lname + ".conv1",
                        ConvShape::same(channels, kBnSize * kGrowth, hw, 1));
      push_conv_bn_relu(m, lname + ".conv2",
                        ConvShape::same(kBnSize * kGrowth, kGrowth, hw, 3));
      // Feature concatenation (memory copy of the new features): carried
      // features first, then this layer's growth channels.
      m.layers.push_back(LayerSpec::make_elementwise(
          lname + ".concat", plane(kGrowth, hw), EltOp::kConcat,
          {block_in, static_cast<std::int64_t>(m.layers.size()) - 1}));
      channels += kGrowth;
    }
    if (bi + 1 < block_config.size()) {
      const std::string tname = "transition" + std::to_string(bi + 1);
      push_conv_bn_relu(m, tname + ".conv",
                        ConvShape::same(channels, channels / 2, hw, 1));
      channels /= 2;
      m.layers.push_back(LayerSpec::make_pool(
          tname + ".pool", plane(channels, hw), plane(channels, hw / 2),
          PoolGeom{2, 2, 0, /*max_pool=*/false}));
      hw /= 2;
    }
  }
  m.layers.push_back(LayerSpec::make_elementwise("norm5", plane(channels, hw),
                                                 EltOp::kBatchNorm));
  m.layers.push_back(
      LayerSpec::make_global_pool("avgpool", plane(channels, hw),
                                  static_cast<double>(channels)));
  m.layers.push_back(LayerSpec::make_fc("classifier", channels, 1000));
  return m;
}

}  // namespace

ModelSpec make_densenet121() {
  return make_densenet("densenet121", {6, 12, 24, 16});
}

ModelSpec make_densenet201() {
  return make_densenet("densenet201", {6, 12, 48, 32});
}

ModelSpec make_resnet20_cifar() {
  ModelSpec m;
  m.name = "resnet20";
  push_conv_bn_relu(m, "conv1", ConvShape::same(3, 16, 32, 3));
  const struct {
    std::int64_t in, out, hw, stride;
  } stages[] = {{16, 16, 32, 1}, {16, 32, 32, 2}, {32, 64, 16, 2}};
  int idx = 0;
  for (const auto& st : stages) {
    ++idx;
    push_basic_block(m, "layer" + std::to_string(idx) + ".0", st.in, st.out,
                     st.hw, st.stride);
    for (int b = 1; b < 3; ++b) {
      push_basic_block(m, "layer" + std::to_string(idx) + "." +
                              std::to_string(b),
                       st.out, st.out, st.hw / st.stride, 1);
    }
  }
  m.layers.push_back(LayerSpec::make_global_pool("avgpool", plane(64, 8), 64));
  m.layers.push_back(LayerSpec::make_fc("fc", 64, 10));
  return m;
}

std::vector<ModelSpec> paper_models() {
  return {make_densenet121(), make_densenet201(), make_resnet18(),
          make_resnet50(), make_vgg16()};
}

ModelSpec model_by_name(const std::string& name) {
  if (name == "vgg16") return make_vgg16();
  if (name == "resnet18") return make_resnet18();
  if (name == "resnet50") return make_resnet50();
  if (name == "densenet121") return make_densenet121();
  if (name == "densenet201") return make_densenet201();
  if (name == "resnet20") return make_resnet20_cifar();
  TDC_CHECK_MSG(false, "unknown model: " + name);
}

std::vector<ConvShape> figure6_core_shapes() {
  // (C, N, H, W) as listed on the x-axes of Figures 6 and 7.
  const std::int64_t spec[][4] = {
      {64, 32, 224, 224}, {64, 32, 112, 112}, {32, 32, 56, 56},
      {64, 32, 56, 56},   {64, 64, 56, 56},   {32, 32, 28, 28},
      {64, 32, 28, 28},   {96, 64, 28, 28},   {160, 96, 28, 28},
      {192, 96, 28, 28},  {32, 32, 14, 14},   {64, 32, 14, 14},
      {128, 96, 14, 14},  {192, 96, 14, 14},  {32, 32, 7, 7},
      {64, 32, 7, 7},     {96, 64, 7, 7},     {192, 160, 7, 7}};
  std::vector<ConvShape> out;
  for (const auto& s : spec) {
    out.push_back(ConvShape::same(s[0], s[1], s[2], 3));
  }
  return out;
}

}  // namespace tdc
