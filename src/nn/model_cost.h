// End-to-end model latency walks (paper Figures 8 and 9).
//
// Prices a whole model as the sum of its layer kernels under the gpusim
// latency model, in four configurations matching the paper's bars:
//   Original            — every conv via cuDNN IMPLICIT_GEMM
//   TK-compressed cuDNN — decomposed layers run all three stages on cuDNN
//   TK-compressed TVM   — core convolutions on the TVM-style scheme
//   TK-compressed TDC   — core convolutions on the TDC kernel
//                         (oracle or analytical-model tiling)
// The compression decisions (which layers are decomposed, at which ranks)
// come from one co-design pass and are shared by all compressed
// configurations, exactly as the paper compresses once and deploys with
// different backends.
#pragma once

#include "core/codesign.h"
#include "core/model_spec.h"

namespace tdc {

enum class CoreBackend { kCudnn, kTvm, kTdcOracle, kTdcModel };

const char* core_backend_name(CoreBackend backend);

/// Latency of an undecomposed layer.
double layer_latency(const DeviceSpec& device, const LayerSpec& layer);

/// Run the co-design pass over the model's convolution layers.
CodesignResult compress_model(const DeviceSpec& device, const ModelSpec& model,
                              const CodesignOptions& options);

/// End-to-end latency of the original model (cuDNN everywhere).
double model_latency_original(const DeviceSpec& device, const ModelSpec& model);

/// End-to-end latency of the compressed model with the chosen core backend.
/// `decisions` must come from compress_model on the same model.
double model_latency_compressed(const DeviceSpec& device,
                                const ModelSpec& model,
                                const CodesignResult& decisions,
                                CoreBackend backend);

/// Full Figure-8/9 row for one model.
struct E2eRow {
  std::string model;
  double original_s = 0.0;
  double tk_cudnn_s = 0.0;
  double tk_tvm_s = 0.0;
  double tk_tdc_oracle_s = 0.0;
  double tk_tdc_model_s = 0.0;
  double flops_reduction = 0.0;  ///< achieved model-wide conv FLOPs reduction
};

E2eRow evaluate_model_e2e(const DeviceSpec& device, const ModelSpec& model,
                          const CodesignOptions& options);

}  // namespace tdc
