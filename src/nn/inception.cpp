#include "nn/inception.h"

#include <algorithm>

#include "common/check.h"
#include "gpusim/library_cost.h"
#include "nn/model_cost.h"

namespace tdc {

double InceptionModule::flops() const {
  double f = 0.0;
  for (const auto& branch : branches) {
    for (const auto& conv : branch.convs) {
      f += conv.flops();
    }
  }
  return f;
}

double WideModelSpec::total_flops() const {
  double f = 0.0;
  for (const auto& l : stem) {
    f += l.flops();
  }
  for (const auto& [module, pool] : modules) {
    f += module.flops();
  }
  for (const auto& l : head) {
    f += l.flops();
  }
  return f;
}

namespace {

// Inception-v1 module: #1×1 | #3×3reduce → #3×3 | #5×5reduce → #5×5 |
// pool → #poolproj.
InceptionModule make_module(const std::string& name, std::int64_t in,
                            std::int64_t hw, std::int64_t c1,
                            std::int64_t c3r, std::int64_t c3,
                            std::int64_t c5r, std::int64_t c5,
                            std::int64_t pp) {
  InceptionModule m;
  m.name = name;
  m.in_channels = in;
  m.out_channels = c1 + c3 + c5 + pp;
  m.hw = hw;
  m.branches.push_back({name + ".b1", {ConvShape::same(in, c1, hw, 1)}});
  m.branches.push_back({name + ".b3",
                        {ConvShape::same(in, c3r, hw, 1),
                         ConvShape::same(c3r, c3, hw, 3)}});
  m.branches.push_back({name + ".b5",
                        {ConvShape::same(in, c5r, hw, 1),
                         ConvShape::same(c5r, c5, hw, 5)}});
  // Pool branch: the 3×3 max pool is an elementwise-class op; its 1×1
  // projection is the conv.
  m.branches.push_back({name + ".bp", {ConvShape::same(in, pp, hw, 1)}});
  return m;
}

}  // namespace

WideModelSpec make_googlenet() {
  WideModelSpec g;
  g.name = "googlenet";

  const auto plane = [](std::int64_t c, std::int64_t hw) {
    return static_cast<double>(c) * hw * hw;
  };
  g.stem.push_back(
      LayerSpec::make_conv("conv1", ConvShape::same(3, 64, 224, 7, 2)));
  g.stem.push_back(LayerSpec::make_pool("pool1", plane(64, 112), plane(64, 56)));
  g.stem.push_back(
      LayerSpec::make_conv("conv2", ConvShape::same(64, 64, 56, 1)));
  g.stem.push_back(
      LayerSpec::make_conv("conv3", ConvShape::same(64, 192, 56, 3)));
  g.stem.push_back(LayerSpec::make_pool("pool2", plane(192, 56), plane(192, 28)));

  // The canonical Inception-v1 table (Szegedy et al., Table 1).
  g.modules.push_back({make_module("3a", 192, 28, 64, 96, 128, 16, 32, 32), false});
  g.modules.push_back({make_module("3b", 256, 28, 128, 128, 192, 32, 96, 64), true});
  g.modules.push_back({make_module("4a", 480, 14, 192, 96, 208, 16, 48, 64), false});
  g.modules.push_back({make_module("4b", 512, 14, 160, 112, 224, 24, 64, 64), false});
  g.modules.push_back({make_module("4c", 512, 14, 128, 128, 256, 24, 64, 64), false});
  g.modules.push_back({make_module("4d", 512, 14, 112, 144, 288, 32, 64, 64), false});
  g.modules.push_back({make_module("4e", 528, 14, 256, 160, 320, 32, 128, 128), true});
  g.modules.push_back({make_module("5a", 832, 7, 256, 160, 320, 32, 128, 128), false});
  g.modules.push_back({make_module("5b", 832, 7, 384, 192, 384, 48, 128, 128), false});

  g.head.push_back(LayerSpec::make_global_pool("avgpool", plane(1024, 7), 1024));
  g.head.push_back(LayerSpec::make_fc("fc", 1024, 1000));
  return g;
}

double concurrent_latency([[maybe_unused]] const DeviceSpec& device,
                          const std::vector<LatencyBreakdown>& kernels) {
  TDC_CHECK_MSG(!kernels.empty(), "no kernels to co-schedule");
  // Lower bounds: the slowest member (its critical path cannot shrink) and
  // the aggregate device throughput over all members' work.
  double slowest = 0.0;
  double sum_compute = 0.0;
  double sum_memory = 0.0;
  double sum_total = 0.0;
  for (const auto& k : kernels) {
    slowest = std::max(slowest, k.total_s);
    // Device-seconds of pure throughput each kernel needs if perfectly
    // co-scheduled: its work at full-device rates.
    sum_compute += k.compute_s * k.occ.occupancy;  // occupancy-weighted share
    sum_memory += k.memory_s;
    sum_total += k.total_s;
  }
  // Concurrency can hide under-utilization (the whole point of streams) but
  // not aggregate bandwidth: memory paths serialize at the DRAM controller.
  const double lower =
      std::max({slowest, sum_compute, sum_memory / 2.0});
  return std::min(sum_total, std::max(lower, slowest));
}

namespace {

// Price one conv: original (cuDNN) or its decomposed pipeline with a TDC
// core, reusing the e2e pricing used everywhere else.
double conv_latency(const DeviceSpec& device, const LayerDecision& dec,
                    bool use_tdc) {
  if (!dec.decomposed || !use_tdc) {
    return dec.decomposed && use_tdc
               ? dec.chosen_latency_s
               : cudnn_implicit_gemm_cost(device, dec.shape).total_s;
  }
  return dec.chosen_latency_s;
}

LatencyBreakdown branch_breakdown(const DeviceSpec& device,
                                  const InceptionBranchPlan& plan,
                                  bool use_tdc) {
  LatencyBreakdown sum;
  double occ_weighted = 0.0;
  double total = 0.0;
  for (const auto& dec : plan.decisions) {
    const double t = conv_latency(device, dec, use_tdc);
    total += t;
    const LatencyBreakdown b = cudnn_implicit_gemm_cost(device, dec.shape);
    occ_weighted += b.occ.occupancy;
  }
  sum.total_s = total;
  // Approximate the branch's compute/memory split from its dominant conv.
  sum.compute_s = total * 0.7;
  sum.memory_s = total * 0.5;
  sum.occ.occupancy =
      plan.decisions.empty()
          ? 1.0
          : std::min(1.0, occ_weighted /
                              static_cast<double>(plan.decisions.size()));
  return sum;
}

}  // namespace

InceptionModulePlan plan_inception_module(const DeviceSpec& device,
                                          const InceptionModule& module,
                                          const CodesignOptions& options) {
  InceptionModulePlan plan;
  for (const auto& branch : module.branches) {
    InceptionBranchPlan bp;
    bp.branch = branch;
    const CodesignResult r = run_codesign(device, branch.convs, options);
    bp.decisions = r.layers;
    plan.branches.push_back(std::move(bp));
  }
  return plan;
}

InceptionModuleCost price_inception_module(const DeviceSpec& device,
                                           const InceptionModule& module,
                                           const InceptionModulePlan& plan) {
  TDC_CHECK_MSG(plan.branches.size() == module.branches.size(),
                "plan does not match module");
  InceptionModuleCost cost;
  std::vector<LatencyBreakdown> original_branches;
  std::vector<LatencyBreakdown> tdc_branches;
  for (const auto& bp : plan.branches) {
    const LatencyBreakdown orig = branch_breakdown(device, bp, /*use_tdc=*/false);
    const LatencyBreakdown tdc = branch_breakdown(device, bp, /*use_tdc=*/true);
    cost.sequential_original_s += orig.total_s;
    cost.sequential_tdc_s += tdc.total_s;
    original_branches.push_back(orig);
    tdc_branches.push_back(tdc);
  }
  cost.concurrent_original_s = concurrent_latency(device, original_branches);
  cost.concurrent_tdc_s = concurrent_latency(device, tdc_branches);
  return cost;
}

GoogleNetE2e evaluate_googlenet(const DeviceSpec& device,
                                const CodesignOptions& options) {
  const WideModelSpec g = make_googlenet();
  GoogleNetE2e out;

  double fixed = 0.0;  // stem + head + pooling, common to all strategies
  for (const auto& l : g.stem) {
    fixed += layer_latency(device, l);
  }
  for (const auto& l : g.head) {
    fixed += layer_latency(device, l);
  }

  out.original_sequential_s = fixed;
  out.original_concurrent_s = fixed;
  out.tdc_concurrent_s = fixed;
  for (const auto& [module, pool_after] : g.modules) {
    const InceptionModulePlan plan =
        plan_inception_module(device, module, options);
    const InceptionModuleCost cost =
        price_inception_module(device, module, plan);
    out.original_sequential_s += cost.sequential_original_s;
    out.original_concurrent_s += cost.concurrent_original_s;
    out.tdc_concurrent_s += cost.concurrent_tdc_s;
    if (pool_after) {
      const double elems = static_cast<double>(module.out_channels) *
                           module.hw * module.hw;
      const double pool =
          elementwise_cost(device, elems, elems / 4.0).total_s;
      out.original_sequential_s += pool;
      out.original_concurrent_s += pool;
      out.tdc_concurrent_s += pool;
    }
  }
  return out;
}

}  // namespace tdc
