// Structural annotations read by the semantic analyzer (tools/analyze/).
//
// The analyzer builds a whole-project call graph and proves that everything
// reachable from the serving run path is pure: no heap allocation, no
// std::function construction, no I/O, no nondeterminism, and no mutex
// acquisition outside the sanctioned blocking points. These macros are how
// the sources talk to it — structurally, on declarations, not through
// comments the tool would have to grep for.
//
//   TDC_RUN_PATH
//     Marks a function definition as a run-path root: the analyzer seeds its
//     reachability walk here. Roots are the steady-state serving entry
//     points — InferenceSession::run / run_batched, OpPlan::run*, the packed
//     GEMM block walk — plus the pool worker bodies that execute their
//     chunks. Everything reachable from a root inherits the purity contract
//     that DenyAllocGuard (common/alloc_guard.h) enforces dynamically.
//
//   TDC_ANALYZE_ALLOW(rule)
//     Function-scope escape hatch: waives the named analyzer rule for the
//     enclosing function, e.g. TDC_ANALYZE_ALLOW(run-path-lock) inside the
//     thread pool's fork/join handoff. Every use must sit next to a comment
//     saying why the waiver is sound; tools/analyze/rules.md lists the rule
//     ids and the currently sanctioned escapes. The analyzer recognizes the
//     declaration itself (an annotated constant), never the comment.
//
// Under Clang the macros expand to annotate attributes the libclang
// frontend reads from the AST; under GCC (which has no annotate attribute)
// they expand to nothing / a static_assert, and the analyzer's fallback
// frontend recognizes the macro tokens directly in the source. Runtime
// behavior is identical either way: both expansions are zero-cost.
#pragma once

#if defined(__clang__)
#define TDC_RUN_PATH __attribute__((annotate("tdc-run-path")))
#else
#define TDC_RUN_PATH
#endif

#define TDC_ANALYZE_CONCAT_IMPL(a, b) a##b
#define TDC_ANALYZE_CONCAT(a, b) TDC_ANALYZE_CONCAT_IMPL(a, b)

#if defined(__clang__)
#define TDC_ANALYZE_ALLOW(rule)                                        \
  [[maybe_unused]] static constexpr int __attribute__((                \
      annotate("tdc-analyze-allow:" #rule)))                           \
  TDC_ANALYZE_CONCAT(tdc_analyze_allow_, __LINE__) = 0
#else
#define TDC_ANALYZE_ALLOW(rule) \
  static_assert(true, "tdc-analyze-allow:" #rule)
#endif
